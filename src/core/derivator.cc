#include "src/core/derivator.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>

#include "src/util/logging.h"

namespace lockdoc {
namespace {

// One distinct observed lock sequence with its folded-observation count.
struct SeqCount {
  uint32_t seq_id = 0;
  uint64_t count = 0;
};

// A candidate hypothesis before string materialization: a borrowed id
// sequence (owned by the store's enumeration cache or by the permutation
// arena) plus its support.
struct ScoredCandidate {
  const IdSeq* ids = nullptr;
  uint64_t sa = 0;
  double sr = 0.0;
};

bool PtrSeqLess(const IdSeq* a, const IdSeq* b) { return *a < *b; }
bool PtrSeqEq(const IdSeq* a, const IdSeq* b) { return *a == *b; }

// Orders id sequences exactly as their materialized LockSeqs compare
// lexicographically, via the pool's rank table (see LexicographicRanks).
bool RankLess(const IdSeq& a, const IdSeq& b, const std::vector<uint32_t>& ranks) {
  size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) {
    if (ranks[a[i]] != ranks[b[i]]) {
      return ranks[a[i]] < ranks[b[i]];
    }
  }
  return a.size() < b.size();
}

// Sorting for reports: descending sr, then shorter rules, then lexicographic
// (by rank — identical to comparing the materialized strings).
bool ReportOrderIds(const ScoredCandidate& a, const ScoredCandidate& b,
                    const std::vector<uint32_t>& ranks) {
  if (a.sr != b.sr) {
    return a.sr > b.sr;
  }
  if (a.ids->size() != b.ids->size()) {
    return a.ids->size() < b.ids->size();
  }
  return RankLess(*a.ids, *b.ids, ranks);
}

// Winner selection (Sec. 4.3): lowest support first, then MORE locks, then
// lexicographic for determinism.
bool WinnerOrderIds(const ScoredCandidate& a, const ScoredCandidate& b,
                    const std::vector<uint32_t>& ranks) {
  if (a.sr != b.sr) {
    return a.sr < b.sr;
  }
  if (a.ids->size() != b.ids->size()) {
    return a.ids->size() > b.ids->size();
  }
  return RankLess(*a.ids, *b.ids, ranks);
}

// The mining core for one (member, access) work item, on prefolded
// observation counts. `observed` must be sorted by seq_id with counts
// summing to `total`; `ranks` is the pool's lexicographic rank table.
DerivationResult DeriveFromCounts(const DerivatorOptions& options,
                                  const ObservationStore& store, const MemberObsKey& key,
                                  AccessType access, const std::vector<SeqCount>& observed,
                                  uint64_t total, const std::vector<uint32_t>& ranks) {
  DerivationResult result;
  result.key = key;
  result.access = access;
  result.total = total;
  if (total == 0) {
    return result;
  }

  // Enumerate candidate hypotheses from the observed combinations (never
  // the powerset of all locks in the system — Sec. 5.4). The hot path runs
  // entirely on interned id sequences: each distinct observed sequence's
  // subsequence powerset comes from the store's shared enumeration cache
  // (computed once per sequence, reused across all work items and threads),
  // and candidates are pointers into those cached vectors — no per-item
  // copies. Dedup is a flat sort+unique with integer-vector comparisons.
  std::vector<std::pair<const IdSeq*, uint64_t>> obs_seqs;
  std::vector<const std::vector<IdSeq>*> subseq_lists;
  obs_seqs.reserve(observed.size());
  subseq_lists.reserve(observed.size());
  size_t expansion = 0;
  for (const SeqCount& sc : observed) {
    obs_seqs.emplace_back(&store.id_seq(sc.seq_id), sc.count);
    subseq_lists.push_back(&store.CachedSubsequenceIds(sc.seq_id, options.max_subset_locks));
    expansion += subseq_lists.back()->size();
  }
  std::vector<const IdSeq*> candidates;
  candidates.reserve(expansion);
  for (const std::vector<IdSeq>* subs : subseq_lists) {
    for (const IdSeq& sub : *subs) {
      candidates.push_back(&sub);
    }
  }
  std::sort(candidates.begin(), candidates.end(), PtrSeqLess);
  candidates.erase(std::unique(candidates.begin(), candidates.end(), PtrSeqEq),
                   candidates.end());

  // Permutations, when enabled, are generated in place (sort +
  // next_permutation; no per-level multiset copies) into a deque arena so
  // the candidate pointers stay stable. Permuting the deduplicated
  // subsequences yields the same candidate set as permuting each
  // subsequence per observed combination: permutations depend only on the
  // subsequence's multiset of locks.
  std::deque<IdSeq> perm_arena;
  if (options.enumerate_permutations) {
    size_t base = candidates.size();
    for (size_t i = 0; i < base; ++i) {
      if (candidates[i]->empty() || candidates[i]->size() > options.max_permutation_size) {
        continue;
      }
      IdSeq elems = *candidates[i];
      std::sort(elems.begin(), elems.end());
      do {
        perm_arena.push_back(elems);
        candidates.push_back(&perm_arena.back());
      } while (std::next_permutation(elems.begin(), elems.end()));
    }
    std::sort(candidates.begin(), candidates.end(), PtrSeqLess);
    candidates.erase(std::unique(candidates.begin(), candidates.end(), PtrSeqEq),
                     candidates.end());
  }

  // Score each candidate with the two-pointer integer subsequence test.
  result.candidates_scored = candidates.size();
  std::vector<ScoredCandidate> scored;
  scored.reserve(candidates.size());
  for (const IdSeq* candidate : candidates) {
    ScoredCandidate entry;
    entry.ids = candidate;
    for (const auto& [seq, count] : obs_seqs) {
      if (IsSubsequenceIds(*candidate, *seq)) {
        entry.sa += count;
      }
    }
    entry.sr = static_cast<double>(entry.sa) / static_cast<double>(total);
    scored.push_back(entry);
  }

  // Winner selection among candidates clearing the acceptance threshold —
  // on ids; rank comparisons reproduce the string tie-break exactly.
  const ScoredCandidate* winner = nullptr;
  for (const ScoredCandidate& entry : scored) {
    if (entry.sr + 1e-12 < options.accept_threshold) {
      continue;
    }
    if (winner == nullptr || WinnerOrderIds(entry, *winner, ranks)) {
      winner = &entry;
    }
  }
  // The no-lock hypothesis always clears the threshold, so a winner exists.
  LOCKDOC_CHECK(winner != nullptr);
  const IdSeq* winner_ids = winner->ids;
  Hypothesis winner_hypothesis;
  winner_hypothesis.sa = winner->sa;
  winner_hypothesis.sr = winner->sr;
  winner_hypothesis.locks = store.pool().Materialize(*winner_ids);

  // Apply the report cutoff and sort for presentation, still on ids.
  // Candidates are deduplicated, so pointer identity against the winner is
  // equivalent to the locks-inequality test on materialized strings.
  if (options.cutoff_threshold > 0.0) {
    std::erase_if(scored, [&](const ScoredCandidate& entry) {
      return entry.sr < options.cutoff_threshold && entry.ids != winner_ids;
    });
  }
  std::sort(scored.begin(), scored.end(),
            [&ranks](const ScoredCandidate& a, const ScoredCandidate& b) {
              return ReportOrderIds(a, b, ranks);
            });

  // Lock-class strings materialize only here, at the result boundary, for
  // the hypotheses that survived the cutoff.
  result.hypotheses.reserve(scored.size());
  for (const ScoredCandidate& entry : scored) {
    Hypothesis hypothesis;
    hypothesis.sa = entry.sa;
    hypothesis.sr = entry.sr;
    hypothesis.locks = store.pool().Materialize(*entry.ids);
    result.hypotheses.push_back(std::move(hypothesis));
  }
  result.winner = std::move(winner_hypothesis);
  return result;
}

}  // namespace

std::vector<LockSeq> EnumerateSubsequences(const LockSeq& seq, size_t max_locks) {
  // Reference (string-based) enumeration; the hot path uses the interned
  // mirror EnumerateSubsequenceIds via the ObservationStore cache. Both
  // produce the same sorted deduplicated sequence set (pinned by the
  // differential test).
  std::vector<LockSeq> result;
  result.push_back(LockSeq{});
  // The bitmask powerset cannot represent >= 64 locks; such sequences only
  // appear in salvaged or adversarial traces with a raised max_locks, and
  // clamp into the bounded fallback instead of aborting.
  if (seq.size() <= max_locks && seq.size() < 64) {
    // Full subsequence powerset via bitmask.
    uint64_t limit = 1ULL << seq.size();
    result.reserve(static_cast<size_t>(limit));
    for (uint64_t mask = 1; mask < limit; ++mask) {
      LockSeq subsequence;
      for (size_t i = 0; i < seq.size(); ++i) {
        if ((mask >> i) & 1) {
          subsequence.push_back(seq[i]);
        }
      }
      result.push_back(std::move(subsequence));
    }
  } else {
    // Bounded fallback: singles, ordered pairs, prefixes, full sequence,
    // and per-class multiplicity runs.
    result.reserve(1 + seq.size() * (seq.size() + 1) / 2 + 2 * seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
      result.push_back(LockSeq{seq[i]});
      for (size_t j = i + 1; j < seq.size(); ++j) {
        result.push_back(LockSeq{seq[i], seq[j]});
      }
    }
    LockSeq prefix;
    for (const LockClass& lock : seq) {
      prefix.push_back(lock);
      result.push_back(prefix);
    }
    // A class held k >= 3 times in one group (e.g. the same range lock over
    // several spans) must yield the k-fold repeat as a candidate even when
    // the copies are not a prefix: {x, a, a, a} needs {a, a, a}. Runs of 1
    // and 2 are already covered by the singles and ordered pairs above.
    std::map<LockClass, size_t> multiplicity;
    for (const LockClass& lock : seq) {
      ++multiplicity[lock];
    }
    for (const auto& [lock, count] : multiplicity) {
      LockSeq run;
      for (size_t k = 1; k <= count; ++k) {
        run.push_back(lock);
        if (k >= 3) {
          result.push_back(run);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

RuleDerivator::RuleDerivator(DerivatorOptions options) : options_(options) {
  LOCKDOC_CHECK(options_.accept_threshold > 0.0 && options_.accept_threshold <= 1.0);
}

DerivationResult RuleDerivator::Derive(const ObservationStore& store, const MemberObsKey& key,
                                       AccessType access) const {
  // Fold the member's groups into distinct-sequence counts with a flat
  // counts array indexed by the (dense) sequence id — no node-based map on
  // the hot path. DeriveAll prefolds both access types in one pass instead
  // of calling this per item.
  std::vector<uint64_t> counts(store.distinct_seqs(), 0);
  std::vector<uint32_t> touched;
  uint64_t total = 0;
  for (const ObservationGroup& group : store.GroupsFor(key)) {
    if (group.effective() != access) {
      continue;
    }
    LOCKDOC_CHECK(group.lockseq_id < counts.size());
    if (counts[group.lockseq_id]++ == 0) {
      touched.push_back(group.lockseq_id);
    }
    ++total;
  }
  std::sort(touched.begin(), touched.end());
  std::vector<SeqCount> observed;
  observed.reserve(touched.size());
  for (uint32_t seq_id : touched) {
    observed.push_back({seq_id, counts[seq_id]});
  }
  return DeriveFromCounts(options_, store, key, access, observed, total,
                          store.pool().LexicographicRanks());
}

std::vector<DerivationResult> RuleDerivator::DeriveAll(const ObservationStore& store,
                                                       ThreadPool* pool) const {
  // Work items in key order (the groups map is ordered), with the observed
  // counts for both access types prefolded in one serial pass per member.
  // Each item writes only its own slot and the observed() filter below runs
  // in item order, so results are byte-identical at any thread count.
  struct WorkItem {
    MemberObsKey key;
    AccessType access = AccessType::kRead;
    std::vector<SeqCount> observed;
    uint64_t total = 0;
  };
  std::vector<WorkItem> items;
  items.reserve(store.groups().size() * 2);
  std::array<std::vector<uint64_t>, 2> counts;
  std::array<std::vector<uint32_t>, 2> touched;
  counts.fill(std::vector<uint64_t>(store.distinct_seqs(), 0));
  for (const auto& [key, groups] : store.groups()) {
    for (const ObservationGroup& group : groups) {
      size_t side = group.effective() == AccessType::kWrite ? 1 : 0;
      LOCKDOC_CHECK(group.lockseq_id < counts[side].size());
      if (counts[side][group.lockseq_id]++ == 0) {
        touched[side].push_back(group.lockseq_id);
      }
    }
    for (AccessType access : {AccessType::kRead, AccessType::kWrite}) {
      size_t side = access == AccessType::kWrite ? 1 : 0;
      WorkItem item;
      item.key = key;
      item.access = access;
      std::sort(touched[side].begin(), touched[side].end());
      item.observed.reserve(touched[side].size());
      for (uint32_t seq_id : touched[side]) {
        item.observed.push_back({seq_id, counts[side][seq_id]});
        item.total += counts[side][seq_id];
        counts[side][seq_id] = 0;  // Reset only touched entries for the next key.
      }
      touched[side].clear();
      items.push_back(std::move(item));
    }
  }

  // The rank table is computed once and shared read-only by every item.
  const std::vector<uint32_t> ranks = store.pool().LexicographicRanks();
  std::vector<DerivationResult> slots(items.size());
  auto derive_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      slots[i] = DeriveFromCounts(options_, store, items[i].key, items[i].access,
                                  items[i].observed, items[i].total, ranks);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(items.size(), derive_range);
  } else {
    derive_range(0, items.size());
  }

  std::vector<DerivationResult> results;
  for (DerivationResult& result : slots) {
    if (result.observed()) {
      results.push_back(std::move(result));
    }
  }
  return results;
}

}  // namespace lockdoc
