#include "src/core/derivator.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/util/logging.h"

namespace lockdoc {
namespace {

// Sorting for reports: descending sr, then shorter rules, then lexicographic.
bool ReportOrder(const Hypothesis& a, const Hypothesis& b) {
  if (a.sr != b.sr) {
    return a.sr > b.sr;
  }
  if (a.locks.size() != b.locks.size()) {
    return a.locks.size() < b.locks.size();
  }
  return a.locks < b.locks;
}

// Winner selection (Sec. 4.3): lowest support first, then MORE locks, then
// lexicographic for determinism.
bool WinnerOrder(const Hypothesis& a, const Hypothesis& b) {
  if (a.sr != b.sr) {
    return a.sr < b.sr;
  }
  if (a.locks.size() != b.locks.size()) {
    return a.locks.size() > b.locks.size();
  }
  return a.locks < b.locks;
}

void Permute(LockSeq current, std::multiset<LockClass> remaining, std::set<LockSeq>* out) {
  if (remaining.empty()) {
    out->insert(std::move(current));
    return;
  }
  // Iterate over distinct next elements to avoid duplicate permutations.
  const LockClass* last = nullptr;
  for (auto it = remaining.begin(); it != remaining.end(); ++it) {
    if (last != nullptr && *it == *last) {
      continue;
    }
    last = &*it;
    LockSeq next = current;
    next.push_back(*it);
    std::multiset<LockClass> rest = remaining;
    rest.erase(rest.find(*it));
    Permute(std::move(next), std::move(rest), out);
  }
}

}  // namespace

std::vector<LockSeq> EnumerateSubsequences(const LockSeq& seq, size_t max_locks) {
  std::set<LockSeq> result;
  result.insert(LockSeq{});
  // The bitmask powerset cannot represent >= 64 locks; such sequences only
  // appear in salvaged or adversarial traces with a raised max_locks, and
  // clamp into the bounded fallback instead of aborting.
  if (seq.size() <= max_locks && seq.size() < 64) {
    // Full subsequence powerset via bitmask.
    uint64_t limit = 1ULL << seq.size();
    for (uint64_t mask = 1; mask < limit; ++mask) {
      LockSeq subsequence;
      for (size_t i = 0; i < seq.size(); ++i) {
        if ((mask >> i) & 1) {
          subsequence.push_back(seq[i]);
        }
      }
      result.insert(std::move(subsequence));
    }
  } else {
    // Bounded fallback: singles, ordered pairs, prefixes, full sequence.
    for (size_t i = 0; i < seq.size(); ++i) {
      result.insert(LockSeq{seq[i]});
      for (size_t j = i + 1; j < seq.size(); ++j) {
        result.insert(LockSeq{seq[i], seq[j]});
      }
    }
    LockSeq prefix;
    for (const LockClass& lock : seq) {
      prefix.push_back(lock);
      result.insert(prefix);
    }
  }
  return std::vector<LockSeq>(result.begin(), result.end());
}

RuleDerivator::RuleDerivator(DerivatorOptions options) : options_(options) {
  LOCKDOC_CHECK(options_.accept_threshold > 0.0 && options_.accept_threshold <= 1.0);
}

DerivationResult RuleDerivator::Derive(const ObservationStore& store, const MemberObsKey& key,
                                       AccessType access) const {
  DerivationResult result;
  result.key = key;
  result.access = access;

  // Distinct observed lock sequences with their folded-observation counts.
  std::map<uint32_t, uint64_t> observed;
  for (const ObservationGroup& group : store.GroupsFor(key)) {
    if (group.effective() == access) {
      ++observed[group.lockseq_id];
      ++result.total;
    }
  }
  if (result.total == 0) {
    return result;
  }

  // Enumerate candidate hypotheses from the observed combinations (never
  // the powerset of all locks in the system — Sec. 5.4).
  std::set<LockSeq> candidates;
  for (const auto& [seq_id, count] : observed) {
    const LockSeq& seq = store.seq(seq_id);
    for (LockSeq& subsequence : EnumerateSubsequences(seq, options_.max_subset_locks)) {
      if (options_.enumerate_permutations && !subsequence.empty() &&
          subsequence.size() <= options_.max_permutation_size) {
        Permute({}, std::multiset<LockClass>(subsequence.begin(), subsequence.end()),
                &candidates);
      }
      candidates.insert(std::move(subsequence));
    }
  }

  // Score each candidate.
  result.hypotheses.reserve(candidates.size());
  for (const LockSeq& candidate : candidates) {
    Hypothesis hypothesis;
    hypothesis.locks = candidate;
    for (const auto& [seq_id, count] : observed) {
      if (IsSubsequence(candidate, store.seq(seq_id))) {
        hypothesis.sa += count;
      }
    }
    hypothesis.sr = static_cast<double>(hypothesis.sa) / static_cast<double>(result.total);
    result.hypotheses.push_back(std::move(hypothesis));
  }

  // Winner selection among hypotheses clearing the acceptance threshold.
  const Hypothesis* winner = nullptr;
  for (const Hypothesis& hypothesis : result.hypotheses) {
    if (hypothesis.sr + 1e-12 < options_.accept_threshold) {
      continue;
    }
    if (winner == nullptr || WinnerOrder(hypothesis, *winner)) {
      winner = &hypothesis;
    }
  }
  // The no-lock hypothesis always clears the threshold, so a winner exists.
  LOCKDOC_CHECK(winner != nullptr);
  result.winner = *winner;

  // Apply the report cutoff and sort for presentation.
  if (options_.cutoff_threshold > 0.0) {
    std::erase_if(result.hypotheses, [&](const Hypothesis& h) {
      return h.sr < options_.cutoff_threshold && h.locks != result.winner->locks;
    });
  }
  std::sort(result.hypotheses.begin(), result.hypotheses.end(), ReportOrder);
  return result;
}

std::vector<DerivationResult> RuleDerivator::DeriveAll(const ObservationStore& store,
                                                       ThreadPool* pool) const {
  // Work items in key order (the groups map is ordered); each item writes
  // only its own slot, and the observed() filter below runs in item order,
  // so results are byte-identical at any thread count.
  struct WorkItem {
    MemberObsKey key;
    AccessType access;
  };
  std::vector<WorkItem> items;
  items.reserve(store.groups().size() * 2);
  for (const auto& [key, groups] : store.groups()) {
    for (AccessType access : {AccessType::kRead, AccessType::kWrite}) {
      items.push_back({key, access});
    }
  }

  std::vector<DerivationResult> slots(items.size());
  auto derive_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      slots[i] = Derive(store, items[i].key, items[i].access);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(items.size(), derive_range);
  } else {
    derive_range(0, items.size());
  }

  std::vector<DerivationResult> results;
  for (DerivationResult& result : slots) {
    if (result.observed()) {
      results.push_back(std::move(result));
    }
  }
  return results;
}

}  // namespace lockdoc
