// The locking-rule checker (paper Sec. 5.5, Tab. 4/5): validates documented
// locking rules against the observed trace. Each rule's relative support
// categorizes it as correct (sr = 1), ambivalent (0 < sr < 1), or incorrect
// (sr = 0); rules whose member was never accessed are unobserved.
#ifndef SRC_CORE_RULE_CHECKER_H_
#define SRC_CORE_RULE_CHECKER_H_

#include <string>
#include <vector>

#include "src/core/observations.h"
#include "src/core/rule.h"
#include "src/model/type_registry.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

enum class RuleVerdict {
  kUnobserved = 0,
  kCorrect = 1,     // sr == 1
  kAmbivalent = 2,  // 0 < sr < 1
  kIncorrect = 3,   // sr == 0
};

std::string_view RuleVerdictSymbol(RuleVerdict verdict);  // "!", "~", "#", "-"

struct RuleCheckResult {
  LockingRule rule;
  uint64_t sa = 0;
  uint64_t total = 0;
  double sr = 0.0;
  RuleVerdict verdict = RuleVerdict::kUnobserved;
};

// Per-data-type aggregation — one row of the paper's Tab. 4.
struct RuleCheckSummary {
  std::string type_name;
  uint64_t documented = 0;  // #R
  uint64_t unobserved = 0;  // #No
  uint64_t observed = 0;    // #Ob
  uint64_t correct = 0;
  uint64_t ambivalent = 0;
  uint64_t incorrect = 0;

  double correct_pct() const;
  double ambivalent_pct() const;
  double incorrect_pct() const;
};

class RuleChecker {
 public:
  // The index pair is optional and shared (typically owned by an
  // AnalysisContext): `member_index` serves the per-access observation
  // split, `postings` the per-rule complying-sequence precompute. Verdicts
  // are identical with or without them — the indexes only skip re-scans.
  RuleChecker(const TypeRegistry* registry, const ObservationStore* store,
              const MemberAccessIndex* member_index = nullptr,
              const LockPostingIndex* postings = nullptr);

  // Checks one documented rule. A rule without a subclass qualifier is
  // evaluated against the union of all subclasses of its type.
  RuleCheckResult Check(const LockingRule& rule) const;

  // Checks every rule, distributed over `pool` when given (nullptr runs
  // serially). Each rule writes its own result slot, so the returned vector
  // is byte-identical at any thread count.
  std::vector<RuleCheckResult> CheckAll(const RuleSet& rules, ThreadPool* pool = nullptr) const;

  // Groups results by the rule's type name (Tab. 4 rows).
  static std::vector<RuleCheckSummary> Summarize(const std::vector<RuleCheckResult>& results);

 private:
  const TypeRegistry* registry_;
  const ObservationStore* store_;
  const MemberAccessIndex* member_index_;
  const LockPostingIndex* postings_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_RULE_CHECKER_H_
