#include "src/core/pipeline.h"

#include <chrono>

#include "src/util/string_util.h"

namespace lockdoc {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

void PipelineTimings::Add(std::string phase, double seconds, uint64_t items) {
  phases.push_back({std::move(phase), seconds, items});
}

double PipelineTimings::total_seconds() const {
  double total = 0.0;
  for (const PhaseTiming& phase : phases) {
    total += phase.seconds;
  }
  return total;
}

std::string PipelineTimings::ToString() const {
  std::string out = StrFormat("pipeline timings (%zu jobs):\n", jobs);
  for (const PhaseTiming& phase : phases) {
    out += StrFormat("  %-28s %8.3f s  %12s items  %14s items/s\n", phase.phase.c_str(),
                     phase.seconds, FormatWithCommas(phase.items).c_str(),
                     FormatWithCommas(static_cast<uint64_t>(phase.items_per_sec())).c_str());
  }
  out += StrFormat("  %-28s %8.3f s\n", "total", total_seconds());
  if (mining.any()) {
    out += StrFormat("  enumeration cache: %s hits, %s misses; %s candidates scored\n",
                     FormatWithCommas(mining.enum_cache_hits).c_str(),
                     FormatWithCommas(mining.enum_cache_misses).c_str(),
                     FormatWithCommas(mining.candidates_scored).c_str());
  }
  return out;
}

std::string PipelineTimings::ToJson() const {
  std::string out = StrFormat("{\"jobs\": %zu, \"phases\": [", jobs);
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseTiming& phase = phases[i];
    out += StrFormat("%s{\"phase\": \"%s\", \"seconds\": %.6f, \"items\": %llu, "
                     "\"items_per_sec\": %.1f}",
                     i == 0 ? "" : ", ", phase.phase.c_str(), phase.seconds,
                     static_cast<unsigned long long>(phase.items), phase.items_per_sec());
  }
  out += StrFormat("], \"mining\": {\"enum_cache_hits\": %llu, \"enum_cache_misses\": %llu, "
                   "\"candidates_scored\": %llu}}",
                   static_cast<unsigned long long>(mining.enum_cache_hits),
                   static_cast<unsigned long long>(mining.enum_cache_misses),
                   static_cast<unsigned long long>(mining.candidates_scored));
  return out;
}

PipelineResult RunPipeline(const Trace& trace, const TypeRegistry& registry,
                           const PipelineOptions& options) {
  PipelineResult result;
  ThreadPool pool(options.jobs);
  result.timings.jobs = pool.thread_count();

  auto t0 = Clock::now();
  TraceImporter importer(&registry, options.filter);
  result.import_stats = importer.Import(trace, &result.db);
  auto t1 = Clock::now();
  result.timings.Add("database import", Seconds(t0, t1), result.import_stats.events);

  result.observations = ExtractObservations(result.db, trace, registry, &pool);
  auto t2 = Clock::now();
  result.timings.Add("observation extraction", Seconds(t1, t2),
                     result.import_stats.accesses_kept);

  RuleDerivator derivator(options.derivator);
  result.rules = derivator.DeriveAll(result.observations, &pool);
  auto t3 = Clock::now();
  result.timings.Add("rule derivation (interned)", Seconds(t2, t3),
                     static_cast<uint64_t>(result.observations.groups().size()) * 2);
  result.timings.mining.enum_cache_hits = result.observations.enum_cache_hits();
  result.timings.mining.enum_cache_misses = result.observations.enum_cache_misses();
  for (const DerivationResult& rule : result.rules) {
    result.timings.mining.candidates_scored += rule.candidates_scored;
  }
  return result;
}

}  // namespace lockdoc
