#include "src/core/pipeline.h"

#include <chrono>

#include "src/core/analysis_context.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

void PipelineTimings::Add(std::string phase, double seconds, uint64_t items) {
  std::lock_guard<std::mutex> lock(*mu_);
  phases.push_back({std::move(phase), seconds, items});
}

double PipelineTimings::total_seconds() const {
  std::lock_guard<std::mutex> lock(*mu_);
  double total = 0.0;
  for (const PhaseTiming& phase : phases) {
    total += phase.seconds;
  }
  return total;
}

std::string PipelineTimings::ToString() const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::string out = StrFormat("pipeline timings (%zu jobs):\n", jobs);
  double total = 0.0;
  for (const PhaseTiming& phase : phases) {
    total += phase.seconds;
    out += StrFormat("  %-28s %8.3f s  %12s items  %14s items/s\n", phase.phase.c_str(),
                     phase.seconds, FormatWithCommas(phase.items).c_str(),
                     FormatWithCommas(static_cast<uint64_t>(phase.items_per_sec())).c_str());
  }
  out += StrFormat("  %-28s %8.3f s\n", "total", total);
  if (mining.any()) {
    out += StrFormat("  enumeration cache: %s hits, %s misses; %s candidates scored\n",
                     FormatWithCommas(mining.enum_cache_hits).c_str(),
                     FormatWithCommas(mining.enum_cache_misses).c_str(),
                     FormatWithCommas(mining.candidates_scored).c_str());
  }
  return out;
}

std::string PipelineTimings::ToJson() const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::string out = StrFormat("{\"jobs\": %zu, \"phases\": [", jobs);
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseTiming& phase = phases[i];
    out += StrFormat("%s{\"phase\": \"%s\", \"seconds\": %.6f, \"items\": %llu, "
                     "\"items_per_sec\": %.1f}",
                     i == 0 ? "" : ", ", phase.phase.c_str(), phase.seconds,
                     static_cast<unsigned long long>(phase.items), phase.items_per_sec());
  }
  out += StrFormat("], \"mining\": {\"enum_cache_hits\": %llu, \"enum_cache_misses\": %llu, "
                   "\"candidates_scored\": %llu}}",
                   static_cast<unsigned long long>(mining.enum_cache_hits),
                   static_cast<unsigned long long>(mining.enum_cache_misses),
                   static_cast<unsigned long long>(mining.candidates_scored));
  return out;
}

AnalysisSnapshot BuildSnapshot(const Trace& trace, const TypeRegistry& registry,
                               const PipelineOptions& options, PipelineTimings* timings) {
  AnalysisSnapshot snapshot;
  ThreadPool pool(options.jobs);
  if (timings != nullptr) {
    timings->jobs = pool.thread_count();
  }

  auto t0 = Clock::now();
  TraceImporter importer(&registry, options.filter);
  snapshot.import_stats = importer.Import(trace, &snapshot.db, &pool);
  snapshot.trace_stats = ComputeTraceStats(trace);
  auto t1 = Clock::now();
  if (timings != nullptr) {
    timings->Add("database import", Seconds(t0, t1), snapshot.import_stats.events);
  }

  snapshot.observations = ExtractObservations(snapshot.db, registry, &pool);
  auto t2 = Clock::now();
  if (timings != nullptr) {
    timings->Add("observation extraction", Seconds(t1, t2),
                 snapshot.import_stats.accesses_kept);
  }
  return snapshot;
}

std::vector<DerivationResult> AnalyzeSnapshot(const AnalysisSnapshot& snapshot,
                                              const PipelineOptions& options,
                                              PipelineTimings* timings) {
  // The derive pass of the analysis-pass framework: a one-shot
  // AnalysisContext whose memoized rule set is moved out. Multi-pass
  // consumers should hold the context instead, so derivation happens once.
  AnalysisOptions context_options;
  context_options.pipeline = options;
  AnalysisContext context(&snapshot, nullptr, std::move(context_options), timings);
  return context.TakeRules();
}

PipelineResult RunPipeline(const Trace& trace, const TypeRegistry& registry,
                           const PipelineOptions& options) {
  PipelineResult result;
  result.snapshot = BuildSnapshot(trace, registry, options, &result.timings);
  result.rules = AnalyzeSnapshot(result.snapshot, options, &result.timings);
  return result;
}

}  // namespace lockdoc
