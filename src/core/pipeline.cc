#include "src/core/pipeline.h"

namespace lockdoc {

PipelineResult RunPipeline(const Trace& trace, const TypeRegistry& registry,
                           const PipelineOptions& options) {
  PipelineResult result;
  TraceImporter importer(&registry, options.filter);
  result.import_stats = importer.Import(trace, &result.db);
  result.observations = ExtractObservations(result.db, trace, registry);
  RuleDerivator derivator(options.derivator);
  result.rules = derivator.DeriveAll(result.observations);
  return result;
}

}  // namespace lockdoc
