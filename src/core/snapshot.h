// Serialization of a full AnalysisSnapshot to and from the .lockdb
// container (src/db/snapshot.h): the import-once / analyze-many boundary.
// `lockdoc import` writes one; every analysis command loads one instead of
// re-importing the trace.
//
// Section order is fixed — meta, strings, one table section per database
// table in name order, pool, seqs, groups, end — and every payload is
// emitted from deterministically-ordered containers, so serializing the
// same snapshot always yields byte-identical files regardless of the thread
// count that built it. Payload encoding per section is parallelized over
// the optional thread pool; the concatenation stays serial, preserving the
// byte-identity contract.
//
// Two container versions are written and read (docs/lockdb-format.md):
// v1 keeps the original varint payloads; v2 (the default) lays out numeric
// table columns and the observation id-sequences/groups as fixed-width
// little-endian arrays, 8-byte aligned, so LoadSnapshot can mmap the file
// and attach table columns as in-place views (zero-copy) instead of
// decoding them. DeserializeSnapshot falls back to the owned-copy path for
// v1 files automatically.
#ifndef SRC_CORE_SNAPSHOT_H_
#define SRC_CORE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "src/core/pipeline.h"
#include "src/db/snapshot.h"
#include "src/model/type_registry.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

struct SnapshotWriteOptions {
  // 2 writes the zero-copy columnar container, 1 the legacy varint one.
  uint64_t container_version = 2;
  // When set, section payloads are encoded in parallel (output bytes are
  // identical either way).
  ThreadPool* pool = nullptr;
};

struct SnapshotLoadOptions {
  // Verify every payload CRC during the load. On v2 containers this is a
  // straight CRC32 sweep over the mapped bytes — still far cheaper than a
  // v1 varint decode — and it is the default because every shipped consumer
  // (CLI analysis, serve, doctor) promises never to compute on corrupt
  // bytes. Set to false only when the file is trusted (e.g. written moments
  // ago by the same process, or benchmarking the pure zero-copy path): the
  // v2 load then defers table payload CRCs entirely and attaches column
  // views unchecked. v1 files always verify (their frame CRC covers the
  // payload).
  bool verify_payload_crcs = true;
};

// Snapshot -> .lockdb bytes. `registry` is the registry the snapshot was
// built with; its type count is recorded in the meta section. Fails with a
// typed error if a section exceeds its container's payload cap (satellite
// of the 32-bit v1 length field).
Result<std::string> SerializeSnapshotBytes(const AnalysisSnapshot& snapshot,
                                           const TypeRegistry& registry,
                                           const SnapshotWriteOptions& options = {});

// Convenience wrapper that CHECK-fails on serialization errors; real
// snapshots sit far below the caps, so callers that just persist a freshly
// built snapshot use this.
std::string SerializeSnapshot(const AnalysisSnapshot& snapshot, const TypeRegistry& registry,
                              const SnapshotWriteOptions& options = {});

// .lockdb bytes -> snapshot (either container version). `registry` must be
// the registry the snapshot was built with; its type count is verified
// against the meta section (a snapshot is only meaningful against its own
// registry). v2 bytes are copied once into an aligned owned buffer so
// numeric table columns can be viewed in place; use LoadSnapshot to map a
// file without that copy.
Result<AnalysisSnapshot> DeserializeSnapshot(std::string_view bytes,
                                             const TypeRegistry& registry,
                                             const SnapshotLoadOptions& options = {});

// Reads just the registry type count from a .lockdb file's meta section,
// without loading (or validating) the rest of the snapshot. Callers use it
// to pick the matching registry before LoadSnapshot — e.g. a snapshot of an
// address-space (mm) workload records more types than the base VFS
// registry.
Result<uint64_t> PeekSnapshotTypeCount(const std::string& path);
Result<uint64_t> PeekSnapshotTypeCountFromBytes(std::string_view bytes);

// Ingest + persist in one overlapped pass: imports `trace`, then streams
// the meta/strings/table sections of the .lockdb file to disk on a writer
// thread *while* the main thread extracts observations; only the three
// observation sections wait for extraction. The file is written atomically
// (temp + fsync + rename) and its bytes are identical to
// SaveSnapshot(BuildSnapshot(...)) — the overlap changes when bytes reach
// the disk, never which bytes. With jobs == 1 the phases run strictly
// sequentially (the serial baseline stays honest). Appends the "database
// import", "observation extraction", and "snapshot save" phases to
// `timings`; the save phase reports only the wall time not hidden behind
// extraction. On any error `path` is untouched.
Result<AnalysisSnapshot> BuildAndSaveSnapshot(const Trace& trace, const TypeRegistry& registry,
                                              const PipelineOptions& options,
                                              const SnapshotWriteOptions& write_options,
                                              const std::string& path,
                                              PipelineTimings* timings = nullptr);

// File conveniences. SaveSnapshot writes atomically (temp + fsync +
// rename). LoadSnapshot mmaps the file: for v2 containers the mapping
// becomes the snapshot's backing and numeric columns are zero-copy views
// into it; v1 containers decode into owned storage and the mapping is
// released before returning.
Status SaveSnapshot(const AnalysisSnapshot& snapshot, const TypeRegistry& registry,
                    const std::string& path, const SnapshotWriteOptions& options = {});
Result<AnalysisSnapshot> LoadSnapshot(const std::string& path, const TypeRegistry& registry,
                                      const SnapshotLoadOptions& options = {});

}  // namespace lockdoc

#endif  // SRC_CORE_SNAPSHOT_H_
