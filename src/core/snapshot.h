// Serialization of a full AnalysisSnapshot to and from the .lockdb
// container (src/db/snapshot.h): the import-once / analyze-many boundary.
// `lockdoc import` writes one; every analysis command loads one instead of
// re-importing the trace.
//
// Section order is fixed — meta, strings, one table section per database
// table in name order, pool, seqs, groups, end — and every payload is
// emitted from deterministically-ordered containers, so serializing the
// same snapshot always yields byte-identical files regardless of the thread
// count that built it.
#ifndef SRC_CORE_SNAPSHOT_H_
#define SRC_CORE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "src/core/pipeline.h"
#include "src/db/snapshot.h"
#include "src/model/type_registry.h"
#include "src/util/status.h"

namespace lockdoc {

// Snapshot -> .lockdb bytes. `registry` is the registry the snapshot was
// built with; its type count is recorded in the meta section.
std::string SerializeSnapshot(const AnalysisSnapshot& snapshot, const TypeRegistry& registry);

// .lockdb bytes -> snapshot. `registry` must be the registry the snapshot
// was built with; its type count is verified against the meta section (a
// snapshot is only meaningful against its own registry).
Result<AnalysisSnapshot> DeserializeSnapshot(std::string_view bytes,
                                             const TypeRegistry& registry);

// File conveniences.
Status SaveSnapshot(const AnalysisSnapshot& snapshot, const TypeRegistry& registry,
                    const std::string& path);
Result<AnalysisSnapshot> LoadSnapshot(const std::string& path, const TypeRegistry& registry);

}  // namespace lockdoc

#endif  // SRC_CORE_SNAPSHOT_H_
