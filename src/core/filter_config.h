// Post-processing filter configuration (paper Sec. 5.3 and 6): a black list
// of (de)initialization functions whose member accesses are excluded
// (objects under construction/teardown legitimately skip locks), and a
// global black list of helper functions whose accesses deliberately bypass
// locking (atomic_read() and friends). Member-level filtering (atomic_t
// members, lock members, out-of-scope members) is encoded in the type
// layouts themselves.
#ifndef SRC_CORE_FILTER_CONFIG_H_
#define SRC_CORE_FILTER_CONFIG_H_

#include <set>
#include <string>

namespace lockdoc {

struct FilterConfig {
  // Accesses with any of these functions on the call stack are filtered as
  // kInitTeardown. The paper's list has 99 entries for 9 data types.
  std::set<std::string> init_teardown_functions;
  // Accesses with any of these functions on the call stack are filtered as
  // kBlacklistedFn. The paper's list has 58 globally ignored functions.
  std::set<std::string> ignored_functions;

  // The default global ignore list every configuration starts from.
  static FilterConfig Defaults();
};

}  // namespace lockdoc

#endif  // SRC_CORE_FILTER_CONFIG_H_
