// Post-processing filter configuration (paper Sec. 5.3 and 6): a black list
// of (de)initialization functions whose member accesses are excluded
// (objects under construction/teardown legitimately skip locks), and a
// global black list of helper functions whose accesses deliberately bypass
// locking (atomic_read() and friends). Member-level filtering (atomic_t
// members, lock members, out-of-scope members) is encoded in the type
// layouts themselves; `blacklisted_members` adds a per-run overlay consumed
// by the violation forensics, which reports — never silently drops — what
// it suppressed.
//
// A configuration is loadable from a file: one name per line under
// bracketed section headers, with '#' comments and blank lines ignored.
//
//   [ignored-functions]
//   atomic_read
//   [init-teardown-functions]
//   inode_init_once
//   [blacklisted-members]
//   inode.i_count           # type.member, or qualified inode:ext4.i_count
//
// Parse failures are typed errors naming the line (the CLI maps them to
// exit 64, like any other usage error).
#ifndef SRC_CORE_FILTER_CONFIG_H_
#define SRC_CORE_FILTER_CONFIG_H_

#include <set>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace lockdoc {

struct FilterConfig {
  // Accesses with any of these functions on the call stack are filtered as
  // kInitTeardown. The paper's list has 99 entries for 9 data types.
  std::set<std::string> init_teardown_functions;
  // Accesses with any of these functions on the call stack are filtered as
  // kBlacklistedFn. The paper's list has 58 globally ignored functions.
  std::set<std::string> ignored_functions;
  // Members whose counterexample groups the forensics suppresses (with
  // suppressed-count accounting). Entries are "type.member" or the
  // subclass-qualified "type:subclass.member".
  std::set<std::string> blacklisted_members;

  // The default global ignore list every configuration starts from.
  static FilterConfig Defaults();
};

// Parses the sectioned one-name-per-line format above into a FilterConfig
// starting from an EMPTY config (not Defaults()), so a file fully describes
// the resulting lists. Errors name the offending line.
Result<FilterConfig> ParseFilterConfigText(std::string_view text);

// ParseFilterConfigText over the file's contents; unreadable files are
// errors naming the path.
Result<FilterConfig> LoadFilterConfigFile(const std::string& path);

}  // namespace lockdoc

#endif  // SRC_CORE_FILTER_CONFIG_H_
