// The full LockDoc report: every analysis the paper's evaluation runs —
// trace statistics, documentation validation, rule mining summary,
// violations, lock ordering — rendered into one text document. This is the
// artifact a kernel developer would actually read; the per-table bench
// binaries exist to compare against the paper, this exists to be used.
#ifndef SRC_CORE_REPORT_H_
#define SRC_CORE_REPORT_H_

#include <memory>
#include <string>

#include "src/core/analysis_context.h"
#include "src/core/filter_config.h"
#include "src/core/pipeline.h"
#include "src/core/rule.h"
#include "src/model/type_registry.h"
#include "src/report/ir.h"

namespace lockdoc {

struct ReportOptions {
  // Validate these documented rules (empty: skip the validation section).
  std::string documented_rules_text;
  // Maximum violation examples listed; clipping is reported ("showing N of
  // M counterexample groups"), never silent.
  size_t max_violation_examples = 10;
  // Include the lock-ordering section.
  bool lock_order = true;
  // Include the acquisition-mode section.
  bool modes = true;
  // Include generated documentation for every observed population (can be
  // long); when false only the mining summary table is included.
  bool full_documentation = false;
  // Forensics blacklist for the violations section (null: no suppression).
  std::shared_ptr<const FilterConfig> forensics_filter;
};

// Builds the complete report as a structured document from a shared
// analysis context: rules, observation indexes, and the lock-order graph
// all come from (and are memoized in) `context`, so a multi-pass run pays
// for each at most once. The context must carry a type registry.
ReportDocument BuildReportDocument(AnalysisContext& context,
                                   const ReportOptions& options = {});

// The document's text rendering — byte-identical to the pre-IR renderer.
std::string RenderReport(AnalysisContext& context, const ReportOptions& options = {});

// Legacy convenience overload: renders from a completed pipeline result by
// wrapping it in a one-shot context seeded with the result's rules. The
// snapshot is self-contained (it carries the trace statistics and resolves
// its own strings), so the original trace is not needed; `registry` must be
// the one `result` was produced with.
std::string RenderReport(const TypeRegistry& registry, const PipelineResult& result,
                         const ReportOptions& options = {});

}  // namespace lockdoc

#endif  // SRC_CORE_REPORT_H_
