#include "src/core/filter_config.h"

#include "src/util/file_io.h"
#include "src/util/string_util.h"

namespace lockdoc {

FilterConfig FilterConfig::Defaults() {
  FilterConfig config;
  config.ignored_functions = {
      "atomic_read",      "atomic_set",        "atomic_inc",        "atomic_dec",
      "atomic_add",       "atomic_sub",        "atomic_inc_return", "atomic_dec_return",
      "atomic_cmpxchg",   "atomic_xchg",       "atomic64_read",     "atomic64_set",
      "atomic_long_read", "atomic_long_set",   "cmpxchg",           "xchg",
      "READ_ONCE",        "WRITE_ONCE",        "test_bit",          "set_bit",
      "clear_bit",        "test_and_set_bit",  "test_and_clear_bit",
  };
  return config;
}

Result<FilterConfig> ParseFilterConfigText(std::string_view text) {
  FilterConfig config;
  std::set<std::string>* section = nullptr;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view raw = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    std::string line = std::string(Trim(raw));
    // Strip trailing comments; a '#' only ever introduces one.
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = std::string(Trim(line.substr(0, hash)));
    }
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::Error(StrFormat("filter config line %zu: unterminated section header",
                                       line_number));
      }
      std::string name = line.substr(1, line.size() - 2);
      if (name == "init-teardown-functions") {
        section = &config.init_teardown_functions;
      } else if (name == "ignored-functions") {
        section = &config.ignored_functions;
      } else if (name == "blacklisted-members") {
        section = &config.blacklisted_members;
      } else {
        return Status::Error(StrFormat(
            "filter config line %zu: unknown section '[%s]' (expected "
            "[init-teardown-functions], [ignored-functions] or [blacklisted-members])",
            line_number, name.c_str()));
      }
      continue;
    }
    if (section == nullptr) {
      return Status::Error(StrFormat(
          "filter config line %zu: name '%s' before any section header", line_number,
          line.c_str()));
    }
    for (char c : line) {
      if (c == ' ' || c == '\t' || c == '=') {
        return Status::Error(StrFormat(
            "filter config line %zu: '%s' is not a single name (one name per line)",
            line_number, line.c_str()));
      }
    }
    section->insert(line);
  }
  return config;
}

Result<FilterConfig> LoadFilterConfigFile(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) {
    return Status::Error(StrFormat("filter config %s: %s", path.c_str(),
                                   text.status().message().c_str()));
  }
  return ParseFilterConfigText(text.value());
}

}  // namespace lockdoc
