#include "src/core/filter_config.h"

namespace lockdoc {

FilterConfig FilterConfig::Defaults() {
  FilterConfig config;
  config.ignored_functions = {
      "atomic_read",      "atomic_set",        "atomic_inc",        "atomic_dec",
      "atomic_add",       "atomic_sub",        "atomic_inc_return", "atomic_dec_return",
      "atomic_cmpxchg",   "atomic_xchg",       "atomic64_read",     "atomic64_set",
      "atomic_long_read", "atomic_long_set",   "cmpxchg",           "xchg",
      "READ_ONCE",        "WRITE_ONCE",        "test_bit",          "set_bit",
      "clear_bit",        "test_and_set_bit",  "test_and_clear_bit",
  };
  return config;
}

}  // namespace lockdoc
