#include "src/core/rule_checker.h"

#include <algorithm>
#include <map>

#include "src/util/logging.h"

namespace lockdoc {

std::string_view RuleVerdictSymbol(RuleVerdict verdict) {
  switch (verdict) {
    case RuleVerdict::kUnobserved:
      return "-";
    case RuleVerdict::kCorrect:
      return "!";
    case RuleVerdict::kAmbivalent:
      return "~";
    case RuleVerdict::kIncorrect:
      return "#";
  }
  return "?";
}

double RuleCheckSummary::correct_pct() const {
  return observed == 0 ? 0.0 : 100.0 * static_cast<double>(correct) / static_cast<double>(observed);
}
double RuleCheckSummary::ambivalent_pct() const {
  return observed == 0 ? 0.0
                       : 100.0 * static_cast<double>(ambivalent) / static_cast<double>(observed);
}
double RuleCheckSummary::incorrect_pct() const {
  return observed == 0 ? 0.0
                       : 100.0 * static_cast<double>(incorrect) / static_cast<double>(observed);
}

RuleChecker::RuleChecker(const TypeRegistry* registry, const ObservationStore* store,
                         const MemberAccessIndex* member_index,
                         const LockPostingIndex* postings)
    : registry_(registry), store_(store), member_index_(member_index), postings_(postings) {
  LOCKDOC_CHECK(registry_ != nullptr);
  LOCKDOC_CHECK(store_ != nullptr);
}

RuleCheckResult RuleChecker::Check(const LockingRule& rule) const {
  RuleCheckResult result;
  result.rule = rule;

  std::optional<TypeId> type = registry_->FindType(rule.member.type_name);
  if (!type.has_value()) {
    result.verdict = RuleVerdict::kUnobserved;
    return result;
  }
  std::optional<MemberIndex> member =
      registry_->layout(*type).FindMember(rule.member.member_name);
  if (!member.has_value()) {
    result.verdict = RuleVerdict::kUnobserved;
    return result;
  }

  // Subclass scope: an explicit subclass restricts the population; otherwise
  // the rule is checked against every subclass (plus the unsubclassed
  // population).
  std::vector<SubclassId> subclasses;
  if (rule.member.subclass.empty()) {
    subclasses.push_back(kNoSubclass);
    for (SubclassId sub : registry_->SubclassesOf(*type)) {
      subclasses.push_back(sub);
    }
  } else {
    std::optional<SubclassId> sub = registry_->FindSubclass(*type, rule.member.subclass);
    if (!sub.has_value()) {
      result.verdict = RuleVerdict::kUnobserved;
      return result;
    }
    subclasses.push_back(*sub);
  }

  // Intern the documented rule once; a rule naming a lock class that was
  // never observed cannot comply with any interned observation, so only the
  // totals count for it. With the shared posting lists, the rule's
  // complying-sequence set is computed once here and each group below is a
  // binary-search lookup instead of a subsequence scan.
  std::optional<IdSeq> rule_ids = store_->pool().FindSeq(rule.locks);
  std::vector<uint32_t> complying;
  bool have_complying = false;
  if (postings_ != nullptr && rule_ids.has_value()) {
    complying = postings_->ComplyingSeqs(*store_, *rule_ids);
    have_complying = true;
  }
  auto group_complies = [&](const ObservationGroup& group) {
    if (!rule_ids.has_value()) {
      return false;
    }
    return have_complying
               ? std::binary_search(complying.begin(), complying.end(), group.lockseq_id)
               : IsSubsequenceIds(*rule_ids, store_->id_seq(group.lockseq_id));
  };
  for (SubclassId sub : subclasses) {
    MemberObsKey key;
    key.type = *type;
    key.subclass = sub;
    key.member = *member;
    const std::vector<ObservationGroup>& groups = store_->GroupsFor(key);
    if (member_index_ != nullptr) {
      const MemberAccessIndex::Entry* entry = member_index_->Find(key);
      if (entry == nullptr) {
        continue;
      }
      for (uint32_t index : entry->For(rule.access)) {
        ++result.total;
        if (group_complies(groups[index])) {
          ++result.sa;
        }
      }
      continue;
    }
    for (const ObservationGroup& group : groups) {
      if (group.effective() != rule.access) {
        continue;
      }
      ++result.total;
      if (group_complies(group)) {
        ++result.sa;
      }
    }
  }

  if (result.total == 0) {
    result.verdict = RuleVerdict::kUnobserved;
    return result;
  }
  result.sr = static_cast<double>(result.sa) / static_cast<double>(result.total);
  if (result.sa == result.total) {
    result.verdict = RuleVerdict::kCorrect;
  } else if (result.sa == 0) {
    result.verdict = RuleVerdict::kIncorrect;
  } else {
    result.verdict = RuleVerdict::kAmbivalent;
  }
  return result;
}

std::vector<RuleCheckResult> RuleChecker::CheckAll(const RuleSet& rules,
                                                   ThreadPool* pool) const {
  std::vector<RuleCheckResult> results(rules.size());
  auto check_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = Check(rules.rules()[i]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(rules.size(), check_range);
  } else {
    check_range(0, rules.size());
  }
  return results;
}

std::vector<RuleCheckSummary> RuleChecker::Summarize(
    const std::vector<RuleCheckResult>& results) {
  std::map<std::string, RuleCheckSummary> by_type;
  std::vector<std::string> order;
  for (const RuleCheckResult& result : results) {
    const std::string& type_name = result.rule.member.type_name;
    auto it = by_type.find(type_name);
    if (it == by_type.end()) {
      RuleCheckSummary summary;
      summary.type_name = type_name;
      it = by_type.emplace(type_name, std::move(summary)).first;
      order.push_back(type_name);
    }
    RuleCheckSummary& summary = it->second;
    ++summary.documented;
    switch (result.verdict) {
      case RuleVerdict::kUnobserved:
        ++summary.unobserved;
        break;
      case RuleVerdict::kCorrect:
        ++summary.observed;
        ++summary.correct;
        break;
      case RuleVerdict::kAmbivalent:
        ++summary.observed;
        ++summary.ambivalent;
        break;
      case RuleVerdict::kIncorrect:
        ++summary.observed;
        ++summary.incorrect;
        break;
    }
  }
  std::vector<RuleCheckSummary> summaries;
  summaries.reserve(order.size());
  for (const std::string& type_name : order) {
    summaries.push_back(by_type[type_name]);
  }
  return summaries;
}

}  // namespace lockdoc
