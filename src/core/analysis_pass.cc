#include "src/core/analysis_pass.h"

#include <chrono>
#include <filesystem>
#include <utility>

#include "src/core/doc_generator.h"
#include "src/core/lock_order.h"
#include "src/core/mode_analysis.h"
#include "src/core/report.h"
#include "src/core/rule_checker.h"
#include "src/core/rule_diff.h"
#include "src/core/violation_finder.h"
#include "src/report/render_text.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// `lockdoc check`: validate documented rules against the observations
// (paper Tab. 4/5). The documented-rules text is supplied via PassOptions
// so core stays independent of the simulated kernel.
class CheckPass : public AnalysisPass {
 public:
  std::string_view name() const override { return "check"; }
  std::string_view description() const override {
    return "validate documented locking rules against the trace";
  }

  Status Build(AnalysisContext& context, const PassOptions& opts,
               ReportDocument& doc) const override {
    auto rules = RuleSet::ParseText(opts.documented_rules_text);
    if (!rules.ok()) {
      return rules.status();
    }
    RuleChecker checker(&context.registry(), &context.observations(),
                        &context.member_access_index(), &context.lock_postings());
    auto t0 = Clock::now();
    std::vector<RuleCheckResult> checked = checker.CheckAll(rules.value(), &context.pool());
    context.timings().Add("rule checking", Seconds(t0, Clock::now()), rules.value().size());
    ReportSection& section = AddSection(doc, "rule-check");
    for (const RuleCheckResult& r : checked) {
      std::string verdict(RuleVerdictSymbol(r.verdict));
      std::string sr = r.total == 0 ? "n/a" : FormatPercent(r.sr);
      ReportNode& node = AddTextNode(
          section, "rule-verdict",
          StrFormat("%s  %-70s sr=%7s (%llu/%llu)\n", verdict.c_str(),
                    r.rule.ToString().c_str(), sr.c_str(),
                    static_cast<unsigned long long>(r.sa),
                    static_cast<unsigned long long>(r.total)));
      node.fields = {{"verdict", verdict},
                     {"rule", r.rule.ToString()},
                     {"sr", sr},
                     {"sa", std::to_string(r.sa)},
                     {"total", std::to_string(r.total)}};
    }
    AddDecoration(section, "\n");
    ReportNode& table = AddTable(
        section, "check-summary",
        {"Data Type", "#R", "#No", "#Ob", "! (%)", "~ (%)", "# (%)"});
    for (const RuleCheckSummary& s : RuleChecker::Summarize(checked)) {
      table.table.rows.push_back(
          {s.type_name, std::to_string(s.documented), std::to_string(s.unobserved),
           std::to_string(s.observed), StrFormat("%.2f", s.correct_pct()),
           StrFormat("%.2f", s.ambivalent_pct()), StrFormat("%.2f", s.incorrect_pct())});
    }
    return Status::Ok();
  }
};

// `lockdoc derive`: render the mined winning rules as kernel-style
// documentation (paper Fig. 8) or as a machine-readable rule spec.
class DerivePass : public AnalysisPass {
 public:
  std::string_view name() const override { return "derive"; }
  std::string_view description() const override {
    return "mine winning rules and render generated documentation";
  }

  Status Build(AnalysisContext& context, const PassOptions& opts,
               ReportDocument& doc) const override {
    const std::vector<DerivationResult>& rules = context.rules();
    const TypeRegistry& registry = context.registry();
    ReportSection& section = AddSection(doc, "documentation");

    DocGenOptions doc_options;
    doc_options.include_support = opts.doc_support;
    DocGenerator generator(&registry, doc_options);

    // --out-dir: write the full documentation bundle instead of stdout.
    if (!opts.doc_out_dir.empty()) {
      std::filesystem::create_directories(opts.doc_out_dir);
      auto written = generator.GenerateAll(rules, opts.doc_out_dir);
      if (!written.ok()) {
        return written.status();
      }
      ReportNode& node = AddTextNode(
          section, "bundle",
          StrFormat("wrote %zu documentation files to %s\n", written.value(),
                    opts.doc_out_dir.c_str()));
      node.fields = {{"files", std::to_string(written.value())},
                     {"dir", opts.doc_out_dir}};
      return Status::Ok();
    }

    for (TypeId type = 0; type < registry.type_count(); ++type) {
      const std::string& type_name = registry.layout(type).name();
      if (!opts.doc_type.empty() && type_name != opts.doc_type) {
        continue;
      }
      std::vector<SubclassId> subclasses = {kNoSubclass};
      for (SubclassId sub : registry.SubclassesOf(type)) {
        subclasses.push_back(sub);
      }
      for (SubclassId sub : subclasses) {
        if (!opts.doc_subclass.empty() &&
            registry.SubclassName(type, sub) != opts.doc_subclass) {
          continue;
        }
        std::string text = opts.doc_spec ? generator.GenerateRuleSpec(type, sub, rules)
                                         : generator.Generate(type, sub, rules);
        // Skip populations with no mined rules to keep the output readable.
        bool has_rules = false;
        for (const DerivationResult& rule : rules) {
          if (rule.key.type == type && rule.key.subclass == sub) {
            has_rules = true;
            break;
          }
        }
        if (has_rules) {
          ReportNode& node =
              AddTextNode(section, "population", StrFormat("%s\n", text.c_str()));
          node.fields = {{"type", type_name},
                         {"population", registry.QualifiedName(type, sub)}};
        }
      }
    }
    return Status::Ok();
  }
};

// `lockdoc violations`: locate accesses that break the winning rules
// (paper Tab. 7/8).
class ViolationsPass : public AnalysisPass {
 public:
  std::string_view name() const override { return "violations"; }
  std::string_view description() const override {
    return "find accesses violating the mined winning rules";
  }

  Status Build(AnalysisContext& context, const PassOptions& opts,
               ReportDocument& doc) const override {
    const std::vector<DerivationResult>& rules = context.rules();
    ViolationFinder finder(&context.db(), &context.registry(), &context.observations(),
                           &context.member_access_index(), &context.lock_postings());
    auto t0 = Clock::now();
    std::vector<Violation> violations = finder.FindAll(rules, &context.pool());
    context.timings().Add("violation finding", Seconds(t0, Clock::now()), rules.size());

    ReportSection& section = AddSection(doc, "violations");
    ReportNode& table = AddTable(section, "violation-summary",
                                 {"Data Type", "Events", "Members", "Contexts"});
    for (const ViolationSummaryRow& row : finder.Summarize(violations)) {
      table.table.rows.push_back({row.type_name, std::to_string(row.events),
                                  std::to_string(row.members),
                                  std::to_string(row.contexts)});
    }
    AddDecoration(section, "\n");
    ViolationForensics forensics = finder.Forensics(violations, opts.violation_limit,
                                                    opts.forensics_filter.get());
    for (CexGroupData& group : forensics.groups) {
      AddCexGroup(section, std::move(group));
    }
    AppendForensicsNotes(section, forensics, /*report_style=*/false);
    return Status::Ok();
  }
};

// `lockdoc lock-order`: the lockdep-style ordering graph and its potential
// deadlock cycles.
class LockOrderPass : public AnalysisPass {
 public:
  std::string_view name() const override { return "lock-order"; }
  std::string_view description() const override {
    return "report the lock-ordering graph and potential deadlock cycles";
  }

  Status Build(AnalysisContext& context, const PassOptions& /*opts*/,
               ReportDocument& doc) const override {
    const LockOrderGraph& graph = context.lock_order_graph();
    ReportSection& section = AddSection(doc, "lock-order");
    AddTextNode(section, "graph", StrFormat("%s\n", graph.Report(context.db()).c_str()));
    AddTextNode(section, "cycles-header", "potential deadlock cycles:\n");
    auto cycles = graph.FindCycles();
    if (cycles.empty()) {
      AddTextNode(section, "no-cycles", "  none\n");
    }
    for (const LockOrderCycle& cycle : cycles) {
      ReportNode& node =
          AddTextNode(section, "cycle", StrFormat("  %s\n", cycle.ToString().c_str()));
      node.fields = {{"path", cycle.ToString()}};
    }
    return Status::Ok();
  }
};

// `lockdoc modes`: reader/writer acquisition-mode distributions; by default
// only the suspicious writes under merely-shared holds.
class ModesPass : public AnalysisPass {
 public:
  std::string_view name() const override { return "modes"; }
  std::string_view description() const override {
    return "report reader/writer acquisition modes of the winning rules";
  }

  Status Build(AnalysisContext& context, const PassOptions& opts,
               ReportDocument& doc) const override {
    const std::vector<DerivationResult>& rules = context.rules();
    bool all = opts.modes_all;
    const TypeRegistry& registry = context.registry();
    ModeAnalyzer analyzer(&context.db(), &registry, &context.observations(),
                          &context.member_access_index(), &context.lock_postings());
    auto entries = all ? analyzer.Analyze(rules) : analyzer.FindSharedModeWrites(rules);
    ReportSection& section = AddSection(doc, "modes");
    if (entries.empty()) {
      AddTextNode(section, "empty",
                  StrFormat("no %s found\n", all ? "lock rules" : "shared-mode writes"));
      return Status::Ok();
    }
    for (const ModeReportEntry& entry : entries) {
      ReportNode& node = AddTextNode(section, "mode-entry", analyzer.RenderEntry(entry));
      node.fields = {
          {"member", registry.QualifiedName(entry.key.type, entry.key.subclass) + "." +
                         registry.layout(entry.key.type).member(entry.key.member).name},
          {"access", std::string(AccessTypeName(entry.access))},
          {"rule", LockSeqToString(entry.rule)},
          {"suspicious", entry.suspicious ? "true" : "false"}};
    }
    return Status::Ok();
  }
};

// `lockdoc report`: the full analysis document. Thin shim over
// RenderReport, which itself draws everything from the shared context.
class ReportPass : public AnalysisPass {
 public:
  std::string_view name() const override { return "report"; }
  std::string_view description() const override {
    return "render the complete analysis report";
  }

  Status Build(AnalysisContext& context, const PassOptions& opts,
               ReportDocument& doc) const override {
    ReportOptions options;
    options.documented_rules_text = opts.documented_rules_text;
    options.full_documentation = opts.report_full;
    options.max_violation_examples = opts.violation_limit;
    options.forensics_filter = opts.forensics_filter;
    ReportDocument report = BuildReportDocument(context, options);
    for (ReportSection& section : report.sections) {
      doc.sections.push_back(std::move(section));
    }
    return Status::Ok();
  }
};

// `lockdoc diff`: rule drift between a baseline context (the OLD input) and
// this context (the NEW input).
class DiffPass : public AnalysisPass {
 public:
  std::string_view name() const override { return "diff"; }
  std::string_view description() const override {
    return "diff winning rules against a baseline input";
  }

  Status Build(AnalysisContext& context, const PassOptions& opts,
               ReportDocument& doc) const override {
    AnalysisContext* baseline = opts.baseline;
    if (baseline == nullptr) {
      return Status::Error("the diff pass needs a baseline input (--baseline OLD)");
    }
    RuleDiffOptions diff_options;
    diff_options.include_unchanged = opts.diff_all;
    auto drifts = DiffRules(baseline->rules(), context.rules(), diff_options);
    ReportSection& section = AddSection(doc, "rule-diff");
    if (drifts.empty()) {
      AddTextNode(section, "no-drift", "no rule drift\n");
      return Status::Ok();
    }
    ReportNode& node =
        AddTextNode(section, "drift", RenderRuleDiff(drifts, context.registry()));
    node.fields = {{"drifts", std::to_string(drifts.size())}};
    return Status::Ok();
  }
};

}  // namespace

Status AnalysisPass::Run(AnalysisContext& context, const PassOptions& opts,
                         PassOutput& out) const {
  out.doc = ReportDocument{};
  out.doc.pass = std::string(name());
  out.text.clear();
  Status status = Build(context, opts, out.doc);
  if (status.ok()) {
    // The byte-compat contract: `text` is exactly what the pre-IR pass
    // printed, regenerated from the document by the pinned text renderer.
    out.text = RenderReportText(out.doc);
  }
  return status;
}

Status ApplyPassOption(PassOptions& opts, std::string_view key, std::string_view value) {
  auto bad = [&key](const char* what) {
    return Status::Error(StrFormat("pass option %.*s: %s", static_cast<int>(key.size()),
                                   key.data(), what));
  };
  auto parse_bool = [&](bool* out) {
    if (value == "1" || value == "true") {
      *out = true;
      return Status::Ok();
    }
    if (value == "0" || value == "false") {
      *out = false;
      return Status::Ok();
    }
    return bad("expected a boolean (0/1/true/false)");
  };
  if (key == "limit") {
    size_t limit = 0;
    for (char c : value) {
      if (c < '0' || c > '9') {
        return bad("expected an unsigned integer");
      }
      limit = limit * 10 + static_cast<size_t>(c - '0');
    }
    if (value.empty()) {
      return bad("expected an unsigned integer");
    }
    opts.violation_limit = limit;
    return Status::Ok();
  }
  if (key == "all") {
    bool all = false;
    Status status = parse_bool(&all);
    if (status.ok()) {
      opts.modes_all = all;
      opts.diff_all = all;
    }
    return status;
  }
  if (key == "full") {
    return parse_bool(&opts.report_full);
  }
  if (key == "spec") {
    return parse_bool(&opts.doc_spec);
  }
  if (key == "support") {
    return parse_bool(&opts.doc_support);
  }
  if (key == "type") {
    opts.doc_type = std::string(value);
    return Status::Ok();
  }
  if (key == "subclass") {
    opts.doc_subclass = std::string(value);
    return Status::Ok();
  }
  return bad("unknown pass option");
}

const PassRegistry& PassRegistry::Default() {
  static const PassRegistry* const registry = [] {
    auto* r = new PassRegistry();
    r->Register(std::make_unique<CheckPass>());
    r->Register(std::make_unique<DerivePass>());
    r->Register(std::make_unique<ViolationsPass>());
    r->Register(std::make_unique<LockOrderPass>());
    r->Register(std::make_unique<ModesPass>());
    r->Register(std::make_unique<ReportPass>());
    r->Register(std::make_unique<DiffPass>());
    return r;
  }();
  return *registry;
}

void PassRegistry::Register(std::unique_ptr<AnalysisPass> pass) {
  passes_.push_back(std::move(pass));
}

const AnalysisPass* PassRegistry::Find(std::string_view name) const {
  for (const std::unique_ptr<AnalysisPass>& pass : passes_) {
    if (pass->name() == name) {
      return pass.get();
    }
  }
  return nullptr;
}

std::string PassRegistry::JoinedNames() const {
  std::string out;
  for (const std::unique_ptr<AnalysisPass>& pass : passes_) {
    if (!out.empty()) {
      out += ", ";
    }
    out += pass->name();
  }
  return out;
}

}  // namespace lockdoc
