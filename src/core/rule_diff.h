// Rule drift — comparing mined locking rules across two traces.
//
// The paper's motivation (Sec. 1/2.4) is that documentation rots as the
// code evolves: "documented locking rules may also simply have been
// forgotten as the code evolved". Running LockDoc on two kernel versions
// (or two workloads) and diffing the winners turns that observation into a
// tool: members whose winning rule *changed* are exactly where the
// documentation must be re-examined.
#ifndef SRC_CORE_RULE_DIFF_H_
#define SRC_CORE_RULE_DIFF_H_

#include <string>
#include <vector>

#include "src/core/derivator.h"
#include "src/model/type_registry.h"

namespace lockdoc {

enum class RuleDriftKind {
  kAdded = 0,     // Member observed only in the new trace.
  kRemoved = 1,   // Member observed only in the old trace.
  kChanged = 2,   // Winner differs.
  kUnchanged = 3,
};

std::string_view RuleDriftKindName(RuleDriftKind kind);

struct RuleDrift {
  MemberObsKey key;
  AccessType access = AccessType::kRead;
  RuleDriftKind kind = RuleDriftKind::kUnchanged;
  // Empty for kAdded / kRemoved respectively.
  LockSeq old_rule;
  LockSeq new_rule;
  double old_sr = 0.0;
  double new_sr = 0.0;
};

struct RuleDiffOptions {
  // Report kUnchanged entries too (off by default).
  bool include_unchanged = false;
};

// Diffs two derivation runs over the SAME type registry. Results are sorted
// by type, subclass, member, access.
std::vector<RuleDrift> DiffRules(const std::vector<DerivationResult>& old_rules,
                                 const std::vector<DerivationResult>& new_rules,
                                 const RuleDiffOptions& options = {});

// Renders a drift list as text, e.g.
//   ~ inode:ext4.i_blocks w: ES(i_lock in inode) -> no lock (sr 1.00 -> 1.00)
std::string RenderRuleDiff(const std::vector<RuleDrift>& drifts, const TypeRegistry& registry);

}  // namespace lockdoc

#endif  // SRC_CORE_RULE_DIFF_H_
