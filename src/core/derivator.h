// Locking-rule derivation (paper Sec. 4.3 and 5.4): per member and access
// type, enumerate locking-rule hypotheses from the observed lock
// combinations, score each by absolute support `sa` (number of complying
// folded observations) and relative support `sr = sa / total`, and select
// the winning hypothesis:
//
//   among all hypotheses with sr >= tac (the acceptance threshold), pick the
//   one with the LOWEST support; break ties toward MORE locks.
//
// The "no lock" hypothesis always has sr = 1, so it only wins when no lock
// hypothesis clears the threshold. Picking the lowest-support hypothesis
// (rather than the highest) is what makes the approach robust against a
// correct rule being dominated by one of its own sub-rules (Sec. 4.3).
#ifndef SRC_CORE_DERIVATOR_H_
#define SRC_CORE_DERIVATOR_H_

#include <optional>
#include <vector>

#include "src/core/observations.h"
#include "src/model/lock_class.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

struct Hypothesis {
  LockSeq locks;
  uint64_t sa = 0;
  double sr = 0.0;

  bool is_no_lock() const { return locks.empty(); }
};

struct DerivationResult {
  MemberObsKey key;
  AccessType access = AccessType::kRead;
  // Total folded observations of this member with this effective access.
  uint64_t total = 0;
  // All enumerated hypotheses above the cutoff threshold, sorted by
  // descending sr, then ascending lock count, then lexicographically.
  std::vector<Hypothesis> hypotheses;
  // Candidate hypotheses scored before the report cutoff — feeds the
  // mining-effectiveness counters in PipelineTimings.
  uint64_t candidates_scored = 0;
  // The selected rule; nullopt iff total == 0 (member never observed).
  std::optional<Hypothesis> winner;

  bool observed() const { return total > 0; }
  bool winner_is_no_lock() const { return winner.has_value() && winner->is_no_lock(); }
};

struct DerivatorOptions {
  // tac: minimum relative support for a hypothesis to be acceptable.
  double accept_threshold = 0.9;
  // tco: hypotheses below this are dropped from the report (the winner is
  // always kept).
  double cutoff_threshold = 0.0;
  // Combinations longer than this are not expanded into the full
  // subsequence powerset (guards against pathological nesting depth).
  size_t max_subset_locks = 10;
  // When true, additionally enumerates order permutations of each subset
  // (the paper's Tab. 2 lists the never-observed "min_lock -> sec_lock"
  // ordering with sa = 0). Off by default: permutations inconsistent with
  // the trace can never win.
  bool enumerate_permutations = false;
  size_t max_permutation_size = 4;
};

class RuleDerivator {
 public:
  explicit RuleDerivator(DerivatorOptions options = {});

  // Derives the rule for one member + access type.
  DerivationResult Derive(const ObservationStore& store, const MemberObsKey& key,
                          AccessType access) const;

  // Derives rules for every observed member and both access types (results
  // with total == 0 are omitted). Work is distributed over `pool` when one
  // is given (nullptr runs serially); results are byte-identical at any
  // thread count — items are processed into per-index slots and merged in
  // key order.
  std::vector<DerivationResult> DeriveAll(const ObservationStore& store,
                                          ThreadPool* pool = nullptr) const;

  const DerivatorOptions& options() const { return options_; }

 private:
  DerivatorOptions options_;
};

// Exposed for testing and for the ablation benches: all distinct
// subsequences of `seq`, including the empty one, as a sorted deduplicated
// vector. If `seq` is longer than `max_locks` (or than 63, the bitmask
// powerset limit), only single locks, contiguous prefixes, ordered pairs,
// and the full sequence are produced. This is the string-based reference of
// the interned EnumerateSubsequenceIds the hot path uses (via the
// ObservationStore's shared enumeration cache).
std::vector<LockSeq> EnumerateSubsequences(const LockSeq& seq, size_t max_locks);

}  // namespace lockdoc

#endif  // SRC_CORE_DERIVATOR_H_
