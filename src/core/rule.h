// Locking rules and the textual rule-spec notation.
//
// The locking-rule checker needs the officially documented rules in
// machine-readable form (Sec. 5.5: "first need to be manually converted into
// LockDoc's internal locking-rule notation"). That notation, one rule per
// line:
//
//   # comment
//   inode.i_state w: ES(i_lock in inode)
//   inode:ext4.i_hash w: inode_hash_lock -> ES(i_lock in inode)
//   journal_t.j_flags rw: ES(j_state_lock in journal_t)
//   dentry.d_name r: no lock
//
// "rw" expands into separate read and write rules. A type without an
// explicit ":subclass" applies to all subclasses of that type.
#ifndef SRC_CORE_RULE_H_
#define SRC_CORE_RULE_H_

#include <string>
#include <vector>

#include "src/model/ids.h"
#include "src/model/lock_class.h"
#include "src/util/status.h"

namespace lockdoc {

struct MemberRef {
  std::string type_name;
  std::string subclass;  // Empty: applies to all subclasses.
  std::string member_name;

  // "inode:ext4.i_hash" / "inode.i_hash".
  std::string ToString() const;

  friend auto operator<=>(const MemberRef&, const MemberRef&) = default;
};

struct LockingRule {
  MemberRef member;
  AccessType access = AccessType::kRead;
  LockSeq locks;  // Empty sequence == "no lock".

  std::string ToString() const;
};

class RuleSet {
 public:
  void Add(LockingRule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<LockingRule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  // Rules matching a member reference (and access type).
  std::vector<const LockingRule*> RulesFor(const MemberRef& member, AccessType access) const;

  std::string ToText() const;
  static Result<RuleSet> ParseText(std::string_view text);

 private:
  std::vector<LockingRule> rules_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_RULE_H_
