#include "src/core/snapshot.h"

#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "src/db/schema.h"
#include "src/util/file_io.h"
#include "src/util/mmap_file.h"
#include "src/util/string_util.h"
#include "src/util/varint.h"

namespace lockdoc {
namespace {

// Stats structs are serialized as a count-prefixed varint list in member
// order; the count is pinned by the format version, so adding a field means
// bumping the snapshot format versions.
constexpr uint64_t ImportStats::*kImportStatsFields[] = {
    &ImportStats::events,
    &ImportStats::accesses_total,
    &ImportStats::accesses_kept,
    &ImportStats::accesses_filtered,
    &ImportStats::txns,
    &ImportStats::locked_txns,
    &ImportStats::lock_instances,
    &ImportStats::allocations,
    &ImportStats::dangling_locks_closed,
    &ImportStats::live_allocations_at_end,
    &ImportStats::realloc_overlaps,
    &ImportStats::unmatched_releases,
    &ImportStats::unresolved_lock_ops,
    &ImportStats::unknown_type_allocs,
};

constexpr uint64_t TraceStats::*kTraceStatsFields[] = {
    &TraceStats::total_events,
    &TraceStats::lock_ops,
    &TraceStats::lock_acquires,
    &TraceStats::lock_releases,
    &TraceStats::memory_accesses,
    &TraceStats::reads,
    &TraceStats::writes,
    &TraceStats::allocations,
    &TraceStats::deallocations,
    &TraceStats::static_lock_defs,
    &TraceStats::distinct_locks,
    &TraceStats::distinct_static_locks,
    &TraceStats::distinct_embedded_locks,
};

template <typename Stats, size_t N>
void PutStats(std::string& out, const Stats& stats, uint64_t Stats::*const (&fields)[N]) {
  PutVarint(out, N);
  for (auto field : fields) {
    PutVarint(out, stats.*field);
  }
}

template <typename Stats, size_t N>
bool GetStats(ByteCursor& in, Stats* stats, uint64_t Stats::*const (&fields)[N]) {
  uint64_t count = 0;
  if (!GetVarint(in, &count) || count != N) {
    return false;
  }
  for (auto field : fields) {
    if (!GetVarint(in, &(stats->*field))) {
      return false;
    }
  }
  return true;
}

std::string EncodeMetaSection(const AnalysisSnapshot& snapshot, size_t type_count,
                              uint64_t format_version) {
  std::string payload;
  PutVarint(payload, format_version);
  PutStats(payload, snapshot.import_stats, kImportStatsFields);
  PutStats(payload, snapshot.trace_stats, kTraceStatsFields);
  PutVarint(payload, type_count);
  return payload;
}

Status DecodeMetaSection(std::string_view payload, const TypeRegistry& registry,
                         uint64_t expected_version, AnalysisSnapshot* snapshot) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t version = 0;
  if (!GetVarint(in, &version)) {
    return Status::Error("snapshot meta: unreadable version");
  }
  if (version != expected_version) {
    return Status::Error(StrFormat("snapshot meta: format version %llu, this container reads %llu",
                                   static_cast<unsigned long long>(version),
                                   static_cast<unsigned long long>(expected_version)));
  }
  if (!GetStats(in, &snapshot->import_stats, kImportStatsFields)) {
    return Status::Error("snapshot meta: bad import stats");
  }
  if (!GetStats(in, &snapshot->trace_stats, kTraceStatsFields)) {
    return Status::Error("snapshot meta: bad trace stats");
  }
  uint64_t type_count = 0;
  if (!GetVarint(in, &type_count) || in.remaining() != 0) {
    return Status::Error("snapshot meta: bad registry shape");
  }
  if (type_count != registry.type_count()) {
    return Status::Error(
        StrFormat("snapshot meta: built against a registry with %llu types, this one has %zu",
                  static_cast<unsigned long long>(type_count), registry.type_count()));
  }
  return Status::Ok();
}

std::string EncodePoolSection(const LockClassPool& pool) {
  std::string payload;
  PutVarint(payload, pool.classes().size());
  for (const LockClass& cls : pool.classes()) {
    payload.push_back(static_cast<char>(cls.scope));
    PutLengthPrefixed(payload, cls.lock_name);
    PutLengthPrefixed(payload, cls.owner_type);
  }
  return payload;
}

constexpr uint64_t kMaxSnapshotString = 1ull << 20;

Status DecodePoolSection(std::string_view payload, LockClassPool* pool) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t count = 0;
  if (!GetVarint(in, &count) || count > in.remaining()) {
    return Status::Error("snapshot pool: bad class count");
  }
  std::vector<LockClass> classes;
  classes.reserve(count);
  std::set<LockClass> distinct;
  for (uint64_t i = 0; i < count; ++i) {
    LockClass cls;
    uint8_t scope = 0;
    if (!in.Get(&scope) || scope > static_cast<uint8_t>(LockScope::kEmbeddedOther) ||
        !GetLengthPrefixed(in, &cls.lock_name, kMaxSnapshotString) ||
        !GetLengthPrefixed(in, &cls.owner_type, kMaxSnapshotString)) {
      return Status::Error(StrFormat("snapshot pool: bad class %llu",
                                     static_cast<unsigned long long>(i)));
    }
    cls.scope = static_cast<LockScope>(scope);
    if (!distinct.insert(cls).second) {
      return Status::Error("snapshot pool: duplicate class");
    }
    classes.push_back(std::move(cls));
  }
  if (in.remaining() != 0) {
    return Status::Error("snapshot pool: trailing bytes");
  }
  pool->Reset(std::move(classes));
  return Status::Ok();
}

std::string EncodeSeqsSection(const ObservationStore& store) {
  std::string payload;
  PutVarint(payload, store.distinct_seqs());
  for (uint32_t i = 0; i < store.distinct_seqs(); ++i) {
    const IdSeq& seq = store.id_seq(i);
    PutVarint(payload, seq.size());
    for (LockId id : seq) {
      PutVarint(payload, id);
    }
  }
  return payload;
}

Status DecodeSeqsSection(std::string_view payload, size_t pool_size,
                         std::vector<IdSeq>* id_seqs) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t count = 0;
  if (!GetVarint(in, &count) || count > in.remaining() + 1) {
    return Status::Error("snapshot seqs: bad sequence count");
  }
  id_seqs->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t length = 0;
    if (!GetVarint(in, &length) || length > in.remaining()) {
      return Status::Error("snapshot seqs: bad sequence length");
    }
    IdSeq seq;
    seq.reserve(length);
    for (uint64_t j = 0; j < length; ++j) {
      uint64_t id = 0;
      if (!GetVarint(in, &id) || id >= pool_size) {
        return Status::Error("snapshot seqs: lock id out of range");
      }
      seq.push_back(static_cast<LockId>(id));
    }
    id_seqs->push_back(std::move(seq));
  }
  if (in.remaining() != 0) {
    return Status::Error("snapshot seqs: trailing bytes");
  }
  return Status::Ok();
}

// v2 seqs section: columnar fixed-width arrays instead of varints —
//   u64 seq_count | u64 total_ids | u32 len[seq_count] | u32 ids[total_ids]
// Decoding is a bounds-checked linear sweep with no varint branches.
std::string EncodeSeqsSectionV2(const ObservationStore& store) {
  std::string payload;
  uint64_t total_ids = 0;
  for (uint32_t i = 0; i < store.distinct_seqs(); ++i) {
    total_ids += store.id_seq(i).size();
  }
  AppendUint64LE(payload, store.distinct_seqs());
  AppendUint64LE(payload, total_ids);
  for (uint32_t i = 0; i < store.distinct_seqs(); ++i) {
    AppendUint32LE(payload, static_cast<uint32_t>(store.id_seq(i).size()));
  }
  for (uint32_t i = 0; i < store.distinct_seqs(); ++i) {
    for (LockId id : store.id_seq(i)) {
      AppendUint32LE(payload, id);
    }
  }
  return payload;
}

Status DecodeSeqsSectionV2(std::string_view payload, size_t pool_size,
                           std::vector<IdSeq>* id_seqs) {
  if (payload.size() < 16) {
    return Status::Error("snapshot seqs: bad sequence count");
  }
  uint64_t count = LoadUint64LE(payload.data());
  uint64_t total_ids = LoadUint64LE(payload.data() + 8);
  // Exact size up front: corrupt counts cannot drive allocations.
  if (count > payload.size() || total_ids > payload.size() ||
      payload.size() != 16 + 4 * count + 4 * total_ids) {
    return Status::Error("snapshot seqs: bad sequence count");
  }
  const char* lens = payload.data() + 16;
  const char* ids = lens + 4 * count;
  id_seqs->reserve(count);
  uint64_t consumed = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t length = LoadUint32LE(lens + 4 * i);
    if (length > total_ids - consumed) {
      return Status::Error("snapshot seqs: bad sequence length");
    }
    IdSeq seq;
    seq.reserve(length);
    for (uint32_t j = 0; j < length; ++j) {
      uint32_t id = LoadUint32LE(ids + 4 * (consumed + j));
      if (id >= pool_size) {
        return Status::Error("snapshot seqs: lock id out of range");
      }
      seq.push_back(id);
    }
    consumed += length;
    id_seqs->push_back(std::move(seq));
  }
  if (consumed != total_ids) {
    return Status::Error("snapshot seqs: trailing bytes");
  }
  return Status::Ok();
}

std::string EncodeGroupsSection(const ObservationStore& store) {
  std::string payload;
  PutVarint(payload, store.groups().size());
  for (const auto& [key, groups] : store.groups()) {
    PutVarint(payload, key.type);
    PutVarint(payload, key.subclass);
    PutVarint(payload, key.member);
    PutVarint(payload, groups.size());
    for (const ObservationGroup& group : groups) {
      PutVarint(payload, group.lockseq_id);
      PutVarint(payload, group.txn_id);
      PutVarint(payload, group.alloc_id);
      PutVarint(payload, group.n_reads);
      PutVarint(payload, group.n_writes);
      PutVarint(payload, group.seqs.size());
      for (uint64_t seq : group.seqs) {
        PutVarint(payload, seq);
      }
    }
  }
  return payload;
}

Status DecodeGroupsSection(std::string_view payload, const TypeRegistry& registry,
                           size_t seq_count,
                           std::map<MemberObsKey, std::vector<ObservationGroup>>* groups) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t key_count = 0;
  if (!GetVarint(in, &key_count) || key_count > in.remaining() + 1) {
    return Status::Error("snapshot groups: bad key count");
  }
  MemberObsKey previous;
  for (uint64_t i = 0; i < key_count; ++i) {
    uint64_t type = 0, subclass = 0, member = 0, group_count = 0;
    if (!GetVarint(in, &type) || !GetVarint(in, &subclass) || !GetVarint(in, &member) ||
        !GetVarint(in, &group_count)) {
      return Status::Error("snapshot groups: bad key");
    }
    MemberObsKey key;
    key.type = static_cast<TypeId>(type);
    key.subclass = static_cast<SubclassId>(subclass);
    key.member = static_cast<MemberIndex>(member);
    if (type >= registry.type_count() ||
        member >= registry.layout(key.type).member_count()) {
      return Status::Error("snapshot groups: key out of registry range");
    }
    if (i > 0 && !(previous < key)) {
      return Status::Error("snapshot groups: keys out of order");
    }
    previous = key;
    if (group_count > in.remaining()) {
      return Status::Error("snapshot groups: bad group count");
    }
    std::vector<ObservationGroup> member_groups;
    member_groups.reserve(group_count);
    for (uint64_t g = 0; g < group_count; ++g) {
      ObservationGroup group;
      uint64_t lockseq = 0, n_reads = 0, n_writes = 0, seq_len = 0;
      if (!GetVarint(in, &lockseq) || lockseq >= seq_count ||
          !GetVarint(in, &group.txn_id) || !GetVarint(in, &group.alloc_id) ||
          !GetVarint(in, &n_reads) || !GetVarint(in, &n_writes) ||
          !GetVarint(in, &seq_len) || seq_len > in.remaining()) {
        return Status::Error("snapshot groups: bad group");
      }
      group.lockseq_id = static_cast<uint32_t>(lockseq);
      group.n_reads = static_cast<uint32_t>(n_reads);
      group.n_writes = static_cast<uint32_t>(n_writes);
      group.seqs.reserve(seq_len);
      for (uint64_t s = 0; s < seq_len; ++s) {
        uint64_t seq = 0;
        if (!GetVarint(in, &seq)) {
          return Status::Error("snapshot groups: bad access seq");
        }
        group.seqs.push_back(seq);
      }
      member_groups.push_back(std::move(group));
    }
    groups->emplace(key, std::move(member_groups));
  }
  if (in.remaining() != 0) {
    return Status::Error("snapshot groups: trailing bytes");
  }
  return Status::Ok();
}

// v2 groups section: one struct-of-arrays block (all little-endian) —
//   u64 key_count K | u64 group_count G | u64 seq_total S
//   u32 type[K] | u32 subclass[K] | u32 member[K] | u32 groups_per_key[K]
//   u32 lockseq[G] | u32 n_reads[G] | u32 n_writes[G]
//   u64 txn[G] | u64 alloc[G] | u32 seqs_per_group[G]
//   u64 seqs[S]
std::string EncodeGroupsSectionV2(const ObservationStore& store) {
  uint64_t key_count = store.groups().size();
  uint64_t group_count = 0;
  uint64_t seq_total = 0;
  for (const auto& [key, groups] : store.groups()) {
    group_count += groups.size();
    for (const ObservationGroup& group : groups) {
      seq_total += group.seqs.size();
    }
  }
  std::string payload;
  payload.reserve(24 + 16 * key_count + 32 * group_count + 8 * seq_total);
  AppendUint64LE(payload, key_count);
  AppendUint64LE(payload, group_count);
  AppendUint64LE(payload, seq_total);
  auto per_key = [&](auto&& fn) {
    for (const auto& [key, groups] : store.groups()) {
      fn(key, groups);
    }
  };
  per_key([&](const MemberObsKey& key, const auto&) { AppendUint32LE(payload, key.type); });
  per_key(
      [&](const MemberObsKey& key, const auto&) { AppendUint32LE(payload, key.subclass); });
  per_key([&](const MemberObsKey& key, const auto&) { AppendUint32LE(payload, key.member); });
  per_key([&](const MemberObsKey&, const auto& groups) {
    AppendUint32LE(payload, static_cast<uint32_t>(groups.size()));
  });
  auto per_group = [&](auto&& fn) {
    for (const auto& [key, groups] : store.groups()) {
      for (const ObservationGroup& group : groups) {
        fn(group);
      }
    }
  };
  per_group([&](const ObservationGroup& g) { AppendUint32LE(payload, g.lockseq_id); });
  per_group([&](const ObservationGroup& g) { AppendUint32LE(payload, g.n_reads); });
  per_group([&](const ObservationGroup& g) { AppendUint32LE(payload, g.n_writes); });
  per_group([&](const ObservationGroup& g) { AppendUint64LE(payload, g.txn_id); });
  per_group([&](const ObservationGroup& g) { AppendUint64LE(payload, g.alloc_id); });
  per_group([&](const ObservationGroup& g) {
    AppendUint32LE(payload, static_cast<uint32_t>(g.seqs.size()));
  });
  per_group([&](const ObservationGroup& g) {
    for (uint64_t seq : g.seqs) {
      AppendUint64LE(payload, seq);
    }
  });
  return payload;
}

Status DecodeGroupsSectionV2(std::string_view payload, const TypeRegistry& registry,
                             size_t seq_count,
                             std::map<MemberObsKey, std::vector<ObservationGroup>>* groups) {
  if (payload.size() < 24) {
    return Status::Error("snapshot groups: bad key count");
  }
  uint64_t key_count = LoadUint64LE(payload.data());
  uint64_t group_count = LoadUint64LE(payload.data() + 8);
  uint64_t seq_total = LoadUint64LE(payload.data() + 16);
  if (key_count > payload.size() || group_count > payload.size() ||
      seq_total > payload.size() ||
      payload.size() != 24 + 16 * key_count + 32 * group_count + 8 * seq_total) {
    return Status::Error("snapshot groups: bad key count");
  }
  const char* base = payload.data() + 24;
  const char* key_type = base;
  const char* key_subclass = key_type + 4 * key_count;
  const char* key_member = key_subclass + 4 * key_count;
  const char* groups_per_key = key_member + 4 * key_count;
  const char* lockseq = groups_per_key + 4 * key_count;
  const char* n_reads = lockseq + 4 * group_count;
  const char* n_writes = n_reads + 4 * group_count;
  const char* txn = n_writes + 4 * group_count;
  const char* alloc = txn + 8 * group_count;
  const char* seqs_per_group = alloc + 8 * group_count;
  const char* seqs = seqs_per_group + 4 * group_count;

  MemberObsKey previous;
  uint64_t group_cursor = 0;
  uint64_t seq_cursor = 0;
  for (uint64_t i = 0; i < key_count; ++i) {
    MemberObsKey key;
    key.type = LoadUint32LE(key_type + 4 * i);
    key.subclass = LoadUint32LE(key_subclass + 4 * i);
    key.member = LoadUint32LE(key_member + 4 * i);
    if (key.type >= registry.type_count() ||
        key.member >= registry.layout(key.type).member_count()) {
      return Status::Error("snapshot groups: key out of registry range");
    }
    if (i > 0 && !(previous < key)) {
      return Status::Error("snapshot groups: keys out of order");
    }
    previous = key;
    uint32_t member_group_count = LoadUint32LE(groups_per_key + 4 * i);
    if (member_group_count > group_count - group_cursor) {
      return Status::Error("snapshot groups: bad group count");
    }
    std::vector<ObservationGroup> member_groups;
    member_groups.reserve(member_group_count);
    for (uint32_t g = 0; g < member_group_count; ++g) {
      uint64_t row = group_cursor + g;
      ObservationGroup group;
      group.lockseq_id = LoadUint32LE(lockseq + 4 * row);
      if (group.lockseq_id >= seq_count) {
        return Status::Error("snapshot groups: bad group");
      }
      group.n_reads = LoadUint32LE(n_reads + 4 * row);
      group.n_writes = LoadUint32LE(n_writes + 4 * row);
      group.txn_id = LoadUint64LE(txn + 8 * row);
      group.alloc_id = LoadUint64LE(alloc + 8 * row);
      uint32_t seq_len = LoadUint32LE(seqs_per_group + 4 * row);
      if (seq_len > seq_total - seq_cursor) {
        return Status::Error("snapshot groups: bad group");
      }
      group.seqs.resize(seq_len);
      // The seq ids are contiguous LE u64s and the host is little-endian
      // (static_assert in src/db/snapshot.cc), so the whole span copies
      // flat — this loop dominates the groups decode on big snapshots.
      std::memcpy(group.seqs.data(), seqs + 8 * seq_cursor, 8 * size_t{seq_len});
      seq_cursor += seq_len;
      member_groups.push_back(std::move(group));
    }
    group_cursor += member_group_count;
    groups->emplace(key, std::move(member_groups));
  }
  if (group_cursor != group_count || seq_cursor != seq_total) {
    return Status::Error("snapshot groups: trailing bytes");
  }
  return Status::Ok();
}

// Owned aligned backing for in-memory v2 deserialization: std::string data
// has no alignment guarantee, so the bytes are copied once into a
// uint64-aligned buffer the views can point into.
struct OwnedBacking : SnapshotBacking {
  std::unique_ptr<uint64_t[]> buffer;
};

// File-mapped backing for the zero-copy LoadSnapshot path.
struct MappedBacking : SnapshotBacking {
  MappedFile file;
};

// Shared decode across container versions; `backing` is non-null when
// numeric table columns may be attached as views into `bytes`.
Result<AnalysisSnapshot> DeserializeImpl(std::string_view bytes, const TypeRegistry& registry,
                                         const SnapshotLoadOptions& options,
                                         std::shared_ptr<const SnapshotBacking> backing) {
  uint64_t container_version = SnapshotContainerVersion(bytes);
  SnapshotScanMode mode = (container_version == 2 && !options.verify_payload_crcs)
                              ? SnapshotScanMode::kVerifyHeaders
                              : SnapshotScanMode::kVerifyAll;
  Result<std::vector<SnapshotSection>> scan = ScanSnapshotSections(bytes, mode);
  if (!scan.ok()) {
    return scan.status();
  }
  // Skip section types this reader does not know about: a future writer may
  // append new sections, and every section frame is self-delimiting with its
  // own CRC, so an old reader can load everything it understands and ignore
  // the rest (doctor reports them as "unrecognized (skipped)").
  std::vector<SnapshotSection> sections;
  sections.reserve(scan.value().size());
  for (const SnapshotSection& section : scan.value()) {
    if (section.type >= kSnapshotSectionMeta && section.type <= kSnapshotSectionGroups) {
      sections.push_back(section);
    }
  }
  const bool v2 = container_version == 2;
  const uint64_t meta_version = v2 ? kSnapshotFormatVersionV2 : kSnapshotFormatVersion;

  // Enforce the fixed section order: meta, strings, table*, pool, seqs,
  // groups.
  if (sections.size() < 5 || sections.front().type != kSnapshotSectionMeta) {
    return Status::Error("snapshot: missing meta section");
  }
  AnalysisSnapshot snapshot;
  Status status = DecodeMetaSection(sections[0].payload, registry, meta_version, &snapshot);
  if (!status.ok()) {
    return status;
  }
  if (sections[1].type != kSnapshotSectionStrings) {
    return Status::Error("snapshot: missing strings section");
  }
  status = DecodeStringsSection(sections[1].payload, &snapshot.db.mutable_strings());
  if (!status.ok()) {
    return status;
  }
  size_t index = 2;
  while (index < sections.size() && sections[index].type == kSnapshotSectionTable) {
    status = v2 ? DecodeTableSectionV2(sections[index].payload,
                                       /*zero_copy=*/backing != nullptr, &snapshot.db)
                : DecodeTableSection(sections[index].payload, &snapshot.db);
    if (!status.ok()) {
      return status;
    }
    ++index;
  }
  // A structurally clean container can still be semantically incomplete —
  // doctor --repair drops damaged sections wholesale. Catch a missing table
  // here rather than CHECK-failing at the first analysis lookup.
  for (const char* name : LockDocSchema::kAllTables) {
    if (!snapshot.db.HasTable(name)) {
      return Status::Error(
          StrFormat("snapshot: required table '%s' missing (truncated or repaired file?)", name));
    }
  }
  if (sections.size() - index != 3 || sections[index].type != kSnapshotSectionPool ||
      sections[index + 1].type != kSnapshotSectionSeqs ||
      sections[index + 2].type != kSnapshotSectionGroups) {
    return Status::Error("snapshot: sections out of order");
  }
  LockClassPool pool;
  status = DecodePoolSection(sections[index].payload, &pool);
  if (!status.ok()) {
    return status;
  }
  std::vector<IdSeq> id_seqs;
  status = v2 ? DecodeSeqsSectionV2(sections[index + 1].payload, pool.size(), &id_seqs)
              : DecodeSeqsSection(sections[index + 1].payload, pool.size(), &id_seqs);
  if (!status.ok()) {
    return status;
  }
  std::map<MemberObsKey, std::vector<ObservationGroup>> groups;
  status = v2 ? DecodeGroupsSectionV2(sections[index + 2].payload, registry, id_seqs.size(),
                                      &groups)
              : DecodeGroupsSection(sections[index + 2].payload, registry, id_seqs.size(),
                                    &groups);
  if (!status.ok()) {
    return status;
  }
  snapshot.observations.ResetForSnapshot(std::move(pool), std::move(id_seqs),
                                         std::move(groups));
  snapshot.backing = std::move(backing);
  return snapshot;
}

}  // namespace

Result<std::string> SerializeSnapshotBytes(const AnalysisSnapshot& snapshot,
                                           const TypeRegistry& registry,
                                           const SnapshotWriteOptions& options) {
  LOCKDOC_CHECK(options.container_version == 1 || options.container_version == 2);
  const bool v2 = options.container_version == 2;
  const std::vector<std::string> names = snapshot.db.TableNames();
  // Section payloads are independent, so they encode in parallel; the
  // container assembly below stays serial and deterministic.
  const size_t section_count = names.size() + 5;
  std::vector<std::string> payloads(section_count);
  auto encode_one = [&](size_t i) {
    if (i == 0) {
      payloads[i] = EncodeMetaSection(snapshot, registry.type_count(),
                                      v2 ? kSnapshotFormatVersionV2 : kSnapshotFormatVersion);
    } else if (i == 1) {
      payloads[i] = EncodeStringsSection(snapshot.db.strings());
    } else if (i < 2 + names.size()) {
      const Table& table = snapshot.db.table(names[i - 2]);
      payloads[i] = v2 ? EncodeTableSectionV2(table) : EncodeTableSection(table);
    } else if (i == 2 + names.size()) {
      payloads[i] = EncodePoolSection(snapshot.observations.pool());
    } else if (i == 3 + names.size()) {
      payloads[i] =
          v2 ? EncodeSeqsSectionV2(snapshot.observations) : EncodeSeqsSection(snapshot.observations);
    } else {
      payloads[i] = v2 ? EncodeGroupsSectionV2(snapshot.observations)
                       : EncodeGroupsSection(snapshot.observations);
    }
  };
  if (options.pool != nullptr) {
    options.pool->ParallelFor(section_count, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        encode_one(i);
      }
    });
  } else {
    for (size_t i = 0; i < section_count; ++i) {
      encode_one(i);
    }
  }
  SnapshotWriter writer(options.container_version);
  writer.set_crc_pool(options.pool);
  size_t framed = 0;
  for (const std::string& payload : payloads) {
    // Upper bound on per-section framing overhead for either version.
    framed += kSnapshotV2FrameHeaderSize + PaddedPayloadSize(payload.size()) + 16;
  }
  writer.Reserve(framed);
  writer.AddSection(kSnapshotSectionMeta, payloads[0]);
  writer.AddSection(kSnapshotSectionStrings, payloads[1]);
  for (size_t i = 0; i < names.size(); ++i) {
    writer.AddSection(kSnapshotSectionTable, payloads[2 + i]);
  }
  writer.AddSection(kSnapshotSectionPool, payloads[2 + names.size()]);
  writer.AddSection(kSnapshotSectionSeqs, payloads[3 + names.size()]);
  writer.AddSection(kSnapshotSectionGroups, payloads[4 + names.size()]);
  return writer.Finish();
}

std::string SerializeSnapshot(const AnalysisSnapshot& snapshot, const TypeRegistry& registry,
                              const SnapshotWriteOptions& options) {
  Result<std::string> bytes = SerializeSnapshotBytes(snapshot, registry, options);
  LOCKDOC_CHECK(bytes.ok());
  return std::move(bytes).value();
}

Result<AnalysisSnapshot> DeserializeSnapshot(std::string_view bytes,
                                             const TypeRegistry& registry,
                                             const SnapshotLoadOptions& options) {
  if (SnapshotContainerVersion(bytes) != 2) {
    return DeserializeImpl(bytes, registry, options, nullptr);
  }
  // v2 numeric columns view into the container bytes; copy them once into
  // an aligned owned buffer the snapshot keeps alive (a caller's
  // std::string has no alignment guarantee and no pinned lifetime).
  auto backing = std::make_shared<OwnedBacking>();
  backing->buffer = std::make_unique<uint64_t[]>((bytes.size() + 7) / 8);
  std::memcpy(backing->buffer.get(), bytes.data(), bytes.size());
  backing->bytes =
      std::string_view(reinterpret_cast<const char*>(backing->buffer.get()), bytes.size());
  std::string_view view = backing->bytes;
  return DeserializeImpl(view, registry, options, std::move(backing));
}

Result<uint64_t> PeekSnapshotTypeCount(const std::string& path) {
  auto read = ReadFileToString(path);
  if (!read.ok()) {
    return read.status();
  }
  return PeekSnapshotTypeCountFromBytes(read.value());
}

Result<uint64_t> PeekSnapshotTypeCountFromBytes(std::string_view bytes) {
  SnapshotScanMode mode = SnapshotContainerVersion(bytes) == 2
                              ? SnapshotScanMode::kVerifyHeaders
                              : SnapshotScanMode::kVerifyAll;
  Result<std::vector<SnapshotSection>> scan = ScanSnapshotSections(bytes, mode);
  if (!scan.ok()) {
    return scan.status();
  }
  if (scan.value().empty() || scan.value().front().type != kSnapshotSectionMeta) {
    return Status::Error("snapshot: missing meta section");
  }
  // Parse the meta payload structurally (version, two stats blocks, type
  // count); the version itself is not checked here — the subsequent
  // LoadSnapshot does that with a proper typed error.
  std::string_view payload = scan.value().front().payload;
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t version = 0;
  AnalysisSnapshot scratch;
  uint64_t type_count = 0;
  if (!GetVarint(in, &version) || !GetStats(in, &scratch.import_stats, kImportStatsFields) ||
      !GetStats(in, &scratch.trace_stats, kTraceStatsFields) || !GetVarint(in, &type_count)) {
    return Status::Error("snapshot meta: bad registry shape");
  }
  return type_count;
}

Result<AnalysisSnapshot> BuildAndSaveSnapshot(const Trace& trace, const TypeRegistry& registry,
                                              const PipelineOptions& options,
                                              const SnapshotWriteOptions& write_options,
                                              const std::string& path,
                                              PipelineTimings* timings) {
  LOCKDOC_CHECK(write_options.container_version == 1 || write_options.container_version == 2);
  const bool v2 = write_options.container_version == 2;
  using Clock = std::chrono::steady_clock;
  auto seconds = [](Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  };

  AnalysisSnapshot snapshot;
  ThreadPool pool(options.jobs);
  if (timings != nullptr) {
    timings->jobs = pool.thread_count();
  }

  auto t0 = Clock::now();
  TraceImporter importer(&registry, options.filter);
  snapshot.import_stats = importer.Import(trace, &snapshot.db, &pool);
  snapshot.trace_stats = ComputeTraceStats(trace);
  auto t1 = Clock::now();
  if (timings != nullptr) {
    timings->Add("database import", seconds(t0, t1), snapshot.import_stats.events);
  }

  AtomicFileWriter file;
  Status io = file.Open(path);
  if (!io.ok()) {
    return io;
  }

  SnapshotWriter writer(write_options.container_version);
  size_t flushed = 0;
  auto flush = [&]() -> Status {
    std::string_view pending = writer.pending();
    Status status = file.Append(pending.substr(flushed));
    flushed = pending.size();
    file.FlushHint();
    return status;
  };

  // Everything up to the observation sections is fully determined by the
  // import, so the head of the file — meta, strings, and the table sections
  // that dominate its size — can encode and stream to disk while extraction
  // runs. The head writer only *reads* the database (encode + CRC); the
  // extraction threads also only read it, so the two proceed without
  // synchronization beyond the join below.
  const std::vector<std::string> names = snapshot.db.TableNames();
  Status head_io;
  auto write_head = [&]() {
    writer.AddSection(kSnapshotSectionMeta,
                      EncodeMetaSection(snapshot, registry.type_count(),
                                        v2 ? kSnapshotFormatVersionV2 : kSnapshotFormatVersion));
    writer.AddSection(kSnapshotSectionStrings, EncodeStringsSection(snapshot.db.strings()));
    head_io = flush();
    for (const std::string& name : names) {
      if (!head_io.ok()) {
        return;
      }
      const Table& table = snapshot.db.table(name);
      writer.AddSection(kSnapshotSectionTable,
                        v2 ? EncodeTableSectionV2(table) : EncodeTableSection(table));
      head_io = flush();
    }
  };

  // With one job the contract is a strictly serial pipeline; the overlap is
  // only taken when the caller asked for parallelism.
  const bool overlap = pool.thread_count() > 1;
  std::thread head_thread;
  if (overlap) {
    head_thread = std::thread(write_head);
  }

  snapshot.observations = ExtractObservations(snapshot.db, registry, &pool);
  auto t2 = Clock::now();
  if (timings != nullptr) {
    timings->Add("observation extraction", seconds(t1, t2),
                 snapshot.import_stats.accesses_kept);
  }

  if (overlap) {
    head_thread.join();
  } else {
    write_head();
  }
  if (!head_io.ok()) {
    return head_io;  // Append already removed the temp file.
  }

  // Tail sections depend on the extracted observations. The pool is idle
  // again, so the payload CRCs may use it.
  writer.set_crc_pool(&pool);
  writer.AddSection(kSnapshotSectionPool, EncodePoolSection(snapshot.observations.pool()));
  writer.AddSection(kSnapshotSectionSeqs, v2 ? EncodeSeqsSectionV2(snapshot.observations)
                                             : EncodeSeqsSection(snapshot.observations));
  writer.AddSection(kSnapshotSectionGroups, v2 ? EncodeGroupsSectionV2(snapshot.observations)
                                               : EncodeGroupsSection(snapshot.observations));
  Result<std::string> bytes = writer.Finish();
  if (!bytes.ok()) {
    file.Abort();
    return bytes.status();
  }
  io = file.Append(std::string_view(bytes.value()).substr(flushed));
  if (!io.ok()) {
    return io;
  }
  io = file.Commit();
  if (!io.ok()) {
    return io;
  }
  auto t3 = Clock::now();
  if (timings != nullptr) {
    // Only the tail that could not hide behind extraction; the overlapped
    // head writing is already accounted inside the extraction wall time.
    timings->Add("snapshot save", seconds(t2, t3), bytes.value().size());
  }
  return snapshot;
}

Status SaveSnapshot(const AnalysisSnapshot& snapshot, const TypeRegistry& registry,
                    const std::string& path, const SnapshotWriteOptions& options) {
  // Atomic (temp + fsync + rename): a crash mid-save leaves the previous
  // snapshot intact instead of a half-written .lockdb the checksums would
  // then reject.
  Result<std::string> bytes = SerializeSnapshotBytes(snapshot, registry, options);
  if (!bytes.ok()) {
    return bytes.status();
  }
  return WriteFileAtomic(path, bytes.value());
}

Result<AnalysisSnapshot> LoadSnapshot(const std::string& path, const TypeRegistry& registry,
                                      const SnapshotLoadOptions& options) {
  Result<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) {
    return mapped.status();
  }
  auto backing = std::make_shared<MappedBacking>();
  backing->file = std::move(mapped).value();
  backing->bytes = backing->file.bytes();
  std::string_view bytes = backing->bytes;
  if (options.verify_payload_crcs) {
    // The CRC sweep is about to read every page front to back; batch the
    // faults. The trusted load skips this so untouched pages never fault.
    backing->file.AdviseSequentialScan();
  }
  if (SnapshotContainerVersion(bytes) != 2) {
    // v1 decodes into owned storage; the mapping is released on return.
    return DeserializeImpl(bytes, registry, options, nullptr);
  }
  return DeserializeImpl(bytes, registry, options, std::move(backing));
}

}  // namespace lockdoc
