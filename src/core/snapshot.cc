#include "src/core/snapshot.h"

#include <set>

#include "src/util/file_io.h"
#include "src/util/string_util.h"
#include "src/util/varint.h"

namespace lockdoc {
namespace {

// Stats structs are serialized as a count-prefixed varint list in member
// order; the count is pinned by the format version, so adding a field means
// bumping kSnapshotFormatVersion.
constexpr uint64_t ImportStats::*kImportStatsFields[] = {
    &ImportStats::events,
    &ImportStats::accesses_total,
    &ImportStats::accesses_kept,
    &ImportStats::accesses_filtered,
    &ImportStats::txns,
    &ImportStats::locked_txns,
    &ImportStats::lock_instances,
    &ImportStats::allocations,
    &ImportStats::dangling_locks_closed,
    &ImportStats::live_allocations_at_end,
    &ImportStats::realloc_overlaps,
    &ImportStats::unmatched_releases,
    &ImportStats::unresolved_lock_ops,
    &ImportStats::unknown_type_allocs,
};

constexpr uint64_t TraceStats::*kTraceStatsFields[] = {
    &TraceStats::total_events,
    &TraceStats::lock_ops,
    &TraceStats::lock_acquires,
    &TraceStats::lock_releases,
    &TraceStats::memory_accesses,
    &TraceStats::reads,
    &TraceStats::writes,
    &TraceStats::allocations,
    &TraceStats::deallocations,
    &TraceStats::static_lock_defs,
    &TraceStats::distinct_locks,
    &TraceStats::distinct_static_locks,
    &TraceStats::distinct_embedded_locks,
};

template <typename Stats, size_t N>
void PutStats(std::string& out, const Stats& stats, uint64_t Stats::*const (&fields)[N]) {
  PutVarint(out, N);
  for (auto field : fields) {
    PutVarint(out, stats.*field);
  }
}

template <typename Stats, size_t N>
bool GetStats(ByteCursor& in, Stats* stats, uint64_t Stats::*const (&fields)[N]) {
  uint64_t count = 0;
  if (!GetVarint(in, &count) || count != N) {
    return false;
  }
  for (auto field : fields) {
    if (!GetVarint(in, &(stats->*field))) {
      return false;
    }
  }
  return true;
}

std::string EncodeMetaSection(const AnalysisSnapshot& snapshot, size_t type_count) {
  std::string payload;
  PutVarint(payload, kSnapshotFormatVersion);
  PutStats(payload, snapshot.import_stats, kImportStatsFields);
  PutStats(payload, snapshot.trace_stats, kTraceStatsFields);
  PutVarint(payload, type_count);
  return payload;
}

Status DecodeMetaSection(std::string_view payload, const TypeRegistry& registry,
                         AnalysisSnapshot* snapshot) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t version = 0;
  if (!GetVarint(in, &version)) {
    return Status::Error("snapshot meta: unreadable version");
  }
  if (version != kSnapshotFormatVersion) {
    return Status::Error(StrFormat("snapshot meta: format version %llu, this build reads %llu",
                                   static_cast<unsigned long long>(version),
                                   static_cast<unsigned long long>(kSnapshotFormatVersion)));
  }
  if (!GetStats(in, &snapshot->import_stats, kImportStatsFields)) {
    return Status::Error("snapshot meta: bad import stats");
  }
  if (!GetStats(in, &snapshot->trace_stats, kTraceStatsFields)) {
    return Status::Error("snapshot meta: bad trace stats");
  }
  uint64_t type_count = 0;
  if (!GetVarint(in, &type_count) || in.remaining() != 0) {
    return Status::Error("snapshot meta: bad registry shape");
  }
  if (type_count != registry.type_count()) {
    return Status::Error(
        StrFormat("snapshot meta: built against a registry with %llu types, this one has %zu",
                  static_cast<unsigned long long>(type_count), registry.type_count()));
  }
  return Status::Ok();
}

std::string EncodePoolSection(const LockClassPool& pool) {
  std::string payload;
  PutVarint(payload, pool.classes().size());
  for (const LockClass& cls : pool.classes()) {
    payload.push_back(static_cast<char>(cls.scope));
    PutLengthPrefixed(payload, cls.lock_name);
    PutLengthPrefixed(payload, cls.owner_type);
  }
  return payload;
}

constexpr uint64_t kMaxSnapshotString = 1ull << 20;

Status DecodePoolSection(std::string_view payload, LockClassPool* pool) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t count = 0;
  if (!GetVarint(in, &count) || count > in.remaining()) {
    return Status::Error("snapshot pool: bad class count");
  }
  std::vector<LockClass> classes;
  classes.reserve(count);
  std::set<LockClass> distinct;
  for (uint64_t i = 0; i < count; ++i) {
    LockClass cls;
    uint8_t scope = 0;
    if (!in.Get(&scope) || scope > static_cast<uint8_t>(LockScope::kEmbeddedOther) ||
        !GetLengthPrefixed(in, &cls.lock_name, kMaxSnapshotString) ||
        !GetLengthPrefixed(in, &cls.owner_type, kMaxSnapshotString)) {
      return Status::Error(StrFormat("snapshot pool: bad class %llu",
                                     static_cast<unsigned long long>(i)));
    }
    cls.scope = static_cast<LockScope>(scope);
    if (!distinct.insert(cls).second) {
      return Status::Error("snapshot pool: duplicate class");
    }
    classes.push_back(std::move(cls));
  }
  if (in.remaining() != 0) {
    return Status::Error("snapshot pool: trailing bytes");
  }
  pool->Reset(std::move(classes));
  return Status::Ok();
}

std::string EncodeSeqsSection(const ObservationStore& store) {
  std::string payload;
  PutVarint(payload, store.distinct_seqs());
  for (uint32_t i = 0; i < store.distinct_seqs(); ++i) {
    const IdSeq& seq = store.id_seq(i);
    PutVarint(payload, seq.size());
    for (LockId id : seq) {
      PutVarint(payload, id);
    }
  }
  return payload;
}

Status DecodeSeqsSection(std::string_view payload, size_t pool_size,
                         std::vector<IdSeq>* id_seqs) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t count = 0;
  if (!GetVarint(in, &count) || count > in.remaining() + 1) {
    return Status::Error("snapshot seqs: bad sequence count");
  }
  id_seqs->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t length = 0;
    if (!GetVarint(in, &length) || length > in.remaining()) {
      return Status::Error("snapshot seqs: bad sequence length");
    }
    IdSeq seq;
    seq.reserve(length);
    for (uint64_t j = 0; j < length; ++j) {
      uint64_t id = 0;
      if (!GetVarint(in, &id) || id >= pool_size) {
        return Status::Error("snapshot seqs: lock id out of range");
      }
      seq.push_back(static_cast<LockId>(id));
    }
    id_seqs->push_back(std::move(seq));
  }
  if (in.remaining() != 0) {
    return Status::Error("snapshot seqs: trailing bytes");
  }
  return Status::Ok();
}

std::string EncodeGroupsSection(const ObservationStore& store) {
  std::string payload;
  PutVarint(payload, store.groups().size());
  for (const auto& [key, groups] : store.groups()) {
    PutVarint(payload, key.type);
    PutVarint(payload, key.subclass);
    PutVarint(payload, key.member);
    PutVarint(payload, groups.size());
    for (const ObservationGroup& group : groups) {
      PutVarint(payload, group.lockseq_id);
      PutVarint(payload, group.txn_id);
      PutVarint(payload, group.alloc_id);
      PutVarint(payload, group.n_reads);
      PutVarint(payload, group.n_writes);
      PutVarint(payload, group.seqs.size());
      for (uint64_t seq : group.seqs) {
        PutVarint(payload, seq);
      }
    }
  }
  return payload;
}

Status DecodeGroupsSection(std::string_view payload, const TypeRegistry& registry,
                           size_t seq_count,
                           std::map<MemberObsKey, std::vector<ObservationGroup>>* groups) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t key_count = 0;
  if (!GetVarint(in, &key_count) || key_count > in.remaining() + 1) {
    return Status::Error("snapshot groups: bad key count");
  }
  MemberObsKey previous;
  for (uint64_t i = 0; i < key_count; ++i) {
    uint64_t type = 0, subclass = 0, member = 0, group_count = 0;
    if (!GetVarint(in, &type) || !GetVarint(in, &subclass) || !GetVarint(in, &member) ||
        !GetVarint(in, &group_count)) {
      return Status::Error("snapshot groups: bad key");
    }
    MemberObsKey key;
    key.type = static_cast<TypeId>(type);
    key.subclass = static_cast<SubclassId>(subclass);
    key.member = static_cast<MemberIndex>(member);
    if (type >= registry.type_count() ||
        member >= registry.layout(key.type).member_count()) {
      return Status::Error("snapshot groups: key out of registry range");
    }
    if (i > 0 && !(previous < key)) {
      return Status::Error("snapshot groups: keys out of order");
    }
    previous = key;
    if (group_count > in.remaining()) {
      return Status::Error("snapshot groups: bad group count");
    }
    std::vector<ObservationGroup> member_groups;
    member_groups.reserve(group_count);
    for (uint64_t g = 0; g < group_count; ++g) {
      ObservationGroup group;
      uint64_t lockseq = 0, n_reads = 0, n_writes = 0, seq_len = 0;
      if (!GetVarint(in, &lockseq) || lockseq >= seq_count ||
          !GetVarint(in, &group.txn_id) || !GetVarint(in, &group.alloc_id) ||
          !GetVarint(in, &n_reads) || !GetVarint(in, &n_writes) ||
          !GetVarint(in, &seq_len) || seq_len > in.remaining()) {
        return Status::Error("snapshot groups: bad group");
      }
      group.lockseq_id = static_cast<uint32_t>(lockseq);
      group.n_reads = static_cast<uint32_t>(n_reads);
      group.n_writes = static_cast<uint32_t>(n_writes);
      group.seqs.reserve(seq_len);
      for (uint64_t s = 0; s < seq_len; ++s) {
        uint64_t seq = 0;
        if (!GetVarint(in, &seq)) {
          return Status::Error("snapshot groups: bad access seq");
        }
        group.seqs.push_back(seq);
      }
      member_groups.push_back(std::move(group));
    }
    groups->emplace(key, std::move(member_groups));
  }
  if (in.remaining() != 0) {
    return Status::Error("snapshot groups: trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeSnapshot(const AnalysisSnapshot& snapshot, const TypeRegistry& registry) {
  SnapshotWriter writer;
  writer.AddSection(kSnapshotSectionMeta, EncodeMetaSection(snapshot, registry.type_count()));
  writer.AddSection(kSnapshotSectionStrings, EncodeStringsSection(snapshot.db.strings()));
  for (const std::string& name : snapshot.db.TableNames()) {
    writer.AddSection(kSnapshotSectionTable, EncodeTableSection(snapshot.db.table(name)));
  }
  writer.AddSection(kSnapshotSectionPool, EncodePoolSection(snapshot.observations.pool()));
  writer.AddSection(kSnapshotSectionSeqs, EncodeSeqsSection(snapshot.observations));
  writer.AddSection(kSnapshotSectionGroups, EncodeGroupsSection(snapshot.observations));
  return writer.Finish();
}

Result<AnalysisSnapshot> DeserializeSnapshot(std::string_view bytes,
                                             const TypeRegistry& registry) {
  Result<std::vector<SnapshotSection>> scan = ScanSnapshotSections(bytes);
  if (!scan.ok()) {
    return scan.status();
  }
  const std::vector<SnapshotSection>& sections = scan.value();

  // Enforce the fixed section order: meta, strings, table*, pool, seqs,
  // groups.
  if (sections.size() < 5 || sections.front().type != kSnapshotSectionMeta) {
    return Status::Error("snapshot: missing meta section");
  }
  AnalysisSnapshot snapshot;
  Status status = DecodeMetaSection(sections[0].payload, registry, &snapshot);
  if (!status.ok()) {
    return status;
  }
  if (sections[1].type != kSnapshotSectionStrings) {
    return Status::Error("snapshot: missing strings section");
  }
  status = DecodeStringsSection(sections[1].payload, &snapshot.db.mutable_strings());
  if (!status.ok()) {
    return status;
  }
  size_t index = 2;
  while (index < sections.size() && sections[index].type == kSnapshotSectionTable) {
    status = DecodeTableSection(sections[index].payload, &snapshot.db);
    if (!status.ok()) {
      return status;
    }
    ++index;
  }
  if (sections.size() - index != 3 || sections[index].type != kSnapshotSectionPool ||
      sections[index + 1].type != kSnapshotSectionSeqs ||
      sections[index + 2].type != kSnapshotSectionGroups) {
    return Status::Error("snapshot: sections out of order");
  }
  LockClassPool pool;
  status = DecodePoolSection(sections[index].payload, &pool);
  if (!status.ok()) {
    return status;
  }
  std::vector<IdSeq> id_seqs;
  status = DecodeSeqsSection(sections[index + 1].payload, pool.size(), &id_seqs);
  if (!status.ok()) {
    return status;
  }
  std::map<MemberObsKey, std::vector<ObservationGroup>> groups;
  status = DecodeGroupsSection(sections[index + 2].payload, registry, id_seqs.size(), &groups);
  if (!status.ok()) {
    return status;
  }
  snapshot.observations.ResetForSnapshot(std::move(pool), std::move(id_seqs),
                                         std::move(groups));
  return snapshot;
}

Status SaveSnapshot(const AnalysisSnapshot& snapshot, const TypeRegistry& registry,
                    const std::string& path) {
  // Atomic (temp + fsync + rename): a crash mid-save leaves the previous
  // snapshot intact instead of a half-written .lockdb the checksums would
  // then reject.
  std::string bytes = SerializeSnapshot(snapshot, registry);
  return WriteFileAtomic(path, bytes);
}

Result<AnalysisSnapshot> LoadSnapshot(const std::string& path, const TypeRegistry& registry) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    return bytes.status();
  }
  return DeserializeSnapshot(bytes.value(), registry);
}

}  // namespace lockdoc
