#include "src/core/held_locks.h"

#include "src/db/schema.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

std::vector<HeldLockInfo> ClassifyHeldLocks(const Database& db,
                                            const TypeRegistry& registry, uint64_t txn,
                                            uint64_t access_alloc) {
  const Table& txn_locks = db.table(LockDocSchema::kTxnLocks);
  const Table& locks = db.table(LockDocSchema::kLocks);
  const Table& members = db.table(LockDocSchema::kMembers);
  const size_t kTlTxn = txn_locks.ColumnIndex("txn_id");
  const size_t kTlPos = txn_locks.ColumnIndex("position");
  const size_t kTlLock = txn_locks.ColumnIndex("lock_id");
  const size_t kTlMode = txn_locks.ColumnIndex("mode");
  const size_t kTlFile = txn_locks.ColumnIndex("file_sid");
  const size_t kTlLine = txn_locks.ColumnIndex("line");
  const size_t kIsStatic = locks.ColumnIndex("is_static");
  const size_t kNameSid = locks.ColumnIndex("name_sid");
  const size_t kAddr = locks.ColumnIndex("addr");
  const size_t kOwnerAlloc = locks.ColumnIndex("owner_alloc_id");
  const size_t kOwnerMember = locks.ColumnIndex("owner_member_id");

  std::vector<RowId> rows = txn_locks.LookupEqual(kTlTxn, txn);
  std::vector<HeldLockInfo> held(rows.size());
  for (RowId row : rows) {
    uint64_t pos = txn_locks.GetUint64(row, kTlPos);
    LOCKDOC_CHECK(pos < held.size());
    uint64_t lock_row = txn_locks.GetUint64(row, kTlLock);
    HeldLockInfo entry;
    entry.mode = static_cast<AcquireMode>(txn_locks.GetUint64(row, kTlMode));
    entry.file_sid = txn_locks.GetUint64(row, kTlFile);
    entry.line = txn_locks.GetUint64(row, kTlLine);
    if (locks.GetUint64(lock_row, kIsStatic) != 0) {
      uint64_t name_sid = locks.GetUint64(lock_row, kNameSid);
      entry.lock_class =
          name_sid != 0
              ? LockClass::Global(db.String(static_cast<StringId>(name_sid)))
              : LockClass::Global(StrFormat(
                    "lock@0x%llx",
                    static_cast<unsigned long long>(locks.GetUint64(lock_row, kAddr))));
    } else {
      uint64_t member_row = locks.GetUint64(lock_row, kOwnerMember);
      TypeId owner_type =
          static_cast<TypeId>(members.GetUint64(member_row, members.ColumnIndex("type_id")));
      const std::string& lock_name =
          members.GetString(member_row, members.ColumnIndex("name"));
      const std::string& type_name = registry.layout(owner_type).name();
      entry.lock_class = (locks.GetUint64(lock_row, kOwnerAlloc) == access_alloc)
                             ? LockClass::Same(lock_name, type_name)
                             : LockClass::Other(lock_name, type_name);
    }
    held[pos] = std::move(entry);
  }
  return held;
}

}  // namespace lockdoc
