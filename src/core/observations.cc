#include "src/core/observations.h"

#include "src/db/schema.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

const std::vector<ObservationGroup> ObservationStore::kEmptyGroups;

uint32_t ObservationStore::InternSeq(const LockSeq& seq) {
  auto it = seq_index_.find(seq);
  if (it != seq_index_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(seqs_.size());
  seqs_.push_back(seq);
  seq_index_.emplace(seq, id);
  return id;
}

const LockSeq& ObservationStore::seq(uint32_t id) const {
  LOCKDOC_CHECK(id < seqs_.size());
  return seqs_[id];
}

const std::vector<ObservationGroup>& ObservationStore::GroupsFor(const MemberObsKey& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? kEmptyGroups : it->second;
}

uint64_t ObservationStore::CountObservations(const MemberObsKey& key, AccessType access) const {
  uint64_t count = 0;
  for (const ObservationGroup& group : GroupsFor(key)) {
    if (group.effective() == access) {
      ++count;
    }
  }
  return count;
}

namespace {

// Resolves one lock instance (a row of the locks table) to its class
// relative to the accessed allocation.
LockClass ClassifyLock(const Table& locks, const Table& members, const Trace& trace,
                       const TypeRegistry& registry, uint64_t lock_row, uint64_t access_alloc) {
  const size_t kIsStatic = locks.ColumnIndex("is_static");
  const size_t kNameSid = locks.ColumnIndex("name_sid");
  const size_t kAddr = locks.ColumnIndex("addr");
  const size_t kOwnerAlloc = locks.ColumnIndex("owner_alloc_id");
  const size_t kOwnerMember = locks.ColumnIndex("owner_member_id");

  if (locks.GetUint64(lock_row, kIsStatic) != 0) {
    uint64_t name_sid = locks.GetUint64(lock_row, kNameSid);
    if (name_sid != 0) {
      return LockClass::Global(trace.String(static_cast<StringId>(name_sid)));
    }
    return LockClass::Global(
        StrFormat("lock@0x%llx",
                  static_cast<unsigned long long>(locks.GetUint64(lock_row, kAddr))));
  }

  uint64_t member_row = locks.GetUint64(lock_row, kOwnerMember);
  TypeId owner_type =
      static_cast<TypeId>(members.GetUint64(member_row, members.ColumnIndex("type_id")));
  const std::string& lock_name = members.GetString(member_row, members.ColumnIndex("name"));
  const std::string& type_name = registry.layout(owner_type).name();
  if (locks.GetUint64(lock_row, kOwnerAlloc) == access_alloc) {
    return LockClass::Same(lock_name, type_name);
  }
  return LockClass::Other(lock_name, type_name);
}

}  // namespace

ObservationStore ExtractObservations(const Database& db, const Trace& trace,
                                     const TypeRegistry& registry) {
  ObservationStore store;

  const Table& accesses = db.table(LockDocSchema::kAccesses);
  const Table& allocations = db.table(LockDocSchema::kAllocations);
  const Table& members = db.table(LockDocSchema::kMembers);
  const Table& locks = db.table(LockDocSchema::kLocks);
  const Table& txn_locks = db.table(LockDocSchema::kTxnLocks);

  const size_t kAccSeq = accesses.ColumnIndex("seq");
  const size_t kAccAlloc = accesses.ColumnIndex("alloc_id");
  const size_t kAccMember = accesses.ColumnIndex("member_id");
  const size_t kAccType = accesses.ColumnIndex("access_type");
  const size_t kAccTxn = accesses.ColumnIndex("txn_id");
  const size_t kAccFilter = accesses.ColumnIndex("filter_reason");

  const size_t kAllocType = allocations.ColumnIndex("type_id");
  const size_t kAllocSubclass = allocations.ColumnIndex("subclass");

  const size_t kMemberIdx = members.ColumnIndex("member_idx");

  const size_t kTlTxn = txn_locks.ColumnIndex("txn_id");
  const size_t kTlPos = txn_locks.ColumnIndex("position");
  const size_t kTlLock = txn_locks.ColumnIndex("lock_id");

  // Cache of the current transaction's ordered lock rows.
  uint64_t cached_txn = kDbNull;
  std::vector<uint64_t> cached_txn_lock_rows;
  // Cache of the last (txn, alloc) -> interned class sequence.
  uint64_t cached_class_txn = kDbNull;
  uint64_t cached_class_alloc = kDbNull;
  uint32_t cached_lockseq = 0;

  // Open group per (txn, alloc, member): index into the per-member vector.
  using GroupKey = std::tuple<uint64_t, uint64_t, uint64_t>;  // (txn, alloc, member_row)
  std::map<GroupKey, std::pair<MemberObsKey, size_t>> open_groups;

  accesses.Scan([&](RowId row) {
    if (accesses.GetUint64(row, kAccFilter) != static_cast<uint64_t>(FilterReason::kNone)) {
      return true;
    }
    uint64_t txn = accesses.GetUint64(row, kAccTxn);
    uint64_t alloc = accesses.GetUint64(row, kAccAlloc);
    uint64_t member_row = accesses.GetUint64(row, kAccMember);
    LOCKDOC_CHECK(alloc != kDbNull && member_row != kDbNull && txn != kDbNull);

    // Resolve the member population key.
    MemberObsKey key;
    key.type = static_cast<TypeId>(allocations.GetUint64(alloc, kAllocType));
    key.subclass = static_cast<SubclassId>(allocations.GetUint64(alloc, kAllocSubclass));
    key.member = static_cast<MemberIndex>(members.GetUint64(member_row, kMemberIdx));

    GroupKey group_key = std::make_tuple(txn, alloc, member_row);
    auto it = open_groups.find(group_key);
    if (it == open_groups.end()) {
      // Classify the transaction's locks relative to this allocation.
      if (txn != cached_txn) {
        cached_txn = txn;
        cached_txn_lock_rows.clear();
        std::vector<RowId> rows = txn_locks.LookupEqual(kTlTxn, txn);
        cached_txn_lock_rows.resize(rows.size());
        for (RowId tl_row : rows) {
          uint64_t pos = txn_locks.GetUint64(tl_row, kTlPos);
          LOCKDOC_CHECK(pos < cached_txn_lock_rows.size());
          cached_txn_lock_rows[pos] = txn_locks.GetUint64(tl_row, kTlLock);
        }
        cached_class_txn = kDbNull;  // Invalidate the class cache.
      }
      if (txn != cached_class_txn || alloc != cached_class_alloc) {
        LockSeq seq;
        seq.reserve(cached_txn_lock_rows.size());
        for (uint64_t lock_row : cached_txn_lock_rows) {
          seq.push_back(ClassifyLock(locks, members, trace, registry, lock_row, alloc));
        }
        cached_lockseq = store.InternSeq(seq);
        cached_class_txn = txn;
        cached_class_alloc = alloc;
      }

      std::vector<ObservationGroup>& groups = store.MutableGroups(key);
      ObservationGroup group;
      group.lockseq_id = cached_lockseq;
      group.txn_id = txn;
      group.alloc_id = alloc;
      groups.push_back(std::move(group));
      it = open_groups.emplace(group_key, std::make_pair(key, groups.size() - 1)).first;
    }

    ObservationGroup& group = store.MutableGroups(it->second.first)[it->second.second];
    if (accesses.GetUint64(row, kAccType) == static_cast<uint64_t>(AccessType::kWrite)) {
      ++group.n_writes;
    } else {
      ++group.n_reads;
    }
    group.seqs.push_back(accesses.GetUint64(row, kAccSeq));
    return true;
  });

  return store;
}

}  // namespace lockdoc
