#include "src/core/observations.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/db/schema.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

const std::vector<ObservationGroup> ObservationStore::kEmptyGroups;

// Per-store subsequence-enumeration cache. Entries are heap-allocated so
// their once_flags stay put when the store moves; the mutex guards only
// (re)building the entry table, and call_once makes each entry's fill
// thread-safe with exactly one computing thread.
struct ObservationStore::EnumCache {
  struct Entry {
    std::once_flag once;
    std::vector<IdSeq> subseqs;
  };

  std::mutex mu;
  size_t max_locks = 0;
  std::vector<std::unique_ptr<Entry>> entries;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
};

ObservationStore::ObservationStore() : enum_cache_(std::make_unique<EnumCache>()) {}
ObservationStore::~ObservationStore() = default;
ObservationStore::ObservationStore(ObservationStore&&) noexcept = default;
ObservationStore& ObservationStore::operator=(ObservationStore&&) noexcept = default;

uint32_t ObservationStore::InternSeq(const LockSeq& seq) {
  auto it = seq_index_.find(seq);
  if (it != seq_index_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(seqs_.size());
  seqs_.push_back(seq);
  id_seqs_.push_back(pool_.InternSeq(seq));
  seq_index_.emplace(seq, id);
  return id;
}

const LockSeq& ObservationStore::seq(uint32_t id) const {
  LOCKDOC_CHECK(id < seqs_.size());
  return seqs_[id];
}

const IdSeq& ObservationStore::id_seq(uint32_t id) const {
  LOCKDOC_CHECK(id < id_seqs_.size());
  return id_seqs_[id];
}

const std::vector<IdSeq>& ObservationStore::CachedSubsequenceIds(uint32_t seq_id,
                                                                 size_t max_locks) const {
  LOCKDOC_CHECK(seq_id < id_seqs_.size());
  LOCKDOC_CHECK(enum_cache_ != nullptr);  // Absent only in a moved-from store.
  EnumCache& cache = *enum_cache_;
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.entries.size() != id_seqs_.size() || cache.max_locks != max_locks) {
      // New sequences were interned or the expansion bound changed: rebuild.
      // Callers must not hold references across such a change.
      cache.entries.clear();
      cache.entries.reserve(id_seqs_.size());
      for (size_t i = 0; i < id_seqs_.size(); ++i) {
        cache.entries.push_back(std::make_unique<EnumCache::Entry>());
      }
      cache.max_locks = max_locks;
    }
  }
  EnumCache::Entry& entry = *cache.entries[seq_id];
  bool computed = false;
  std::call_once(entry.once, [&] {
    entry.subseqs = EnumerateSubsequenceIds(id_seqs_[seq_id], max_locks);
    computed = true;
  });
  (computed ? cache.misses : cache.hits).fetch_add(1, std::memory_order_relaxed);
  return entry.subseqs;
}

uint64_t ObservationStore::enum_cache_hits() const {
  return enum_cache_ == nullptr ? 0 : enum_cache_->hits.load(std::memory_order_relaxed);
}

uint64_t ObservationStore::enum_cache_misses() const {
  return enum_cache_ == nullptr ? 0 : enum_cache_->misses.load(std::memory_order_relaxed);
}

void ObservationStore::ResetForSnapshot(
    LockClassPool pool, std::vector<IdSeq> id_seqs,
    std::map<MemberObsKey, std::vector<ObservationGroup>> groups) {
  pool_ = std::move(pool);
  id_seqs_ = std::move(id_seqs);
  groups_ = std::move(groups);
  seqs_.clear();
  seqs_.reserve(id_seqs_.size());
  seq_index_.clear();
  for (size_t i = 0; i < id_seqs_.size(); ++i) {
    seqs_.push_back(pool_.Materialize(id_seqs_[i]));
    bool inserted = seq_index_.emplace(seqs_.back(), static_cast<uint32_t>(i)).second;
    LOCKDOC_CHECK(inserted && "duplicate sequence in serialized store");
  }
  enum_cache_ = std::make_unique<EnumCache>();
}

const std::vector<ObservationGroup>& ObservationStore::GroupsFor(const MemberObsKey& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? kEmptyGroups : it->second;
}

uint64_t ObservationStore::CountObservations(const MemberObsKey& key, AccessType access) const {
  uint64_t count = 0;
  for (const ObservationGroup& group : GroupsFor(key)) {
    if (group.effective() == access) {
      ++count;
    }
  }
  return count;
}

MemberAccessIndex MemberAccessIndex::Build(const ObservationStore& store) {
  MemberAccessIndex index;
  for (const auto& [key, groups] : store.groups()) {
    Entry& entry = index.entries_[key];
    for (size_t i = 0; i < groups.size(); ++i) {
      entry.groups[static_cast<size_t>(groups[i].effective())].push_back(
          static_cast<uint32_t>(i));
    }
  }
  return index;
}

const MemberAccessIndex::Entry* MemberAccessIndex::Find(const MemberObsKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

uint64_t MemberAccessIndex::Count(const MemberObsKey& key, AccessType access) const {
  const Entry* entry = Find(key);
  return entry == nullptr ? 0 : entry->For(access).size();
}

const std::vector<uint32_t> LockPostingIndex::kEmptyPostings;

LockPostingIndex LockPostingIndex::Build(const ObservationStore& store) {
  LockPostingIndex index;
  index.postings_.resize(store.pool().size());
  for (uint32_t seq_id = 0; seq_id < store.distinct_seqs(); ++seq_id) {
    // Dedup in place: a lock appearing twice in one sequence (nested
    // same-class locking) must post the sequence only once.
    IdSeq ids = store.id_seq(seq_id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (LockId id : ids) {
      index.postings_[id].push_back(seq_id);
    }
  }
  return index;
}

const std::vector<uint32_t>& LockPostingIndex::Postings(LockId id) const {
  return id < postings_.size() ? postings_[id] : kEmptyPostings;
}

std::vector<uint32_t> LockPostingIndex::ComplyingSeqs(const ObservationStore& store,
                                                      const IdSeq& rule_ids) const {
  if (rule_ids.empty()) {
    std::vector<uint32_t> all(store.distinct_seqs());
    for (uint32_t i = 0; i < all.size(); ++i) {
      all[i] = i;
    }
    return all;
  }

  // Presence filter: intersect the posting lists, rarest lock first.
  const std::vector<uint32_t>* seed = &Postings(rule_ids[0]);
  for (LockId id : rule_ids) {
    const std::vector<uint32_t>& postings = Postings(id);
    if (postings.size() < seed->size()) {
      seed = &postings;
    }
  }
  std::vector<uint32_t> candidates;
  candidates.reserve(seed->size());
  for (uint32_t seq_id : *seed) {
    bool present = true;
    for (LockId id : rule_ids) {
      const std::vector<uint32_t>& postings = Postings(id);
      if (!std::binary_search(postings.begin(), postings.end(), seq_id)) {
        present = false;
        break;
      }
    }
    // Order filter: presence does not imply the rule's acquisition order
    // (or multiplicity); the two-pointer subsequence check decides.
    if (present && IsSubsequenceIds(rule_ids, store.id_seq(seq_id))) {
      candidates.push_back(seq_id);
    }
  }
  return candidates;
}

namespace {

// Resolves one lock instance (a row of the locks table) to its class
// relative to the accessed allocation.
LockClass ClassifyLock(const Database& db, const Table& locks, const Table& members,
                       const TypeRegistry& registry, uint64_t lock_row, uint64_t access_alloc) {
  const size_t kIsStatic = locks.ColumnIndex("is_static");
  const size_t kNameSid = locks.ColumnIndex("name_sid");
  const size_t kAddr = locks.ColumnIndex("addr");
  const size_t kOwnerAlloc = locks.ColumnIndex("owner_alloc_id");
  const size_t kOwnerMember = locks.ColumnIndex("owner_member_id");

  if (locks.GetUint64(lock_row, kIsStatic) != 0) {
    uint64_t name_sid = locks.GetUint64(lock_row, kNameSid);
    if (name_sid != 0) {
      return LockClass::Global(db.String(static_cast<StringId>(name_sid)));
    }
    return LockClass::Global(
        StrFormat("lock@0x%llx",
                  static_cast<unsigned long long>(locks.GetUint64(lock_row, kAddr))));
  }

  uint64_t member_row = locks.GetUint64(lock_row, kOwnerMember);
  TypeId owner_type =
      static_cast<TypeId>(members.GetUint64(member_row, members.ColumnIndex("type_id")));
  const std::string& lock_name = members.GetString(member_row, members.ColumnIndex("name"));
  const std::string& type_name = registry.layout(owner_type).name();
  if (locks.GetUint64(lock_row, kOwnerAlloc) == access_alloc) {
    return LockClass::Same(lock_name, type_name);
  }
  return LockClass::Other(lock_name, type_name);
}

}  // namespace

namespace {

// Open-group key: one folded observation per (txn, alloc, member_row).
struct GroupKey {
  uint64_t txn = 0;
  uint64_t alloc = 0;
  uint64_t member_row = 0;

  friend auto operator<=>(const GroupKey&, const GroupKey&) = default;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    // splitmix64-style mixing of the three fields.
    uint64_t h = key.txn;
    for (uint64_t v : {key.alloc, key.member_row}) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

// A distinct (txn, alloc) pair whose held-lock classes need classifying.
struct ClassTask {
  uint64_t txn = 0;
  uint64_t alloc = 0;
};

}  // namespace

ObservationStore ExtractObservations(const Database& db, const TypeRegistry& registry,
                                     ThreadPool* pool) {
  ObservationStore store;

  const Table& accesses = db.table(LockDocSchema::kAccesses);
  const Table& allocations = db.table(LockDocSchema::kAllocations);
  const Table& members = db.table(LockDocSchema::kMembers);
  const Table& locks = db.table(LockDocSchema::kLocks);
  const Table& txns = db.table(LockDocSchema::kTxns);
  const Table& txn_locks = db.table(LockDocSchema::kTxnLocks);

  const size_t kAccSeq = accesses.ColumnIndex("seq");
  const size_t kAccAlloc = accesses.ColumnIndex("alloc_id");
  const size_t kAccMember = accesses.ColumnIndex("member_id");
  const size_t kAccType = accesses.ColumnIndex("access_type");
  const size_t kAccTxn = accesses.ColumnIndex("txn_id");
  const size_t kAccFilter = accesses.ColumnIndex("filter_reason");

  const size_t kAllocType = allocations.ColumnIndex("type_id");
  const size_t kAllocSubclass = allocations.ColumnIndex("subclass");

  const size_t kMemberIdx = members.ColumnIndex("member_idx");

  const size_t kTxnEndSeq = txns.ColumnIndex("end_seq");

  const size_t kTlTxn = txn_locks.ColumnIndex("txn_id");
  const size_t kTlPos = txn_locks.ColumnIndex("position");
  const size_t kTlLock = txn_locks.ColumnIndex("lock_id");

  // Range-lock support (optional tables, present only for ranged traces).
  // A held range lock covers an access only when its span overlaps the
  // accessed allocation's ground-truth span; a non-overlapping hold is
  // dropped from that access's held sequence — it is neither compliance
  // nor violation, the access is simply not protected by it. Allocations
  // without a recorded span are conservatively covered by every hold, and
  // non-range holds always cover, so range-free traces take the exact
  // pre-range path.
  const bool has_ranges =
      db.HasTable(LockDocSchema::kAllocRanges) && db.HasTable(LockDocSchema::kTxnLockRanges);
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> alloc_span;
  const Table* txn_lock_ranges = nullptr;
  size_t kTlrTxn = 0, kTlrPos = 0, kTlrStart = 0, kTlrEnd = 0;
  if (has_ranges) {
    const Table& alloc_ranges = db.table(LockDocSchema::kAllocRanges);
    const size_t kArAlloc = alloc_ranges.ColumnIndex("alloc_id");
    const size_t kArStart = alloc_ranges.ColumnIndex("range_start");
    const size_t kArEnd = alloc_ranges.ColumnIndex("range_end");
    for (RowId row = 0; row < alloc_ranges.row_count(); ++row) {
      alloc_span[alloc_ranges.GetUint64(row, kArAlloc)] = {
          alloc_ranges.GetUint64(row, kArStart), alloc_ranges.GetUint64(row, kArEnd)};
    }
    txn_lock_ranges = &db.table(LockDocSchema::kTxnLockRanges);
    kTlrTxn = txn_lock_ranges->ColumnIndex("txn_id");
    kTlrPos = txn_lock_ranges->ColumnIndex("position");
    kTlrStart = txn_lock_ranges->ColumnIndex("range_start");
    kTlrEnd = txn_lock_ranges->ColumnIndex("range_end");
  }

  // --- Pass 1 (serial): fold accesses into groups in trace order. ---
  //
  // Classification of held locks is deferred: a newly created group records
  // the index of its (txn, alloc) classification task in `lockseq_id`; the
  // real interned ids are patched in after pass 3. Task order is group
  // first-appearance order — exactly the order the serial implementation
  // interned sequences in, which keeps interned ids byte-identical.
  std::vector<ClassTask> tasks;
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, uint32_t>> task_index;  // txn -> alloc -> task

  // Open groups only. Accesses arrive in seq order and a transaction id is
  // never reused after its end_seq, so a group whose txn has ended can be
  // evicted: it will never receive another access. The expiry heap releases
  // groups as the scan passes their transaction's end, keeping the map
  // proportional to *live* transactions instead of the whole trace.
  std::unordered_map<GroupKey, std::pair<MemberObsKey, size_t>, GroupKeyHash> open_groups;
  using Expiry = std::pair<uint64_t, GroupKey>;  // (txn end_seq, group)
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>> expiry;

  // Pass 2's lookups all hit txn_locks.txn_id; build that index on a spare
  // thread while the serial fold below runs, so the lookups start against a
  // ready index. (The build is internally synchronized; with no spare
  // thread it simply happens at the first lookup as usual.)
  std::optional<std::thread> index_warmer;
  if (pool != nullptr && pool->thread_count() > 1) {
    index_warmer.emplace([&txn_locks, kTlTxn] { txn_locks.WarmIndex(kTlTxn); });
  }

  // The fold touches six access columns per row; raw column pointers keep
  // the per-row cost at array reads (columns built by the importer are
  // always owned and contiguous).
  const uint64_t* acc_filter = accesses.ColumnU64Data(kAccFilter);
  const uint64_t* acc_seq = accesses.ColumnU64Data(kAccSeq);
  const uint64_t* acc_txn = accesses.ColumnU64Data(kAccTxn);
  const uint64_t* acc_alloc = accesses.ColumnU64Data(kAccAlloc);
  const uint64_t* acc_member = accesses.ColumnU64Data(kAccMember);
  const uint64_t* acc_type = accesses.ColumnU64Data(kAccType);
  const uint64_t* alloc_type = allocations.ColumnU64Data(kAllocType);
  const uint64_t* alloc_subclass = allocations.ColumnU64Data(kAllocSubclass);
  const uint64_t* member_idx = members.ColumnU64Data(kMemberIdx);
  const uint64_t* txn_end_seq = txns.ColumnU64Data(kTxnEndSeq);

  for (RowId row = 0; row < accesses.row_count(); ++row) {
    if (acc_filter[row] != static_cast<uint64_t>(FilterReason::kNone)) {
      continue;
    }
    uint64_t seq = acc_seq[row];
    uint64_t txn = acc_txn[row];
    uint64_t alloc = acc_alloc[row];
    uint64_t member_row = acc_member[row];
    LOCKDOC_CHECK(alloc != kDbNull && member_row != kDbNull && txn != kDbNull);

    while (!expiry.empty() && expiry.top().first <= seq) {
      open_groups.erase(expiry.top().second);
      task_index.erase(expiry.top().second.txn);  // Its txn id is never reused.
      expiry.pop();
    }

    GroupKey group_key{txn, alloc, member_row};
    auto it = open_groups.find(group_key);
    if (it == open_groups.end()) {
      // Resolve the member population key.
      MemberObsKey key;
      key.type = static_cast<TypeId>(alloc_type[alloc]);
      key.subclass = static_cast<SubclassId>(alloc_subclass[alloc]);
      key.member = static_cast<MemberIndex>(member_idx[member_row]);

      auto& by_alloc = task_index[txn];
      auto task_it = by_alloc.find(alloc);
      if (task_it == by_alloc.end()) {
        task_it = by_alloc.emplace(alloc, static_cast<uint32_t>(tasks.size())).first;
        tasks.push_back({txn, alloc});
      }

      std::vector<ObservationGroup>& groups = store.MutableGroups(key);
      ObservationGroup group;
      group.lockseq_id = task_it->second;  // Task index; patched after pass 3.
      group.txn_id = txn;
      group.alloc_id = alloc;
      groups.push_back(std::move(group));
      it = open_groups.emplace(group_key, std::make_pair(key, groups.size() - 1)).first;

      // An access inside a transaction precedes its end, so end_seq > seq
      // here and the group stays open at least until the txn ends. A null
      // end_seq (possible only outside the importer) never expires.
      uint64_t end_seq = txn_end_seq[txn];
      if (end_seq != kDbNull) {
        expiry.emplace(end_seq, group_key);
      }
    }

    ObservationGroup& group = store.MutableGroups(it->second.first)[it->second.second];
    if (acc_type[row] == static_cast<uint64_t>(AccessType::kWrite)) {
      ++group.n_writes;
    } else {
      ++group.n_reads;
    }
    group.seqs.push_back(seq);
  }
  if (index_warmer.has_value()) {
    index_warmer->join();
  }

  // --- Pass 2 (parallel): classify each distinct (txn, alloc) pair. ---
  // Tasks only read the database and registry (all const, no lazy state)
  // and write their own slot. Consecutive tasks usually share a
  // transaction, so each chunk keeps a local cache of its lock rows.
  std::vector<LockSeq> classified(tasks.size());
  struct HeldPosition {
    uint64_t lock_row = 0;
    bool has_range = false;
    uint64_t range_start = 0;
    uint64_t range_end = 0;
  };
  auto classify_range = [&](size_t begin, size_t end) {
    uint64_t cached_txn = kDbNull;
    std::vector<HeldPosition> cached_positions;
    for (size_t i = begin; i < end; ++i) {
      const ClassTask& task = tasks[i];
      if (task.txn != cached_txn) {
        cached_txn = task.txn;
        cached_positions.clear();
        std::vector<RowId> rows = txn_locks.LookupEqual(kTlTxn, task.txn);
        cached_positions.resize(rows.size());
        for (RowId tl_row : rows) {
          uint64_t pos = txn_locks.GetUint64(tl_row, kTlPos);
          LOCKDOC_CHECK(pos < cached_positions.size());
          cached_positions[pos].lock_row = txn_locks.GetUint64(tl_row, kTlLock);
        }
        if (txn_lock_ranges != nullptr) {
          for (RowId tlr_row : txn_lock_ranges->LookupEqual(kTlrTxn, task.txn)) {
            uint64_t pos = txn_lock_ranges->GetUint64(tlr_row, kTlrPos);
            LOCKDOC_CHECK(pos < cached_positions.size());
            cached_positions[pos].has_range = true;
            cached_positions[pos].range_start = txn_lock_ranges->GetUint64(tlr_row, kTlrStart);
            cached_positions[pos].range_end = txn_lock_ranges->GetUint64(tlr_row, kTlrEnd);
          }
        }
      }
      // The accessed allocation's ground-truth span, if it has one.
      const std::pair<uint64_t, uint64_t>* span = nullptr;
      if (has_ranges) {
        auto span_it = alloc_span.find(task.alloc);
        if (span_it != alloc_span.end()) {
          span = &span_it->second;
        }
      }
      LockSeq seq;
      seq.reserve(cached_positions.size());
      for (const HeldPosition& held : cached_positions) {
        if (held.has_range && span != nullptr &&
            !RangesOverlap(held.range_start, held.range_end, span->first, span->second)) {
          continue;  // The hold does not cover this object.
        }
        seq.push_back(ClassifyLock(db, locks, members, registry, held.lock_row, task.alloc));
      }
      classified[i] = std::move(seq);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(tasks.size(), classify_range);
  } else {
    classify_range(0, tasks.size());
  }

  // --- Pass 3 (serial): intern in task order, then patch group ids. ---
  std::vector<uint32_t> task_seq_id(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    task_seq_id[i] = store.InternSeq(classified[i]);
  }
  for (const auto& [key, groups] : store.groups()) {
    for (ObservationGroup& group : store.MutableGroups(key)) {
      group.lockseq_id = task_seq_id[group.lockseq_id];
    }
  }

  return store;
}

}  // namespace lockdoc
