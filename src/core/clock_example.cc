#include "src/core/clock_example.h"

#include "src/sim/kernel.h"

namespace lockdoc {

ClockExample BuildClockExample(const ClockExampleOptions& options) {
  ClockExample example;

  auto registry = std::make_unique<TypeRegistry>();
  auto layout = std::make_unique<TypeLayout>("clock");
  example.seconds = layout->AddMember("seconds", 8);
  example.minutes = layout->AddMember("minutes", 8);
  example.clock_type = registry->Register(std::move(layout));
  example.registry = std::move(registry);

  SimKernel sim(&example.trace, example.registry.get());
  GlobalLock sec_lock = sim.DefineStaticLock("sec_lock", LockType::kSpinlock);
  GlobalLock min_lock = sim.DefineStaticLock("min_lock", LockType::kSpinlock);

  FunctionScope file(sim, "kernel/clock.c", "clock_tick", 1, 20);
  ObjectRef clock = sim.Create(example.clock_type, kNoSubclass, 2);

  int seconds_value = 0;
  for (int i = 0; i < options.iterations; ++i) {
    // Fig. 4: transaction a.
    sim.LockGlobal(sec_lock, 1);
    sim.Read(clock, example.seconds, 2);   // seconds + 1 (read)
    sim.Write(clock, example.seconds, 2);  // seconds = ... (write)
    ++seconds_value;
    sim.Read(clock, example.seconds, 3);   // if (seconds == 60) (read)
    if (seconds_value == 60) {
      // Transaction b.
      sim.LockGlobal(min_lock, 4);
      sim.Write(clock, example.seconds, 5);   // seconds = 0
      sim.Read(clock, example.minutes, 6);    // minutes + 1
      sim.Write(clock, example.minutes, 6);   // minutes = ...
      sim.UnlockGlobal(min_lock, 7);
      seconds_value = 0;
    }
    sim.UnlockGlobal(sec_lock, 9);
  }

  if (options.include_faulty_execution) {
    // The buggy variant: min_lock is never taken (Sec. 4.1).
    FunctionScope buggy(sim, "kernel/clock.c", "clock_tick_buggy", 30, 45);
    sim.LockGlobal(sec_lock, 31);
    sim.Read(clock, example.seconds, 32);
    sim.Write(clock, example.seconds, 32);
    sim.Read(clock, example.seconds, 33);
    sim.Write(clock, example.seconds, 35);  // seconds = 0
    sim.Read(clock, example.minutes, 36);
    sim.Write(clock, example.minutes, 36);
    sim.UnlockGlobal(sec_lock, 39);
  }

  sim.Destroy(clock, 19);
  return example;
}

}  // namespace lockdoc
