// AnalysisContext — the shared fact base of the phase-3 analysis suite.
//
// Every phase-3 consumer (rule checking, violation finding, lock ordering,
// mode analysis, documentation, reporting, diffing) queries the *same*
// imported snapshot, and several of them need the *same* derived artifacts:
// the winning-rule set, the per-(member, access) observation split, the
// per-lock-class posting lists, the lock-order graph. Before this layer
// each CLI command rebuilt those artifacts from scratch — running the full
// suite derived rules four times and re-scanned the observation store once
// per analyzer. An AnalysisContext is a view over one AnalysisSnapshot that
// owns those artifacts as lazily-built, memoized, thread-safe shared
// indexes: each is built at most once per context (std::call_once per
// index), on first use, by whichever consumer asks first, and then served
// read-only to everyone else.
//
// Determinism contract (extends DESIGN.md 4b): every index is a pure
// function of the snapshot and the context's options — built over the
// context's ThreadPool where parallelism applies, with results written to
// per-index slots and merged in deterministic order — so index contents,
// and therefore every pass output, are byte-identical at any `jobs` value
// and no matter which consumer triggered construction. Rule derivation is
// timed into the context's PipelineTimings exactly once, no matter how many
// passes consume the rules.
#ifndef SRC_CORE_ANALYSIS_CONTEXT_H_
#define SRC_CORE_ANALYSIS_CONTEXT_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/derivator.h"
#include "src/core/filter_config.h"
#include "src/core/lock_order.h"
#include "src/core/observations.h"
#include "src/core/pipeline.h"
#include "src/model/type_registry.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

class AnalysisContext;

// Knobs consumed by individual analysis passes (src/core/analysis_pass.h),
// typically filled from CLI flags. A pass reads only its own fields.
struct PassOptions {
  // check / report: the documented rules to validate. Empty skips the
  // report's validation section and checks an empty rule set.
  std::string documented_rules_text;
  // violations / report: maximum Tab. 8-style examples listed.
  size_t violation_limit = 10;
  // modes: report every rule's mode distribution, not only suspicious ones.
  bool modes_all = false;
  // report: embed the generated documentation for every population.
  bool report_full = false;
  // diff: include unchanged rules.
  bool diff_all = false;
  // derive: emit the machine-readable rule spec instead of comment blocks.
  bool doc_spec = false;
  // derive: annotate members with sr/sa support.
  bool doc_support = false;
  // derive: restrict output to one type (and optionally one subclass).
  std::string doc_type;
  std::string doc_subclass;
  // derive: write the full documentation bundle here instead of stdout.
  std::string doc_out_dir;
  // violations / report: blacklist applied to the counterexample forensics,
  // with suppressed counts reported (never silent). Null: no suppression,
  // keeping default output byte-identical to the pre-forensics renderer.
  std::shared_ptr<const FilterConfig> forensics_filter;
  // diff: the OLD side of the comparison. Not owned.
  AnalysisContext* baseline = nullptr;
};

// Everything that parameterizes an analysis run: the pipeline knobs
// (threads, derivation thresholds) plus the per-pass options.
struct AnalysisOptions {
  PipelineOptions pipeline;
  PassOptions pass;
};

class AnalysisContext {
 public:
  // `snapshot` must outlive the context. `registry` may be nullptr for
  // derivation-only use (AnalyzeSnapshot); passes that resolve names CHECK
  // it. When `timings` is given, phases (rule derivation, pass phases) are
  // appended there; otherwise the context keeps its own.
  explicit AnalysisContext(const AnalysisSnapshot* snapshot,
                           const TypeRegistry* registry = nullptr,
                           AnalysisOptions options = {},
                           PipelineTimings* timings = nullptr);
  ~AnalysisContext();

  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  const AnalysisSnapshot& snapshot() const { return *snapshot_; }
  const Database& db() const { return snapshot_->db; }
  const ObservationStore& observations() const { return snapshot_->observations; }
  bool has_registry() const { return registry_ != nullptr; }
  const TypeRegistry& registry() const;  // CHECKs has_registry().
  const AnalysisOptions& options() const { return options_; }
  PassOptions& pass_options() { return options_.pass; }
  ThreadPool& pool() { return pool_; }
  PipelineTimings& timings() { return *timings_; }

  // --- Lazily-built shared indexes (each constructed at most once, ---
  // --- thread-safe, returned read-only)                            ---

  // The derived winning-rule set (DeriveAll over the context's pool).
  // Appends the "rule derivation (interned)" phase and the mining counters
  // to timings() on the one call that builds.
  const std::vector<DerivationResult>& rules();

  // The lock-class ordering graph (requires a registry).
  const LockOrderGraph& lock_order_graph();

  // Per-(member, access-type) observation groups.
  const MemberAccessIndex& member_access_index();

  // Per-lock-class posting lists over interned sequences.
  const LockPostingIndex& lock_postings();

  // Adopts pre-derived rules (e.g. from a completed PipelineResult) as the
  // memoized rule set. A no-op if rules() was already built; call before
  // first use. The seeded rules must come from this snapshot with the same
  // derivator options, or pass outputs will disagree with a fresh context.
  void SeedRules(std::vector<DerivationResult> rules);

  // Moves the memoized rule set out (deriving first if needed); the context
  // must not be used afterwards. For one-shot callers like AnalyzeSnapshot.
  std::vector<DerivationResult> TakeRules();

 private:
  const AnalysisSnapshot* snapshot_;
  const TypeRegistry* registry_;
  AnalysisOptions options_;
  ThreadPool pool_;
  PipelineTimings own_timings_;
  PipelineTimings* timings_;

  std::once_flag rules_once_;
  std::vector<DerivationResult> rules_;
  std::once_flag lock_order_once_;
  std::unique_ptr<LockOrderGraph> lock_order_;
  std::once_flag member_access_once_;
  std::unique_ptr<MemberAccessIndex> member_access_;
  std::once_flag postings_once_;
  std::unique_ptr<LockPostingIndex> postings_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_ANALYSIS_CONTEXT_H_
