#include "src/core/rule_diff.h"

#include <algorithm>
#include <map>

#include "src/util/string_util.h"

namespace lockdoc {

std::string_view RuleDriftKindName(RuleDriftKind kind) {
  switch (kind) {
    case RuleDriftKind::kAdded:
      return "+";
    case RuleDriftKind::kRemoved:
      return "-";
    case RuleDriftKind::kChanged:
      return "~";
    case RuleDriftKind::kUnchanged:
      return "=";
  }
  return "?";
}

std::vector<RuleDrift> DiffRules(const std::vector<DerivationResult>& old_rules,
                                 const std::vector<DerivationResult>& new_rules,
                                 const RuleDiffOptions& options) {
  using Key = std::pair<MemberObsKey, AccessType>;
  std::map<Key, const DerivationResult*> old_map;
  std::map<Key, const DerivationResult*> new_map;
  for (const DerivationResult& rule : old_rules) {
    if (rule.winner.has_value()) {
      old_map[{rule.key, rule.access}] = &rule;
    }
  }
  for (const DerivationResult& rule : new_rules) {
    if (rule.winner.has_value()) {
      new_map[{rule.key, rule.access}] = &rule;
    }
  }

  std::vector<RuleDrift> drifts;
  for (const auto& [key, old_rule] : old_map) {
    RuleDrift drift;
    drift.key = key.first;
    drift.access = key.second;
    drift.old_rule = old_rule->winner->locks;
    drift.old_sr = old_rule->winner->sr;
    auto it = new_map.find(key);
    if (it == new_map.end()) {
      drift.kind = RuleDriftKind::kRemoved;
    } else {
      drift.new_rule = it->second->winner->locks;
      drift.new_sr = it->second->winner->sr;
      drift.kind = (drift.new_rule == drift.old_rule) ? RuleDriftKind::kUnchanged
                                                      : RuleDriftKind::kChanged;
    }
    if (drift.kind != RuleDriftKind::kUnchanged || options.include_unchanged) {
      drifts.push_back(std::move(drift));
    }
  }
  for (const auto& [key, new_rule] : new_map) {
    if (old_map.count(key) != 0) {
      continue;
    }
    RuleDrift drift;
    drift.key = key.first;
    drift.access = key.second;
    drift.kind = RuleDriftKind::kAdded;
    drift.new_rule = new_rule->winner->locks;
    drift.new_sr = new_rule->winner->sr;
    drifts.push_back(std::move(drift));
  }

  std::sort(drifts.begin(), drifts.end(), [](const RuleDrift& a, const RuleDrift& b) {
    if (a.key != b.key) {
      return a.key < b.key;
    }
    return a.access < b.access;
  });
  return drifts;
}

std::string RenderRuleDiff(const std::vector<RuleDrift>& drifts, const TypeRegistry& registry) {
  std::string out;
  for (const RuleDrift& drift : drifts) {
    std::string member = registry.QualifiedName(drift.key.type, drift.key.subclass) + "." +
                         registry.layout(drift.key.type).member(drift.key.member).name;
    switch (drift.kind) {
      case RuleDriftKind::kAdded:
        out += StrFormat("+ %s %s: %s (sr %.2f)\n", member.c_str(),
                         AccessTypeName(drift.access), LockSeqToString(drift.new_rule).c_str(),
                         drift.new_sr);
        break;
      case RuleDriftKind::kRemoved:
        out += StrFormat("- %s %s: %s (sr %.2f)\n", member.c_str(),
                         AccessTypeName(drift.access), LockSeqToString(drift.old_rule).c_str(),
                         drift.old_sr);
        break;
      case RuleDriftKind::kChanged:
        out += StrFormat("~ %s %s: %s -> %s (sr %.2f -> %.2f)\n", member.c_str(),
                         AccessTypeName(drift.access), LockSeqToString(drift.old_rule).c_str(),
                         LockSeqToString(drift.new_rule).c_str(), drift.old_sr, drift.new_sr);
        break;
      case RuleDriftKind::kUnchanged:
        out += StrFormat("= %s %s: %s\n", member.c_str(), AccessTypeName(drift.access),
                         LockSeqToString(drift.new_rule).c_str());
        break;
    }
  }
  return out;
}

}  // namespace lockdoc
