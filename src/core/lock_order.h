// Lock-ordering analysis — the lockdep-style companion to rule mining
// (paper Sec. 3.2 discusses Linux's lockdep as the in-situ counterpart).
//
// From the reconstructed transactions we build a directed graph over lock
// *classes*: an edge A -> B with support n means B was acquired n times
// while A was already held. A cycle in this graph is a potential deadlock:
// two control flows taking the same locks in opposite orders. Because the
// graph ranges over generalized classes (global / ES / EO) rather than
// instances, one observed ordering generalizes across all objects of a type
// — including the deliberate ancestor-before-descendant ordering of
// same-class locks (e.g. parent d_lock before child d_lock), which appears
// as a self-loop and is reported separately rather than as a deadlock.
#ifndef SRC_CORE_LOCK_ORDER_H_
#define SRC_CORE_LOCK_ORDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/model/lock_class.h"
#include "src/model/type_registry.h"

namespace lockdoc {

struct LockOrderEdge {
  LockClass from;
  LockClass to;
  // Number of acquisitions of `to` while `from` was held.
  uint64_t support = 0;
  // One example acquisition (trace seq of the `to` acquire) for reporting,
  // plus its source location (from txn_locks) so reports render without the
  // trace.
  uint64_t example_seq = 0;
  uint64_t example_file_sid = 0;
  uint64_t example_line = 0;
};

// A cyclic chain of distinct lock classes c0 -> c1 -> ... -> c0.
struct LockOrderCycle {
  std::vector<LockClass> classes;
  // The weakest edge's support — low values usually indicate the rare
  // (buggy) direction.
  uint64_t min_support = 0;

  std::string ToString() const;
};

class LockOrderGraph {
 public:
  // Builds the graph from an imported database (txn_locks ordering, which
  // also carries the example acquire locations). Lock classes are computed
  // relative to nothing (there is no accessed object), so embedded locks
  // appear as EO(member in type) and same-type nesting becomes a self-loop.
  static LockOrderGraph Build(const Database& db, const TypeRegistry& registry);

  const std::vector<LockOrderEdge>& edges() const { return edges_; }

  // Edges A -> B for which B -> A also exists — ordering conflicts between
  // two classes, the classic ABBA deadlock candidates. Each conflicting
  // pair is reported once, with the rarer direction first.
  std::vector<std::pair<LockOrderEdge, LockOrderEdge>> ConflictingPairs() const;

  // All elementary cycles of length >= 2 (bounded search; the class graph
  // is small). Self-loops are excluded — see SelfNesting().
  std::vector<LockOrderCycle> FindCycles(size_t max_length = 4) const;

  // Classes acquired while another instance of the same class was held
  // (nested same-class locking, legal under an ancestor-first convention).
  std::vector<LockOrderEdge> SelfNesting() const;

  // Human-readable report of edges sorted by support; `db` resolves the
  // example locations' file names.
  std::string Report(const Database& db, size_t max_edges = 40) const;

 private:
  std::vector<LockOrderEdge> edges_;
  std::map<std::pair<LockClass, LockClass>, size_t> edge_index_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_LOCK_ORDER_H_
