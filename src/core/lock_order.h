// Lock-ordering analysis — the lockdep-style companion to rule mining
// (paper Sec. 3.2 discusses Linux's lockdep as the in-situ counterpart).
//
// From the reconstructed transactions we build a directed graph over lock
// *classes*: an edge A -> B with support n means B was acquired n times
// while A was already held. A cycle in this graph is a potential deadlock:
// two control flows taking the same locks in opposite orders. Because the
// graph ranges over generalized classes (global / ES / EO) rather than
// instances, one observed ordering generalizes across all objects of a type
// — including the deliberate ancestor-before-descendant ordering of
// same-class locks (e.g. parent d_lock before child d_lock), which appears
// as a self-loop and is reported separately rather than as a deadlock.
//
// Each class-level edge additionally carries an *instance witness*: the
// concrete lock addresses (and, for range locks, the held spans) of the
// first observation of that ordering, so a report line can always be traced
// back to real objects. Cycle detection scales by first condensing the
// graph into strongly connected components (Tarjan) — only nodes inside a
// nontrivial SCC can lie on a cycle, so the bounded path enumeration never
// explores the (typically acyclic) bulk of the graph.
#ifndef SRC_CORE_LOCK_ORDER_H_
#define SRC_CORE_LOCK_ORDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/model/lock_class.h"
#include "src/model/type_registry.h"

namespace lockdoc {

// One end of an observed instance-level ordering: the concrete lock
// instance the class-level edge was first witnessed on.
struct LockWitness {
  uint64_t addr = 0;
  // Range-lock holds carry the held [start, end) span.
  bool has_range = false;
  uint64_t range_start = 0;
  uint64_t range_end = 0;

  // "0x1234" or "0x1234[0x10000,0x14000)".
  std::string ToString() const;
};

struct LockOrderEdge {
  LockClass from;
  LockClass to;
  // Number of acquisitions of `to` while `from` was held.
  uint64_t support = 0;
  // One example acquisition (trace seq of the `to` acquire) for reporting,
  // plus its source location (from txn_locks) so reports render without the
  // trace.
  uint64_t example_seq = 0;
  uint64_t example_file_sid = 0;
  uint64_t example_line = 0;
  // Instance witnesses of the first observation of this ordering.
  LockWitness witness_from;
  LockWitness witness_to;
};

// A cyclic chain of distinct lock classes c0 -> c1 -> ... -> c0.
struct LockOrderCycle {
  std::vector<LockClass> classes;
  // The weakest edge's support — low values usually indicate the rare
  // (buggy) direction.
  uint64_t min_support = 0;

  std::string ToString() const;
};

// A concrete cycle *path*: the full edges (with supports, example sites and
// instance witnesses) closing a cycle. edges[i].to == edges[i+1].from and
// edges.back().to == edges.front().from.
struct LockOrderCyclePath {
  std::vector<LockOrderEdge> edges;
  uint64_t min_support = 0;

  // One line per cycle: "A -> B -> A (min support n)".
  std::string ToString() const;
};

class LockOrderGraph {
 public:
  // Builds the graph from an imported database (txn_locks ordering, which
  // also carries the example acquire locations; the optional
  // txn_lock_ranges table supplies held spans for range-lock witnesses).
  // Lock classes are computed relative to nothing (there is no accessed
  // object), so embedded locks appear as EO(member in type) and same-type
  // nesting becomes a self-loop.
  static LockOrderGraph Build(const Database& db, const TypeRegistry& registry);

  const std::vector<LockOrderEdge>& edges() const { return edges_; }

  // Edges A -> B for which B -> A also exists — ordering conflicts between
  // two classes, the classic ABBA deadlock candidates. Each conflicting
  // pair is reported once, with the rarer direction first.
  std::vector<std::pair<LockOrderEdge, LockOrderEdge>> ConflictingPairs() const;

  // All elementary cycles of length >= 2 (bounded search; the class graph
  // is small). Self-loops are excluded — see SelfNesting().
  std::vector<LockOrderCycle> FindCycles(size_t max_length = 4) const;

  // Strongly connected components (Tarjan) of the class graph that can
  // carry a cycle, i.e. components with at least two classes. Classes
  // within a component and the components themselves are sorted, so the
  // output is independent of graph construction order.
  std::vector<std::vector<LockClass>> StronglyConnectedComponents() const;

  // Bounded enumeration of elementary cycle paths with their full edges.
  // The search runs per nontrivial SCC (cross-component edges can never
  // close a cycle), capped at `max_length` edges per cycle and `max_paths`
  // paths overall; rarest (lowest min-support) paths are reported first.
  std::vector<LockOrderCyclePath> FindCyclePaths(size_t max_length = 6,
                                                 size_t max_paths = 64) const;

  // Classes acquired while another instance of the same class was held
  // (nested same-class locking, legal under an ancestor-first convention).
  std::vector<LockOrderEdge> SelfNesting() const;

  // Human-readable report: edges sorted by support (with instance
  // witnesses), ABBA conflicts, SCC condensation, and the enumerated cycle
  // paths with per-edge example acquisition sites. `db` resolves the
  // example locations' file names.
  std::string Report(const Database& db, size_t max_edges = 40) const;

 private:
  std::vector<LockOrderEdge> edges_;
  std::map<std::pair<LockClass, LockClass>, size_t> edge_index_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_LOCK_ORDER_H_
