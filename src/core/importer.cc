#include "src/core/importer.h"

#include <mutex>
#include <set>
#include <vector>

#include "src/util/logging.h"

namespace lockdoc {
namespace {

// One lock currently held during the replay.
struct HeldLockState {
  LockInstanceId lock = 0;
  uint64_t acquire_seq = 0;
  AcquireMode mode = AcquireMode::kExclusive;
  StringId acquire_file = 0;
  uint32_t acquire_line = 0;
  // Range-lock holds: the locked [start, end) span. A release names the
  // exact span it acquired, so (lock, range) identifies the hold.
  bool has_range = false;
  uint64_t range_start = 0;
  uint64_t range_end = 0;
};

// A memory access after the sequential replay attributed it: which
// allocation contained the address at that moment, and which transaction
// was current. Member resolution and filter classification are pure
// functions of this record, so they run in the parallel phase below.
struct StagedAccess {
  uint32_t event_index = 0;
  uint64_t alloc_id = 0;
  uint64_t txn_id = 0;
};

}  // namespace

TraceImporter::TraceImporter(const TypeRegistry* registry, FilterConfig filter)
    : registry_(registry), filter_(std::move(filter)) {
  LOCKDOC_CHECK(registry_ != nullptr);
}

ImportStats TraceImporter::Import(const Trace& trace, Database* db, ThreadPool* pool) {
  LOCKDOC_CHECK(db != nullptr);
  CreateLockDocSchema(db);
  ImportStats stats;
  stats.events = trace.size();

  // Range-lock tables exist only when the trace uses ranges, so databases
  // (and their snapshots) of legacy traces are byte-identical to before.
  bool any_range = false;
  for (const TraceEvent& e : trace.events()) {
    if (e.has_range) {
      any_range = true;
      break;
    }
  }
  if (any_range) {
    CreateRangeTables(db);
  }
  Table* alloc_ranges = any_range ? &db->table(LockDocSchema::kAllocRanges) : nullptr;
  Table* txn_lock_ranges = any_range ? &db->table(LockDocSchema::kTxnLockRanges) : nullptr;

  // The database owns a copy of the trace's strings (ids preserved), so
  // every *_sid column stays resolvable after the trace is gone.
  db->mutable_strings().Reset(
      std::vector<std::string>(trace.string_pool().strings()));

  // --- Dimension tables: data types, subclasses, members. ---
  Table& data_types = db->table(LockDocSchema::kDataTypes);
  Table& subclasses = db->table(LockDocSchema::kSubclasses);
  Table& members = db->table(LockDocSchema::kMembers);
  // Global member row id for (type, member index).
  std::vector<std::vector<uint64_t>> member_row(registry_->type_count());
  {
    uint64_t subclass_row = 0;
    for (TypeId type = 0; type < registry_->type_count(); ++type) {
      const TypeLayout& layout = registry_->layout(type);
      data_types.Insert({static_cast<uint64_t>(type), layout.name()});
      for (SubclassId sub : registry_->SubclassesOf(type)) {
        subclasses.Insert({subclass_row++, static_cast<uint64_t>(type),
                           static_cast<uint64_t>(sub), registry_->SubclassName(type, sub)});
      }
      member_row[type].resize(layout.member_count());
      for (MemberIndex m = 0; m < layout.member_count(); ++m) {
        const MemberDef& def = layout.member(m);
        uint64_t row = members.row_count();
        member_row[type][m] = row;
        members.Insert({row, static_cast<uint64_t>(type), static_cast<uint64_t>(m), def.name,
                        static_cast<uint64_t>(def.offset), static_cast<uint64_t>(def.size),
                        static_cast<uint64_t>(def.is_lock ? 1 : 0),
                        static_cast<uint64_t>(def.is_atomic ? 1 : 0),
                        static_cast<uint64_t>(def.blacklisted ? 1 : 0)});
      }
    }
  }

  // --- Function black lists resolved to interned string ids. ---
  // A name that was never interned cannot appear on any stack.
  std::set<StringId> init_teardown_sids;
  std::set<StringId> ignored_sids;
  for (const std::string& fn : filter_.init_teardown_functions) {
    if (auto sid = trace.string_pool().Find(fn); sid.has_value()) {
      init_teardown_sids.insert(*sid);
    }
  }
  for (const std::string& fn : filter_.ignored_functions) {
    if (auto sid = trace.string_pool().Find(fn); sid.has_value()) {
      ignored_sids.insert(*sid);
    }
  }
  // Per-stack classification cache: 0 = unknown, 1 = clean, 2 = init/teardown,
  // 3 = ignored-function.
  std::vector<uint8_t> stack_class(trace.stack_count(), 0);
  auto classify_stack = [&](StackId stack) -> FilterReason {
    if (stack == kInvalidStack) {
      return FilterReason::kNone;
    }
    uint8_t& cached = stack_class[stack];
    if (cached == 0) {
      cached = 1;
      for (StringId frame : trace.Stack(stack).frames) {
        if (ignored_sids.count(frame) != 0) {
          cached = 3;
          break;
        }
        if (init_teardown_sids.count(frame) != 0) {
          cached = 2;
          break;
        }
      }
    }
    switch (cached) {
      case 2:
        return FilterReason::kInitTeardown;
      case 3:
        return FilterReason::kBlacklistedFn;
      default:
        return FilterReason::kNone;
    }
  };

  // --- Replay state. ---
  AllocationTracker tracker;
  LockResolver resolver(registry_, &tracker);
  Table& allocations = db->table(LockDocSchema::kAllocations);
  Table& locks = db->table(LockDocSchema::kLocks);
  Table& txns = db->table(LockDocSchema::kTxns);
  Table& txn_locks = db->table(LockDocSchema::kTxnLocks);
  Table& accesses = db->table(LockDocSchema::kAccesses);
  const size_t kAllocFreeSeqCol = allocations.ColumnIndex("free_seq");

  // Transaction reconstruction (Sec. 4.2): acquiring a lock starts a nested
  // transaction; releasing it resumes the *enclosing* transaction — the same
  // transaction id, because the set of held locks is the same again. Spans
  // with no locks held get their own (lock-free) transactions.
  struct TxnFrame {
    HeldLockState lock;
    uint64_t txn_id = kDbNull;
  };
  std::vector<TxnFrame> txn_stack;
  uint64_t base_txn = kDbNull;  // Current lock-free transaction.
  uint64_t current_txn = kDbNull;
  uint64_t locks_row_count = 0;
  const size_t kTxnEndSeqCol = txns.ColumnIndex("end_seq");

  // Creates a transaction row for the current stack contents (or the empty
  // set) starting at `seq`.
  auto new_txn = [&](uint64_t seq) {
    uint64_t id = txns.row_count();
    txns.Insert({id, seq, kDbNull, static_cast<uint64_t>(txn_stack.size())});
    for (size_t i = 0; i < txn_stack.size(); ++i) {
      txn_locks.Insert({id, static_cast<uint64_t>(i), txn_stack[i].lock.lock,
                        txn_stack[i].lock.acquire_seq,
                        static_cast<uint64_t>(txn_stack[i].lock.mode),
                        static_cast<uint64_t>(txn_stack[i].lock.acquire_file),
                        static_cast<uint64_t>(txn_stack[i].lock.acquire_line)});
      if (txn_stack[i].lock.has_range) {
        txn_lock_ranges->Insert({id, static_cast<uint64_t>(i), txn_stack[i].lock.range_start,
                                 txn_stack[i].lock.range_end});
      }
    }
    ++stats.txns;
    if (!txn_stack.empty()) {
      ++stats.locked_txns;
    }
    return id;
  };
  auto end_txn = [&](uint64_t id, uint64_t seq) {
    if (id != kDbNull) {
      // Every transaction is closed exactly once; a second close would
      // corrupt the end_seq the open-group eviction in ExtractObservations
      // relies on.
      LOCKDOC_CHECK(txns.GetUint64(id, kTxnEndSeqCol) == kDbNull);
      txns.SetUint64(id, kTxnEndSeqCol, seq);
    }
  };

  // The trace starts in a lock-free span.
  base_txn = new_txn(0);
  current_txn = base_txn;

  std::vector<StagedAccess> staged;
  staged.reserve(trace.size());
  const std::vector<TraceEvent>& events = trace.events();
  for (size_t event_index = 0; event_index < events.size(); ++event_index) {
    const TraceEvent& e = events[event_index];
    switch (e.kind) {
      case EventKind::kAlloc: {
        if (e.type == kInvalidTypeId || e.type >= registry_->type_count()) {
          // Only reachable with damaged traces: without a layout the
          // allocation cannot be interpreted, so it stays untracked and
          // its accesses fall into the untracked-memory filter bucket.
          ++stats.unknown_type_allocs;
          break;
        }
        std::optional<AllocationId> displaced;
        AllocationId id = tracker.OnAlloc(e, &displaced);
        LOCKDOC_CHECK(id == allocations.row_count());
        if (displaced.has_value()) {
          // The free event for the previous lifetime was lost (salvaged
          // trace): retire its row here, where the tracker retired it.
          allocations.SetUint64(*displaced, kAllocFreeSeqCol, e.seq);
          ++stats.realloc_overlaps;
        }
        allocations.Insert({id, static_cast<uint64_t>(e.type), static_cast<uint64_t>(e.subclass),
                            e.addr, static_cast<uint64_t>(e.size), e.seq, kDbNull});
        if (e.has_range) {
          // The object's ground-truth resource span (e.g. a vma's
          // [vm_start, vm_end)); overlap analysis matches held ranges
          // against it.
          alloc_ranges->Insert({id, e.range_start, e.range_end});
        }
        break;
      }
      case EventKind::kFree: {
        auto freed = tracker.OnFree(e);
        if (freed.has_value()) {
          allocations.SetUint64(*freed, kAllocFreeSeqCol, e.seq);
        }
        break;
      }
      case EventKind::kStaticLockDef:
        resolver.OnStaticLockDef(e);
        break;
      case EventKind::kLockAcquire: {
        LockInstanceId lock = resolver.Resolve(e);
        // Mirror new lock instances into the locks table as they appear.
        while (locks_row_count < resolver.instance_count()) {
          const LockInstance& inst = resolver.instance(locks_row_count);
          uint64_t owner_member_row = kDbNull;
          if (!inst.is_static) {
            owner_member_row = member_row[inst.owner_type][inst.owner_member];
          }
          locks.Insert({inst.id, inst.addr, static_cast<uint64_t>(inst.type),
                        static_cast<uint64_t>(inst.is_static ? 1 : 0),
                        static_cast<uint64_t>(inst.name),
                        inst.is_static ? kDbNull : inst.owner, owner_member_row});
          ++locks_row_count;
        }
        if (txn_stack.empty()) {
          // Leaving a lock-free span.
          end_txn(base_txn, e.seq);
          base_txn = kDbNull;
        }
        TxnFrame frame;
        frame.lock.lock = lock;
        frame.lock.acquire_seq = e.seq;
        frame.lock.mode = e.mode;
        frame.lock.acquire_file = e.loc.file;
        frame.lock.acquire_line = e.loc.line;
        frame.lock.has_range = e.has_range;
        frame.lock.range_start = e.range_start;
        frame.lock.range_end = e.range_end;
        txn_stack.push_back(frame);
        txn_stack.back().txn_id = new_txn(e.seq);
        current_txn = txn_stack.back().txn_id;
        break;
      }
      case EventKind::kLockRelease: {
        LockInstanceId lock = resolver.Resolve(e);
        // Find the frame holding this lock (innermost first); releases may
        // happen out of LIFO order. A range lock admits several simultaneous
        // holds of the same instance, so the release's span must match the
        // hold's span exactly.
        size_t frame_index = txn_stack.size();
        for (size_t i = txn_stack.size(); i > 0; --i) {
          const HeldLockState& held = txn_stack[i - 1].lock;
          if (held.lock != lock || held.has_range != e.has_range) {
            continue;
          }
          if (held.has_range &&
              (held.range_start != e.range_start || held.range_end != e.range_end)) {
            continue;
          }
          frame_index = i - 1;
          break;
        }
        if (frame_index == txn_stack.size()) {
          // Release of a lock that is not held: the acquire was lost to
          // corruption (or the trace is malformed). Dropping the event
          // keeps the held-set reconstruction consistent.
          ++stats.unmatched_releases;
          break;
        }
        if (frame_index == txn_stack.size() - 1) {
          // LIFO release: the enclosing transaction resumes under its
          // original id (the held set is the same again).
          end_txn(txn_stack.back().txn_id, e.seq);
          txn_stack.pop_back();
        } else {
          // Out-of-order release: every transaction nested above the
          // released lock had that lock in its set; their ids are stale, so
          // fresh transactions are minted for the reduced sets.
          for (size_t i = frame_index; i < txn_stack.size(); ++i) {
            end_txn(txn_stack[i].txn_id, e.seq);
          }
          txn_stack.erase(txn_stack.begin() + static_cast<ptrdiff_t>(frame_index));
          std::vector<TxnFrame> suffix(txn_stack.begin() + static_cast<ptrdiff_t>(frame_index),
                                       txn_stack.end());
          txn_stack.resize(frame_index);
          for (TxnFrame& frame : suffix) {
            txn_stack.push_back(frame);
            txn_stack.back().txn_id = new_txn(e.seq);
          }
        }
        if (txn_stack.empty()) {
          base_txn = new_txn(e.seq);
          current_txn = base_txn;
        } else {
          current_txn = txn_stack.back().txn_id;
        }
        break;
      }
      case EventKind::kMemRead:
      case EventKind::kMemWrite: {
        // The only replay-dependent facts about an access are which
        // allocation was live at its address and which transaction was
        // current; record them and defer the rest to the parallel phase.
        ++stats.accesses_total;
        std::optional<AllocationId> found = tracker.Find(e.addr);
        staged.push_back({static_cast<uint32_t>(event_index),
                          found.has_value() ? *found : kDbNull, current_txn});
        break;
      }
    }
  }

  // --- Parallel phase: member resolution + filter classification. ---
  // Each staged access fills its own row slot; rows land in event order, so
  // the table is identical to the sequential build at any thread count.
  {
    // classify_stack memoizes lazily; warm the whole cache up front so the
    // parallel workers only read it.
    for (StackId stack = 0; stack < trace.stack_count(); ++stack) {
      classify_stack(stack);
    }
    const size_t n = staged.size();
    std::vector<ColumnData> storage(accesses.column_count());
    for (ColumnData& column : storage) {
      column.u64.resize(n);
    }
    enum AccessColumn {
      kColSeq, kColAlloc, kColMember, kColType, kColSize, kColTxn,
      kColContext, kColTask, kColFile, kColLine, kColStack, kColReason,
    };
    std::vector<uint64_t> kept_per_chunk;
    std::mutex kept_mu;
    auto fill = [&](size_t begin, size_t end) {
      uint64_t kept = 0;
      for (size_t i = begin; i < end; ++i) {
        const StagedAccess& s = staged[i];
        const TraceEvent& e = events[s.event_index];
        FilterReason reason = FilterReason::kNone;
        uint64_t member_id = kDbNull;
        if (s.alloc_id == kDbNull) {
          reason = FilterReason::kUntrackedMemory;
        } else {
          const AllocationInfo& alloc = tracker.info(s.alloc_id);
          const TypeLayout& layout = registry_->layout(alloc.type);
          auto member = layout.ResolveOffset(static_cast<uint32_t>(e.addr - alloc.addr));
          if (!member.has_value()) {
            reason = FilterReason::kUntrackedMemory;
          } else {
            member_id = member_row[alloc.type][*member];
            const MemberDef& def = layout.member(*member);
            if (def.is_lock) {
              reason = FilterReason::kLockMember;
            } else if (def.is_atomic) {
              reason = FilterReason::kAtomicMember;
            } else if (def.blacklisted) {
              reason = FilterReason::kBlacklistedMember;
            } else {
              reason = classify_stack(e.stack);
            }
          }
        }
        if (reason == FilterReason::kNone) {
          ++kept;
        }
        storage[kColSeq].u64[i] = e.seq;
        storage[kColAlloc].u64[i] = s.alloc_id;
        storage[kColMember].u64[i] = member_id;
        storage[kColType].u64[i] = static_cast<uint64_t>(AccessTypeOf(e));
        storage[kColSize].u64[i] = static_cast<uint64_t>(e.size);
        storage[kColTxn].u64[i] = s.txn_id;
        storage[kColContext].u64[i] = static_cast<uint64_t>(e.context);
        storage[kColTask].u64[i] = static_cast<uint64_t>(e.task_id);
        storage[kColFile].u64[i] = static_cast<uint64_t>(e.loc.file);
        storage[kColLine].u64[i] = static_cast<uint64_t>(e.loc.line);
        storage[kColStack].u64[i] =
            e.stack == kInvalidStack ? kDbNull : static_cast<uint64_t>(e.stack);
        storage[kColReason].u64[i] = static_cast<uint64_t>(reason);
      }
      std::lock_guard<std::mutex> guard(kept_mu);
      kept_per_chunk.push_back(kept);
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, fill);
    } else {
      fill(0, n);
    }
    for (uint64_t kept : kept_per_chunk) {
      stats.accesses_kept += kept;
    }
    stats.accesses_filtered = n - stats.accesses_kept;
    accesses.ResetRows(n, std::move(storage));
  }
  // Close everything still open. In a well-formed trace only the final
  // lock-free span remains; a truncated trace can end with locks held, and
  // their transactions are closed at the truncation point. `current_txn` is
  // always either `base_txn` or the innermost frame's transaction, so these
  // two paths close every open transaction exactly once.
  stats.dangling_locks_closed = txn_stack.size();
  for (const TxnFrame& frame : txn_stack) {
    end_txn(frame.txn_id, trace.size());
  }
  txn_stack.clear();
  end_txn(base_txn, trace.size());
  for (RowId txn = 0; txn < txns.row_count(); ++txn) {
    LOCKDOC_CHECK(txns.GetUint64(txn, kTxnEndSeqCol) != kDbNull);
  }

  // --- Stack frames table. ---
  Table& stack_frames = db->table(LockDocSchema::kStackFrames);
  for (StackId id = 0; id < trace.stack_count(); ++id) {
    const CallStack& stack = trace.Stack(id);
    for (size_t pos = 0; pos < stack.frames.size(); ++pos) {
      stack_frames.Insert({static_cast<uint64_t>(id), static_cast<uint64_t>(pos),
                           static_cast<uint64_t>(stack.frames[pos])});
    }
  }

  stats.lock_instances = resolver.instance_count();
  stats.allocations = tracker.allocation_count();
  stats.live_allocations_at_end = tracker.live_count();
  stats.unresolved_lock_ops = resolver.unresolved_count();
  return stats;
}

}  // namespace lockdoc
