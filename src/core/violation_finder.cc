#include "src/core/violation_finder.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/db/schema.h"
#include "src/util/logging.h"

namespace lockdoc {

ViolationFinder::ViolationFinder(const Database* db, const TypeRegistry* registry,
                                 const ObservationStore* store,
                                 const MemberAccessIndex* member_index,
                                 const LockPostingIndex* postings)
    : db_(db),
      registry_(registry),
      store_(store),
      member_index_(member_index),
      postings_(postings) {
  LOCKDOC_CHECK(db_ != nullptr);
  LOCKDOC_CHECK(registry_ != nullptr);
  LOCKDOC_CHECK(store_ != nullptr);
}

ViolationFinder::AccessContext ViolationFinder::ContextOf(uint64_t seq) const {
  const Table& accesses = db_->table(LockDocSchema::kAccesses);
  static const size_t kSeq = accesses.ColumnIndex("seq");
  static const size_t kType = accesses.ColumnIndex("access_type");
  static const size_t kFile = accesses.ColumnIndex("file_sid");
  static const size_t kLine = accesses.ColumnIndex("line");
  static const size_t kStack = accesses.ColumnIndex("stack_id");
  std::vector<RowId> rows = accesses.LookupEqual(kSeq, seq);
  LOCKDOC_CHECK(rows.size() == 1);  // seq is the accesses table's key.
  AccessContext context;
  context.access_type = accesses.GetUint64(rows[0], kType);
  context.file_sid = accesses.GetUint64(rows[0], kFile);
  context.line = accesses.GetUint64(rows[0], kLine);
  context.stack_id = accesses.GetUint64(rows[0], kStack);
  return context;
}

std::vector<Violation> ViolationFinder::FindAll(const std::vector<DerivationResult>& results,
                                                ThreadPool* pool) const {
  // Each derivation result fills its own slot; slots are concatenated in
  // rule order below, keeping output identical at any thread count.
  std::vector<std::vector<Violation>> slots(results.size());
  auto find_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const DerivationResult& result = results[i];
      if (!result.winner.has_value() || result.winner->is_no_lock() ||
          result.winner->sr >= 1.0) {
        continue;
      }
      // Winners come from observed combinations, so their classes are
      // always interned; compare ids in the scan and materialize the held
      // strings only for actual violations. A hand-built result with
      // unknown classes falls back to the string comparison. With the
      // shared posting lists the rule's complying sequences are computed
      // once up front and each group is a binary-search lookup.
      std::optional<IdSeq> rule_ids = store_->pool().FindSeq(result.winner->locks);
      std::vector<uint32_t> complying;
      bool have_complying = false;
      if (postings_ != nullptr && rule_ids.has_value()) {
        complying = postings_->ComplyingSeqs(*store_, *rule_ids);
        have_complying = true;
      }
      const std::vector<ObservationGroup>& groups = store_->GroupsFor(result.key);
      auto visit_group = [&](const ObservationGroup& group) {
        const LockSeq& held = store_->seq(group.lockseq_id);
        bool complies =
            have_complying
                ? std::binary_search(complying.begin(), complying.end(), group.lockseq_id)
                : (rule_ids.has_value()
                       ? IsSubsequenceIds(*rule_ids, store_->id_seq(group.lockseq_id))
                       : IsSubsequence(result.winner->locks, held));
        if (complies) {
          return;
        }
        Violation violation;
        violation.key = result.key;
        violation.access = result.access;
        violation.rule = result.winner->locks;
        violation.held = held;
        for (uint64_t seq : group.seqs) {
          if (static_cast<AccessType>(ContextOf(seq).access_type) == result.access) {
            violation.seqs.push_back(seq);
          }
        }
        if (!violation.seqs.empty()) {
          slots[i].push_back(std::move(violation));
        }
      };
      if (member_index_ != nullptr) {
        if (const MemberAccessIndex::Entry* entry = member_index_->Find(result.key)) {
          for (uint32_t index : entry->For(result.access)) {
            visit_group(groups[index]);
          }
        }
      } else {
        for (const ObservationGroup& group : groups) {
          if (group.effective() == result.access) {
            visit_group(group);
          }
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(results.size(), find_range);
  } else {
    find_range(0, results.size());
  }

  std::vector<Violation> violations;
  for (std::vector<Violation>& slot : slots) {
    for (Violation& violation : slot) {
      violations.push_back(std::move(violation));
    }
  }
  return violations;
}

std::vector<ViolationSummaryRow> ViolationFinder::Summarize(
    const std::vector<Violation>& violations) const {
  struct Agg {
    uint64_t events = 0;
    std::set<MemberIndex> members;
    // (file_sid, line, stack_id); kDbNull marks a missing stack, which is
    // as unique a sentinel as kInvalidStack was, so grouping is unchanged.
    std::set<std::tuple<uint64_t, uint64_t, uint64_t>> contexts;
  };
  // Include every observed (type, subclass) so clean types report zeros,
  // as in the paper's Tab. 7.
  std::map<std::pair<TypeId, SubclassId>, Agg> by_type;
  for (const auto& [key, groups] : store_->groups()) {
    by_type.try_emplace({key.type, key.subclass});
  }
  for (const Violation& violation : violations) {
    Agg& agg = by_type[{violation.key.type, violation.key.subclass}];
    agg.events += violation.seqs.size();
    agg.members.insert(violation.key.member);
    for (uint64_t seq : violation.seqs) {
      AccessContext context = ContextOf(seq);
      agg.contexts.insert({context.file_sid, context.line, context.stack_id});
    }
  }

  std::vector<ViolationSummaryRow> rows;
  rows.reserve(by_type.size());
  for (const auto& [type_key, agg] : by_type) {
    ViolationSummaryRow row;
    row.type_name = registry_->QualifiedName(type_key.first, type_key.second);
    row.events = agg.events;
    row.members = agg.members.size();
    row.contexts = agg.contexts.size();
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const ViolationSummaryRow& a,
                                         const ViolationSummaryRow& b) {
    return a.type_name < b.type_name;
  });
  return rows;
}

std::vector<ViolationExample> ViolationFinder::Examples(const std::vector<Violation>& violations,
                                                        size_t limit) const {
  // Aggregate violating events by full context:
  // (member, access, rule, held, file, line, stack).
  using ContextKey =
      std::tuple<std::string, std::string, std::string, std::string, uint64_t, uint64_t,
                 uint64_t>;
  std::map<ContextKey, uint64_t> counts;
  for (const Violation& violation : violations) {
    std::string member =
        registry_->QualifiedName(violation.key.type, violation.key.subclass) + "." +
        registry_->layout(violation.key.type).member(violation.key.member).name;
    std::string rule = LockSeqToString(violation.rule);
    std::string held = LockSeqToString(violation.held);
    for (uint64_t seq : violation.seqs) {
      AccessContext context = ContextOf(seq);
      ++counts[std::make_tuple(member, std::string(AccessTypeName(violation.access)), rule, held,
                               context.file_sid, context.line, context.stack_id)];
    }
  }

  std::vector<std::pair<const ContextKey*, uint64_t>> sorted;
  sorted.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    sorted.emplace_back(&key, count);
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return *a.first < *b.first;
  });

  std::vector<ViolationExample> examples;
  for (const auto& [key, count] : sorted) {
    if (examples.size() >= limit) {
      break;
    }
    ViolationExample example;
    example.member = std::get<0>(*key);
    example.access = std::get<1>(*key);
    example.rule = std::get<2>(*key);
    example.held = std::get<3>(*key);
    example.location = DbFormatLoc(*db_, std::get<4>(*key), std::get<5>(*key));
    example.stack = DbFormatStack(*db_, std::get<6>(*key));
    example.events = count;
    examples.push_back(std::move(example));
  }
  return examples;
}

}  // namespace lockdoc
