#include "src/core/violation_finder.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/core/held_locks.h"
#include "src/db/schema.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

ViolationFinder::ViolationFinder(const Database* db, const TypeRegistry* registry,
                                 const ObservationStore* store,
                                 const MemberAccessIndex* member_index,
                                 const LockPostingIndex* postings)
    : db_(db),
      registry_(registry),
      store_(store),
      member_index_(member_index),
      postings_(postings) {
  LOCKDOC_CHECK(db_ != nullptr);
  LOCKDOC_CHECK(registry_ != nullptr);
  LOCKDOC_CHECK(store_ != nullptr);
}

ViolationFinder::AccessContext ViolationFinder::ContextOf(uint64_t seq) const {
  const Table& accesses = db_->table(LockDocSchema::kAccesses);
  static const size_t kSeq = accesses.ColumnIndex("seq");
  static const size_t kType = accesses.ColumnIndex("access_type");
  static const size_t kFile = accesses.ColumnIndex("file_sid");
  static const size_t kLine = accesses.ColumnIndex("line");
  static const size_t kStack = accesses.ColumnIndex("stack_id");
  std::vector<RowId> rows = accesses.LookupEqual(kSeq, seq);
  LOCKDOC_CHECK(rows.size() == 1);  // seq is the accesses table's key.
  AccessContext context;
  context.access_type = accesses.GetUint64(rows[0], kType);
  context.file_sid = accesses.GetUint64(rows[0], kFile);
  context.line = accesses.GetUint64(rows[0], kLine);
  context.stack_id = accesses.GetUint64(rows[0], kStack);
  return context;
}

std::vector<Violation> ViolationFinder::FindAll(const std::vector<DerivationResult>& results,
                                                ThreadPool* pool) const {
  // Each derivation result fills its own slot; slots are concatenated in
  // rule order below, keeping output identical at any thread count.
  std::vector<std::vector<Violation>> slots(results.size());
  auto find_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const DerivationResult& result = results[i];
      if (!result.winner.has_value() || result.winner->is_no_lock() ||
          result.winner->sr >= 1.0) {
        continue;
      }
      // Winners come from observed combinations, so their classes are
      // always interned; compare ids in the scan and materialize the held
      // strings only for actual violations. A hand-built result with
      // unknown classes falls back to the string comparison. With the
      // shared posting lists the rule's complying sequences are computed
      // once up front and each group is a binary-search lookup.
      std::optional<IdSeq> rule_ids = store_->pool().FindSeq(result.winner->locks);
      std::vector<uint32_t> complying;
      bool have_complying = false;
      if (postings_ != nullptr && rule_ids.has_value()) {
        complying = postings_->ComplyingSeqs(*store_, *rule_ids);
        have_complying = true;
      }
      const std::vector<ObservationGroup>& groups = store_->GroupsFor(result.key);
      auto visit_group = [&](const ObservationGroup& group) {
        const LockSeq& held = store_->seq(group.lockseq_id);
        bool complies =
            have_complying
                ? std::binary_search(complying.begin(), complying.end(), group.lockseq_id)
                : (rule_ids.has_value()
                       ? IsSubsequenceIds(*rule_ids, store_->id_seq(group.lockseq_id))
                       : IsSubsequence(result.winner->locks, held));
        if (complies) {
          return;
        }
        Violation violation;
        violation.key = result.key;
        violation.access = result.access;
        violation.rule = result.winner->locks;
        violation.held = held;
        for (uint64_t seq : group.seqs) {
          if (static_cast<AccessType>(ContextOf(seq).access_type) == result.access) {
            violation.seqs.push_back(seq);
          }
        }
        if (!violation.seqs.empty()) {
          slots[i].push_back(std::move(violation));
        }
      };
      if (member_index_ != nullptr) {
        if (const MemberAccessIndex::Entry* entry = member_index_->Find(result.key)) {
          for (uint32_t index : entry->For(result.access)) {
            visit_group(groups[index]);
          }
        }
      } else {
        for (const ObservationGroup& group : groups) {
          if (group.effective() == result.access) {
            visit_group(group);
          }
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(results.size(), find_range);
  } else {
    find_range(0, results.size());
  }

  std::vector<Violation> violations;
  for (std::vector<Violation>& slot : slots) {
    for (Violation& violation : slot) {
      violations.push_back(std::move(violation));
    }
  }
  return violations;
}

std::vector<ViolationSummaryRow> ViolationFinder::Summarize(
    const std::vector<Violation>& violations) const {
  struct Agg {
    uint64_t events = 0;
    std::set<MemberIndex> members;
    // (file_sid, line, stack_id); kDbNull marks a missing stack, which is
    // as unique a sentinel as kInvalidStack was, so grouping is unchanged.
    std::set<std::tuple<uint64_t, uint64_t, uint64_t>> contexts;
  };
  // Include every observed (type, subclass) so clean types report zeros,
  // as in the paper's Tab. 7.
  std::map<std::pair<TypeId, SubclassId>, Agg> by_type;
  for (const auto& [key, groups] : store_->groups()) {
    by_type.try_emplace({key.type, key.subclass});
  }
  for (const Violation& violation : violations) {
    Agg& agg = by_type[{violation.key.type, violation.key.subclass}];
    agg.events += violation.seqs.size();
    agg.members.insert(violation.key.member);
    for (uint64_t seq : violation.seqs) {
      AccessContext context = ContextOf(seq);
      agg.contexts.insert({context.file_sid, context.line, context.stack_id});
    }
  }

  std::vector<ViolationSummaryRow> rows;
  rows.reserve(by_type.size());
  for (const auto& [type_key, agg] : by_type) {
    ViolationSummaryRow row;
    row.type_name = registry_->QualifiedName(type_key.first, type_key.second);
    row.events = agg.events;
    row.members = agg.members.size();
    row.contexts = agg.contexts.size();
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const ViolationSummaryRow& a,
                                         const ViolationSummaryRow& b) {
    return a.type_name < b.type_name;
  });
  return rows;
}

ViolationFinder::ContextMap ViolationFinder::AggregateContexts(
    const std::vector<Violation>& violations) const {
  // Aggregate violating events by full context:
  // (member, access, rule, held, file, line, stack).
  ContextMap contexts;
  for (const Violation& violation : violations) {
    std::string member =
        registry_->QualifiedName(violation.key.type, violation.key.subclass) + "." +
        registry_->layout(violation.key.type).member(violation.key.member).name;
    std::string rule = LockSeqToString(violation.rule);
    std::string held = LockSeqToString(violation.held);
    for (uint64_t seq : violation.seqs) {
      AccessContext context = ContextOf(seq);
      ContextAgg& agg = contexts[std::make_tuple(
          member, std::string(AccessTypeName(violation.access)), rule, held,
          context.file_sid, context.line, context.stack_id)];
      if (agg.events == 0 || seq < agg.representative_seq) {
        agg.representative_seq = seq;
      }
      if (agg.violation == nullptr) {
        agg.violation = &violation;
      }
      ++agg.events;
    }
  }
  return contexts;
}

std::vector<const ViolationFinder::ContextMap::value_type*> ViolationFinder::SortByEvidence(
    const ContextMap& map) {
  std::vector<const ContextMap::value_type*> sorted;
  sorted.reserve(map.size());
  for (const auto& entry : map) {
    sorted.push_back(&entry);
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    if (a->second.events != b->second.events) {
      return a->second.events > b->second.events;
    }
    return a->first < b->first;
  });
  return sorted;
}

std::vector<ViolationExample> ViolationFinder::Examples(const std::vector<Violation>& violations,
                                                        size_t limit) const {
  ContextMap contexts = AggregateContexts(violations);
  std::vector<ViolationExample> examples;
  for (const ContextMap::value_type* entry : SortByEvidence(contexts)) {
    if (examples.size() >= limit) {
      break;
    }
    const ContextKey& key = entry->first;
    ViolationExample example;
    example.member = std::get<0>(key);
    example.access = std::get<1>(key);
    example.rule = std::get<2>(key);
    example.held = std::get<3>(key);
    example.location = DbFormatLoc(*db_, std::get<4>(key), std::get<5>(key));
    example.stack = DbFormatStack(*db_, std::get<6>(key));
    example.events = entry->second.events;
    examples.push_back(std::move(example));
  }
  return examples;
}

namespace {

// The function names of one recorded stack, innermost first; empty for a
// missing (kDbNull) stack.
std::vector<std::string> StackFunctionNames(const Database& db, uint64_t stack_id) {
  std::vector<std::string> names;
  if (stack_id == kDbNull) {
    return names;
  }
  const Table& frames = db.table(LockDocSchema::kStackFrames);
  const size_t kStack = frames.ColumnIndex("stack_id");
  const size_t kPos = frames.ColumnIndex("position");
  const size_t kFunc = frames.ColumnIndex("function_sid");
  std::vector<RowId> rows = frames.LookupEqual(kStack, stack_id);
  names.resize(rows.size());
  for (RowId row : rows) {
    uint64_t pos = frames.GetUint64(row, kPos);
    LOCKDOC_CHECK(pos < names.size());
    names[pos] = db.String(static_cast<StringId>(frames.GetUint64(row, kFunc)));
  }
  return names;
}

}  // namespace

NearestComplyingAccess ViolationFinder::NearestComplying(const Violation& violation,
                                                         uint64_t rep_seq) const {
  // Mirror FindAll's compliance test for this (member, access, rule): a
  // group complies when the rule is a subsequence of its held locks.
  std::optional<IdSeq> rule_ids = store_->pool().FindSeq(violation.rule);
  std::vector<uint32_t> complying;
  bool have_complying = false;
  if (postings_ != nullptr && rule_ids.has_value()) {
    complying = postings_->ComplyingSeqs(*store_, *rule_ids);
    have_complying = true;
  }
  NearestComplyingAccess nearest;
  uint32_t nearest_lockseq = 0;
  auto visit_group = [&](const ObservationGroup& group) {
    bool complies =
        have_complying
            ? std::binary_search(complying.begin(), complying.end(), group.lockseq_id)
            : (rule_ids.has_value()
                   ? IsSubsequenceIds(*rule_ids, store_->id_seq(group.lockseq_id))
                   : IsSubsequence(violation.rule, store_->seq(group.lockseq_id)));
    if (!complies) {
      return;
    }
    for (uint64_t seq : group.seqs) {
      if (static_cast<AccessType>(ContextOf(seq).access_type) != violation.access) {
        continue;
      }
      uint64_t distance = seq > rep_seq ? seq - rep_seq : rep_seq - seq;
      if (!nearest.present || distance < nearest.distance ||
          (distance == nearest.distance && seq < nearest.seq)) {
        nearest.present = true;
        nearest.seq = seq;
        nearest.distance = distance;
        nearest_lockseq = group.lockseq_id;
      }
    }
  };
  const std::vector<ObservationGroup>& groups = store_->GroupsFor(violation.key);
  if (member_index_ != nullptr) {
    if (const MemberAccessIndex::Entry* entry = member_index_->Find(violation.key)) {
      for (uint32_t index : entry->For(violation.access)) {
        visit_group(groups[index]);
      }
    }
  } else {
    for (const ObservationGroup& group : groups) {
      if (group.effective() == violation.access) {
        visit_group(group);
      }
    }
  }
  if (nearest.present) {
    AccessContext context = ContextOf(nearest.seq);
    nearest.location = DbFormatLoc(*db_, context.file_sid, context.line);
    nearest.stack = DbFormatStack(*db_, context.stack_id);
    nearest.held = LockSeqToString(store_->seq(nearest_lockseq));
  }
  return nearest;
}

ViolationForensics ViolationFinder::Forensics(const std::vector<Violation>& violations,
                                              size_t limit,
                                              const FilterConfig* filter) const {
  ContextMap contexts = AggregateContexts(violations);
  std::vector<const ContextMap::value_type*> sorted = SortByEvidence(contexts);

  // Blacklist suppression with accounting: a group is suppressed when its
  // member (qualified or not) is blacklisted or any stack frame names a
  // blacklisted function. Never silent — counts survive into the report.
  ViolationForensics forensics;
  std::vector<const ContextMap::value_type*> kept;
  std::map<uint64_t, std::vector<std::string>> frames_cache;
  for (const ContextMap::value_type* entry : sorted) {
    bool suppressed = false;
    if (filter != nullptr) {
      const std::string& member = std::get<0>(entry->first);
      if (filter->blacklisted_members.count(member) != 0) {
        suppressed = true;
      } else {
        // "inode:ext4.i_hash" also matches an unqualified "inode.i_hash".
        size_t colon = member.find(':');
        size_t dot = member.rfind('.');
        if (colon != std::string::npos && dot != std::string::npos && dot > colon &&
            filter->blacklisted_members.count(member.substr(0, colon) +
                                              member.substr(dot)) != 0) {
          suppressed = true;
        }
      }
      if (!suppressed &&
          (!filter->ignored_functions.empty() || !filter->init_teardown_functions.empty())) {
        uint64_t stack_id = std::get<6>(entry->first);
        auto [it, inserted] = frames_cache.try_emplace(stack_id);
        if (inserted) {
          it->second = StackFunctionNames(*db_, stack_id);
        }
        for (const std::string& function : it->second) {
          if (filter->ignored_functions.count(function) != 0 ||
              filter->init_teardown_functions.count(function) != 0) {
            suppressed = true;
            break;
          }
        }
      }
    }
    if (suppressed) {
      ++forensics.suppressed_groups;
      forensics.suppressed_events += entry->second.events;
    } else {
      kept.push_back(entry);
    }
  }
  forensics.total_groups = kept.size();

  const Table& accesses = db_->table(LockDocSchema::kAccesses);
  const size_t kSeqCol = accesses.ColumnIndex("seq");
  const size_t kTxnCol = accesses.ColumnIndex("txn_id");
  const size_t kAllocCol = accesses.ColumnIndex("alloc_id");

  for (const ContextMap::value_type* entry : kept) {
    if (forensics.groups.size() >= limit) {
      break;
    }
    const ContextKey& key = entry->first;
    const ContextAgg& agg = entry->second;
    CexGroupData group;
    group.member = std::get<0>(key);
    group.access = std::get<1>(key);
    group.rule = std::get<2>(key);
    group.held = std::get<3>(key);
    group.location = DbFormatLoc(*db_, std::get<4>(key), std::get<5>(key));
    group.stack = DbFormatStack(*db_, std::get<6>(key));
    group.events = agg.events;
    group.rank = forensics.groups.size() + 1;
    group.representative_seq = agg.representative_seq;
    group.frames = StackFunctionNames(*db_, std::get<6>(key));

    // Held-lock provenance of the representative violating access: class,
    // mode and acquisition site of every lock the transaction held.
    std::vector<RowId> rows = accesses.LookupEqual(kSeqCol, agg.representative_seq);
    LOCKDOC_CHECK(rows.size() == 1);
    uint64_t txn = accesses.GetUint64(rows[0], kTxnCol);
    uint64_t alloc = accesses.GetUint64(rows[0], kAllocCol);
    if (txn != kDbNull) {
      for (const HeldLockInfo& info : ClassifyHeldLocks(*db_, *registry_, txn, alloc)) {
        HeldLockDetail detail;
        detail.lock = info.lock_class.ToString();
        detail.mode = info.mode == AcquireMode::kShared ? "shared" : "exclusive";
        detail.acquired_at = DbFormatLoc(*db_, info.file_sid, info.line);
        group.held_locks.push_back(std::move(detail));
      }
    }

    group.nearest_complying =
        NearestComplying(*agg.violation, agg.representative_seq);
    forensics.groups.push_back(std::move(group));
  }
  forensics.shown_groups = forensics.groups.size();
  return forensics;
}

void AppendForensicsNotes(ReportSection& section, const ViolationForensics& forensics,
                          bool report_style) {
  bool first = true;
  auto prefix = [&]() {
    std::string p = (report_style && first) ? "\n" : "";
    first = false;
    return p;
  };
  if (forensics.shown_groups < forensics.total_groups) {
    ReportNode& node = AddTextNode(
        section, "truncation",
        prefix() + StrFormat("showing %llu of %llu counterexample groups\n",
                             static_cast<unsigned long long>(forensics.shown_groups),
                             static_cast<unsigned long long>(forensics.total_groups)));
    node.fields = {{"shown", std::to_string(forensics.shown_groups)},
                   {"total", std::to_string(forensics.total_groups)}};
  }
  if (forensics.suppressed_groups > 0) {
    ReportNode& node = AddTextNode(
        section, "suppressed",
        prefix() +
            StrFormat("blacklist suppressed %llu counterexample groups (%llu events)\n",
                      static_cast<unsigned long long>(forensics.suppressed_groups),
                      static_cast<unsigned long long>(forensics.suppressed_events)));
    node.fields = {{"suppressed_groups", std::to_string(forensics.suppressed_groups)},
                   {"suppressed_events", std::to_string(forensics.suppressed_events)}};
  }
}

}  // namespace lockdoc
