#include "src/core/rule.h"

#include "src/util/string_util.h"

namespace lockdoc {

std::string MemberRef::ToString() const {
  std::string result = type_name;
  if (!subclass.empty()) {
    result += ":" + subclass;
  }
  result += "." + member_name;
  return result;
}

std::string LockingRule::ToString() const {
  return member.ToString() + " " + AccessTypeName(access) + ": " + LockSeqToString(locks);
}

std::vector<const LockingRule*> RuleSet::RulesFor(const MemberRef& member,
                                                  AccessType access) const {
  std::vector<const LockingRule*> result;
  for (const LockingRule& rule : rules_) {
    if (rule.access == access && rule.member == member) {
      result.push_back(&rule);
    }
  }
  return result;
}

std::string RuleSet::ToText() const {
  std::string text;
  for (const LockingRule& rule : rules_) {
    text += rule.ToString() + "\n";
  }
  return text;
}

Result<RuleSet> RuleSet::ParseText(std::string_view text) {
  RuleSet set;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    // The lock sequence follows the LAST ':' (subclass qualifiers also use
    // ':', but lock sequences never contain one).
    size_t colon = line.rfind(':');
    if (colon == std::string_view::npos) {
      return Status::Error(StrFormat("rule line %zu: missing ':'", line_number));
    }
    std::string_view head = Trim(line.substr(0, colon));
    std::string_view tail = Trim(line.substr(colon + 1));

    // head = "<type>[:<subclass>].<member> <r|w|rw>"
    size_t space = head.find_last_of(" \t");
    if (space == std::string_view::npos) {
      return Status::Error(StrFormat("rule line %zu: missing access type", line_number));
    }
    std::string_view access_text = Trim(head.substr(space + 1));
    std::string_view member_path = Trim(head.substr(0, space));

    bool want_read = false;
    bool want_write = false;
    if (access_text == "r") {
      want_read = true;
    } else if (access_text == "w") {
      want_write = true;
    } else if (access_text == "rw") {
      want_read = true;
      want_write = true;
    } else {
      return Status::Error(
          StrFormat("rule line %zu: bad access type '%s'", line_number,
                    std::string(access_text).c_str()));
    }

    size_t dot = member_path.find('.');
    if (dot == std::string_view::npos || dot == 0 || dot + 1 == member_path.size()) {
      return Status::Error(StrFormat("rule line %zu: bad member path", line_number));
    }
    std::string_view type_part = member_path.substr(0, dot);
    std::string_view member_name = member_path.substr(dot + 1);

    MemberRef member;
    size_t subclass_sep = type_part.find(':');
    if (subclass_sep == std::string_view::npos) {
      member.type_name = std::string(type_part);
    } else {
      member.type_name = std::string(type_part.substr(0, subclass_sep));
      member.subclass = std::string(type_part.substr(subclass_sep + 1));
      if (member.type_name.empty() || member.subclass.empty()) {
        return Status::Error(StrFormat("rule line %zu: bad subclass qualifier", line_number));
      }
    }
    member.member_name = std::string(member_name);

    auto locks = ParseLockSeq(tail);
    if (!locks.ok()) {
      return Status::Error(StrFormat("rule line %zu: %s", line_number,
                                     locks.status().message().c_str()));
    }

    if (want_read) {
      LockingRule rule;
      rule.member = member;
      rule.access = AccessType::kRead;
      rule.locks = locks.value();
      set.Add(std::move(rule));
    }
    if (want_write) {
      LockingRule rule;
      rule.member = member;
      rule.access = AccessType::kWrite;
      rule.locks = std::move(locks).value();
      set.Add(std::move(rule));
    }
  }
  return set;
}

}  // namespace lockdoc
