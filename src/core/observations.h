// Folded observations (paper Sec. 4.2, Tab. 1): per transaction, allocation,
// and member, all raw accesses collapse into one observation carrying the
// transaction's ordered held-lock classes. A transaction containing both
// reads and writes of a member counts as a *write* observation only
// ("write over read") because write rules are the more restrictive ones.
#ifndef SRC_CORE_OBSERVATIONS_H_
#define SRC_CORE_OBSERVATIONS_H_

#include <compare>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/db/database.h"
#include "src/model/ids.h"
#include "src/model/lock_class.h"
#include "src/model/lock_class_pool.h"
#include "src/model/type_registry.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

// Identifies the population observations are grouped under. Subclassed types
// (inode) derive rules per subclass; unsubclassed types use kNoSubclass.
struct MemberObsKey {
  TypeId type = kInvalidTypeId;
  SubclassId subclass = kNoSubclass;
  MemberIndex member = kInvalidMember;

  friend auto operator<=>(const MemberObsKey&, const MemberObsKey&) = default;
};

// One folded observation: "member m of allocation a was accessed in
// transaction t while holding this lock sequence".
struct ObservationGroup {
  // Interned index into ObservationStore's lock-sequence pool.
  uint32_t lockseq_id = 0;
  uint64_t txn_id = 0;
  uint64_t alloc_id = 0;
  uint32_t n_reads = 0;
  uint32_t n_writes = 0;
  // Raw trace sequence numbers of every contributing access (reads and
  // writes); used by the rule-violation finder to locate contexts.
  std::vector<uint64_t> seqs;

  // Write-over-read: mixed groups count as writes.
  AccessType effective() const {
    return n_writes > 0 ? AccessType::kWrite : AccessType::kRead;
  }
};

class ObservationStore {
 public:
  ObservationStore();
  ~ObservationStore();
  ObservationStore(ObservationStore&&) noexcept;
  ObservationStore& operator=(ObservationStore&&) noexcept;
  ObservationStore(const ObservationStore&) = delete;
  ObservationStore& operator=(const ObservationStore&) = delete;

  uint32_t InternSeq(const LockSeq& seq);
  const LockSeq& seq(uint32_t id) const;
  // The interned-id form of seq(id); same indexing. The mining hot path
  // (derivator, checker, violation finder) runs on these.
  const IdSeq& id_seq(uint32_t id) const;
  size_t distinct_seqs() const { return seqs_.size(); }

  // The lock-class interner shared by every sequence in this store. Ids are
  // dense and assigned in first-appearance order (deterministic at any
  // thread count — sequences are interned serially; see DESIGN.md).
  const LockClassPool& pool() const { return pool_; }

  // Subsequence-enumeration cache: all distinct subsequences of seq(seq_id)
  // under the `max_locks` expansion bound, as sorted deduplicated id
  // sequences. Each entry is computed exactly once per store and then
  // shared read-only across all DeriveAll work items and threads
  // (thread-safe; concurrent callers must agree on `max_locks` — a changed
  // bound rebuilds the cache and must not race in-flight readers).
  const std::vector<IdSeq>& CachedSubsequenceIds(uint32_t seq_id, size_t max_locks) const;

  // Cache effectiveness counters (cumulative across rebuilds): a miss is a
  // lookup that computed its entry, a hit found it already computed.
  uint64_t enum_cache_hits() const;
  uint64_t enum_cache_misses() const;

  std::vector<ObservationGroup>& MutableGroups(const MemberObsKey& key) { return groups_[key]; }
  const std::map<MemberObsKey, std::vector<ObservationGroup>>& groups() const { return groups_; }
  // Groups for one member; empty if never observed.
  const std::vector<ObservationGroup>& GroupsFor(const MemberObsKey& key) const;

  // Number of observations of `key` with the given effective access type —
  // the denominator of relative support.
  uint64_t CountObservations(const MemberObsKey& key, AccessType access) const;

  // Rebuilds the store from deserialized snapshot state. The string-form
  // sequences and both reverse indexes are re-derived from `pool` +
  // `id_seqs`, so a snapshot only carries the id-level data. The enum cache
  // starts cold (it is a pure function of the sequences).
  void ResetForSnapshot(LockClassPool pool, std::vector<IdSeq> id_seqs,
                        std::map<MemberObsKey, std::vector<ObservationGroup>> groups);

 private:
  struct EnumCache;  // Defined in observations.cc (holds sync primitives).

  std::vector<LockSeq> seqs_;
  std::vector<IdSeq> id_seqs_;
  LockClassPool pool_;
  std::unordered_map<LockSeq, uint32_t, LockSeqHash> seq_index_;
  std::map<MemberObsKey, std::vector<ObservationGroup>> groups_;
  mutable std::unique_ptr<EnumCache> enum_cache_;

  static const std::vector<ObservationGroup> kEmptyGroups;
};

// Per-(member, access-type) view over a store's observation groups: for
// every observed member, the indices (into GroupsFor(key)) of the groups
// whose *effective* access type is read resp. write. Built once from a
// store and then shared read-only by every analysis consumer — the checker,
// the violation finder, and the mode analyzer all need "the write
// observations of member m" and previously each re-scanned (and re-filtered
// by effective()) the full group list per query. The index is a pure
// function of the store, so it is deterministic at any thread count.
class MemberAccessIndex {
 public:
  struct Entry {
    // groups[static_cast<size_t>(access)]: ascending indices into
    // store.GroupsFor(key) with that effective access type.
    std::vector<uint32_t> groups[2];

    const std::vector<uint32_t>& For(AccessType access) const {
      return groups[static_cast<size_t>(access)];
    }
  };

  static MemberAccessIndex Build(const ObservationStore& store);

  // nullptr when the member was never observed.
  const Entry* Find(const MemberObsKey& key) const;

  // O(1) equivalent of ObservationStore::CountObservations.
  uint64_t Count(const MemberObsKey& key, AccessType access) const;

 private:
  std::map<MemberObsKey, Entry> entries_;
};

// Per-lock-class posting lists over the store's interned lock sequences:
// postings(id) is the ascending list of lockseq ids whose sequence contains
// the lock class with dense id `id`. Compliance of a rule against an
// observation depends only on the observation's interned sequence, so a
// rule's complying-sequence set can be computed once — by intersecting the
// posting lists of the rule's locks and order-checking only the survivors —
// and then applied to every observation group with an O(log n) lookup.
class LockPostingIndex {
 public:
  static LockPostingIndex Build(const ObservationStore& store);

  // Empty for ids with no occurrences (or out of range).
  const std::vector<uint32_t>& Postings(LockId id) const;

  // Ascending lockseq ids on which `rule_ids` complies (is an
  // order-preserving subsequence of the sequence). The empty rule complies
  // with every sequence.
  std::vector<uint32_t> ComplyingSeqs(const ObservationStore& store,
                                      const IdSeq& rule_ids) const;

 private:
  std::vector<std::vector<uint32_t>> postings_;

  static const std::vector<uint32_t> kEmptyPostings;
};

// Builds the observation store from an imported database. The database's
// own string pool resolves interned strings; `registry` resolves member
// names for lock classes. Folding scans accesses serially (they must be
// visited in seq order), but the lock-classification work — one task per
// distinct (txn, alloc) pair — is sharded over `pool` when one is given.
// Lock-sequence ids are interned in task first-appearance order afterwards,
// so the store contents are byte-identical at any thread count.
ObservationStore ExtractObservations(const Database& db, const TypeRegistry& registry,
                                     ThreadPool* pool = nullptr);

}  // namespace lockdoc

#endif  // SRC_CORE_OBSERVATIONS_H_
