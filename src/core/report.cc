#include "src/core/report.h"

#include <map>

#include "src/core/doc_generator.h"
#include "src/core/lock_order.h"
#include "src/core/mode_analysis.h"
#include "src/core/rule_checker.h"
#include "src/core/violation_finder.h"
#include "src/db/schema.h"
#include "src/report/render_text.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

namespace lockdoc {

ReportDocument BuildReportDocument(AnalysisContext& context, const ReportOptions& options) {
  const TypeRegistry& registry = context.registry();
  const AnalysisSnapshot& snapshot = context.snapshot();
  const std::vector<DerivationResult>& derived = context.rules();
  ReportDocument doc;
  doc.pass = "report";

  {
    ReportSection& section = AddSection(doc, "preamble");
    AddTextNode(section, "title", "LockDoc analysis report\n");
  }

  // --- Trace statistics (Sec. 7.2) ---
  {
    ReportSection& section = AddHeadedSection(doc, "trace-statistics", "trace statistics");
    AddTextNode(section, "trace-counters", snapshot.trace_stats.ToString());
    ReportNode& filtering = AddTextNode(
        section, "filter-accounting",
        StrFormat("accesses kept after filtering: %s (filtered: %s)\n",
                  FormatWithCommas(snapshot.import_stats.accesses_kept).c_str(),
                  FormatWithCommas(snapshot.import_stats.accesses_filtered).c_str()));
    filtering.fields = {
        {"accesses_kept", std::to_string(snapshot.import_stats.accesses_kept)},
        {"accesses_filtered", std::to_string(snapshot.import_stats.accesses_filtered)}};
    ReportNode& txns = AddTextNode(
        section, "transactions",
        StrFormat("transactions:                  %s\n",
                  FormatWithCommas(snapshot.import_stats.txns).c_str()));
    txns.fields = {{"transactions", std::to_string(snapshot.import_stats.txns)}};
  }

  // --- Documentation validation (Tab. 4) ---
  if (!options.documented_rules_text.empty()) {
    ReportSection& section =
        AddHeadedSection(doc, "rule-validation", "documented-rule validation");
    auto rules = RuleSet::ParseText(options.documented_rules_text);
    if (!rules.ok()) {
      ReportNode& node = AddTextNode(
          section, "parse-error", "rule parse error: " + rules.status().message() + "\n");
      node.fields = {{"error", rules.status().message()}};
    } else {
      RuleChecker checker(&registry, &snapshot.observations, &context.member_access_index(),
                          &context.lock_postings());
      ReportNode& node = AddTable(section, "validation-summary",
                                  {"Data Type", "#R", "#No", "#Ob", "! (%)", "~ (%)", "# (%)"});
      for (const RuleCheckSummary& s :
           RuleChecker::Summarize(checker.CheckAll(rules.value(), &context.pool()))) {
        node.table.rows.push_back(
            {s.type_name, std::to_string(s.documented), std::to_string(s.unobserved),
             std::to_string(s.observed), StrFormat("%.2f", s.correct_pct()),
             StrFormat("%.2f", s.ambivalent_pct()), StrFormat("%.2f", s.incorrect_pct())});
      }
    }
  }

  // --- Mining summary (Tab. 6) ---
  {
    ReportSection& section = AddHeadedSection(doc, "mined-rules", "mined locking rules");
    struct Row {
      uint64_t rules_r = 0, rules_w = 0, no_lock_r = 0, no_lock_w = 0;
    };
    std::map<std::pair<TypeId, SubclassId>, Row> rows;
    for (const DerivationResult& rule : derived) {
      Row& row = rows[{rule.key.type, rule.key.subclass}];
      bool no_lock = rule.winner_is_no_lock();
      if (rule.access == AccessType::kRead) {
        ++row.rules_r;
        row.no_lock_r += no_lock ? 1 : 0;
      } else {
        ++row.rules_w;
        row.no_lock_w += no_lock ? 1 : 0;
      }
    }
    ReportNode& node = AddTable(section, "mining-summary",
                                {"Data Type", "#Rules r", "#Rules w", "#Nl r", "#Nl w"});
    for (const auto& [key, row] : rows) {
      node.table.rows.push_back({registry.QualifiedName(key.first, key.second),
                                 std::to_string(row.rules_r), std::to_string(row.rules_w),
                                 std::to_string(row.no_lock_r),
                                 std::to_string(row.no_lock_w)});
    }
  }

  if (options.full_documentation) {
    ReportSection& section =
        AddHeadedSection(doc, "generated-documentation", "generated documentation");
    DocGenerator generator(&registry);
    std::map<std::pair<TypeId, SubclassId>, bool> populations;
    for (const DerivationResult& rule : derived) {
      populations[{rule.key.type, rule.key.subclass}] = true;
    }
    for (const auto& [key, present] : populations) {
      (void)present;
      ReportNode& node = AddTextNode(
          section, "population", generator.Generate(key.first, key.second, derived) + "\n");
      node.fields = {{"population", registry.QualifiedName(key.first, key.second)}};
    }
  }

  // --- Violations (Tab. 7/8) ---
  {
    ReportSection& section =
        AddHeadedSection(doc, "violations", "locking-rule violations");
    ViolationFinder finder(&snapshot.db, &registry, &snapshot.observations,
                           &context.member_access_index(), &context.lock_postings());
    std::vector<Violation> violations = finder.FindAll(derived, &context.pool());
    ReportNode& table = AddTable(section, "violation-summary",
                                 {"Data Type", "Events", "Members", "Contexts"});
    uint64_t total = 0;
    for (const ViolationSummaryRow& row : finder.Summarize(violations)) {
      if (row.events == 0) {
        continue;
      }
      table.table.rows.push_back({row.type_name, std::to_string(row.events),
                                  std::to_string(row.members), std::to_string(row.contexts)});
      total += row.events;
    }
    ReportNode& total_node = AddTextNode(
        section, "total-events",
        StrFormat("total violating events: %s\n", FormatWithCommas(total).c_str()));
    total_node.fields = {{"total_violating_events", std::to_string(total)}};
    ViolationForensics forensics = finder.Forensics(
        violations, options.max_violation_examples, options.forensics_filter.get());
    for (CexGroupData& group : forensics.groups) {
      group.report_style = true;
      AddCexGroup(section, std::move(group));
    }
    AppendForensicsNotes(section, forensics, /*report_style=*/true);
  }

  // --- Lock ordering ---
  if (options.lock_order) {
    ReportSection& section = AddHeadedSection(doc, "lock-order", "lock ordering");
    const LockOrderGraph& graph = context.lock_order_graph();
    auto conflicts = graph.ConflictingPairs();
    ReportNode& summary = AddTextNode(
        section, "edge-summary",
        StrFormat("%zu ordering edges, %zu ABBA conflicts\n", graph.edges().size(),
                  conflicts.size()));
    summary.fields = {{"edges", std::to_string(graph.edges().size())},
                      {"conflicts", std::to_string(conflicts.size())}};
    for (const auto& [rare, common] : conflicts) {
      ReportNode& node = AddTextNode(
          section, "conflict",
          StrFormat("  %s -> %s (n=%llu) vs reverse (n=%llu) at %s\n",
                    rare.from.ToString().c_str(), rare.to.ToString().c_str(),
                    static_cast<unsigned long long>(rare.support),
                    static_cast<unsigned long long>(common.support),
                    DbFormatLoc(snapshot.db, rare.example_file_sid, rare.example_line)
                        .c_str()));
      node.fields = {
          {"from", rare.from.ToString()},
          {"to", rare.to.ToString()},
          {"support", std::to_string(rare.support)},
          {"reverse_support", std::to_string(common.support)},
          {"example", DbFormatLoc(snapshot.db, rare.example_file_sid, rare.example_line)}};
    }
  }

  // --- Acquisition modes ---
  if (options.modes) {
    ReportSection& section =
        AddHeadedSection(doc, "modes", "reader/writer acquisition modes");
    ModeAnalyzer analyzer(&snapshot.db, &registry, &snapshot.observations,
                          &context.member_access_index(), &context.lock_postings());
    auto suspicious = analyzer.FindSharedModeWrites(derived);
    if (suspicious.empty()) {
      AddTextNode(section, "empty", "no writes under merely-shared holds\n");
    } else {
      for (const ModeReportEntry& entry : suspicious) {
        ReportNode& node = AddTextNode(section, "mode-entry", analyzer.RenderEntry(entry));
        node.fields = {
            {"member", registry.QualifiedName(entry.key.type, entry.key.subclass) + "." +
                           registry.layout(entry.key.type).member(entry.key.member).name},
            {"access", AccessTypeName(entry.access)},
            {"rule", LockSeqToString(entry.rule)},
            {"suspicious", entry.suspicious ? "true" : "false"}};
      }
    }
  }

  return doc;
}

std::string RenderReport(AnalysisContext& context, const ReportOptions& options) {
  return RenderReportText(BuildReportDocument(context, options));
}

std::string RenderReport(const TypeRegistry& registry, const PipelineResult& result,
                         const ReportOptions& options) {
  // Serial one-shot context; output is byte-identical at any jobs value, so
  // a single thread keeps this convenience path lightweight.
  AnalysisOptions context_options;
  context_options.pipeline.jobs = 1;
  AnalysisContext context(&result.snapshot, &registry, std::move(context_options));
  context.SeedRules(result.rules);  // Copies; `result` stays usable.
  return RenderReport(context, options);
}

}  // namespace lockdoc
