#include "src/core/report.h"

#include <map>

#include "src/core/doc_generator.h"
#include "src/core/lock_order.h"
#include "src/core/mode_analysis.h"
#include "src/core/rule_checker.h"
#include "src/core/violation_finder.h"
#include "src/db/schema.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

std::string Heading(const std::string& title) {
  return "\n== " + title + " " + std::string(72 - std::min<size_t>(68, title.size()), '=') +
         "\n\n";
}

}  // namespace

std::string RenderReport(AnalysisContext& context, const ReportOptions& options) {
  const TypeRegistry& registry = context.registry();
  const AnalysisSnapshot& snapshot = context.snapshot();
  const std::vector<DerivationResult>& derived = context.rules();
  std::string out = "LockDoc analysis report\n";

  // --- Trace statistics (Sec. 7.2) ---
  out += Heading("trace statistics");
  out += snapshot.trace_stats.ToString();
  out += StrFormat("accesses kept after filtering: %s (filtered: %s)\n",
                   FormatWithCommas(snapshot.import_stats.accesses_kept).c_str(),
                   FormatWithCommas(snapshot.import_stats.accesses_filtered).c_str());
  out += StrFormat("transactions:                  %s\n",
                   FormatWithCommas(snapshot.import_stats.txns).c_str());

  // --- Documentation validation (Tab. 4) ---
  if (!options.documented_rules_text.empty()) {
    out += Heading("documented-rule validation");
    auto rules = RuleSet::ParseText(options.documented_rules_text);
    if (!rules.ok()) {
      out += "rule parse error: " + rules.status().message() + "\n";
    } else {
      RuleChecker checker(&registry, &snapshot.observations, &context.member_access_index(),
                          &context.lock_postings());
      TextTable table({"Data Type", "#R", "#No", "#Ob", "! (%)", "~ (%)", "# (%)"});
      for (const RuleCheckSummary& s :
           RuleChecker::Summarize(checker.CheckAll(rules.value(), &context.pool()))) {
        table.AddRow({s.type_name, std::to_string(s.documented), std::to_string(s.unobserved),
                      std::to_string(s.observed), StrFormat("%.2f", s.correct_pct()),
                      StrFormat("%.2f", s.ambivalent_pct()),
                      StrFormat("%.2f", s.incorrect_pct())});
      }
      out += table.ToString();
    }
  }

  // --- Mining summary (Tab. 6) ---
  out += Heading("mined locking rules");
  {
    struct Row {
      uint64_t rules_r = 0, rules_w = 0, no_lock_r = 0, no_lock_w = 0;
    };
    std::map<std::pair<TypeId, SubclassId>, Row> rows;
    for (const DerivationResult& rule : derived) {
      Row& row = rows[{rule.key.type, rule.key.subclass}];
      bool no_lock = rule.winner_is_no_lock();
      if (rule.access == AccessType::kRead) {
        ++row.rules_r;
        row.no_lock_r += no_lock ? 1 : 0;
      } else {
        ++row.rules_w;
        row.no_lock_w += no_lock ? 1 : 0;
      }
    }
    TextTable table({"Data Type", "#Rules r", "#Rules w", "#Nl r", "#Nl w"});
    for (const auto& [key, row] : rows) {
      table.AddRow({registry.QualifiedName(key.first, key.second),
                    std::to_string(row.rules_r), std::to_string(row.rules_w),
                    std::to_string(row.no_lock_r), std::to_string(row.no_lock_w)});
    }
    out += table.ToString();
  }

  if (options.full_documentation) {
    out += Heading("generated documentation");
    DocGenerator generator(&registry);
    std::map<std::pair<TypeId, SubclassId>, bool> populations;
    for (const DerivationResult& rule : derived) {
      populations[{rule.key.type, rule.key.subclass}] = true;
    }
    for (const auto& [key, present] : populations) {
      out += generator.Generate(key.first, key.second, derived) + "\n";
    }
  }

  // --- Violations (Tab. 7/8) ---
  out += Heading("locking-rule violations");
  ViolationFinder finder(&snapshot.db, &registry, &snapshot.observations,
                         &context.member_access_index(), &context.lock_postings());
  std::vector<Violation> violations = finder.FindAll(derived, &context.pool());
  {
    TextTable table({"Data Type", "Events", "Members", "Contexts"});
    uint64_t total = 0;
    for (const ViolationSummaryRow& row : finder.Summarize(violations)) {
      if (row.events == 0) {
        continue;
      }
      table.AddRow({row.type_name, std::to_string(row.events), std::to_string(row.members),
                    std::to_string(row.contexts)});
      total += row.events;
    }
    out += table.ToString();
    out += StrFormat("total violating events: %s\n", FormatWithCommas(total).c_str());
  }
  for (const ViolationExample& ex :
       finder.Examples(violations, options.max_violation_examples)) {
    out += StrFormat("\n%s [%s]\n  rule: %s\n  held: %s\n  at %s (%llu events)\n  stack: %s\n",
                     ex.member.c_str(), ex.access.c_str(), ex.rule.c_str(), ex.held.c_str(),
                     ex.location.c_str(), static_cast<unsigned long long>(ex.events),
                     ex.stack.c_str());
  }

  // --- Lock ordering ---
  if (options.lock_order) {
    out += Heading("lock ordering");
    const LockOrderGraph& graph = context.lock_order_graph();
    auto conflicts = graph.ConflictingPairs();
    out += StrFormat("%zu ordering edges, %zu ABBA conflicts\n", graph.edges().size(),
                     conflicts.size());
    for (const auto& [rare, common] : conflicts) {
      out += StrFormat("  %s -> %s (n=%llu) vs reverse (n=%llu) at %s\n",
                       rare.from.ToString().c_str(), rare.to.ToString().c_str(),
                       static_cast<unsigned long long>(rare.support),
                       static_cast<unsigned long long>(common.support),
                       DbFormatLoc(snapshot.db, rare.example_file_sid, rare.example_line)
                           .c_str());
    }
  }

  // --- Acquisition modes ---
  if (options.modes) {
    out += Heading("reader/writer acquisition modes");
    ModeAnalyzer analyzer(&snapshot.db, &registry, &snapshot.observations,
                          &context.member_access_index(), &context.lock_postings());
    auto suspicious = analyzer.FindSharedModeWrites(derived);
    if (suspicious.empty()) {
      out += "no writes under merely-shared holds\n";
    } else {
      out += analyzer.Render(suspicious);
    }
  }

  return out;
}

std::string RenderReport(const TypeRegistry& registry, const PipelineResult& result,
                         const ReportOptions& options) {
  // Serial one-shot context; output is byte-identical at any jobs value, so
  // a single thread keeps this convenience path lightweight.
  AnalysisOptions context_options;
  context_options.pipeline.jobs = 1;
  AnalysisContext context(&result.snapshot, &registry, std::move(context_options));
  context.SeedRules(result.rules);  // Copies; `result` stays usable.
  return RenderReport(context, options);
}

}  // namespace lockdoc
