// Held-lock classification shared by the mode analysis and the violation
// forensics: the locks a transaction held, in acquisition order, each
// classified into a LockClass relative to the accessed allocation (same
// scoping as the rule notation) and carrying its acquisition mode and
// source site from the txn_locks table. The trace records no acquisition
// stacks, so the site is a (file_sid, line) pair, not a frame list.
#ifndef SRC_CORE_HELD_LOCKS_H_
#define SRC_CORE_HELD_LOCKS_H_

#include <cstdint>
#include <vector>

#include "src/db/database.h"
#include "src/model/lock_class.h"
#include "src/model/lock_type.h"
#include "src/model/type_registry.h"

namespace lockdoc {

struct HeldLockInfo {
  LockClass lock_class;
  AcquireMode mode = AcquireMode::kExclusive;
  uint64_t file_sid = 0;  // Acquisition site.
  uint64_t line = 0;
};

// The locks held by transaction `txn`, classified relative to
// `access_alloc` (EMBSAME when the lock lives in the accessed allocation,
// EMBOTHER when in another instance, global otherwise), in acquisition
// order. An unnamed static lock renders as "lock@0x<addr>".
std::vector<HeldLockInfo> ClassifyHeldLocks(const Database& db,
                                            const TypeRegistry& registry, uint64_t txn,
                                            uint64_t access_alloc);

}  // namespace lockdoc

#endif  // SRC_CORE_HELD_LOCKS_H_
