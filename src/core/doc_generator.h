// The documentation generator (paper Sec. 5.5, Fig. 8): renders the winning
// locking rules of one data type as a kernel-style source comment that could
// replace the scattered ad-hoc documentation.
#ifndef SRC_CORE_DOC_GENERATOR_H_
#define SRC_CORE_DOC_GENERATOR_H_

#include <string>
#include <vector>

#include "src/core/derivator.h"
#include "src/model/type_registry.h"
#include "src/util/status.h"

namespace lockdoc {

struct DocGenOptions {
  // Append "(sr=..%, n=..)" support annotations to each member.
  bool include_support = false;
  // Wrap member lists at roughly this column.
  size_t wrap_column = 72;
};

class DocGenerator {
 public:
  DocGenerator(const TypeRegistry* registry, DocGenOptions options = {});

  // Generates the comment block for (type, subclass) from derivation
  // results (results for other types are ignored). Members protected by the
  // same lock sequence are grouped; members whose read and write rules agree
  // are listed once, otherwise annotated with [r] / [w].
  std::string Generate(TypeId type, SubclassId subclass,
                       const std::vector<DerivationResult>& results) const;

  // Generates a machine-readable rule-spec (parsable by RuleSet::ParseText)
  // instead of a comment block — the checker's input format.
  std::string GenerateRuleSpec(TypeId type, SubclassId subclass,
                               const std::vector<DerivationResult>& results) const;

  // Writes the "exhaustive locking documentation" artifact of the paper's
  // Fig. 5: one <type>[.<subclass>].txt comment block per observed
  // population under `dir` (which must exist), plus rules.txt with the
  // machine-readable union. Returns the number of files written.
  Result<size_t> GenerateAll(const std::vector<DerivationResult>& results,
                             const std::string& dir) const;

 private:
  const TypeRegistry* registry_;
  DocGenOptions options_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_DOC_GENERATOR_H_
