// The rule-violation finder (paper Sec. 5.5 and 7.5): assuming the derived
// winning rules are correct, locate every memory access that does not comply
// and present the developer with the member, the rule, the locks actually
// held, the source location, and the call stack — the starting points for
// hunting real locking bugs.
#ifndef SRC_CORE_VIOLATION_FINDER_H_
#define SRC_CORE_VIOLATION_FINDER_H_

#include <string>
#include <vector>

#include "src/core/derivator.h"
#include "src/core/observations.h"
#include "src/db/database.h"
#include "src/model/type_registry.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

// One violating folded observation.
struct Violation {
  MemberObsKey key;
  AccessType access = AccessType::kRead;
  LockSeq rule;  // The winning rule that was violated.
  LockSeq held;  // The locks actually held.
  // Raw trace seqs of the violating accesses (only those matching `access`;
  // reads folded away by write-over-read are not re-counted).
  std::vector<uint64_t> seqs;
};

// One row of the paper's Tab. 7.
struct ViolationSummaryRow {
  std::string type_name;  // Qualified (inode:ext4).
  uint64_t events = 0;
  uint64_t members = 0;
  uint64_t contexts = 0;  // Distinct (location, stack) pairs.
};

// One detailed example in the style of the paper's Tab. 8.
struct ViolationExample {
  std::string member;     // "inode:ext4.i_hash"
  std::string access;     // "r"/"w"
  std::string rule;       // Expected lock sequence.
  std::string held;       // Locks actually held.
  std::string location;   // "fs/inode.c:507"
  std::string stack;      // Innermost-first call stack.
  uint64_t events = 0;    // Violating events at this context.
};

class ViolationFinder {
 public:
  // Violation contexts (access type, source location, stack) are resolved
  // from the accesses table via its seq index; no trace is needed. The
  // optional shared indexes (typically owned by an AnalysisContext) replace
  // the per-rule store re-scans; results are identical with or without.
  ViolationFinder(const Database* db, const TypeRegistry* registry,
                  const ObservationStore* store,
                  const MemberAccessIndex* member_index = nullptr,
                  const LockPostingIndex* postings = nullptr);

  // All violations of the winning rules (rules with sr == 1 cannot be
  // violated; the no-lock rule cannot be violated either). Distributed over
  // `pool` when given (nullptr runs serially); per-rule violation lists are
  // concatenated in rule order, so output is byte-identical at any thread
  // count.
  std::vector<Violation> FindAll(const std::vector<DerivationResult>& results,
                                 ThreadPool* pool = nullptr) const;

  // Tab. 7: per qualified data type, counting every observed type even when
  // it has zero violations.
  std::vector<ViolationSummaryRow> Summarize(const std::vector<Violation>& violations) const;

  // Tab. 8: the most frequent violation contexts, up to `limit`.
  std::vector<ViolationExample> Examples(const std::vector<Violation>& violations,
                                         size_t limit) const;

 private:
  // The accesses-table context of one raw trace seq.
  struct AccessContext {
    uint64_t access_type = 0;
    uint64_t file_sid = 0;
    uint64_t line = 0;
    uint64_t stack_id = 0;
  };
  AccessContext ContextOf(uint64_t seq) const;

  const Database* db_;
  const TypeRegistry* registry_;
  const ObservationStore* store_;
  const MemberAccessIndex* member_index_;
  const LockPostingIndex* postings_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_VIOLATION_FINDER_H_
