// The rule-violation finder (paper Sec. 5.5 and 7.5): assuming the derived
// winning rules are correct, locate every memory access that does not comply
// and present the developer with the member, the rule, the locks actually
// held, the source location, and the call stack — the starting points for
// hunting real locking bugs.
#ifndef SRC_CORE_VIOLATION_FINDER_H_
#define SRC_CORE_VIOLATION_FINDER_H_

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/derivator.h"
#include "src/core/filter_config.h"
#include "src/core/observations.h"
#include "src/db/database.h"
#include "src/model/type_registry.h"
#include "src/report/ir.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

// One violating folded observation.
struct Violation {
  MemberObsKey key;
  AccessType access = AccessType::kRead;
  LockSeq rule;  // The winning rule that was violated.
  LockSeq held;  // The locks actually held.
  // Raw trace seqs of the violating accesses (only those matching `access`;
  // reads folded away by write-over-read are not re-counted).
  std::vector<uint64_t> seqs;
};

// One row of the paper's Tab. 7.
struct ViolationSummaryRow {
  std::string type_name;  // Qualified (inode:ext4).
  uint64_t events = 0;
  uint64_t members = 0;
  uint64_t contexts = 0;  // Distinct (location, stack) pairs.
};

// One detailed example in the style of the paper's Tab. 8.
struct ViolationExample {
  std::string member;     // "inode:ext4.i_hash"
  std::string access;     // "r"/"w"
  std::string rule;       // Expected lock sequence.
  std::string held;       // Locks actually held.
  std::string location;   // "fs/inode.c:507"
  std::string stack;      // Innermost-first call stack.
  uint64_t events = 0;    // Violating events at this context.
};

// The forensic counterexample report: the same call-site groups as
// Examples() — identical aggregation, order and truncation — but each
// enriched with the held-lock provenance, the nearest complying access and
// an evidence rank, plus blacklist-suppression accounting so filtered
// groups are counted, never silently dropped.
struct ViolationForensics {
  std::vector<CexGroupData> groups;  // At most `limit`, ranked by evidence.
  uint64_t total_groups = 0;         // Groups surviving the blacklist.
  uint64_t shown_groups = 0;         // groups.size(), for convenience.
  uint64_t suppressed_groups = 0;    // Blacklist-suppressed groups.
  uint64_t suppressed_events = 0;    // Their violating events.
};

// Appends the forensics accounting notes ("showing N of M counterexample
// groups", "blacklist suppressed ...") to a report section — shared by the
// violations pass and the report's violation section so both render the
// accounting identically. Emits nothing when nothing was clipped or
// suppressed, keeping untruncated output byte-identical to the pre-IR
// renderer. `report_style` prefixes the first note with a blank line (the
// report's groups end without one).
void AppendForensicsNotes(ReportSection& section, const ViolationForensics& forensics,
                          bool report_style);

class ViolationFinder {
 public:
  // Violation contexts (access type, source location, stack) are resolved
  // from the accesses table via its seq index; no trace is needed. The
  // optional shared indexes (typically owned by an AnalysisContext) replace
  // the per-rule store re-scans; results are identical with or without.
  ViolationFinder(const Database* db, const TypeRegistry* registry,
                  const ObservationStore* store,
                  const MemberAccessIndex* member_index = nullptr,
                  const LockPostingIndex* postings = nullptr);

  // All violations of the winning rules (rules with sr == 1 cannot be
  // violated; the no-lock rule cannot be violated either). Distributed over
  // `pool` when given (nullptr runs serially); per-rule violation lists are
  // concatenated in rule order, so output is byte-identical at any thread
  // count.
  std::vector<Violation> FindAll(const std::vector<DerivationResult>& results,
                                 ThreadPool* pool = nullptr) const;

  // Tab. 7: per qualified data type, counting every observed type even when
  // it has zero violations.
  std::vector<ViolationSummaryRow> Summarize(const std::vector<Violation>& violations) const;

  // Tab. 8: the most frequent violation contexts, up to `limit`.
  std::vector<ViolationExample> Examples(const std::vector<Violation>& violations,
                                         size_t limit) const;

  // The forensics pass over the same groups: `filter` (may be null for no
  // suppression) removes groups whose member is blacklisted or whose stack
  // contains a blacklisted function, counting what it removed; surviving
  // groups keep the Examples() order (evidence rank) and the top `limit`
  // are enriched with held locks and the nearest complying access.
  ViolationForensics Forensics(const std::vector<Violation>& violations, size_t limit,
                               const FilterConfig* filter = nullptr) const;

 private:
  // The accesses-table context of one raw trace seq.
  struct AccessContext {
    uint64_t access_type = 0;
    uint64_t file_sid = 0;
    uint64_t line = 0;
    uint64_t stack_id = 0;
  };
  AccessContext ContextOf(uint64_t seq) const;

  // (member, access, rule, held, file, line, stack) — the aggregation key
  // shared by Examples() and Forensics().
  using ContextKey = std::tuple<std::string, std::string, std::string, std::string,
                                uint64_t, uint64_t, uint64_t>;
  struct ContextAgg {
    uint64_t events = 0;
    uint64_t representative_seq = 0;       // Smallest violating seq in the group.
    const Violation* violation = nullptr;  // First violation feeding the group.
  };
  using ContextMap = std::map<ContextKey, ContextAgg>;
  // Aggregates violating events by full context — the single source of
  // truth behind both Examples() and Forensics().
  ContextMap AggregateContexts(const std::vector<Violation>& violations) const;
  // Orders groups by event count (desc), then key (asc) — the canonical
  // evidence ranking shared by both consumers.
  static std::vector<const ContextMap::value_type*> SortByEvidence(const ContextMap& map);

  // The complying access of `violation`'s (member, access, rule) nearest to
  // `rep_seq` by trace distance (ties to the smaller seq); absent when the
  // rule has no complying access of that type.
  NearestComplyingAccess NearestComplying(const Violation& violation,
                                          uint64_t rep_seq) const;

  const Database* db_;
  const TypeRegistry* registry_;
  const ObservationStore* store_;
  const MemberAccessIndex* member_index_;
  const LockPostingIndex* postings_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_VIOLATION_FINDER_H_
