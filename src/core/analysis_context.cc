#include "src/core/analysis_context.h"

#include <chrono>
#include <utility>

#include "src/util/logging.h"

namespace lockdoc {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

AnalysisContext::AnalysisContext(const AnalysisSnapshot* snapshot, const TypeRegistry* registry,
                                 AnalysisOptions options, PipelineTimings* timings)
    : snapshot_(snapshot),
      registry_(registry),
      options_(std::move(options)),
      pool_(options_.pipeline.jobs),
      timings_(timings != nullptr ? timings : &own_timings_) {
  LOCKDOC_CHECK(snapshot_ != nullptr);
  timings_->jobs = pool_.thread_count();
}

AnalysisContext::~AnalysisContext() = default;

const TypeRegistry& AnalysisContext::registry() const {
  LOCKDOC_CHECK(registry_ != nullptr && "this analysis needs a type registry");
  return *registry_;
}

const std::vector<DerivationResult>& AnalysisContext::rules() {
  std::call_once(rules_once_, [&] {
    auto t0 = Clock::now();
    RuleDerivator derivator(options_.pipeline.derivator);
    rules_ = derivator.DeriveAll(snapshot_->observations, &pool_);
    timings_->Add("rule derivation (interned)", Seconds(t0, Clock::now()),
                  static_cast<uint64_t>(snapshot_->observations.groups().size()) * 2);
    timings_->mining.enum_cache_hits = snapshot_->observations.enum_cache_hits();
    timings_->mining.enum_cache_misses = snapshot_->observations.enum_cache_misses();
    for (const DerivationResult& rule : rules_) {
      timings_->mining.candidates_scored += rule.candidates_scored;
    }
  });
  return rules_;
}

const LockOrderGraph& AnalysisContext::lock_order_graph() {
  std::call_once(lock_order_once_, [&] {
    lock_order_ =
        std::make_unique<LockOrderGraph>(LockOrderGraph::Build(snapshot_->db, registry()));
  });
  return *lock_order_;
}

const MemberAccessIndex& AnalysisContext::member_access_index() {
  std::call_once(member_access_once_, [&] {
    member_access_ =
        std::make_unique<MemberAccessIndex>(MemberAccessIndex::Build(snapshot_->observations));
  });
  return *member_access_;
}

const LockPostingIndex& AnalysisContext::lock_postings() {
  std::call_once(postings_once_, [&] {
    postings_ =
        std::make_unique<LockPostingIndex>(LockPostingIndex::Build(snapshot_->observations));
  });
  return *postings_;
}

void AnalysisContext::SeedRules(std::vector<DerivationResult> rules) {
  std::call_once(rules_once_, [&] { rules_ = std::move(rules); });
}

std::vector<DerivationResult> AnalysisContext::TakeRules() {
  rules();
  return std::move(rules_);
}

}  // namespace lockdoc
