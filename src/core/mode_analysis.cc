#include "src/core/mode_analysis.h"

#include <algorithm>

#include "src/core/held_locks.h"
#include "src/db/schema.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

ModeAnalyzer::ModeAnalyzer(const Database* db, const TypeRegistry* registry,
                           const ObservationStore* store,
                           const MemberAccessIndex* member_index,
                           const LockPostingIndex* postings)
    : db_(db),
      registry_(registry),
      store_(store),
      member_index_(member_index),
      postings_(postings) {
  LOCKDOC_CHECK(db_ != nullptr && registry_ != nullptr && store_ != nullptr);
}

std::vector<ModeReportEntry> ModeAnalyzer::Analyze(
    const std::vector<DerivationResult>& results) const {
  std::vector<ModeReportEntry> entries;
  for (const DerivationResult& result : results) {
    if (!result.winner.has_value() || result.winner->locks.empty()) {
      continue;
    }
    ModeReportEntry entry;
    entry.key = result.key;
    entry.access = result.access;
    entry.rule = result.winner->locks;
    entry.usages.resize(entry.rule.size());
    for (size_t i = 0; i < entry.rule.size(); ++i) {
      entry.usages[i].lock = entry.rule[i];
    }

    // Compliance scan on interned ids (string fallback for hand-built
    // results whose classes were never observed). The shared posting lists,
    // when available, precompute the rule's complying sequences once so each
    // group becomes a binary-search lookup.
    std::optional<IdSeq> rule_ids = store_->pool().FindSeq(entry.rule);
    std::vector<uint32_t> complying;
    bool have_complying = false;
    if (postings_ != nullptr && rule_ids.has_value()) {
      complying = postings_->ComplyingSeqs(*store_, *rule_ids);
      have_complying = true;
    }
    const std::vector<ObservationGroup>& groups = store_->GroupsFor(result.key);
    auto visit_group = [&](const ObservationGroup& group) {
      bool complies =
          have_complying
              ? std::binary_search(complying.begin(), complying.end(), group.lockseq_id)
              : (rule_ids.has_value()
                     ? IsSubsequenceIds(*rule_ids, store_->id_seq(group.lockseq_id))
                     : IsSubsequence(entry.rule, store_->seq(group.lockseq_id)));
      if (!complies) {
        return;  // Only complying observations characterize the rule.
      }
      std::vector<HeldLockInfo> held =
          ClassifyHeldLocks(*db_, *registry_, group.txn_id, group.alloc_id);
      // Greedy subsequence match to attribute a mode to each rule lock.
      size_t rule_pos = 0;
      for (const HeldLockInfo& h : held) {
        if (rule_pos == entry.rule.size()) {
          break;
        }
        if (h.lock_class == entry.rule[rule_pos]) {
          if (h.mode == AcquireMode::kShared) {
            ++entry.usages[rule_pos].shared;
          } else {
            ++entry.usages[rule_pos].exclusive;
          }
          ++rule_pos;
        }
      }
    };
    if (member_index_ != nullptr) {
      if (const MemberAccessIndex::Entry* member_entry = member_index_->Find(result.key)) {
        for (uint32_t index : member_entry->For(result.access)) {
          visit_group(groups[index]);
        }
      }
    } else {
      for (const ObservationGroup& group : groups) {
        if (group.effective() == result.access) {
          visit_group(group);
        }
      }
    }

    if (result.access == AccessType::kWrite) {
      for (const ModeUsage& usage : entry.usages) {
        if (usage.shared > 0) {
          entry.suspicious = true;
        }
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<ModeReportEntry> ModeAnalyzer::FindSharedModeWrites(
    const std::vector<DerivationResult>& results) const {
  std::vector<ModeReportEntry> all = Analyze(results);
  std::erase_if(all, [](const ModeReportEntry& entry) { return !entry.suspicious; });
  return all;
}

std::string ModeAnalyzer::RenderEntry(const ModeReportEntry& entry) const {
  std::string member =
      registry_->QualifiedName(entry.key.type, entry.key.subclass) + "." +
      registry_->layout(entry.key.type).member(entry.key.member).name;
  std::string out =
      StrFormat("%s [%s]: %s%s\n", member.c_str(), AccessTypeName(entry.access),
                LockSeqToString(entry.rule).c_str(),
                entry.suspicious ? "   ** write under shared hold **" : "");
  for (const ModeUsage& usage : entry.usages) {
    if (usage.shared + usage.exclusive == 0) {
      continue;
    }
    out += StrFormat("    %-45s shared=%llu exclusive=%llu (%.0f%% shared)\n",
                     usage.lock.ToString().c_str(),
                     static_cast<unsigned long long>(usage.shared),
                     static_cast<unsigned long long>(usage.exclusive),
                     usage.shared_fraction() * 100.0);
  }
  return out;
}

std::string ModeAnalyzer::Render(const std::vector<ModeReportEntry>& entries) const {
  std::string out;
  for (const ModeReportEntry& entry : entries) {
    out += RenderEntry(entry);
  }
  return out;
}

}  // namespace lockdoc
