// Acquisition-mode analysis — a refinement beyond the paper's rule model.
//
// LockDoc's rules say WHICH locks protect a member, but reader/writer
// primitives (rw_semaphore, rwlock_t) make the acquisition MODE part of the
// contract: a shared (reader) hold permits concurrent readers, so a *write*
// to the protected member under a merely-shared hold is a latent data race
// even though the lock itself is held. This module annotates each winning
// rule's locks with the observed shared/exclusive mode distribution and
// flags write rules that are satisfied by shared holds.
#ifndef SRC_CORE_MODE_ANALYSIS_H_
#define SRC_CORE_MODE_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/core/derivator.h"
#include "src/db/database.h"
#include "src/model/type_registry.h"

namespace lockdoc {

// Mode distribution of one lock within one winning rule.
struct ModeUsage {
  LockClass lock;
  uint64_t shared = 0;     // Complying observations holding the lock shared.
  uint64_t exclusive = 0;  // ... holding it exclusively.

  double shared_fraction() const {
    uint64_t total = shared + exclusive;
    return total == 0 ? 0.0 : static_cast<double>(shared) / static_cast<double>(total);
  }
};

struct ModeReportEntry {
  MemberObsKey key;
  AccessType access = AccessType::kRead;
  LockSeq rule;
  std::vector<ModeUsage> usages;  // One per rule lock, in rule order.
  // True when a WRITE rule's lock is held shared in at least one complying
  // observation — the latent-race pattern this analysis exists to find.
  bool suspicious = false;
};

class ModeAnalyzer {
 public:
  // All of `db`, `registry`, `store` must outlive the analyzer. The optional
  // shared indexes (typically owned by an AnalysisContext) replace the
  // per-rule store re-scans; entries are identical with or without them.
  ModeAnalyzer(const Database* db, const TypeRegistry* registry,
               const ObservationStore* store,
               const MemberAccessIndex* member_index = nullptr,
               const LockPostingIndex* postings = nullptr);

  // Annotates every derivation result whose winner names at least one
  // reader/writer-capable lock. Entries are in `results` order.
  std::vector<ModeReportEntry> Analyze(const std::vector<DerivationResult>& results) const;

  // Only the suspicious entries (writes under shared holds).
  std::vector<ModeReportEntry> FindSharedModeWrites(
      const std::vector<DerivationResult>& results) const;

  // Text rendering of one entry (the report IR keeps one node per entry).
  std::string RenderEntry(const ModeReportEntry& entry) const;

  // Text rendering of a report: the concatenated entries.
  std::string Render(const std::vector<ModeReportEntry>& entries) const;

 private:
  const Database* db_;
  const TypeRegistry* registry_;
  const ObservationStore* store_;
  const MemberAccessIndex* member_index_;
  const LockPostingIndex* postings_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_MODE_ANALYSIS_H_
