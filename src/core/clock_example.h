// The paper's running example (Sec. 4, Fig. 4): a clock counter with
// `seconds` protected by sec_lock and `minutes` protected by
// sec_lock -> min_lock, executed 1000 times plus one faulty execution that
// forgets min_lock. Shared between the quickstart example, the Tab. 1/2
// benches, and the tests.
#ifndef SRC_CORE_CLOCK_EXAMPLE_H_
#define SRC_CORE_CLOCK_EXAMPLE_H_

#include <memory>

#include "src/model/type_registry.h"
#include "src/trace/trace.h"

namespace lockdoc {

struct ClockExample {
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
  TypeId clock_type = kInvalidTypeId;
  MemberIndex seconds = kInvalidMember;
  MemberIndex minutes = kInvalidMember;
};

struct ClockExampleOptions {
  // Fig. 4 executions; every 60th increments minutes (1000 -> 16 times).
  int iterations = 1000;
  // Adds one execution of the buggy variant that increments minutes while
  // holding only sec_lock.
  bool include_faulty_execution = true;
};

// Builds the registry and records the trace.
ClockExample BuildClockExample(const ClockExampleOptions& options = {});

}  // namespace lockdoc

#endif  // SRC_CORE_CLOCK_EXAMPLE_H_
