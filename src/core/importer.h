// Trace post-processing and database import (phase 1, Sec. 5.3/6): replays
// the event stream, reconstructs transactions, resolves memory accesses to
// (allocation, member) pairs, applies the filters, and fills the LockDoc
// database schema.
//
// Transaction model (Sec. 4.2): a transaction is a maximal span of the trace
// during which the set of held locks is fixed. Acquiring a lock starts a new
// (nested) transaction carrying the full ordered held-lock list; releasing
// one ends the current transaction and resumes a span with the remaining
// locks (a fresh transaction row with the reduced set). Spans with no locks
// held are recorded as lock-free transactions (n_locks = 0) so that
// lock-free accesses fold into observations the same way locked ones do.
#ifndef SRC_CORE_IMPORTER_H_
#define SRC_CORE_IMPORTER_H_

#include <memory>

#include "src/core/filter_config.h"
#include "src/db/database.h"
#include "src/db/schema.h"
#include "src/model/type_registry.h"
#include "src/monitor/allocation_tracker.h"
#include "src/monitor/lock_resolver.h"
#include "src/trace/trace.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

struct ImportStats {
  uint64_t events = 0;
  uint64_t accesses_total = 0;
  uint64_t accesses_kept = 0;
  uint64_t accesses_filtered = 0;
  uint64_t txns = 0;
  uint64_t locked_txns = 0;
  uint64_t lock_instances = 0;
  uint64_t allocations = 0;

  // Anomaly counters. All zero for a well-formed trace; non-zero values
  // appear when importing a salvaged (partial) trace, where the replay
  // repairs what it can instead of aborting.
  // Locks still held when the trace ended; their transactions were closed
  // at the last event.
  uint64_t dangling_locks_closed = 0;
  // Allocations never freed by the end of the trace.
  uint64_t live_allocations_at_end = 0;
  // Alloc events at an address that was still live (lost free event); the
  // stale allocation was implicitly retired.
  uint64_t realloc_overlaps = 0;
  // Release events for locks that were not held; dropped.
  uint64_t unmatched_releases = 0;
  // Lock ops inside a tracked allocation but not on a lock member;
  // attributed to an anonymous static lock.
  uint64_t unresolved_lock_ops = 0;
  // Alloc events whose type id has no layout in the registry; left
  // untracked.
  uint64_t unknown_type_allocs = 0;
};

class TraceImporter {
 public:
  TraceImporter(const TypeRegistry* registry, FilterConfig filter);

  // Builds the full LockDoc database from `trace`. The trace's string pool
  // is copied into the database (ids preserved), so the returned database
  // is self-contained: the trace can be discarded once Import returns.
  //
  // The replay that reconstructs transactions and allocation lifetimes is
  // inherently sequential, but per-access member resolution and filter
  // classification are pure given the replay's attributions; with a pool
  // they run chunked in parallel. The database is identical (row for row)
  // at any thread count.
  ImportStats Import(const Trace& trace, Database* db, ThreadPool* pool = nullptr);

 private:
  const TypeRegistry* registry_;
  FilterConfig filter_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_IMPORTER_H_
