// Trace post-processing and database import (phase 1, Sec. 5.3/6): replays
// the event stream, reconstructs transactions, resolves memory accesses to
// (allocation, member) pairs, applies the filters, and fills the LockDoc
// database schema.
//
// Transaction model (Sec. 4.2): a transaction is a maximal span of the trace
// during which the set of held locks is fixed. Acquiring a lock starts a new
// (nested) transaction carrying the full ordered held-lock list; releasing
// one ends the current transaction and resumes a span with the remaining
// locks (a fresh transaction row with the reduced set). Spans with no locks
// held are recorded as lock-free transactions (n_locks = 0) so that
// lock-free accesses fold into observations the same way locked ones do.
#ifndef SRC_CORE_IMPORTER_H_
#define SRC_CORE_IMPORTER_H_

#include <memory>

#include "src/core/filter_config.h"
#include "src/db/database.h"
#include "src/db/schema.h"
#include "src/model/type_registry.h"
#include "src/monitor/allocation_tracker.h"
#include "src/monitor/lock_resolver.h"
#include "src/trace/trace.h"

namespace lockdoc {

struct ImportStats {
  uint64_t events = 0;
  uint64_t accesses_total = 0;
  uint64_t accesses_kept = 0;
  uint64_t accesses_filtered = 0;
  uint64_t txns = 0;
  uint64_t locked_txns = 0;
  uint64_t lock_instances = 0;
  uint64_t allocations = 0;
};

class TraceImporter {
 public:
  TraceImporter(const TypeRegistry* registry, FilterConfig filter);

  // Builds the full LockDoc database from `trace`. The trace must outlive
  // uses of the returned database only insofar as interned strings are
  // resolved through it by later analysis stages.
  ImportStats Import(const Trace& trace, Database* db);

 private:
  const TypeRegistry* registry_;
  FilterConfig filter_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_IMPORTER_H_
