// The analysis-pass framework: every phase-3 analysis (rule checking,
// documentation generation, violation finding, lock ordering, acquisition
// modes, full report, rule diff) expressed as a uniform pass over one
// shared AnalysisContext.
//
// A pass is a pure rendering of context state: it pulls whatever shared
// indexes it needs (rules(), member_access_index(), lock_postings(),
// lock_order_graph()) — each built lazily, at most once per context, no
// matter how many passes ask — and produces the exact bytes its standalone
// CLI command prints to stdout. Running N passes through one context
// therefore loads the snapshot once and derives rules once, while emitting
// byte-identical output to running the N standalone commands.
#ifndef SRC_CORE_ANALYSIS_PASS_H_
#define SRC_CORE_ANALYSIS_PASS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/analysis_context.h"
#include "src/report/ir.h"
#include "src/util/status.h"

namespace lockdoc {

// What one pass produced: the structured report document, plus its text
// rendering — the exact bytes the standalone CLI command would have written
// to stdout before the IR existed (the byte-compat contract lives in
// src/report/render_text.*). Non-text formats render from `doc`.
struct PassOutput {
  ReportDocument doc;
  std::string text;
};

class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  // The stable CLI-facing name ("check", "violations", ...). This is both
  // the standalone command name and the token accepted by
  // `lockdoc analyze --passes`.
  virtual std::string_view name() const = 0;

  // One-line description for usage/help output.
  virtual std::string_view description() const = 0;

  // Runs the pass against `context` with `opts` as the per-run knobs,
  // appending nothing to stdout itself: the pass builds `out.doc` (via
  // Build) and Run fills `out.text` with its text rendering. Phase timings
  // (e.g. "rule checking") are appended to context.timings(). An error
  // status maps to the standalone command's failure path (message to
  // stderr, exit 1).
  //
  // Options are a per-run parameter — not context state — so several
  // requests can run passes over one shared context concurrently, each with
  // its own knobs (the serve scheduler relies on this; the shared indexes a
  // pass pulls are option-independent and memoized thread-safely).
  Status Run(AnalysisContext& context, const PassOptions& opts, PassOutput& out) const;

  // Convenience for single-request callers (CLI, tests): runs with the
  // options baked into the context at construction time.
  Status Run(AnalysisContext& context, PassOutput& out) const {
    return Run(context, context.pass_options(), out);
  }

 protected:
  // Builds the pass's report document. `doc.pass` is pre-set to name().
  virtual Status Build(AnalysisContext& context, const PassOptions& opts,
                       ReportDocument& doc) const = 0;
};

// Applies one textual key=value knob onto PassOptions — the shared plumbing
// between CLI flags and serve request files, so a spool request renders the
// exact bytes the equivalent command line would. Accepted keys: "limit"
// (unsigned), "all", "full", "spec", "support" (booleans "0"/"1"/"true"/
// "false"), "type", "subclass" (strings). "all" sets both modes_all and
// diff_all, exactly like the --all flag. Unknown keys and unparseable
// values are errors naming the key.
Status ApplyPassOption(PassOptions& opts, std::string_view key, std::string_view value);

// The ordered collection of registered passes. Registration order is the
// canonical execution order for multi-pass runs.
class PassRegistry {
 public:
  PassRegistry() = default;
  PassRegistry(const PassRegistry&) = delete;
  PassRegistry& operator=(const PassRegistry&) = delete;

  // The built-in registry with every phase-3 pass, in canonical order:
  // check, derive, violations, lock-order, modes, report, diff.
  static const PassRegistry& Default();

  void Register(std::unique_ptr<AnalysisPass> pass);

  // nullptr when no pass has that name.
  const AnalysisPass* Find(std::string_view name) const;

  const std::vector<std::unique_ptr<AnalysisPass>>& passes() const { return passes_; }

  // "check, derive, ..." — for error messages and usage text.
  std::string JoinedNames() const;

 private:
  std::vector<std::unique_ptr<AnalysisPass>> passes_;
};

}  // namespace lockdoc

#endif  // SRC_CORE_ANALYSIS_PASS_H_
