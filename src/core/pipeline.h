// The two-stage analysis pipeline (paper Fig. 5): a trace is imported ONCE
// into an AnalysisSnapshot — database + folded observations — and every
// analysis (derivation, checking, violations, lock order, modes, report)
// runs against that snapshot. BuildSnapshot is the expensive ingest stage;
// AnalyzeSnapshot is the cheap per-query stage. Snapshots are
// self-contained (the database owns its strings), so they can be persisted
// as .lockdb files (src/core/snapshot.h) and re-analyzed without the trace:
// import-once / analyze-many, like the paper's MariaDB instance.
//
// Phases 2/3 are data-parallel across (member, access) work items; `jobs`
// controls the thread count. Results — including the snapshot contents, and
// therefore the serialized .lockdb bytes — are byte-identical at any job
// count; see the determinism contract in src/util/thread_pool.h and
// DESIGN.md.
#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/derivator.h"
#include "src/core/filter_config.h"
#include "src/core/importer.h"
#include "src/core/observations.h"
#include "src/db/database.h"
#include "src/model/type_registry.h"
#include "src/trace/trace.h"
#include "src/trace/trace_stats.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

struct PipelineOptions {
  FilterConfig filter = FilterConfig::Defaults();
  DerivatorOptions derivator;
  // Analysis threads: 0 selects hardware_concurrency, 1 runs serially.
  size_t jobs = 0;
};

// Wall time and throughput of one pipeline phase.
struct PhaseTiming {
  std::string phase;
  double seconds = 0.0;
  uint64_t items = 0;  // Phase-specific unit (events, accesses, work items).

  double items_per_sec() const { return seconds > 0.0 ? items / seconds : 0.0; }
};

// Effectiveness counters of the interned-id mining core: how the
// per-store subsequence-enumeration cache behaved and how many candidate
// hypotheses were scored. All zero when derivation did not run.
struct MiningStats {
  uint64_t enum_cache_hits = 0;    // Lookups served from the shared cache.
  uint64_t enum_cache_misses = 0;  // Lookups that computed their entry.
  uint64_t candidates_scored = 0;  // Hypotheses scored across all members.

  bool any() const {
    return enum_cache_hits != 0 || enum_cache_misses != 0 || candidates_scored != 0;
  }
};

struct PipelineTimings {
  size_t jobs = 1;  // Lanes actually used (after resolving jobs = 0).
  std::vector<PhaseTiming> phases;
  MiningStats mining;

  // Thread-safe: passes running concurrently over one shared context (the
  // serve scheduler) append phases to the same record. The mutex lives
  // behind a shared_ptr so the struct stays copyable; copies made while no
  // writer is active (the only sane time to copy a timings record) share
  // the lock with their original.
  void Add(std::string phase, double seconds, uint64_t items);
  double total_seconds() const;
  // Aligned text block for terminals (one line per phase plus a total).
  std::string ToString() const;
  // {"jobs": N, "phases": [{"phase": ..., "seconds": ..., ...}],
  //  "mining": {"enum_cache_hits": ..., ...}}
  std::string ToJson() const;

 private:
  std::shared_ptr<std::mutex> mu_ = std::make_shared<std::mutex>();
};

// Keeps the bytes behind a zero-copy snapshot load alive: the v2 .lockdb
// loader attaches table columns as views into an mmap-ed file (or an
// aligned in-memory buffer), and the AnalysisSnapshot pins the backing so
// those views stay valid for the snapshot's lifetime. Null for snapshots
// built from a trace or loaded from v1 files (fully owned storage).
struct SnapshotBacking {
  virtual ~SnapshotBacking() = default;
  std::string_view bytes;
};

// Everything the ingest stage produces, and everything the analysis stage
// consumes. Self-contained: the database owns a copy of the trace's string
// pool, the observation store owns its interned lock classes, and the trace
// statistics are captured here — neither the Trace nor any other ingest
// input needs to outlive a snapshot.
struct AnalysisSnapshot {
  Database db;
  ImportStats import_stats;
  TraceStats trace_stats;
  ObservationStore observations;
  // Set by the zero-copy .lockdb v2 load path; see SnapshotBacking.
  std::shared_ptr<const SnapshotBacking> backing;
};

struct PipelineResult {
  AnalysisSnapshot snapshot;
  std::vector<DerivationResult> rules;
  PipelineTimings timings;
};

// Stage 1 (ingest): database import + observation extraction. Appends the
// "database import" and "observation extraction" phases to `timings` when
// given. `registry` must outlive the snapshot (member/type names for lock
// classes are resolved through it); the trace is fully consumed.
AnalysisSnapshot BuildSnapshot(const Trace& trace, const TypeRegistry& registry,
                               const PipelineOptions& options = {},
                               PipelineTimings* timings = nullptr);

// Stage 2 (analysis): rule derivation against a snapshot — fresh from
// BuildSnapshot or loaded from a .lockdb file. Appends the "rule derivation
// (interned)" phase and the mining counters to `timings` when given.
std::vector<DerivationResult> AnalyzeSnapshot(const AnalysisSnapshot& snapshot,
                                              const PipelineOptions& options = {},
                                              PipelineTimings* timings = nullptr);

// Both stages back to back: the programmatic equivalent of running all
// LockDoc phases (Fig. 5) in one process.
PipelineResult RunPipeline(const Trace& trace, const TypeRegistry& registry,
                           const PipelineOptions& options = {});

}  // namespace lockdoc

#endif  // SRC_CORE_PIPELINE_H_
