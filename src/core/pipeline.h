// End-to-end convenience wrapper: trace -> database import -> observation
// extraction -> rule derivation. This is the programmatic equivalent of
// running all three LockDoc phases (Fig. 5) back to back.
#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <vector>

#include "src/core/derivator.h"
#include "src/core/filter_config.h"
#include "src/core/importer.h"
#include "src/core/observations.h"
#include "src/db/database.h"
#include "src/model/type_registry.h"
#include "src/trace/trace.h"

namespace lockdoc {

struct PipelineOptions {
  FilterConfig filter = FilterConfig::Defaults();
  DerivatorOptions derivator;
};

struct PipelineResult {
  Database db;
  ImportStats import_stats;
  ObservationStore observations;
  std::vector<DerivationResult> rules;
};

// Runs import + extraction + derivation. `trace` and `registry` must
// outlive the result (interned strings are resolved through the trace).
PipelineResult RunPipeline(const Trace& trace, const TypeRegistry& registry,
                           const PipelineOptions& options = {});

}  // namespace lockdoc

#endif  // SRC_CORE_PIPELINE_H_
