#include "src/core/lock_order.h"

#include <algorithm>
#include <functional>
#include <set>

#include "src/db/schema.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

// Classifies one lock row without a reference object: static locks by name,
// embedded locks as EO(member in type).
LockClass ClassifyAbsolute(const Database& db, const Table& locks, const Table& members,
                           const TypeRegistry& registry, uint64_t lock_row) {
  if (locks.GetUint64(lock_row, locks.ColumnIndex("is_static")) != 0) {
    uint64_t name_sid = locks.GetUint64(lock_row, locks.ColumnIndex("name_sid"));
    if (name_sid != 0) {
      return LockClass::Global(db.String(static_cast<StringId>(name_sid)));
    }
    return LockClass::Global(StrFormat(
        "lock@0x%llx",
        static_cast<unsigned long long>(locks.GetUint64(lock_row, locks.ColumnIndex("addr")))));
  }
  uint64_t member_row = locks.GetUint64(lock_row, locks.ColumnIndex("owner_member_id"));
  TypeId owner_type =
      static_cast<TypeId>(members.GetUint64(member_row, members.ColumnIndex("type_id")));
  return LockClass::Other(members.GetString(member_row, members.ColumnIndex("name")),
                          registry.layout(owner_type).name());
}

}  // namespace

std::string LockOrderCycle::ToString() const {
  std::string text;
  for (const LockClass& lock : classes) {
    text += lock.ToString() + " -> ";
  }
  if (!classes.empty()) {
    text += classes.front().ToString();
  }
  return text + StrFormat(" (min support %llu)", static_cast<unsigned long long>(min_support));
}

LockOrderGraph LockOrderGraph::Build(const Database& db, const TypeRegistry& registry) {
  LockOrderGraph graph;
  const Table& txns = db.table(LockDocSchema::kTxns);
  const Table& txn_locks = db.table(LockDocSchema::kTxnLocks);
  const Table& locks = db.table(LockDocSchema::kLocks);
  const Table& members = db.table(LockDocSchema::kMembers);

  const size_t kTlTxn = txn_locks.ColumnIndex("txn_id");
  const size_t kTlPos = txn_locks.ColumnIndex("position");
  const size_t kTlLock = txn_locks.ColumnIndex("lock_id");
  const size_t kTlAcq = txn_locks.ColumnIndex("acquire_seq");
  const size_t kTlFile = txn_locks.ColumnIndex("file_sid");
  const size_t kTlLine = txn_locks.ColumnIndex("line");
  const size_t kTxnStart = txns.ColumnIndex("start_seq");
  const size_t kTxnNLocks = txns.ColumnIndex("n_locks");

  // Cache of lock row -> class.
  std::map<uint64_t, LockClass> class_cache;
  auto class_of = [&](uint64_t lock_row) -> const LockClass& {
    auto it = class_cache.find(lock_row);
    if (it == class_cache.end()) {
      it = class_cache
               .emplace(lock_row, ClassifyAbsolute(db, locks, members, registry, lock_row))
               .first;
    }
    return it->second;
  };

  auto add_edge = [&](const LockClass& from, const LockClass& to, uint64_t example_seq,
                      uint64_t example_file_sid, uint64_t example_line) {
    auto key = std::make_pair(from, to);
    auto it = graph.edge_index_.find(key);
    if (it == graph.edge_index_.end()) {
      LockOrderEdge edge;
      edge.from = from;
      edge.to = to;
      edge.support = 1;
      edge.example_seq = example_seq;
      edge.example_file_sid = example_file_sid;
      edge.example_line = example_line;
      graph.edge_index_.emplace(key, graph.edges_.size());
      graph.edges_.push_back(std::move(edge));
    } else {
      ++graph.edges_[it->second].support;
    }
  };

  for (uint64_t txn = 0; txn < txns.row_count(); ++txn) {
    uint64_t n_locks = txns.GetUint64(txn, kTxnNLocks);
    if (n_locks < 2) {
      continue;
    }
    std::vector<RowId> rows = txn_locks.LookupEqual(kTlTxn, txn);
    std::vector<uint64_t> ordered(rows.size());
    uint64_t last_acquire = 0;
    uint64_t last_file_sid = 0;
    uint64_t last_line = 0;
    for (RowId row : rows) {
      uint64_t pos = txn_locks.GetUint64(row, kTlPos);
      LOCKDOC_CHECK(pos < ordered.size());
      ordered[pos] = txn_locks.GetUint64(row, kTlLock);
      if (pos + 1 == ordered.size()) {
        last_acquire = txn_locks.GetUint64(row, kTlAcq);
        last_file_sid = txn_locks.GetUint64(row, kTlFile);
        last_line = txn_locks.GetUint64(row, kTlLine);
      }
    }
    // Only transactions opened by the innermost lock's acquisition count;
    // transactions re-minted by out-of-order releases would double-count
    // orderings that were already recorded.
    if (txns.GetUint64(txn, kTxnStart) != last_acquire) {
      continue;
    }
    const LockClass& acquired = class_of(ordered.back());
    for (size_t i = 0; i + 1 < ordered.size(); ++i) {
      add_edge(class_of(ordered[i]), acquired, last_acquire, last_file_sid, last_line);
    }
  }
  return graph;
}

std::vector<std::pair<LockOrderEdge, LockOrderEdge>> LockOrderGraph::ConflictingPairs() const {
  std::vector<std::pair<LockOrderEdge, LockOrderEdge>> conflicts;
  for (const LockOrderEdge& edge : edges_) {
    if (!(edge.from < edge.to)) {
      continue;  // Report each unordered pair once; skip self-loops.
    }
    auto reverse = edge_index_.find(std::make_pair(edge.to, edge.from));
    if (reverse == edge_index_.end()) {
      continue;
    }
    const LockOrderEdge& back = edges_[reverse->second];
    // Rarer direction first: it is usually the buggy one.
    if (back.support < edge.support) {
      conflicts.emplace_back(back, edge);
    } else {
      conflicts.emplace_back(edge, back);
    }
  }
  return conflicts;
}

std::vector<LockOrderCycle> LockOrderGraph::FindCycles(size_t max_length) const {
  // Collect distinct classes and adjacency.
  std::vector<LockClass> nodes;
  std::map<LockClass, size_t> node_index;
  for (const LockOrderEdge& edge : edges_) {
    for (const LockClass& lock : {edge.from, edge.to}) {
      if (node_index.emplace(lock, nodes.size()).second) {
        nodes.push_back(lock);
      }
    }
  }
  std::vector<std::vector<std::pair<size_t, uint64_t>>> adjacency(nodes.size());
  for (const LockOrderEdge& edge : edges_) {
    if (edge.from == edge.to) {
      continue;
    }
    adjacency[node_index[edge.from]].emplace_back(node_index[edge.to], edge.support);
  }

  std::vector<LockOrderCycle> cycles;
  std::set<std::vector<size_t>> seen;

  // DFS from each node; only visit nodes with index >= start to enumerate
  // each elementary cycle exactly once (smallest node is the anchor).
  std::vector<size_t> path;
  std::vector<uint64_t> supports;
  std::vector<bool> on_path(nodes.size(), false);

  std::function<void(size_t, size_t)> dfs = [&](size_t start, size_t current) {
    if (path.size() > max_length) {
      return;
    }
    for (const auto& [next, support] : adjacency[current]) {
      if (next == start && path.size() >= 2) {
        LockOrderCycle cycle;
        cycle.min_support = support;
        std::vector<size_t> ids = path;
        for (size_t i = 0; i < path.size(); ++i) {
          cycle.classes.push_back(nodes[path[i]]);
          if (i > 0) {
            cycle.min_support = std::min(cycle.min_support, supports[i - 1]);
          }
        }
        cycle.min_support = std::min(cycle.min_support, support);
        if (seen.insert(ids).second) {
          cycles.push_back(std::move(cycle));
        }
        continue;
      }
      if (next <= start || on_path[next] || path.size() == max_length) {
        continue;
      }
      path.push_back(next);
      supports.push_back(support);
      on_path[next] = true;
      dfs(start, next);
      on_path[next] = false;
      supports.pop_back();
      path.pop_back();
    }
  };

  for (size_t start = 0; start < nodes.size(); ++start) {
    path = {start};
    supports.clear();
    std::fill(on_path.begin(), on_path.end(), false);
    on_path[start] = true;
    dfs(start, start);
  }
  return cycles;
}

std::vector<LockOrderEdge> LockOrderGraph::SelfNesting() const {
  std::vector<LockOrderEdge> result;
  for (const LockOrderEdge& edge : edges_) {
    if (edge.from == edge.to) {
      result.push_back(edge);
    }
  }
  return result;
}

std::string LockOrderGraph::Report(const Database& db, size_t max_edges) const {
  std::vector<LockOrderEdge> sorted = edges_;
  std::sort(sorted.begin(), sorted.end(), [](const LockOrderEdge& a, const LockOrderEdge& b) {
    return a.support > b.support;
  });
  std::string out = StrFormat("lock-order graph: %zu edges\n", sorted.size());
  for (size_t i = 0; i < sorted.size() && i < max_edges; ++i) {
    const LockOrderEdge& edge = sorted[i];
    out += StrFormat("  %-45s -> %-45s n=%-7llu e.g. %s\n", edge.from.ToString().c_str(),
                     edge.to.ToString().c_str(), static_cast<unsigned long long>(edge.support),
                     DbFormatLoc(db, edge.example_file_sid, edge.example_line).c_str());
  }
  auto conflicts = ConflictingPairs();
  out += StrFormat("ordering conflicts (ABBA candidates): %zu\n", conflicts.size());
  for (const auto& [rare, common] : conflicts) {
    out += StrFormat("  %s -> %s (n=%llu)  vs  reverse (n=%llu) at %s\n",
                     rare.from.ToString().c_str(), rare.to.ToString().c_str(),
                     static_cast<unsigned long long>(rare.support),
                     static_cast<unsigned long long>(common.support),
                     DbFormatLoc(db, rare.example_file_sid, rare.example_line).c_str());
  }
  return out;
}

}  // namespace lockdoc
