#include "src/core/lock_order.h"

#include <algorithm>
#include <functional>
#include <set>

#include "src/db/schema.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

// Classifies one lock row without a reference object: static locks by name,
// embedded locks as EO(member in type).
LockClass ClassifyAbsolute(const Database& db, const Table& locks, const Table& members,
                           const TypeRegistry& registry, uint64_t lock_row) {
  if (locks.GetUint64(lock_row, locks.ColumnIndex("is_static")) != 0) {
    uint64_t name_sid = locks.GetUint64(lock_row, locks.ColumnIndex("name_sid"));
    if (name_sid != 0) {
      return LockClass::Global(db.String(static_cast<StringId>(name_sid)));
    }
    return LockClass::Global(StrFormat(
        "lock@0x%llx",
        static_cast<unsigned long long>(locks.GetUint64(lock_row, locks.ColumnIndex("addr")))));
  }
  uint64_t member_row = locks.GetUint64(lock_row, locks.ColumnIndex("owner_member_id"));
  TypeId owner_type =
      static_cast<TypeId>(members.GetUint64(member_row, members.ColumnIndex("type_id")));
  return LockClass::Other(members.GetString(member_row, members.ColumnIndex("name")),
                          registry.layout(owner_type).name());
}

}  // namespace

std::string LockWitness::ToString() const {
  if (!has_range) {
    return StrFormat("0x%llx", static_cast<unsigned long long>(addr));
  }
  return StrFormat("0x%llx[0x%llx,0x%llx)", static_cast<unsigned long long>(addr),
                   static_cast<unsigned long long>(range_start),
                   static_cast<unsigned long long>(range_end));
}

std::string LockOrderCycle::ToString() const {
  std::string text;
  for (const LockClass& lock : classes) {
    text += lock.ToString() + " -> ";
  }
  if (!classes.empty()) {
    text += classes.front().ToString();
  }
  return text + StrFormat(" (min support %llu)", static_cast<unsigned long long>(min_support));
}

std::string LockOrderCyclePath::ToString() const {
  std::string text;
  for (const LockOrderEdge& edge : edges) {
    text += edge.from.ToString() + " -> ";
  }
  if (!edges.empty()) {
    text += edges.front().from.ToString();
  }
  return text + StrFormat(" (min support %llu)", static_cast<unsigned long long>(min_support));
}

LockOrderGraph LockOrderGraph::Build(const Database& db, const TypeRegistry& registry) {
  LockOrderGraph graph;
  const Table& txns = db.table(LockDocSchema::kTxns);
  const Table& txn_locks = db.table(LockDocSchema::kTxnLocks);
  const Table& locks = db.table(LockDocSchema::kLocks);
  const Table& members = db.table(LockDocSchema::kMembers);

  const size_t kTlTxn = txn_locks.ColumnIndex("txn_id");
  const size_t kTlPos = txn_locks.ColumnIndex("position");
  const size_t kTlLock = txn_locks.ColumnIndex("lock_id");
  const size_t kTlAcq = txn_locks.ColumnIndex("acquire_seq");
  const size_t kTlFile = txn_locks.ColumnIndex("file_sid");
  const size_t kTlLine = txn_locks.ColumnIndex("line");
  const size_t kTxnStart = txns.ColumnIndex("start_seq");
  const size_t kTxnNLocks = txns.ColumnIndex("n_locks");
  const size_t kLockAddr = locks.ColumnIndex("addr");

  // Held ranges for range-lock witnesses (optional table).
  const Table* txn_lock_ranges = db.HasTable(LockDocSchema::kTxnLockRanges)
                                     ? &db.table(LockDocSchema::kTxnLockRanges)
                                     : nullptr;
  size_t kTlrTxn = 0, kTlrPos = 0, kTlrStart = 0, kTlrEnd = 0;
  if (txn_lock_ranges != nullptr) {
    kTlrTxn = txn_lock_ranges->ColumnIndex("txn_id");
    kTlrPos = txn_lock_ranges->ColumnIndex("position");
    kTlrStart = txn_lock_ranges->ColumnIndex("range_start");
    kTlrEnd = txn_lock_ranges->ColumnIndex("range_end");
  }

  // Cache of lock row -> class.
  std::map<uint64_t, LockClass> class_cache;
  auto class_of = [&](uint64_t lock_row) -> const LockClass& {
    auto it = class_cache.find(lock_row);
    if (it == class_cache.end()) {
      it = class_cache
               .emplace(lock_row, ClassifyAbsolute(db, locks, members, registry, lock_row))
               .first;
    }
    return it->second;
  };

  auto add_edge = [&](const LockClass& from, const LockClass& to, uint64_t example_seq,
                      uint64_t example_file_sid, uint64_t example_line,
                      const LockWitness& witness_from, const LockWitness& witness_to) {
    auto key = std::make_pair(from, to);
    auto it = graph.edge_index_.find(key);
    if (it == graph.edge_index_.end()) {
      LockOrderEdge edge;
      edge.from = from;
      edge.to = to;
      edge.support = 1;
      edge.example_seq = example_seq;
      edge.example_file_sid = example_file_sid;
      edge.example_line = example_line;
      // The first observation supplies the instance witness; later ones
      // only bump the support, keeping the witness deterministic.
      edge.witness_from = witness_from;
      edge.witness_to = witness_to;
      graph.edge_index_.emplace(key, graph.edges_.size());
      graph.edges_.push_back(std::move(edge));
    } else {
      ++graph.edges_[it->second].support;
    }
  };

  std::vector<LockWitness> witnesses;
  for (uint64_t txn = 0; txn < txns.row_count(); ++txn) {
    uint64_t n_locks = txns.GetUint64(txn, kTxnNLocks);
    if (n_locks < 2) {
      continue;
    }
    std::vector<RowId> rows = txn_locks.LookupEqual(kTlTxn, txn);
    std::vector<uint64_t> ordered(rows.size());
    witnesses.assign(rows.size(), LockWitness{});
    uint64_t last_acquire = 0;
    uint64_t last_file_sid = 0;
    uint64_t last_line = 0;
    for (RowId row : rows) {
      uint64_t pos = txn_locks.GetUint64(row, kTlPos);
      LOCKDOC_CHECK(pos < ordered.size());
      ordered[pos] = txn_locks.GetUint64(row, kTlLock);
      witnesses[pos].addr = locks.GetUint64(ordered[pos], kLockAddr);
      if (pos + 1 == ordered.size()) {
        last_acquire = txn_locks.GetUint64(row, kTlAcq);
        last_file_sid = txn_locks.GetUint64(row, kTlFile);
        last_line = txn_locks.GetUint64(row, kTlLine);
      }
    }
    if (txn_lock_ranges != nullptr) {
      for (RowId row : txn_lock_ranges->LookupEqual(kTlrTxn, txn)) {
        uint64_t pos = txn_lock_ranges->GetUint64(row, kTlrPos);
        LOCKDOC_CHECK(pos < witnesses.size());
        witnesses[pos].has_range = true;
        witnesses[pos].range_start = txn_lock_ranges->GetUint64(row, kTlrStart);
        witnesses[pos].range_end = txn_lock_ranges->GetUint64(row, kTlrEnd);
      }
    }
    // Only transactions opened by the innermost lock's acquisition count;
    // transactions re-minted by out-of-order releases would double-count
    // orderings that were already recorded.
    if (txns.GetUint64(txn, kTxnStart) != last_acquire) {
      continue;
    }
    const LockClass& acquired = class_of(ordered.back());
    for (size_t i = 0; i + 1 < ordered.size(); ++i) {
      add_edge(class_of(ordered[i]), acquired, last_acquire, last_file_sid, last_line,
               witnesses[i], witnesses.back());
    }
  }
  return graph;
}

std::vector<std::pair<LockOrderEdge, LockOrderEdge>> LockOrderGraph::ConflictingPairs() const {
  std::vector<std::pair<LockOrderEdge, LockOrderEdge>> conflicts;
  for (const LockOrderEdge& edge : edges_) {
    if (!(edge.from < edge.to)) {
      continue;  // Report each unordered pair once; skip self-loops.
    }
    auto reverse = edge_index_.find(std::make_pair(edge.to, edge.from));
    if (reverse == edge_index_.end()) {
      continue;
    }
    const LockOrderEdge& back = edges_[reverse->second];
    // Rarer direction first: it is usually the buggy one.
    if (back.support < edge.support) {
      conflicts.emplace_back(back, edge);
    } else {
      conflicts.emplace_back(edge, back);
    }
  }
  return conflicts;
}

namespace {

// Shared node/adjacency view of the class graph. Node ids are
// first-appearance order over edges_, which is deterministic because Build
// walks transactions in id order.
struct GraphView {
  std::vector<LockClass> nodes;
  std::map<LockClass, size_t> node_index;
  // adjacency[u] = (v, edge index into edges_); self-loops excluded.
  std::vector<std::vector<std::pair<size_t, size_t>>> adjacency;

  explicit GraphView(const std::vector<LockOrderEdge>& edges) {
    for (const LockOrderEdge& edge : edges) {
      for (const LockClass& lock : {edge.from, edge.to}) {
        if (node_index.emplace(lock, nodes.size()).second) {
          nodes.push_back(lock);
        }
      }
    }
    adjacency.resize(nodes.size());
    for (size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].from == edges[e].to) {
        continue;
      }
      adjacency[node_index[edges[e].from]].emplace_back(node_index[edges[e].to], e);
    }
  }
};

// Iterative Tarjan SCC; returns the component id of each node. Component
// ids are assigned in completion order, which is deterministic for a fixed
// node/adjacency order.
std::vector<size_t> TarjanScc(const GraphView& view, size_t* component_count) {
  const size_t n = view.nodes.size();
  constexpr size_t kUnvisited = static_cast<size_t>(-1);
  std::vector<size_t> index(n, kUnvisited);
  std::vector<size_t> lowlink(n, 0);
  std::vector<size_t> component(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  size_t next_index = 0;
  size_t components = 0;

  struct Frame {
    size_t node;
    size_t edge_cursor;
  };
  std::vector<Frame> call_stack;
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      size_t u = frame.node;
      if (frame.edge_cursor < view.adjacency[u].size()) {
        size_t v = view.adjacency[u][frame.edge_cursor].first;
        ++frame.edge_cursor;
        if (index[v] == kUnvisited) {
          call_stack.push_back({v, 0});
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
        continue;
      }
      if (lowlink[u] == index[u]) {
        while (true) {
          size_t v = stack.back();
          stack.pop_back();
          on_stack[v] = false;
          component[v] = components;
          if (v == u) {
            break;
          }
        }
        ++components;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        size_t parent = call_stack.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }
  *component_count = components;
  return component;
}

}  // namespace

std::vector<std::vector<LockClass>> LockOrderGraph::StronglyConnectedComponents() const {
  GraphView view(edges_);
  size_t component_count = 0;
  std::vector<size_t> component = TarjanScc(view, &component_count);
  std::vector<std::vector<LockClass>> grouped(component_count);
  for (size_t node = 0; node < view.nodes.size(); ++node) {
    grouped[component[node]].push_back(view.nodes[node]);
  }
  std::vector<std::vector<LockClass>> result;
  for (std::vector<LockClass>& classes : grouped) {
    if (classes.size() < 2) {
      continue;  // A singleton without a self-edge cannot carry a cycle.
    }
    std::sort(classes.begin(), classes.end());
    result.push_back(std::move(classes));
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<LockOrderCycle> LockOrderGraph::FindCycles(size_t max_length) const {
  std::vector<LockOrderCycle> cycles;
  for (const LockOrderCyclePath& path : FindCyclePaths(max_length, /*max_paths=*/1024)) {
    LockOrderCycle cycle;
    cycle.min_support = path.min_support;
    for (const LockOrderEdge& edge : path.edges) {
      cycle.classes.push_back(edge.from);
    }
    cycles.push_back(std::move(cycle));
  }
  return cycles;
}

std::vector<LockOrderCyclePath> LockOrderGraph::FindCyclePaths(size_t max_length,
                                                               size_t max_paths) const {
  GraphView view(edges_);
  size_t component_count = 0;
  std::vector<size_t> component = TarjanScc(view, &component_count);

  std::vector<LockOrderCyclePath> paths;
  std::set<std::vector<size_t>> seen;

  // Anchor-DFS per node, restricted to the anchor's SCC: a cycle through
  // `start` can only visit nodes strongly connected to it, so the search
  // never leaves the component — this is what keeps the pass scalable on
  // large, mostly acyclic graphs. Only nodes with index >= start are
  // visited so each elementary cycle is enumerated exactly once (its
  // smallest node is the anchor).
  std::vector<size_t> path;        // Node ids.
  std::vector<size_t> path_edges;  // Edge indices, parallel to transitions.
  std::vector<bool> on_path(view.nodes.size(), false);

  std::function<void(size_t, size_t)> dfs = [&](size_t start, size_t current) {
    if (path.size() > max_length || paths.size() >= max_paths) {
      return;
    }
    for (const auto& [next, edge_index] : view.adjacency[current]) {
      if (paths.size() >= max_paths) {
        return;
      }
      if (component[next] != component[start]) {
        continue;
      }
      if (next == start && path.size() >= 2) {
        if (seen.insert(path).second) {
          LockOrderCyclePath cycle;
          cycle.min_support = edges_[edge_index].support;
          for (size_t e : path_edges) {
            cycle.edges.push_back(edges_[e]);
            cycle.min_support = std::min(cycle.min_support, edges_[e].support);
          }
          cycle.edges.push_back(edges_[edge_index]);
          paths.push_back(std::move(cycle));
        }
        continue;
      }
      if (next <= start || on_path[next] || path.size() == max_length) {
        continue;
      }
      path.push_back(next);
      path_edges.push_back(edge_index);
      on_path[next] = true;
      dfs(start, next);
      on_path[next] = false;
      path_edges.pop_back();
      path.pop_back();
    }
  };

  for (size_t start = 0; start < view.nodes.size(); ++start) {
    // Skip anchors in trivially acyclic components.
    bool cyclic = false;
    for (size_t node = 0; node < view.nodes.size(); ++node) {
      if (node != start && component[node] == component[start]) {
        cyclic = true;
        break;
      }
    }
    if (!cyclic) {
      continue;
    }
    path = {start};
    path_edges.clear();
    std::fill(on_path.begin(), on_path.end(), false);
    on_path[start] = true;
    dfs(start, start);
  }

  // Rarest first: the weakest edge usually marks the buggy direction. The
  // rendered path breaks ties so the order is fully deterministic.
  std::stable_sort(paths.begin(), paths.end(),
                   [](const LockOrderCyclePath& a, const LockOrderCyclePath& b) {
                     if (a.min_support != b.min_support) {
                       return a.min_support < b.min_support;
                     }
                     if (a.edges.size() != b.edges.size()) {
                       return a.edges.size() < b.edges.size();
                     }
                     return a.ToString() < b.ToString();
                   });
  return paths;
}

std::vector<LockOrderEdge> LockOrderGraph::SelfNesting() const {
  std::vector<LockOrderEdge> result;
  for (const LockOrderEdge& edge : edges_) {
    if (edge.from == edge.to) {
      result.push_back(edge);
    }
  }
  return result;
}

std::string LockOrderGraph::Report(const Database& db, size_t max_edges) const {
  std::vector<LockOrderEdge> sorted = edges_;
  std::sort(sorted.begin(), sorted.end(), [](const LockOrderEdge& a, const LockOrderEdge& b) {
    return a.support > b.support;
  });
  std::string out = StrFormat("lock-order graph: %zu edges\n", sorted.size());
  for (size_t i = 0; i < sorted.size() && i < max_edges; ++i) {
    const LockOrderEdge& edge = sorted[i];
    out += StrFormat("  %-45s -> %-45s n=%-7llu e.g. %s  w: %s -> %s\n",
                     edge.from.ToString().c_str(), edge.to.ToString().c_str(),
                     static_cast<unsigned long long>(edge.support),
                     DbFormatLoc(db, edge.example_file_sid, edge.example_line).c_str(),
                     edge.witness_from.ToString().c_str(), edge.witness_to.ToString().c_str());
  }
  auto conflicts = ConflictingPairs();
  out += StrFormat("ordering conflicts (ABBA candidates): %zu\n", conflicts.size());
  for (const auto& [rare, common] : conflicts) {
    out += StrFormat("  %s -> %s (n=%llu)  vs  reverse (n=%llu) at %s\n",
                     rare.from.ToString().c_str(), rare.to.ToString().c_str(),
                     static_cast<unsigned long long>(rare.support),
                     static_cast<unsigned long long>(common.support),
                     DbFormatLoc(db, rare.example_file_sid, rare.example_line).c_str());
  }
  auto sccs = StronglyConnectedComponents();
  out += StrFormat("strongly connected components with cycles: %zu\n", sccs.size());
  for (const std::vector<LockClass>& scc : sccs) {
    std::string names;
    for (const LockClass& lock : scc) {
      if (!names.empty()) {
        names += ", ";
      }
      names += lock.ToString();
    }
    out += StrFormat("  { %s }\n", names.c_str());
  }
  auto paths = FindCyclePaths();
  out += StrFormat("cycle paths (bounded enumeration): %zu\n", paths.size());
  for (const LockOrderCyclePath& cycle : paths) {
    out += StrFormat("  %s\n", cycle.ToString().c_str());
    for (const LockOrderEdge& edge : cycle.edges) {
      out += StrFormat("    %s -> %s  n=%llu  e.g. %s  w: %s -> %s\n",
                       edge.from.ToString().c_str(), edge.to.ToString().c_str(),
                       static_cast<unsigned long long>(edge.support),
                       DbFormatLoc(db, edge.example_file_sid, edge.example_line).c_str(),
                       edge.witness_from.ToString().c_str(),
                       edge.witness_to.ToString().c_str());
    }
  }
  return out;
}

}  // namespace lockdoc
