// Inode lifecycle and file operations of the simulated kernel
// (fs/inode.c, fs/namei.c, fs/read_write.c, fs/stat.c, fs/ext4/*).
//
// Ground-truth locking discipline (modelled on Linux 4.10 and on the
// generated documentation in the paper's Fig. 8):
//   * i_state, i_bytes            — ES(i_lock), writes always
//   * i_blocks                    — ES(i_lock), with a rare ext4 delalloc
//                                   path writing without it (ambivalence)
//   * i_hash                      — inode_hash_lock -> ES(i_lock) on insert;
//                                   __remove_inode_hash also writes the
//                                   neighbours' i_hash without their i_lock
//   * i_size, i_ctime, i_uid, i_gid, i_mode, i_flags, i_version,
//     i_size_seqcount             — ES(i_rwsem)
//   * i_op, i_fop, i_acl, i_default_acl, i_link, i_private
//                                 — EO(i_rwsem): set while the *directory's*
//                                   i_rwsem is held during creation
//   * i_io_list, dirtied_when     — EO(wb.list_lock in backing_dev_info)
//   * i_lru                       — inode_lru_lock, only half of the paths
//                                   additionally take i_lock (the
//                                   documentation claims i_lock)
//   * i_atime, i_mtime, i_rdev, i_generation, most i_data.* — no lock
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {

ObjectRef VfsKernel::AllocInode(SubclassId fs, Rng& rng) {
  FunctionScope alloc(*kernel_, "fs/inode.c", "alloc_inode", 200, 230);
  ObjectRef inode;
  if (fs == ids_.fs_ext4) {
    FunctionScope fsalloc(*kernel_, "fs/ext4/super.c", "ext4_alloc_inode", 950, 990);
    inode = kernel_->Create(ids_.inode, fs, 955);
  } else {
    inode = kernel_->Create(ids_.inode, fs, 210);
  }
  {
    // Object construction: unlocked on purpose; filtered as init context.
    FunctionScope init(*kernel_, "fs/inode.c", "inode_init_always", 240, 300);
    kernel_->Write(inode, im_.i_sb, 245);
    kernel_->Write(inode, im_.i_blkbits, 246);
    kernel_->Write(inode, im_.i_flags, 247);
    kernel_->AtomicWrite(inode, im_.i_count, 248);
    kernel_->Write(inode, im_.i_op, 249);
    kernel_->Write(inode, im_.i_fop, 250);
    kernel_->Write(inode, im_.i_ino, 251);
    kernel_->Write(inode, im_.i_opflags, 252);
    kernel_->Write(inode, im_.i_uid, 253);
    kernel_->Write(inode, im_.i_gid, 254);
    kernel_->Write(inode, im_.i_size, 255);
    kernel_->Write(inode, im_.i_blocks, 256);
    kernel_->Write(inode, im_.i_bytes, 257);
    kernel_->Write(inode, im_.i_state, 258);
    kernel_->Write(inode, im_.i_mapping, 259);
    kernel_->Write(inode, im_.d_host, 260);
    kernel_->Write(inode, im_.d_gfp_mask, 261);
    kernel_->Write(inode, im_.d_a_ops, 262);
    kernel_->Write(inode, im_.d_nrpages, 263);
    kernel_->Write(inode, im_.d_writeback_index, 264);
    kernel_->Write(inode, im_.i_generation, 265);
    kernel_->Write(inode, im_.i_rdev, 266);
    kernel_->Write(inode, im_.i_security, 267);
    kernel_->AtomicWrite(inode, im_.i_writecount, 268);
    kernel_->AtomicWrite(inode, im_.i_dio_count, 269);
  }
  (void)rng;
  return inode;
}

void VfsKernel::DestroyInode(const ObjectRef& inode) {
  FunctionScope evict(*kernel_, "fs/inode.c", "evict", 1500, 1560);
  kernel_->Write(inode, im_.i_state, 1510);
  FunctionScope destroy(*kernel_, "fs/inode.c", "destroy_inode", 1570, 1590);
  kernel_->Destroy(inode, 1575);
}

void VfsKernel::InsertInodeHash(const ObjectRef& inode, Rng& rng) {
  (void)rng;
  FunctionScope fn(*kernel_, "fs/inode.c", "__insert_inode_hash", 480, 494);
  kernel_->LockGlobal(inode_hash_lock_, 483);
  // Collision probe on the inode being inserted: i_hash reads happen under
  // the hash lock alone (find_inode-style), never under i_lock — which is
  // why the documented read rule for i_hash is never followed (Tab. 5).
  kernel_->Read(inode, im_.i_hash, 481);
  kernel_->Lock(inode, im_.i_lock, 484);
  kernel_->Write(inode, im_.i_hash, 486);
  kernel_->Unlock(inode, im_.i_lock, 492);
  kernel_->UnlockGlobal(inode_hash_lock_, 493);
  hash_chain_.push_back(inode);
}

void VfsKernel::RemoveInodeHash(const ObjectRef& inode, Rng& rng) {
  FunctionScope fn(*kernel_, "fs/inode.c", "__remove_inode_hash", 496, 515);
  kernel_->LockGlobal(inode_hash_lock_, 499);
  kernel_->Lock(inode, im_.i_lock, 500);
  kernel_->Write(inode, im_.i_hash, 503);
  // Unlinking from the doubly linked chain rewrites the neighbours' i_hash
  // while only the removed inode's i_lock is held (paper Sec. 7.4: the
  // "locking-rule mystery" around inode.i_hash; Tab. 8 row 1).
  size_t position = hash_chain_.size();
  for (size_t i = 0; i < hash_chain_.size(); ++i) {
    if (hash_chain_[i].addr == inode.addr) {
      position = i;
      break;
    }
  }
  if (plan_.remove_inode_hash_neighbors && position != hash_chain_.size() && rng.Chance(0.10)) {
    if (position > 0) {
      kernel_->Write(hash_chain_[position - 1], im_.i_hash, 507);
    }
    if (position + 1 < hash_chain_.size()) {
      kernel_->Write(hash_chain_[position + 1], im_.i_hash, 507);
    }
  }
  if (position != hash_chain_.size()) {
    hash_chain_.erase(hash_chain_.begin() + static_cast<ptrdiff_t>(position));
  }
  kernel_->Unlock(inode, im_.i_lock, 513);
  kernel_->UnlockGlobal(inode_hash_lock_, 514);
}

void VfsKernel::MarkInodeDirty(const ObjectRef& inode, Rng& rng) {
  FunctionScope fn(*kernel_, "fs/fs-writeback.c", "__mark_inode_dirty", 2100, 2160);
  kernel_->Lock(inode, im_.i_lock, 2110);
  kernel_->Read(inode, im_.i_state, 2112);
  kernel_->Write(inode, im_.i_state, 2115);
  kernel_->Unlock(inode, im_.i_lock, 2120);

  // Queue on the writeback list: the bdi's wb.list_lock protects the
  // inode's i_io_list and dirtied_when (EO relationship, Fig. 8).
  kernel_->Lock(bdi_, wm_.wb_list_lock, 2130);
  kernel_->Write(inode, im_.i_io_list, 2135);
  kernel_->Write(inode, im_.dirtied_when, 2136);
  if (rng.Chance(0.2)) {
    kernel_->Write(inode, im_.dirtied_time_when, 2137);
  }
  kernel_->Write(bdi_, wm_.wb_b_dirty, 2140);
  kernel_->Unlock(bdi_, wm_.wb_list_lock, 2145);
}

void VfsKernel::InodeAddBytes(const ObjectRef& inode, Rng& rng) {
  FunctionScope fn(*kernel_, "fs/stat.c", "inode_add_bytes", 640, 660);
  kernel_->Lock(inode, im_.i_lock, 643);
  kernel_->Read(inode, im_.i_bytes, 645);
  kernel_->Write(inode, im_.i_bytes, 646);
  kernel_->Write(inode, im_.i_blocks, 647);
  kernel_->Unlock(inode, im_.i_lock, 650);
  // ext4's delayed-allocation accounting updates i_blocks again without
  // i_lock in a separate path — the source of the documented rule's
  // ambivalence for i_blocks writes (Tab. 5).
  if (inode.subclass == ids_.fs_ext4 && rng.Chance(plan_.ext4_delalloc_i_blocks)) {
    FunctionScope da(*kernel_, "fs/ext4/inode.c", "ext4_da_update_reserve_space", 330, 360);
    kernel_->Write(inode, im_.i_blocks, 342);
  }
}

void VfsKernel::InodeSetFlags(const ObjectRef& inode, Rng& rng) {
  if (plan_.inode_set_flags_bug && rng.Chance(0.06)) {
    // The confirmed kernel bug (paper Sec. 7.5, Fig. 3): one code path
    // modifies i_flags without holding i_rwsem.
    FunctionScope fn(*kernel_, "fs/ext4/inode.c", "ext4_set_inode_flags", 4420, 4440);
    kernel_->Read(inode, im_.i_flags, 4428);
    kernel_->Write(inode, im_.i_flags, 4431);
    return;
  }
  FunctionScope fn(*kernel_, "fs/inode.c", "inode_set_flags", 2040, 2070);
  // Callers may already hold i_rwsem (notify_change does); take it only
  // when running standalone.
  bool already_held = kernel_->IsHeld(inode, im_.i_rwsem);
  if (!already_held) {
    kernel_->Lock(inode, im_.i_rwsem, 2045);
  }
  kernel_->Read(inode, im_.i_flags, 2052);
  kernel_->Write(inode, im_.i_flags, 2055);
  if (!already_held) {
    kernel_->Unlock(inode, im_.i_rwsem, 2060);
  }
}

void VfsKernel::UpdateTimes(const ObjectRef& inode, Rng& rng, bool ctime) {
  FunctionScope fn(*kernel_, "fs/inode.c", "file_update_time", 1700, 1730);
  // mtime is updated without locks throughout the kernel (Fig. 8 lists it
  // as "no lock needed"); ctime belongs to the i_rwsem family.
  kernel_->Write(inode, im_.i_mtime, 1710);
  if (ctime) {
    kernel_->Write(inode, im_.i_ctime, 1715);
  }
  if (rng.Chance(0.5)) {
    kernel_->Write(inode, im_.i_version, 1720);
  }
}

size_t VfsKernel::CreateFile(SubclassId fs, Rng& rng) {
  MountState& state = mount(fs);
  size_t parent_index = PickParentIndex(state, rng);
  const FileState& parent_entry =
      (parent_index == SIZE_MAX) ? state.root : state.files[parent_index];
  ObjectRef dir = parent_entry.inode;
  ObjectRef parent_dentry = parent_entry.dentry;

  FunctionScope vfs(*kernel_, "fs/namei.c", "path_openat", 3400, 3460);
  // Pin the parent dentry for the duration of the walk.
  kernel_->Lock(parent_dentry, dm_.d_lock, 3405);
  kernel_->Read(parent_dentry, dm_.d_count, 3406);
  kernel_->Write(parent_dentry, dm_.d_count, 3407);
  kernel_->Unlock(parent_dentry, dm_.d_lock, 3408);

  kernel_->Lock(dir, im_.i_rwsem, 3410);

  ObjectRef inode;
  {
    const char* file = "fs/ramfs/inode.c";
    const char* fn_name = "ramfs_mknod";
    uint32_t first = 60;
    uint32_t last = 100;
    if (fs == ids_.fs_ext4) {
      file = "fs/ext4/namei.c";
      fn_name = "ext4_create";
      first = 2380;
      last = 2430;
    } else if (fs == ids_.fs_tmpfs) {
      file = "mm/shmem.c";
      fn_name = "shmem_mknod";
      first = 2900;
      last = 2950;
    } else if (fs == ids_.fs_devtmpfs) {
      file = "drivers/base/devtmpfs.c";
      fn_name = "devtmpfs_create_node";
      first = 190;
      last = 230;
    } else if (fs == ids_.fs_sysfs) {
      file = "fs/sysfs/file.c";
      fn_name = "sysfs_add_file_mode_ns";
      first = 260;
      last = 300;
    }
    FunctionScope create(*kernel_, file, fn_name, first, last);
    inode = AllocInode(fs, rng);

    // New-inode fields are set while the directory's i_rwsem is held; from
    // the new inode's perspective that lock is embedded in another object
    // (Fig. 8: "EO(i_rwsem in inode) protects: i_op, i_link, i_fop, ...").
    kernel_->Write(inode, im_.i_op, first + 5);
    kernel_->Write(inode, im_.i_fop, first + 6);
    kernel_->Write(inode, im_.i_mode, first + 7);
    if (rng.Chance(0.5)) {
      kernel_->Write(inode, im_.i_acl, first + 8);
      kernel_->Write(inode, im_.i_default_acl, first + 9);
    }
    if (rng.Chance(0.3)) {
      kernel_->Write(inode, im_.i_private, first + 10);
    }
    if (fs == ids_.fs_ext4) {
      // Journaled create: account metadata in the running transaction.
      JournalStartHandle(rng);
    }
  }

  {
    FunctionScope hash(*kernel_, "fs/inode.c", "insert_inode_locked", 1380, 1400);
    InsertInodeHash(inode, rng);
  }

  // Directory metadata updates under its own (ES) i_rwsem.
  kernel_->Write(dir, im_.i_mtime, 3430);
  kernel_->Write(dir, im_.i_ctime, 3431);
  kernel_->Write(dir, im_.i_version, 3432);

  ObjectRef dentry = AllocDentry(inode, rng);
  DentryInstantiate(dentry, parent_dentry, inode, rng);

  // Add to the superblock inode list.
  kernel_->Lock(state.sb, sm_.s_inode_list_lock, 3440);
  kernel_->Write(state.sb, sm_.s_inodes, 3442);
  kernel_->Write(inode, im_.i_sb_list, 3443);
  kernel_->Unlock(state.sb, sm_.s_inode_list_lock, 3445);

  kernel_->Unlock(dir, im_.i_rwsem, 3455);

  FileState file_state;
  file_state.inode = inode;
  file_state.dentry = dentry;
  file_state.alive = true;
  file_state.parent = parent_index;
  state.files.push_back(file_state);
  return state.files.size() - 1;
}

size_t VfsKernel::MkdirDir(SubclassId fs, Rng& rng) {
  FunctionScope fn(*kernel_, "fs/namei.c", "vfs_mkdir", 3900, 3940);
  size_t index = CreateFile(fs, rng);
  MountState& state = mount(fs);
  FileState& dir = state.files[index];
  dir.is_dir = true;
  // Directory inodes carry the directory mode and a link for "..".
  kernel_->Lock(dir.inode, im_.i_rwsem, 3920);
  kernel_->Write(dir.inode, im_.i_mode, 3925);
  kernel_->Write(dir.inode, im_.i_dir_seq, 3926);
  kernel_->Unlock(dir.inode, im_.i_rwsem, 3930);
  return index;
}

size_t VfsKernel::LinkFile(SubclassId fs, size_t src_index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(src_index < state.files.size() && state.files[src_index].alive);
  LOCKDOC_CHECK(!state.files[src_index].is_dir);
  size_t parent_index = PickParentIndex(state, rng);
  const FileState& parent_entry =
      (parent_index == SIZE_MAX) ? state.root : state.files[parent_index];

  FunctionScope fn(*kernel_, "fs/namei.c", "vfs_link", 4200, 4280);
  kernel_->Lock(parent_entry.inode, im_.i_rwsem, 4205);
  // Bump the link count under the directory's i_rwsem, like vfs_unlink's
  // drop does (EO for the target inode).
  const ObjectRef inode = state.files[src_index].inode;
  kernel_->Read(inode, im_.i_nlink, 4215);
  kernel_->Write(inode, im_.i_nlink, 4216);
  kernel_->Write(inode, im_.i_ctime, 4217);
  kernel_->Write(parent_entry.inode, im_.i_mtime, 4220);

  ObjectRef dentry = AllocDentry(inode, rng);
  DentryInstantiate(dentry, parent_entry.dentry, inode, rng);
  kernel_->Unlock(parent_entry.inode, im_.i_rwsem, 4270);

  FileState link;
  link.inode = inode;
  link.dentry = dentry;
  link.alive = true;
  link.is_symlink = state.files[src_index].is_symlink;
  link.parent = parent_index;
  state.files.push_back(link);
  return state.files.size() - 1;
}

bool VfsKernel::RmdirDir(SubclassId fs, size_t index, Rng& rng) {
  if (!IsDirectory(fs, index) || !CanUnlink(fs, index)) {
    return false;
  }
  FunctionScope fn(*kernel_, "fs/namei.c", "vfs_rmdir", 3950, 3990);
  // Emptiness check: scan the directory under its own locks.
  MountState& state = mount(fs);
  const FileState& dir = state.files[index];
  kernel_->Lock(dir.inode, im_.i_rwsem, 3955);
  kernel_->Lock(dir.dentry, dm_.d_lock, 3960);
  kernel_->Read(dir.dentry, dm_.d_subdirs, 3962);
  kernel_->Unlock(dir.dentry, dm_.d_lock, 3964);
  kernel_->Unlock(dir.inode, im_.i_rwsem, 3966);
  UnlinkFile(fs, index, rng);
  return true;
}

size_t VfsKernel::CreateSymlink(SubclassId fs, Rng& rng) {
  size_t index = CreateFile(fs, rng);
  MountState& state = mount(fs);
  FileState& file = state.files[index];
  file.is_symlink = true;

  FunctionScope fn(*kernel_, "fs/ext4/namei.c", "ext4_symlink", 3050, 3100);
  kernel_->Lock(file.inode, im_.i_rwsem, 3060);
  kernel_->Write(file.inode, im_.i_link, 3070);
  kernel_->Write(file.inode, im_.i_size, 3071);
  kernel_->Write(file.inode, im_.i_size_seqcount, 3072);
  kernel_->Unlock(file.inode, im_.i_rwsem, 3080);
  return index;
}

void VfsKernel::UnlinkFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  LOCKDOC_CHECK(CanUnlink(fs, index));
  FileState& file = state.files[index];
  const FileState& parent_entry = ParentOf(state, file);
  ObjectRef dir = parent_entry.inode;
  ObjectRef parent_dentry = parent_entry.dentry;

  FunctionScope vfs(*kernel_, "fs/namei.c", "vfs_unlink", 4000, 4050);
  kernel_->Lock(dir, im_.i_rwsem, 4005);
  // Victim metadata: nlink drops (no-lock family), ctime under the victim's
  // i_rwsem would deadlock against the directory in real code ordering, so
  // the kernel writes it under the directory lock (EO for the victim).
  kernel_->Write(file.inode, im_.i_nlink, 4015);
  kernel_->Write(file.inode, im_.i_ctime, 4016);
  kernel_->Write(dir, im_.i_mtime, 4020);
  kernel_->Write(dir, im_.i_version, 4021);

  DentryKill(file.dentry, parent_dentry, rng);

  // The inode itself goes away only with its last directory entry (hard
  // links share it).
  bool last_link = true;
  for (size_t i = 0; i < state.files.size(); ++i) {
    if (i != index && state.files[i].alive && state.files[i].inode.addr == file.inode.addr) {
      last_link = false;
      break;
    }
  }
  if (last_link) {
    // Drop from the hash and the superblock list.
    RemoveInodeHash(file.inode, rng);
    kernel_->Lock(state.sb, sm_.s_inode_list_lock, 4035);
    kernel_->Write(state.sb, sm_.s_inodes, 4036);
    kernel_->Write(file.inode, im_.i_sb_list, 4037);
    kernel_->Unlock(state.sb, sm_.s_inode_list_lock, 4038);
  }
  kernel_->Unlock(dir, im_.i_rwsem, 4045);

  DestroyDentry(file.dentry);
  if (last_link) {
    DestroyInode(file.inode);
  }
  file.alive = false;
}

void VfsKernel::ReadFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  FunctionScope vfs(*kernel_, "fs/read_write.c", "vfs_read", 450, 490);
  FunctionScope fn(*kernel_, "mm/filemap.c", "generic_file_read_iter", 1800, 1860);
  // Readahead consults the backing device without locks.
  kernel_->Read(bdi_, wm_.ra_pages, 1805);
  if (rng.Chance(0.4)) {
    kernel_->Read(bdi_, wm_.io_pages, 1806);
    kernel_->Read(bdi_, wm_.capabilities, 1807);
  }
  // Lockless reads: i_size via the seqcount retry loop, mapping state.
  kernel_->Read(inode, im_.i_size_seqcount, 1810);
  kernel_->Read(inode, im_.i_size, 1811);
  kernel_->Read(inode, im_.d_nrpages, 1815);
  kernel_->Read(inode, im_.d_a_ops, 1816);
  kernel_->Read(inode, im_.d_host, 1817);
  kernel_->Read(inode, im_.i_blkbits, 1818);
  if (rng.Chance(0.6)) {
    kernel_->Read(inode, im_.i_mapping, 1820);
    kernel_->Read(inode, im_.d_gfp_mask, 1821);
  }
  // Permission and notification checks on the way in — all lockless.
  {
    FunctionScope perm(*kernel_, "fs/namei.c", "generic_permission", 800, 840);
    kernel_->Read(inode, im_.i_mode, 805);
    kernel_->Read(inode, im_.i_uid, 806);
    kernel_->Read(inode, im_.i_gid, 807);
    kernel_->Read(inode, im_.i_flags, 808);
    kernel_->Read(inode, im_.i_opflags, 809);
    if (rng.Chance(0.4)) {
      kernel_->Read(inode, im_.i_acl, 812);
      kernel_->Read(inode, im_.i_default_acl, 813);
      kernel_->Read(inode, im_.i_security, 814);
    }
  }
  if (rng.Chance(0.5)) {
    FunctionScope notify(*kernel_, "fs/notify/fsnotify.c", "fsnotify_parent", 60, 90);
    kernel_->Read(inode, im_.i_fsnotify_mask, 65);
    kernel_->Read(inode, im_.i_fsnotify_marks, 66);
  }
  if (rng.Chance(0.4)) {
    FunctionScope open_fn(*kernel_, "fs/open.c", "do_dentry_open", 900, 950);
    kernel_->Read(inode, im_.i_fop, 905);
    kernel_->Read(inode, im_.i_op, 906);
    kernel_->Read(inode, im_.i_sb, 907);
    kernel_->Read(inode, im_.i_flctx, 908);
    kernel_->Read(inode, im_.i_wb, 909);
    kernel_->Read(inode, im_.i_version, 910);
    if (inode.subclass == ids_.fs_ext4) {
      kernel_->Read(inode, im_.i_crypt_info, 915);
      kernel_->Read(inode, im_.d_flags, 916);
      kernel_->Read(inode, im_.d_private_data, 917);
      kernel_->Read(inode, im_.d_private_list, 918);
      kernel_->Read(inode, im_.d_nrexceptional, 919);
      kernel_->Read(inode, im_.d_writeback_index, 920);
      kernel_->Read(inode, im_.i_wb_frn_winner, 921);
      kernel_->Read(inode, im_.i_wb_frn_avg_time, 922);
      kernel_->Read(inode, im_.i_wb_frn_history, 923);
      kernel_->Read(inode, im_.dirtied_time_when, 924);
    }
  }
  if (rng.Chance(0.3)) {
    kernel_->Read(inode, im_.i_dir_seq, 1830);
    kernel_->Read(inode, im_.i_bytes, 1831);
    kernel_->Read(inode, im_.i_atime_nsec, 1832);
  }
  if (rng.Chance(0.25)) {
    // Cold read faults pages into the cache (i_lock accounting, as in the
    // mmap fault path).
    FunctionScope add(*kernel_, "mm/filemap.c", "add_to_page_cache", 2280, 2320);
    kernel_->Lock(inode, im_.i_lock, 2285);
    kernel_->Read(inode, im_.d_nrpages, 2290);
    kernel_->Write(inode, im_.d_nrpages, 2291);
    kernel_->Write(inode, im_.d_page_tree, 2292);
    kernel_->Unlock(inode, im_.i_lock, 2300);
  }
  TouchAtime(fs, index, rng);
}

void VfsKernel::WriteFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  FunctionScope vfs(*kernel_, "fs/read_write.c", "vfs_write", 540, 580);
  kernel_->Lock(inode, im_.i_rwsem, 545);

  if (fs == ids_.fs_ext4) {
    FunctionScope fn(*kernel_, "fs/ext4/file.c", "ext4_file_write_iter", 90, 160);
    JournalStartHandle(rng);
    kernel_->Read(inode, im_.i_size, 100);
    kernel_->Write(inode, im_.i_size_seqcount, 105);
    kernel_->Write(inode, im_.i_size, 106);
    kernel_->Write(inode, im_.i_version, 107);
    InodeAddBytes(inode, rng);
    BufferState& buffer = PickBuffer(rng);
    JournalDirtyBuffer(buffer, rng);
    if (plan_.ext4_committing_txn_peek && rng.Chance(0.03)) {
      // Peeks at the committing transaction holding i_rwsem ->
      // j_state_lock but not j_list_lock (Tab. 8 row 2).
      FunctionScope peek(*kernel_, "fs/ext4/inode.c", "ext4_writepages", 4660, 4700);
      kernel_->Lock(journal_, jm_.j_state_lock, 4680, AcquireMode::kShared);
      kernel_->Write(journal_, jm_.j_committing_transaction, 4685);
      kernel_->Unlock(journal_, jm_.j_state_lock, 4690);
    }
  } else {
    FunctionScope fn(*kernel_, "mm/shmem.c", "generic_perform_write", 3000, 3050);
    kernel_->Read(inode, im_.i_size, 3010);
    kernel_->Write(inode, im_.i_size_seqcount, 3015);
    kernel_->Write(inode, im_.i_size, 3016);
    // Page-cache accounting is an i_lock affair everywhere.
    kernel_->Lock(inode, im_.i_lock, 3019);
    kernel_->Write(inode, im_.d_nrpages, 3020);
    kernel_->Unlock(inode, im_.i_lock, 3021);
    InodeAddBytes(inode, rng);
  }

  UpdateTimes(inode, rng, /*ctime=*/true);
  MarkInodeDirty(inode, rng);
  kernel_->Unlock(inode, im_.i_rwsem, 575);
}

void VfsKernel::StatFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  FunctionScope fn(*kernel_, "fs/stat.c", "generic_fillattr", 30, 60);
  kernel_->Read(inode, im_.i_mode, 35);
  kernel_->Read(inode, im_.i_uid, 36);
  kernel_->Read(inode, im_.i_gid, 37);
  kernel_->Read(inode, im_.i_rdev, 38);
  kernel_->Read(inode, im_.i_atime, 39);
  kernel_->Read(inode, im_.i_mtime, 40);
  kernel_->Read(inode, im_.i_ctime, 41);
  kernel_->Read(inode, im_.i_size, 42);
  kernel_->Read(inode, im_.i_nlink, 43);
  kernel_->Read(inode, im_.i_generation, 44);
  // i_blocks and i_bytes require i_lock (their documented rule names it,
  // and writes honour it) — but every read path in the kernel takes it,
  // too, only for the i_bytes pair:
  kernel_->Lock(inode, im_.i_lock, 48);
  kernel_->Read(inode, im_.i_bytes, 50);
  kernel_->Unlock(inode, im_.i_lock, 52);
  // ...while i_blocks is read without (documented i_blocks read rule is
  // never followed -> "incorrect", Tab. 5).
  kernel_->Read(inode, im_.i_blocks, 54);

  // A writeback-adjacent minority of i_state reads happens under i_lock.
  if (rng.Chance(0.2)) {
    kernel_->Lock(inode, im_.i_lock, 56);
    kernel_->Read(inode, im_.i_state, 57);
    kernel_->Unlock(inode, im_.i_lock, 58);
  } else {
    kernel_->Read(inode, im_.i_state, 59);
  }

  // statfs-style superblock inspection piggybacks on many stat calls; the
  // dominant path holds s_umount, a sloppy minority reads bare (Tab. 7's
  // super_block violations).
  if (rng.Chance(0.3)) {
    FunctionScope statfs(*kernel_, "fs/statfs.c", "vfs_statfs", 70, 120);
    // Block-size and time-granularity queries are lockless everywhere.
    if (rng.Chance(0.3)) {
      kernel_->Read(state.sb, sm_.s_blocksize_bits, 72);
      kernel_->Read(state.sb, sm_.s_time_gran, 73);
    }
    if (rng.Chance(plan_.sb_flags_sloppiness)) {
      uint32_t line = 95 + static_cast<uint32_t>(rng.Below(12));
      kernel_->Read(state.sb, sm_.s_flags, line);
      kernel_->Read(state.sb, sm_.s_blocksize, line + 1);
      kernel_->Read(state.sb, sm_.s_magic, line + 2);
    } else {
      kernel_->Lock(state.sb, sm_.s_umount, 75, AcquireMode::kShared);
      kernel_->Read(state.sb, sm_.s_flags, 80);
      kernel_->Read(state.sb, sm_.s_blocksize, 81);
      kernel_->Read(state.sb, sm_.s_magic, 82);
      kernel_->Read(state.sb, sm_.s_maxbytes, 83);
      if (rng.Chance(0.5)) {
        kernel_->Read(state.sb, sm_.s_type, 84);
        kernel_->Read(state.sb, sm_.s_op, 85);
        kernel_->Read(state.sb, sm_.s_id, 86);
        kernel_->Read(state.sb, sm_.s_fs_info, 87);
        kernel_->Read(state.sb, sm_.s_root, 88);
      }
      if (rng.Chance(0.3)) {
        kernel_->Read(state.sb, sm_.s_dev, 91);
        kernel_->Read(state.sb, sm_.s_iflags, 92);
        kernel_->Read(state.sb, sm_.s_mode, 93);
        kernel_->Read(state.sb, sm_.s_bdi, 94);
      }
      kernel_->Unlock(state.sb, sm_.s_umount, 90);
    }
  }
}

void VfsKernel::ChmodFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  FunctionScope fn(*kernel_, "fs/open.c", "chmod_common", 520, 560);
  kernel_->Lock(inode, im_.i_rwsem, 525);
  FunctionScope setattr(*kernel_, "fs/attr.c", "notify_change", 200, 260);
  kernel_->Read(inode, im_.i_mode, 210);
  kernel_->Write(inode, im_.i_mode, 215);
  kernel_->Write(inode, im_.i_ctime, 216);
  kernel_->Unlock(inode, im_.i_rwsem, 255);
  // Flag propagation runs after the attribute change, taking (or, in the
  // buggy ext4 path, failing to take) i_rwsem itself.
  InodeSetFlags(inode, rng);
  MarkInodeDirty(inode, rng);
}

void VfsKernel::ChownFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  FunctionScope fn(*kernel_, "fs/open.c", "chown_common", 600, 640);
  kernel_->Lock(inode, im_.i_rwsem, 605);
  FunctionScope setattr(*kernel_, "fs/attr.c", "notify_change", 200, 260);
  kernel_->Write(inode, im_.i_uid, 220);
  kernel_->Write(inode, im_.i_gid, 221);
  kernel_->Write(inode, im_.i_ctime, 222);
  kernel_->Unlock(inode, im_.i_rwsem, 635);
  MarkInodeDirty(inode, rng);
}

void VfsKernel::TouchAtime(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  FunctionScope fn(*kernel_, "fs/inode.c", "touch_atime", 1640, 1680);
  kernel_->Read(inode, im_.i_atime, 1650);
  if (rng.Chance(0.7)) {
    kernel_->Write(inode, im_.i_atime, 1660);
    kernel_->Write(inode, im_.i_atime_nsec, 1661);
  }
}

void VfsKernel::ReadSymlink(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;
  LOCKDOC_CHECK(state.files[index].is_symlink);

  FunctionScope fn(*kernel_, "fs/namei.c", "generic_readlink", 4700, 4720);
  kernel_->RcuReadLock(4705);
  kernel_->Read(inode, im_.i_link, 4710);
  kernel_->Read(inode, im_.i_size, 4711);
  kernel_->RcuReadUnlock(4715);
  (void)rng;
}

void VfsKernel::EvictLru(SubclassId fs, Rng& rng) {
  MountState& state = mount(fs);
  if (state.files.empty()) {
    return;
  }
  // Scan for a live file from a random start (the files vector accumulates
  // dead slots under inode churn).
  size_t start = rng.Below(state.files.size());
  size_t index = state.files.size();
  for (size_t i = 0; i < state.files.size(); ++i) {
    size_t candidate = (start + i) % state.files.size();
    if (state.files[candidate].alive) {
      index = candidate;
      break;
    }
  }
  if (index == state.files.size()) {
    return;
  }
  const ObjectRef& inode = state.files[index].inode;

  // Two coexisting LRU disciplines (the documentation claims i_lock; only
  // half of the code agrees — Tab. 5 shows sr ~= 50 % for i_lru).
  if (plan_.lru_lock_inversion && rng.Chance(0.15)) {
    // Pruning walks the LRU list first and only then pins the inode —
    // taking the two locks in the opposite order to inode_lru_list_add.
    FunctionScope fn(*kernel_, "fs/inode.c", "prune_icache_sb", 1920, 1990);
    kernel_->LockGlobal(inode_lru_lock_, 1925);
    kernel_->Lock(inode, im_.i_lock, 1930);
    kernel_->Read(inode, im_.i_state, 1936);
    kernel_->Unlock(inode, im_.i_lock, 1940);
    kernel_->UnlockGlobal(inode_lru_lock_, 1945);
    return;
  }

  bool read_only = rng.Chance(0.3);  // LRU pruning scans only inspect.
  if (rng.Chance(0.5)) {
    FunctionScope fn(*kernel_, "fs/inode.c", "inode_lru_list_add", 390, 410);
    kernel_->Lock(inode, im_.i_lock, 393);
    kernel_->LockGlobal(inode_lru_lock_, 395);
    kernel_->Read(inode, im_.i_lru, 397);
    if (!read_only) {
      kernel_->Write(inode, im_.i_lru, 398);
      kernel_->Write(state.sb, sm_.s_inode_lru, 399);
    }
    kernel_->UnlockGlobal(inode_lru_lock_, 401);
    kernel_->Unlock(inode, im_.i_lock, 403);
  } else {
    FunctionScope fn(*kernel_, "fs/inode.c", "inode_lru_list_del", 415, 430);
    kernel_->LockGlobal(inode_lru_lock_, 418);
    kernel_->Read(inode, im_.i_lru, 420);
    if (!read_only) {
      kernel_->Write(inode, im_.i_lru, 421);
      kernel_->Write(state.sb, sm_.s_inode_lru, 422);
    }
    kernel_->UnlockGlobal(inode_lru_lock_, 425);
  }
}

void VfsKernel::TruncateFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  FunctionScope fn(*kernel_, "fs/open.c", "do_truncate", 400, 450);
  kernel_->Lock(inode, im_.i_rwsem, 405);
  if (fs == ids_.fs_ext4) {
    FunctionScope ext4(*kernel_, "fs/ext4/inode.c", "ext4_truncate", 3900, 3970);
    JournalStartHandle(rng);
    kernel_->Read(inode, im_.i_size, 3910);
    kernel_->Write(inode, im_.i_size_seqcount, 3915);
    kernel_->Write(inode, im_.i_size, 3916);
    kernel_->Write(inode, im_.i_dir_seq, 3917);
    BufferState& buffer = PickBuffer(rng);
    JournalDirtyBuffer(buffer, rng);
  } else {
    FunctionScope simple(*kernel_, "mm/shmem.c", "shmem_setattr", 2960, 2995);
    kernel_->Read(inode, im_.i_size, 2965);
    kernel_->Write(inode, im_.i_size_seqcount, 2970);
    kernel_->Write(inode, im_.i_size, 2971);
    kernel_->Lock(inode, im_.i_lock, 2973);
    kernel_->Write(inode, im_.d_nrpages, 2974);
    kernel_->Unlock(inode, im_.i_lock, 2975);
  }
  kernel_->Write(inode, im_.i_ctime, 430);
  InodeAddBytes(inode, rng);
  kernel_->Unlock(inode, im_.i_rwsem, 445);
  MarkInodeDirty(inode, rng);
}

void VfsKernel::FsyncFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  FunctionScope fn(*kernel_, "fs/sync.c", "vfs_fsync_range", 300, 360);
  kernel_->Lock(inode, im_.i_rwsem, 305, AcquireMode::kShared);
  kernel_->Read(inode, im_.i_size, 310);
  kernel_->Read(inode, im_.d_nrpages, 311);
  kernel_->Read(inode, im_.d_host, 312);
  // Pin the superblock like the sync path does; the writeback-index
  // discipline (EO(s_umount), Fig. 8) holds here too.
  kernel_->Lock(state.sb, sm_.s_umount, 315, AcquireMode::kShared);
  WritebackSingleInode(inode, rng);
  kernel_->Unlock(state.sb, sm_.s_umount, 340);
  if (fs == ids_.fs_ext4 && rng.Chance(0.5)) {
    // Metadata fsync forces a commit-sequence check on the journal.
    FunctionScope jfn(*kernel_, "fs/ext4/fsync.c", "ext4_sync_file", 80, 130);
    kernel_->Lock(journal_, jm_.j_state_lock, 95, AcquireMode::kShared);
    kernel_->Read(journal_, jm_.j_commit_sequence, 100);
    kernel_->Read(journal_, jm_.j_commit_request, 101);
    kernel_->Unlock(journal_, jm_.j_state_lock, 110);
  }
  kernel_->Unlock(inode, im_.i_rwsem, 350);
}

void VfsKernel::MmapFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& inode = state.files[index].inode;

  // Fault-in path: address-space state is read locklessly, page-cache
  // insertion accounts under i_lock.
  FunctionScope fn(*kernel_, "mm/filemap.c", "filemap_fault", 2200, 2270);
  kernel_->Read(inode, im_.i_size_seqcount, 2205);
  kernel_->Read(inode, im_.i_size, 2206);
  kernel_->Read(inode, im_.d_host, 2210);
  kernel_->Read(inode, im_.d_a_ops, 2211);
  kernel_->Read(inode, im_.d_gfp_mask, 2212);
  kernel_->Read(inode, im_.d_page_tree, 2213);
  kernel_->Read(inode, im_.d_flags, 2214);
  if (rng.Chance(0.5)) {
    kernel_->Read(inode, im_.d_nrexceptional, 2220);
    kernel_->Read(inode, im_.d_private_data, 2221);
  }
  if (rng.Chance(0.6)) {
    FunctionScope add(*kernel_, "mm/filemap.c", "add_to_page_cache", 2280, 2320);
    kernel_->Lock(inode, im_.i_lock, 2285);
    kernel_->Read(inode, im_.d_nrpages, 2290);
    kernel_->Write(inode, im_.d_nrpages, 2291);
    kernel_->Write(inode, im_.d_page_tree, 2292);
    kernel_->Unlock(inode, im_.i_lock, 2300);
  }
}

void VfsKernel::SyncFilesystem(SubclassId fs, Rng& rng) {
  MountState& state = mount(fs);
  FunctionScope fn(*kernel_, "fs/sync.c", "sync_filesystem", 60, 100);
  kernel_->Lock(state.sb, sm_.s_umount, 65, AcquireMode::kShared);
  kernel_->Read(state.sb, sm_.s_flags, 70);
  // Walk dirty inodes (bounded sample).
  size_t visited = 0;
  for (FileState& file : state.files) {
    if (visited >= 4) {
      break;
    }
    if (!file.alive) {
      continue;
    }
    WritebackSingleInode(file.inode, rng);
    ++visited;
  }
  kernel_->Read(state.sb, sm_.s_inodes_wb, 85);
  kernel_->Write(state.sb, sm_.s_wb_err, 90);
  kernel_->Write(state.sb, sm_.s_inodes_wb, 91);
  kernel_->Unlock(state.sb, sm_.s_umount, 95);

  // Superblock reference counting under the global sb_lock.
  {
    FunctionScope grab(*kernel_, "fs/super.c", "grab_super", 980, 1000);
    kernel_->LockGlobal(sb_lock_, 983);
    kernel_->Read(state.sb, sm_.s_count, 985);
    kernel_->Write(state.sb, sm_.s_count, 986);
    if (rng.Chance(0.4)) {
      kernel_->Read(state.sb, sm_.s_security, 988);
      kernel_->Write(state.sb, sm_.s_mounts, 989);
    }
    kernel_->UnlockGlobal(sb_lock_, 992);
  }
}

}  // namespace lockdoc
