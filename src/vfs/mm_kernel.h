// MmKernel — the simulated memory-management subsystem driving the range
// lock model end-to-end. It models a per-task mm_struct whose address space
// is guarded by mmap_lock, a range lock over [start, end) spans: operations
// take mmap_lock only over the virtual-address span they touch, so two
// operations on disjoint regions of the same address space do not exclude
// each other. vm_area_structs are allocated with their ground-truth span
// (CreateWithSpan), which is what the overlap-aware analysis later matches
// held ranges against.
//
// Locking discipline (the ground truth the miner should recover):
//   - vm_area_struct fields: accessed only while mmap_lock is held over a
//     span overlapping the vma (shared for reads, exclusive for mutation).
//   - mm_struct counters (map_count, total_vm, hiwater_rss): under the
//     mm's page_table_lock spinlock, nested inside mmap_lock.
//   - mm_struct.locked_vm: under the global vm_committed_lock, nested
//     inside page_table_lock — giving the lock-order chain
//     mmap_lock -> page_table_lock -> vm_committed_lock.
//   - mm_struct.flags: lock-free (set once at fork, read-only afterwards).
//
// FaultPlan deviations:
//   - mmap_nonoverlap_write: writes a vma while mmap_lock is held over a
//     span that does NOT overlap it — the seeded range-lock bug.
//   - mm_lock_cycle: a stats path takes vm_committed_lock before mmap_lock,
//     closing a 3-class cycle for the lock-order pass.
#ifndef SRC_VFS_MM_KERNEL_H_
#define SRC_VFS_MM_KERNEL_H_

#include <string>
#include <vector>

#include "src/sim/kernel.h"
#include "src/util/rng.h"
#include "src/vfs/types.h"
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {

class MmKernel {
 public:
  // `ids` must come from BuildVfsMmRegistry (has_mm() true).
  MmKernel(SimKernel* kernel, const TypeRegistry* registry, const VfsIds& ids, FaultPlan plan);
  ~MmKernel();

  MmKernel(const MmKernel&) = delete;
  MmKernel& operator=(const MmKernel&) = delete;

  // Allocates the mm_struct for `task` (boot-time, filtered as init).
  void ForkMm(uint32_t task);
  // Tears down every vma and the mm itself (filtered as teardown).
  void ExitMm(uint32_t task);

  // --- Steady-state operations (one op per call, kernel quiescent after) ---

  // Maps a fresh region: mmap_lock exclusive over the new span, vma
  // created with its ground-truth span, counters updated.
  void MmapRegion(uint32_t task, Rng& rng);
  // Unmaps a random live region.
  void MunmapRegion(uint32_t task, Rng& rng);
  // Faults one page: mmap_lock shared over just that page, vma fields
  // read, rss accounting under page_table_lock.
  void PageFault(uint32_t task, Rng& rng);
  // Changes protection on a sub-span of a region (exclusive hold over the
  // sub-span only).
  void MprotectRegion(uint32_t task, Rng& rng);
  // Moves a region: two simultaneous non-overlapping exclusive holds of the
  // SAME mmap_lock instance (old span + destination span).
  void MremapRegion(uint32_t task, Rng& rng);
  // /proc/<pid>/status-style read of the mm counters.
  void ReadStats(uint32_t task, Rng& rng);

  size_t region_count(uint32_t task) const;

  // The documented locking rules for the mm types, same grammar as
  // VfsKernel::DocumentedRulesText(). Kept separate so base-vfs analyses
  // are byte-identical to before the mm subsystem existed.
  static std::string DocumentedRulesText();

 private:
  struct Region {
    ObjectRef vma;
    uint64_t start = 0;
    uint64_t end = 0;
    bool alive = false;
  };
  struct MmState {
    uint32_t task = 0;
    ObjectRef mm;
    std::vector<Region> regions;
    uint64_t next_vaddr = 0;
  };

  MmState& StateOf(uint32_t task);
  // Picks a live region index, or SIZE_MAX if none.
  size_t PickRegion(const MmState& state, Rng& rng) const;
  // Carves a fresh page-aligned span of `pages` pages out of the task's
  // address space.
  uint64_t CarveSpan(MmState& state, size_t pages);
  // Creates the vma + field writes under an already-held exclusive
  // mmap_lock hold covering [start, end).
  Region BuildVma(MmState& state, uint64_t start, uint64_t end, uint32_t line);
  // map_count/total_vm accounting under page_table_lock (+ locked_vm under
  // vm_committed_lock); caller holds mmap_lock.
  void AccountVm(MmState& state, bool grow, uint32_t line);

  // FaultPlan-gated deviations, called from the steady-state ops.
  void NonOverlapWrite(MmState& state, Rng& rng);
  void CycleStatsRead(MmState& state, Rng& rng);

  SimKernel* kernel_;
  const TypeRegistry* registry_;
  VfsIds ids_;
  FaultPlan plan_;
  Rng fault_rng_;

  GlobalLock vm_committed_lock_;

  struct MmMembers {
    MemberIndex mmap, map_count, page_table_lock, mmap_lock, hiwater_rss, total_vm, locked_vm,
        flags, mmap_base, start_brk, brk, mm_users;
  };
  struct VmaMembers {
    MemberIndex vm_start, vm_end, vm_next, vm_prev, vm_mm, vm_page_prot, vm_flags, vm_pgoff,
        vm_file, vm_private_data;
  };
  MmMembers mm_{};
  VmaMembers va_{};

  std::vector<MmState> states_;
};

}  // namespace lockdoc

#endif  // SRC_VFS_MM_KERNEL_H_
