#include "src/vfs/mm_kernel.h"

#include <cstdint>

#include "src/util/logging.h"

namespace lockdoc {

namespace {
constexpr uint64_t kPageSize = 4096;
// Each task's mappings live in a disjoint slice of the fake user address
// space so spans never collide across tasks.
constexpr uint64_t kTaskSliceBase = 0x10000000ULL;
constexpr uint64_t kTaskSliceSize = 0x10000000ULL;
}  // namespace

MmKernel::MmKernel(SimKernel* kernel, const TypeRegistry* registry, const VfsIds& ids,
                   FaultPlan plan)
    : kernel_(kernel), registry_(registry), ids_(ids), plan_(plan),
      fault_rng_(plan.seed ^ 0x33aaULL) {
  LOCKDOC_CHECK(kernel_ != nullptr);
  LOCKDOC_CHECK(registry_ != nullptr);
  LOCKDOC_CHECK(ids_.has_mm() && "MmKernel needs BuildVfsMmRegistry ids");

  const TypeRegistry& r = *registry_;
  auto m = [&](std::string_view name) { return M(r, ids_.mm_struct, name); };
  mm_ = {m("mmap"),        m("map_count"), m("page_table_lock"), m("mmap_lock"),
         m("hiwater_rss"), m("total_vm"),  m("locked_vm"),       m("flags"),
         m("mmap_base"),   m("start_brk"), m("brk"),             m("mm_users")};

  auto v = [&](std::string_view name) { return M(r, ids_.vm_area_struct, name); };
  va_ = {v("vm_start"), v("vm_end"),   v("vm_next"), v("vm_prev"),         v("vm_mm"),
         v("vm_page_prot"), v("vm_flags"), v("vm_pgoff"), v("vm_file"),
         v("vm_private_data")};

  vm_committed_lock_ = kernel_->DefineStaticLock("vm_committed_lock", LockType::kSpinlock);
}

MmKernel::~MmKernel() = default;

MmKernel::MmState& MmKernel::StateOf(uint32_t task) {
  for (MmState& state : states_) {
    if (state.task == task) {
      return state;
    }
  }
  LOCKDOC_CHECK(false && "task has no mm (ForkMm not called)");
  static MmState dummy;
  return dummy;
}

size_t MmKernel::PickRegion(const MmState& state, Rng& rng) const {
  size_t count = state.regions.size();
  if (count == 0) {
    return SIZE_MAX;
  }
  size_t start = rng.Below(count);
  for (size_t i = 0; i < count; ++i) {
    size_t candidate = (start + i) % count;
    if (state.regions[candidate].alive) {
      return candidate;
    }
  }
  return SIZE_MAX;
}

uint64_t MmKernel::CarveSpan(MmState& state, size_t pages) {
  uint64_t start = state.next_vaddr;
  state.next_vaddr += static_cast<uint64_t>(pages + 1) * kPageSize;  // Guard page between vmas.
  LOCKDOC_CHECK(state.next_vaddr <
                kTaskSliceBase + (state.task + 1) * kTaskSliceSize);
  return start;
}

void MmKernel::ForkMm(uint32_t task) {
  // Boot-time: mm_alloc is on the init/teardown black list, so the
  // lock-free initialization writes below are filtered out of the analysis.
  FunctionScope fn(*kernel_, "kernel/fork.c", "mm_alloc", 1000, 1060);
  MmState state;
  state.task = task;
  state.mm = kernel_->Create(ids_.mm_struct, kNoSubclass, 1005);
  state.next_vaddr = kTaskSliceBase + task * kTaskSliceSize;
  kernel_->Write(state.mm, mm_.mmap, 1010);
  kernel_->Write(state.mm, mm_.map_count, 1011);
  kernel_->Write(state.mm, mm_.total_vm, 1012);
  kernel_->Write(state.mm, mm_.locked_vm, 1013);
  kernel_->Write(state.mm, mm_.hiwater_rss, 1014);
  kernel_->Write(state.mm, mm_.flags, 1015);
  kernel_->Write(state.mm, mm_.mmap_base, 1016);
  kernel_->Write(state.mm, mm_.start_brk, 1017);
  kernel_->Write(state.mm, mm_.brk, 1018);
  kernel_->AtomicWrite(state.mm, mm_.mm_users, 1020);
  states_.push_back(state);
}

void MmKernel::ExitMm(uint32_t task) {
  MmState& state = StateOf(task);
  FunctionScope fn(*kernel_, "mm/mmap.c", "exit_mmap", 2900, 2960);
  for (Region& region : state.regions) {
    if (region.alive) {
      kernel_->Destroy(region.vma, 2920);
      region.alive = false;
    }
  }
  kernel_->AtomicWrite(state.mm, mm_.mm_users, 2940);
  kernel_->Destroy(state.mm, 2950);
  state.mm = ObjectRef{};
}

MmKernel::Region MmKernel::BuildVma(MmState& state, uint64_t start, uint64_t end,
                                    uint32_t line) {
  Region region;
  region.start = start;
  region.end = end;
  region.alive = true;
  // The vma is allocated with its ground-truth span: analysis later uses it
  // to decide which mmap_lock holds cover accesses to this object.
  region.vma = kernel_->CreateWithSpan(ids_.vm_area_struct, kNoSubclass, start, end, line);
  kernel_->Write(region.vma, va_.vm_start, line + 1);
  kernel_->Write(region.vma, va_.vm_end, line + 2);
  kernel_->Write(region.vma, va_.vm_mm, line + 3);
  kernel_->Write(region.vma, va_.vm_page_prot, line + 4);
  kernel_->Write(region.vma, va_.vm_flags, line + 5);
  kernel_->Write(region.vma, va_.vm_pgoff, line + 6);
  kernel_->Write(region.vma, va_.vm_file, line + 7);
  kernel_->Write(region.vma, va_.vm_next, line + 8);
  kernel_->Write(region.vma, va_.vm_prev, line + 9);
  return region;
}

void MmKernel::AccountVm(MmState& state, bool grow, uint32_t line) {
  FunctionScope fn(*kernel_, "mm/util.c", "vm_stat_account", 300, 340);
  kernel_->Lock(state.mm, mm_.page_table_lock, 305);
  kernel_->Write(state.mm, mm_.map_count, 310);
  kernel_->Write(state.mm, mm_.total_vm, 311);
  if (grow) {
    kernel_->Write(state.mm, mm_.hiwater_rss, 315);
  }
  // Committed-memory accounting nests the global lock innermost.
  kernel_->LockGlobal(vm_committed_lock_, 320);
  kernel_->Read(state.mm, mm_.locked_vm, 321);
  kernel_->Write(state.mm, mm_.locked_vm, 322);
  kernel_->UnlockGlobal(vm_committed_lock_, 323);
  kernel_->Unlock(state.mm, mm_.page_table_lock, 330);
  (void)line;
}

void MmKernel::NonOverlapWrite(MmState& state, Rng& rng) {
  // BUG (FaultPlan::mmap_nonoverlap_write): "adjust" a neighbouring vma
  // while mmap_lock is only held over the freshly mapped span — the hold
  // does not overlap the neighbour, so the write is effectively unlocked.
  size_t victim = PickRegion(state, rng);
  if (victim == SIZE_MAX) {
    return;
  }
  Region& region = state.regions[victim];
  FunctionScope fn(*kernel_, "mm/mmap.c", "vma_adjust_neighbors", 820, 860);
  kernel_->Write(region.vma, va_.vm_flags, 830);
  kernel_->Write(region.vma, va_.vm_private_data, 831);
}

void MmKernel::CycleStatsRead(MmState& state, Rng& rng) {
  // BUG (FaultPlan::mm_lock_cycle): takes vm_committed_lock *before*
  // mmap_lock, the reverse of AccountVm's nesting — together they close the
  // cycle mmap_lock -> page_table_lock -> vm_committed_lock -> mmap_lock.
  size_t victim = PickRegion(state, rng);
  if (victim == SIZE_MAX) {
    return;
  }
  Region& region = state.regions[victim];
  FunctionScope fn(*kernel_, "mm/util.c", "vm_committed_peek", 420, 470);
  kernel_->LockGlobal(vm_committed_lock_, 425);
  kernel_->Read(state.mm, mm_.locked_vm, 430);
  kernel_->AcquireRange(state.mm, mm_.mmap_lock, region.start, region.end, 435,
                        AcquireMode::kShared);
  kernel_->Read(region.vma, va_.vm_start, 440);
  kernel_->Read(region.vma, va_.vm_end, 441);
  kernel_->ReleaseRange(state.mm, mm_.mmap_lock, region.start, region.end, 450);
  kernel_->UnlockGlobal(vm_committed_lock_, 455);
}

void MmKernel::MmapRegion(uint32_t task, Rng& rng) {
  MmState& state = StateOf(task);
  FunctionScope fn(*kernel_, "mm/mmap.c", "do_mmap", 1300, 1390);
  size_t pages = 1 + rng.Below(8);
  uint64_t start = CarveSpan(state, pages);
  uint64_t end = start + pages * kPageSize;
  kernel_->AcquireRange(state.mm, mm_.mmap_lock, start, end, 1310);
  Region region = BuildVma(state, start, end, 1320);
  kernel_->Write(state.mm, mm_.mmap, 1340);
  if (plan_.mmap_nonoverlap_write && fault_rng_.Chance(0.2)) {
    NonOverlapWrite(state, rng);
  }
  AccountVm(state, /*grow=*/true, 1350);
  kernel_->ReleaseRange(state.mm, mm_.mmap_lock, start, end, 1380);
  state.regions.push_back(region);
}

void MmKernel::MunmapRegion(uint32_t task, Rng& rng) {
  MmState& state = StateOf(task);
  size_t index = PickRegion(state, rng);
  if (index == SIZE_MAX) {
    return;
  }
  Region& region = state.regions[index];
  FunctionScope fn(*kernel_, "mm/mmap.c", "do_munmap", 2700, 2780);
  kernel_->AcquireRange(state.mm, mm_.mmap_lock, region.start, region.end, 2710);
  kernel_->Read(region.vma, va_.vm_start, 2720);
  kernel_->Read(region.vma, va_.vm_end, 2721);
  kernel_->Write(region.vma, va_.vm_flags, 2725);  // VM_DEAD.
  kernel_->Write(region.vma, va_.vm_next, 2726);
  kernel_->Write(region.vma, va_.vm_prev, 2727);
  kernel_->Write(state.mm, mm_.mmap, 2730);
  AccountVm(state, /*grow=*/false, 2740);
  kernel_->ReleaseRange(state.mm, mm_.mmap_lock, region.start, region.end, 2760);
  kernel_->Destroy(region.vma, 2770);
  region.alive = false;
}

void MmKernel::PageFault(uint32_t task, Rng& rng) {
  MmState& state = StateOf(task);
  size_t index = PickRegion(state, rng);
  if (index == SIZE_MAX) {
    return;
  }
  Region& region = state.regions[index];
  FunctionScope fn(*kernel_, "mm/memory.c", "handle_mm_fault", 4000, 4090);
  // Fault locks only the faulting page, not the whole vma.
  size_t pages = (region.end - region.start) / kPageSize;
  uint64_t page = region.start + rng.Below(pages) * kPageSize;
  kernel_->AcquireRange(state.mm, mm_.mmap_lock, page, page + kPageSize, 4010,
                        AcquireMode::kShared);
  kernel_->Read(region.vma, va_.vm_start, 4020);
  kernel_->Read(region.vma, va_.vm_end, 4021);
  kernel_->Read(region.vma, va_.vm_flags, 4022);
  kernel_->Read(region.vma, va_.vm_page_prot, 4023);
  kernel_->Lock(state.mm, mm_.page_table_lock, 4040);
  kernel_->Write(state.mm, mm_.hiwater_rss, 4045);
  kernel_->Unlock(state.mm, mm_.page_table_lock, 4050);
  kernel_->ReleaseRange(state.mm, mm_.mmap_lock, page, page + kPageSize, 4080);
}

void MmKernel::MprotectRegion(uint32_t task, Rng& rng) {
  MmState& state = StateOf(task);
  size_t index = PickRegion(state, rng);
  if (index == SIZE_MAX) {
    return;
  }
  Region& region = state.regions[index];
  FunctionScope fn(*kernel_, "mm/mprotect.c", "mprotect_fixup", 500, 570);
  // Protect a sub-span: hold the lock over just the affected pages.
  size_t pages = (region.end - region.start) / kPageSize;
  size_t first = rng.Below(pages);
  size_t count = 1 + rng.Below(pages - first);
  uint64_t start = region.start + first * kPageSize;
  uint64_t end = start + count * kPageSize;
  kernel_->AcquireRange(state.mm, mm_.mmap_lock, start, end, 510);
  kernel_->Read(region.vma, va_.vm_flags, 520);
  kernel_->Write(region.vma, va_.vm_flags, 525);
  kernel_->Write(region.vma, va_.vm_page_prot, 526);
  kernel_->ReleaseRange(state.mm, mm_.mmap_lock, start, end, 560);
}

void MmKernel::MremapRegion(uint32_t task, Rng& rng) {
  MmState& state = StateOf(task);
  size_t index = PickRegion(state, rng);
  if (index == SIZE_MAX) {
    return;
  }
  // Note: `region` may dangle once regions grows; copy what we need.
  Region old_region = state.regions[index];
  FunctionScope fn(*kernel_, "mm/mremap.c", "move_vma", 600, 690);
  size_t pages = (old_region.end - old_region.start) / kPageSize;
  uint64_t new_start = CarveSpan(state, pages);
  uint64_t new_end = new_start + pages * kPageSize;
  // Two simultaneous exclusive holds of the SAME mmap_lock instance over
  // disjoint spans — the multiplicity case the subsequence enumerator and
  // lock-order pass must handle.
  kernel_->AcquireRange(state.mm, mm_.mmap_lock, old_region.start, old_region.end, 610);
  kernel_->AcquireRange(state.mm, mm_.mmap_lock, new_start, new_end, 611);
  kernel_->Read(state.regions[index].vma, va_.vm_start, 620);
  kernel_->Read(state.regions[index].vma, va_.vm_flags, 621);
  kernel_->Write(state.regions[index].vma, va_.vm_flags, 625);  // VM_DEAD on the old vma.
  Region moved = BuildVma(state, new_start, new_end, 630);
  kernel_->Write(state.mm, mm_.mmap, 650);
  AccountVm(state, /*grow=*/true, 655);
  kernel_->ReleaseRange(state.mm, mm_.mmap_lock, new_start, new_end, 670);
  kernel_->ReleaseRange(state.mm, mm_.mmap_lock, old_region.start, old_region.end, 671);
  kernel_->Destroy(state.regions[index].vma, 680);
  state.regions[index].alive = false;
  state.regions.push_back(moved);
}

void MmKernel::ReadStats(uint32_t task, Rng& rng) {
  MmState& state = StateOf(task);
  FunctionScope fn(*kernel_, "fs/proc/task_mmu.c", "task_mem", 50, 120);
  kernel_->Lock(state.mm, mm_.page_table_lock, 60);
  kernel_->Read(state.mm, mm_.map_count, 65);
  kernel_->Read(state.mm, mm_.total_vm, 66);
  kernel_->Read(state.mm, mm_.hiwater_rss, 67);
  kernel_->Unlock(state.mm, mm_.page_table_lock, 70);
  // mm->flags is set once at fork and read lock-free afterwards.
  kernel_->Read(state.mm, mm_.flags, 80);
  kernel_->Read(state.mm, mm_.mmap_base, 81);
  kernel_->AtomicRead(state.mm, mm_.mm_users, 85);
  if (plan_.mm_lock_cycle && fault_rng_.Chance(0.35)) {
    CycleStatsRead(state, rng);
  }
}

size_t MmKernel::region_count(uint32_t task) const {
  for (const MmState& state : states_) {
    if (state.task == task) {
      size_t alive = 0;
      for (const Region& region : state.regions) {
        alive += region.alive ? 1 : 0;
      }
      return alive;
    }
  }
  return 0;
}

std::string MmKernel::DocumentedRulesText() {
  return R"(# Documented locking rules of the simulated mm subsystem.
# Same grammar as the vfs rules; mmap_lock is a range lock, so a hold only
# covers accesses to objects whose span it overlaps.

# --- struct mm_struct (include/linux/mm_types.h) ---
mm_struct.mmap rw: ES(mmap_lock in mm_struct)
mm_struct.map_count rw: ES(page_table_lock in mm_struct)
mm_struct.total_vm rw: ES(page_table_lock in mm_struct)
mm_struct.hiwater_rss rw: ES(page_table_lock in mm_struct)
mm_struct.locked_vm rw: vm_committed_lock
mm_struct.flags r: no lock
mm_struct.mmap_base r: no lock

# --- struct vm_area_struct (mm/mmap.c header comment) ---
vm_area_struct.vm_start rw: EO(mmap_lock in mm_struct)
vm_area_struct.vm_end rw: EO(mmap_lock in mm_struct)
vm_area_struct.vm_flags rw: EO(mmap_lock in mm_struct)
vm_area_struct.vm_page_prot rw: EO(mmap_lock in mm_struct)
vm_area_struct.vm_pgoff w: EO(mmap_lock in mm_struct)
vm_area_struct.vm_file w: EO(mmap_lock in mm_struct)
vm_area_struct.vm_mm w: EO(mmap_lock in mm_struct)
vm_area_struct.vm_next w: EO(mmap_lock in mm_struct)
vm_area_struct.vm_prev w: EO(mmap_lock in mm_struct)
vm_area_struct.vm_private_data w: EO(mmap_lock in mm_struct)
)";
}

}  // namespace lockdoc
