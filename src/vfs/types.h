// Data-type layouts of the simulated kernel — the 11 filesystem-related
// structures the paper observes (Tab. 6), with member counts matching the
// paper's #M column (unions unrolled, as in Sec. 7.1) and filtered-member
// counts matching #Bl (lock members + atomic_t members + blacklisted
// members).
//
// struct inode is subclassed by backing filesystem (Sec. 5.3 item 1) with
// the paper's 11 filesystems: anon_inodefs, bdev, debugfs, devtmpfs, ext4,
// pipefs, proc, rootfs, sockfs, sysfs, tmpfs.
#ifndef SRC_VFS_TYPES_H_
#define SRC_VFS_TYPES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/model/type_registry.h"

namespace lockdoc {

// Cached type ids and the member indexes the kernel ops touch frequently.
struct VfsIds {
  // Types.
  TypeId inode = kInvalidTypeId;
  TypeId dentry = kInvalidTypeId;
  TypeId super_block = kInvalidTypeId;
  TypeId buffer_head = kInvalidTypeId;
  TypeId journal = kInvalidTypeId;        // journal_t
  TypeId transaction = kInvalidTypeId;    // transaction_t
  TypeId journal_head = kInvalidTypeId;
  TypeId pipe = kInvalidTypeId;           // pipe_inode_info
  TypeId block_device = kInvalidTypeId;
  TypeId cdev = kInvalidTypeId;
  TypeId bdi = kInvalidTypeId;            // backing_dev_info

  // inode subclasses.
  SubclassId fs_anon_inodefs = kNoSubclass;
  SubclassId fs_bdev = kNoSubclass;
  SubclassId fs_debugfs = kNoSubclass;
  SubclassId fs_devtmpfs = kNoSubclass;
  SubclassId fs_ext4 = kNoSubclass;
  SubclassId fs_pipefs = kNoSubclass;
  SubclassId fs_proc = kNoSubclass;
  SubclassId fs_rootfs = kNoSubclass;
  SubclassId fs_sockfs = kNoSubclass;
  SubclassId fs_sysfs = kNoSubclass;
  SubclassId fs_tmpfs = kNoSubclass;

  std::vector<SubclassId> all_filesystems;

  // mm types (extended registry only; see BuildVfsMmRegistry).
  TypeId mm_struct = kInvalidTypeId;
  TypeId vm_area_struct = kInvalidTypeId;

  bool has_mm() const { return mm_struct != kInvalidTypeId; }
};

// Builds the registry with all 11 layouts and subclasses. The returned
// registry owns the layouts; `ids` receives the cached identifiers.
std::unique_ptr<TypeRegistry> BuildVfsRegistry(VfsIds* ids);

// Extended registry for the mm (address-space) workloads: the 11 vfs types
// plus mm_struct and vm_area_struct appended at the end, so every vfs
// type/subclass/member id is identical to the base registry. Snapshots of
// base traces keep loading against BuildVfsRegistry bit-exactly; the
// extended registry only comes into play for traces that use the mm types
// (registry selection is by the snapshot's recorded type count / the
// trace's type ids).
std::unique_ptr<TypeRegistry> BuildVfsMmRegistry(VfsIds* ids);

// Number of types in the base (non-mm) registry.
size_t VfsBaseTypeCount();

// Looks up a member index by name, CHECK-failing on typos. Thin wrapper used
// by the kernel ops (hot members should be cached by the caller).
MemberIndex M(const TypeRegistry& registry, TypeId type, std::string_view member);

}  // namespace lockdoc

#endif  // SRC_VFS_TYPES_H_
