// The "officially documented" locking rules shipped with the simulated
// kernel — the machine-readable counterpart of the scattered source-code
// comments the paper validates in Sec. 7.3 (Tab. 4/5): 142 rules covering
// 71 members of five data types. Like the real kernel's documentation, the
// set is deliberately imperfect: some rules are consistently followed by
// the code, some only partially (including the famous i_lru / i_state /
// i_hash cases), some never, and some cover members the benchmark mix does
// not reach at all.
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {

std::string VfsKernel::DocumentedRulesText() {
  return R"(# Documented locking rules of the simulated kernel.
# Extracted from the (simulated) source-code comments; format:
#   <type>[:<subclass>].<member> <r|w|rw>: <lock sequence | no lock>

# --- struct inode (fs/inode.c header comment) — 14 rules ---
inode.i_state w: ES(i_lock in inode)
inode.i_bytes w: ES(i_lock in inode)
inode.i_hash w: inode_hash_lock -> ES(i_lock in inode)
inode.i_blocks w: ES(i_lock in inode)
inode.i_lru rw: ES(i_lock in inode)
inode.i_state r: ES(i_lock in inode)
inode.i_size rw: ES(i_lock in inode)
inode.i_hash r: inode_hash_lock -> ES(i_lock in inode)
inode.i_blocks r: ES(i_lock in inode)
inode.i_devices rw: ES(i_lock in inode)
inode.i_dquot w: ES(i_lock in inode)

# --- struct dentry (include/linux/dcache.h) — 22 rules ---
dentry.d_count rw: ES(d_lock in dentry)
dentry.d_inode w: ES(d_lock in dentry)
dentry.d_flags w: ES(d_lock in dentry)
dentry.d_seq w: ES(d_lock in dentry)
dentry.d_name w: ES(d_lock in dentry)
dentry.d_inode r: ES(d_lock in dentry)
dentry.d_name r: ES(d_lock in dentry)
dentry.d_flags r: ES(d_lock in dentry)
dentry.d_hash w: rename_lock -> ES(d_lock in dentry)
dentry.d_hash r: ES(d_lock in dentry)
dentry.d_subdirs r: ES(d_lock in dentry)
dentry.d_subdirs w: rename_lock -> ES(d_lock in dentry)
dentry.d_lru rw: ES(d_lock in dentry)
dentry.d_parent w: rename_lock -> ES(d_lock in dentry)
dentry.d_parent r: ES(d_lock in dentry)
dentry.d_child w: rename_lock -> EO(d_lock in dentry)
dentry.d_child r: EO(d_lock in dentry)
dentry.d_iname r: ES(d_lock in dentry)
dentry.d_seq r: rcu
dentry.d_in_lookup_hash w: dcache_hash_lock -> ES(d_lock in dentry)

# --- journal_t (include/linux/jbd2.h, around line 795) — 38 rules ---
journal_t.j_running_transaction r: ES(j_state_lock in journal_t)
journal_t.j_running_transaction w: ES(j_state_lock in journal_t) -> ES(j_list_lock in journal_t)
journal_t.j_barrier_count r: ES(j_state_lock in journal_t)
journal_t.j_commit_sequence rw: ES(j_state_lock in journal_t)
journal_t.j_transaction_sequence w: ES(j_state_lock in journal_t)
journal_t.j_head rw: ES(j_state_lock in journal_t)
journal_t.j_checkpoint_transactions rw: ES(j_list_lock in journal_t)
journal_t.j_tail_sequence w: ES(j_state_lock in journal_t)
journal_t.j_commit_interval r: ES(j_state_lock in journal_t)
journal_t.j_max_transaction_buffers r: no lock
journal_t.j_commit_request rw: ES(j_state_lock in journal_t)
journal_t.j_free w: ES(j_state_lock in journal_t)
journal_t.j_tail r: ES(j_state_lock in journal_t)
journal_t.j_tail w: ES(j_state_lock in journal_t)
journal_t.j_average_commit_time w: ES(j_state_lock in journal_t)
journal_t.j_last_sync_writer w: ES(j_state_lock in journal_t)
journal_t.j_history_cur w: ES(j_state_lock in journal_t)
journal_t.j_stats w: ES(j_state_lock in journal_t)
journal_t.j_committing_transaction w: ES(j_state_lock in journal_t) -> ES(j_list_lock in journal_t)
journal_t.j_free r: ES(j_state_lock in journal_t)
journal_t.j_average_commit_time r: ES(j_state_lock in journal_t)
journal_t.j_history_cur r: ES(j_state_lock in journal_t)
journal_t.j_transaction_sequence r: no lock
journal_t.j_maxlen w: ES(j_state_lock in journal_t)
journal_t.j_failed_commit w: ES(j_state_lock in journal_t)
journal_t.j_stats r: ES(j_state_lock in journal_t)
journal_t.j_flags w: ES(j_state_lock in journal_t)
journal_t.j_errno rw: ES(j_state_lock in journal_t)
journal_t.j_superblock w: ES(j_barrier in journal_t)
journal_t.j_devname r: no lock
journal_t.j_uuid r: no lock
journal_t.j_task w: ES(j_state_lock in journal_t)
journal_t.j_sb_buffer r: ES(j_barrier in journal_t)

# --- transaction_t (include/linux/jbd2.h, around line 543) — 42 rules ---
transaction_t.t_state rw: EO(j_state_lock in journal_t)
transaction_t.t_tid r: EO(j_state_lock in journal_t)
transaction_t.t_requested rw: ES(t_handle_lock in transaction_t)
transaction_t.t_start rw: ES(t_handle_lock in transaction_t)
transaction_t.t_nr_buffers rw: EO(j_list_lock in journal_t)
transaction_t.t_buffers rw: EO(j_list_lock in journal_t)
transaction_t.t_checkpoint_list r: EO(j_list_lock in journal_t)
transaction_t.t_checkpoint_io_list w: EO(j_list_lock in journal_t)
transaction_t.t_log_list rw: EO(j_list_lock in journal_t)
transaction_t.t_chp_stats w: EO(j_list_lock in journal_t)
transaction_t.t_forget rw: EO(j_list_lock in journal_t)
transaction_t.t_shadow_list rw: EO(j_list_lock in journal_t)
transaction_t.t_reserved_list w: EO(j_list_lock in journal_t)
transaction_t.t_inode_list w: EO(j_list_lock in journal_t)
transaction_t.t_synchronous_commit r: EO(j_state_lock in journal_t)
transaction_t.t_expires w: EO(j_state_lock in journal_t)
transaction_t.t_cpnext w: EO(j_list_lock in journal_t)
transaction_t.t_need_data_flush w: EO(j_state_lock in journal_t)
transaction_t.t_checkpoint_list w: EO(j_list_lock in journal_t)
transaction_t.t_run_stats w: EO(j_state_lock in journal_t)
transaction_t.t_private_list w: ES(t_handle_lock in transaction_t)
transaction_t.t_journal rw: EO(j_state_lock in journal_t)
transaction_t.t_log_start rw: EO(j_state_lock in journal_t)
transaction_t.t_updates rw: ES(t_handle_lock in transaction_t)
transaction_t.t_outstanding_credits rw: ES(t_handle_lock in transaction_t)
transaction_t.t_handle_count rw: ES(t_handle_lock in transaction_t)
transaction_t.t_start_time r: EO(j_state_lock in journal_t)
transaction_t.t_expires r: EO(j_state_lock in journal_t)
transaction_t.t_tid w: EO(j_state_lock in journal_t)

# --- struct journal_head (include/linux/journal-head.h) — 26 rules ---
journal_head.b_jlist rw: EO(j_list_lock in journal_t)
journal_head.b_transaction rw: EO(j_list_lock in journal_t)
journal_head.b_modified rw: EO(j_list_lock in journal_t)
journal_head.b_next_transaction rw: EO(j_list_lock in journal_t)
journal_head.b_tnext rw: EO(j_list_lock in journal_t)
journal_head.b_tprev w: EO(j_list_lock in journal_t)
journal_head.b_cp_transaction r: EO(j_list_lock in journal_t)
journal_head.b_frozen_data w: EO(j_list_lock in journal_t)
journal_head.b_cp_transaction w: EO(j_checkpoint_mutex in journal_t) -> EO(j_list_lock in journal_t)
journal_head.b_cpnext w: EO(j_list_lock in journal_t)
journal_head.b_cpprev w: EO(j_list_lock in journal_t)
journal_head.b_jcount w: EO(j_list_lock in journal_t)
journal_head.b_committed_data rw: EO(j_state_lock in journal_t)
journal_head.b_cow_tid w: EO(j_state_lock in journal_t)
journal_head.b_jcount r: EO(j_state_lock in journal_t)
journal_head.b_frozen_data r: EO(j_state_lock in journal_t)
journal_head.b_triggers w: EO(j_checkpoint_mutex in journal_t) -> EO(j_list_lock in journal_t)
journal_head.bh rw: EO(j_list_lock in journal_t)
journal_head.b_cow_tid r: EO(j_state_lock in journal_t)
)";
}

}  // namespace lockdoc
