// Dentry-cache operations of the simulated kernel (fs/dcache.c, fs/namei.c,
// fs/libfs.c).
//
// Ground-truth discipline: a dentry's own fields (d_flags, d_inode, d_count,
// d_name, d_hash, d_seq) change under its ES(d_lock); child-list membership
// (d_child) changes under the *parent's* d_lock (EO); d_subdirs of the
// parent changes/reads under the parent's own d_lock (ES). The LRU list is
// inconsistently locked on purpose (half of the paths skip d_lock), which is
// what makes the documented d_lru rule ambivalent. The libfs cursor walk is
// the Tab. 8 violation: d_subdirs read under EO(i_rwsem) -> rcu.
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {

ObjectRef VfsKernel::AllocDentry(const ObjectRef& inode, Rng& rng) {
  FunctionScope fn(*kernel_, "fs/dcache.c", "d_alloc", 1540, 1580);
  ObjectRef dentry = kernel_->Create(ids_.dentry, kNoSubclass, 1545);
  kernel_->Write(dentry, dm_.d_name, 1550);
  kernel_->Write(dentry, dm_.d_iname, 1551);
  kernel_->Write(dentry, dm_.d_flags, 1552);
  kernel_->Write(dentry, dm_.d_seq, 1553);
  kernel_->Write(dentry, dm_.d_count, 1554);
  kernel_->Write(dentry, dm_.d_parent, 1555);
  kernel_->Write(dentry, dm_.d_sb, 1556);
  kernel_->Write(dentry, dm_.d_op, 1557);
  kernel_->Write(dentry, dm_.d_time, 1558);
  (void)inode;
  (void)rng;
  return dentry;
}

void VfsKernel::DestroyDentry(const ObjectRef& dentry) {
  FunctionScope fn(*kernel_, "fs/dcache.c", "__d_free", 260, 275);
  kernel_->Destroy(dentry, 265);
}

void VfsKernel::DentryInstantiate(const ObjectRef& dentry, const ObjectRef& parent,
                                  const ObjectRef& inode, Rng& rng) {
  FunctionScope fn(*kernel_, "fs/dcache.c", "__d_instantiate", 1740, 1790);
  // Parent first, then child — the kernel's ancestor-before-descendant
  // d_lock order.
  kernel_->Lock(parent, dm_.d_lock, 1745);
  kernel_->Lock(dentry, dm_.d_lock, 1746);

  kernel_->Write(dentry, dm_.d_inode, 1750);
  kernel_->Write(dentry, dm_.d_flags, 1751);
  kernel_->Write(dentry, dm_.d_seq, 1752);
  kernel_->Write(dentry, dm_.d_alias, 1753);
  kernel_->Write(dentry, dm_.d_parent, 1754);
  kernel_->Write(dentry, dm_.d_child, 1756);    // Under parent (EO) + own (ES) d_lock.
  kernel_->Write(parent, dm_.d_subdirs, 1757);  // Parent's own member (ES).

  kernel_->Unlock(dentry, dm_.d_lock, 1760);
  kernel_->Unlock(parent, dm_.d_lock, 1761);

  // Hash insertion.
  kernel_->LockGlobal(dcache_hash_lock_, 1770);
  kernel_->Lock(dentry, dm_.d_lock, 1771);
  kernel_->Write(dentry, dm_.d_hash, 1773);
  kernel_->Write(dentry, dm_.d_in_lookup_hash, 1774);
  kernel_->Unlock(dentry, dm_.d_lock, 1776);
  kernel_->UnlockGlobal(dcache_hash_lock_, 1777);
  (void)inode;
  (void)rng;
}

void VfsKernel::DentryKill(const ObjectRef& dentry, const ObjectRef& parent, Rng& rng) {
  FunctionScope fn(*kernel_, "fs/dcache.c", "__dentry_kill", 580, 640);
  kernel_->Lock(parent, dm_.d_lock, 585);
  kernel_->Lock(dentry, dm_.d_lock, 586);

  if (rng.Chance(0.3)) {
    kernel_->Read(dentry, dm_.d_parent, 589);
  }
  kernel_->Read(dentry, dm_.d_count, 590);
  kernel_->Write(dentry, dm_.d_count, 591);
  kernel_->Write(dentry, dm_.d_flags, 592);
  kernel_->Write(dentry, dm_.d_inode, 593);
  kernel_->Write(dentry, dm_.d_in_lookup_hash, 594);
  kernel_->Write(dentry, dm_.d_child, 595);
  kernel_->Write(parent, dm_.d_subdirs, 596);

  kernel_->Unlock(dentry, dm_.d_lock, 600);
  kernel_->Unlock(parent, dm_.d_lock, 601);
  (void)rng;

  // Unhash.
  kernel_->LockGlobal(dcache_hash_lock_, 610);
  kernel_->Lock(dentry, dm_.d_lock, 611);
  kernel_->Write(dentry, dm_.d_hash, 613);
  kernel_->Unlock(dentry, dm_.d_lock, 615);
  kernel_->UnlockGlobal(dcache_hash_lock_, 616);

  // LRU removal — only for entries that were actually on the list.
  if (rng.Chance(0.35)) {
    kernel_->LockGlobal(dcache_lru_lock_, 625);
    kernel_->Write(dentry, dm_.d_lru, 627);
    kernel_->UnlockGlobal(dcache_lru_lock_, 629);
  }
}

void VfsKernel::TouchDentryLru(const ObjectRef& dentry, Rng& rng) {
  // Two coexisting disciplines, as with the inode LRU: the documentation
  // says d_lock, only half of the code takes it.
  bool read_only = rng.Chance(0.3);  // LRU scans only inspect the linkage.
  if (rng.Chance(0.5)) {
    FunctionScope fn(*kernel_, "fs/dcache.c", "dentry_lru_add", 400, 420);
    kernel_->Lock(dentry, dm_.d_lock, 403);
    kernel_->LockGlobal(dcache_lru_lock_, 405);
    kernel_->Read(dentry, dm_.d_lru, 407);
    if (!read_only) {
      kernel_->Write(dentry, dm_.d_lru, 408);
    }
    kernel_->UnlockGlobal(dcache_lru_lock_, 410);
    kernel_->Unlock(dentry, dm_.d_lock, 412);
  } else {
    FunctionScope fn(*kernel_, "fs/dcache.c", "dentry_lru_del", 425, 445);
    kernel_->LockGlobal(dcache_lru_lock_, 428);
    kernel_->Read(dentry, dm_.d_lru, 430);
    if (!read_only) {
      kernel_->Write(dentry, dm_.d_lru, 431);
    }
    kernel_->UnlockGlobal(dcache_lru_lock_, 434);
  }
}

void VfsKernel::LookupFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& dentry = state.files[index].dentry;
  const FileState& parent_entry = ParentOf(state, state.files[index]);
  const ObjectRef& parent = parent_entry.dentry;
  const ObjectRef& dir = parent_entry.inode;

  {
    // RCU-walk fast path.
    FunctionScope fn(*kernel_, "fs/namei.c", "lookup_fast", 1550, 1600);
    kernel_->RcuReadLock(1555);
    kernel_->Read(dentry, dm_.d_seq, 1560);
    kernel_->Read(dentry, dm_.d_hash, 1561);
    kernel_->Read(dentry, dm_.d_name, 1562);
    kernel_->Read(dentry, dm_.d_flags, 1563);
    kernel_->Read(dentry, dm_.d_inode, 1564);
    kernel_->Read(dentry, dm_.d_parent, 1565);
    kernel_->Read(dentry, dm_.d_iname, 1566);
    kernel_->RcuReadUnlock(1570);
  }

  if (rng.Chance(0.5)) {
    // Ref-walk slow path: takes d_lock and bumps the refcount.
    FunctionScope fn(*kernel_, "fs/dcache.c", "dget_dlock", 700, 720);
    kernel_->Lock(dentry, dm_.d_lock, 703);
    kernel_->Read(dentry, dm_.d_count, 705);
    if (rng.Chance(0.75)) {
      kernel_->Write(dentry, dm_.d_count, 706);
    }
    kernel_->Read(dentry, dm_.d_flags, 707);
    kernel_->Read(dentry, dm_.d_iname, 708);
    kernel_->Read(dentry, dm_.d_seq, 709);
    kernel_->Read(dentry, dm_.d_hash, 710);
    kernel_->Unlock(dentry, dm_.d_lock, 712);
  }

  if (rng.Chance(0.4)) {
    // Directory scan under the parent's d_lock (the dominant, rule-forming
    // discipline for d_subdirs).
    FunctionScope fn(*kernel_, "fs/libfs.c", "dcache_readdir", 80, 120);
    kernel_->Lock(parent, dm_.d_lock, 88);
    kernel_->Read(parent, dm_.d_subdirs, 92);
    kernel_->Read(dentry, dm_.d_child, 93);
    kernel_->Read(dentry, dm_.d_name, 94);
    kernel_->Unlock(parent, dm_.d_lock, 98);
  } else if (plan_.libfs_d_subdirs_rcu_walk && rng.Chance(0.04)) {
    // The Tab. 8 violation: cursor walk reads d_subdirs under the
    // directory's i_rwsem plus RCU, never taking d_lock (fs/libfs.c:104).
    FunctionScope fn(*kernel_, "fs/libfs.c", "scan_positives", 100, 118);
    kernel_->Lock(dir, im_.i_rwsem, 102, AcquireMode::kShared);
    kernel_->RcuReadLock(103);
    kernel_->Read(parent, dm_.d_subdirs, 104);
    kernel_->Read(dentry, dm_.d_child, 105);
    kernel_->RcuReadUnlock(110);
    kernel_->Unlock(dir, im_.i_rwsem, 112);
  }

  if (rng.Chance(0.6)) {
    TouchDentryLru(dentry, rng);
  }
}

void VfsKernel::RenameFile(SubclassId fs, size_t index, Rng& rng) {
  MountState& state = mount(fs);
  LOCKDOC_CHECK(index < state.files.size() && state.files[index].alive);
  const ObjectRef& dentry = state.files[index].dentry;
  const FileState& parent_entry = ParentOf(state, state.files[index]);
  const ObjectRef& parent = parent_entry.dentry;
  const ObjectRef& dir = parent_entry.inode;

  FunctionScope fn(*kernel_, "fs/namei.c", "vfs_rename", 4400, 4470);
  kernel_->Lock(dir, im_.i_rwsem, 4405);
  kernel_->LockGlobal(rename_lock_, 4410);
  // d_move rehashes the entry, so the hash bucket lock joins the dance
  // before the per-dentry locks (the same order __d_instantiate uses).
  kernel_->LockGlobal(dcache_hash_lock_, 4412);
  kernel_->Lock(parent, dm_.d_lock, 4415);
  kernel_->Lock(dentry, dm_.d_lock, 4416);

  kernel_->Read(dentry, dm_.d_hash, 4419);
  kernel_->Write(dentry, dm_.d_seq, 4420);
  kernel_->Write(dentry, dm_.d_name, 4421);
  kernel_->Write(dentry, dm_.d_iname, 4422);
  kernel_->Write(dentry, dm_.d_parent, 4423);
  kernel_->Write(dentry, dm_.d_hash, 4424);
  kernel_->Write(parent, dm_.d_subdirs, 4426);
  kernel_->Write(dentry, dm_.d_child, 4427);

  kernel_->Unlock(dentry, dm_.d_lock, 4435);
  kernel_->Unlock(parent, dm_.d_lock, 4436);
  kernel_->UnlockGlobal(dcache_hash_lock_, 4438);
  kernel_->UnlockGlobal(rename_lock_, 4440);

  kernel_->Write(dir, im_.i_mtime, 4445);
  kernel_->Write(dir, im_.i_ctime, 4446);
  kernel_->Write(dir, im_.i_version, 4447);
  kernel_->Unlock(dir, im_.i_rwsem, 4460);
  (void)rng;
}

}  // namespace lockdoc
