// JBD2-style journalling of the simulated kernel (fs/jbd2/transaction.c,
// commit.c, checkpoint.c; fs/buffer.c).
//
// Ground-truth discipline:
//   * journal_t list heads and sequence numbers   — ES(j_state_lock)
//   * j_committing_transaction / j_running_transaction writes
//                                                 — ES(j_state_lock) ->
//                                                   ES(j_list_lock)
//   * transaction_t state/lists                   — EO(j_state_lock) or
//                                                   EO(j_list_lock)
//   * journal_head fields and buffer_head fields  — EO(j_list_lock)
//   * t_updates / t_outstanding_credits / t_handle_count — accessed through
//     atomic helpers only (filtered): the paper's "int -> atomic_t without a
//     documentation update" finding
//   * commit-time statistics fields               — ES(j_state_lock), with a
//     sloppy rate writing without it (Tab. 7's journal_t violations)
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {

VfsKernel::BufferState& VfsKernel::PickBuffer(Rng& rng) {
  LOCKDOC_CHECK(!buffers_.empty());
  return buffers_[rng.Below(buffers_.size())];
}

void VfsKernel::JournalStartHandle(Rng& rng) {
  FunctionScope fn(*kernel_, "fs/jbd2/transaction.c", "jbd2__journal_start", 250, 310);
  // Optimistic lockless peeks before taking the state lock.
  if (rng.Chance(0.12)) {
    kernel_->Read(journal_, jm_.j_barrier_count, 252);
  }
  if (rng.Chance(0.22)) {
    kernel_->Read(running_txn_, tm_.t_state, 253);
  }
  if (rng.Chance(0.12)) {
    kernel_->Read(running_txn_, tm_.t_nr_buffers, 254);
  }
  kernel_->Lock(journal_, jm_.j_state_lock, 255, AcquireMode::kShared);
  kernel_->Read(journal_, jm_.j_running_transaction, 260);
  kernel_->Read(journal_, jm_.j_barrier_count, 261);
  kernel_->Read(journal_, jm_.j_max_transaction_buffers, 262);
  kernel_->Read(journal_, jm_.j_transaction_sequence, 263);
  kernel_->Read(running_txn_, tm_.t_state, 264);
  kernel_->Unlock(journal_, jm_.j_state_lock, 266);

  // Handle accounting under the transaction's own handle lock. Retrying
  // callers re-inspect the slot without updating it.
  if (rng.Chance(0.4)) {
    kernel_->Lock(running_txn_, tm_.t_handle_lock, 270);
    kernel_->Read(running_txn_, tm_.t_start, 271);
    kernel_->Read(running_txn_, tm_.t_requested, 272);
    kernel_->Unlock(running_txn_, tm_.t_handle_lock, 273);
  }
  kernel_->Lock(running_txn_, tm_.t_handle_lock, 275);
  kernel_->Write(running_txn_, tm_.t_requested, 277);
  kernel_->Write(running_txn_, tm_.t_start, 279);
  kernel_->Unlock(running_txn_, tm_.t_handle_lock, 282);

  // A flush hint set outside any lock (the documented rule claims
  // j_state_lock; the dominant code path disagrees).
  kernel_->Write(running_txn_, tm_.t_need_data_flush, 285);

  // The historically-int counters, accessed via atomic helpers only
  // (filtered by the importer's function black list).
  kernel_->AtomicWrite(running_txn_, tm_.t_updates, 290);
  kernel_->AtomicWrite(running_txn_, tm_.t_outstanding_credits, 291);
  kernel_->AtomicWrite(running_txn_, tm_.t_handle_count, 292);
  (void)rng;
}

void VfsKernel::JournalDirtyBuffer(BufferState& buffer, Rng& rng) {
  // Lockless pre-checks: immutable-after-init buffer geometry is read bare
  // throughout the kernel, and several list fields are optimistically
  // peeked before any lock is taken (the mix of rates is what produces the
  // tac-dependent "no lock" fractions in Fig. 7).
  {
    FunctionScope precheck(*kernel_, "fs/buffer.c", "buffer_prechecks", 900, 930);
    kernel_->Read(buffer.bh, bm_.b_size, 905);
    kernel_->Read(buffer.bh, bm_.b_data, 906);
    if (rng.Chance(0.15)) {
      kernel_->Read(buffer.bh, bm_.b_blocknr, 910);
    }
    if (buffer.jh.valid() && rng.Chance(0.1)) {
      kernel_->Read(buffer.jh, hm_.b_modified, 917);
    }
  }

  // Inspection-only fast path (jbd2_journal_get_write_access re-checking an
  // already-journaled buffer): reads under j_list_lock, no updates.
  if (rng.Chance(0.35)) {
    FunctionScope peek_fn(*kernel_, "fs/jbd2/transaction.c", "jbd2_journal_get_write_access",
                          1200, 1260);
    kernel_->Lock(journal_, jm_.j_list_lock, 1205);
    if (buffer.jh.valid()) {
      kernel_->Read(buffer.jh, hm_.b_jlist, 1210);
      kernel_->Read(buffer.jh, hm_.b_transaction, 1211);
      kernel_->Read(buffer.jh, hm_.b_modified, 1212);
      kernel_->Read(buffer.jh, hm_.b_next_transaction, 1213);
      kernel_->Read(buffer.jh, hm_.b_tnext, 1214);
      kernel_->Read(buffer.jh, hm_.b_cp_transaction, 1215);
      kernel_->Read(buffer.jh, hm_.b_frozen_data, 1216);
      kernel_->Read(buffer.jh, hm_.b_committed_data, 1217);
    }
    kernel_->Read(running_txn_, tm_.t_forget, 1220);
    kernel_->Read(running_txn_, tm_.t_shadow_list, 1221);
    kernel_->Read(running_txn_, tm_.t_log_list, 1222);
    kernel_->Read(running_txn_, tm_.t_checkpoint_list, 1223);
    kernel_->Read(buffer.bh, bm_.b_count, 1225);
    kernel_->Unlock(journal_, jm_.j_list_lock, 1230);
    return;
  }

  FunctionScope fn(*kernel_, "fs/jbd2/transaction.c", "jbd2_journal_dirty_metadata", 1280, 1340);
  kernel_->Lock(journal_, jm_.j_list_lock, 1285);

  // Buffer and journal-head bookkeeping under j_list_lock (EO for them).
  kernel_->Read(buffer.bh, bm_.b_count, 1290);
  kernel_->Write(buffer.bh, bm_.b_count, 1291);
  kernel_->Write(buffer.bh, bm_.b_assoc_buffers, 1292);
  kernel_->Read(buffer.bh, bm_.b_blocknr, 1293);
  if (buffer.jh.valid()) {
    kernel_->Read(buffer.jh, hm_.b_jlist, 1299);
    kernel_->Write(buffer.jh, hm_.b_jlist, 1300);
    kernel_->Read(buffer.jh, hm_.b_transaction, 1301);
    kernel_->Write(buffer.jh, hm_.b_transaction, 1302);
    kernel_->Read(buffer.jh, hm_.b_modified, 1303);
    kernel_->Write(buffer.jh, hm_.b_modified, 1304);
    kernel_->Read(buffer.jh, hm_.b_next_transaction, 1305);
    kernel_->Write(buffer.jh, hm_.b_next_transaction, 1306);
    kernel_->Read(buffer.jh, hm_.b_tnext, 1307);
    kernel_->Write(buffer.jh, hm_.b_tnext, 1308);
    kernel_->Write(buffer.jh, hm_.b_tprev, 1309);
    kernel_->Write(buffer.jh, hm_.b_jcount, 1313);
    kernel_->Write(buffer.jh, hm_.b_triggers, 1314);
    if (rng.Chance(0.4)) {
      kernel_->Read(buffer.jh, hm_.b_frozen_data, 1315);
      kernel_->Write(buffer.jh, hm_.b_frozen_data, 1316);
      kernel_->Read(buffer.jh, hm_.b_committed_data, 1317);
      kernel_->Write(buffer.jh, hm_.b_committed_data, 1318);
      kernel_->Write(buffer.jh, hm_.b_cow_tid, 1319);
    }
  }
  // Transaction buffer accounting.
  kernel_->Read(running_txn_, tm_.t_nr_buffers, 1322);
  kernel_->Write(running_txn_, tm_.t_nr_buffers, 1323);
  kernel_->Write(running_txn_, tm_.t_buffers, 1324);
  if (rng.Chance(0.5)) {
    kernel_->Read(running_txn_, tm_.t_forget, 1326);
    kernel_->Write(running_txn_, tm_.t_forget, 1327);
    kernel_->Read(running_txn_, tm_.t_shadow_list, 1328);
    kernel_->Write(running_txn_, tm_.t_shadow_list, 1329);
    kernel_->Write(running_txn_, tm_.t_reserved_list, 1330);
    kernel_->Read(running_txn_, tm_.t_inode_list, 1331);
    kernel_->Write(running_txn_, tm_.t_inode_list, 1332);
  }

  kernel_->Unlock(journal_, jm_.j_list_lock, 1320);

  // Fast-path sloppiness: a minority of call sites updates buffer fields
  // without j_list_lock (the paper's buffer_head is its noisiest type:
  // 45 k violating events at 635 contexts). The varied line numbers model
  // the many distinct call sites.
  if (rng.Chance(plan_.buffer_head_sloppiness)) {
    FunctionScope sloppy(*kernel_, "fs/buffer.c", "mark_buffer_dirty", 1100, 1180);
    uint32_t line = 1105 + static_cast<uint32_t>(rng.Below(70));
    kernel_->Write(buffer.bh, bm_.b_count, line);
    kernel_->Write(buffer.bh, bm_.b_assoc_buffers, line + 1);
    if (rng.Chance(0.5)) {
      kernel_->Write(buffer.bh, bm_.b_end_io, line + 2);
      kernel_->Read(buffer.bh, bm_.b_private, line + 3);
    }
  }
}

void VfsKernel::JournalCommit(Rng& rng) {
  FunctionScope fn(*kernel_, "fs/jbd2/commit.c", "jbd2_journal_commit_transaction", 380, 520);

  // Retire the old checkpoint transaction first, if any.
  if (checkpoint_txn_.valid()) {
    JournalCheckpoint(rng);
  }

  // Phase 1: switch the running transaction to committing state.
  kernel_->Lock(journal_, jm_.j_state_lock, 390);
  kernel_->Read(journal_, jm_.j_running_transaction, 392);
  kernel_->Read(running_txn_, tm_.t_state, 394);
  kernel_->Write(running_txn_, tm_.t_state, 395);  // EO(j_state_lock).
  kernel_->Read(running_txn_, tm_.t_tid, 396);
  kernel_->Read(running_txn_, tm_.t_synchronous_commit, 397);
  kernel_->Write(running_txn_, tm_.t_need_data_flush, 398);
  kernel_->Write(running_txn_, tm_.t_expires, 399);
  kernel_->Read(journal_, jm_.j_commit_request, 400);
  kernel_->Write(journal_, jm_.j_commit_request, 401);

  kernel_->Lock(journal_, jm_.j_list_lock, 403);
  kernel_->Write(journal_, jm_.j_committing_transaction, 404);
  kernel_->Write(journal_, jm_.j_running_transaction, 405);
  kernel_->Unlock(journal_, jm_.j_list_lock, 406);

  kernel_->Write(journal_, jm_.j_transaction_sequence, 408);
  kernel_->Unlock(journal_, jm_.j_state_lock, 410);

  committing_txn_ = running_txn_;

  // Allocate the next running transaction (init context).
  {
    FunctionScope alloc(*kernel_, "fs/jbd2/transaction.c", "jbd2_journal_start_transaction", 60,
                        95);
    running_txn_ = kernel_->Create(ids_.transaction, kNoSubclass, 65);
    kernel_->Write(running_txn_, tm_.t_journal, 70);
    kernel_->Write(running_txn_, tm_.t_tid, 71);
    kernel_->Write(running_txn_, tm_.t_state, 72);
    kernel_->Write(running_txn_, tm_.t_start_time, 73);
    kernel_->Write(running_txn_, tm_.t_expires, 74);
  }
  {
    kernel_->Lock(journal_, jm_.j_state_lock, 420);
    kernel_->Lock(journal_, jm_.j_list_lock, 421);
    kernel_->Write(journal_, jm_.j_running_transaction, 423);
    kernel_->Unlock(journal_, jm_.j_list_lock, 425);
    kernel_->Unlock(journal_, jm_.j_state_lock, 426);
  }

  // Phase 2: write out the committing transaction's buffers.
  kernel_->Lock(journal_, jm_.j_list_lock, 440);
  kernel_->Read(committing_txn_, tm_.t_buffers, 442);
  kernel_->Read(committing_txn_, tm_.t_nr_buffers, 443);
  kernel_->Read(committing_txn_, tm_.t_log_list, 444);
  size_t sample = std::min<size_t>(buffers_.size(), 6);
  for (size_t i = 0; i < sample; ++i) {
    BufferState& buffer = buffers_[(i * 5) % buffers_.size()];
    kernel_->Read(buffer.bh, bm_.b_blocknr, 450);
    kernel_->Write(buffer.bh, bm_.b_end_io, 451);
    kernel_->Write(buffer.bh, bm_.b_count, 452);
    if (buffer.jh.valid()) {
      kernel_->Read(buffer.jh, hm_.b_jcount, 453);
      kernel_->Write(buffer.jh, hm_.b_jlist, 455);
      kernel_->Write(buffer.jh, hm_.b_cp_transaction, 456);
      kernel_->Write(buffer.jh, hm_.b_cpnext, 457);
      kernel_->Write(buffer.jh, hm_.b_cpprev, 458);
    }
  }
  kernel_->Write(committing_txn_, tm_.t_private_list, 464);
  kernel_->Write(committing_txn_, tm_.t_checkpoint_list, 465);
  kernel_->Write(committing_txn_, tm_.t_log_list, 466);
  kernel_->Write(committing_txn_, tm_.t_cpnext, 467);
  kernel_->Unlock(journal_, jm_.j_list_lock, 470);

  // Phase 3: finalize state and statistics.
  kernel_->Lock(journal_, jm_.j_state_lock, 480);
  kernel_->Read(journal_, jm_.j_commit_sequence, 481);
  kernel_->Write(committing_txn_, tm_.t_state, 482);
  kernel_->Write(journal_, jm_.j_commit_sequence, 483);
  kernel_->Read(journal_, jm_.j_head, 484);
  kernel_->Write(journal_, jm_.j_head, 485);
  kernel_->Read(journal_, jm_.j_free, 486);
  kernel_->Write(journal_, jm_.j_free, 487);
  kernel_->Read(journal_, jm_.j_average_commit_time, 488);
  kernel_->Read(journal_, jm_.j_history_cur, 489);
  kernel_->Lock(journal_, jm_.j_list_lock, 490);
  kernel_->Write(journal_, jm_.j_committing_transaction, 491);  // Clear it.
  kernel_->Write(journal_, jm_.j_checkpoint_transactions, 492);
  kernel_->Unlock(journal_, jm_.j_list_lock, 493);

  if (rng.Chance(plan_.journal_stats_sloppiness)) {
    // Sloppy path: statistics written after dropping the state lock.
    kernel_->Unlock(journal_, jm_.j_state_lock, 495);
    FunctionScope stats(*kernel_, "fs/jbd2/commit.c", "jbd2_journal_commit_stats", 530, 570);
    uint32_t line = 535 + static_cast<uint32_t>(rng.Below(30));
    kernel_->Write(journal_, jm_.j_average_commit_time, line);
    kernel_->Write(journal_, jm_.j_last_sync_writer, line + 1);
    kernel_->Write(journal_, jm_.j_history_cur, line + 2);
    kernel_->Write(journal_, jm_.j_stats, line + 3);
    kernel_->Write(journal_, jm_.j_maxlen, line + 5);
    kernel_->Write(journal_, jm_.j_failed_commit, line + 6);
    if (rng.Chance(0.4)) {
      kernel_->Write(journal_, jm_.j_tail, line + 4);
    }
  } else {
    kernel_->Write(journal_, jm_.j_average_commit_time, 500);
    kernel_->Write(journal_, jm_.j_last_sync_writer, 501);
    kernel_->Write(journal_, jm_.j_history_cur, 502);
    kernel_->Write(journal_, jm_.j_stats, 503);
    kernel_->Unlock(journal_, jm_.j_state_lock, 510);
  }

  // Per-commit run statistics live outside any lock by design (their
  // documented rule names j_state_lock and is simply never followed).
  {
    FunctionScope stats_fn(*kernel_, "fs/jbd2/commit.c", "jbd2_journal_run_stats", 575, 590);
    kernel_->Write(committing_txn_, tm_.t_run_stats, 580);
  }

  // Superblock log-tail update: a read-only inspection of the journal's
  // cursors under fresh lock acquisitions (its own transactions).
  {
    FunctionScope sb_fn(*kernel_, "fs/jbd2/journal.c", "jbd2_journal_update_sb_log_tail", 620,
                        660);
    kernel_->Lock(journal_, jm_.j_state_lock, 625, AcquireMode::kShared);
    kernel_->Read(journal_, jm_.j_tail, 630);
    kernel_->Read(journal_, jm_.j_head, 631);
    kernel_->Read(journal_, jm_.j_free, 634);
    kernel_->Read(journal_, jm_.j_commit_sequence, 632);
    kernel_->Read(journal_, jm_.j_commit_request, 633);
    kernel_->Unlock(journal_, jm_.j_state_lock, 640);
    kernel_->Lock(journal_, jm_.j_list_lock, 645);
    kernel_->Read(journal_, jm_.j_checkpoint_transactions, 647);
    kernel_->Unlock(journal_, jm_.j_list_lock, 650);
  }

  checkpoint_txn_ = committing_txn_;
  committing_txn_ = ObjectRef{};
}

void VfsKernel::JournalStatsProcShow(Rng& rng) {
  // Lockless statistics dump, mirroring /proc/fs/jbd2: these reads make the
  // journal's documented read rules ambivalent (and j_stats incorrect).
  FunctionScope fn(*kernel_, "fs/jbd2/journal.c", "jbd2_seq_info_show", 900, 950);
  kernel_->Read(journal_, jm_.j_free, 910);
  kernel_->Read(journal_, jm_.j_average_commit_time, 911);
  kernel_->Read(journal_, jm_.j_history_cur, 912);
  kernel_->Read(journal_, jm_.j_transaction_sequence, 913);
  kernel_->Read(journal_, jm_.j_stats, 914);
  if (rng.Chance(0.5)) {
    kernel_->Read(journal_, jm_.j_min_batch_time, 920);
    kernel_->Read(journal_, jm_.j_max_batch_time, 921);
    kernel_->Read(journal_, jm_.j_last_sync_writer, 922);
  }
  if (rng.Chance(0.4)) {
    // Geometry and identity fields — set once at journal creation, read
    // bare forever after.
    kernel_->Read(journal_, jm_.j_blocksize, 930);
    kernel_->Read(journal_, jm_.j_maxlen, 931);
    kernel_->Read(journal_, jm_.j_first, 932);
    kernel_->Read(journal_, jm_.j_last, 933);
    kernel_->Read(journal_, jm_.j_flags, 934);
    kernel_->Read(journal_, jm_.j_wbuf, 935);
    kernel_->Read(journal_, jm_.j_wbufsize, 936);
    kernel_->Read(journal_, jm_.j_private, 937);
    kernel_->Read(journal_, jm_.j_failed_commit, 938);
  }
}

void VfsKernel::BufferLruScan(Rng& rng) {
  FunctionScope fn(*kernel_, "fs/buffer.c", "bh_lru_scan", 940, 990);
  BufferState& buffer = PickBuffer(rng);
  kernel_->Read(buffer.bh, bm_.b_size, 945);
  kernel_->Read(buffer.bh, bm_.b_data, 946);
  if (rng.Chance(0.6)) {
    kernel_->Read(buffer.bh, bm_.b_blocknr, 950);
  }
  if (buffer.jh.valid()) {
    if (rng.Chance(0.25)) {
      kernel_->Read(buffer.jh, hm_.b_jlist, 955);
    }
    if (rng.Chance(0.35)) {
      kernel_->Read(buffer.jh, hm_.b_transaction, 956);
    }
    if (rng.Chance(0.45)) {
      kernel_->Read(buffer.jh, hm_.b_modified, 957);
    }
  }
  kernel_->Read(running_txn_, tm_.t_state, 960);
  if (rng.Chance(0.25)) {
    kernel_->Read(running_txn_, tm_.t_nr_buffers, 961);
  }
  if (rng.Chance(0.9)) {
    kernel_->Read(journal_, jm_.j_barrier_count, 965);
  }
  if (rng.Chance(0.6)) {
    kernel_->Read(journal_, jm_.j_transaction_sequence, 966);
  }
}

void VfsKernel::JournalCheckpoint(Rng& rng) {
  if (!checkpoint_txn_.valid()) {
    return;
  }
  FunctionScope fn(*kernel_, "fs/jbd2/checkpoint.c", "jbd2_log_do_checkpoint", 200, 260);
  kernel_->Lock(journal_, jm_.j_checkpoint_mutex, 205);
  kernel_->Lock(journal_, jm_.j_list_lock, 210);
  kernel_->Read(journal_, jm_.j_checkpoint_transactions, 212);
  kernel_->Read(checkpoint_txn_, tm_.t_checkpoint_list, 215);
  kernel_->Write(checkpoint_txn_, tm_.t_checkpoint_list, 216);
  kernel_->Write(checkpoint_txn_, tm_.t_checkpoint_io_list, 217);
  kernel_->Write(checkpoint_txn_, tm_.t_chp_stats, 218);
  kernel_->Write(checkpoint_txn_, tm_.t_cpnext, 219);
  for (BufferState& buffer : buffers_) {
    if (buffer.jh.valid()) {
      kernel_->Read(buffer.jh, hm_.b_cp_transaction, 224);
      kernel_->Write(buffer.jh, hm_.b_cp_transaction, 225);
      kernel_->Write(buffer.jh, hm_.b_cpnext, 226);
      kernel_->Write(buffer.jh, hm_.b_jcount, 227);
      kernel_->Write(buffer.jh, hm_.b_cpprev, 228);
      break;  // One representative buffer per checkpoint.
    }
  }
  kernel_->Write(journal_, jm_.j_checkpoint_transactions, 230);
  kernel_->Unlock(journal_, jm_.j_list_lock, 235);

  kernel_->Lock(journal_, jm_.j_state_lock, 240);
  kernel_->Read(journal_, jm_.j_tail, 241);
  kernel_->Write(journal_, jm_.j_tail, 242);
  kernel_->Write(journal_, jm_.j_tail_sequence, 243);
  kernel_->Write(journal_, jm_.j_free, 244);
  kernel_->Unlock(journal_, jm_.j_state_lock, 246);
  kernel_->Unlock(journal_, jm_.j_checkpoint_mutex, 250);

  // Free the fully checkpointed transaction (teardown context).
  {
    FunctionScope free_fn(*kernel_, "fs/jbd2/transaction.c", "jbd2_journal_free_transaction",
                          100, 115);
    kernel_->Destroy(checkpoint_txn_, 105);
  }
  checkpoint_txn_ = ObjectRef{};
  (void)rng;
}

}  // namespace lockdoc
