#include "src/vfs/types.h"

#include "src/util/logging.h"

namespace lockdoc {
namespace {

// Member kinds for the table-driven layout definitions:
//   d = plain data member            a = atomic_t (filtered)
//   b = blacklisted/out-of-scope     s = spinlock_t
//   m = mutex                        r = rw_semaphore
//   w = rwlock_t                     q = seqlock_t
//   R = range lock over [start, end)
struct MemberSpec {
  const char* name;
  char kind;
};

void AddMembers(TypeLayout* layout, const MemberSpec* specs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const MemberSpec& spec = specs[i];
    switch (spec.kind) {
      case 'd':
        layout->AddMember(spec.name, 8);
        break;
      case 'a':
        layout->AddAtomicMember(spec.name, 4);
        break;
      case 'b':
        layout->AddBlacklistedMember(spec.name, 8);
        break;
      case 's':
        layout->AddLockMember(spec.name, LockType::kSpinlock);
        break;
      case 'm':
        layout->AddLockMember(spec.name, LockType::kMutex);
        break;
      case 'r':
        layout->AddLockMember(spec.name, LockType::kRwSemaphore);
        break;
      case 'w':
        layout->AddLockMember(spec.name, LockType::kRwlock);
        break;
      case 'q':
        layout->AddLockMember(spec.name, LockType::kSeqlock);
        break;
      case 'R':
        layout->AddLockMember(spec.name, LockType::kRangeLock);
        break;
      default:
        LOCKDOC_CHECK(false && "bad member kind");
    }
  }
}

// struct inode, Linux 4.10, i_data (struct address_space) and the
// i_pipe/i_bdev/i_cdev/i_link union unrolled: 65 members, 5 filtered
// (i_lock, i_rwsem, i_count, i_dio_count, i_writecount).
constexpr MemberSpec kInodeMembers[] = {
    {"i_mode", 'd'},          {"i_opflags", 'd'},        {"i_uid", 'd'},
    {"i_gid", 'd'},           {"i_flags", 'd'},          {"i_acl", 'd'},
    {"i_default_acl", 'd'},   {"i_op", 'd'},             {"i_sb", 'd'},
    {"i_mapping", 'd'},       {"i_security", 'd'},       {"i_ino", 'd'},
    {"i_nlink", 'd'},         {"i_rdev", 'd'},           {"i_size", 'd'},
    {"i_atime", 'd'},         {"i_atime_nsec", 'd'},     {"i_mtime", 'd'},
    {"i_ctime", 'd'},         {"i_lock", 's'},           {"i_bytes", 'd'},
    {"i_blkbits", 'd'},       {"i_blocks", 'd'},         {"i_size_seqcount", 'd'},
    {"i_state", 'd'},         {"i_rwsem", 'r'},          {"dirtied_when", 'd'},
    {"dirtied_time_when", 'd'}, {"i_hash", 'd'},         {"i_io_list", 'd'},
    {"i_lru", 'd'},           {"i_sb_list", 'd'},        {"i_wb_list", 'd'},
    {"i_version", 'd'},       {"i_count", 'a'},          {"i_dio_count", 'a'},
    {"i_writecount", 'a'},    {"i_fop", 'd'},            {"i_flctx", 'd'},
    {"i_data.host", 'd'},     {"i_data.page_tree", 'd'}, {"i_data.gfp_mask", 'd'},
    {"i_data.nrexceptional", 'd'}, {"i_data.nrpages", 'd'},
    {"i_data.writeback_index", 'd'}, {"i_data.a_ops", 'd'},
    {"i_data.flags", 'd'},    {"i_data.private_data", 'd'},
    {"i_data.private_list", 'd'}, {"i_dquot", 'd'},      {"i_devices", 'd'},
    {"i_pipe", 'd'},          {"i_bdev", 'd'},           {"i_cdev", 'd'},
    {"i_link", 'd'},          {"i_dir_seq", 'd'},        {"i_generation", 'd'},
    {"i_fsnotify_mask", 'd'}, {"i_fsnotify_marks", 'd'}, {"i_crypt_info", 'd'},
    {"i_private", 'd'},       {"i_wb", 'd'},             {"i_wb_frn_winner", 'd'},
    {"i_wb_frn_avg_time", 'd'}, {"i_wb_frn_history", 'd'},
};
static_assert(std::size(kInodeMembers) == 65);

// struct dentry: 21 members, 1 filtered (d_lock).
constexpr MemberSpec kDentryMembers[] = {
    {"d_flags", 'd'},  {"d_seq", 'd'},     {"d_hash", 'd'},
    {"d_parent", 'd'}, {"d_name", 'd'},    {"d_inode", 'd'},
    {"d_iname", 'd'},  {"d_lock", 's'},    {"d_count", 'd'},
    {"d_op", 'd'},     {"d_sb", 'd'},      {"d_time", 'd'},
    {"d_fsdata", 'd'}, {"d_lru", 'd'},     {"d_child", 'd'},
    {"d_subdirs", 'd'}, {"d_alias", 'd'},  {"d_in_lookup_hash", 'd'},
    {"d_rcu", 'd'},    {"d_wait", 'd'},    {"d_mounted", 'd'},
};
static_assert(std::size(kDentryMembers) == 21);

// struct super_block: 56 members, 3 filtered (s_umount, s_inode_list_lock,
// s_active).
constexpr MemberSpec kSuperBlockMembers[] = {
    {"s_list", 'd'},        {"s_dev", 'd'},          {"s_blocksize_bits", 'd'},
    {"s_blocksize", 'd'},   {"s_maxbytes", 'd'},     {"s_type", 'd'},
    {"s_op", 'd'},          {"dq_op", 'd'},          {"s_qcop", 'd'},
    {"s_export_op", 'd'},   {"s_flags", 'd'},        {"s_iflags", 'd'},
    {"s_magic", 'd'},       {"s_root", 'd'},         {"s_umount", 'r'},
    {"s_count", 'd'},       {"s_active", 'a'},       {"s_security", 'd'},
    {"s_xattr", 'd'},       {"s_fs_info", 'd'},      {"s_max_links", 'd'},
    {"s_mode", 'd'},        {"s_time_gran", 'd'},    {"s_id", 'd'},
    {"s_uuid", 'd'},        {"s_mounts", 'd'},       {"s_bdev", 'd'},
    {"s_bdi", 'd'},         {"s_mtd", 'd'},          {"s_instances", 'd'},
    {"s_quota_types", 'd'}, {"s_dquot", 'd'},        {"s_writers_frozen", 'd'},
    {"s_d_op", 'd'},        {"s_shrink", 'd'},       {"s_remove_count", 'd'},
    {"s_readonly_remount", 'd'}, {"s_dio_done_wq", 'd'}, {"s_pins", 'd'},
    {"s_user_ns", 'd'},     {"s_dentry_lru", 'd'},   {"s_inode_lru", 'd'},
    {"rcu_head", 'd'},      {"destroy_work", 'd'},   {"s_inode_list_lock", 's'},
    {"s_inodes", 'd'},      {"s_inodes_wb", 'd'},    {"s_subtype", 'd'},
    {"s_options", 'd'},     {"s_stack_depth", 'd'},  {"s_anon", 'd'},
    {"s_wb_err", 'd'},      {"s_time_min", 'd'},     {"s_time_max", 'd'},
    {"s_fsnotify_mask", 'd'}, {"s_fsnotify_marks", 'd'},
};
static_assert(std::size(kSuperBlockMembers) == 56);

// struct buffer_head: 13 members, 0 filtered (the real structure is
// synchronized via bit operations on b_state plus external locks).
constexpr MemberSpec kBufferHeadMembers[] = {
    {"b_state", 'd'},        {"b_this_page", 'd'}, {"b_page", 'd'},
    {"b_blocknr", 'd'},      {"b_size", 'd'},      {"b_data", 'd'},
    {"b_bdev", 'd'},         {"b_end_io", 'd'},    {"b_private", 'd'},
    {"b_assoc_buffers", 'd'}, {"b_assoc_map", 'd'}, {"b_count", 'd'},
    {"b_journal_head", 'd'},
};
static_assert(std::size(kBufferHeadMembers) == 13);

// journal_t (jbd2): 58 members, 11 filtered (4 locks, 5 wait queues
// out-of-scope, j_reserved_credits atomic, j_revoke internal).
constexpr MemberSpec kJournalMembers[] = {
    {"j_flags", 'd'},          {"j_errno", 'd'},          {"j_sb_buffer", 'd'},
    {"j_superblock", 'd'},     {"j_format_version", 'd'}, {"j_state_lock", 'w'},
    {"j_barrier_count", 'd'},  {"j_barrier", 'm'},        {"j_running_transaction", 'd'},
    {"j_committing_transaction", 'd'},                    {"j_checkpoint_transactions", 'd'},
    {"j_wait_transaction_locked", 'b'},                   {"j_wait_done_commit", 'b'},
    {"j_wait_commit", 'b'},    {"j_wait_updates", 'b'},   {"j_wait_reserved", 'b'},
    {"j_checkpoint_mutex", 'm'},                          {"j_head", 'd'},
    {"j_tail", 'd'},           {"j_free", 'd'},           {"j_first", 'd'},
    {"j_last", 'd'},           {"j_dev", 'd'},            {"j_blocksize", 'd'},
    {"j_blk_offset", 'd'},     {"j_devname", 'd'},        {"j_fs_dev", 'd'},
    {"j_maxlen", 'd'},         {"j_reserved_credits", 'a'}, {"j_list_lock", 's'},
    {"j_inode", 'd'},          {"j_tail_sequence", 'd'},  {"j_transaction_sequence", 'd'},
    {"j_commit_sequence", 'd'}, {"j_commit_request", 'd'}, {"j_uuid", 'd'},
    {"j_task", 'd'},           {"j_max_transaction_buffers", 'd'},
    {"j_commit_interval", 'd'}, {"j_commit_timer", 'd'},  {"j_revoke", 'b'},
    {"j_revoke_table", 'd'},   {"j_wbuf", 'd'},           {"j_wbufsize", 'd'},
    {"j_last_sync_writer", 'd'},                          {"j_average_commit_time", 'd'},
    {"j_min_batch_time", 'd'}, {"j_max_batch_time", 'd'}, {"j_commit_callback", 'd'},
    {"j_failed_commit", 'd'},  {"j_chksum_driver", 'd'},  {"j_csum_seed", 'd'},
    {"j_private", 'd'},        {"j_proc_entry", 'd'},     {"j_history", 'd'},
    {"j_history_max", 'd'},    {"j_history_cur", 'd'},    {"j_stats", 'd'},
};
static_assert(std::size(kJournalMembers) == 58);

// transaction_t (jbd2): 27 members, 1 filtered (t_handle_lock). The
// historically-int members t_updates, t_outstanding_credits and
// t_handle_count stay plain here; the kernel ops access them exclusively
// through atomic helpers, which the importer's function black list filters
// (this models the paper's finding that they were converted to atomic_t
// without a documentation update).
constexpr MemberSpec kTransactionMembers[] = {
    {"t_journal", 'd'},        {"t_tid", 'd'},            {"t_state", 'd'},
    {"t_log_start", 'd'},      {"t_nr_buffers", 'd'},     {"t_reserved_list", 'd'},
    {"t_buffers", 'd'},        {"t_forget", 'd'},         {"t_checkpoint_list", 'd'},
    {"t_checkpoint_io_list", 'd'},                        {"t_shadow_list", 'd'},
    {"t_log_list", 'd'},       {"t_private_list", 'd'},   {"t_expires", 'd'},
    {"t_start_time", 'd'},     {"t_start", 'd'},          {"t_requested", 'd'},
    {"t_handle_lock", 's'},    {"t_updates", 'd'},        {"t_outstanding_credits", 'd'},
    {"t_handle_count", 'd'},   {"t_synchronous_commit", 'd'},
    {"t_need_data_flush", 'd'}, {"t_inode_list", 'd'},    {"t_chp_stats", 'd'},
    {"t_run_stats", 'd'},      {"t_cpnext", 'd'},
};
static_assert(std::size(kTransactionMembers) == 27);

// struct journal_head (jbd2): 15 members, 0 filtered.
constexpr MemberSpec kJournalHeadMembers[] = {
    {"bh", 'd'},              {"b_jcount", 'd'},         {"b_jlist", 'd'},
    {"b_modified", 'd'},      {"b_frozen_data", 'd'},    {"b_committed_data", 'd'},
    {"b_transaction", 'd'},   {"b_next_transaction", 'd'}, {"b_tnext", 'd'},
    {"b_tprev", 'd'},         {"b_cp_transaction", 'd'}, {"b_cpnext", 'd'},
    {"b_cpprev", 'd'},        {"b_cow_tid", 'd'},        {"b_triggers", 'd'},
};
static_assert(std::size(kJournalHeadMembers) == 15);

// struct pipe_inode_info: 16 members, 1 filtered (mutex).
constexpr MemberSpec kPipeMembers[] = {
    {"mutex", 'm'},          {"wait", 'd'},            {"nrbufs", 'd'},
    {"curbuf", 'd'},         {"buffers", 'd'},         {"readers", 'd'},
    {"writers", 'd'},        {"files", 'd'},           {"waiting_writers", 'd'},
    {"r_counter", 'd'},      {"w_counter", 'd'},       {"tmp_page", 'd'},
    {"fasync_readers", 'd'}, {"fasync_writers", 'd'},  {"bufs", 'd'},
    {"user", 'd'},
};
static_assert(std::size(kPipeMembers) == 16);

// struct block_device: 21 members, 2 filtered (bd_mutex, bd_fsfreeze_count).
constexpr MemberSpec kBlockDeviceMembers[] = {
    {"bd_dev", 'd'},         {"bd_openers", 'd'},      {"bd_inode", 'd'},
    {"bd_super", 'd'},       {"bd_mutex", 'm'},        {"bd_inodes", 'd'},
    {"bd_claiming", 'd'},    {"bd_holder", 'd'},       {"bd_holders", 'd'},
    {"bd_write_holder", 'd'}, {"bd_holder_disks", 'd'}, {"bd_contains", 'd'},
    {"bd_block_size", 'd'},  {"bd_part", 'd'},         {"bd_part_count", 'd'},
    {"bd_invalidated", 'd'}, {"bd_disk", 'd'},         {"bd_queue", 'd'},
    {"bd_list", 'd'},        {"bd_private", 'd'},      {"bd_fsfreeze_count", 'a'},
};
static_assert(std::size(kBlockDeviceMembers) == 21);

// struct cdev: 6 members, 0 filtered.
constexpr MemberSpec kCdevMembers[] = {
    {"kobj", 'd'}, {"owner", 'd'}, {"ops", 'd'}, {"list", 'd'}, {"dev", 'd'}, {"count", 'd'},
};
static_assert(std::size(kCdevMembers) == 6);

// struct backing_dev_info (with the embedded struct bdi_writeback `wb`
// unrolled): 43 members, 2 filtered (wb.list_lock, usage_cnt).
constexpr MemberSpec kBdiMembers[] = {
    {"bdi_list", 'd'},       {"ra_pages", 'd'},        {"io_pages", 'd'},
    {"capabilities", 'd'},   {"congested", 'd'},       {"name", 'd'},
    {"dev", 'd'},            {"owner", 'd'},           {"min_ratio", 'd'},
    {"max_ratio", 'd'},      {"max_prop_frac", 'd'},   {"usage_cnt", 'a'},
    {"wb_congested", 'd'},   {"cgwb_tree", 'd'},       {"cgwb_congested_tree", 'd'},
    {"wb_waitq", 'd'},       {"debug_dir", 'd'},       {"debug_stats", 'd'},
    {"wb.state", 'd'},       {"wb.last_old_flush", 'd'}, {"wb.list_lock", 's'},
    {"wb.b_dirty", 'd'},     {"wb.b_io", 'd'},         {"wb.b_more_io", 'd'},
    {"wb.b_dirty_time", 'd'}, {"wb.bw_time_stamp", 'd'}, {"wb.dirtied_stamp", 'd'},
    {"wb.written_stamp", 'd'}, {"wb.write_bandwidth", 'd'},
    {"wb.avg_write_bandwidth", 'd'},                    {"wb.dirty_ratelimit", 'd'},
    {"wb.balanced_dirty_ratelimit", 'd'},               {"wb.completions", 'd'},
    {"wb.dirty_exceeded", 'd'},                         {"wb.start_all_reason", 'd'},
    {"wb.blkcg_css", 'd'},   {"wb.memcg_css", 'd'},     {"wb.congested", 'd'},
    {"wb.dwork", 'd'},       {"wb.bdi", 'd'},           {"wb.stat_dirtied", 'd'},
    {"wb.stat_written", 'd'}, {"wb.work_list", 'd'},
};
static_assert(std::size(kBdiMembers) == 43);

// struct mm_struct (trimmed to the address-space core): 32 members,
// 4 filtered (mmap_lock modelled as a range lock over the user address
// space, page_table_lock, mm_users, mm_count).
constexpr MemberSpec kMmStructMembers[] = {
    {"mmap", 'd'},            {"mm_rb", 'd'},           {"vmacache_seqnum", 'd'},
    {"mmap_base", 'd'},       {"task_size", 'd'},       {"pgd", 'd'},
    {"mm_users", 'a'},        {"mm_count", 'a'},        {"map_count", 'd'},
    {"page_table_lock", 's'}, {"mmap_lock", 'R'},       {"hiwater_rss", 'd'},
    {"hiwater_vm", 'd'},      {"total_vm", 'd'},        {"locked_vm", 'd'},
    {"pinned_vm", 'd'},       {"data_vm", 'd'},         {"exec_vm", 'd'},
    {"stack_vm", 'd'},        {"def_flags", 'd'},       {"start_code", 'd'},
    {"end_code", 'd'},        {"start_data", 'd'},      {"end_data", 'd'},
    {"start_brk", 'd'},       {"brk", 'd'},             {"start_stack", 'd'},
    {"arg_start", 'd'},       {"arg_end", 'd'},         {"env_start", 'd'},
    {"env_end", 'd'},         {"flags", 'd'},
};
static_assert(std::size(kMmStructMembers) == 32);

// struct vm_area_struct: 15 members, 0 filtered (protected externally by
// the owning mm's mmap_lock / page_table_lock).
constexpr MemberSpec kVmAreaMembers[] = {
    {"vm_start", 'd'},        {"vm_end", 'd'},          {"vm_next", 'd'},
    {"vm_prev", 'd'},         {"vm_rb", 'd'},           {"rb_subtree_gap", 'd'},
    {"vm_mm", 'd'},           {"vm_page_prot", 'd'},    {"vm_flags", 'd'},
    {"anon_vma_chain", 'd'},  {"anon_vma", 'd'},        {"vm_ops", 'd'},
    {"vm_pgoff", 'd'},        {"vm_file", 'd'},         {"vm_private_data", 'd'},
};
static_assert(std::size(kVmAreaMembers) == 15);

template <size_t N>
TypeId RegisterType(TypeRegistry* registry, const char* name, const MemberSpec (&specs)[N]) {
  auto layout = std::make_unique<TypeLayout>(name);
  AddMembers(layout.get(), specs, N);
  return registry->Register(std::move(layout));
}

}  // namespace

std::unique_ptr<TypeRegistry> BuildVfsRegistry(VfsIds* ids) {
  LOCKDOC_CHECK(ids != nullptr);
  auto registry = std::make_unique<TypeRegistry>();

  ids->inode = RegisterType(registry.get(), "inode", kInodeMembers);
  ids->dentry = RegisterType(registry.get(), "dentry", kDentryMembers);
  ids->super_block = RegisterType(registry.get(), "super_block", kSuperBlockMembers);
  ids->buffer_head = RegisterType(registry.get(), "buffer_head", kBufferHeadMembers);
  ids->journal = RegisterType(registry.get(), "journal_t", kJournalMembers);
  ids->transaction = RegisterType(registry.get(), "transaction_t", kTransactionMembers);
  ids->journal_head = RegisterType(registry.get(), "journal_head", kJournalHeadMembers);
  ids->pipe = RegisterType(registry.get(), "pipe_inode_info", kPipeMembers);
  ids->block_device = RegisterType(registry.get(), "block_device", kBlockDeviceMembers);
  ids->cdev = RegisterType(registry.get(), "cdev", kCdevMembers);
  ids->bdi = RegisterType(registry.get(), "backing_dev_info", kBdiMembers);

  ids->fs_anon_inodefs = registry->RegisterSubclass(ids->inode, "anon_inodefs");
  ids->fs_bdev = registry->RegisterSubclass(ids->inode, "bdev");
  ids->fs_debugfs = registry->RegisterSubclass(ids->inode, "debugfs");
  ids->fs_devtmpfs = registry->RegisterSubclass(ids->inode, "devtmpfs");
  ids->fs_ext4 = registry->RegisterSubclass(ids->inode, "ext4");
  ids->fs_pipefs = registry->RegisterSubclass(ids->inode, "pipefs");
  ids->fs_proc = registry->RegisterSubclass(ids->inode, "proc");
  ids->fs_rootfs = registry->RegisterSubclass(ids->inode, "rootfs");
  ids->fs_sockfs = registry->RegisterSubclass(ids->inode, "sockfs");
  ids->fs_sysfs = registry->RegisterSubclass(ids->inode, "sysfs");
  ids->fs_tmpfs = registry->RegisterSubclass(ids->inode, "tmpfs");

  ids->all_filesystems = {ids->fs_anon_inodefs, ids->fs_bdev,   ids->fs_debugfs,
                          ids->fs_devtmpfs,     ids->fs_ext4,   ids->fs_pipefs,
                          ids->fs_proc,         ids->fs_rootfs, ids->fs_sockfs,
                          ids->fs_sysfs,        ids->fs_tmpfs};
  return registry;
}

std::unique_ptr<TypeRegistry> BuildVfsMmRegistry(VfsIds* ids) {
  // The mm types append strictly after the vfs types so every base id stays
  // identical — the whole point of the dual-registry scheme.
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(ids);
  ids->mm_struct = RegisterType(registry.get(), "mm_struct", kMmStructMembers);
  ids->vm_area_struct = RegisterType(registry.get(), "vm_area_struct", kVmAreaMembers);
  return registry;
}

size_t VfsBaseTypeCount() { return 11; }

MemberIndex M(const TypeRegistry& registry, TypeId type, std::string_view member) {
  auto index = registry.layout(type).FindMember(member);
  LOCKDOC_CHECK(index.has_value());
  return *index;
}

}  // namespace lockdoc
