// Block/char device and writeback operations of the simulated kernel
// (fs/block_dev.c, fs/char_dev.c, fs/fs-writeback.c, mm/backing-dev.c,
// mm/page-writeback.c), plus the interrupt handlers.
//
// Ground truth: block_device counters change under ES(bd_mutex) and the
// global bdev_lock guards claiming; cdev is fully consistent under the
// global chrdevs_lock (the paper's only completely violation-free device
// type); bdi writeback lists and bandwidth statistics belong to
// ES(wb.list_lock), with a sloppy task-side path and a timer softirq
// contributing deviations.
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {

void VfsKernel::BdevOpen(Rng& rng) {
  if (bdevs_.size() < 3) {
    FunctionScope alloc(*kernel_, "fs/block_dev.c", "bdget", 650, 690);
    ObjectRef bdev = kernel_->Create(ids_.block_device, kNoSubclass, 655);
    kernel_->Write(bdev, vm_.bd_dev, 660);
    kernel_->Write(bdev, vm_.bd_inode, 661);
    kernel_->Write(bdev, vm_.bd_block_size, 662);
    kernel_->Write(bdev, vm_.bd_list, 663);
    kernel_->Write(bdev, vm_.bd_disk, 664);
    kernel_->Write(bdev, vm_.bd_queue, 665);
    bdevs_.push_back(bdev);
  }
  const ObjectRef& bdev = bdevs_[rng.Below(bdevs_.size())];

  FunctionScope fn(*kernel_, "fs/block_dev.c", "__blkdev_get", 1350, 1420);
  // Claiming is guarded by the global bdev_lock.
  kernel_->LockGlobal(bdev_lock_, 1355);
  kernel_->Read(bdev, vm_.bd_claiming, 1357);
  kernel_->Write(bdev, vm_.bd_claiming, 1358);
  kernel_->Write(bdev, vm_.bd_holder, 1359);
  kernel_->UnlockGlobal(bdev_lock_, 1361);

  kernel_->Lock(bdev, vm_.bd_mutex, 1370);
  kernel_->Read(bdev, vm_.bd_openers, 1372);
  kernel_->Write(bdev, vm_.bd_openers, 1373);
  kernel_->Read(bdev, vm_.bd_holders, 1374);
  kernel_->Write(bdev, vm_.bd_holders, 1375);
  kernel_->Read(bdev, vm_.bd_part_count, 1376);
  kernel_->Write(bdev, vm_.bd_part_count, 1377);
  kernel_->Read(bdev, vm_.bd_invalidated, 1378);
  kernel_->Read(bdev, vm_.bd_disk, 1380);
  kernel_->Read(bdev, vm_.bd_part, 1381);
  kernel_->Write(bdev, vm_.bd_contains, 1382);
  kernel_->Unlock(bdev, vm_.bd_mutex, 1400);

  // A bdev-backed inode accompanies the device.
  MountState& state = mount(ids_.fs_bdev);
  if (state.files.size() < 3) {
    FunctionScope ifn(*kernel_, "fs/block_dev.c", "bdget_inode", 700, 730);
    FileState file;
    file.inode = AllocInode(ids_.fs_bdev, rng);
    file.dentry = AllocDentry(file.inode, rng);
    file.alive = true;
    kernel_->Lock(file.inode, im_.i_lock, 710);
    kernel_->Write(file.inode, im_.i_bdev, 712);
    kernel_->Write(file.inode, im_.i_state, 713);
    kernel_->Unlock(file.inode, im_.i_lock, 715);
    state.files.push_back(file);
  } else {
    const FileState& file = state.files[rng.Below(state.files.size())];
    FunctionScope ifn(*kernel_, "fs/block_dev.c", "bd_acquire", 740, 770);
    kernel_->Read(file.inode, im_.i_bdev, 745);
    kernel_->Read(file.inode, im_.i_rdev, 746);
    kernel_->Read(file.inode, im_.i_mode, 747);
    // bdev inode size tracks the device size under bd_mutex (EO); a rare
    // revalidation path updates it bare (inode:bdev's few Tab. 7 events).
    if (plan_.bdev_lockless_reads && rng.Chance(0.05)) {
      kernel_->Write(file.inode, im_.i_size, 760);
      kernel_->Write(file.inode, im_.i_size_seqcount, 761);
    } else {
      kernel_->Lock(bdev, vm_.bd_mutex, 750);
      kernel_->Write(file.inode, im_.i_size, 752);
      kernel_->Write(file.inode, im_.i_size_seqcount, 753);
      kernel_->Unlock(bdev, vm_.bd_mutex, 755);
    }
  }
}

void VfsKernel::BdevRelease(Rng& rng) {
  if (bdevs_.empty()) {
    return;
  }
  const ObjectRef& bdev = bdevs_[rng.Below(bdevs_.size())];
  FunctionScope fn(*kernel_, "fs/block_dev.c", "__blkdev_put", 1500, 1550);
  kernel_->Lock(bdev, vm_.bd_mutex, 1505);
  kernel_->Read(bdev, vm_.bd_openers, 1510);
  kernel_->Write(bdev, vm_.bd_openers, 1511);
  kernel_->Write(bdev, vm_.bd_part_count, 1512);
  kernel_->Write(bdev, vm_.bd_write_holder, 1513);
  kernel_->Unlock(bdev, vm_.bd_mutex, 1520);
  if (plan_.bdev_lockless_reads && !bdev_lockless_read_done_) {
    // The single lockless peek (block_device's one violating event in
    // Tab. 7).
    bdev_lockless_read_done_ = true;
    kernel_->Read(bdev, vm_.bd_invalidated, 1530);
  }
}

void VfsKernel::CdevAddAndOpen(Rng& rng) {
  if (cdevs_.size() < 4) {
    FunctionScope alloc(*kernel_, "fs/char_dev.c", "cdev_alloc", 440, 460);
    ObjectRef cdev = kernel_->Create(ids_.cdev, kNoSubclass, 445);
    kernel_->Write(cdev, cm_.kobj, 450);
    kernel_->Write(cdev, cm_.owner, 451);
    kernel_->Write(cdev, cm_.ops, 452);
    cdevs_.push_back(cdev);
  }
  const ObjectRef& cdev = cdevs_[rng.Below(cdevs_.size())];

  FunctionScope fn(*kernel_, "fs/char_dev.c", "cdev_add", 480, 520);
  kernel_->LockGlobal(chrdevs_lock_, 485);
  kernel_->Write(cdev, cm_.list, 490);
  kernel_->Write(cdev, cm_.dev, 491);
  kernel_->Read(cdev, cm_.count, 492);
  kernel_->Write(cdev, cm_.count, 493);
  kernel_->Read(cdev, cm_.ops, 494);
  kernel_->Read(cdev, cm_.owner, 495);
  kernel_->Read(cdev, cm_.kobj, 496);
  kernel_->Write(cdev, cm_.kobj, 497);
  kernel_->UnlockGlobal(chrdevs_lock_, 510);
}

void VfsKernel::WritebackSingleInode(const ObjectRef& inode, Rng& rng) {
  FunctionScope fn(*kernel_, "fs/fs-writeback.c", "__writeback_single_inode", 1450, 1520);
  kernel_->Lock(inode, im_.i_lock, 1455);
  kernel_->Read(inode, im_.i_state, 1457);
  kernel_->Write(inode, im_.i_state, 1458);
  kernel_->Unlock(inode, im_.i_lock, 1460);

  // i_data.writeback_index advances while the superblock's s_umount is
  // held by the caller (Fig. 8: EO(s_umount in super_block)).
  kernel_->Write(inode, im_.d_writeback_index, 1470);
  kernel_->Read(inode, im_.d_nrpages, 1471);

  // Requeue on the writeback lists.
  kernel_->Lock(bdi_, wm_.wb_list_lock, 1480);
  kernel_->Write(inode, im_.i_io_list, 1482);
  kernel_->Write(inode, im_.i_wb_list, 1483);
  kernel_->Read(inode, im_.dirtied_when, 1484);
  kernel_->Write(bdi_, wm_.wb_b_io, 1486);
  kernel_->Write(bdi_, wm_.wb_stat_written, 1487);
  kernel_->Write(bdi_, wm_.wb_written_stamp, 1488);
  kernel_->Write(bdi_, wm_.wb_completions, 1489);
  if (rng.Chance(0.4)) {
    kernel_->Read(bdi_, wm_.wb_b_more_io, 1491);
    kernel_->Write(bdi_, wm_.wb_b_more_io, 1492);
    kernel_->Write(bdi_, wm_.wb_b_dirty_time, 1493);
    kernel_->Read(bdi_, wm_.wb_dirty_exceeded, 1494);
    kernel_->Write(bdi_, wm_.wb_dirty_exceeded, 1495);
  }
  kernel_->Unlock(bdi_, wm_.wb_list_lock, 1490);

  // Bandwidth statistics: the dominant path holds wb.list_lock; a sloppy
  // minority does not (spread over many synthetic call sites).
  if (rng.Chance(plan_.bdi_stats_sloppiness)) {
    FunctionScope stats(*kernel_, "mm/page-writeback.c", "__wb_update_bandwidth", 1380, 1440);
    uint32_t line = 1385 + static_cast<uint32_t>(rng.Below(50));
    kernel_->Write(bdi_, wm_.wb_write_bandwidth, line);
    kernel_->Write(bdi_, wm_.wb_avg_write_bandwidth, line + 1);
    if (rng.Chance(0.5)) {
      kernel_->Write(bdi_, wm_.wb_dirty_ratelimit, line + 2);
      kernel_->Write(bdi_, wm_.wb_bw_time_stamp, line + 3);
    }
  } else {
    FunctionScope stats(*kernel_, "mm/page-writeback.c", "wb_update_bandwidth", 1340, 1370);
    kernel_->Lock(bdi_, wm_.wb_list_lock, 1345);
    kernel_->Write(bdi_, wm_.wb_write_bandwidth, 1350);
    kernel_->Write(bdi_, wm_.wb_avg_write_bandwidth, 1351);
    kernel_->Write(bdi_, wm_.wb_dirty_ratelimit, 1352);
    kernel_->Write(bdi_, wm_.wb_balanced_dirty_ratelimit, 1353);
    kernel_->Write(bdi_, wm_.wb_bw_time_stamp, 1354);
    kernel_->Unlock(bdi_, wm_.wb_list_lock, 1360);
  }
}

void VfsKernel::WritebackRun(Rng& rng) {
  FunctionScope fn(*kernel_, "fs/fs-writeback.c", "wb_writeback", 1800, 1880);
  MountState& state = mount(ids_.fs_ext4);

  kernel_->Lock(state.sb, sm_.s_umount, 1805, AcquireMode::kShared);
  kernel_->Lock(bdi_, wm_.wb_list_lock, 1810);
  kernel_->Read(bdi_, wm_.wb_b_dirty, 1812);
  kernel_->Write(bdi_, wm_.wb_b_io, 1813);
  kernel_->Read(bdi_, wm_.wb_b_more_io, 1814);
  kernel_->Write(bdi_, wm_.wb_state, 1815);
  kernel_->Unlock(bdi_, wm_.wb_list_lock, 1820);

  size_t written = 0;
  for (FileState& file : state.files) {
    if (written >= 3) {
      break;
    }
    if (!file.alive) {
      continue;
    }
    WritebackSingleInode(file.inode, rng);
    ++written;
  }
  kernel_->Unlock(state.sb, sm_.s_umount, 1870);
}

void VfsKernel::TimerSoftirq(SimKernel& sim) {
  if (!mounted_) {
    return;
  }
  FunctionScope fn(sim, "fs/fs-writeback.c", "wb_wakeup_timer_fn", 950, 990);
  // The timer runs in softirq context; it must not spin on a lock the
  // interrupted flow may hold, so it uses trylock and backs off.
  if (sim.TryLock(bdi_, wm_.wb_list_lock, 955)) {
    sim.Write(bdi_, wm_.wb_last_old_flush, 960);
    sim.Read(bdi_, wm_.wb_b_dirty, 961);
    sim.Write(bdi_, wm_.wb_state, 962);
    sim.Write(bdi_, wm_.wb_work_list, 963);
    sim.Unlock(bdi_, wm_.wb_list_lock, 970);
  }
  // Commit-interval bookkeeping on the journal.
  if (journal_.valid() && sim.TryLock(journal_, jm_.j_state_lock, 975)) {
    sim.Read(journal_, jm_.j_commit_interval, 977);
    sim.Write(journal_, jm_.j_commit_request, 978);
    sim.Unlock(journal_, jm_.j_state_lock, 980);
  }
  // The commit-timer callback arms the running transaction's expiry with no
  // lock at all — the dominant discipline for t_expires, contradicting its
  // documented j_state_lock rule.
  if (running_txn_.valid()) {
    sim.Write(running_txn_, tm_.t_expires, 985);
  }
}

void VfsKernel::BlockIoHardirq(SimKernel& sim) {
  if (!mounted_ || buffers_.empty()) {
    return;
  }
  FunctionScope fn(sim, "fs/buffer.c", "end_buffer_async_write", 380, 420);
  BufferState& buffer = buffers_[fault_rng_.Below(buffers_.size())];
  // IRQ completion touches the buffer without taking sleeping locks —
  // realistic, and a steady source of buffer_head rule violations from
  // hardirq context. Varied lines model the many distinct completion sites.
  sim.Read(buffer.bh, bm_.b_page, 385);
  if (plan_.irq_buffer_completion_writes) {
    if (fault_rng_.Chance(0.2)) {
      sim.Write(buffer.bh, bm_.b_end_io, 390 + static_cast<uint32_t>(fault_rng_.Below(20)));
    }
    if (fault_rng_.Chance(0.08)) {
      sim.Write(buffer.bh, bm_.b_count, 412 + static_cast<uint32_t>(fault_rng_.Below(8)));
    }
  }
}

}  // namespace lockdoc
