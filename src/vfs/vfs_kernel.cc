#include "src/vfs/vfs_kernel.h"

#include <set>

#include "src/coverage/coverage.h"
#include "src/util/logging.h"

namespace lockdoc {

FaultPlan FaultPlan::Clean() {
  FaultPlan plan;
  plan.inode_set_flags_bug = false;
  plan.remove_inode_hash_neighbors = false;
  plan.libfs_d_subdirs_rcu_walk = false;
  plan.ext4_committing_txn_peek = false;
  plan.buffer_head_sloppiness = 0.0;
  plan.bdi_stats_sloppiness = 0.0;
  plan.journal_stats_sloppiness = 0.0;
  plan.sb_flags_sloppiness = 0.0;
  plan.ext4_delalloc_i_blocks = 0.0;
  plan.pipe_poll_lockless = false;
  plan.bdev_lockless_reads = false;
  plan.irq_buffer_completion_writes = false;
  plan.lru_lock_inversion = false;
  plan.mmap_nonoverlap_write = false;
  plan.mm_lock_cycle = false;
  return plan;
}

VfsKernel::VfsKernel(SimKernel* kernel, const TypeRegistry* registry, const VfsIds& ids,
                     FaultPlan plan)
    : kernel_(kernel), registry_(registry), ids_(ids), plan_(plan), fault_rng_(plan.seed) {
  LOCKDOC_CHECK(kernel_ != nullptr);
  LOCKDOC_CHECK(registry_ != nullptr);

  const TypeRegistry& r = *registry_;
  auto i = [&](std::string_view name) { return M(r, ids_.inode, name); };
  im_ = {i("i_mode"), i("i_opflags"), i("i_uid"), i("i_gid"), i("i_flags"), i("i_acl"),
         i("i_default_acl"), i("i_op"), i("i_sb"), i("i_mapping"), i("i_security"), i("i_ino"),
         i("i_nlink"), i("i_rdev"), i("i_size"), i("i_atime"), i("i_atime_nsec"), i("i_mtime"),
         i("i_ctime"), i("i_lock"), i("i_bytes"), i("i_blkbits"), i("i_blocks"),
         i("i_size_seqcount"), i("i_state"), i("i_rwsem"), i("dirtied_when"),
         i("dirtied_time_when"), i("i_hash"), i("i_io_list"), i("i_lru"), i("i_sb_list"),
         i("i_wb_list"), i("i_version"), i("i_count"), i("i_dio_count"), i("i_writecount"),
         i("i_fop"), i("i_flctx"), i("i_data.host"), i("i_data.page_tree"),
         i("i_data.gfp_mask"), i("i_data.nrexceptional"), i("i_data.nrpages"),
         i("i_data.writeback_index"), i("i_data.a_ops"), i("i_data.flags"),
         i("i_data.private_data"), i("i_data.private_list"), i("i_dquot"), i("i_devices"),
         i("i_pipe"), i("i_bdev"), i("i_cdev"), i("i_link"), i("i_dir_seq"), i("i_generation"),
         i("i_fsnotify_mask"), i("i_fsnotify_marks"), i("i_crypt_info"), i("i_private"),
         i("i_wb"), i("i_wb_frn_winner"), i("i_wb_frn_avg_time"), i("i_wb_frn_history")};

  auto d = [&](std::string_view name) { return M(r, ids_.dentry, name); };
  dm_ = {d("d_flags"), d("d_seq"), d("d_hash"), d("d_parent"), d("d_name"), d("d_inode"),
         d("d_iname"), d("d_lock"), d("d_count"), d("d_op"), d("d_sb"), d("d_time"),
         d("d_fsdata"), d("d_lru"), d("d_child"), d("d_subdirs"), d("d_alias"),
         d("d_in_lookup_hash"), d("d_rcu"), d("d_wait"), d("d_mounted")};

  auto s = [&](std::string_view name) { return M(r, ids_.super_block, name); };
  sm_ = {s("s_list"), s("s_dev"), s("s_blocksize_bits"), s("s_blocksize"), s("s_maxbytes"),
         s("s_type"), s("s_op"), s("s_flags"), s("s_iflags"), s("s_magic"), s("s_root"),
         s("s_umount"), s("s_count"), s("s_security"), s("s_fs_info"), s("s_mode"),
         s("s_time_gran"), s("s_id"), s("s_mounts"), s("s_bdev"), s("s_bdi"), s("s_dentry_lru"),
         s("s_inode_lru"), s("s_inode_list_lock"), s("s_inodes"), s("s_inodes_wb"),
         s("s_wb_err")};

  auto b = [&](std::string_view name) { return M(r, ids_.buffer_head, name); };
  bm_ = {b("b_state"), b("b_this_page"), b("b_page"), b("b_blocknr"), b("b_size"), b("b_data"),
         b("b_bdev"), b("b_end_io"), b("b_private"), b("b_assoc_buffers"), b("b_assoc_map"),
         b("b_count"), b("b_journal_head")};

  auto j = [&](std::string_view name) { return M(r, ids_.journal, name); };
  jm_ = {j("j_flags"), j("j_errno"), j("j_sb_buffer"), j("j_superblock"), j("j_state_lock"),
         j("j_barrier_count"), j("j_barrier"), j("j_running_transaction"),
         j("j_committing_transaction"), j("j_checkpoint_transactions"), j("j_checkpoint_mutex"),
         j("j_head"), j("j_tail"), j("j_free"), j("j_first"), j("j_last"), j("j_blocksize"),
         j("j_maxlen"), j("j_list_lock"), j("j_tail_sequence"), j("j_transaction_sequence"),
         j("j_commit_sequence"), j("j_commit_request"), j("j_task"),
         j("j_max_transaction_buffers"), j("j_commit_interval"), j("j_wbuf"), j("j_wbufsize"),
         j("j_last_sync_writer"), j("j_average_commit_time"), j("j_min_batch_time"),
         j("j_max_batch_time"), j("j_failed_commit"), j("j_private"), j("j_history_cur"),
         j("j_stats")};

  auto t = [&](std::string_view name) { return M(r, ids_.transaction, name); };
  tm_ = {t("t_journal"), t("t_tid"), t("t_state"), t("t_log_start"), t("t_nr_buffers"),
         t("t_reserved_list"), t("t_buffers"), t("t_forget"), t("t_checkpoint_list"),
         t("t_checkpoint_io_list"), t("t_shadow_list"), t("t_log_list"), t("t_private_list"),
         t("t_expires"), t("t_start_time"), t("t_start"), t("t_requested"), t("t_handle_lock"),
         t("t_updates"), t("t_outstanding_credits"), t("t_handle_count"),
         t("t_synchronous_commit"), t("t_need_data_flush"), t("t_inode_list"), t("t_chp_stats"),
         t("t_run_stats"), t("t_cpnext")};

  auto h = [&](std::string_view name) { return M(r, ids_.journal_head, name); };
  hm_ = {h("bh"), h("b_jcount"), h("b_jlist"), h("b_modified"), h("b_frozen_data"),
         h("b_committed_data"), h("b_transaction"), h("b_next_transaction"), h("b_tnext"),
         h("b_tprev"), h("b_cp_transaction"), h("b_cpnext"), h("b_cpprev"), h("b_cow_tid"),
         h("b_triggers")};

  auto p = [&](std::string_view name) { return M(r, ids_.pipe, name); };
  pm_ = {p("mutex"), p("wait"), p("nrbufs"), p("curbuf"), p("buffers"), p("readers"),
         p("writers"), p("files"), p("waiting_writers"), p("r_counter"), p("w_counter"),
         p("tmp_page"), p("fasync_readers"), p("fasync_writers"), p("bufs"), p("user")};

  auto v = [&](std::string_view name) { return M(r, ids_.block_device, name); };
  vm_ = {v("bd_dev"), v("bd_openers"), v("bd_inode"), v("bd_super"), v("bd_mutex"),
         v("bd_inodes"), v("bd_claiming"), v("bd_holder"), v("bd_holders"),
         v("bd_write_holder"), v("bd_contains"), v("bd_block_size"), v("bd_part"),
         v("bd_part_count"), v("bd_invalidated"), v("bd_disk"), v("bd_queue"), v("bd_list"),
         v("bd_private")};

  auto c = [&](std::string_view name) { return M(r, ids_.cdev, name); };
  cm_ = {c("kobj"), c("owner"), c("ops"), c("list"), c("dev"), c("count")};

  auto w = [&](std::string_view name) { return M(r, ids_.bdi, name); };
  wm_ = {w("bdi_list"), w("ra_pages"), w("io_pages"), w("capabilities"), w("name"), w("dev"),
         w("min_ratio"), w("max_ratio"), w("wb.state"), w("wb.last_old_flush"),
         w("wb.list_lock"), w("wb.b_dirty"), w("wb.b_io"), w("wb.b_more_io"),
         w("wb.b_dirty_time"), w("wb.bw_time_stamp"), w("wb.dirtied_stamp"),
         w("wb.written_stamp"), w("wb.write_bandwidth"), w("wb.avg_write_bandwidth"),
         w("wb.dirty_ratelimit"), w("wb.balanced_dirty_ratelimit"), w("wb.completions"),
         w("wb.dirty_exceeded"), w("wb.stat_dirtied"), w("wb.stat_written"), w("wb.work_list")};

  // Global locks (the kernel's statically allocated ones).
  inode_hash_lock_ = kernel_->DefineStaticLock("inode_hash_lock", LockType::kSpinlock);
  inode_lru_lock_ = kernel_->DefineStaticLock("inode_lru_lock", LockType::kSpinlock);
  sb_lock_ = kernel_->DefineStaticLock("sb_lock", LockType::kSpinlock);
  rename_lock_ = kernel_->DefineStaticLock("rename_lock", LockType::kSeqlock);
  dcache_lru_lock_ = kernel_->DefineStaticLock("dcache_lru_lock", LockType::kSpinlock);
  dcache_hash_lock_ = kernel_->DefineStaticLock("dcache_hash_lock", LockType::kSpinlock);
  bdev_lock_ = kernel_->DefineStaticLock("bdev_lock", LockType::kSpinlock);
  chrdevs_lock_ = kernel_->DefineStaticLock("chrdevs_lock", LockType::kMutex);
  pipe_fs_lock_ = kernel_->DefineStaticLock("pipe_fs_lock", LockType::kSpinlock);
  sysfs_mutex_ = kernel_->DefineStaticLock("sysfs_mutex", LockType::kMutex);
}

VfsKernel::~VfsKernel() = default;

VfsKernel::MountState& VfsKernel::mount(SubclassId fs) {
  for (MountState& state : mounts_) {
    if (state.fs == fs) {
      return state;
    }
  }
  LOCKDOC_CHECK(false && "filesystem not mounted");
  static MountState dummy;
  return dummy;
}

const VfsKernel::MountState& VfsKernel::mount(SubclassId fs) const {
  return const_cast<VfsKernel*>(this)->mount(fs);
}

size_t VfsKernel::file_count(SubclassId fs) const { return mount(fs).files.size(); }

const VfsKernel::FileState& VfsKernel::ParentOf(const MountState& state,
                                                const FileState& file) const {
  if (file.parent == SIZE_MAX) {
    return state.root;
  }
  LOCKDOC_CHECK(file.parent < state.files.size());
  const FileState& parent = state.files[file.parent];
  LOCKDOC_CHECK(parent.alive && parent.is_dir);
  return parent;
}

size_t VfsKernel::PickParentIndex(MountState& state, Rng& rng) const {
  if (rng.Chance(0.3)) {
    // Try to nest under a live subdirectory.
    size_t count = state.files.size();
    if (count > 0) {
      size_t start = rng.Below(count);
      for (size_t i = 0; i < count; ++i) {
        size_t candidate = (start + i) % count;
        if (state.files[candidate].alive && state.files[candidate].is_dir) {
          return candidate;
        }
      }
    }
  }
  return SIZE_MAX;  // The mount root.
}

bool VfsKernel::IsDirectory(SubclassId fs, size_t index) const {
  const MountState& state = mount(fs);
  return index < state.files.size() && state.files[index].alive &&
         state.files[index].is_dir;
}

bool VfsKernel::CanUnlink(SubclassId fs, size_t index) const {
  const MountState& state = mount(fs);
  if (index >= state.files.size() || !state.files[index].alive) {
    return false;
  }
  if (!state.files[index].is_dir) {
    return true;
  }
  for (const FileState& file : state.files) {
    if (file.alive && file.parent == index) {
      return false;  // Non-empty directory.
    }
  }
  return true;
}

bool VfsKernel::file_alive(SubclassId fs, size_t index) const {
  const MountState& state = mount(fs);
  return index < state.files.size() && state.files[index].alive;
}

void VfsKernel::MountAll() {
  LOCKDOC_CHECK(!mounted_);
  Rng rng(plan_.seed ^ 0x5eedULL);

  // Everything below happens during boot/mount: field initialization is
  // deliberately lock-free and filtered by the init/teardown black list.
  FunctionScope boot(*kernel_, "init/main.c", "vfs_caches_init", 10, 60);

  // Backing device.
  {
    FunctionScope fn(*kernel_, "mm/backing-dev.c", "bdi_init", 20, 80);
    bdi_ = kernel_->Create(ids_.bdi, kNoSubclass, 25);
    kernel_->Write(bdi_, wm_.ra_pages, 30);
    kernel_->Write(bdi_, wm_.io_pages, 31);
    kernel_->Write(bdi_, wm_.capabilities, 32);
    kernel_->Write(bdi_, wm_.name, 33);
    kernel_->Write(bdi_, wm_.min_ratio, 34);
    kernel_->Write(bdi_, wm_.max_ratio, 35);
    kernel_->Write(bdi_, wm_.wb_state, 40);
    kernel_->Write(bdi_, wm_.wb_b_dirty, 41);
    kernel_->Write(bdi_, wm_.wb_b_io, 42);
    kernel_->Write(bdi_, wm_.wb_b_more_io, 43);
    kernel_->Write(bdi_, wm_.wb_write_bandwidth, 44);
    kernel_->Write(bdi_, wm_.wb_dirty_ratelimit, 45);
  }

  // Journal plus the initial running transaction.
  {
    FunctionScope fn(*kernel_, "fs/jbd2/journal.c", "jbd2_journal_init_inode", 100, 170);
    journal_ = kernel_->Create(ids_.journal, kNoSubclass, 105);
    kernel_->Write(journal_, jm_.j_flags, 110);
    kernel_->Write(journal_, jm_.j_blocksize, 111);
    kernel_->Write(journal_, jm_.j_maxlen, 112);
    kernel_->Write(journal_, jm_.j_head, 113);
    kernel_->Write(journal_, jm_.j_tail, 114);
    kernel_->Write(journal_, jm_.j_free, 115);
    kernel_->Write(journal_, jm_.j_first, 116);
    kernel_->Write(journal_, jm_.j_last, 117);
    kernel_->Write(journal_, jm_.j_commit_interval, 118);
    kernel_->Write(journal_, jm_.j_max_transaction_buffers, 119);

    running_txn_ = kernel_->Create(ids_.transaction, kNoSubclass, 130);
    kernel_->Write(running_txn_, tm_.t_journal, 131);
    kernel_->Write(running_txn_, tm_.t_tid, 132);
    kernel_->Write(running_txn_, tm_.t_state, 133);
    kernel_->Write(running_txn_, tm_.t_start_time, 134);
    kernel_->Write(journal_, jm_.j_running_transaction, 140);
  }

  // Buffer pool with journal heads.
  for (int n = 0; n < 24; ++n) {
    FunctionScope fn(*kernel_, "fs/buffer.c", "alloc_buffer_head", 30, 60);
    BufferState buffer;
    buffer.bh = kernel_->Create(ids_.buffer_head, kNoSubclass, 33);
    kernel_->Write(buffer.bh, bm_.b_state, 35);
    kernel_->Write(buffer.bh, bm_.b_blocknr, 36);
    kernel_->Write(buffer.bh, bm_.b_size, 37);
    kernel_->Write(buffer.bh, bm_.b_data, 38);
    kernel_->Write(buffer.bh, bm_.b_count, 39);
    if (n % 2 == 0) {
      FunctionScope jfn(*kernel_, "fs/jbd2/journal.c", "jbd2_journal_add_journal_head", 400,
                        440);
      buffer.jh = kernel_->Create(ids_.journal_head, kNoSubclass, 405);
      kernel_->Write(buffer.jh, hm_.bh, 410);
      kernel_->Write(buffer.jh, hm_.b_jcount, 411);
      kernel_->Write(buffer.jh, hm_.b_jlist, 412);
      kernel_->Write(buffer.bh, bm_.b_journal_head, 430);
      kernel_->Write(buffer.bh, bm_.b_private, 431);
    }
    buffers_.push_back(buffer);
  }

  // Super blocks + roots for every filesystem.
  for (SubclassId fs : ids_.all_filesystems) {
    FunctionScope fn(*kernel_, "fs/super.c", "sget_userns", 450, 520);
    MountState state;
    state.fs = fs;
    state.sb = kernel_->Create(ids_.super_block, kNoSubclass, 455);
    kernel_->Write(state.sb, sm_.s_dev, 460);
    kernel_->Write(state.sb, sm_.s_blocksize, 461);
    kernel_->Write(state.sb, sm_.s_blocksize_bits, 462);
    kernel_->Write(state.sb, sm_.s_maxbytes, 463);
    kernel_->Write(state.sb, sm_.s_type, 464);
    kernel_->Write(state.sb, sm_.s_op, 465);
    kernel_->Write(state.sb, sm_.s_flags, 466);
    kernel_->Write(state.sb, sm_.s_magic, 467);
    kernel_->Write(state.sb, sm_.s_id, 468);
    kernel_->Write(state.sb, sm_.s_bdi, 469);
    kernel_->Write(state.sb, sm_.s_count, 470);
    kernel_->Write(state.sb, sm_.s_time_gran, 471);
    mounts_.push_back(state);

    MountState& mounted = mounts_.back();
    mounted.root.inode = AllocInode(fs, rng);
    mounted.root.dentry = AllocDentry(mounted.root.inode, rng);
    mounted.root.alive = true;
    {
      FunctionScope rootfn(*kernel_, "fs/super.c", "d_make_root", 530, 545);
      kernel_->Write(mounted.sb, sm_.s_root, 535);
    }
  }

  mounted_ = true;
  RegisterInterruptHandlers();
}

void VfsKernel::UnmountAll() {
  LOCKDOC_CHECK(mounted_);
  Rng rng(plan_.seed ^ 0xdeadULL);

  for (size_t i = 0; i < pipes_.size(); ++i) {
    if (pipes_[i].alive) {
      PipeRelease(i, rng);
    }
  }
  for (MountState& state : mounts_) {
    FunctionScope fn(*kernel_, "fs/super.c", "generic_shutdown_super", 560, 620);
    std::set<Address> destroyed_inodes;  // Hard links share inodes.
    for (FileState& file : state.files) {
      if (file.alive) {
        DestroyDentry(file.dentry);
        if (destroyed_inodes.insert(file.inode.addr).second) {
          DestroyInode(file.inode);
        }
        file.alive = false;
      }
    }
    DestroyDentry(state.root.dentry);
    DestroyInode(state.root.inode);
    state.root.alive = false;
    kernel_->Destroy(state.sb, 615);
  }
  mounts_.clear();

  {
    FunctionScope fn(*kernel_, "fs/jbd2/journal.c", "jbd2_journal_destroy", 700, 760);
    for (BufferState& buffer : buffers_) {
      if (buffer.jh.valid()) {
        kernel_->Destroy(buffer.jh, 720);
      }
      kernel_->Destroy(buffer.bh, 725);
    }
    buffers_.clear();
    if (committing_txn_.valid()) {
      kernel_->Destroy(committing_txn_, 730);
    }
    if (checkpoint_txn_.valid()) {
      kernel_->Destroy(checkpoint_txn_, 731);
    }
    kernel_->Destroy(running_txn_, 735);
    kernel_->Destroy(journal_, 740);
  }
  for (ObjectRef& bdev : bdevs_) {
    FunctionScope fn(*kernel_, "fs/block_dev.c", "bdev_evict_inode", 80, 95);
    kernel_->Destroy(bdev, 85);
  }
  bdevs_.clear();
  for (ObjectRef& cdev : cdevs_) {
    FunctionScope fn(*kernel_, "fs/char_dev.c", "cdev_del", 70, 80);
    kernel_->Destroy(cdev, 75);
  }
  cdevs_.clear();
  {
    FunctionScope fn(*kernel_, "mm/backing-dev.c", "bdi_destroy", 100, 120);
    kernel_->Destroy(bdi_, 105);
  }
  mounted_ = false;
}

void VfsKernel::RegisterInterruptHandlers() {
  kernel_->RegisterSoftirq([this](SimKernel& sim) { TimerSoftirq(sim); });
  kernel_->RegisterHardirq([this](SimKernel& sim) { BlockIoHardirq(sim); });
}

FilterConfig VfsKernel::MakeFilterConfig() {
  FilterConfig config = FilterConfig::Defaults();
  config.init_teardown_functions = {
      // Boot / mount / unmount.
      "vfs_caches_init", "bdi_init", "bdi_destroy", "sget_userns", "d_make_root",
      "generic_shutdown_super",
      // Inode lifecycle.
      "alloc_inode", "inode_init_always", "ext4_alloc_inode", "evict", "destroy_inode",
      "i_callback",
      // Dentry lifecycle.
      "d_alloc", "d_free", "__d_free",
      // Journal lifecycle.
      "jbd2_journal_init_inode", "jbd2_journal_destroy", "jbd2_journal_add_journal_head",
      "jbd2_journal_start_transaction", "jbd2_journal_free_transaction", "alloc_buffer_head",
      "free_buffer_head",
      // Pipes and devices.
      "alloc_pipe_info", "free_pipe_info", "bdget", "bdev_evict_inode", "cdev_alloc",
      "cdev_del", "sock_alloc_inode", "anon_inode_new",
      // mm lifecycle (only present in `--workload mm` traces).
      "mm_alloc", "exit_mmap",
  };
  return config;
}

}  // namespace lockdoc
