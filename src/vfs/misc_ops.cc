// Special-purpose filesystems (fs/proc, fs/sysfs, net/socket.c,
// fs/anon_inodes.c, fs/debugfs) and pipes (fs/pipe.c).
//
// These exist to exercise inode subclassing (Sec. 5.3 item 1): the same
// struct inode follows very different disciplines per filesystem — proc
// leaves most members unprotected because it implements only a subset of
// operations; pipefs hides everything behind the pipe's mutex; debugfs is
// barely exercised at all (the paper mines a single write rule for it).
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {
namespace {

// Bounded pool sizes for the special filesystems.
constexpr size_t kProcPool = 8;
constexpr size_t kSysfsPool = 6;
constexpr size_t kSockPool = 4;
constexpr size_t kAnonPool = 2;
constexpr size_t kDebugfsPool = 1;

}  // namespace

void VfsKernel::ProcReadEntry(Rng& rng) {
  MountState& state = mount(ids_.fs_proc);
  if (state.files.size() < kProcPool) {
    FunctionScope fn(*kernel_, "fs/proc/inode.c", "proc_get_inode", 420, 460);
    FileState file;
    file.inode = AllocInode(ids_.fs_proc, rng);
    file.dentry = AllocDentry(file.inode, rng);
    file.alive = true;
    // proc sets these up outside any init helper and without locks — the
    // "proc does not lock-protect some members" behaviour from Sec. 5.3.
    kernel_->Write(file.inode, im_.i_private, 430);
    kernel_->Write(file.inode, im_.i_fop, 431);
    kernel_->Write(file.inode, im_.i_mode, 432);
    state.files.push_back(file);
  }
  const FileState& file = state.files[rng.Below(state.files.size())];

  FunctionScope fn(*kernel_, "fs/proc/generic.c", "proc_reg_read", 220, 260);
  kernel_->Read(file.inode, im_.i_private, 225);
  kernel_->Read(file.inode, im_.i_fop, 226);
  kernel_->Read(file.inode, im_.i_mode, 227);
  kernel_->Read(file.inode, im_.i_size, 228);
  kernel_->Read(file.inode, im_.i_ino, 229);
  kernel_->Read(file.inode, im_.i_uid, 230);
  kernel_->Read(file.inode, im_.i_gid, 231);
  if (rng.Chance(0.5)) {
    kernel_->Read(file.inode, im_.i_op, 235);
    kernel_->Read(file.inode, im_.i_nlink, 236);
    kernel_->Read(file.inode, im_.i_mtime, 237);
    kernel_->Read(file.inode, im_.i_atime, 238);
  }
  if (rng.Chance(0.3)) {
    kernel_->Write(file.inode, im_.i_atime, 245);
    kernel_->Write(file.inode, im_.i_atime_nsec, 246);
  }
}

void VfsKernel::SysfsReadAttr(Rng& rng) {
  MountState& state = mount(ids_.fs_sysfs);
  if (state.files.size() < kSysfsPool) {
    size_t index = CreateFile(ids_.fs_sysfs, rng);
    (void)index;
  }
  const FileState& file = state.files[rng.Below(state.files.size())];
  if (!file.alive) {
    return;
  }
  FunctionScope fn(*kernel_, "fs/sysfs/file.c", "sysfs_kf_seq_show", 40, 80);
  kernel_->Read(file.inode, im_.i_private, 45);
  kernel_->Read(file.inode, im_.i_mode, 46);
  kernel_->Read(file.inode, im_.i_size, 47);
  kernel_->Read(file.inode, im_.i_fop, 48);
  if (rng.Chance(0.5)) {
    kernel_->Read(file.inode, im_.i_uid, 52);
    kernel_->Read(file.inode, im_.i_gid, 53);
    kernel_->Read(file.inode, im_.i_generation, 54);
  }
  if (rng.Chance(0.35)) {
    kernel_->Read(file.inode, im_.i_op, 56);
    kernel_->Read(file.inode, im_.i_sb, 57);
    kernel_->Read(file.inode, im_.i_mapping, 58);
    kernel_->Read(file.inode, im_.i_state, 59);
    kernel_->Read(file.inode, im_.i_version, 60);
    kernel_->Read(file.inode, im_.i_blkbits, 61);
    kernel_->Read(file.inode, im_.i_atime, 62);
    kernel_->Read(file.inode, im_.i_ctime, 63);
    kernel_->Read(file.inode, im_.i_mtime, 64);
    kernel_->Read(file.inode, im_.i_ino, 65);
    kernel_->Read(file.inode, im_.i_flags, 66);
    kernel_->Read(file.inode, im_.i_nlink, 67);
  }
}

void VfsKernel::SysfsWriteAttr(Rng& rng) {
  MountState& state = mount(ids_.fs_sysfs);
  if (state.files.empty()) {
    SysfsReadAttr(rng);
    return;
  }
  const FileState& file = state.files[rng.Below(state.files.size())];
  if (!file.alive) {
    return;
  }
  FunctionScope fn(*kernel_, "fs/sysfs/file.c", "sysfs_kf_write", 120, 160);
  kernel_->LockGlobal(sysfs_mutex_, 125);
  kernel_->Write(file.inode, im_.i_size, 131);
  kernel_->Read(file.inode, im_.i_private, 132);
  kernel_->UnlockGlobal(sysfs_mutex_, 140);
  // Timestamps belong to the lock-free family everywhere in this kernel.
  kernel_->Write(file.inode, im_.i_mtime, 145);
}

void VfsKernel::SockCreateAndUse(Rng& rng) {
  MountState& state = mount(ids_.fs_sockfs);
  if (state.files.size() < kSockPool) {
    FunctionScope fn(*kernel_, "net/socket.c", "sock_alloc_inode", 250, 290);
    FileState file;
    file.inode = AllocInode(ids_.fs_sockfs, rng);
    file.dentry = AllocDentry(file.inode, rng);
    file.alive = true;
    state.files.push_back(file);
  }
  const FileState& file = state.files[rng.Below(state.files.size())];

  FunctionScope fn(*kernel_, "net/socket.c", "sock_sendmsg", 640, 680);
  kernel_->Read(file.inode, im_.i_mode, 645);
  kernel_->Read(file.inode, im_.i_fop, 646);
  kernel_->Read(file.inode, im_.i_private, 647);
  kernel_->Read(file.inode, im_.i_uid, 648);
  kernel_->Read(file.inode, im_.i_gid, 649);
  kernel_->Read(file.inode, im_.i_ino, 650);
  if (rng.Chance(0.5)) {
    kernel_->Read(file.inode, im_.i_sb, 651);
    kernel_->Read(file.inode, im_.i_op, 652);
    kernel_->Read(file.inode, im_.i_mapping, 653);
    kernel_->Read(file.inode, im_.i_flags, 654);
  }
  if (rng.Chance(0.35)) {
    kernel_->Read(file.inode, im_.i_security, 658);
    kernel_->Read(file.inode, im_.i_opflags, 659);
    kernel_->Read(file.inode, im_.i_blkbits, 660);
    kernel_->Read(file.inode, im_.i_generation, 661);
    kernel_->Read(file.inode, im_.i_version, 662);
    kernel_->Read(file.inode, im_.i_mtime, 663);
    kernel_->Read(file.inode, im_.i_rdev, 664);
  }
  if (rng.Chance(0.25)) {
    kernel_->Write(file.inode, im_.i_atime, 655);
    kernel_->Read(file.inode, im_.i_state, 656);
  }
}

void VfsKernel::AnonInodeUse(Rng& rng) {
  MountState& state = mount(ids_.fs_anon_inodefs);
  if (state.files.size() < kAnonPool) {
    FunctionScope fn(*kernel_, "fs/anon_inodes.c", "anon_inode_new", 120, 150);
    FileState file;
    file.inode = AllocInode(ids_.fs_anon_inodefs, rng);
    file.dentry = AllocDentry(file.inode, rng);
    file.alive = true;
    state.files.push_back(file);
  }
  const FileState& file = state.files[rng.Below(state.files.size())];

  FunctionScope fn(*kernel_, "fs/anon_inodes.c", "anon_inode_getfile", 160, 200);
  kernel_->Read(file.inode, im_.i_mode, 165);
  kernel_->Read(file.inode, im_.i_fop, 166);
  kernel_->Read(file.inode, im_.i_ino, 167);
  kernel_->Read(file.inode, im_.i_state, 168);
  kernel_->Read(file.inode, im_.i_sb, 169);
  if (rng.Chance(0.45)) {
    kernel_->Read(file.inode, im_.i_mapping, 170);
    kernel_->Read(file.inode, im_.i_op, 171);
    kernel_->Read(file.inode, im_.i_flags, 172);
    kernel_->Read(file.inode, im_.i_uid, 173);
    kernel_->Read(file.inode, im_.i_gid, 174);
    kernel_->Read(file.inode, im_.i_generation, 176);
  }
  if (rng.Chance(0.2)) {
    kernel_->Write(file.inode, im_.i_private, 175);
  }
}

void VfsKernel::DebugfsCreate(Rng& rng) {
  MountState& state = mount(ids_.fs_debugfs);
  const ObjectRef& dir = state.root.inode;
  if (state.files.size() >= kDebugfsPool) {
    return;
  }
  FunctionScope fn(*kernel_, "fs/debugfs/inode.c", "debugfs_create_file", 330, 370);
  kernel_->Lock(dir, im_.i_rwsem, 335);
  FileState file;
  file.inode = AllocInode(ids_.fs_debugfs, rng);
  file.dentry = AllocDentry(file.inode, rng);
  file.alive = true;
  // The only observed debugfs access outside init context: i_private is
  // written under the parent directory's i_rwsem (one write rule, no read
  // rules — matching the paper's sparse inode:debugfs row in Tab. 6).
  kernel_->Write(file.inode, im_.i_private, 345);
  kernel_->Unlock(dir, im_.i_rwsem, 360);
  state.files.push_back(file);
}

size_t VfsKernel::PipeCreate(Rng& rng) {
  FunctionScope fn(*kernel_, "fs/pipe.c", "create_pipe_files", 750, 800);
  PipeState pipe;
  {
    FunctionScope alloc(*kernel_, "fs/pipe.c", "alloc_pipe_info", 620, 660);
    pipe.info = kernel_->Create(ids_.pipe, kNoSubclass, 625);
    kernel_->Write(pipe.info, pm_.buffers, 630);
    kernel_->Write(pipe.info, pm_.user, 631);
    kernel_->Write(pipe.info, pm_.bufs, 632);
    kernel_->Write(pipe.info, pm_.readers, 633);
    kernel_->Write(pipe.info, pm_.writers, 634);
  }
  pipe.inode = AllocInode(ids_.fs_pipefs, rng);
  // Publishing the pipe in the inode happens under i_lock.
  kernel_->Lock(pipe.inode, im_.i_lock, 770);
  kernel_->Write(pipe.inode, im_.i_pipe, 772);
  kernel_->Write(pipe.inode, im_.i_state, 773);
  kernel_->Unlock(pipe.inode, im_.i_lock, 775);
  pipe.alive = true;
  pipes_.push_back(pipe);
  return pipes_.size() - 1;
}

void VfsKernel::PipeWrite(size_t index, Rng& rng) {
  LOCKDOC_CHECK(index < pipes_.size() && pipes_[index].alive);
  PipeState& pipe = pipes_[index];

  FunctionScope fn(*kernel_, "fs/pipe.c", "pipe_write", 380, 460);
  kernel_->Lock(pipe.info, pm_.mutex, 385);
  kernel_->Read(pipe.info, pm_.readers, 390);
  kernel_->Read(pipe.info, pm_.nrbufs, 391);
  kernel_->Read(pipe.info, pm_.curbuf, 392);
  kernel_->Read(pipe.info, pm_.buffers, 393);
  kernel_->Write(pipe.info, pm_.nrbufs, 395);
  kernel_->Write(pipe.info, pm_.bufs, 396);
  if (rng.Chance(0.3)) {
    kernel_->Write(pipe.info, pm_.waiting_writers, 400);
    kernel_->Read(pipe.info, pm_.tmp_page, 401);
    kernel_->Write(pipe.info, pm_.tmp_page, 402);
  }
  kernel_->Write(pipe.info, pm_.w_counter, 405);
  kernel_->Unlock(pipe.info, pm_.mutex, 430);

  // Timestamp update on the pipefs inode.
  kernel_->Write(pipe.inode, im_.i_mtime, 440);
  kernel_->Write(pipe.inode, im_.i_ctime, 441);
}

void VfsKernel::PipeRead(size_t index, Rng& rng) {
  LOCKDOC_CHECK(index < pipes_.size() && pipes_[index].alive);
  PipeState& pipe = pipes_[index];

  FunctionScope fn(*kernel_, "fs/pipe.c", "pipe_read", 250, 330);
  kernel_->Lock(pipe.info, pm_.mutex, 255);
  kernel_->Read(pipe.info, pm_.nrbufs, 260);
  kernel_->Read(pipe.info, pm_.curbuf, 261);
  kernel_->Read(pipe.info, pm_.bufs, 262);
  kernel_->Read(pipe.info, pm_.writers, 263);
  kernel_->Write(pipe.info, pm_.nrbufs, 265);
  kernel_->Write(pipe.info, pm_.curbuf, 266);
  if (rng.Chance(0.3)) {
    kernel_->Read(pipe.info, pm_.waiting_writers, 270);
    kernel_->Write(pipe.info, pm_.waiting_writers, 271);
  }
  kernel_->Write(pipe.info, pm_.r_counter, 275);
  kernel_->Unlock(pipe.info, pm_.mutex, 300);

  kernel_->Read(pipe.inode, im_.i_pipe, 320);
  kernel_->Write(pipe.inode, im_.i_atime, 321);

  // Read-side bookkeeping consults the pipefs inode locklessly (pipefs
  // inodes are invisible to path lookup, so almost nothing needs locks —
  // the paper's inode:pipefs row is dominated by "no lock" read rules).
  FunctionScope fifo(*kernel_, "fs/pipe.c", "fifo_open_checks", 340, 370);
  kernel_->Read(pipe.inode, im_.i_mode, 345);
  kernel_->Read(pipe.inode, im_.i_fop, 346);
  kernel_->Read(pipe.inode, im_.i_op, 347);
  kernel_->Read(pipe.inode, im_.i_ino, 348);
  kernel_->Read(pipe.inode, im_.i_sb, 349);
  if (rng.Chance(0.6)) {
    kernel_->Read(pipe.inode, im_.i_uid, 352);
    kernel_->Read(pipe.inode, im_.i_gid, 353);
    kernel_->Read(pipe.inode, im_.i_mapping, 354);
    kernel_->Read(pipe.inode, im_.i_flags, 355);
    kernel_->Read(pipe.inode, im_.i_mtime, 356);
    kernel_->Read(pipe.inode, im_.i_ctime, 357);
    kernel_->Read(pipe.inode, im_.i_atime, 358);
  }
  if (rng.Chance(0.35)) {
    kernel_->Read(pipe.inode, im_.i_blkbits, 361);
    kernel_->Read(pipe.inode, im_.i_size, 362);
    kernel_->Read(pipe.inode, im_.i_rdev, 363);
    kernel_->Read(pipe.inode, im_.i_generation, 364);
    kernel_->Read(pipe.inode, im_.i_opflags, 365);
    kernel_->Read(pipe.inode, im_.i_security, 366);
    kernel_->Read(pipe.inode, im_.i_version, 367);
    kernel_->Read(pipe.inode, im_.i_flctx, 368);
    kernel_->Read(pipe.inode, im_.i_wb, 369);
  }
}

void VfsKernel::PipePoll(size_t index, Rng& rng) {
  LOCKDOC_CHECK(index < pipes_.size() && pipes_[index].alive);
  PipeState& pipe = pipes_[index];

  // pipe_poll normally locks the pipe, but a few early-boot-style polls
  // read the state locklessly — the paper's Tab. 7 shows a handful of
  // pipe_inode_info violations (9 events, 3 members).
  FunctionScope fn(*kernel_, "fs/pipe.c", "pipe_poll", 510, 540);
  if (plan_.pipe_poll_lockless && pipe_poll_lockless_remaining_ > 0) {
    --pipe_poll_lockless_remaining_;
    uint32_t line = rng.Chance(0.5) ? 515 : 522;
    kernel_->Read(pipe.info, pm_.nrbufs, line);
    kernel_->Read(pipe.info, pm_.readers, line + 1);
    kernel_->Read(pipe.info, pm_.writers, line + 2);
    return;
  }
  kernel_->Lock(pipe.info, pm_.mutex, 528);
  kernel_->Read(pipe.info, pm_.nrbufs, 530);
  kernel_->Read(pipe.info, pm_.readers, 531);
  kernel_->Read(pipe.info, pm_.writers, 532);
  kernel_->Unlock(pipe.info, pm_.mutex, 535);
}

void VfsKernel::PipeRelease(size_t index, Rng& rng) {
  LOCKDOC_CHECK(index < pipes_.size() && pipes_[index].alive);
  PipeState& pipe = pipes_[index];

  FunctionScope fn(*kernel_, "fs/pipe.c", "pipe_release", 560, 600);
  kernel_->Lock(pipe.info, pm_.mutex, 565);
  kernel_->Read(pipe.info, pm_.readers, 570);
  kernel_->Write(pipe.info, pm_.readers, 571);
  kernel_->Read(pipe.info, pm_.writers, 572);
  kernel_->Write(pipe.info, pm_.writers, 573);
  kernel_->Read(pipe.info, pm_.files, 574);
  kernel_->Write(pipe.info, pm_.files, 575);
  kernel_->Unlock(pipe.info, pm_.mutex, 580);

  {
    FunctionScope free_fn(*kernel_, "fs/pipe.c", "free_pipe_info", 680, 710);
    kernel_->Destroy(pipe.info, 690);
  }
  DestroyInode(pipe.inode);
  pipe.alive = false;
  (void)rng;
}

}  // namespace lockdoc
