// VfsKernel — the synthetic "kernel code" under observation: a miniature
// VFS layer with per-filesystem inode behaviour, a dcache, a JBD2-style
// journal, pipes, block/char devices, and writeback, all running on the
// SimKernel substrate. Every operation implements a ground-truth locking
// discipline modelled on Linux 4.10; a FaultPlan injects the paper's known
// deviations (Sec. 7.4/7.5) plus configurable sloppiness so that LockDoc's
// rule mining and violation finding have realistic signal to work on.
#ifndef SRC_VFS_VFS_KERNEL_H_
#define SRC_VFS_VFS_KERNEL_H_

#include <string>
#include <vector>

#include "src/core/filter_config.h"
#include "src/core/rule.h"
#include "src/sim/kernel.h"
#include "src/util/rng.h"
#include "src/vfs/types.h"

namespace lockdoc {

// Deviation injection. Rates are probabilities per affected operation.
struct FaultPlan {
  uint64_t seed = 42;

  // The paper's concrete findings:
  // i_flags written without i_rwsem in one code path (the confirmed bug,
  // Fig. 3 / Sec. 7.5).
  bool inode_set_flags_bug = true;
  // __remove_inode_hash writes i_hash of the list neighbours whose i_lock
  // is not held (Sec. 7.4's "locking-rule mystery").
  bool remove_inode_hash_neighbors = true;
  // libfs cursor walk reads d_subdirs under the parent directory's i_rwsem
  // plus RCU instead of d_lock (Tab. 8, fs/libfs.c).
  bool libfs_d_subdirs_rcu_walk = true;
  // ext4 peeks at j_committing_transaction holding i_rwsem -> j_state_lock
  // but not j_list_lock (Tab. 8, fs/ext4/inode.c).
  bool ext4_committing_txn_peek = true;

  // Background sloppiness rates (violations spread over many contexts).
  double buffer_head_sloppiness = 0.06;
  double bdi_stats_sloppiness = 0.08;
  double journal_stats_sloppiness = 0.03;
  double sb_flags_sloppiness = 0.05;
  // ext4's delayed-allocation path updating i_blocks without i_lock.
  double ext4_delalloc_i_blocks = 0.10;
  // A few early pipe polls reading pipe state without the mutex, and the
  // block layer's lockless bd_invalidated / size-revalidation peeks.
  bool pipe_poll_lockless = true;
  bool bdev_lockless_reads = true;
  // Block-IO completion updating buffer fields from hardirq context without
  // locks (a realistic discipline gap the clean baseline removes).
  bool irq_buffer_completion_writes = true;
  // A rare LRU pruning path that takes inode_lru_lock *before* i_lock —
  // opposite to inode_lru_list_add's order. An ABBA deadlock candidate for
  // the lock-order analysis (it cannot deadlock in the single-CPU
  // simulation, but the ordering conflict is real).
  bool lru_lock_inversion = true;

  // mm (address-space) workload deviations; inert outside `--workload mm`.
  // Overlapping writers under non-overlapping ranges: a path that writes a
  // vma while mmap_lock is held over a span that does NOT overlap that vma
  // — the seeded range-lock bug the overlap-aware checker must flag.
  bool mmap_nonoverlap_write = true;
  // An occasional stats path takes vm_committed_lock before mmap_lock,
  // closing the 3-class cycle mmap_lock -> page_table_lock ->
  // vm_committed_lock -> mmap_lock for the lock-order pass.
  bool mm_lock_cycle = true;

  // A plan with every deviation disabled — the "correct kernel" baseline
  // used by tests to prove the miner recovers the ground truth exactly.
  static FaultPlan Clean();
};

// One open file: the inode plus its dentry.
struct VfsFile {
  ObjectRef inode;
  ObjectRef dentry;
  bool is_symlink = false;
};

// One pipe: the pipefs inode plus the pipe_inode_info.
struct VfsPipe {
  ObjectRef inode;
  ObjectRef info;
};

class VfsKernel {
 public:
  VfsKernel(SimKernel* kernel, const TypeRegistry* registry, const VfsIds& ids, FaultPlan plan);
  ~VfsKernel();

  VfsKernel(const VfsKernel&) = delete;
  VfsKernel& operator=(const VfsKernel&) = delete;

  // Mounts all filesystems: super blocks, bdi, journal, devices, roots.
  // Must be called once before any other op.
  void MountAll();
  // Tears everything down (object destruction under init/teardown frames).
  void UnmountAll();

  // --- File operations (fs/inode.c, fs/namei.c, fs/ext4/...) ---
  // Creating returns the index of the new file within `files(fs)`.
  size_t CreateFile(SubclassId fs, Rng& rng);
  size_t CreateSymlink(SubclassId fs, Rng& rng);
  void UnlinkFile(SubclassId fs, size_t index, Rng& rng);
  void ReadFile(SubclassId fs, size_t index, Rng& rng);
  void WriteFile(SubclassId fs, size_t index, Rng& rng);
  void StatFile(SubclassId fs, size_t index, Rng& rng);
  void ChmodFile(SubclassId fs, size_t index, Rng& rng);
  void ChownFile(SubclassId fs, size_t index, Rng& rng);
  void TouchAtime(SubclassId fs, size_t index, Rng& rng);
  void ReadSymlink(SubclassId fs, size_t index, Rng& rng);
  void LookupFile(SubclassId fs, size_t index, Rng& rng);
  void RenameFile(SubclassId fs, size_t index, Rng& rng);
  void EvictLru(SubclassId fs, Rng& rng);
  void TruncateFile(SubclassId fs, size_t index, Rng& rng);
  void FsyncFile(SubclassId fs, size_t index, Rng& rng);
  void MmapFile(SubclassId fs, size_t index, Rng& rng);
  // Directories: creation nests under an existing directory (or the root);
  // removal requires the directory to be empty.
  size_t MkdirDir(SubclassId fs, Rng& rng);
  bool RmdirDir(SubclassId fs, size_t index, Rng& rng);
  // Hard link: a second directory entry for an existing regular file's
  // inode. Unlinking destroys the inode only with its last link.
  size_t LinkFile(SubclassId fs, size_t src_index, Rng& rng);
  // True when UnlinkFile/RmdirDir may remove this entry (alive, and not a
  // directory that still has live children).
  bool CanUnlink(SubclassId fs, size_t index) const;
  bool IsDirectory(SubclassId fs, size_t index) const;

  // --- Special filesystems (fs/proc, fs/sysfs, net/socket.c, ...) ---
  void ProcReadEntry(Rng& rng);
  void SysfsReadAttr(Rng& rng);
  void SysfsWriteAttr(Rng& rng);
  void SockCreateAndUse(Rng& rng);
  void AnonInodeUse(Rng& rng);
  void DebugfsCreate(Rng& rng);

  // --- Pipes (fs/pipe.c) ---
  size_t PipeCreate(Rng& rng);
  void PipeWrite(size_t index, Rng& rng);
  void PipeRead(size_t index, Rng& rng);
  void PipePoll(size_t index, Rng& rng);
  void PipeRelease(size_t index, Rng& rng);

  // --- Devices (fs/block_dev.c, fs/char_dev.c) ---
  void BdevOpen(Rng& rng);
  void BdevRelease(Rng& rng);
  void CdevAddAndOpen(Rng& rng);

  // --- Journal (fs/jbd2/) ---
  void JournalStartHandle(Rng& rng);
  void JournalCommit(Rng& rng);
  void JournalCheckpoint(Rng& rng);
  // /proc/fs/jbd2/<dev>/info-style dump: deliberately lockless reads of the
  // journal statistics fields.
  void JournalStatsProcShow(Rng& rng);
  // Buffer-LRU maintenance scan: inspects buffer heads (and their journal
  // heads) without any lock, from plain task context — the lock-free read
  // population behind the Fig. 7 "no lock" fractions.
  void BufferLruScan(Rng& rng);

  // --- Writeback (fs/fs-writeback.c, mm/backing-dev.c) ---
  void WritebackRun(Rng& rng);
  void SyncFilesystem(SubclassId fs, Rng& rng);

  // Registers the timer-softirq and block-hardirq handlers with the
  // SimKernel; called by MountAll.
  void RegisterInterruptHandlers();

  // Declares every simulated kernel function (including never-executed
  // error paths) for coverage accounting.
  void RegisterFunctionsForCoverage(class CoverageTracker* coverage) const;

  // --- Introspection for workloads ---
  size_t file_count(SubclassId fs) const;
  size_t pipe_count() const { return pipes_.size(); }
  bool pipe_alive(size_t index) const { return index < pipes_.size() && pipes_[index].alive; }
  bool file_alive(SubclassId fs, size_t index) const;
  const VfsIds& ids() const { return ids_; }
  SimKernel& sim() { return *kernel_; }

  // The "officially documented" locking rules shipped with this kernel —
  // deliberately imperfect, modelling the paper's Tab. 4/5 documentation
  // state (correct, ambivalent, incorrect, and unobserved rules).
  static std::string DocumentedRulesText();
  // The filter configuration (init/teardown + ignored functions) matching
  // this kernel's function names.
  static FilterConfig MakeFilterConfig();

 private:
  friend struct VfsOpsAccess;  // Implementation backdoor for the op files.

  // Cached member indexes (resolved once in the constructor).
  struct InodeM {
    MemberIndex i_mode, i_opflags, i_uid, i_gid, i_flags, i_acl, i_default_acl, i_op, i_sb,
        i_mapping, i_security, i_ino, i_nlink, i_rdev, i_size, i_atime, i_atime_nsec, i_mtime,
        i_ctime, i_lock, i_bytes, i_blkbits, i_blocks, i_size_seqcount, i_state, i_rwsem,
        dirtied_when, dirtied_time_when, i_hash, i_io_list, i_lru, i_sb_list, i_wb_list,
        i_version, i_count, i_dio_count, i_writecount, i_fop, i_flctx, d_host, d_page_tree,
        d_gfp_mask, d_nrexceptional, d_nrpages, d_writeback_index, d_a_ops, d_flags,
        d_private_data, d_private_list, i_dquot, i_devices, i_pipe, i_bdev, i_cdev, i_link,
        i_dir_seq, i_generation, i_fsnotify_mask, i_fsnotify_marks, i_crypt_info, i_private,
        i_wb, i_wb_frn_winner, i_wb_frn_avg_time, i_wb_frn_history;
  };
  struct DentryM {
    MemberIndex d_flags, d_seq, d_hash, d_parent, d_name, d_inode, d_iname, d_lock, d_count,
        d_op, d_sb, d_time, d_fsdata, d_lru, d_child, d_subdirs, d_alias, d_in_lookup_hash,
        d_rcu, d_wait, d_mounted;
  };
  struct SuperM {
    MemberIndex s_list, s_dev, s_blocksize_bits, s_blocksize, s_maxbytes, s_type, s_op, s_flags,
        s_iflags, s_magic, s_root, s_umount, s_count, s_security, s_fs_info, s_mode, s_time_gran,
        s_id, s_mounts, s_bdev, s_bdi, s_dentry_lru, s_inode_lru, s_inode_list_lock, s_inodes,
        s_inodes_wb, s_wb_err;
  };
  struct BufferHeadM {
    MemberIndex b_state, b_this_page, b_page, b_blocknr, b_size, b_data, b_bdev, b_end_io,
        b_private, b_assoc_buffers, b_assoc_map, b_count, b_journal_head;
  };
  struct JournalM {
    MemberIndex j_flags, j_errno, j_sb_buffer, j_superblock, j_state_lock, j_barrier_count,
        j_barrier, j_running_transaction, j_committing_transaction, j_checkpoint_transactions,
        j_checkpoint_mutex, j_head, j_tail, j_free, j_first, j_last, j_blocksize, j_maxlen,
        j_list_lock, j_tail_sequence, j_transaction_sequence, j_commit_sequence,
        j_commit_request, j_task, j_max_transaction_buffers, j_commit_interval, j_wbuf,
        j_wbufsize, j_last_sync_writer, j_average_commit_time, j_min_batch_time,
        j_max_batch_time, j_failed_commit, j_private, j_history_cur, j_stats;
  };
  struct TransactionM {
    MemberIndex t_journal, t_tid, t_state, t_log_start, t_nr_buffers, t_reserved_list, t_buffers,
        t_forget, t_checkpoint_list, t_checkpoint_io_list, t_shadow_list, t_log_list,
        t_private_list, t_expires, t_start_time, t_start, t_requested, t_handle_lock, t_updates,
        t_outstanding_credits, t_handle_count, t_synchronous_commit, t_need_data_flush,
        t_inode_list, t_chp_stats, t_run_stats, t_cpnext;
  };
  struct JournalHeadM {
    MemberIndex bh, b_jcount, b_jlist, b_modified, b_frozen_data, b_committed_data,
        b_transaction, b_next_transaction, b_tnext, b_tprev, b_cp_transaction, b_cpnext,
        b_cpprev, b_cow_tid, b_triggers;
  };
  struct PipeM {
    MemberIndex mutex, wait, nrbufs, curbuf, buffers, readers, writers, files, waiting_writers,
        r_counter, w_counter, tmp_page, fasync_readers, fasync_writers, bufs, user;
  };
  struct BdevM {
    MemberIndex bd_dev, bd_openers, bd_inode, bd_super, bd_mutex, bd_inodes, bd_claiming,
        bd_holder, bd_holders, bd_write_holder, bd_contains, bd_block_size, bd_part,
        bd_part_count, bd_invalidated, bd_disk, bd_queue, bd_list, bd_private;
  };
  struct CdevM {
    MemberIndex kobj, owner, ops, list, dev, count;
  };
  struct BdiM {
    MemberIndex bdi_list, ra_pages, io_pages, capabilities, name, dev, min_ratio, max_ratio,
        wb_state, wb_last_old_flush, wb_list_lock, wb_b_dirty, wb_b_io, wb_b_more_io,
        wb_b_dirty_time, wb_bw_time_stamp, wb_dirtied_stamp, wb_written_stamp,
        wb_write_bandwidth, wb_avg_write_bandwidth, wb_dirty_ratelimit,
        wb_balanced_dirty_ratelimit, wb_completions, wb_dirty_exceeded, wb_stat_dirtied,
        wb_stat_written, wb_work_list;
  };

  struct FileState {
    ObjectRef inode;
    ObjectRef dentry;
    bool alive = false;
    bool is_symlink = false;
    bool is_dir = false;
    // Index of the parent directory within the same mount's files vector;
    // SIZE_MAX means the mount root.
    size_t parent = SIZE_MAX;
  };
  struct PipeState {
    ObjectRef inode;
    ObjectRef info;
    bool alive = false;
  };
  struct BufferState {
    ObjectRef bh;
    ObjectRef jh;  // journal_head; invalid() when not journaled.
  };

  // Per-filesystem mount state.
  struct MountState {
    SubclassId fs = kNoSubclass;
    ObjectRef sb;
    FileState root;
    std::vector<FileState> files;
  };

  MountState& mount(SubclassId fs);
  const MountState& mount(SubclassId fs) const;
  // The directory entry (inode + dentry) acting as parent of `file`.
  const FileState& ParentOf(const MountState& state, const FileState& file) const;
  // Picks a parent for a new entry: usually the root, sometimes a live
  // subdirectory.
  size_t PickParentIndex(MountState& state, Rng& rng) const;

  // --- Internal op helpers (implemented across the vfs/*_ops.cc files) ---
  ObjectRef AllocInode(SubclassId fs, Rng& rng);
  ObjectRef AllocDentry(const ObjectRef& inode, Rng& rng);
  void DestroyInode(const ObjectRef& inode);
  void DestroyDentry(const ObjectRef& dentry);
  void InsertInodeHash(const ObjectRef& inode, Rng& rng);
  void RemoveInodeHash(const ObjectRef& inode, Rng& rng);
  void MarkInodeDirty(const ObjectRef& inode, Rng& rng);
  void InodeAddBytes(const ObjectRef& inode, Rng& rng);
  void InodeSetFlags(const ObjectRef& inode, Rng& rng);
  void UpdateTimes(const ObjectRef& inode, Rng& rng, bool ctime);
  void DentryInstantiate(const ObjectRef& dentry, const ObjectRef& parent,
                         const ObjectRef& inode, Rng& rng);
  void DentryKill(const ObjectRef& dentry, const ObjectRef& parent, Rng& rng);
  void TouchDentryLru(const ObjectRef& dentry, Rng& rng);
  BufferState& PickBuffer(Rng& rng);
  void JournalDirtyBuffer(BufferState& buffer, Rng& rng);
  void WritebackSingleInode(const ObjectRef& inode, Rng& rng);
  void TimerSoftirq(SimKernel& sim);
  void BlockIoHardirq(SimKernel& sim);

  SimKernel* kernel_;
  const TypeRegistry* registry_;
  VfsIds ids_;
  FaultPlan plan_;
  Rng fault_rng_;

  // Cached member indexes.
  InodeM im_;
  DentryM dm_;
  SuperM sm_;
  BufferHeadM bm_;
  JournalM jm_;
  TransactionM tm_;
  JournalHeadM hm_;
  PipeM pm_;
  BdevM vm_;
  CdevM cm_;
  BdiM wm_;

  // Global locks (statically allocated in a real kernel).
  GlobalLock inode_hash_lock_;
  GlobalLock inode_lru_lock_;
  GlobalLock sb_lock_;
  GlobalLock rename_lock_;
  GlobalLock dcache_lru_lock_;
  GlobalLock dcache_hash_lock_;
  GlobalLock bdev_lock_;
  GlobalLock chrdevs_lock_;
  GlobalLock pipe_fs_lock_;
  GlobalLock sysfs_mutex_;

  // Mounted state.
  bool mounted_ = false;
  std::vector<MountState> mounts_;
  ObjectRef bdi_;
  ObjectRef journal_;
  ObjectRef running_txn_;
  ObjectRef committing_txn_;   // invalid() unless a commit is in flight.
  ObjectRef checkpoint_txn_;   // invalid() unless queued for checkpoint.
  std::vector<BufferState> buffers_;
  std::vector<PipeState> pipes_;
  std::vector<ObjectRef> bdevs_;
  std::vector<ObjectRef> cdevs_;
  uint64_t next_ino_ = 1000;
  // The single deliberate lockless read of bd_invalidated (one violating
  // event, as in the paper's Tab. 7 row for block_device).
  bool bdev_lockless_read_done_ = false;
  // Early polls that read pipe state without the mutex (Tab. 7's few
  // pipe_inode_info violations).
  int pipe_poll_lockless_remaining_ = 3;

  // Inodes currently linked in the simulated hash chain (for the
  // __remove_inode_hash neighbour pattern).
  std::vector<ObjectRef> hash_chain_;
};

}  // namespace lockdoc

#endif  // SRC_VFS_VFS_KERNEL_H_
