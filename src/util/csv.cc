#include "src/util/csv.h"

#include <ostream>

namespace lockdoc {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

}  // namespace

std::string CsvEscape(std::string_view field) {
  if (!NeedsQuoting(field)) {
    return std::string(field);
  }
  std::string result;
  result.reserve(field.size() + 2);
  result.push_back('"');
  for (char c : field) {
    if (c == '"') {
      result.push_back('"');
    }
    result.push_back(c);
  }
  result.push_back('"');
  return result;
}

std::string CsvEncodeRow(const std::vector<std::string>& fields) {
  std::string row;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) {
      row.push_back(',');
    }
    row.append(CsvEscape(fields[i]));
  }
  return row;
}

Result<std::vector<std::string>> CsvParseLine(std::string_view line) {
  auto parsed = ParseCsv(line);
  if (!parsed.ok()) {
    return parsed.status();
  }
  if (parsed.value().empty()) {
    return std::vector<std::string>{};
  }
  if (parsed.value().size() != 1) {
    return Status::Error("CsvParseLine: input contains more than one row");
  }
  return std::move(parsed).value()[0];
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view document) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> current_row;
  std::string current_field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    current_row.push_back(std::move(current_field));
    current_field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(current_row));
    current_row.clear();
  };

  for (size_t i = 0; i < document.size(); ++i) {
    char c = document[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < document.size() && document[i + 1] == '"') {
          current_field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current_field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!current_field.empty()) {
          return Status::Error("ParseCsv: quote inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // The next (possibly empty) field exists.
        break;
      case '\r':
        // Swallow; the matching '\n' terminates the row.
        break;
      case '\n':
        end_row();
        break;
      default:
        current_field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::Error("ParseCsv: unterminated quoted field");
  }
  if (field_started || !current_field.empty() || !current_row.empty()) {
    end_row();
  }
  return rows;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  out_ << CsvEncodeRow(fields) << '\n';
  ++rows_written_;
}

}  // namespace lockdoc
