// Minimal TCP plumbing for the serve socket front-end: RAII file
// descriptors, bind/listen/connect helpers, poll-based readiness waits, and
// length-prefixed frame I/O.
//
// The framing is deliberately tiny: one frame is a 4-byte big-endian
// payload length followed by that many payload bytes. It exists only to
// delimit the existing key=value request/response texts on a byte stream —
// the protocol semantics live entirely in src/serve/request.*, which both
// the file spool and the socket share verbatim.
//
// Every blocking operation is deadline-aware (poll + EINTR retry loops):
// a long-lived service must never let one stalled peer wedge a worker.
// Writes use MSG_NOSIGNAL so a peer that died mid-response surfaces as an
// EPIPE Status instead of killing the process.
#ifndef SRC_UTIL_SOCKET_H_
#define SRC_UTIL_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace lockdoc {

// Owns one file descriptor; closes on destruction (EINTR-safe).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset(other.Release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Splits "HOST:PORT" (e.g. "127.0.0.1:7077", "0.0.0.0:0"). Strict: both
// parts required, the port must be a decimal in [0, 65535]. Port 0 asks
// the kernel for an ephemeral port (tests); BoundPort reports the result.
Status ParseHostPort(std::string_view spec, std::string* host, uint16_t* port);

// Binds an IPv4 listening socket on host:port (SO_REUSEADDR, backlog 64).
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port);

// The locally-bound port of a listening socket (resolves port 0).
Result<uint16_t> BoundPort(int fd);

// Blocking IPv4 connect, for the `lockdoc query` client and tests.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

// Waits up to timeout_ms for `fd` to become readable. False on timeout.
Result<bool> WaitReadable(int fd, uint64_t timeout_ms);

// accept() with EINTR retry once the listener is readable; callers gate
// with WaitReadable so a Stop() can interrupt the accept loop.
Result<UniqueFd> AcceptConnection(int listen_fd);

// Outcome of one ReadFrame call; the payload is valid only for kOk.
enum class FrameStatus {
  kOk,        // A complete frame was read.
  kIdle,      // No header byte within idle_wait_ms; poll stop and retry.
  kClosed,    // Peer closed cleanly before the first header byte.
  kTimeout,   // The deadline expired mid-frame (partial-frame peer).
  kOversized, // The header announced more than max_payload_bytes.
  kError,     // Socket error; `error` has the detail.
};

struct FrameRead {
  FrameStatus status = FrameStatus::kError;
  std::string payload;
  std::string error;
};

// Reads one length-prefixed frame. `deadline_ms` bounds the time from the
// first header byte to frame completion (0 = no deadline); the wait for
// the first byte itself is bounded by `idle_wait_ms` so callers can poll a
// stop flag between frames. An oversized announcement is detected from the
// header alone — the payload is never read, the connection must be closed.
FrameRead ReadFrame(int fd, uint64_t idle_wait_ms, uint64_t deadline_ms,
                    uint64_t max_payload_bytes);

// Writes one length-prefixed frame (EINTR/partial-write loops,
// MSG_NOSIGNAL). Frames above 4 GiB - 1 cannot be represented and error.
Status WriteFrame(int fd, std::string_view payload);

}  // namespace lockdoc

#endif  // SRC_UTIL_SOCKET_H_
