#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lockdoc {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarning};

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(level, std::memory_order_relaxed); }

LogLevel GetLogThreshold() { return g_threshold.load(std::memory_order_relaxed); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void EmitLogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogThreshold())) {
    return;
  }
  std::fprintf(stderr, "[lockdoc %s] %s\n", LogLevelName(level), message.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip the directory part; the basename is enough to locate the source.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      basename = p + 1;
    }
  }
  stream_ << basename << ":" << line << ": ";
}

LogMessage::~LogMessage() { EmitLogLine(level_, stream_.str()); }

}  // namespace lockdoc
