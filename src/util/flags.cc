#include "src/util/flags.h"

#include "src/util/string_util.h"

namespace lockdoc {

bool FlagSet::Parse(int argc, const char* const* argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      // A bare "--" terminates flag parsing; the rest is positional.
      for (int j = i + 1; j < argc; ++j) {
        positional_.emplace_back(argv[j]);
      }
      return true;
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        *error = "malformed flag: " + arg;
        return false;
      }
      values_[name] = body.substr(eq + 1);
      continue;
    }
    // "--name value" if the next token is not itself a flag; otherwise a
    // boolean "--name".
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
  return true;
}

bool FlagSet::Has(const std::string& name) const { return values_.count(name) != 0; }

std::vector<std::string> FlagSet::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    out.push_back(name);
  }
  return out;
}

std::string FlagSet::GetString(const std::string& name, const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

uint64_t FlagSet::GetUint64(const std::string& name, uint64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  uint64_t value = 0;
  return ParseUint64(it->second, &value) ? value : default_value;
}

double FlagSet::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  double value = 0;
  return ParseDouble(it->second, &value) ? value : default_value;
}

bool FlagSet::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return it->second != "false" && it->second != "0";
}

}  // namespace lockdoc
