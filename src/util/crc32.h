// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) used to guard the
// framed v2 trace format against corruption. Incremental API so frames can
// be checksummed while streaming.
#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lockdoc {

// Extends a running CRC with `size` bytes. Start with `crc` = 0; the result
// of one call feeds the next.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

// One-shot convenience.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

}  // namespace lockdoc

#endif  // SRC_UTIL_CRC32_H_
