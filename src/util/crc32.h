// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) used to guard the
// framed v2 trace format against corruption. Incremental API so frames can
// be checksummed while streaming.
#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lockdoc {

class ThreadPool;

// Extends a running CRC with `size` bytes. Start with `crc` = 0; the result
// of one call feeds the next.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

// One-shot convenience.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

// Splices two independently computed CRCs: given crc_a = Crc32(A) and
// crc_b = Crc32(B), returns Crc32(A ++ B). CRC-32 is linear over GF(2), so
// appending `len_b` bytes multiplies the state by a fixed matrix; this runs
// in O(log len_b) and lets disjoint chunks be checksummed concurrently.
uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b);

// Crc32(data, size) computed by fanning fixed-size chunks out over `pool`
// and combining the partial CRCs in order. Bit-identical to the serial
// CRC at any thread count. A null pool (or a small input) runs serially.
uint32_t Crc32Parallel(const void* data, size_t size, ThreadPool* pool);

}  // namespace lockdoc

#endif  // SRC_UTIL_CRC32_H_
