#include "src/util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lockdoc {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> result;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      result.emplace_back(input.substr(start));
      break;
    }
    result.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return result;
}

std::vector<std::string> SplitAndTrim(std::string_view input, char delimiter) {
  std::vector<std::string> result;
  for (const std::string& field : Split(input, delimiter)) {
    std::string_view trimmed = Trim(field);
    if (!trimmed.empty()) {
      result.emplace_back(trimmed);
    }
  }
  return result;
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      result.append(separator);
    }
    result.append(parts[i]);
  }
  return result;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1])) != 0) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return false;  // Overflow.
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) {
    return false;
  }
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

std::string FormatPercent(double fraction) {
  return StrFormat("%.2f%%", fraction * 100.0);
}

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      result.push_back(',');
    }
    result.push_back(*it);
    ++count;
  }
  return std::string(result.rbegin(), result.rend());
}

}  // namespace lockdoc
