#include "src/util/crc32.h"

#include <array>
#include <cstring>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LOCKDOC_CRC32_PCLMUL 1
#include <immintrin.h>
#endif

#include "src/util/thread_pool.h"

namespace lockdoc {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

// Slice-by-8: eight tables so the inner loop folds 8 input bytes per
// iteration instead of 1. kTables[0] is the classic byte-at-a-time table;
// kTables[k][b] is the CRC of byte b followed by k zero bytes.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xff];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

// --- GF(2) matrix helpers for Crc32Combine (the zlib algorithm). ---
// A matrix is 32 column vectors; Times applies it to a state vector.

using Gf2Matrix = std::array<uint32_t, 32>;

uint32_t Gf2Times(const Gf2Matrix& m, uint32_t vec) {
  uint32_t sum = 0;
  for (size_t i = 0; vec != 0; vec >>= 1, ++i) {
    if (vec & 1) {
      sum ^= m[i];
    }
  }
  return sum;
}

Gf2Matrix Gf2Square(const Gf2Matrix& m) {
  Gf2Matrix sq;
  for (size_t i = 0; i < 32; ++i) {
    sq[i] = Gf2Times(m, m[i]);
  }
  return sq;
}

#ifdef LOCKDOC_CRC32_PCLMUL

bool HavePclmul() {
  static const bool have =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return have;
}

// Carry-less-multiply bulk path (Gopal et al., "Fast CRC Computation for
// Generic Polynomials Using PCLMULQDQ", Intel 2009): the message is treated
// as a polynomial over GF(2) and folded 512 bits at a time, so the hot loop
// retires four 16-byte lanes per iteration instead of 8 table lookups per
// 8 bytes. The constants are x^k mod P (bit-reflected) for the fold
// distances and the Barrett reduction of the IEEE polynomial; the result is
// bit-identical to the slice-by-8 loop. `crc` is the in-flight state
// (already inverted) and `size` must be a non-zero multiple of 64.
__attribute__((target("pclmul,sse4.1"))) uint32_t Crc32PclmulBlocks(
    uint32_t crc, const unsigned char* bytes, size_t size) {
  const __m128i k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);  // x^576, x^512
  const __m128i k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);  // x^128, x^192
  const __m128i k5 = _mm_cvtsi64_si128(0x0163cd6124);               // x^96
  const __m128i barrett = _mm_set_epi64x(0x01f7011641, 0x01db710641);  // mu, P'
  const __m128i low32 = _mm_setr_epi32(~0, 0, ~0, 0);

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  bytes += 64;
  size -= 64;

  while (size >= 64) {
    __m128i t1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    __m128i t2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    __m128i t3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    __m128i t4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t1),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes)));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, t2),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16)));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, t3),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 32)));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, t4),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 48)));
    bytes += 64;
    size -= 64;
  }

  // Fold the four lanes into one.
  __m128i t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x2);
  t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x3);
  t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x4);

  // 128 -> 64 bits.
  t = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), t);
  // 64 -> 32 bits.
  t = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, low32);
  x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
  x1 = _mm_xor_si128(x1, t);
  // Barrett reduction modulo P.
  t = _mm_and_si128(x1, low32);
  t = _mm_clmulepi64_si128(t, barrett, 0x10);
  t = _mm_and_si128(t, low32);
  t = _mm_clmulepi64_si128(t, barrett, 0x00);
  x1 = _mm_xor_si128(x1, t);
  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

#endif  // LOCKDOC_CRC32_PCLMUL

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Align to 8 so the wide loads below stay within the buffer.
  while (size != 0 && (reinterpret_cast<uintptr_t>(bytes) & 7) != 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *bytes++) & 0xff];
    --size;
  }
#ifdef LOCKDOC_CRC32_PCLMUL
  // Below ~2 blocks the fold prologue/epilogue costs more than it saves.
  if (size >= 128 && HavePclmul()) {
    size_t bulk = size & ~size_t{63};
    crc = Crc32PclmulBlocks(crc, bytes, bulk);
    bytes += bulk;
    size -= bulk;
  }
#endif
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, sizeof(word));
    // Little-endian fold: the low word absorbs the running CRC.
    word ^= crc;
    crc = kTables[7][word & 0xff] ^ kTables[6][(word >> 8) & 0xff] ^
          kTables[5][(word >> 16) & 0xff] ^ kTables[4][(word >> 24) & 0xff] ^
          kTables[3][(word >> 32) & 0xff] ^ kTables[2][(word >> 40) & 0xff] ^
          kTables[1][(word >> 48) & 0xff] ^ kTables[0][(word >> 56) & 0xff];
    bytes += 8;
    size -= 8;
  }
  while (size != 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *bytes++) & 0xff];
    --size;
  }
  return ~crc;
}

uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b) {
  if (len_b == 0) {
    return crc_a;
  }
  // odd = the "advance one zero bit" operator.
  Gf2Matrix odd;
  odd[0] = kPolynomial;
  for (size_t i = 1; i < 32; ++i) {
    odd[i] = 1u << (i - 1);
  }
  Gf2Matrix even = Gf2Square(odd);  // Two zero bits.
  odd = Gf2Square(even);            // Four zero bits.
  // Advance crc_a through len_b zero *bytes*, squaring as len_b sheds bits.
  uint32_t crc = crc_a;
  uint64_t len = len_b;
  do {
    even = Gf2Square(odd);
    if (len & 1) {
      crc = Gf2Times(even, crc);
    }
    len >>= 1;
    if (len == 0) {
      break;
    }
    odd = Gf2Square(even);
    if (len & 1) {
      crc = Gf2Times(odd, crc);
    }
    len >>= 1;
  } while (len != 0);
  return crc ^ crc_b;
}

uint32_t Crc32Parallel(const void* data, size_t size, ThreadPool* pool) {
  // Below this, combine overhead beats the parallel win.
  constexpr size_t kMinParallel = 1 << 22;
  if (pool == nullptr || pool->thread_count() <= 1 || size < kMinParallel) {
    return Crc32(data, size);
  }
  const size_t chunk = (size + pool->thread_count() - 1) / pool->thread_count();
  const size_t chunks = (size + chunk - 1) / chunk;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::vector<uint32_t> partial(chunks);
  pool->ParallelFor(chunks, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      size_t off = i * chunk;
      partial[i] = Crc32(bytes + off, std::min(chunk, size - off));
    }
  });
  uint32_t crc = partial[0];
  for (size_t i = 1; i < chunks; ++i) {
    size_t off = i * chunk;
    crc = Crc32Combine(crc, partial[i], std::min(chunk, size - off));
  }
  return crc;
}

}  // namespace lockdoc
