// Hardened low-level file I/O for everything that touches archived traces,
// .lockdb snapshots, and the serve spool. The std::fstream paths used
// before this layer silently conflate "short read", "EINTR", and "disk
// died"; a long-lived service cannot. Every function here:
//
//   - loops partial read()/write() until the full byte count moved,
//   - retries EINTR (a SIGCHLD from a watchdog must not corrupt an import),
//   - reports failures as Status with the errno text attached.
//
// WriteFileAtomic is the durability primitive the crash-safety story rests
// on: bytes land in a temp file in the destination directory, the temp file
// is fsync'd, then rename()d over the target, then the directory is fsync'd
// — so after a crash the target is either the complete old file or the
// complete new file, never a torn write. A temp file left by a crash is
// harmless garbage (prefix kAtomicTempPrefix) that callers may sweep.
#ifndef SRC_UTIL_FILE_IO_H_
#define SRC_UTIL_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace lockdoc {

// Prefix of in-flight WriteFileAtomic temp files, exposed so spool/journal
// scans can ignore (and crash recovery can sweep) them.
inline constexpr char kAtomicTempPrefix[] = ".tmp.";

// Reads the whole file behind `fd`, looping short reads and retrying EINTR.
// Does not close `fd`.
Result<std::string> ReadFdToString(int fd, const std::string& name_for_errors);

// Opens `path` read-only and slurps it. Works on pipes and other
// pseudo-files that return short reads.
Result<std::string> ReadFileToString(const std::string& path);

// Size of `path` without reading it; errors surface as Status (a spool
// scanner must distinguish "vanished" from "empty").
Result<uint64_t> FileSize(const std::string& path);

// Writes all of `bytes` to `fd`, looping partial writes and EINTR.
Status WriteAllToFd(int fd, std::string_view bytes, const std::string& name_for_errors);

// Atomically replaces `path` with `bytes`: temp file in the same directory,
// full write, fsync, rename, directory fsync. On any failure the temp file
// is unlinked and `path` is untouched.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

// rename() with EINTR retry and Status errors. Both paths must be on the
// same filesystem (spool and state dirs are co-located for this reason).
Status RenameFile(const std::string& from, const std::string& to);

// unlink() that treats ENOENT as success (idempotent cleanup after crash
// recovery may race its own earlier attempt).
Status RemoveFileIfExists(const std::string& path);

// fsync() on a directory so a rename into it survives power loss.
Status SyncDirectory(const std::string& dir);

}  // namespace lockdoc

#endif  // SRC_UTIL_FILE_IO_H_
