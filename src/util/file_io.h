// Hardened low-level file I/O for everything that touches archived traces,
// .lockdb snapshots, and the serve spool. The std::fstream paths used
// before this layer silently conflate "short read", "EINTR", and "disk
// died"; a long-lived service cannot. Every function here:
//
//   - loops partial read()/write() until the full byte count moved,
//   - retries EINTR (a SIGCHLD from a watchdog must not corrupt an import),
//   - reports failures as Status with the errno text attached.
//
// WriteFileAtomic is the durability primitive the crash-safety story rests
// on: bytes land in a temp file in the destination directory, the temp file
// is fsync'd, then rename()d over the target, then the directory is fsync'd
// — so after a crash the target is either the complete old file or the
// complete new file, never a torn write. A temp file left by a crash is
// harmless garbage (prefix kAtomicTempPrefix) that callers may sweep.
#ifndef SRC_UTIL_FILE_IO_H_
#define SRC_UTIL_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace lockdoc {

// Prefix of in-flight WriteFileAtomic temp files, exposed so spool/journal
// scans can ignore (and crash recovery can sweep) them.
inline constexpr char kAtomicTempPrefix[] = ".tmp.";

// Reads the whole file behind `fd`, looping short reads and retrying EINTR.
// Does not close `fd`.
Result<std::string> ReadFdToString(int fd, const std::string& name_for_errors);

// Opens `path` read-only and slurps it. Works on pipes and other
// pseudo-files that return short reads.
Result<std::string> ReadFileToString(const std::string& path);

// Size of `path` without reading it; errors surface as Status (a spool
// scanner must distinguish "vanished" from "empty").
Result<uint64_t> FileSize(const std::string& path);

// Writes all of `bytes` to `fd`, looping partial writes and EINTR.
Status WriteAllToFd(int fd, std::string_view bytes, const std::string& name_for_errors);

// Atomically replaces `path` with `bytes`: temp file in the same directory,
// full write, fsync, rename, directory fsync. On any failure the temp file
// is unlinked and `path` is untouched.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

// Incremental WriteFileAtomic for producers that want disk I/O overlapped
// with the computation still generating bytes: Open() creates the temp
// file, Append() streams chunks as they become available, FlushHint() asks
// the kernel to start writing dirty pages behind the producer, and
// Commit() performs the fsync + rename + directory fsync handshake. Until
// Commit() returns Ok the target path is untouched; Abort() (or the
// destructor) unlinks the temp file. The durability guarantee is exactly
// WriteFileAtomic's — FlushHint only moves writeback earlier, it adds no
// ordering or persistence promise of its own.
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter() { Abort(); }
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Creates the temp file next to `path`. One open writer per target path
  // per process (the temp name is derived from the target and the pid).
  Status Open(const std::string& path);

  // Streams `bytes` to the temp file, looping partial writes and EINTR.
  // After an error the writer is unusable except for Abort().
  Status Append(std::string_view bytes);

  // Advises the kernel to begin writeback of bytes appended since the last
  // hint. Purely advisory and never fails the write; no-op off Linux.
  void FlushHint();

  // fsync + rename over the target + directory fsync. On failure the temp
  // file is removed and the target is untouched.
  Status Commit();

  // Removes the temp file; the target is untouched. Safe to call twice.
  void Abort();

  uint64_t bytes_written() const { return written_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::string temp_;
  std::string dir_;
  uint64_t written_ = 0;
  uint64_t hinted_ = 0;
};

// rename() with EINTR retry and Status errors. Both paths must be on the
// same filesystem (spool and state dirs are co-located for this reason).
Status RenameFile(const std::string& from, const std::string& to);

// unlink() that treats ENOENT as success (idempotent cleanup after crash
// recovery may race its own earlier attempt).
Status RemoveFileIfExists(const std::string& path);

// fsync() on a directory so a rename into it survives power loss.
Status SyncDirectory(const std::string& dir);

}  // namespace lockdoc

#endif  // SRC_UTIL_FILE_IO_H_
