#include "src/util/thread_pool.h"

#include <algorithm>

namespace lockdoc {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = DefaultThreadCount();
  }
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    body(0, n);
    return;
  }
  std::lock_guard<std::mutex> driver_lock(driver_mu_);
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  // Several chunks per lane so uneven items still balance.
  job->chunk = std::max<size_t>(1, n / (thread_count() * 8));
  job->n_chunks = (n + job->chunk - 1) / job->chunk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  RunChunks(*job);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return job->finished_chunks.load() == job->n_chunks; });
  job_.reset();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen_generation && job_ != nullptr);
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
    }
    RunChunks(*job);
  }
}

void ThreadPool::RunChunks(Job& job) {
  for (;;) {
    size_t index = job.next_chunk.fetch_add(1);
    if (index >= job.n_chunks) {
      return;
    }
    size_t begin = index * job.chunk;
    size_t end = std::min(job.n, begin + job.chunk);
    (*job.body)(begin, end);
    if (job.finished_chunks.fetch_add(1) + 1 == job.n_chunks) {
      // Last chunk: wake the caller. Taking the mutex pairs with the
      // caller's predicate check so the notification cannot be missed.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

}  // namespace lockdoc
