// Lightweight error propagation used at library boundaries that parse
// external input (rule-spec files, CSV, binary traces). Internal invariant
// violations use LOCKDOC_CHECK instead.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace lockdoc {

class Status {
 public:
  // Default-constructed status is OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return !message_.has_value(); }
  // Requires !ok().
  const std::string& message() const {
    LOCKDOC_CHECK(message_.has_value());
    return *message_;
  }
  std::string ToString() const { return ok() ? "OK" : *message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}

  std::optional<std::string> message_;
};

// A value-or-error holder. Mirrors the subset of absl::StatusOr we need.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` or
  // `return Status::Error(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    LOCKDOC_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LOCKDOC_CHECK(value_.has_value());
    return *value_;
  }
  T& value() & {
    LOCKDOC_CHECK(value_.has_value());
    return *value_;
  }
  T&& value() && {
    LOCKDOC_CHECK(value_.has_value());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace lockdoc

#endif  // SRC_UTIL_STATUS_H_
