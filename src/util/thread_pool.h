// A small fixed-size thread pool for deterministic data-parallel loops.
//
// The analysis pipeline is embarrassingly parallel across indexed work
// items (member populations, documented rules, derivation results), so the
// only primitive offered is a chunked parallel-for: the index range [0, n)
// is split into contiguous chunks that workers claim atomically. The
// calling thread participates, so a pool built with `threads = 1` spawns no
// workers at all and runs everything inline — serial and parallel execution
// share one code path.
//
// Determinism contract: ParallelFor guarantees nothing about which thread
// runs which chunk or in what order chunks complete. Callers obtain
// byte-identical results at any thread count by writing only to
// per-index output slots and merging in index order afterwards; every
// parallel stage in src/core follows this pattern.
//
// Concurrent drivers are serialized: when several threads call ParallelFor
// on one pool (serve answers independent requests over one shared
// AnalysisContext), an internal driver mutex runs their loops one at a
// time, so each loop still owns every lane while it runs. ParallelFor must
// not be called from inside a body running on the same pool.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lockdoc {

class ThreadPool {
 public:
  // `threads` counts lanes including the calling thread; 0 selects
  // DefaultThreadCount(). A pool of 1 runs everything inline.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Lanes available, including the calling thread. Always >= 1.
  size_t thread_count() const { return workers_.size() + 1; }

  // Invokes body(begin, end) over a partition of [0, n) and returns once
  // every chunk has finished. The calling thread participates.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

  // std::thread::hardware_concurrency(), or 1 when that reports 0.
  static size_t DefaultThreadCount();

 private:
  struct Job {
    const std::function<void(size_t, size_t)>* body = nullptr;
    size_t n = 0;
    size_t chunk = 1;
    size_t n_chunks = 0;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> finished_chunks{0};
  };

  void WorkerLoop();
  void RunChunks(Job& job);

  std::vector<std::thread> workers_;
  // Serializes concurrent ParallelFor callers (held for the whole loop).
  // The inline path (no workers / n == 1) touches no shared state and
  // skips it.
  std::mutex driver_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here for a new job.
  std::condition_variable done_cv_;  // The caller waits here for completion.
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace lockdoc

#endif  // SRC_UTIL_THREAD_POOL_H_
