#include "src/util/backoff.h"

#include <chrono>
#include <thread>

namespace lockdoc {

uint64_t BackoffDelayMs(const BackoffPolicy& policy, uint32_t retry) {
  uint64_t delay = policy.base_delay_ms;
  for (uint32_t i = 1; i < retry; ++i) {
    if (policy.multiplier != 0 && delay > policy.max_delay_ms / policy.multiplier) {
      return policy.max_delay_ms;  // Next multiply would overflow the cap.
    }
    delay *= policy.multiplier;
  }
  return delay < policy.max_delay_ms ? delay : policy.max_delay_ms;
}

Status RetryWithBackoff(const BackoffPolicy& policy, const std::function<Status()>& attempt,
                        const std::function<void(uint64_t)>& sleep_ms) {
  Status last = Status::Error("RetryWithBackoff: zero attempts");
  uint32_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  for (uint32_t k = 1; k <= attempts; ++k) {
    last = attempt();
    if (last.ok()) {
      return last;
    }
    if (k == attempts) {
      break;
    }
    uint64_t delay = BackoffDelayMs(policy, k);
    if (sleep_ms) {
      sleep_ms(delay);
    } else if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  return last;
}

}  // namespace lockdoc
