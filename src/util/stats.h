// Small statistics helpers plus a fixed-width text-table printer used by the
// bench binaries to render the paper's tables.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lockdoc {

// Accumulates a stream of samples; O(1) memory for mean/min/max and a sorted
// copy on demand for percentiles.
class RunningStats {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  // p in [0, 100]; nearest-rank percentile.
  double Percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  double sum_ = 0;
};

// Renders rows as an aligned text table. Columns are sized to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Inserts a horizontal separator before the next added row.
  void AddSeparator();
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // Empty vector == separator.
};

}  // namespace lockdoc

#endif  // SRC_UTIL_STATS_H_
