// CSV encoding/decoding (RFC-4180 style quoting). The paper's post-processing
// step exports intermediate tables as CSV before database import; we keep the
// same interchange format so traces and tables can be inspected with standard
// tooling.
#ifndef SRC_UTIL_CSV_H_
#define SRC_UTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace lockdoc {

// Quotes a single CSV field if needed (contains comma, quote, or newline).
std::string CsvEscape(std::string_view field);

// Encodes one row (no trailing newline).
std::string CsvEncodeRow(const std::vector<std::string>& fields);

// Parses one physical CSV line into fields. Embedded newlines inside quoted
// fields are not supported by this single-line API; ParseCsv handles them.
Result<std::vector<std::string>> CsvParseLine(std::string_view line);

// Parses a whole CSV document (handles quoted fields spanning lines).
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view document);

// Streams rows to an ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);
  size_t rows_written() const { return rows_written_; }

 private:
  std::ostream& out_;
  size_t rows_written_ = 0;
};

}  // namespace lockdoc

#endif  // SRC_UTIL_CSV_H_
