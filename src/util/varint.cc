#include "src/util/varint.h"

namespace lockdoc {

void PutVarint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

bool GetVarint(ByteCursor& in, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    uint8_t c = 0;
    if (!in.Get(&c)) {
      return false;
    }
    uint64_t bits = c & 0x7f;
    if (shift == 63 && bits > 1) {
      return false;  // Sets bits past bit 63.
    }
    result |= bits << shift;
    if ((c & 0x80) == 0) {
      if (i > 0 && bits == 0) {
        return false;  // Non-canonical: a shorter encoding exists.
      }
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // An 11th byte would be needed: overflow.
}

void PutLengthPrefixed(std::string& out, const std::string& text) {
  PutVarint(out, text.size());
  out.append(text);
}

bool GetLengthPrefixed(ByteCursor& in, std::string* text, uint64_t max_size) {
  uint64_t size = 0;
  if (!GetVarint(in, &size)) {
    return false;
  }
  if (size > max_size || size > in.remaining()) {
    return false;
  }
  text->resize(size);
  return in.Read(text->data(), size);
}

void AppendUint32LE(std::string& out, uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

uint32_t LoadUint32LE(const char* data) {
  const auto* b = reinterpret_cast<const unsigned char*>(data);
  return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
}

void AppendUint64LE(std::string& out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

uint64_t LoadUint64LE(const char* data) {
  const auto* b = reinterpret_cast<const unsigned char*>(data);
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(b[i]) << (8 * i);
  }
  return value;
}

}  // namespace lockdoc
