#include "src/util/file_io.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

std::string ErrnoText() { return std::string(strerror(errno)); }

// open() with EINTR retry.
int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

void CloseQuietly(int fd) {
  // close() after a successful fsync: EINTR here means the descriptor state
  // is unspecified on some systems, but retrying a close risks closing a
  // reused fd. POSIX (and Linux) free the fd even on EINTR; do not retry.
  ::close(fd);
}

Status FsyncRetry(int fd, const std::string& name) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Error(StrFormat("fsync %s: %s", name.c_str(), ErrnoText().c_str()));
  }
  return Status::Ok();
}

}  // namespace

Result<std::string> ReadFdToString(int fd, const std::string& name) {
  std::string out;
  char buffer[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) {
        continue;  // A signal mid-read is not damage.
      }
      return Status::Error(StrFormat("read %s: %s", name.c_str(), ErrnoText().c_str()));
    }
    if (n == 0) {
      return out;
    }
    // Short reads are normal (pipes, NFS, signals): keep looping until EOF.
    out.append(buffer, static_cast<size_t>(n));
  }
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = OpenRetry(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Error(StrFormat("open %s: %s", path.c_str(), ErrnoText().c_str()));
  }
  auto result = ReadFdToString(fd, path);
  CloseQuietly(fd);
  return result;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  int rc;
  do {
    rc = ::stat(path.c_str(), &st);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Error(StrFormat("stat %s: %s", path.c_str(), ErrnoText().c_str()));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status WriteAllToFd(int fd, std::string_view bytes, const std::string& name) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Error(StrFormat("write %s: %s", name.c_str(), ErrnoText().c_str()));
    }
    written += static_cast<size_t>(n);  // Partial writes: keep going.
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  AtomicFileWriter writer;
  Status status = writer.Open(path);
  if (status.ok()) {
    status = writer.Append(bytes);
  }
  if (status.ok()) {
    status = writer.Commit();
  }
  return status;
}

Status AtomicFileWriter::Open(const std::string& path) {
  LOCKDOC_CHECK(fd_ < 0 && "AtomicFileWriter reused while open");
  std::filesystem::path target(path);
  dir_ = target.parent_path().empty() ? "." : target.parent_path().string();
  temp_ = dir_ + "/" + kAtomicTempPrefix + target.filename().string() + "." +
          std::to_string(static_cast<long long>(::getpid()));
  path_ = path;
  written_ = 0;
  hinted_ = 0;
  fd_ = OpenRetry(temp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::Error(StrFormat("open %s: %s", temp_.c_str(), ErrnoText().c_str()));
  }
  return Status::Ok();
}

Status AtomicFileWriter::Append(std::string_view bytes) {
  LOCKDOC_CHECK(fd_ >= 0 && "Append on a writer that is not open");
  Status status = WriteAllToFd(fd_, bytes, temp_);
  if (!status.ok()) {
    Abort();
    return status;
  }
  written_ += bytes.size();
  return Status::Ok();
}

void AtomicFileWriter::FlushHint() {
#ifdef __linux__
  if (fd_ >= 0 && written_ > hinted_) {
    // Kick off writeback for the freshly appended range so the Commit-time
    // fsync finds most pages already on their way to disk. Errors are
    // ignored on purpose: the fsync in Commit is the actual barrier.
    ::sync_file_range(fd_, static_cast<off64_t>(hinted_),
                      static_cast<off64_t>(written_ - hinted_), SYNC_FILE_RANGE_WRITE);
    hinted_ = written_;
  }
#endif
}

Status AtomicFileWriter::Commit() {
  LOCKDOC_CHECK(fd_ >= 0 && "Commit on a writer that is not open");
  Status status = FsyncRetry(fd_, temp_);
  CloseQuietly(fd_);
  fd_ = -1;
  if (!status.ok()) {
    ::unlink(temp_.c_str());
    return status;
  }
  status = RenameFile(temp_, path_);
  if (!status.ok()) {
    ::unlink(temp_.c_str());
    return status;
  }
  // The rename itself must reach disk, or a crash can forget the new name.
  return SyncDirectory(dir_);
}

void AtomicFileWriter::Abort() {
  if (fd_ >= 0) {
    CloseQuietly(fd_);
    fd_ = -1;
    ::unlink(temp_.c_str());
  }
}

Status RenameFile(const std::string& from, const std::string& to) {
  int rc;
  do {
    rc = ::rename(from.c_str(), to.c_str());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Error(StrFormat("rename %s -> %s: %s", from.c_str(), to.c_str(),
                                   ErrnoText().c_str()));
  }
  return Status::Ok();
}

Status RemoveFileIfExists(const std::string& path) {
  int rc;
  do {
    rc = ::unlink(path.c_str());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != ENOENT) {
    return Status::Error(StrFormat("unlink %s: %s", path.c_str(), ErrnoText().c_str()));
  }
  return Status::Ok();
}

Status SyncDirectory(const std::string& dir) {
  int fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Error(StrFormat("open dir %s: %s", dir.c_str(), ErrnoText().c_str()));
  }
  Status status = FsyncRetry(fd, dir);
  CloseQuietly(fd);
  return status;
}

}  // namespace lockdoc
