// Bounded retry with exponential backoff for transient I/O failures.
//
// A long-lived service hitting a momentary failure (file briefly locked, a
// writer still mid-rename, an NFS hiccup) should not quarantine the input
// on the first try — and must not spin forever either. The policy is
// deterministic: attempt k sleeps base * multiplier^(k-1), capped, with no
// jitter, so test runs reproduce exactly. The sleeper is injectable so unit
// tests observe the schedule without wall-clock time.
#ifndef SRC_UTIL_BACKOFF_H_
#define SRC_UTIL_BACKOFF_H_

#include <cstdint>
#include <functional>

#include "src/util/status.h"

namespace lockdoc {

struct BackoffPolicy {
  // Total tries including the first one; 1 disables retrying.
  uint32_t max_attempts = 3;
  uint64_t base_delay_ms = 10;
  uint64_t max_delay_ms = 250;
  uint64_t multiplier = 4;
};

// Delay before retry number `retry` (1-based): base * multiplier^(retry-1),
// capped at max_delay_ms. Pure function of the policy — the schedule a test
// asserts on.
uint64_t BackoffDelayMs(const BackoffPolicy& policy, uint32_t retry);

// Runs `attempt` up to policy.max_attempts times, sleeping the backoff
// schedule between failures, and returns the first OK status or the last
// failure. `sleep_ms` defaults to a real sleep; tests pass a recorder.
Status RetryWithBackoff(const BackoffPolicy& policy, const std::function<Status()>& attempt,
                        const std::function<void(uint64_t)>& sleep_ms = nullptr);

}  // namespace lockdoc

#endif  // SRC_UTIL_BACKOFF_H_
