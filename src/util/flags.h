// A tiny command-line flag parser for the example binaries and benches.
// Supports --name=value and --name value forms plus boolean --name.
#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lockdoc {

class FlagSet {
 public:
  // Parses argv; unknown arguments that do not start with "--" are collected
  // as positional arguments. Returns false (and fills *error) on malformed
  // input such as "--=x".
  bool Parse(int argc, const char* const* argv, std::string* error);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& default_value) const;
  uint64_t GetUint64(const std::string& name, uint64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Every flag name present on the command line, in sorted order — for
  // strict per-command validation of accepted flags.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lockdoc

#endif  // SRC_UTIL_FLAGS_H_
