// Minimal leveled logging for the LockDoc tooling.
//
// Usage:
//   LOCKDOC_LOG(kInfo) << "imported " << n << " events";
//
// The default threshold is kWarning so library consumers stay quiet; tools
// and benches raise it via SetLogThreshold().
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace lockdoc {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets the minimum level that is actually emitted to stderr.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

// Returns a short human-readable tag ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

// Internal: emits one formatted line to stderr if `level` passes the
// threshold. Exposed for testing.
void EmitLogLine(LogLevel level, const std::string& message);

// RAII stream that collects a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace lockdoc

#define LOCKDOC_LOG(severity)                                                       \
  ::lockdoc::LogMessage(::lockdoc::LogLevel::severity, __FILE__, __LINE__).stream()

// Always-on assertion macro used across the project: aborts with a message.
// Unlike assert(), it is active in all build types; invariant violations in
// trace analysis must never be silently ignored.
#define LOCKDOC_CHECK(condition)                                                 \
  do {                                                                           \
    if (!(condition)) {                                                          \
      ::lockdoc::EmitLogLine(::lockdoc::LogLevel::kError,                        \
                             std::string("CHECK failed: " #condition " at ") +   \
                                 __FILE__ + ":" + std::to_string(__LINE__));     \
      ::std::abort();                                                            \
    }                                                                            \
  } while (0)

#endif  // SRC_UTIL_LOGGING_H_
