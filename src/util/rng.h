// Deterministic pseudo-random number generation. All simulation components
// take an explicit seed so a run is exactly reproducible; this is essential
// because the evaluation compares mined rules against ground truth.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

#include "src/util/logging.h"

namespace lockdoc {

// SplitMix64: used to expand a user seed into stream seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x10cd0cULL) {
    uint64_t sm = seed;
    for (uint64_t& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    LOCKDOC_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    while (true) {
      uint64_t value = Next();
      if (value >= threshold) {
        return value % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    LOCKDOC_CHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Returns true with probability `p`.
  bool Chance(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return NextDouble() < p;
  }

  // Derives an independent child generator; useful to give each simulated
  // task its own stream while keeping global determinism.
  Rng Fork() { return Rng(Next() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace lockdoc

#endif  // SRC_UTIL_RNG_H_
