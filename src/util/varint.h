// Shared low-level binary encoding helpers: LEB128-style varints,
// length-prefixed strings, and little-endian fixed-width integers over a
// bounds-checked cursor. Used by both on-disk formats (the framed v2 trace
// in src/trace/trace_io.cc and the .lockdb analysis snapshot in
// src/db/snapshot.cc) so the two readers share one hardened decoder.
#ifndef SRC_UTIL_VARINT_H_
#define SRC_UTIL_VARINT_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace lockdoc {

// Read-only view over a byte buffer. Every accessor is bounds-checked; a
// failed read leaves `pos` wherever the failure was detected so callers can
// report the byte offset.
struct ByteCursor {
  const char* data = nullptr;
  size_t size = 0;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }
  bool Get(uint8_t* byte) {
    if (pos >= size) {
      return false;
    }
    *byte = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool Read(void* out, size_t n) {
    if (remaining() < n) {
      return false;
    }
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
};

void PutVarint(std::string& out, uint64_t value);

// Rejects truncated, overflowing (> 64 bits), and non-canonical (redundant
// trailing zero byte) encodings.
bool GetVarint(ByteCursor& in, uint64_t* value);

// Varint length prefix followed by the raw bytes.
void PutLengthPrefixed(std::string& out, const std::string& text);

// Rejects declared lengths exceeding `max_size` or the bytes actually
// remaining in the input (the allocation is capped *before* resize).
bool GetLengthPrefixed(ByteCursor& in, std::string* text, uint64_t max_size);

void AppendUint32LE(std::string& out, uint32_t value);
uint32_t LoadUint32LE(const char* data);

void AppendUint64LE(std::string& out, uint64_t value);
uint64_t LoadUint64LE(const char* data);

}  // namespace lockdoc

#endif  // SRC_UTIL_VARINT_H_
