// Read-only memory-mapped files for the zero-copy .lockdb v2 load path.
//
// A MappedFile owns an mmap(PROT_READ, MAP_PRIVATE) of a whole file; the
// mapping stays valid for the object's lifetime and is released by the
// destructor. Mappings returned by mmap are page-aligned, which is what the
// v2 snapshot container's 8-byte alignment contract relies on.
//
// Zero-byte files are representable (mmap rejects length 0, so an empty
// file maps to an empty view with no kernel mapping behind it). Move-only:
// the mapping has a single owner, and consumers that need shared lifetime
// wrap it in a shared_ptr (see SnapshotBacking in src/core/pipeline.h).
#ifndef SRC_UTIL_MMAP_FILE_H_
#define SRC_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace lockdoc {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `path` read-only. Fails with the errno text if the file cannot be
  // opened, stat'd, or mapped. Regular files only (a FIFO or device would
  // make the "mapping reflects the file at open time" contract meaningless).
  static Result<MappedFile> Open(const std::string& path);

  std::string_view bytes() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }

  // Tells the kernel the whole mapping is about to be read front to back
  // (madvise MADV_SEQUENTIAL + MADV_WILLNEED), so readahead batches the
  // page faults a byte-by-byte sweep would otherwise take one at a time.
  // Callers that want lazy faulting — the trusted zero-copy load — simply
  // don't call it. Purely advisory; failures are ignored.
  void AdviseSequentialScan() const;

 private:
  void Release();

  const void* data_ = nullptr;  // nullptr iff empty.
  size_t size_ = 0;
};

}  // namespace lockdoc

#endif  // SRC_UTIL_MMAP_FILE_H_
