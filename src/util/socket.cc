#include "src/util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "src/util/string_util.h"

namespace lockdoc {

namespace {

using Clock = std::chrono::steady_clock;

Status ErrnoStatus(const char* what) {
  return Status::Error(StrFormat("%s: %s", what, std::strerror(errno)));
}

// Remaining milliseconds until `deadline`, clamped to >= 0. A deadline of
// Clock::time_point::max() means "unbounded" and maps to a long poll slice
// (re-armed each loop) so the arithmetic below never overflows.
int RemainingMs(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) {
    return 1000;
  }
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  if (left.count() <= 0) {
    return 0;
  }
  if (left.count() > 1000) {
    return 1000;
  }
  return static_cast<int>(left.count());
}

// Reads exactly `want` bytes before `deadline`. Returns: 1 ok, 0 clean EOF
// (only when nothing was read yet and `eof_ok`), -1 timeout, -2 error.
int ReadExact(int fd, char* buffer, size_t want, Clock::time_point deadline, bool eof_ok,
              std::string* error) {
  size_t have = 0;
  while (have < want) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    int slice = RemainingMs(deadline);
    if (slice == 0 && deadline != Clock::time_point::max()) {
      return -1;
    }
    int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = StrFormat("poll: %s", std::strerror(errno));
      return -2;
    }
    if (ready == 0) {
      if (deadline != Clock::time_point::max() && RemainingMs(deadline) == 0) {
        return -1;
      }
      continue;
    }
    ssize_t got = ::recv(fd, buffer + have, want - have, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = StrFormat("recv: %s", std::strerror(errno));
      return -2;
    }
    if (got == 0) {
      if (have == 0 && eof_ok) {
        return 0;
      }
      *error = "peer closed mid-frame";
      return -2;
    }
    have += static_cast<size_t>(got);
  }
  return 1;
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc != 0 && errno == EINTR);
  }
  fd_ = fd;
}

Status ParseHostPort(std::string_view spec, std::string* host, uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::Error("expected HOST:PORT");
  }
  std::string_view port_text = spec.substr(colon + 1);
  uint32_t value = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::Error("port: expected a decimal number");
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535) {
      return Status::Error("port: out of range (0-65535)");
    }
  }
  *host = std::string(spec.substr(0, colon));
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Error(StrFormat("listen host '%s': expected an IPv4 address",
                                   host.c_str()));
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoStatus("socket");
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), 64) != 0) {
    return ErrnoStatus("listen");
  }
  return fd;
}

Result<uint16_t> BoundPort(int fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Error(StrFormat("host '%s': expected an IPv4 address", host.c_str()));
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoStatus("socket");
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return ErrnoStatus("connect");
  }
  return fd;
}

Result<bool> WaitReadable(int fd, uint64_t timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
    int slice = left.count() <= 0 ? 0 : static_cast<int>(left.count());
    int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("poll");
    }
    return ready > 0;
  }
}

Result<UniqueFd> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      return UniqueFd(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    return ErrnoStatus("accept");
  }
}

FrameRead ReadFrame(int fd, uint64_t idle_wait_ms, uint64_t deadline_ms,
                    uint64_t max_payload_bytes) {
  FrameRead out;

  // Idle gate: wait briefly for the first header byte so the caller can
  // check its stop flag between frames.
  auto readable = WaitReadable(fd, idle_wait_ms);
  if (!readable.ok()) {
    out.status = FrameStatus::kError;
    out.error = readable.status().message();
    return out;
  }
  if (!readable.value()) {
    out.status = FrameStatus::kIdle;
    return out;
  }

  // Once the first byte exists, the whole frame must land by the deadline.
  const auto deadline = deadline_ms == 0
                            ? Clock::time_point::max()
                            : Clock::now() + std::chrono::milliseconds(deadline_ms);
  char header[4];
  int rc = ReadExact(fd, header, sizeof(header), deadline, /*eof_ok=*/true, &out.error);
  if (rc == 0) {
    out.status = FrameStatus::kClosed;
    return out;
  }
  if (rc == -1) {
    out.status = FrameStatus::kTimeout;
    return out;
  }
  if (rc < 0) {
    out.status = FrameStatus::kError;
    return out;
  }
  const uint64_t length = (static_cast<uint64_t>(static_cast<unsigned char>(header[0])) << 24) |
                          (static_cast<uint64_t>(static_cast<unsigned char>(header[1])) << 16) |
                          (static_cast<uint64_t>(static_cast<unsigned char>(header[2])) << 8) |
                          static_cast<uint64_t>(static_cast<unsigned char>(header[3]));
  if (max_payload_bytes != 0 && length > max_payload_bytes) {
    out.status = FrameStatus::kOversized;
    out.error = StrFormat("frame announces %llu bytes, limit is %llu",
                          static_cast<unsigned long long>(length),
                          static_cast<unsigned long long>(max_payload_bytes));
    return out;
  }
  out.payload.resize(length);
  if (length > 0) {
    rc = ReadExact(fd, out.payload.data(), length, deadline, /*eof_ok=*/false, &out.error);
    if (rc == -1) {
      out.status = FrameStatus::kTimeout;
      out.payload.clear();
      return out;
    }
    if (rc < 0) {
      out.status = FrameStatus::kError;
      out.payload.clear();
      return out;
    }
  }
  out.status = FrameStatus::kOk;
  return out;
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > 0xffffffffull) {
    return Status::Error("frame payload exceeds the 32-bit length prefix");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>((length >> 24) & 0xff),
                    static_cast<char>((length >> 16) & 0xff),
                    static_cast<char>((length >> 8) & 0xff),
                    static_cast<char>(length & 0xff)};
  struct Piece {
    const char* data;
    size_t size;
  };
  const Piece pieces[] = {{header, sizeof(header)}, {payload.data(), payload.size()}};
  for (const Piece& piece : pieces) {
    size_t sent = 0;
    while (sent < piece.size) {
      ssize_t wrote = ::send(fd, piece.data + sent, piece.size - sent, MSG_NOSIGNAL);
      if (wrote < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("send");
      }
      sent += static_cast<size_t>(wrote);
    }
  }
  return Status::Ok();
}

}  // namespace lockdoc
