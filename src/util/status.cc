#include "src/util/status.h"

// Status is header-only today; this translation unit anchors the library so
// every module can link against lockdoc_util uniformly.
