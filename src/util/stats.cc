#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace lockdoc {

void RunningStats::Add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
}

double RunningStats::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double RunningStats::min() const {
  LOCKDOC_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double RunningStats::max() const {
  LOCKDOC_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double RunningStats::stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  double m = mean();
  double acc = 0.0;
  for (double s : samples_) {
    acc += (s - m) * (s - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double RunningStats::Percentile(double p) const {
  LOCKDOC_CHECK(!samples_.empty());
  LOCKDOC_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples_.begin(), samples_.end());
  if (p <= 0.0) {
    return samples_.front();
  }
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  rank = std::min(std::max<size_t>(rank, 1), samples_.size());
  return samples_[rank - 1];
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  LOCKDOC_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      line += (i == 0) ? "| " : " | ";
      line += cells[i];
      line.append(widths[i] - cells[i].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  auto render_separator = [&]() {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      line += (i == 0) ? "+-" : "-+-";
      line.append(widths[i], '-');
    }
    line += "-+\n";
    return line;
  };

  std::string out = render_separator();
  out += render_line(header_);
  out += render_separator();
  for (const auto& row : rows_) {
    out += row.empty() ? render_separator() : render_line(row);
  }
  out += render_separator();
  return out;
}

}  // namespace lockdoc
