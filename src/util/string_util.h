// Small string helpers shared across the project.
#ifndef SRC_UTIL_STRING_UTIL_H_
#define SRC_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lockdoc {

// Splits `input` at every occurrence of `delimiter`. Consecutive delimiters
// produce empty fields; an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view input, char delimiter);

// Splits and drops empty fields after trimming whitespace from each field.
std::vector<std::string> SplitAndTrim(std::string_view input, char delimiter);

// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Parses a non-negative decimal integer; returns false on any non-digit or
// overflow.
bool ParseUint64(std::string_view text, uint64_t* out);

// Parses a double via strtod; returns false if the full string is not
// consumed.
bool ParseDouble(std::string_view text, double* out);

// Formats `value` as a percentage with two decimals, e.g. "94.12%".
std::string FormatPercent(double fraction);

// Formats an integer with thousands separators, e.g. 27400000 -> "27,400,000".
std::string FormatWithCommas(uint64_t value);

}  // namespace lockdoc

#endif  // SRC_UTIL_STRING_UTIL_H_
