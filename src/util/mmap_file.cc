#include "src/util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/util/string_util.h"

namespace lockdoc {
namespace {

std::string ErrnoText() { return std::strerror(errno); }

}  // namespace

MappedFile::~MappedFile() { Release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::AdviseSequentialScan() const {
  if (data_ != nullptr) {
    ::madvise(const_cast<void*>(data_), size_, MADV_SEQUENTIAL);
    ::madvise(const_cast<void*>(data_), size_, MADV_WILLNEED);
  }
}

void MappedFile::Release() {
  if (data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::Error(StrFormat("mmap open %s: %s", path.c_str(), ErrnoText().c_str()));
  }

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::Error(StrFormat("mmap fstat %s: %s", path.c_str(), ErrnoText().c_str()));
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::Error(StrFormat("mmap %s: not a regular file", path.c_str()));
  }

  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status status = Status::Error(StrFormat("mmap %s: %s", path.c_str(), ErrnoText().c_str()));
      ::close(fd);
      file.size_ = 0;
      return status;
    }
    file.data_ = addr;
  }
  ::close(fd);
  return file;
}

}  // namespace lockdoc
