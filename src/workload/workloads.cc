#include "src/workload/workloads.h"

#include <optional>

#include "src/coverage/coverage.h"
#include "src/util/logging.h"
#include "src/vfs/mm_kernel.h"

namespace lockdoc {
namespace {

// Picks a random live file of `fs`, scanning from a random start.
std::optional<size_t> PickAliveFile(VfsKernel& vfs, SubclassId fs, Rng& rng) {
  size_t count = vfs.file_count(fs);
  if (count == 0) {
    return std::nullopt;
  }
  size_t start = rng.Below(count);
  for (size_t i = 0; i < count; ++i) {
    size_t index = (start + i) % count;
    if (vfs.file_alive(fs, index)) {
      return index;
    }
  }
  return std::nullopt;
}

size_t CountAlive(VfsKernel& vfs, SubclassId fs) {
  size_t alive = 0;
  for (size_t i = 0; i < vfs.file_count(fs); ++i) {
    if (vfs.file_alive(fs, i)) {
      ++alive;
    }
  }
  return alive;
}

// Filesystems the read-write workloads operate on.
std::vector<SubclassId> RwFilesystems(VfsKernel& vfs) {
  const VfsIds& ids = vfs.ids();
  return {ids.fs_ext4, ids.fs_tmpfs, ids.fs_rootfs, ids.fs_devtmpfs};
}

class FsStress : public Workload {
 public:
  std::string_view name() const override { return "fsstress"; }

  void RunOp(VfsKernel& vfs, Rng& rng) override {
    std::vector<SubclassId> fss = RwFilesystems(vfs);
    SubclassId fs = fss[rng.Below(fss.size())];
    size_t alive = CountAlive(vfs, fs);
    uint64_t action = rng.Below(100);
    std::optional<size_t> file = PickAliveFile(vfs, fs, rng);

    if (alive < 2 || (action < 13 && alive < 32)) {
      vfs.CreateFile(fs, rng);
    } else if (action < 15 && alive < 40) {
      vfs.MkdirDir(fs, rng);
    } else if (action < 30 && file) {
      vfs.WriteFile(fs, *file, rng);
    } else if (action < 50 && file) {
      vfs.ReadFile(fs, *file, rng);
    } else if (action < 62 && file) {
      vfs.LookupFile(fs, *file, rng);
    } else if (action < 70 && file) {
      vfs.StatFile(fs, *file, rng);
    } else if (action < 74 && file) {
      vfs.MmapFile(fs, *file, rng);
    } else if (action < 78 && file) {
      vfs.RenameFile(fs, *file, rng);
    } else if (action < 82 && file) {
      vfs.TruncateFile(fs, *file, rng);
    } else if (action < 83 && file && alive > 4 && vfs.CanUnlink(fs, *file)) {
      vfs.UnlinkFile(fs, *file, rng);
    } else if (action < 84 && file && !vfs.IsDirectory(fs, *file)) {
      vfs.LinkFile(fs, *file, rng);
    } else if (action < 86 && file && vfs.IsDirectory(fs, *file)) {
      vfs.RmdirDir(fs, *file, rng);
    } else if (action < 90 && file) {
      vfs.FsyncFile(fs, *file, rng);
    } else if (action < 95) {
      vfs.EvictLru(fs, rng);
    } else if (file) {
      vfs.TouchAtime(fs, *file, rng);
    }
  }
};

class FsInod : public Workload {
 public:
  std::string_view name() const override { return "fs_inod"; }

  void RunOp(VfsKernel& vfs, Rng& rng) override {
    // Alternating allocate/free churn, biased toward a small steady state.
    std::vector<SubclassId> fss = RwFilesystems(vfs);
    SubclassId fs = fss[rng.Below(fss.size())];
    size_t alive = CountAlive(vfs, fs);
    if (alive < 6 || rng.Chance(0.5)) {
      size_t index = vfs.CreateFile(fs, rng);
      if (rng.Chance(0.6)) {
        vfs.UnlinkFile(fs, index, rng);
      }
    } else {
      std::optional<size_t> file = PickAliveFile(vfs, fs, rng);
      if (file && alive > 3 && vfs.CanUnlink(fs, *file)) {
        vfs.UnlinkFile(fs, *file, rng);
      }
    }
  }
};

class FsBench : public Workload {
 public:
  std::string_view name() const override { return "fs-bench-test2"; }

  void RunOp(VfsKernel& vfs, Rng& rng) override {
    SubclassId fs = vfs.ids().fs_ext4;
    std::optional<size_t> file = PickAliveFile(vfs, fs, rng);
    uint64_t action = rng.Below(100);
    if (!file || (action < 20 && CountAlive(vfs, fs) < 24)) {
      vfs.CreateFile(fs, rng);
    } else if (action < 40) {
      vfs.ChmodFile(fs, *file, rng);
    } else if (action < 55) {
      vfs.ChownFile(fs, *file, rng);
    } else if (action < 75) {
      vfs.ReadFile(fs, *file, rng);
    } else if (action < 90) {
      vfs.WriteFile(fs, *file, rng);
    } else {
      vfs.StatFile(fs, *file, rng);
    }
  }
};

class PipeTest : public Workload {
 public:
  std::string_view name() const override { return "pipe-test"; }

  void RunOp(VfsKernel& vfs, Rng& rng) override {
    // Maintain a handful of live pipes, streaming through them.
    std::vector<size_t> live;
    for (size_t i = 0; i < vfs.pipe_count(); ++i) {
      if (vfs.pipe_alive(i)) {
        live.push_back(i);
      }
    }
    if (live.size() < 3) {
      vfs.PipeCreate(rng);
      return;
    }
    size_t pipe = live[rng.Below(live.size())];
    uint64_t action = rng.Below(100);
    if (action < 40) {
      vfs.PipeWrite(pipe, rng);
    } else if (action < 80) {
      vfs.PipeRead(pipe, rng);
    } else if (action < 84) {
      vfs.PipePoll(pipe, rng);
    } else if (action < 90 && live.size() > 2) {
      vfs.PipeRelease(pipe, rng);
    } else {
      vfs.PipeWrite(pipe, rng);
      vfs.PipeRead(pipe, rng);
    }
  }
};

class SymlinkTest : public Workload {
 public:
  std::string_view name() const override { return "symlink-test"; }

  void RunOp(VfsKernel& vfs, Rng& rng) override {
    SubclassId fs = rng.Chance(0.7) ? vfs.ids().fs_ext4 : vfs.ids().fs_tmpfs;
    if (links_.size() < 6) {
      links_.push_back({fs, vfs.CreateSymlink(fs, rng)});
      return;
    }
    size_t pick = rng.Below(links_.size());
    auto [link_fs, index] = links_[pick];
    if (!vfs.file_alive(link_fs, index)) {
      links_.erase(links_.begin() + static_cast<ptrdiff_t>(pick));
      return;
    }
    if (rng.Chance(0.75) || !vfs.CanUnlink(link_fs, index)) {
      vfs.ReadSymlink(link_fs, index, rng);
    } else {
      vfs.UnlinkFile(link_fs, index, rng);
      links_.erase(links_.begin() + static_cast<ptrdiff_t>(pick));
    }
  }

 private:
  std::vector<std::pair<SubclassId, size_t>> links_;
};

class ChmodTest : public Workload {
 public:
  std::string_view name() const override { return "chmod-test"; }

  void RunOp(VfsKernel& vfs, Rng& rng) override {
    std::vector<SubclassId> fss = RwFilesystems(vfs);
    SubclassId fs = fss[rng.Below(fss.size())];
    std::optional<size_t> file = PickAliveFile(vfs, fs, rng);
    if (!file) {
      vfs.CreateFile(fs, rng);
      return;
    }
    if (rng.Chance(0.6)) {
      vfs.ChmodFile(fs, *file, rng);
    } else {
      vfs.ChownFile(fs, *file, rng);
    }
  }
};

class MiscFs : public Workload {
 public:
  std::string_view name() const override { return "misc-fs"; }

  void RunOp(VfsKernel& vfs, Rng& rng) override {
    uint64_t action = rng.Below(100);
    if (action < 30) {
      vfs.ProcReadEntry(rng);
    } else if (action < 45) {
      vfs.SysfsReadAttr(rng);
    } else if (action < 52) {
      vfs.SysfsWriteAttr(rng);
    } else if (action < 67) {
      vfs.SockCreateAndUse(rng);
    } else if (action < 77) {
      vfs.AnonInodeUse(rng);
    } else if (action < 79) {
      vfs.DebugfsCreate(rng);
    } else if (action < 90) {
      vfs.BdevOpen(rng);
    } else if (action < 96) {
      vfs.BdevRelease(rng);
    } else {
      vfs.CdevAddAndOpen(rng);
    }
  }
};

}  // namespace

std::unique_ptr<Workload> MakeFsStress() { return std::make_unique<FsStress>(); }
std::unique_ptr<Workload> MakeFsInod() { return std::make_unique<FsInod>(); }
std::unique_ptr<Workload> MakeFsBench() { return std::make_unique<FsBench>(); }
std::unique_ptr<Workload> MakePipeTest() { return std::make_unique<PipeTest>(); }
std::unique_ptr<Workload> MakeSymlinkTest() { return std::make_unique<SymlinkTest>(); }
std::unique_ptr<Workload> MakeChmodTest() { return std::make_unique<ChmodTest>(); }
std::unique_ptr<Workload> MakeMiscFs() { return std::make_unique<MiscFs>(); }

std::vector<std::unique_ptr<Workload>> MakeBenchmarkMix() {
  std::vector<std::unique_ptr<Workload>> mix;
  mix.push_back(MakeFsStress());
  mix.push_back(MakeFsInod());
  mix.push_back(MakeFsBench());
  mix.push_back(MakePipeTest());
  mix.push_back(MakeSymlinkTest());
  mix.push_back(MakeChmodTest());
  mix.push_back(MakeMiscFs());
  return mix;
}

MixResult RunBenchmarkMix(VfsKernel& vfs, const MixOptions& options) {
  SimKernel& sim = vfs.sim();
  sim.SetInterruptRate(options.interrupt_rate, options.seed ^ 0x1234ULL);

  std::vector<std::unique_ptr<Workload>> workloads = MakeBenchmarkMix();
  // Each simulated task owns one RNG stream and cycles through the
  // workloads assigned to it.
  Rng master(options.seed);
  std::vector<Rng> task_rngs;
  task_rngs.reserve(options.tasks);
  for (size_t t = 0; t < options.tasks; ++t) {
    task_rngs.push_back(master.Fork());
  }

  MixResult result;
  Rng housekeeping_rng = master.Fork();
  for (size_t op = 0; op < options.ops; ++op) {
    size_t task = op % options.tasks;
    sim.SetCurrentTask(static_cast<uint32_t>(task + 1));
    Workload& workload = *workloads[(op / options.tasks + task) % workloads.size()];
    workload.RunOp(vfs, task_rngs[task]);
    sim.CheckQuiescent();
    ++result.ops_executed;

    // Kernel housekeeping runs on task 0 ("kworker").
    sim.SetCurrentTask(0);
    if (options.commit_every != 0 && op % options.commit_every == options.commit_every - 1) {
      vfs.JournalCommit(housekeeping_rng);
      sim.CheckQuiescent();
    }
    if (options.writeback_every != 0 &&
        op % options.writeback_every == options.writeback_every - 1) {
      vfs.WritebackRun(housekeeping_rng);
      if (housekeeping_rng.Chance(0.3)) {
        SubclassId fs = RwFilesystems(vfs)[housekeeping_rng.Below(4)];
        vfs.SyncFilesystem(fs, housekeeping_rng);
      }
      sim.CheckQuiescent();
    }
    if (options.proc_dump_every != 0 &&
        op % options.proc_dump_every == options.proc_dump_every - 1) {
      vfs.JournalStatsProcShow(housekeeping_rng);
      sim.CheckQuiescent();
    }
    if (op % 48 == 47) {
      vfs.BufferLruScan(housekeeping_rng);
      sim.CheckQuiescent();
    }
  }
  return result;
}

SimulationResult SimulateKernelRun(const MixOptions& options, const FaultPlan& plan,
                                   CoverageTracker* coverage) {
  SimulationResult result;
  result.registry = BuildVfsRegistry(&result.ids);
  SimKernel sim(&result.trace, result.registry.get(), coverage);
  VfsKernel vfs(&sim, result.registry.get(), result.ids, plan);
  if (coverage != nullptr) {
    vfs.RegisterFunctionsForCoverage(coverage);
  }
  vfs.MountAll();
  result.mix = RunBenchmarkMix(vfs, options);
  sim.SetInterruptRate(0.0, 0);  // Quiesce interrupts for teardown.
  vfs.UnmountAll();
  sim.CheckQuiescent();
  return result;
}

SimulationResult SimulateMmRun(const MixOptions& options, const FaultPlan& plan) {
  SimulationResult result;
  result.registry = BuildVfsMmRegistry(&result.ids);
  SimKernel sim(&result.trace, result.registry.get(), nullptr);
  MmKernel mm(&sim, result.registry.get(), result.ids, plan);

  Rng master(options.seed);
  std::vector<Rng> task_rngs;
  task_rngs.reserve(options.tasks);
  for (size_t t = 0; t < options.tasks; ++t) {
    task_rngs.push_back(master.Fork());
  }
  for (size_t t = 0; t < options.tasks; ++t) {
    uint32_t task = static_cast<uint32_t>(t + 1);
    sim.SetCurrentTask(task);
    mm.ForkMm(task);
    sim.CheckQuiescent();
  }

  for (size_t op = 0; op < options.ops; ++op) {
    size_t t = op % options.tasks;
    uint32_t task = static_cast<uint32_t>(t + 1);
    sim.SetCurrentTask(task);
    Rng& rng = task_rngs[t];
    // Keep a floor of live regions so faults and mremaps have targets.
    if (mm.region_count(task) < 3) {
      mm.MmapRegion(task, rng);
    } else {
      switch (rng.Below(10)) {
        case 0:
        case 1:
          mm.MmapRegion(task, rng);
          break;
        case 2:
          mm.MunmapRegion(task, rng);
          break;
        case 3:
          mm.MprotectRegion(task, rng);
          break;
        case 4:
          mm.MremapRegion(task, rng);
          break;
        case 5:
          mm.ReadStats(task, rng);
          break;
        default:
          mm.PageFault(task, rng);
          break;
      }
    }
    sim.CheckQuiescent();
    ++result.mix.ops_executed;
  }

  for (size_t t = 0; t < options.tasks; ++t) {
    uint32_t task = static_cast<uint32_t>(t + 1);
    sim.SetCurrentTask(task);
    mm.ExitMm(task);
    sim.CheckQuiescent();
  }
  return result;
}

}  // namespace lockdoc
