// The benchmark mix driving the simulated kernel — modelled on the paper's
// Sec. 7.1 workload: a subset of the Linux Test Project (fs-bench-test2,
// fsstress, fs_inod) plus custom pipe, symlink, and chmod/chown tests.
// Every workload is a stream of kernel operations; the mix driver
// interleaves several simulated tasks and periodic kernel housekeeping
// (journal commits, writeback, checkpoints).
#ifndef SRC_WORKLOAD_WORKLOADS_H_
#define SRC_WORKLOAD_WORKLOADS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/rng.h"
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string_view name() const = 0;
  // Executes one operation; the kernel must be quiescent before and after.
  virtual void RunOp(VfsKernel& vfs, Rng& rng) = 0;
};

// fsstress: random I/O operations on a directory tree (create, write, read,
// rename, lookup, stat, unlink) across the read-write filesystems.
std::unique_ptr<Workload> MakeFsStress();

// fs_inod: inode allocation/deallocation churn (create + unlink).
std::unique_ptr<Workload> MakeFsInod();

// fs-bench-test2: create files, change owner/permission, access randomly.
std::unique_ptr<Workload> MakeFsBench();

// Custom pipe test: create pipes, push/pull data, poll, release.
std::unique_ptr<Workload> MakePipeTest();

// Custom symlink test: create/read/remove symbolic links.
std::unique_ptr<Workload> MakeSymlinkTest();

// Custom permission test: chmod/chown heavy.
std::unique_ptr<Workload> MakeChmodTest();

// Special-filesystem and device exerciser: proc, sysfs, sockfs,
// anon_inodefs, debugfs, block and char devices.
std::unique_ptr<Workload> MakeMiscFs();

// The full benchmark mix.
std::vector<std::unique_ptr<Workload>> MakeBenchmarkMix();

struct MixOptions {
  uint64_t seed = 1;
  // Total kernel operations across all tasks.
  size_t ops = 20000;
  // Simulated tasks, round-robin scheduled at operation granularity.
  size_t tasks = 4;
  // Probability of an interrupt after each traced event.
  double interrupt_rate = 0.0015;
  // Housekeeping cadence (in operations).
  size_t commit_every = 96;
  size_t writeback_every = 64;
  size_t proc_dump_every = 160;
};

struct MixResult {
  size_t ops_executed = 0;
};

// Runs the full mix against a mounted VfsKernel. CHECK-fails if the kernel
// is left non-quiescent by any operation.
MixResult RunBenchmarkMix(VfsKernel& vfs, const MixOptions& options);

// Convenience: builds registry + trace + kernel, mounts, runs the mix,
// unmounts — returning the recorded trace. `coverage` may be null.
struct SimulationResult {
  std::unique_ptr<TypeRegistry> registry;
  VfsIds ids;
  Trace trace;
  MixResult mix;
};
SimulationResult SimulateKernelRun(const MixOptions& options, const FaultPlan& plan,
                                   class CoverageTracker* coverage = nullptr);

// The mm (address-space) mix: per-task mm_structs exercised with
// mmap/munmap/fault/mprotect/mremap/stat operations against MmKernel's
// range-locked mmap_lock. Uses the extended BuildVfsMmRegistry; traces
// from this mix carry ranged events and mm type ids, which is what makes
// the analysis side select the extended registry on load.
SimulationResult SimulateMmRun(const MixOptions& options, const FaultPlan& plan);

}  // namespace lockdoc

#endif  // SRC_WORKLOAD_WORKLOADS_H_
