#include "src/workload/script.h"

#include <map>

#include "src/util/string_util.h"

namespace lockdoc {
namespace {

// Argument shape of each verb.
enum class Shape {
  kNone,        // verb
  kFs,          // verb <fs>
  kFsIndex,     // verb <fs> <index>
  kIndex,       // verb <index>
};

const std::map<std::string, Shape>& VerbTable() {
  static const std::map<std::string, Shape> table = {
      {"create", Shape::kFs},        {"symlink", Shape::kFs},
      {"mkdir", Shape::kFs},         {"sync", Shape::kFs},
      {"write", Shape::kFsIndex},    {"read", Shape::kFsIndex},
      {"stat", Shape::kFsIndex},     {"chmod", Shape::kFsIndex},
      {"chown", Shape::kFsIndex},    {"unlink", Shape::kFsIndex},
      {"lookup", Shape::kFsIndex},   {"rename", Shape::kFsIndex},
      {"truncate", Shape::kFsIndex}, {"fsync", Shape::kFsIndex},
      {"mmap", Shape::kFsIndex},     {"touch", Shape::kFsIndex},
      {"readlink", Shape::kFsIndex}, {"rmdir", Shape::kFsIndex},
      {"link", Shape::kFsIndex},
      {"pipe-create", Shape::kNone}, {"pipe-write", Shape::kIndex},
      {"pipe-read", Shape::kIndex},  {"pipe-poll", Shape::kIndex},
      {"pipe-release", Shape::kIndex},
      {"proc", Shape::kNone},        {"sysfs-read", Shape::kNone},
      {"sysfs-write", Shape::kNone}, {"sock", Shape::kNone},
      {"anon", Shape::kNone},        {"debugfs", Shape::kNone},
      {"bdev-open", Shape::kNone},   {"bdev-release", Shape::kNone},
      {"cdev", Shape::kNone},        {"commit", Shape::kNone},
      {"checkpoint", Shape::kNone},  {"writeback", Shape::kNone},
      {"scan", Shape::kNone},        {"proc-journal", Shape::kNone},
  };
  return table;
}

}  // namespace

std::vector<std::string> WorkloadScript::KnownVerbs() {
  std::vector<std::string> verbs;
  for (const auto& [verb, shape] : VerbTable()) {
    verbs.push_back(verb);
  }
  return verbs;
}

Result<WorkloadScript> WorkloadScript::Parse(std::string_view text) {
  WorkloadScript script;
  size_t line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = Trim(line.substr(0, hash));
    }
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> tokens = SplitAndTrim(line, ' ');
    auto it = VerbTable().find(tokens[0]);
    if (it == VerbTable().end()) {
      return Status::Error(StrFormat("script line %zu: unknown verb '%s'", line_number,
                                     tokens[0].c_str()));
    }
    ScriptStep step;
    step.verb = tokens[0];
    step.line = line_number;
    Shape shape = it->second;
    size_t expected = shape == Shape::kNone ? 1 : (shape == Shape::kFsIndex ? 3 : 2);
    if (tokens.size() != expected) {
      return Status::Error(StrFormat("script line %zu: '%s' takes %zu argument(s)",
                                     line_number, tokens[0].c_str(), expected - 1));
    }
    if (shape == Shape::kFs || shape == Shape::kFsIndex) {
      step.fs = tokens[1];
    }
    if (shape == Shape::kIndex || shape == Shape::kFsIndex) {
      const std::string& index_text = tokens[shape == Shape::kIndex ? 1 : 2];
      if (!ParseUint64(index_text, &step.index)) {
        return Status::Error(StrFormat("script line %zu: bad index '%s'", line_number,
                                       index_text.c_str()));
      }
      step.has_index = true;
    }
    script.steps_.push_back(std::move(step));
  }
  return script;
}

Status WorkloadScript::Run(VfsKernel& vfs, Rng& rng) const {
  const TypeRegistry& registry = vfs.sim().registry();
  auto inode_type = registry.FindType("inode");
  LOCKDOC_CHECK(inode_type.has_value());

  for (const ScriptStep& step : steps_) {
    auto fail = [&](const std::string& why) {
      return Status::Error(
          StrFormat("script line %zu (%s): %s", step.line, step.verb.c_str(), why.c_str()));
    };

    SubclassId fs = kNoSubclass;
    if (!step.fs.empty()) {
      auto found = registry.FindSubclass(*inode_type, step.fs);
      if (!found.has_value()) {
        return fail("unknown filesystem '" + step.fs + "'");
      }
      fs = *found;
    }
    if (step.has_index && !step.fs.empty()) {
      if (!vfs.file_alive(fs, step.index)) {
        return fail(StrFormat("file %llu is not alive",
                              static_cast<unsigned long long>(step.index)));
      }
    }

    if (step.verb == "create") {
      vfs.CreateFile(fs, rng);
    } else if (step.verb == "symlink") {
      vfs.CreateSymlink(fs, rng);
    } else if (step.verb == "mkdir") {
      vfs.MkdirDir(fs, rng);
    } else if (step.verb == "sync") {
      vfs.SyncFilesystem(fs, rng);
    } else if (step.verb == "write") {
      vfs.WriteFile(fs, step.index, rng);
    } else if (step.verb == "read") {
      vfs.ReadFile(fs, step.index, rng);
    } else if (step.verb == "stat") {
      vfs.StatFile(fs, step.index, rng);
    } else if (step.verb == "chmod") {
      vfs.ChmodFile(fs, step.index, rng);
    } else if (step.verb == "chown") {
      vfs.ChownFile(fs, step.index, rng);
    } else if (step.verb == "unlink") {
      if (!vfs.CanUnlink(fs, step.index)) {
        return fail("entry cannot be unlinked (non-empty directory?)");
      }
      vfs.UnlinkFile(fs, step.index, rng);
    } else if (step.verb == "lookup") {
      vfs.LookupFile(fs, step.index, rng);
    } else if (step.verb == "rename") {
      vfs.RenameFile(fs, step.index, rng);
    } else if (step.verb == "truncate") {
      vfs.TruncateFile(fs, step.index, rng);
    } else if (step.verb == "fsync") {
      vfs.FsyncFile(fs, step.index, rng);
    } else if (step.verb == "mmap") {
      vfs.MmapFile(fs, step.index, rng);
    } else if (step.verb == "touch") {
      vfs.TouchAtime(fs, step.index, rng);
    } else if (step.verb == "readlink") {
      vfs.ReadSymlink(fs, step.index, rng);
    } else if (step.verb == "rmdir") {
      if (!vfs.RmdirDir(fs, step.index, rng)) {
        return fail("rmdir refused (not a directory, or not empty)");
      }
    } else if (step.verb == "link") {
      if (vfs.IsDirectory(fs, step.index)) {
        return fail("cannot hard-link a directory");
      }
      vfs.LinkFile(fs, step.index, rng);
    } else if (step.verb == "pipe-create") {
      vfs.PipeCreate(rng);
    } else if (step.verb == "pipe-write" || step.verb == "pipe-read" ||
               step.verb == "pipe-poll" || step.verb == "pipe-release") {
      if (!vfs.pipe_alive(step.index)) {
        return fail(StrFormat("pipe %llu is not alive",
                              static_cast<unsigned long long>(step.index)));
      }
      if (step.verb == "pipe-write") {
        vfs.PipeWrite(step.index, rng);
      } else if (step.verb == "pipe-read") {
        vfs.PipeRead(step.index, rng);
      } else if (step.verb == "pipe-poll") {
        vfs.PipePoll(step.index, rng);
      } else {
        vfs.PipeRelease(step.index, rng);
      }
    } else if (step.verb == "proc") {
      vfs.ProcReadEntry(rng);
    } else if (step.verb == "sysfs-read") {
      vfs.SysfsReadAttr(rng);
    } else if (step.verb == "sysfs-write") {
      vfs.SysfsWriteAttr(rng);
    } else if (step.verb == "sock") {
      vfs.SockCreateAndUse(rng);
    } else if (step.verb == "anon") {
      vfs.AnonInodeUse(rng);
    } else if (step.verb == "debugfs") {
      vfs.DebugfsCreate(rng);
    } else if (step.verb == "bdev-open") {
      vfs.BdevOpen(rng);
    } else if (step.verb == "bdev-release") {
      vfs.BdevRelease(rng);
    } else if (step.verb == "cdev") {
      vfs.CdevAddAndOpen(rng);
    } else if (step.verb == "commit") {
      vfs.JournalCommit(rng);
    } else if (step.verb == "checkpoint") {
      vfs.JournalCheckpoint(rng);
    } else if (step.verb == "writeback") {
      vfs.WritebackRun(rng);
    } else if (step.verb == "scan") {
      vfs.BufferLruScan(rng);
    } else if (step.verb == "proc-journal") {
      vfs.JournalStatsProcShow(rng);
    } else {
      return fail("unhandled verb (parser/runner mismatch)");
    }
    vfs.sim().CheckQuiescent();
  }
  return Status::Ok();
}

}  // namespace lockdoc
