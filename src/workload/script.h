// Scripted workloads: a tiny line-oriented language for driving the
// simulated kernel with an exact, reviewable operation sequence — the
// counterpart of the randomized benchmark mix for writing reproducers
// ("this exact sequence triggers the violation").
//
//   # comment
//   create ext4            # returns file index 0, 1, ... per filesystem
//   write ext4 0
//   mkdir tmpfs
//   link ext4 0
//   unlink ext4 0
//   pipe-create            # pipe indexes count separately
//   pipe-write 0
//   commit                 # journal housekeeping
//   writeback
//   repeat 10 { ... }      -- not supported; scripts are literal by design.
//
// Indexes refer to the per-filesystem creation order (the value CreateFile
// returned), as printed by `lockdoc simulate --script` on failure.
#ifndef SRC_WORKLOAD_SCRIPT_H_
#define SRC_WORKLOAD_SCRIPT_H_

#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {

struct ScriptStep {
  std::string verb;
  std::string fs;       // Empty when the verb takes no filesystem.
  uint64_t index = 0;   // File/pipe index when the verb takes one.
  bool has_index = false;
  size_t line = 0;      // 1-based script line for error messages.
};

class WorkloadScript {
 public:
  static Result<WorkloadScript> Parse(std::string_view text);

  const std::vector<ScriptStep>& steps() const { return steps_; }

  // Executes all steps against a mounted kernel. Fails (without partial
  // rollback) on unknown filesystems, dead/out-of-range indexes, or verbs
  // that are illegal in context (e.g. rmdir of a file).
  Status Run(VfsKernel& vfs, Rng& rng) const;

  // The verbs Parse accepts, for documentation and error messages.
  static std::vector<std::string> KnownVerbs();

 private:
  std::vector<ScriptStep> steps_;
};

}  // namespace lockdoc

#endif  // SRC_WORKLOAD_SCRIPT_H_
