// Deterministic kill points for the serve chaos harness.
//
// The service calls ServeCrashPoint("tag") at every state transition whose
// interruption the journal must survive (after the journal record, between
// the snapshot temp write and its rename, after the rename but before the
// journal clear, ...). In production the calls are no-ops. The chaos
// harness arms them via the environment:
//
//   LOCKDOC_SERVE_CRASH_AT=<n>   _exit(42) on the n-th crash-point hit
//                                (1-based, counted across the process)
//
// Seeded from the harness's scenario seed, this turns "kill -9 at a random
// moment" into a reproducible schedule covering every interleaving.
#ifndef SRC_SERVE_CRASH_POINT_H_
#define SRC_SERVE_CRASH_POINT_H_

namespace lockdoc {

// The exit code of an armed crash, distinguishable from every real exit.
inline constexpr int kServeCrashExitCode = 42;

// Dies with _exit(kServeCrashExitCode) when this is the armed hit; returns
// otherwise. `tag` names the transition in the pre-death stderr line.
void ServeCrashPoint(const char* tag);

}  // namespace lockdoc

#endif  // SRC_SERVE_CRASH_POINT_H_
