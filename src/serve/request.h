// Serve request/response records.
//
// A request is a key=value file `requests/<id>.req`:
//
//   pass=check            # any registered analysis pass
//   input=<name>          # a snapshot ingested from the spool
//   baseline=<name>       # diff only: the OLD side
//   tac=0.9               # derivation acceptance threshold
//   format=json           # text (default) | json | html rendering
//   limit=3 all=1 full=1 spec=1 support=1 type=... subclass=...
//
// The service answers with `responses/<id>.out` — the exact stdout bytes of
// the equivalent standalone CLI command (including its --format) — and `responses/<id>.meta`, the
// commit record. A request is "answered" once its meta exists, whether the
// outcome was ok or a typed error; requests are never quarantined (unlike
// incoming files, a request always has an id to respond to).
#ifndef SRC_SERVE_REQUEST_H_
#define SRC_SERVE_REQUEST_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/analysis_context.h"
#include "src/report/render.h"
#include "src/serve/spool.h"
#include "src/util/status.h"

namespace lockdoc {

// The typed failure taxonomy carried in a meta's kind= line.
inline constexpr char kServeErrorBadRequest[] = "bad-request";
inline constexpr char kServeErrorUnknownInput[] = "unknown-input";
inline constexpr char kServeErrorUnknownPass[] = "unknown-pass";
inline constexpr char kServeErrorTimeout[] = "timeout";
inline constexpr char kServeErrorOversized[] = "oversized";
inline constexpr char kServeErrorAnalysis[] = "analysis";
inline constexpr char kServeErrorIo[] = "io";

struct ServeRequest {
  std::string id;        // File stem (without ".req").
  std::string pass;
  std::string input;
  std::string baseline;  // Empty unless pass=diff.
  double tac = 0.9;      // Matches the CLI's --tac default.
  // format=text|json|html — which renderer produces the .out bytes
  // (mirrors the CLI's --format; an unknown value is a bad-request).
  ReportFormat format = ReportFormat::kText;
  bool has_format = false;   // True when the request named a format.
  PassOptions pass_options;  // limit/all/full/... ; rules text filled by the service.
};

// Parses a request file's text. Unknown keys and malformed values are
// errors (answered as kind=bad-request, mirroring the CLI's strict flag
// validation).
Result<ServeRequest> ParseServeRequest(const std::string& id, std::string_view text);

// The commit record for one answered request (or one ingested file, with
// stem "<name>.ingest").
struct ServeResponseMeta {
  bool ok = false;
  std::string kind;   // One of the kServeError* constants when !ok.
  std::string error;  // Human-readable detail when !ok.
  // Additional key=value lines (ingest stats, salvage damage report).
  std::vector<std::pair<std::string, std::string>> extra;
};

// The meta record's exact key=value text. The spool writes these bytes to
// `responses/<stem>.meta`; the socket front-end sends the same bytes as the
// response's meta frame, so the two transports are byte-identical.
std::string FormatResponseMeta(const ServeResponseMeta& meta);

// Publishes `responses/<stem>.meta` atomically. This is the commit point of
// the answered state: recovery treats a request with a meta as done.
Status WriteResponseMeta(const SpoolLayout& layout, const std::string& stem,
                         const ServeResponseMeta& meta);

// Newlines collapsed so any message fits a single key=value line.
std::string OneLine(std::string_view text);

}  // namespace lockdoc

#endif  // SRC_SERVE_REQUEST_H_
