#include "src/serve/socket.h"

#include <utility>

#include "src/util/string_util.h"

namespace lockdoc {

namespace {

// How long idle waits (for a connection's next frame, for the next accept)
// run before re-checking the stop flag.
constexpr uint64_t kStopPollMs = 100;

}  // namespace

ServeSocketServer::ServeSocketServer(ServeService* service, ServeSocketOptions options)
    : service_(service), options_(std::move(options)) {}

ServeSocketServer::~ServeSocketServer() { Stop(); }

Status ServeSocketServer::Start() {
  auto listener = ListenTcp(options_.host, options_.port);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(listener.value());
  auto port = BoundPort(listener_.get());
  if (!port.ok()) {
    return port.status();
  }
  port_ = port.value();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ServeSocketServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  listener_.Reset();
  // Handlers notice stop_ at their next idle tick; in-flight requests
  // finish and flush first (graceful drain).
  std::list<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
  }
}

void ServeSocketServer::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) {
        (*it)->thread.join();
      }
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServeSocketServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    ReapFinishedConnections();
    auto readable = WaitReadable(listener_.get(), kStopPollMs);
    if (!readable.ok()) {
      return;  // Listener broke; Stop() still joins us cleanly.
    }
    if (!readable.value()) {
      continue;
    }
    auto conn = AcceptConnection(listener_.get());
    if (!conn.ok()) {
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ >= options_.max_connections) {
      continue;  // conn closes on scope exit: accept-and-shed beyond the cap.
    }
    ++active_;
    const uint64_t conn_id = next_conn_id_++;
    connections_.push_back(std::make_unique<Connection>());
    Connection* slot = connections_.back().get();
    slot->thread = std::thread(
        [this, conn_id, slot](UniqueFd fd) {
          HandleConnection(std::move(fd), conn_id, slot);
        },
        std::move(conn.value()));
  }
}

void ServeSocketServer::HandleConnection(UniqueFd fd, uint64_t conn_id, Connection* slot) {
  uint64_t sequence = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    FrameRead frame =
        ReadFrame(fd.get(), kStopPollMs, options_.read_deadline_ms, options_.max_frame_bytes);
    if (frame.status == FrameStatus::kIdle) {
      continue;
    }
    if (frame.status == FrameStatus::kOversized) {
      // Same taxonomy as the spool's oversized quarantine; the payload was
      // never read, so the stream cannot be resynced — answer and close.
      ServeResponseMeta meta;
      meta.ok = false;
      meta.kind = kServeErrorOversized;
      meta.error = frame.error;
      if (WriteFrame(fd.get(), FormatResponseMeta(meta)).ok()) {
        WriteFrame(fd.get(), std::string_view());
      }
      break;
    }
    if (frame.status != FrameStatus::kOk) {
      // kClosed: clean end. kTimeout: partial-frame peer, drop it.
      // kError: peer died mid-frame or socket trouble.
      break;
    }
    const std::string id = StrFormat("socket-%llu-%llu",
                                     static_cast<unsigned long long>(conn_id),
                                     static_cast<unsigned long long>(sequence++));
    ServeService::ServeAnswer answer = service_->AnswerFromText(id, frame.payload);
    if (!WriteFrame(fd.get(), FormatResponseMeta(answer.meta)).ok()) {
      break;
    }
    if (!WriteFrame(fd.get(), answer.meta.ok ? std::string_view(answer.text)
                                             : std::string_view())
             .ok()) {
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  slot->finished.store(true, std::memory_order_release);
}

}  // namespace lockdoc
