// The import journal: what makes a kill mid-import recoverable.
//
// Before the service touches an incoming file it records an intent entry
// (`journal/<name>.job`, published atomically). The entry lives until the
// import has fully completed — snapshot renamed into place, acknowledgement
// published, source removed — or until the input was quarantined. On
// restart, every surviving entry is replayed:
//
//   - source still present, snapshot + ack present  -> finish the tail
//     steps (remove source, clear entry)
//   - source still present otherwise                -> retry the import
//     with the attempt counter bumped; past kMaxImportAttempts the source
//     is quarantined instead (a deterministic crasher must not crash-loop
//     the service forever)
//   - source gone (ack or quarantine present)       -> clear the entry
//
// Import is deterministic, so a retry that succeeds produces byte-identical
// snapshots and responses to a run that never crashed — the chaos harness
// pins exactly that.
#ifndef SRC_SERVE_JOURNAL_H_
#define SRC_SERVE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/spool.h"
#include "src/util/status.h"

namespace lockdoc {

// Imports that crashed this many times get quarantined, not retried.
inline constexpr uint32_t kMaxImportAttempts = 3;

struct JournalEntry {
  std::string name;    // Snapshot name (journal file stem).
  std::string source;  // Basename of the incoming file being imported.
  uint32_t attempts = 0;
};

class ImportJournal {
 public:
  explicit ImportJournal(const SpoolLayout* layout) : layout_(layout) {}

  // Publishes (or overwrites) the entry for `name` atomically.
  Status Record(const JournalEntry& entry);

  // Removes the entry; idempotent (recovery may re-clear).
  Status Clear(const std::string& name);

  // Every pending entry, sorted by name. Unreadable or malformed entries
  // are returned with attempts saturated so recovery quarantines their
  // source instead of crash-looping on a corrupt journal file.
  Result<std::vector<JournalEntry>> Load() const;

 private:
  std::string PathFor(const std::string& name) const;

  const SpoolLayout* layout_;
};

}  // namespace lockdoc

#endif  // SRC_SERVE_JOURNAL_H_
