#include "src/serve/scheduler.h"

#include <algorithm>
#include <utility>

namespace lockdoc {

RequestScheduler::RequestScheduler(size_t workers) {
  if (workers == 0) {
    workers = DefaultWorkerCount();
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RequestScheduler::~RequestScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

size_t RequestScheduler::DefaultWorkerCount() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  return std::min<size_t>(4, hw);
}

void RequestScheduler::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void RequestScheduler::RunAndWait(const std::function<void()>& task) {
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  Submit([&] {
    task();
    std::lock_guard<std::mutex> lock(done_mu);
    done = true;
    done_cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done; });
}

void RequestScheduler::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void RequestScheduler::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ set and the queue drained: shut down.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace lockdoc
