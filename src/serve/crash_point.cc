#include "src/serve/crash_point.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

namespace lockdoc {

void ServeCrashPoint(const char* tag) {
  static const long armed_at = [] {
    const char* env = std::getenv("LOCKDOC_SERVE_CRASH_AT");
    return env != nullptr ? std::atol(env) : 0L;
  }();
  if (armed_at <= 0) {
    return;
  }
  static std::atomic<long> hits{0};
  long hit = hits.fetch_add(1) + 1;
  if (hit == armed_at) {
    std::fprintf(stderr, "lockdoc serve: armed crash point #%ld (%s)\n", hit, tag);
    std::fflush(nullptr);
    _exit(kServeCrashExitCode);
  }
}

}  // namespace lockdoc
