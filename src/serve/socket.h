// The TCP front-end of `lockdoc serve` (--listen HOST:PORT): a length-
// prefixed framing of the exact key=value protocol the file spool speaks.
//
// Wire protocol (framing in src/util/socket.h; one frame = u32 big-endian
// payload length + payload bytes):
//
//   client -> server   one frame: the request text, byte-identical to what
//                      would be dropped as requests/<id>.req
//   server -> client   two frames: the meta record (the exact bytes the
//                      spool would write to responses/<id>.meta), then the
//                      pass output (the exact responses/<id>.out bytes;
//                      zero-length when the meta says status=error)
//
// A connection may pipeline any number of request/response exchanges.
// Robustness: once a frame's first byte arrives, the rest must land within
// read_deadline_ms or the connection is closed (a stalled peer never wedges
// a handler); a frame announcing more than max_frame_bytes is answered with
// a kind=oversized error meta and the connection is closed (the payload is
// never read, mirroring --max-trace-bytes rejecting before parsing); peers
// beyond max_connections are accepted and immediately closed. Analysis
// work runs on the service's RequestScheduler — the same bounded pool the
// spool uses — so --workers bounds total concurrency across transports.
//
// Stop() drains gracefully: in-flight requests finish and their responses
// are written before handler threads exit.
#ifndef SRC_SERVE_SOCKET_H_
#define SRC_SERVE_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/serve/service.h"
#include "src/util/socket.h"
#include "src/util/status.h"

namespace lockdoc {

struct ServeSocketOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; port() reports the binding.
  // Time budget from a frame's first byte to its completion.
  uint64_t read_deadline_ms = 5000;
  // Largest accepted request frame; 0 = unlimited. The serve CLI wires
  // --max-trace-bytes here so both transports reject at the same bound.
  uint64_t max_frame_bytes = 0;
  size_t max_connections = 64;
};

class ServeSocketServer {
 public:
  // `service` must outlive the server.
  ServeSocketServer(ServeService* service, ServeSocketOptions options);
  ~ServeSocketServer();

  ServeSocketServer(const ServeSocketServer&) = delete;
  ServeSocketServer& operator=(const ServeSocketServer&) = delete;

  // Binds, listens, and starts the acceptor thread.
  Status Start();

  // The bound port (after Start); resolves port 0 to the kernel's pick.
  uint16_t port() const { return port_; }

  // Graceful drain: stops accepting, lets every in-flight request finish
  // and flush its response, joins all handler threads. Idempotent.
  void Stop();

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void HandleConnection(UniqueFd fd, uint64_t conn_id, Connection* slot);
  void ReapFinishedConnections();  // Joins handlers that already exited.

  ServeService* service_;
  ServeSocketOptions options_;
  UniqueFd listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;

  std::mutex mu_;  // Guards connections_ and active_.
  std::list<std::unique_ptr<Connection>> connections_;
  size_t active_ = 0;
  uint64_t next_conn_id_ = 0;
};

}  // namespace lockdoc

#endif  // SRC_SERVE_SOCKET_H_
