#include "src/serve/request.h"

#include <cstdlib>

#include "src/core/analysis_pass.h"
#include "src/util/file_io.h"
#include "src/util/string_util.h"

namespace lockdoc {

Result<ServeRequest> ParseServeRequest(const std::string& id, std::string_view text) {
  auto pairs = ParseKeyValueText(text);
  if (!pairs.ok()) {
    return pairs.status();
  }
  ServeRequest request;
  request.id = id;
  for (const auto& [key, value] : pairs.value()) {
    if (key == "pass") {
      request.pass = value;
    } else if (key == "input") {
      request.input = value;
    } else if (key == "baseline") {
      request.baseline = value;
    } else if (key == "tac") {
      char* end = nullptr;
      request.tac = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || request.tac < 0.0 || request.tac > 1.0) {
        return Status::Error("tac: expected a number in [0, 1]");
      }
    } else if (key == "format") {
      std::optional<ReportFormat> format = ParseReportFormat(value);
      if (!format.has_value()) {
        return Status::Error("format: expected text, json or html");
      }
      request.format = *format;
      request.has_format = true;
    } else {
      // Everything else is a per-pass knob with CLI-flag semantics.
      Status status = ApplyPassOption(request.pass_options, key, value);
      if (!status.ok()) {
        return status;
      }
    }
  }
  if (request.pass.empty()) {
    return Status::Error("missing required key: pass");
  }
  if (request.input.empty()) {
    return Status::Error("missing required key: input");
  }
  // Snapshot names are file stems; refuse anything that could escape the
  // snapshots directory.
  for (const std::string* name : {&request.input, &request.baseline}) {
    if (name->find('/') != std::string::npos || *name == "." || *name == "..") {
      return Status::Error("input names must be bare snapshot names");
    }
  }
  return request;
}

std::string FormatResponseMeta(const ServeResponseMeta& meta) {
  std::string text;
  text += KeyValueLine("status", meta.ok ? "ok" : "error");
  if (!meta.ok) {
    text += KeyValueLine("kind", meta.kind.empty() ? kServeErrorAnalysis : meta.kind);
    text += KeyValueLine("error", OneLine(meta.error));
  }
  for (const auto& [key, value] : meta.extra) {
    text += KeyValueLine(key, OneLine(value));
  }
  return text;
}

Status WriteResponseMeta(const SpoolLayout& layout, const std::string& stem,
                         const ServeResponseMeta& meta) {
  return WriteFileAtomic(layout.responses_dir + "/" + stem + ".meta",
                         FormatResponseMeta(meta));
}

std::string OneLine(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  // Trailing separators read like damage; trim them.
  while (!out.empty() && out.back() == ' ') {
    out.pop_back();
  }
  return out;
}

}  // namespace lockdoc
