// The serve spool: the on-disk contract between a fleet of trace producers
// and one long-lived analysis service. Everything is plain files so clients
// need nothing but a shared directory:
//
//   SPOOL/
//     incoming/    traces or .lockdb snapshots, dropped by producers
//     requests/    <id>.req key=value files naming a pass and a snapshot
//     responses/   <id>.out  exact pass stdout bytes (byte-identical to the
//                            standalone CLI command)
//                  <id>.meta key=value status record (commit point)
//                  <name>.ingest.meta ingest acknowledgements
//   STATE/         (default SPOOL/state; same filesystem as SPOOL)
//     snapshots/   <name>.lockdb — the resident store
//     journal/     <name>.job — pending-import journal entries
//     quarantine/  damaged originals + <file>.reason
//
// Publication is always write-temp + fsync + rename (WriteFileAtomic), so a
// reader never observes a half-written response, journal entry, or
// snapshot; in-flight temp files carry kAtomicTempPrefix and are ignored by
// every scan and swept on recovery.
#ifndef SRC_SERVE_SPOOL_H_
#define SRC_SERVE_SPOOL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace lockdoc {

struct SpoolLayout {
  std::string spool_dir;
  std::string incoming_dir;
  std::string requests_dir;
  std::string responses_dir;
  std::string state_dir;
  std::string snapshots_dir;
  std::string journal_dir;
  std::string quarantine_dir;
};

// Resolves the directory layout. `state_dir` empty selects SPOOL/state.
SpoolLayout MakeSpoolLayout(const std::string& spool_dir, const std::string& state_dir);

// Creates every missing subdirectory and probes that the state side is
// writable. `spool_dir` itself must already exist (a typo'd spool path must
// be a usage error, not a silently created empty spool).
Status EnsureSpoolLayout(const SpoolLayout& layout);

// Sorted basenames of the regular files in `dir`, excluding in-flight
// atomic temp files and (optionally) anything without `suffix`. Sorted so
// processing order — and therefore every response — is deterministic.
Result<std::vector<std::string>> ListSpoolFiles(const std::string& dir,
                                                std::string_view suffix = {});

// Moves `dir/name` into quarantine with an adjacent `<name>.reason` file
// (typed kind + human detail + recovery hint). The reason file is published
// first so a crash between the two steps is recoverable; quarantined files
// are never deleted and never rescanned.
Status QuarantineFile(const SpoolLayout& layout, const std::string& dir,
                      const std::string& name, const std::string& kind,
                      const std::string& detail, const std::string& hint);

// --- key=value text records (journal entries, requests, response metas) ---

// Parses "key=value" lines; blank lines and '#' comments are skipped.
// Returns pairs in file order (duplicate keys preserved).
Result<std::vector<std::pair<std::string, std::string>>> ParseKeyValueText(
    std::string_view text);

// One "key=value\n" line; the value must not contain newlines (CHECKed).
std::string KeyValueLine(std::string_view key, std::string_view value);

}  // namespace lockdoc

#endif  // SRC_SERVE_SPOOL_H_
