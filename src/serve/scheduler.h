// The bounded worker pool behind concurrent `lockdoc serve`.
//
// One RequestScheduler fans independent analysis requests out over N
// worker threads (`--workers`, default min(4, hardware)); both transports
// feed it — the spool scan submits every .req it finds, a socket
// connection hands its in-flight request over with RunAndWait. Workers
// drain one FIFO queue, so `--workers 1` answers requests in exactly the
// order the serial loop did (spool scans are sorted), and determinism at
// higher counts rests on the byte-identity contract: every answer is a
// pure function of the request and the resident snapshot, so completion
// order cannot change response bytes.
//
// The scheduler is transport-agnostic and knows nothing about spools or
// sockets; ServeService owns the shared state (resident store, stats,
// journal) and its own locking.
#ifndef SRC_SERVE_SCHEDULER_H_
#define SRC_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lockdoc {

class RequestScheduler {
 public:
  // `workers` >= 1; 0 selects DefaultWorkerCount().
  explicit RequestScheduler(size_t workers = 0);
  // Drains the queue (every submitted task runs) and joins the workers.
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  size_t worker_count() const { return workers_.size(); }

  // Enqueues `task` for some worker; returns immediately.
  void Submit(std::function<void()> task);

  // Enqueues `task` and blocks until it has run. The transport path for
  // socket connections: the connection thread waits, a scheduler worker
  // answers, so sockets and the spool share one bounded pool.
  void RunAndWait(const std::function<void()>& task);

  // Blocks until the queue is empty and every worker is idle. The spool
  // scan's end-of-batch barrier.
  void Wait();

  // min(4, hardware_concurrency), at least 1 — the `--workers` default.
  static size_t DefaultWorkerCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here for tasks.
  std::condition_variable idle_cv_;  // Wait()/RunAndWait() callers.
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // Tasks currently executing.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lockdoc

#endif  // SRC_SERVE_SCHEDULER_H_
