#include "src/serve/service.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <thread>
#include <utility>

#include "src/core/snapshot.h"
#include "src/db/snapshot.h"
#include "src/serve/crash_point.h"
#include "src/trace/trace_io.h"
#include "src/util/file_io.h"
#include "src/util/string_util.h"

namespace lockdoc {

namespace {

constexpr char kRequestSuffix[] = ".req";
constexpr char kSnapshotSuffix[] = ".lockdb";

bool PathExists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

// "web.trace" and "web.lockdb" both ingest as snapshot "web"; dotless names
// pass through unchanged.
std::string SnapshotNameFor(const std::string& source) {
  size_t dot = source.rfind('.');
  if (dot == std::string::npos || dot == 0) {
    return source;
  }
  return source.substr(0, dot);
}

void SleepMs(uint64_t ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

// Unlinks crash debris: in-flight WriteFileAtomic temp files that a kill
// stranded. Their rename never happened, so they are garbage by contract.
void SweepTempFiles(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return;
  }
  std::vector<std::string> victims;
  while (struct dirent* entry = ::readdir(handle)) {
    if (StartsWith(entry->d_name, kAtomicTempPrefix)) {
      victims.push_back(entry->d_name);
    }
  }
  ::closedir(handle);
  for (const std::string& name : victims) {
    RemoveFileIfExists(dir + "/" + name);
  }
}

}  // namespace

std::string ServeStats::ToString() const {
  return StrFormat(
      "ingested=%llu salvaged=%llu quarantined=%llu answered_ok=%llu "
      "answered_error=%llu timeouts=%llu evictions=%llu recovered=%llu",
      static_cast<unsigned long long>(ingested),
      static_cast<unsigned long long>(ingested_salvaged),
      static_cast<unsigned long long>(quarantined),
      static_cast<unsigned long long>(answered_ok),
      static_cast<unsigned long long>(answered_error),
      static_cast<unsigned long long>(timeouts),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(recovered));
}

// One analysis context over one resident snapshot at one tac value. Holds
// shared ownership of the snapshot so an abandoned deadline worker (or a
// concurrent diff baseline) stays valid after the resident entry is evicted.
struct ServeService::ContextBox {
  std::shared_ptr<AnalysisSnapshot> snapshot;
  PipelineTimings timings;
  std::unique_ptr<AnalysisContext> context;
};

struct ServeService::Resident {
  std::string name;
  std::shared_ptr<AnalysisSnapshot> snapshot;
  // The eviction currency charged against --max-resident-bytes: the mapped
  // backing size for zero-copy v2 snapshots (their table columns live in
  // the mmap, not the heap), the on-disk size otherwise.
  uint64_t bytes = 0;
  // Contexts keyed by formatted tac; memoized rules depend on it.
  std::map<std::string, std::shared_ptr<ContextBox>> contexts;
};

// The rendezvous between the watchdog and one pass execution.
struct ServeService::WorkerHandle {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::string text;
};

ServeService::ServeService(const SpoolLayout& layout, const TypeRegistry* registry,
                           ServeServiceOptions options)
    : layout_(layout), registry_(registry), options_(std::move(options)), journal_(&layout_) {}

ServeService::~ServeService() = default;

Status ServeService::Recover() {
  for (const std::string* dir :
       {&layout_.incoming_dir, &layout_.requests_dir, &layout_.responses_dir,
        &layout_.snapshots_dir, &layout_.journal_dir, &layout_.quarantine_dir}) {
    SweepTempFiles(*dir);
  }

  auto entries = journal_.Load();
  if (!entries.ok()) {
    return entries.status();
  }
  for (const JournalEntry& entry : entries.value()) {
    ++stats_.recovered;
    const std::string source = entry.source.empty() ? entry.name : entry.source;
    if (!PathExists(layout_.incoming_dir + "/" + source)) {
      // The import completed through source removal (the ack or quarantine
      // is already published); only the journal clear was lost.
      journal_.Clear(entry.name);
      continue;
    }
    if (entry.attempts >= kMaxImportAttempts) {
      QuarantineIncoming(source, entry.name, "crash-loop",
                         StrFormat("import attempted %u times without completing",
                                   entry.attempts),
                         "inspect with lockdoc doctor, then re-drop the file");
      continue;
    }
    IngestOne(source, entry.attempts + 1);
  }

  // Requests answered before the crash but whose .req removal was lost.
  auto requests = ListSpoolFiles(layout_.requests_dir, kRequestSuffix);
  if (requests.ok()) {
    for (const std::string& file : requests.value()) {
      const std::string stem = file.substr(0, file.size() - (sizeof(kRequestSuffix) - 1));
      if (PathExists(layout_.responses_dir + "/" + stem + ".meta")) {
        RemoveFileIfExists(layout_.requests_dir + "/" + file);
      }
    }
  }
  return Status::Ok();
}

Result<size_t> ServeService::ProcessOnce() {
  size_t handled = 0;
  auto incoming = ListSpoolFiles(layout_.incoming_dir);
  if (!incoming.ok()) {
    return incoming.status();
  }
  for (const std::string& source : incoming.value()) {
    IngestOne(source, 1);
    ++handled;
  }
  auto requests = ListSpoolFiles(layout_.requests_dir, kRequestSuffix);
  if (!requests.ok()) {
    return requests.status();
  }
  for (const std::string& file : requests.value()) {
    AnswerOne(file);
    ++handled;
  }
  return handled;
}

Status ServeService::RunLoop(const std::atomic<bool>& stop, uint64_t poll_ms) {
  while (!stop.load(std::memory_order_relaxed)) {
    auto handled = ProcessOnce();
    if (!handled.ok()) {
      return handled.status();
    }
    if (stop.load(std::memory_order_relaxed)) {
      break;
    }
    if (handled.value() == 0) {
      SleepMs(poll_ms == 0 ? 50 : poll_ms);
    }
  }
  return Status::Ok();
}

bool ServeService::DrainZombies(uint64_t grace_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
  for (;;) {
    bool alive = false;
    for (const auto& worker : zombies_) {
      std::lock_guard<std::mutex> lock(worker->mutex);
      if (!worker->done) {
        alive = true;
        break;
      }
    }
    if (!alive) {
      // `done` flips just before the detached thread unwinds; give it a
      // beat to actually leave our code before the caller tears down.
      if (!zombies_.empty()) {
        SleepMs(20);
      }
      zombies_.clear();
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    SleepMs(10);
  }
}

// --- ingest ---

void ServeService::IngestOne(const std::string& source, uint32_t attempts) {
  const std::string name = SnapshotNameFor(source);
  const std::string source_path = layout_.incoming_dir + "/" + source;

  JournalEntry entry;
  entry.name = name;
  entry.source = source;
  entry.attempts = attempts;
  if (Status status = journal_.Record(entry); !status.ok()) {
    // Transient state-dir trouble; the file stays in incoming and the next
    // scan retries the whole import.
    std::fprintf(stderr, "lockdoc serve: journal %s: %s\n", name.c_str(),
                 status.message().c_str());
    return;
  }
  ServeCrashPoint("journal-recorded");

  auto size = FileSize(source_path);
  if (!size.ok()) {
    // Vanished between the scan and now (an operator took it back).
    journal_.Clear(name);
    return;
  }
  if (options_.max_trace_bytes != 0 && size.value() > options_.max_trace_bytes) {
    QuarantineIncoming(source, name, kServeErrorOversized,
                       StrFormat("%llu bytes exceeds --max-trace-bytes %llu",
                                 static_cast<unsigned long long>(size.value()),
                                 static_cast<unsigned long long>(options_.max_trace_bytes)),
                       "raise --max-trace-bytes or split the trace");
    return;
  }

  auto bytes = ReadSpoolFileWithRetry(source_path);
  if (!bytes.ok()) {
    QuarantineIncoming(source, name, kServeErrorIo, bytes.status().message(),
                       "check spool filesystem health");
    return;
  }
  if (bytes.value().empty()) {
    QuarantineIncoming(source, name, "empty", "zero-byte file",
                       "re-export the trace; producers must publish into "
                       "incoming/ with an atomic rename");
    return;
  }

  ServeResponseMeta ack;
  ack.ok = true;
  bool salvaged = false;
  std::string snapshot_bytes;
  if (LooksLikeSnapshot(bytes.value())) {
    // Pre-imported .lockdb: validate fully before publication so a damaged
    // snapshot never enters the resident store.
    auto snapshot = DeserializeSnapshot(bytes.value(), *registry_);
    if (!snapshot.ok()) {
      QuarantineIncoming(source, name, "damaged-snapshot", snapshot.status().message(),
                         StrFormat("lockdoc doctor %s --repair %s.lockdb", source.c_str(),
                                   name.c_str()));
      return;
    }
    snapshot_bytes = std::move(bytes.value());
    ack.extra.emplace_back("kind", "snapshot");
  } else {
    TraceReadOptions read_options;
    read_options.salvage = true;
    TraceReadReport report;
    auto trace = ReadTraceFromBytes(bytes.value(), read_options, &report);
    if (!trace.ok()) {
      QuarantineIncoming(source, name, "unreadable", trace.status().message(),
                         "not a readable trace or snapshot; lockdoc doctor "
                         "itemizes the damage");
      return;
    }
    PipelineTimings timings;
    AnalysisSnapshot snapshot =
        BuildSnapshot(trace.value(), *registry_, options_.pipeline, &timings);
    snapshot_bytes = SerializeSnapshot(snapshot, *registry_);
    ServeCrashPoint("snapshot-serialized");
    ack.extra.emplace_back("kind", "trace");
    ack.extra.emplace_back("events", std::to_string(trace.value().events().size()));
    if (!report.clean()) {
      // Graceful degradation: answer from what survived, but say so.
      salvaged = true;
      ack.extra.emplace_back("salvaged", "1");
      ack.extra.emplace_back("damage", OneLine(report.ToString()));
    }
  }
  ack.extra.emplace_back("snapshot_bytes", std::to_string(snapshot_bytes.size()));

  ServeCrashPoint("pre-snapshot-publish");
  const std::string snapshot_path = layout_.snapshots_dir + "/" + name + kSnapshotSuffix;
  if (Status status = WriteFileAtomic(snapshot_path, snapshot_bytes); !status.ok()) {
    QuarantineIncoming(source, name, kServeErrorIo, status.message(),
                       "check state filesystem health");
    return;
  }
  ServeCrashPoint("snapshot-published");
  // A re-import replaces any stale resident copy.
  EvictResident(name);

  FinishIngest(source, name, ack);
  ++stats_.ingested;
  if (salvaged) {
    ++stats_.ingested_salvaged;
  }
}

void ServeService::QuarantineIncoming(const std::string& source, const std::string& name,
                                      const std::string& kind, const std::string& detail,
                                      const std::string& hint) {
  Status status = QuarantineFile(layout_, layout_.incoming_dir, source, kind, detail, hint);
  if (!status.ok()) {
    std::fprintf(stderr, "lockdoc serve: quarantine %s: %s\n", source.c_str(),
                 status.message().c_str());
  }
  ++stats_.quarantined;
  journal_.Clear(name);
  ServeCrashPoint("quarantine-journal-cleared");
}

void ServeService::FinishIngest(const std::string& source, const std::string& name,
                                const ServeResponseMeta& ack) {
  // The ack is the commit point of the answered state; everything after it
  // is idempotent cleanup that recovery can replay.
  WriteResponseMeta(layout_, name + ".ingest", ack);
  ServeCrashPoint("ingest-acked");
  RemoveFileIfExists(layout_.incoming_dir + "/" + source);
  ServeCrashPoint("source-removed");
  journal_.Clear(name);
  ServeCrashPoint("journal-cleared");
}

// --- requests ---

void ServeService::AnswerOne(const std::string& request_file) {
  const std::string stem =
      request_file.substr(0, request_file.size() - (sizeof(kRequestSuffix) - 1));
  const std::string request_path = layout_.requests_dir + "/" + request_file;
  if (PathExists(layout_.responses_dir + "/" + stem + ".meta")) {
    // Already answered (crash between meta publication and .req removal).
    RemoveFileIfExists(request_path);
    return;
  }

  auto text = ReadSpoolFileWithRetry(request_path);
  if (!text.ok()) {
    AnswerError(stem, request_file, kServeErrorIo, text.status().message());
    return;
  }
  auto parsed = ParseServeRequest(stem, text.value());
  if (!parsed.ok()) {
    AnswerError(stem, request_file, kServeErrorBadRequest, parsed.status().message());
    return;
  }
  const ServeRequest& request = parsed.value();

  const AnalysisPass* pass = PassRegistry::Default().Find(request.pass);
  if (pass == nullptr) {
    AnswerError(stem, request_file, kServeErrorUnknownPass,
                StrFormat("unknown pass '%s' (expected one of: %s)", request.pass.c_str(),
                          PassRegistry::Default().JoinedNames().c_str()));
    return;
  }

  std::string error;
  auto resident = GetResident(request.input, &error);
  if (resident == nullptr) {
    AnswerError(stem, request_file, kServeErrorUnknownInput, error);
    return;
  }
  std::shared_ptr<ContextBox> baseline_box;
  if (request.pass == "diff") {
    if (request.baseline.empty()) {
      AnswerError(stem, request_file, kServeErrorBadRequest,
                  "pass=diff requires baseline=<name>");
      return;
    }
    auto baseline = GetResident(request.baseline, &error);
    if (baseline == nullptr) {
      AnswerError(stem, request_file, kServeErrorUnknownInput, error);
      return;
    }
    baseline_box = GetContext(baseline, request.tac);
  }
  auto box = GetContext(resident, request.tac);

  // Per-request knobs over the CLI's defaults; the documented-rules text is
  // service configuration, exactly as the standalone commands wire it.
  PassOptions pass_options = request.pass_options;
  pass_options.documented_rules_text = options_.documented_rules_text;
  pass_options.baseline = baseline_box ? baseline_box->context.get() : nullptr;
  box->context->pass_options() = pass_options;

  auto worker = std::make_shared<WorkerHandle>();
  auto work = [worker, pass, box, baseline_box]() {
    PassOutput out;
    Status status = pass->Run(*box->context, out);
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->done = true;
    worker->status = std::move(status);
    worker->text = std::move(out.text);
    worker->cv.notify_all();
  };

  bool finished = true;
  if (options_.deadline_ms == 0) {
    work();
  } else {
    std::thread thread(work);
    std::unique_lock<std::mutex> lock(worker->mutex);
    if (worker->cv.wait_for(lock, std::chrono::milliseconds(options_.deadline_ms),
                            [&worker] { return worker->done; })) {
      lock.unlock();
      thread.join();
    } else {
      lock.unlock();
      thread.detach();
      finished = false;
    }
  }

  if (!finished) {
    ++stats_.timeouts;
    zombies_.push_back(worker);
    // The abandoned worker may still be building this context's indexes;
    // poison the entries out of the cache so no later request shares its
    // state (the worker's shared ownership keeps the memory valid).
    EvictResident(request.input);
    if (!request.baseline.empty()) {
      EvictResident(request.baseline);
    }
    AnswerError(stem, request_file, kServeErrorTimeout,
                StrFormat("pass '%s' exceeded the %llu ms deadline", request.pass.c_str(),
                          static_cast<unsigned long long>(options_.deadline_ms)));
    return;
  }

  if (!worker->status.ok()) {
    AnswerError(stem, request_file, kServeErrorAnalysis, worker->status.message());
    return;
  }

  if (Status status =
          WriteFileAtomic(layout_.responses_dir + "/" + stem + ".out", worker->text);
      !status.ok()) {
    AnswerError(stem, request_file, kServeErrorIo, status.message());
    return;
  }
  ServeCrashPoint("response-out-written");
  ServeResponseMeta meta;
  meta.ok = true;
  meta.extra.emplace_back("pass", request.pass);
  meta.extra.emplace_back("input", request.input);
  WriteResponseMeta(layout_, stem, meta);
  ++stats_.answered_ok;
  ServeCrashPoint("response-meta-written");
  RemoveFileIfExists(request_path);
  ServeCrashPoint("request-removed");
}

void ServeService::AnswerError(const std::string& stem, const std::string& request_file,
                               const std::string& kind, const std::string& error) {
  ServeResponseMeta meta;
  meta.ok = false;
  meta.kind = kind;
  meta.error = error;
  WriteResponseMeta(layout_, stem, meta);
  ++stats_.answered_error;
  RemoveFileIfExists(layout_.requests_dir + "/" + request_file);
}

// --- resident store ---

std::shared_ptr<ServeService::Resident> ServeService::GetResident(const std::string& name,
                                                                  std::string* error) {
  auto it = residents_.find(name);
  if (it != residents_.end()) {
    TouchResident(name);
    return it->second;
  }

  const std::string path = layout_.snapshots_dir + "/" + name + kSnapshotSuffix;
  if (!PathExists(path)) {
    *error = StrFormat("no snapshot named '%s' in the resident store", name.c_str());
    return nullptr;
  }
  // Zero-copy load: v2 snapshots keep their table columns in the mapping.
  // Payload CRCs are verified during the load (the SnapshotLoadOptions
  // default) — the no-wrong-answer invariant does not bend for speed, and a
  // CRC sweep over mapped bytes is still far cheaper than a v1 decode.
  auto snapshot = LoadSnapshot(path, *registry_);
  if (!snapshot.ok()) {
    *error = StrFormat("snapshot '%s' is damaged (%s); try lockdoc doctor --repair",
                       name.c_str(), snapshot.status().message().c_str());
    return nullptr;
  }

  auto resident = std::make_shared<Resident>();
  resident->name = name;
  resident->snapshot = std::make_shared<AnalysisSnapshot>(std::move(snapshot.value()));
  if (resident->snapshot->backing != nullptr) {
    resident->bytes = resident->snapshot->backing->bytes.size();
  } else {
    auto size = FileSize(path);
    resident->bytes = size.ok() ? size.value() : 0;
  }
  residents_[name] = resident;
  lru_.push_front(name);
  resident_bytes_ += resident->bytes;
  EnforceResidencyBudget();
  return resident;
}

std::shared_ptr<ServeService::ContextBox> ServeService::GetContext(
    const std::shared_ptr<Resident>& resident, double tac) {
  const std::string key = StrFormat("%.17g", tac);
  auto it = resident->contexts.find(key);
  if (it != resident->contexts.end()) {
    return it->second;
  }
  auto box = std::make_shared<ContextBox>();
  box->snapshot = resident->snapshot;
  AnalysisOptions options;
  options.pipeline = options_.pipeline;
  options.pipeline.derivator.accept_threshold = tac;
  box->context = std::make_unique<AnalysisContext>(box->snapshot.get(), registry_,
                                                   std::move(options), &box->timings);
  resident->contexts[key] = box;
  return box;
}

void ServeService::TouchResident(const std::string& name) {
  lru_.remove(name);
  lru_.push_front(name);
}

void ServeService::EvictResident(const std::string& name) {
  auto it = residents_.find(name);
  if (it == residents_.end()) {
    return;
  }
  resident_bytes_ -= it->second->bytes;
  residents_.erase(it);
  lru_.remove(name);
}

void ServeService::EnforceResidencyBudget() {
  const size_t max_resident = options_.max_resident == 0 ? 1 : options_.max_resident;
  // The most recent entry (front) always survives: a request being answered
  // right now must not evict its own snapshot.
  while (residents_.size() > 1 &&
         (residents_.size() > max_resident ||
          (options_.max_resident_bytes != 0 && resident_bytes_ > options_.max_resident_bytes))) {
    const std::string victim = lru_.back();
    ++stats_.evictions;
    EvictResident(victim);
  }
}

Result<std::string> ServeService::ReadSpoolFileWithRetry(const std::string& path) {
  std::string bytes;
  Status status = RetryWithBackoff(options_.retry, [&]() -> Status {
    auto read = ReadFileToString(path);
    if (!read.ok()) {
      return read.status();
    }
    bytes = std::move(read.value());
    return Status::Ok();
  });
  if (!status.ok()) {
    return status;
  }
  return bytes;
}

}  // namespace lockdoc
