#include "src/serve/service.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <thread>
#include <utility>

#include "src/core/snapshot.h"
#include "src/db/snapshot.h"
#include "src/report/render.h"
#include "src/serve/crash_point.h"
#include "src/trace/trace_io.h"
#include "src/util/file_io.h"
#include "src/util/string_util.h"

namespace lockdoc {

namespace {

constexpr char kRequestSuffix[] = ".req";
constexpr char kSnapshotSuffix[] = ".lockdb";

bool PathExists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

// "web.trace" and "web.lockdb" both ingest as snapshot "web"; dotless names
// pass through unchanged.
std::string SnapshotNameFor(const std::string& source) {
  size_t dot = source.rfind('.');
  if (dot == std::string::npos || dot == 0) {
    return source;
  }
  return source.substr(0, dot);
}

void SleepMs(uint64_t ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

// Unlinks crash debris: in-flight WriteFileAtomic temp files that a kill
// stranded. Their rename never happened, so they are garbage by contract.
void SweepTempFiles(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return;
  }
  std::vector<std::string> victims;
  while (struct dirent* entry = ::readdir(handle)) {
    if (StartsWith(entry->d_name, kAtomicTempPrefix)) {
      victims.push_back(entry->d_name);
    }
  }
  ::closedir(handle);
  for (const std::string& name : victims) {
    RemoveFileIfExists(dir + "/" + name);
  }
}

}  // namespace

std::string ServeStats::ToString() const {
  return StrFormat(
      "ingested=%llu salvaged=%llu quarantined=%llu answered_ok=%llu "
      "answered_error=%llu timeouts=%llu evictions=%llu recovered=%llu",
      static_cast<unsigned long long>(ingested),
      static_cast<unsigned long long>(ingested_salvaged),
      static_cast<unsigned long long>(quarantined),
      static_cast<unsigned long long>(answered_ok),
      static_cast<unsigned long long>(answered_error),
      static_cast<unsigned long long>(timeouts),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(recovered));
}

// One analysis context over one resident snapshot at one tac value. Holds
// shared ownership of the snapshot so an abandoned deadline worker (or a
// concurrent diff baseline) stays valid after the resident entry is evicted.
// Concurrent requests share a box: the context's indexes are call_once
// memoized, its ThreadPool serializes concurrent drivers, and per-request
// knobs travel as a Run() parameter, never as context state.
struct ServeService::ContextBox {
  std::shared_ptr<AnalysisSnapshot> snapshot;
  PipelineTimings timings;
  std::unique_ptr<AnalysisContext> context;
};

struct ServeService::Resident {
  std::string name;
  // Build-once rendezvous: the first requester loads the snapshot, every
  // concurrent requester for the same name waits on the same flag.
  std::once_flag once;
  bool load_ok = false;
  std::string load_error;
  std::shared_ptr<AnalysisSnapshot> snapshot;
  // The registry this snapshot loaded against (base or extended); contexts
  // and documented rules must use the same one.
  const TypeRegistry* registry = nullptr;
  // The eviction currency charged against --max-resident-bytes: the mapped
  // backing size for zero-copy v2 snapshots (their table columns live in
  // the mmap, not the heap), the on-disk size otherwise.
  uint64_t bytes = 0;
  bool charged = false;  // bytes accounted into resident_bytes_ (store_mu_).
  // In-flight requests currently using this entry (store_mu_). LRU
  // eviction skips pinned entries so a context is never unmapped
  // mid-request; poison evictions (timeout, re-import) remove the map
  // entry regardless — the shared_ptr keeps the memory valid.
  uint64_t pins = 0;
  // Contexts keyed by formatted tac; memoized rules depend on it (store_mu_).
  std::map<std::string, std::shared_ptr<ContextBox>> contexts;
};

// The rendezvous between the watchdog and one pass execution.
struct ServeService::WorkerHandle {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::string text;
};

void ServeService::PinGuard::Release() {
  if (service_ != nullptr && resident_ != nullptr) {
    std::lock_guard<std::mutex> lock(service_->store_mu_);
    --resident_->pins;
  }
  service_ = nullptr;
  resident_ = nullptr;
}

ServeService::ServeService(const SpoolLayout& layout, const TypeRegistry* registry,
                           ServeServiceOptions options, const TypeRegistry* extended_registry)
    : layout_(layout),
      registry_(registry),
      extended_registry_(extended_registry),
      options_(std::move(options)),
      journal_(&layout_),
      scheduler_(std::make_unique<RequestScheduler>(options_.workers)) {}

const TypeRegistry* ServeService::RegistryForTrace(const Trace& trace) const {
  if (extended_registry_ == nullptr) {
    return registry_;
  }
  for (const TraceEvent& e : trace.events()) {
    if (e.has_range) {
      return extended_registry_;
    }
    if (e.kind == EventKind::kAlloc && e.type != kInvalidTypeId &&
        e.type >= registry_->type_count()) {
      return extended_registry_;
    }
  }
  return registry_;
}

const TypeRegistry* ServeService::RegistryForSnapshotBytes(std::string_view bytes) const {
  if (extended_registry_ == nullptr) {
    return registry_;
  }
  auto type_count = PeekSnapshotTypeCountFromBytes(bytes);
  if (type_count.ok() && type_count.value() == extended_registry_->type_count() &&
      type_count.value() != registry_->type_count()) {
    return extended_registry_;
  }
  return registry_;
}

ServeService::~ServeService() = default;

ServeStats ServeService::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return stats_;
}

Status ServeService::Recover() {
  for (const std::string* dir :
       {&layout_.incoming_dir, &layout_.requests_dir, &layout_.responses_dir,
        &layout_.snapshots_dir, &layout_.journal_dir, &layout_.quarantine_dir}) {
    SweepTempFiles(*dir);
  }

  auto entries = journal_.Load();
  if (!entries.ok()) {
    return entries.status();
  }
  for (const JournalEntry& entry : entries.value()) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++stats_.recovered;
    }
    const std::string source = entry.source.empty() ? entry.name : entry.source;
    if (!PathExists(layout_.incoming_dir + "/" + source)) {
      // The import completed through source removal (the ack or quarantine
      // is already published); only the journal clear was lost.
      journal_.Clear(entry.name);
      continue;
    }
    if (entry.attempts >= kMaxImportAttempts) {
      QuarantineIncoming(source, entry.name, "crash-loop",
                         StrFormat("import attempted %u times without completing",
                                   entry.attempts),
                         "inspect with lockdoc doctor, then re-drop the file");
      continue;
    }
    IngestOne(source, entry.attempts + 1);
  }

  // Requests answered before the crash but whose .req removal was lost.
  auto requests = ListSpoolFiles(layout_.requests_dir, kRequestSuffix);
  if (requests.ok()) {
    for (const std::string& file : requests.value()) {
      const std::string stem = file.substr(0, file.size() - (sizeof(kRequestSuffix) - 1));
      if (PathExists(layout_.responses_dir + "/" + stem + ".meta")) {
        RemoveFileIfExists(layout_.requests_dir + "/" + file);
      }
    }
  }
  return Status::Ok();
}

Result<size_t> ServeService::ProcessOnce() {
  size_t handled = 0;
  auto incoming = ListSpoolFiles(layout_.incoming_dir);
  if (!incoming.ok()) {
    return incoming.status();
  }
  for (const std::string& source : incoming.value()) {
    if (IngestOne(source, 1)) {
      ++handled;
    }
  }
  auto requests = ListSpoolFiles(layout_.requests_dir, kRequestSuffix);
  if (!requests.ok()) {
    return requests.status();
  }
  if (!requests.value().empty()) {
    // Fan the batch out over the scheduler and barrier on the batch — not
    // the whole queue — so concurrent socket requests don't extend the
    // scan. With one worker the FIFO queue preserves the sorted scan
    // order, reproducing the serial loop exactly.
    std::atomic<size_t> answered{0};
    std::atomic<size_t> remaining{requests.value().size()};
    std::mutex done_mu;
    std::condition_variable done_cv;
    for (const std::string& file : requests.value()) {
      scheduler_->Submit([this, file, &answered, &remaining, &done_mu, &done_cv] {
        if (AnswerSpool(file)) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> lock(done_mu);
          done_cv.notify_all();
        }
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
    handled += answered.load();
  }
  return handled;
}

Status ServeService::RunLoop(const std::atomic<bool>& stop, uint64_t poll_ms,
                             const std::function<void(uint64_t)>& sleep_ms) {
  // Idle backoff: first idle scan sleeps the base poll interval, each
  // consecutive idle scan doubles it, capped at 8x — an idle daemon wakes
  // 8x less often while a busy spool still gets scanned at full rate.
  const uint64_t base = poll_ms == 0 ? 50 : poll_ms;
  BackoffPolicy idle;
  idle.base_delay_ms = base;
  idle.max_delay_ms = base * 8;
  idle.multiplier = 2;
  uint32_t idle_streak = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    auto handled = ProcessOnce();
    if (!handled.ok()) {
      return handled.status();
    }
    if (stop.load(std::memory_order_relaxed)) {
      break;
    }
    if (handled.value() != 0) {
      idle_streak = 0;
      continue;
    }
    if (idle_streak < 16) {
      ++idle_streak;
    }
    const uint64_t delay = BackoffDelayMs(idle, idle_streak);
    if (sleep_ms != nullptr) {
      sleep_ms(delay);
      continue;
    }
    // Chunked so a stop request (SIGTERM) is honored within ~50 ms even at
    // the top of the ramp.
    uint64_t slept = 0;
    while (slept < delay && !stop.load(std::memory_order_relaxed)) {
      const uint64_t chunk = std::min<uint64_t>(50, delay - slept);
      SleepMs(chunk);
      slept += chunk;
    }
  }
  return Status::Ok();
}

bool ServeService::DrainZombies(uint64_t grace_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
  for (;;) {
    std::vector<std::shared_ptr<WorkerHandle>> snapshot;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      snapshot = zombies_;
    }
    bool alive = false;
    for (const auto& worker : snapshot) {
      std::lock_guard<std::mutex> lock(worker->mutex);
      if (!worker->done) {
        alive = true;
        break;
      }
    }
    if (!alive) {
      // `done` flips just before the detached thread unwinds; give it a
      // beat to actually leave our code before the caller tears down.
      if (!snapshot.empty()) {
        SleepMs(20);
      }
      std::lock_guard<std::mutex> lock(state_mu_);
      zombies_.clear();
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    SleepMs(10);
  }
}

// --- ingest ---

bool ServeService::IngestOne(const std::string& source, uint32_t attempts) {
  const std::string name = SnapshotNameFor(source);
  const std::string source_path = layout_.incoming_dir + "/" + source;

  JournalEntry entry;
  entry.name = name;
  entry.source = source;
  entry.attempts = attempts;
  if (Status status = journal_.Record(entry); !status.ok()) {
    // Transient state-dir trouble; the file stays in incoming and the next
    // scan retries the whole import. No terminal state was reached.
    std::fprintf(stderr, "lockdoc serve: journal %s: %s\n", name.c_str(),
                 status.message().c_str());
    return false;
  }
  ServeCrashPoint("journal-recorded");

  auto size = FileSize(source_path);
  if (!size.ok()) {
    // Vanished between the scan and now (an operator took it back).
    journal_.Clear(name);
    return false;
  }
  if (options_.max_trace_bytes != 0 && size.value() > options_.max_trace_bytes) {
    return QuarantineIncoming(
        source, name, kServeErrorOversized,
        StrFormat("%llu bytes exceeds --max-trace-bytes %llu",
                  static_cast<unsigned long long>(size.value()),
                  static_cast<unsigned long long>(options_.max_trace_bytes)),
        "raise --max-trace-bytes or split the trace");
  }

  auto bytes = ReadSpoolFileWithRetry(source_path);
  if (!bytes.ok()) {
    return QuarantineIncoming(source, name, kServeErrorIo, bytes.status().message(),
                              "check spool filesystem health");
  }
  if (bytes.value().empty()) {
    return QuarantineIncoming(source, name, "empty", "zero-byte file",
                              "re-export the trace; producers must publish into "
                              "incoming/ with an atomic rename");
  }

  ServeResponseMeta ack;
  ack.ok = true;
  bool salvaged = false;
  std::string snapshot_bytes;
  if (LooksLikeSnapshot(bytes.value())) {
    // Pre-imported .lockdb: validate fully before publication so a damaged
    // snapshot never enters the resident store.
    auto snapshot = DeserializeSnapshot(bytes.value(), *RegistryForSnapshotBytes(bytes.value()));
    if (!snapshot.ok()) {
      return QuarantineIncoming(
          source, name, "damaged-snapshot", snapshot.status().message(),
          StrFormat("lockdoc doctor %s --repair %s.lockdb", source.c_str(), name.c_str()));
    }
    snapshot_bytes = std::move(bytes.value());
    ack.extra.emplace_back("kind", "snapshot");
  } else {
    TraceReadOptions read_options;
    read_options.salvage = true;
    TraceReadReport report;
    auto trace = ReadTraceFromBytes(bytes.value(), read_options, &report);
    if (!trace.ok()) {
      return QuarantineIncoming(source, name, "unreadable", trace.status().message(),
                                "not a readable trace or snapshot; lockdoc doctor "
                                "itemizes the damage");
    }
    PipelineTimings timings;
    const TypeRegistry& trace_registry = *RegistryForTrace(trace.value());
    AnalysisSnapshot snapshot =
        BuildSnapshot(trace.value(), trace_registry, options_.pipeline, &timings);
    snapshot_bytes = SerializeSnapshot(snapshot, trace_registry);
    ServeCrashPoint("snapshot-serialized");
    ack.extra.emplace_back("kind", "trace");
    ack.extra.emplace_back("events", std::to_string(trace.value().events().size()));
    if (!report.clean()) {
      // Graceful degradation: answer from what survived, but say so.
      salvaged = true;
      ack.extra.emplace_back("salvaged", "1");
      ack.extra.emplace_back("damage", OneLine(report.ToString()));
    }
  }
  ack.extra.emplace_back("snapshot_bytes", std::to_string(snapshot_bytes.size()));

  ServeCrashPoint("pre-snapshot-publish");
  const std::string snapshot_path = layout_.snapshots_dir + "/" + name + kSnapshotSuffix;
  if (Status status = WriteFileAtomic(snapshot_path, snapshot_bytes); !status.ok()) {
    return QuarantineIncoming(source, name, kServeErrorIo, status.message(),
                              "check state filesystem health");
  }
  ServeCrashPoint("snapshot-published");
  // A re-import replaces any stale resident copy.
  EvictResident(name);

  if (!FinishIngest(source, name, ack)) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.ingested;
    if (salvaged) {
      ++stats_.ingested_salvaged;
    }
  }
  return true;
}

bool ServeService::QuarantineIncoming(const std::string& source, const std::string& name,
                                      const std::string& kind, const std::string& detail,
                                      const std::string& hint) {
  Status status = QuarantineFile(layout_, layout_.incoming_dir, source, kind, detail, hint);
  if (!status.ok()) {
    std::fprintf(stderr, "lockdoc serve: quarantine %s: %s\n", source.c_str(),
                 status.message().c_str());
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.quarantined;
  }
  journal_.Clear(name);
  ServeCrashPoint("quarantine-journal-cleared");
  // Terminal only if the file actually moved out of incoming/; otherwise
  // the next scan retries and the loop must not count progress.
  return status.ok();
}

bool ServeService::FinishIngest(const std::string& source, const std::string& name,
                                const ServeResponseMeta& ack) {
  // The ack is the commit point of the answered state; everything after it
  // is idempotent cleanup that recovery can replay.
  if (Status status = WriteResponseMeta(layout_, name + ".ingest", ack); !status.ok()) {
    std::fprintf(stderr, "lockdoc serve: ack %s: %s\n", name.c_str(),
                 status.message().c_str());
    return false;
  }
  ServeCrashPoint("ingest-acked");
  RemoveFileIfExists(layout_.incoming_dir + "/" + source);
  ServeCrashPoint("source-removed");
  journal_.Clear(name);
  ServeCrashPoint("journal-cleared");
  return true;
}

// --- requests ---

ServeService::ServeAnswer ServeService::MakeError(const std::string& kind,
                                                  const std::string& error) {
  ServeAnswer answer;
  answer.meta.ok = false;
  answer.meta.kind = kind;
  answer.meta.error = error;
  return answer;
}

bool ServeService::AnswerSpool(const std::string& request_file) {
  const std::string stem =
      request_file.substr(0, request_file.size() - (sizeof(kRequestSuffix) - 1));
  const std::string request_path = layout_.requests_dir + "/" + request_file;
  if (PathExists(layout_.responses_dir + "/" + stem + ".meta")) {
    // Already answered (crash between meta publication and .req removal).
    RemoveFileIfExists(request_path);
    return false;
  }

  ServeAnswer answer;
  auto text = ReadSpoolFileWithRetry(request_path);
  if (!text.ok()) {
    answer = MakeError(kServeErrorIo, text.status().message());
  } else {
    auto parsed = ParseServeRequest(stem, text.value());
    if (!parsed.ok()) {
      answer = MakeError(kServeErrorBadRequest, parsed.status().message());
    } else {
      answer = AnswerParsed(parsed.value());
    }
  }
  return PublishSpoolAnswer(stem, request_path, std::move(answer));
}

bool ServeService::PublishSpoolAnswer(const std::string& stem,
                                      const std::string& request_path, ServeAnswer answer) {
  if (answer.meta.ok) {
    Status status =
        WriteFileAtomic(layout_.responses_dir + "/" + stem + ".out", answer.text);
    if (!status.ok()) {
      answer = MakeError(kServeErrorIo, status.message());
    } else {
      ServeCrashPoint("response-out-written");
      if (Status meta_status = WriteResponseMeta(layout_, stem, answer.meta);
          !meta_status.ok()) {
        // No meta, no terminal state: the request stays and is retried.
        std::fprintf(stderr, "lockdoc serve: answer %s: %s\n", stem.c_str(),
                     meta_status.message().c_str());
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        ++stats_.answered_ok;
      }
      ServeCrashPoint("response-meta-written");
      RemoveFileIfExists(request_path);
      ServeCrashPoint("request-removed");
      return true;
    }
  }

  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.answered_error;
  }
  if (Status status = WriteResponseMeta(layout_, stem, answer.meta); !status.ok()) {
    std::fprintf(stderr, "lockdoc serve: answer %s: %s\n", stem.c_str(),
                 status.message().c_str());
    return false;
  }
  RemoveFileIfExists(request_path);
  return true;
}

ServeService::ServeAnswer ServeService::AnswerFromText(const std::string& id,
                                                       std::string_view text) {
  auto parsed = ParseServeRequest(id, text);
  if (!parsed.ok()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.answered_error;
    return MakeError(kServeErrorBadRequest, parsed.status().message());
  }
  ServeAnswer answer;
  scheduler_->RunAndWait([&] { answer = AnswerParsed(parsed.value()); });
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (answer.meta.ok) {
      ++stats_.answered_ok;
    } else {
      ++stats_.answered_error;
    }
  }
  return answer;
}

ServeService::ServeAnswer ServeService::AnswerParsed(const ServeRequest& request) {
  const AnalysisPass* pass = PassRegistry::Default().Find(request.pass);
  if (pass == nullptr) {
    return MakeError(kServeErrorUnknownPass,
                     StrFormat("unknown pass '%s' (expected one of: %s)",
                               request.pass.c_str(),
                               PassRegistry::Default().JoinedNames().c_str()));
  }

  std::string error;
  auto resident = GetResident(request.input, &error);
  if (resident == nullptr) {
    return MakeError(kServeErrorUnknownInput, error);
  }
  PinGuard input_pin(this, resident);

  std::shared_ptr<ContextBox> baseline_box;
  PinGuard baseline_pin;
  if (request.pass == "diff") {
    if (request.baseline.empty()) {
      return MakeError(kServeErrorBadRequest, "pass=diff requires baseline=<name>");
    }
    auto baseline = GetResident(request.baseline, &error);
    if (baseline == nullptr) {
      return MakeError(kServeErrorUnknownInput, error);
    }
    baseline_pin = PinGuard(this, baseline);
    baseline_box = GetContext(baseline, request.tac);
  }
  auto box = GetContext(resident, request.tac);

  // Per-request knobs over the CLI's defaults; the documented-rules text is
  // service configuration, exactly as the standalone commands wire it. The
  // options ride along as a Run() parameter — the shared context is never
  // mutated, so concurrent requests with different knobs cannot interfere.
  PassOptions pass_options = request.pass_options;
  pass_options.documented_rules_text =
      (resident->registry == extended_registry_ && extended_registry_ != nullptr &&
       !options_.extended_documented_rules_text.empty())
          ? options_.extended_documented_rules_text
          : options_.documented_rules_text;
  pass_options.baseline = baseline_box ? baseline_box->context.get() : nullptr;

  auto worker = std::make_shared<WorkerHandle>();
  const ReportFormat format = request.format;
  auto work = [worker, pass, box, baseline_box, pass_options, format]() {
    PassOutput out;
    Status status = pass->Run(*box->context, pass_options, out);
    // Rendering happens here, inside the deadline, so a pathological
    // document cannot stall the answer path after the worker reports done.
    std::string rendered;
    if (status.ok()) {
      rendered = format == ReportFormat::kText ? std::move(out.text)
                                               : RenderReportDocument(out.doc, format);
    }
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->done = true;
    worker->status = std::move(status);
    worker->text = std::move(rendered);
    worker->cv.notify_all();
  };

  bool finished = true;
  if (options_.deadline_ms == 0) {
    work();
  } else {
    std::thread thread(work);
    std::unique_lock<std::mutex> lock(worker->mutex);
    if (worker->cv.wait_for(lock, std::chrono::milliseconds(options_.deadline_ms),
                            [&worker] { return worker->done; })) {
      lock.unlock();
      thread.join();
    } else {
      lock.unlock();
      thread.detach();
      finished = false;
    }
  }

  if (!finished) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++stats_.timeouts;
      zombies_.push_back(worker);
    }
    // The abandoned worker may still be building this context's indexes;
    // poison the entries out of the cache so no later request shares its
    // state (the worker's shared ownership keeps the memory valid).
    EvictResident(request.input);
    if (!request.baseline.empty()) {
      EvictResident(request.baseline);
    }
    return MakeError(kServeErrorTimeout,
                     StrFormat("pass '%s' exceeded the %llu ms deadline",
                               request.pass.c_str(),
                               static_cast<unsigned long long>(options_.deadline_ms)));
  }

  if (!worker->status.ok()) {
    return MakeError(kServeErrorAnalysis, worker->status.message());
  }

  ServeAnswer answer;
  answer.meta.ok = true;
  answer.meta.extra.emplace_back("pass", request.pass);
  answer.meta.extra.emplace_back("input", request.input);
  if (request.has_format) {
    answer.meta.extra.emplace_back("format", std::string(ReportFormatName(request.format)));
  }
  answer.text = std::move(worker->text);
  return answer;
}

// --- resident store ---

std::shared_ptr<ServeService::Resident> ServeService::GetResident(const std::string& name,
                                                                  std::string* error) {
  std::shared_ptr<Resident> resident;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    auto it = residents_.find(name);
    if (it != residents_.end()) {
      resident = it->second;
    } else {
      // Insert a shell now so concurrent requests for the same snapshot
      // rendezvous on one load instead of each mapping its own copy.
      resident = std::make_shared<Resident>();
      resident->name = name;
      residents_[name] = resident;
      lru_.push_front(name);
    }
  }

  std::call_once(resident->once, [&] { LoadResident(resident); });

  std::lock_guard<std::mutex> lock(store_mu_);
  if (!resident->load_ok) {
    *error = resident->load_error;
    // Drop the failed shell (if it is still ours) so a re-dropped snapshot
    // gets a fresh load attempt.
    auto it = residents_.find(name);
    if (it != residents_.end() && it->second == resident) {
      residents_.erase(it);
      lru_.remove(name);
    }
    return nullptr;
  }
  // LRU touch + pin. The entry may have been poison-evicted mid-load; the
  // caller still gets a valid (detached) resident, it just isn't listed.
  if (residents_.count(name) != 0 && residents_[name] == resident) {
    lru_.remove(name);
    lru_.push_front(name);
  }
  ++resident->pins;
  return resident;
}

void ServeService::LoadResident(const std::shared_ptr<Resident>& resident) {
  const std::string& name = resident->name;
  const std::string path = layout_.snapshots_dir + "/" + name + kSnapshotSuffix;
  if (!PathExists(path)) {
    resident->load_error =
        StrFormat("no snapshot named '%s' in the resident store", name.c_str());
    return;
  }
  // Zero-copy load: v2 snapshots keep their table columns in the mapping.
  // Payload CRCs are verified during the load (the SnapshotLoadOptions
  // default) — the no-wrong-answer invariant does not bend for speed, and a
  // CRC sweep over mapped bytes is still far cheaper than a v1 decode.
  const TypeRegistry* registry = registry_;
  if (extended_registry_ != nullptr) {
    auto type_count = PeekSnapshotTypeCount(path);
    if (type_count.ok() && type_count.value() == extended_registry_->type_count() &&
        type_count.value() != registry_->type_count()) {
      registry = extended_registry_;
    }
  }
  auto snapshot = LoadSnapshot(path, *registry);
  if (!snapshot.ok()) {
    resident->load_error =
        StrFormat("snapshot '%s' is damaged (%s); try lockdoc doctor --repair",
                  name.c_str(), snapshot.status().message().c_str());
    return;
  }
  resident->registry = registry;
  resident->snapshot = std::make_shared<AnalysisSnapshot>(std::move(snapshot.value()));
  if (resident->snapshot->backing != nullptr) {
    resident->bytes = resident->snapshot->backing->bytes.size();
  } else {
    auto size = FileSize(path);
    resident->bytes = size.ok() ? size.value() : 0;
  }

  std::lock_guard<std::mutex> lock(store_mu_);
  resident->load_ok = true;
  auto it = residents_.find(name);
  if (it != residents_.end() && it->second == resident) {
    resident->charged = true;
    resident_bytes_ += resident->bytes;
    EnforceResidencyBudgetLocked();
  }
}

std::shared_ptr<ServeService::ContextBox> ServeService::GetContext(
    const std::shared_ptr<Resident>& resident, double tac) {
  const std::string key = StrFormat("%.17g", tac);
  std::lock_guard<std::mutex> lock(store_mu_);
  auto it = resident->contexts.find(key);
  if (it != resident->contexts.end()) {
    return it->second;
  }
  auto box = std::make_shared<ContextBox>();
  box->snapshot = resident->snapshot;
  AnalysisOptions options;
  options.pipeline = options_.pipeline;
  options.pipeline.derivator.accept_threshold = tac;
  box->context = std::make_unique<AnalysisContext>(
      box->snapshot.get(), resident->registry != nullptr ? resident->registry : registry_,
      std::move(options), &box->timings);
  resident->contexts[key] = box;
  return box;
}

void ServeService::EvictResident(const std::string& name) {
  std::lock_guard<std::mutex> lock(store_mu_);
  EvictResidentLocked(name);
}

void ServeService::EvictResidentLocked(const std::string& name) {
  auto it = residents_.find(name);
  if (it == residents_.end()) {
    return;
  }
  if (it->second->charged) {
    resident_bytes_ -= it->second->bytes;
    it->second->charged = false;
  }
  residents_.erase(it);
  lru_.remove(name);
}

void ServeService::EnforceResidencyBudgetLocked() {
  const size_t max_resident = options_.max_resident == 0 ? 1 : options_.max_resident;
  auto over_budget = [&] {
    return residents_.size() > max_resident ||
           (options_.max_resident_bytes != 0 && resident_bytes_ > options_.max_resident_bytes);
  };
  // The most recent entry (front) always survives: a request being answered
  // right now must not evict its own snapshot. Pinned entries are skipped —
  // eviction must never unmap a context another worker is using.
  while (residents_.size() > 1 && over_budget()) {
    std::string victim;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (*it == lru_.front()) {
        break;
      }
      auto found = residents_.find(*it);
      if (found != residents_.end() && found->second->pins == 0) {
        victim = *it;
        break;
      }
    }
    if (victim.empty()) {
      break;  // Everything evictable is pinned; retry on the next request.
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++stats_.evictions;
    }
    EvictResidentLocked(victim);
  }
}

Result<std::string> ServeService::ReadSpoolFileWithRetry(const std::string& path) {
  std::string bytes;
  Status status = RetryWithBackoff(options_.retry, [&]() -> Status {
    auto read = ReadFileToString(path);
    if (!read.ok()) {
      return read.status();
    }
    bytes = std::move(read.value());
    return Status::Ok();
  });
  if (!status.ok()) {
    return status;
  }
  return bytes;
}

}  // namespace lockdoc
