// ServeService — the long-lived, fault-tolerant analysis service behind
// `lockdoc serve` (ROADMAP: "a fleet of instrumented machines uploading
// traces, one service answering locking-rule queries").
//
// One scan cycle (ProcessOnce) ingests every file in SPOOL/incoming — each
// import journaled, crash-safe, and ending in exactly one of {acknowledged,
// quarantined} — then answers every SPOOL/requests/*.req against the
// resident snapshot store. Responses are byte-identical to the standalone
// CLI: the same registered AnalysisPass renders the same bytes from the
// same AnalysisContext; only the transport differs.
//
// Robustness machinery:
//   - crash safety: every state change is an atomic publish; the import
//     journal (src/serve/journal.h) replays or quarantines interrupted
//     imports on Recover()
//   - graceful degradation: damaged traces are salvaged with the damage
//     report attached to the acknowledgement; unreadable/oversized/empty
//     inputs are quarantined with a typed reason file, never deleted,
//     never retried forever
//   - deadlines: a request running past --deadline-ms gets a typed timeout
//     response from the watchdog while the worker is abandoned (its shared
//     ownership keeps memory valid) and the service keeps answering
//   - memory guardrails: resident snapshots are LRU-evicted beyond
//     --max-resident / --max-resident-bytes; oversized traces are rejected
//     before a byte is parsed
//   - transient I/O failures retry with bounded exponential backoff
#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/analysis_context.h"
#include "src/core/analysis_pass.h"
#include "src/core/pipeline.h"
#include "src/serve/journal.h"
#include "src/serve/request.h"
#include "src/serve/spool.h"
#include "src/util/backoff.h"
#include "src/util/status.h"

namespace lockdoc {

struct ServeServiceOptions {
  // Analysis knobs shared with the CLI (filter, derivator defaults, jobs).
  // The per-request tac overrides derivator.accept_threshold.
  PipelineOptions pipeline;
  // Documented-rules text for check/report, as the CLI default supplies it.
  std::string documented_rules_text;

  // Memory guardrails.
  size_t max_resident = 8;               // Resident snapshot count cap (>= 1).
  uint64_t max_resident_bytes = 1ull << 30;  // Byte budget; 0 = unlimited.
  uint64_t max_trace_bytes = 1ull << 30;     // Larger incoming files: quarantined.

  // Per-request deadline; 0 disables the watchdog.
  uint64_t deadline_ms = 0;

  // Transient-I/O retry schedule.
  BackoffPolicy retry;
};

// Monotonic counters, printed by `serve --once` and on shutdown.
struct ServeStats {
  uint64_t ingested = 0;          // Incoming files acknowledged ok.
  uint64_t ingested_salvaged = 0; // ... of which needed the salvage reader.
  uint64_t quarantined = 0;
  uint64_t answered_ok = 0;
  uint64_t answered_error = 0;    // Typed error responses (incl. timeouts).
  uint64_t timeouts = 0;
  uint64_t evictions = 0;         // LRU evictions (not counting timeout poisoning).
  uint64_t recovered = 0;         // Journal entries replayed by Recover().

  std::string ToString() const;
};

class ServeService {
 public:
  // `registry` must outlive the service; `layout` is copied.
  ServeService(const SpoolLayout& layout, const TypeRegistry* registry,
               ServeServiceOptions options);
  ~ServeService();

  ServeService(const ServeService&) = delete;
  ServeService& operator=(const ServeService&) = delete;

  // Replays the import journal, finishes half-answered requests, and sweeps
  // crash debris. Call once before the first ProcessOnce.
  Status Recover();

  // One spool scan: ingest everything in incoming/, answer every request.
  // Returns the number of items handled (0 = spool was idle).
  Result<size_t> ProcessOnce();

  // Drives ProcessOnce until `stop` becomes true, sleeping `poll_ms`
  // between idle scans. Returns Ok on a clean stop.
  Status RunLoop(const std::atomic<bool>& stop, uint64_t poll_ms);

  const ServeStats& stats() const { return stats_; }

  // True while an abandoned (timed-out) worker thread is still running.
  // Waits up to `grace_ms` for them to finish; callers that still see
  // zombies should _exit rather than run static destructors under a live
  // thread.
  bool DrainZombies(uint64_t grace_ms);

 private:
  struct ContextBox;
  struct Resident;
  struct WorkerHandle;

  // --- ingest ---
  void IngestOne(const std::string& source, uint32_t attempts);
  void QuarantineIncoming(const std::string& source, const std::string& name,
                          const std::string& kind, const std::string& detail,
                          const std::string& hint);
  void FinishIngest(const std::string& source, const std::string& name,
                    const ServeResponseMeta& ack);

  // --- requests ---
  void AnswerOne(const std::string& request_file);
  void AnswerError(const std::string& stem, const std::string& request_file,
                   const std::string& kind, const std::string& error);

  // --- resident store ---
  std::shared_ptr<Resident> GetResident(const std::string& name, std::string* error);
  std::shared_ptr<ContextBox> GetContext(const std::shared_ptr<Resident>& resident,
                                         double tac);
  void TouchResident(const std::string& name);
  void EvictResident(const std::string& name);
  void EnforceResidencyBudget();

  Result<std::string> ReadSpoolFileWithRetry(const std::string& path);

  SpoolLayout layout_;
  const TypeRegistry* registry_;
  ServeServiceOptions options_;
  ImportJournal journal_;
  ServeStats stats_;

  // Resident snapshots in LRU order (front = most recently used).
  std::list<std::string> lru_;
  std::map<std::string, std::shared_ptr<Resident>> residents_;
  uint64_t resident_bytes_ = 0;

  std::vector<std::shared_ptr<WorkerHandle>> zombies_;
};

}  // namespace lockdoc

#endif  // SRC_SERVE_SERVICE_H_
