// ServeService — the long-lived, fault-tolerant analysis service behind
// `lockdoc serve` (ROADMAP: "a fleet of instrumented machines uploading
// traces, one service answering locking-rule queries").
//
// One scan cycle (ProcessOnce) ingests every file in SPOOL/incoming — each
// import journaled, crash-safe, and ending in exactly one of {acknowledged,
// quarantined} — then answers every SPOOL/requests/*.req against the
// resident snapshot store. Responses are byte-identical to the standalone
// CLI: the same registered AnalysisPass renders the same bytes from the
// same AnalysisContext; only the transport differs.
//
// Concurrency model (DESIGN.md 4h): requests are answered by a bounded
// RequestScheduler (`--workers`); ingestion stays serial on the scan
// thread, so the journal and quarantine protocol never interleave. Two
// transports feed the scheduler — the spool scan submits a batch per scan,
// socket connections (src/serve/socket.h) hand their request over one at a
// time — and both render answers through the same code path, so the byte-
// identity contract holds at any workers/jobs combination. Shared state is
// split across two small mutexes: store_mu_ (resident snapshots, LRU,
// per-entry pins, context caches) and state_mu_ (stats, zombie workers).
// Lock order: store_mu_ before state_mu_, never the reverse.
//
// Robustness machinery:
//   - crash safety: every state change is an atomic publish; the import
//     journal (src/serve/journal.h) replays or quarantines interrupted
//     imports on Recover()
//   - graceful degradation: damaged traces are salvaged with the damage
//     report attached to the acknowledgement; unreadable/oversized/empty
//     inputs are quarantined with a typed reason file, never deleted,
//     never retried forever
//   - deadlines: a request running past --deadline-ms gets a typed timeout
//     response from the watchdog while the worker is abandoned (its shared
//     ownership keeps memory valid) and the service keeps answering
//   - memory guardrails: resident snapshots are LRU-evicted beyond
//     --max-resident / --max-resident-bytes; entries pinned by an
//     in-flight request are never evicted mid-answer; oversized traces
//     are rejected before a byte is parsed
//   - transient I/O failures retry with bounded exponential backoff
#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/analysis_context.h"
#include "src/core/analysis_pass.h"
#include "src/core/pipeline.h"
#include "src/serve/journal.h"
#include "src/serve/request.h"
#include "src/serve/scheduler.h"
#include "src/serve/spool.h"
#include "src/util/backoff.h"
#include "src/util/status.h"

namespace lockdoc {

struct ServeServiceOptions {
  // Analysis knobs shared with the CLI (filter, derivator defaults, jobs).
  // The per-request tac overrides derivator.accept_threshold.
  PipelineOptions pipeline;
  // Documented-rules text for check/report, as the CLI default supplies it.
  std::string documented_rules_text;
  // Rules text for inputs that load against the extended registry (see the
  // extended_registry constructor parameter); empty falls back to
  // documented_rules_text.
  std::string extended_documented_rules_text;

  // Request-scheduler lanes; 0 selects RequestScheduler::DefaultWorkerCount()
  // (min(4, hardware)). 1 reproduces the serial loop exactly.
  size_t workers = 0;

  // Memory guardrails.
  size_t max_resident = 8;               // Resident snapshot count cap (>= 1).
  uint64_t max_resident_bytes = 1ull << 30;  // Byte budget; 0 = unlimited.
  uint64_t max_trace_bytes = 1ull << 30;     // Larger incoming files: quarantined.

  // Per-request deadline; 0 disables the watchdog.
  uint64_t deadline_ms = 0;

  // Transient-I/O retry schedule.
  BackoffPolicy retry;
};

// Monotonic counters, printed by `serve --once` and on shutdown.
struct ServeStats {
  uint64_t ingested = 0;          // Incoming files acknowledged ok.
  uint64_t ingested_salvaged = 0; // ... of which needed the salvage reader.
  uint64_t quarantined = 0;
  uint64_t answered_ok = 0;
  uint64_t answered_error = 0;    // Typed error responses (incl. timeouts).
  uint64_t timeouts = 0;
  uint64_t evictions = 0;         // LRU evictions (not counting timeout poisoning).
  uint64_t recovered = 0;         // Journal entries replayed by Recover().

  std::string ToString() const;
};

class ServeService {
 public:
  // One computed answer, transport-agnostic: the meta commit record plus
  // the pass output bytes (empty on error). The spool publishes these as
  // .meta/.out files; the socket sends them as two frames.
  struct ServeAnswer {
    ServeResponseMeta meta;
    std::string text;
  };

  // `registry` must outlive the service; `layout` is copied.
  // `extended_registry` (optional, same lifetime) is a strict superset of
  // `registry` — extra types appended past the base set. Inputs that
  // reference types beyond the base registry (or carry ranged lock events)
  // are imported and loaded against it; everything else keeps using the
  // base registry bit-exactly.
  ServeService(const SpoolLayout& layout, const TypeRegistry* registry,
               ServeServiceOptions options, const TypeRegistry* extended_registry = nullptr);
  ~ServeService();

  ServeService(const ServeService&) = delete;
  ServeService& operator=(const ServeService&) = delete;

  // Replays the import journal, finishes half-answered requests, and sweeps
  // crash debris. Call once before the first ProcessOnce.
  Status Recover();

  // One spool scan: ingest everything in incoming/ (serial), answer every
  // request (fanned out over the scheduler, barriered before returning).
  // Returns the number of items that reached a terminal state — an ingest
  // acknowledged or quarantined, a request answered with a published meta.
  // Items that failed before their terminal state (journal write failed,
  // response dir unwritable) are NOT counted, so an erroring spool reports
  // 0 and RunLoop backs off instead of busy-looping.
  Result<size_t> ProcessOnce();

  // Drives ProcessOnce until `stop` becomes true. Idle scans back off
  // deterministically (src/util/backoff.*): the first idle scan sleeps
  // poll_ms (50 when 0), each further consecutive idle scan doubles the
  // sleep, capped at 8x poll_ms; any handled item resets the ramp. Sleeps
  // are chunked so a stop request is honored within ~50 ms. `sleep_ms` is
  // injectable for tests; nullptr selects a real sleep.
  Status RunLoop(const std::atomic<bool>& stop, uint64_t poll_ms,
                 const std::function<void(uint64_t)>& sleep_ms = nullptr);

  // Computes the answer for one raw request text (the socket transport).
  // Parsing happens on the calling thread; the analysis itself runs on the
  // scheduler, so socket and spool requests share one bounded pool. Thread-
  // safe; many connection threads may call concurrently.
  ServeAnswer AnswerFromText(const std::string& id, std::string_view text);

  ServeStats stats() const;

  // True while an abandoned (timed-out) worker thread is still running.
  // Waits up to `grace_ms` for them to finish; callers that still see
  // zombies should _exit rather than run static destructors under a live
  // thread.
  bool DrainZombies(uint64_t grace_ms);

 private:
  struct ContextBox;
  struct Resident;
  struct WorkerHandle;

  // Releases one resident pin on destruction (see Resident::pins).
  class PinGuard {
   public:
    PinGuard() = default;
    PinGuard(ServeService* service, std::shared_ptr<Resident> resident)
        : service_(service), resident_(std::move(resident)) {}
    PinGuard(PinGuard&& other) noexcept
        : service_(other.service_), resident_(std::move(other.resident_)) {
      other.service_ = nullptr;
      other.resident_ = nullptr;
    }
    PinGuard& operator=(PinGuard&& other) noexcept {
      if (this != &other) {
        Release();
        service_ = other.service_;
        resident_ = std::move(other.resident_);
        other.service_ = nullptr;
        other.resident_ = nullptr;
      }
      return *this;
    }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    ~PinGuard() { Release(); }
    void Release();

   private:
    ServeService* service_ = nullptr;
    std::shared_ptr<Resident> resident_;
  };

  // --- ingest (serial, scan thread only) ---
  bool IngestOne(const std::string& source, uint32_t attempts);
  bool QuarantineIncoming(const std::string& source, const std::string& name,
                          const std::string& kind, const std::string& detail,
                          const std::string& hint);
  bool FinishIngest(const std::string& source, const std::string& name,
                    const ServeResponseMeta& ack);

  // --- requests (scheduler workers) ---
  // Spool transport: read + parse + answer + publish one .req. Returns
  // true when the request reached its terminal state (meta published).
  bool AnswerSpool(const std::string& request_file);
  // The transport-agnostic core: everything after parsing.
  ServeAnswer AnswerParsed(const ServeRequest& request);
  static ServeAnswer MakeError(const std::string& kind, const std::string& error);
  bool PublishSpoolAnswer(const std::string& stem, const std::string& request_path,
                          ServeAnswer answer);

  // --- resident store (store_mu_) ---
  // Returns the resident pinned (caller must wrap in a PinGuard) or
  // nullptr with `*error` set. Concurrent requests for the same name share
  // one load via call_once.
  std::shared_ptr<Resident> GetResident(const std::string& name, std::string* error);
  void LoadResident(const std::shared_ptr<Resident>& resident);
  std::shared_ptr<ContextBox> GetContext(const std::shared_ptr<Resident>& resident,
                                         double tac);
  void EvictResident(const std::string& name);
  void EvictResidentLocked(const std::string& name);
  void EnforceResidencyBudgetLocked();

  Result<std::string> ReadSpoolFileWithRetry(const std::string& path);

  // Picks the registry an input belongs to (base unless the extended
  // registry is configured and the input needs it).
  const TypeRegistry* RegistryForTrace(const Trace& trace) const;
  const TypeRegistry* RegistryForSnapshotBytes(std::string_view bytes) const;

  SpoolLayout layout_;
  const TypeRegistry* registry_;
  const TypeRegistry* extended_registry_ = nullptr;
  ServeServiceOptions options_;
  ImportJournal journal_;
  std::unique_ptr<RequestScheduler> scheduler_;

  // Guards the resident store: residents_, lru_, resident_bytes_, and
  // every Resident's pins/contexts.
  std::mutex store_mu_;
  std::list<std::string> lru_;  // Front = most recently used.
  std::map<std::string, std::shared_ptr<Resident>> residents_;
  uint64_t resident_bytes_ = 0;

  // Guards stats_ and zombies_.
  mutable std::mutex state_mu_;
  ServeStats stats_;
  std::vector<std::shared_ptr<WorkerHandle>> zombies_;
};

}  // namespace lockdoc

#endif  // SRC_SERVE_SERVICE_H_
