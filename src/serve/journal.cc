#include "src/serve/journal.h"

#include <cstdlib>

#include "src/util/file_io.h"
#include "src/util/string_util.h"

namespace lockdoc {

namespace {
constexpr char kJournalSuffix[] = ".job";
}  // namespace

std::string ImportJournal::PathFor(const std::string& name) const {
  return layout_->journal_dir + "/" + name + kJournalSuffix;
}

Status ImportJournal::Record(const JournalEntry& entry) {
  std::string text;
  text += KeyValueLine("source", entry.source);
  text += KeyValueLine("attempts", std::to_string(entry.attempts));
  return WriteFileAtomic(PathFor(entry.name), text);
}

Status ImportJournal::Clear(const std::string& name) {
  return RemoveFileIfExists(PathFor(name));
}

Result<std::vector<JournalEntry>> ImportJournal::Load() const {
  auto names = ListSpoolFiles(layout_->journal_dir, kJournalSuffix);
  if (!names.ok()) {
    return names.status();
  }
  std::vector<JournalEntry> entries;
  for (const std::string& file : names.value()) {
    JournalEntry entry;
    entry.name = file.substr(0, file.size() - (sizeof(kJournalSuffix) - 1));
    entry.attempts = kMaxImportAttempts;  // Saturated unless parseable below.
    auto text = ReadFileToString(layout_->journal_dir + "/" + file);
    if (text.ok()) {
      auto pairs = ParseKeyValueText(text.value());
      if (pairs.ok()) {
        for (const auto& [key, value] : pairs.value()) {
          if (key == "source") {
            entry.source = value;
          } else if (key == "attempts") {
            entry.attempts = static_cast<uint32_t>(std::atol(value.c_str()));
          }
        }
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace lockdoc
