#include "src/serve/spool.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "src/serve/crash_point.h"
#include "src/util/file_io.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

namespace fs = std::filesystem;

SpoolLayout MakeSpoolLayout(const std::string& spool_dir, const std::string& state_dir) {
  SpoolLayout layout;
  layout.spool_dir = spool_dir;
  layout.incoming_dir = spool_dir + "/incoming";
  layout.requests_dir = spool_dir + "/requests";
  layout.responses_dir = spool_dir + "/responses";
  layout.state_dir = state_dir.empty() ? spool_dir + "/state" : state_dir;
  layout.snapshots_dir = layout.state_dir + "/snapshots";
  layout.journal_dir = layout.state_dir + "/journal";
  layout.quarantine_dir = layout.state_dir + "/quarantine";
  return layout;
}

Status EnsureSpoolLayout(const SpoolLayout& layout) {
  std::error_code ec;
  if (!fs::is_directory(layout.spool_dir, ec)) {
    return Status::Error("spool dir is not a directory: " + layout.spool_dir);
  }
  for (const std::string* dir :
       {&layout.incoming_dir, &layout.requests_dir, &layout.responses_dir, &layout.state_dir,
        &layout.snapshots_dir, &layout.journal_dir, &layout.quarantine_dir}) {
    fs::create_directories(*dir, ec);
    if (ec || !fs::is_directory(*dir)) {
      return Status::Error("cannot create directory: " + *dir);
    }
  }
  // Probe writability once up front: discovering a read-only state dir on
  // the first import would turn every input into a spurious quarantine.
  std::string probe = layout.state_dir + "/.probe";
  Status status = WriteFileAtomic(probe, "probe\n");
  if (!status.ok()) {
    return Status::Error("state dir is not writable: " + status.message());
  }
  return RemoveFileIfExists(probe);
}

Result<std::vector<std::string>> ListSpoolFiles(const std::string& dir,
                                                std::string_view suffix) {
  std::error_code ec;
  std::vector<std::string> names;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::Error(StrFormat("cannot list %s: %s", dir.c_str(),
                                   ec.message().c_str()));
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) {
      continue;
    }
    std::string name = entry.path().filename().string();
    if (name.rfind(kAtomicTempPrefix, 0) == 0) {
      continue;  // In-flight atomic write (or debris from a crash).
    }
    if (!suffix.empty()) {
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
        continue;
      }
    }
    names.push_back(std::move(name));
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status QuarantineFile(const SpoolLayout& layout, const std::string& dir,
                      const std::string& name, const std::string& kind,
                      const std::string& detail, const std::string& hint) {
  std::string reason;
  reason += KeyValueLine("kind", kind);
  reason += KeyValueLine("file", name);
  reason += KeyValueLine("detail", detail);
  if (!hint.empty()) {
    reason += KeyValueLine("hint", hint);
  }
  Status status = WriteFileAtomic(layout.quarantine_dir + "/" + name + ".reason", reason);
  if (!status.ok()) {
    return status;
  }
  ServeCrashPoint("quarantine-reason-written");
  status = RenameFile(dir + "/" + name, layout.quarantine_dir + "/" + name);
  if (!status.ok()) {
    return status;
  }
  ServeCrashPoint("quarantined");
  return Status::Ok();
}

Result<std::vector<std::pair<std::string, std::string>>> ParseKeyValueText(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> pairs;
  size_t line_no = 0;
  for (const std::string& raw : SplitAndTrim(text, '\n')) {
    ++line_no;
    if (raw.empty() || raw[0] == '#') {
      continue;
    }
    size_t eq = raw.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::Error(StrFormat("line %zu: expected key=value, got \"%s\"", line_no,
                                     raw.c_str()));
    }
    pairs.emplace_back(raw.substr(0, eq), raw.substr(eq + 1));
  }
  return pairs;
}

std::string KeyValueLine(std::string_view key, std::string_view value) {
  LOCKDOC_CHECK(value.find('\n') == std::string_view::npos);
  std::string line(key);
  line += '=';
  line += value;
  line += '\n';
  return line;
}

}  // namespace lockdoc
