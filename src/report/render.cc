#include "src/report/render.h"

namespace lockdoc {

std::optional<ReportFormat> ParseReportFormat(std::string_view name) {
  if (name == "text") {
    return ReportFormat::kText;
  }
  if (name == "json") {
    return ReportFormat::kJson;
  }
  if (name == "html") {
    return ReportFormat::kHtml;
  }
  return std::nullopt;
}

std::string_view ReportFormatName(ReportFormat format) {
  switch (format) {
    case ReportFormat::kText:
      return "text";
    case ReportFormat::kJson:
      return "json";
    case ReportFormat::kHtml:
      return "html";
  }
  return "text";
}

std::string_view ReportFormatExtension(ReportFormat format) {
  switch (format) {
    case ReportFormat::kText:
      return "txt";
    case ReportFormat::kJson:
      return "json";
    case ReportFormat::kHtml:
      return "html";
  }
  return "txt";
}

std::string RenderReportDocument(const ReportDocument& doc, ReportFormat format) {
  switch (format) {
    case ReportFormat::kText:
      return RenderReportText(doc);
    case ReportFormat::kJson:
      return RenderReportJson(doc);
    case ReportFormat::kHtml:
      return RenderReportHtml(doc);
  }
  return RenderReportText(doc);
}

}  // namespace lockdoc
