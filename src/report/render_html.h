// The HTML renderer: a self-contained, human-browsable projection of the
// report IR (no external assets, deterministic bytes). Sections become
// <section> elements, text nodes <pre> blocks, tables real <table>s and
// counterexample groups structured cards with held-lock provenance and the
// nearest complying access — the lock_trace-style report the paper's
// forensics workflow assumes.
#ifndef SRC_REPORT_RENDER_HTML_H_
#define SRC_REPORT_RENDER_HTML_H_

#include <string>
#include <string_view>

#include "src/report/ir.h"

namespace lockdoc {

std::string RenderReportHtml(const ReportDocument& doc);

// HTML entity escaping for text content and attribute values.
std::string HtmlEscape(std::string_view text);

}  // namespace lockdoc

#endif  // SRC_REPORT_RENDER_HTML_H_
