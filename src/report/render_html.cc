#include "src/report/render_html.h"

#include "src/util/string_util.h"

namespace lockdoc {
namespace {

constexpr char kStyle[] =
    "body{font-family:monospace;margin:1.5em;background:#fdfdfd;color:#222}\n"
    "h1{font-size:1.3em}h2{font-size:1.1em;border-bottom:1px solid #ccc}\n"
    "pre{background:#f4f4f4;padding:.5em;overflow-x:auto}\n"
    "table{border-collapse:collapse;margin:.5em 0}\n"
    "th,td{border:1px solid #bbb;padding:.2em .6em;text-align:left}\n"
    "th{background:#eee}\n"
    ".cex-group{border:1px solid #c99;background:#fff6f6;margin:.8em 0;"
    "padding:.4em .8em}\n"
    ".cex-group h3{margin:.2em 0;font-size:1em}\n"
    ".cex-group dt{font-weight:bold;float:left;clear:left;width:8em}\n"
    ".cex-group dd{margin-left:9em}\n"
    ".nearest{background:#f2fff2;border:1px solid #9c9;padding:.3em .6em}\n";

void AppendUintRow(std::string& out, const char* label, uint64_t value) {
  out += StrFormat("<dt>%s</dt><dd>%llu</dd>", label,
                   static_cast<unsigned long long>(value));
}

void AppendRow(std::string& out, const char* label, const std::string& value) {
  out += "<dt>";
  out += label;
  out += "</dt><dd>";
  out += HtmlEscape(value);
  out += "</dd>";
}

void AppendTextNode(std::string& out, const ReportNode& node) {
  out += "<pre";
  if (!node.id.empty()) {
    out += " class=\"" + HtmlEscape(node.id) + "\"";
  }
  out += ">";
  out += HtmlEscape(node.text);
  out += "</pre>\n";
}

void AppendTableNode(std::string& out, const ReportTableData& table) {
  out += "<table";
  if (!table.id.empty()) {
    out += " id=\"" + HtmlEscape(table.id) + "\"";
  }
  out += ">\n<thead><tr>";
  for (const std::string& column : table.columns) {
    out += "<th>" + HtmlEscape(column) + "</th>";
  }
  out += "</tr></thead>\n<tbody>\n";
  for (const std::vector<std::string>& row : table.rows) {
    out += "<tr>";
    for (const std::string& cell : row) {
      out += "<td>" + HtmlEscape(cell) + "</td>";
    }
    out += "</tr>\n";
  }
  out += "</tbody>\n</table>\n";
}

void AppendCexGroupNode(std::string& out, const CexGroupData& cex) {
  out += "<div class=\"cex-group\">\n";
  out += StrFormat("<h3>#%llu %s [%s] &mdash; %llu events</h3>\n",
                   static_cast<unsigned long long>(cex.rank),
                   HtmlEscape(cex.member).c_str(), HtmlEscape(cex.access).c_str(),
                   static_cast<unsigned long long>(cex.events));
  out += "<dl>";
  AppendRow(out, "rule", cex.rule);
  AppendRow(out, "held", cex.held);
  AppendRow(out, "at", cex.location);
  AppendUintRow(out, "seq", cex.representative_seq);
  out += "</dl>\n";
  if (!cex.frames.empty()) {
    out += "<p>call stack (innermost first):</p>\n<ol class=\"stack\">\n";
    for (const std::string& frame : cex.frames) {
      out += "<li>" + HtmlEscape(frame) + "</li>\n";
    }
    out += "</ol>\n";
  } else {
    out += "<p>call stack: " + HtmlEscape(cex.stack) + "</p>\n";
  }
  if (!cex.held_locks.empty()) {
    out += "<table class=\"held-locks\">\n<thead><tr><th>held lock</th><th>mode</th>"
           "<th>acquired at</th></tr></thead>\n<tbody>\n";
    for (const HeldLockDetail& lock : cex.held_locks) {
      out += "<tr><td>" + HtmlEscape(lock.lock) + "</td><td>" + HtmlEscape(lock.mode) +
             "</td><td>" + HtmlEscape(lock.acquired_at) + "</td></tr>\n";
    }
    out += "</tbody>\n</table>\n";
  }
  if (cex.nearest_complying.present) {
    const NearestComplyingAccess& near = cex.nearest_complying;
    out += StrFormat(
        "<p class=\"nearest\">nearest complying access: seq %llu "
        "(distance %llu) at %s holding %s<br>stack: %s</p>\n",
        static_cast<unsigned long long>(near.seq),
        static_cast<unsigned long long>(near.distance),
        HtmlEscape(near.location).c_str(), HtmlEscape(near.held).c_str(),
        HtmlEscape(near.stack).c_str());
  } else {
    out += "<p class=\"nearest\">no complying access of this type was observed</p>\n";
  }
  out += "</div>\n";
}

}  // namespace

std::string HtmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&#39;";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

std::string RenderReportHtml(const ReportDocument& doc) {
  std::string out = "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  out += "<title>lockdoc " + HtmlEscape(doc.pass) + " report</title>\n";
  out += "<style>\n";
  out += kStyle;
  out += "</style>\n</head>\n<body>\n";
  out += "<h1>lockdoc " + HtmlEscape(doc.pass) + "</h1>\n";
  for (const ReportSection& section : doc.sections) {
    out += "<section id=\"" + HtmlEscape(section.id) + "\">\n";
    if (section.heading) {
      out += "<h2>" + HtmlEscape(section.title) + "</h2>\n";
    }
    for (const ReportNode& node : section.nodes) {
      switch (node.kind) {
        case ReportNodeKind::kText:
          if (!node.decoration) {
            AppendTextNode(out, node);
          }
          break;
        case ReportNodeKind::kTable:
          AppendTableNode(out, node.table);
          break;
        case ReportNodeKind::kCexGroup:
          AppendCexGroupNode(out, node.cex);
          break;
      }
    }
    out += "</section>\n";
  }
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace lockdoc
