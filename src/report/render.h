// Format dispatch for the report IR: one enum, strict parsing (unknown
// names are typed errors at every entry point — CLI exit 64, serve
// bad-request), and one Render function fanning out to the per-format
// renderers.
#ifndef SRC_REPORT_RENDER_H_
#define SRC_REPORT_RENDER_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/report/ir.h"
#include "src/report/render_html.h"
#include "src/report/render_json.h"
#include "src/report/render_text.h"

namespace lockdoc {

enum class ReportFormat {
  kText,
  kJson,
  kHtml,
};

// "text" / "json" / "html"; nullopt for anything else.
std::optional<ReportFormat> ParseReportFormat(std::string_view name);

std::string_view ReportFormatName(ReportFormat format);

// File extension (without the dot) for --out-dir emission: txt/json/html.
std::string_view ReportFormatExtension(ReportFormat format);

std::string RenderReportDocument(const ReportDocument& doc, ReportFormat format);

}  // namespace lockdoc

#endif  // SRC_REPORT_RENDER_H_
