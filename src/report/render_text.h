// The text renderer — the byte-compat anchor of the report IR. For every
// document a pre-IR pass would have produced, RenderReportText emits the
// exact bytes the pass's ad-hoc rendering used to print; all golden tests
// and the serve cmp-contract rest on this.
#ifndef SRC_REPORT_RENDER_TEXT_H_
#define SRC_REPORT_RENDER_TEXT_H_

#include <string>

#include "src/report/ir.h"

namespace lockdoc {

std::string RenderReportText(const ReportDocument& doc);

// The classic "\n== title ====...\n\n" section banner, shared with callers
// that still compose plain text around report sections.
std::string ReportHeading(const std::string& title);

}  // namespace lockdoc

#endif  // SRC_REPORT_RENDER_TEXT_H_
