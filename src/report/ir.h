// The structured report IR — the single output artifact every analysis
// pass produces (DESIGN.md 4j).
//
// Phase-3 passes used to render ad-hoc std::strings; the IR replaces that
// with a typed document (sections of text, table and counterexample-group
// nodes) produced once per pass and consumed by pluggable renderers
// (render_text / render_json / render_html). The text renderer is the
// byte-compat anchor: it reproduces the historical stdout bytes exactly,
// so the IR can carry strictly more structure (fields, forensic payloads)
// without disturbing any golden or serve cmp-contract.
//
// Only three node kinds exist, by design:
//   kText      — verbatim bytes for the text renderer, plus an optional
//                key=value `fields` view for the structured renderers and
//                a `decoration` flag marking pure-layout whitespace that
//                JSON/HTML omit.
//   kTable     — columns + rows; each renderer lays the table out itself.
//   kCexGroup  — one counterexample group of the violation forensics:
//                the classic member/rule/held/location/stack record plus
//                held-lock provenance, the nearest complying access, and
//                an evidence rank. The text renderer prints only the
//                classic record (byte-compat); JSON/HTML print everything.
#ifndef SRC_REPORT_IR_H_
#define SRC_REPORT_IR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lockdoc {

enum class ReportNodeKind {
  kText,
  kTable,
  kCexGroup,
};

// kTable payload. An empty `id` is allowed but discouraged; stable ids let
// downstream consumers find a table without parsing its title out of text.
struct ReportTableData {
  std::string id;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

// One lock held at the violating access, in acquisition order, classified
// relative to the accessed allocation (same scoping as the rule notation:
// EMBSAME/EMBOTHER/global). The acquisition site comes from the txn_locks
// table; the trace records no acquisition stacks, so `acquired_at` is a
// "file:line" string (see docs/forensics.md).
struct HeldLockDetail {
  std::string lock;         // Lock-class notation, e.g. "ES(i_lock in inode)".
  std::string mode;         // "shared" or "exclusive".
  std::string acquired_at;  // "file:line" of the acquisition.
};

// The complying access nearest (by trace seq distance) to a group's
// representative violating access — the contrast a developer diffs against.
struct NearestComplyingAccess {
  bool present = false;   // False when no complying access of this type exists.
  uint64_t seq = 0;       // Trace seq of the complying access.
  uint64_t distance = 0;  // |seq - representative violating seq|.
  std::string location;   // "file:line".
  std::string stack;      // Innermost-first call stack.
  std::string held;       // Locks held at the complying access.
};

// kCexGroup payload: one (member, access, rule, held, location, stack)
// context with all violating events aggregated, plus forensics.
struct CexGroupData {
  std::string member;    // "inode:ext4.i_hash"
  std::string access;    // "r"/"w"
  std::string rule;      // The violated winning rule.
  std::string held;      // The locks actually held.
  std::string location;  // "fs/inode.c:507"
  std::string stack;     // Innermost-first call stack, rendered.
  uint64_t events = 0;   // Violating events at this context.
  uint64_t rank = 0;     // 1-based evidence rank (1 = most events).
  uint64_t representative_seq = 0;       // The earliest violating trace seq.
  std::vector<std::string> frames;       // Stack frames, innermost first.
  std::vector<HeldLockDetail> held_locks;
  NearestComplyingAccess nearest_complying;
  // Text-renderer style: the report's violation section separates groups
  // with a leading blank line; the standalone violations pass uses a
  // trailing one. Bytes, not semantics.
  bool report_style = false;
};

struct ReportNode {
  ReportNodeKind kind = ReportNodeKind::kText;
  // Optional stable identifier ("violation-summary", "truncation", ...).
  std::string id;

  // kText: the exact bytes the text renderer emits.
  std::string text;
  // kText: pure-layout whitespace (blank separator lines); JSON/HTML skip.
  bool decoration = false;
  // kText: structured key=value view of `text` for JSON/HTML consumers.
  std::vector<std::pair<std::string, std::string>> fields;

  ReportTableData table;  // kTable
  CexGroupData cex;       // kCexGroup
};

// A section groups nodes; `heading == true` renders the classic
// "\n== title ===...\n\n" banner in text and a <h2>/named object elsewhere.
struct ReportSection {
  std::string id;
  std::string title;
  bool heading = false;
  std::vector<ReportNode> nodes;
};

struct ReportDocument {
  std::string pass;  // The producing pass name ("violations", "report", ...).
  std::vector<ReportSection> sections;
};

// --- builder helpers (all return a reference into the document) ---

ReportSection& AddSection(ReportDocument& doc, std::string id);
ReportSection& AddHeadedSection(ReportDocument& doc, std::string id, std::string title);

ReportNode& AddText(ReportSection& section, std::string text);
ReportNode& AddTextNode(ReportSection& section, std::string id, std::string text);
// A pure-layout text node (blank separator lines) skipped by JSON/HTML.
ReportNode& AddDecoration(ReportSection& section, std::string text);
ReportNode& AddTable(ReportSection& section, std::string id,
                     std::vector<std::string> columns);
ReportNode& AddCexGroup(ReportSection& section, CexGroupData group);

}  // namespace lockdoc

#endif  // SRC_REPORT_IR_H_
