#include "src/report/render_json.h"

#include "src/util/string_util.h"

namespace lockdoc {
namespace {

void AppendQuoted(std::string& out, std::string_view text) {
  out += '"';
  out += JsonEscape(text);
  out += '"';
}

void AppendKey(std::string& out, std::string_view key) {
  AppendQuoted(out, key);
  out += ": ";
}

void AppendStringField(std::string& out, std::string_view indent, std::string_view key,
                       std::string_view value, bool trailing_comma) {
  out += indent;
  AppendKey(out, key);
  AppendQuoted(out, value);
  out += trailing_comma ? ",\n" : "\n";
}

void AppendUintField(std::string& out, std::string_view indent, std::string_view key,
                     uint64_t value, bool trailing_comma) {
  out += indent;
  AppendKey(out, key);
  out += StrFormat("%llu", static_cast<unsigned long long>(value));
  out += trailing_comma ? ",\n" : "\n";
}

void AppendTextNode(std::string& out, const ReportNode& node, const std::string& indent) {
  const std::string inner = indent + "  ";
  out += indent + "{\n";
  AppendStringField(out, inner, "type", "text", true);
  if (!node.id.empty()) {
    AppendStringField(out, inner, "id", node.id, true);
  }
  AppendStringField(out, inner, "text", node.text, !node.fields.empty());
  if (!node.fields.empty()) {
    out += inner;
    AppendKey(out, "fields");
    out += "{\n";
    for (size_t i = 0; i < node.fields.size(); ++i) {
      AppendStringField(out, inner + "  ", node.fields[i].first, node.fields[i].second,
                        i + 1 < node.fields.size());
    }
    out += inner + "}\n";
  }
  out += indent + "}";
}

void AppendTableNode(std::string& out, const ReportNode& node, const std::string& indent) {
  const std::string inner = indent + "  ";
  out += indent + "{\n";
  AppendStringField(out, inner, "type", "table", true);
  AppendStringField(out, inner, "id", node.table.id, true);
  out += inner;
  AppendKey(out, "columns");
  out += "[";
  for (size_t i = 0; i < node.table.columns.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    AppendQuoted(out, node.table.columns[i]);
  }
  out += "],\n";
  out += inner;
  AppendKey(out, "rows");
  if (node.table.rows.empty()) {
    out += "[]\n";
  } else {
    out += "[\n";
    for (size_t r = 0; r < node.table.rows.size(); ++r) {
      out += inner + "  [";
      const std::vector<std::string>& row = node.table.rows[r];
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) {
          out += ", ";
        }
        AppendQuoted(out, row[c]);
      }
      out += r + 1 < node.table.rows.size() ? "],\n" : "]\n";
    }
    out += inner + "]\n";
  }
  out += indent + "}";
}

void AppendCexGroupNode(std::string& out, const CexGroupData& cex,
                        const std::string& indent) {
  const std::string inner = indent + "  ";
  out += indent + "{\n";
  AppendStringField(out, inner, "type", "counterexample-group", true);
  AppendUintField(out, inner, "rank", cex.rank, true);
  AppendStringField(out, inner, "member", cex.member, true);
  AppendStringField(out, inner, "access", cex.access, true);
  AppendStringField(out, inner, "rule", cex.rule, true);
  AppendStringField(out, inner, "held", cex.held, true);
  AppendStringField(out, inner, "location", cex.location, true);
  AppendUintField(out, inner, "events", cex.events, true);
  AppendUintField(out, inner, "representative_seq", cex.representative_seq, true);
  out += inner;
  AppendKey(out, "stack");
  out += "[";
  for (size_t i = 0; i < cex.frames.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    AppendQuoted(out, cex.frames[i]);
  }
  out += "],\n";
  out += inner;
  AppendKey(out, "held_locks");
  if (cex.held_locks.empty()) {
    out += "[],\n";
  } else {
    out += "[\n";
    for (size_t i = 0; i < cex.held_locks.size(); ++i) {
      const HeldLockDetail& lock = cex.held_locks[i];
      const std::string lock_indent = inner + "  ";
      out += lock_indent + "{\n";
      AppendStringField(out, lock_indent + "  ", "lock", lock.lock, true);
      AppendStringField(out, lock_indent + "  ", "mode", lock.mode, true);
      AppendStringField(out, lock_indent + "  ", "acquired_at", lock.acquired_at, false);
      out += lock_indent + (i + 1 < cex.held_locks.size() ? "},\n" : "}\n");
    }
    out += inner + "],\n";
  }
  out += inner;
  AppendKey(out, "nearest_complying");
  if (!cex.nearest_complying.present) {
    out += "null\n";
  } else {
    const NearestComplyingAccess& near = cex.nearest_complying;
    out += "{\n";
    AppendUintField(out, inner + "  ", "seq", near.seq, true);
    AppendUintField(out, inner + "  ", "distance", near.distance, true);
    AppendStringField(out, inner + "  ", "location", near.location, true);
    AppendStringField(out, inner + "  ", "stack", near.stack, true);
    AppendStringField(out, inner + "  ", "held", near.held, false);
    out += inner + "}\n";
  }
  out += indent + "}";
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::string RenderReportJson(const ReportDocument& doc) {
  std::string out = "{\n";
  AppendStringField(out, "  ", "schema", "lockdoc-report-v1", true);
  AppendStringField(out, "  ", "pass", doc.pass, true);
  out += "  ";
  AppendKey(out, "sections");
  if (doc.sections.empty()) {
    out += "[]\n";
  } else {
    out += "[\n";
    for (size_t s = 0; s < doc.sections.size(); ++s) {
      const ReportSection& section = doc.sections[s];
      out += "    {\n";
      AppendStringField(out, "      ", "id", section.id, true);
      if (section.heading) {
        AppendStringField(out, "      ", "title", section.title, true);
      }
      out += "      ";
      AppendKey(out, "nodes");
      // Decoration nodes are pure text layout; they carry no content.
      std::vector<const ReportNode*> nodes;
      for (const ReportNode& node : section.nodes) {
        if (node.kind == ReportNodeKind::kText && node.decoration) {
          continue;
        }
        nodes.push_back(&node);
      }
      if (nodes.empty()) {
        out += "[]\n";
      } else {
        out += "[\n";
        for (size_t n = 0; n < nodes.size(); ++n) {
          const ReportNode& node = *nodes[n];
          switch (node.kind) {
            case ReportNodeKind::kText:
              AppendTextNode(out, node, "        ");
              break;
            case ReportNodeKind::kTable:
              AppendTableNode(out, node, "        ");
              break;
            case ReportNodeKind::kCexGroup:
              AppendCexGroupNode(out, node.cex, "        ");
              break;
          }
          out += n + 1 < nodes.size() ? ",\n" : "\n";
        }
        out += "      ]\n";
      }
      out += s + 1 < doc.sections.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n";
  }
  out += "}\n";
  return out;
}

}  // namespace lockdoc
