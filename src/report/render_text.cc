#include "src/report/render_text.h"

#include <algorithm>

#include "src/util/stats.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

std::string RenderCexGroupText(const CexGroupData& cex) {
  std::string body = StrFormat(
      "%s [%s]\n  rule: %s\n  held: %s\n  at %s (%llu events)\n  stack: %s\n",
      cex.member.c_str(), cex.access.c_str(), cex.rule.c_str(), cex.held.c_str(),
      cex.location.c_str(), static_cast<unsigned long long>(cex.events), cex.stack.c_str());
  // Report style separates groups with a leading blank line; the standalone
  // violations pass with a trailing one. Same bytes as the pre-IR renderers.
  return cex.report_style ? "\n" + body : body + "\n";
}

}  // namespace

std::string ReportHeading(const std::string& title) {
  return "\n== " + title + " " + std::string(72 - std::min<size_t>(68, title.size()), '=') +
         "\n\n";
}

std::string RenderReportText(const ReportDocument& doc) {
  std::string out;
  for (const ReportSection& section : doc.sections) {
    if (section.heading) {
      out += ReportHeading(section.title);
    }
    for (const ReportNode& node : section.nodes) {
      switch (node.kind) {
        case ReportNodeKind::kText:
          out += node.text;
          break;
        case ReportNodeKind::kTable: {
          TextTable table(node.table.columns);
          for (const std::vector<std::string>& row : node.table.rows) {
            table.AddRow(row);
          }
          out += table.ToString();
          break;
        }
        case ReportNodeKind::kCexGroup:
          out += RenderCexGroupText(node.cex);
          break;
      }
    }
  }
  return out;
}

}  // namespace lockdoc
