// The JSON renderer: a machine-readable projection of the report IR.
//
// Document shape (schema "lockdoc-report-v1", see docs/forensics.md):
//
//   {
//     "schema": "lockdoc-report-v1",
//     "pass": "<pass name>",
//     "sections": [
//       { "id": "...", "title": "...",        // title only for headed sections
//         "nodes": [
//           { "type": "text", "id": "...", "text": "...",
//             "fields": { "k": "v", ... } },  // id/fields only when present
//           { "type": "table", "id": "...",
//             "columns": [...], "rows": [[...], ...] },
//           { "type": "counterexample-group", "rank": N, "member": "...",
//             "access": "...", "rule": "...", "held": "...",
//             "location": "...", "events": N, "representative_seq": N,
//             "stack": ["innermost", ...],
//             "held_locks": [ { "lock": "...", "mode": "...",
//                               "acquired_at": "..." }, ... ],
//             "nearest_complying": null |
//               { "seq": N, "distance": N, "location": "...",
//                 "stack": "...", "held": "..." } }
//         ] }
//     ]
//   }
//
// Decoration text nodes (pure layout whitespace) are omitted. Key order is
// fixed and output is deterministic: the same document always renders the
// same bytes, preserving the jobs-1/2/8 and serve cmp contracts.
#ifndef SRC_REPORT_RENDER_JSON_H_
#define SRC_REPORT_RENDER_JSON_H_

#include <string>
#include <string_view>

#include "src/report/ir.h"

namespace lockdoc {

std::string RenderReportJson(const ReportDocument& doc);

// JSON string escaping (quotes, backslash, control characters as \u00XX).
std::string JsonEscape(std::string_view text);

}  // namespace lockdoc

#endif  // SRC_REPORT_RENDER_JSON_H_
