#include "src/report/ir.h"

namespace lockdoc {

ReportSection& AddSection(ReportDocument& doc, std::string id) {
  ReportSection section;
  section.id = std::move(id);
  doc.sections.push_back(std::move(section));
  return doc.sections.back();
}

ReportSection& AddHeadedSection(ReportDocument& doc, std::string id, std::string title) {
  ReportSection& section = AddSection(doc, std::move(id));
  section.title = std::move(title);
  section.heading = true;
  return section;
}

ReportNode& AddText(ReportSection& section, std::string text) {
  ReportNode node;
  node.kind = ReportNodeKind::kText;
  node.text = std::move(text);
  section.nodes.push_back(std::move(node));
  return section.nodes.back();
}

ReportNode& AddTextNode(ReportSection& section, std::string id, std::string text) {
  ReportNode& node = AddText(section, std::move(text));
  node.id = std::move(id);
  return node;
}

ReportNode& AddDecoration(ReportSection& section, std::string text) {
  ReportNode& node = AddText(section, std::move(text));
  node.decoration = true;
  return node;
}

ReportNode& AddTable(ReportSection& section, std::string id,
                     std::vector<std::string> columns) {
  ReportNode node;
  node.kind = ReportNodeKind::kTable;
  node.id = id;
  node.table.id = std::move(id);
  node.table.columns = std::move(columns);
  section.nodes.push_back(std::move(node));
  return section.nodes.back();
}

ReportNode& AddCexGroup(ReportSection& section, CexGroupData group) {
  ReportNode node;
  node.kind = ReportNodeKind::kCexGroup;
  node.id = "counterexample-group";
  node.cex = std::move(group);
  section.nodes.push_back(std::move(node));
  return section.nodes.back();
}

}  // namespace lockdoc
