// Observation hooks the simulated kernel reports into. Keeping these as
// interfaces decouples the simulator from the coverage tracker (and any
// future consumers) the way the paper's kernel instrumentation is decoupled
// from the FAIL* experiment implementation.
#ifndef SRC_SIM_HOOKS_H_
#define SRC_SIM_HOOKS_H_

#include <cstdint>
#include <string_view>

namespace lockdoc {

// Receives function-entry and line-execution notifications; implemented by
// the coverage module to reproduce the paper's GCOV measurement (Tab. 3).
class CoverageSink {
 public:
  virtual ~CoverageSink() = default;

  // A function body spans [first_line, last_line] in `file`.
  virtual void OnFunctionEnter(std::string_view file, std::string_view function,
                               uint32_t first_line, uint32_t last_line) = 0;
  // One executable line was reached.
  virtual void OnLineExecuted(std::string_view file, uint32_t line) = 0;
};

}  // namespace lockdoc

#endif  // SRC_SIM_HOOKS_H_
