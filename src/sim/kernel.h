// SimKernel — the execution substrate the synthetic "kernel code" in
// src/vfs runs on. It plays the role of the instrumented Linux kernel plus
// the Bochs/FAIL* monitoring environment of the paper: every allocation,
// lock operation, and member access is appended to a Trace, together with
// the current execution context, source location, and call stack.
//
// The model is a single CPU (the paper traces a single-core VM): kernel
// control flows are serialized, interrupt handlers nest on top of the
// interrupted flow and run to completion. Workload drivers run one kernel
// operation at a time per simulated task; the kernel self-checks that no
// locks leak across operation boundaries.
#ifndef SRC_SIM_KERNEL_H_
#define SRC_SIM_KERNEL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/model/ids.h"
#include "src/model/lock_type.h"
#include "src/model/type_registry.h"
#include "src/sim/hooks.h"
#include "src/trace/trace.h"
#include "src/util/rng.h"

namespace lockdoc {

// A handle to one live simulated kernel object.
struct ObjectRef {
  Address addr = 0;
  TypeId type = kInvalidTypeId;
  SubclassId subclass = kNoSubclass;

  bool valid() const { return addr != 0; }
};

// A handle to a statically allocated (global) lock.
struct GlobalLock {
  Address addr = 0;
  LockType type = LockType::kSpinlock;
};

// RAII function frame: pushes onto the simulated call stack, sets the
// current source file, and reports to the coverage sink.
class FunctionScope;

class SimKernel {
 public:
  // `trace` receives all events; `registry` supplies layouts. Both must
  // outlive the kernel. `coverage` may be null.
  SimKernel(Trace* trace, const TypeRegistry* registry, CoverageSink* coverage = nullptr);
  ~SimKernel();

  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  // --- Static and pseudo locks ---

  // Defines a global lock; emits a kStaticLockDef event so analysis can
  // resolve the address back to the name.
  GlobalLock DefineStaticLock(const std::string& name, LockType type);

  void LockGlobal(const GlobalLock& lock, uint32_t line,
                  AcquireMode mode = AcquireMode::kExclusive);
  void UnlockGlobal(const GlobalLock& lock, uint32_t line);
  // Non-blocking acquisition: returns false (and does nothing) when the lock
  // is already held by the interrupted control flow. Interrupt handlers use
  // this to avoid self-deadlock on the single simulated CPU.
  bool TryLockGlobal(const GlobalLock& lock, uint32_t line,
                     AcquireMode mode = AcquireMode::kExclusive);

  // Pseudo locks (Sec. 7.1: "we record lock/release events for synthetic
  // softirq and hardirq locks"; RCU read sections are traced the same way).
  // All three nest (a counter per pseudo lock).
  void RcuReadLock(uint32_t line);
  void RcuReadUnlock(uint32_t line);
  void LocalBhDisable(uint32_t line);
  void LocalBhEnable(uint32_t line);
  void LocalIrqDisable(uint32_t line);
  void LocalIrqEnable(uint32_t line);

  // --- Objects (instrumented allocator) ---

  ObjectRef Create(TypeId type, SubclassId subclass, uint32_t line);
  // Like Create, but records the ground-truth resource span the object
  // represents (e.g. a vma's [vm_start, vm_end)) on the kAlloc event, so
  // analysis can decide which range-lock holds cover accesses to it.
  ObjectRef CreateWithSpan(TypeId type, SubclassId subclass, uint64_t span_start,
                           uint64_t span_end, uint32_t line);
  void Destroy(const ObjectRef& obj, uint32_t line);

  // --- Embedded locks (lock members of live objects) ---

  void Lock(const ObjectRef& obj, MemberIndex lock_member, uint32_t line,
            AcquireMode mode = AcquireMode::kExclusive);
  void Unlock(const ObjectRef& obj, MemberIndex lock_member, uint32_t line);
  // Non-blocking variant of Lock; see TryLockGlobal.
  bool TryLock(const ObjectRef& obj, MemberIndex lock_member, uint32_t line,
               AcquireMode mode = AcquireMode::kExclusive);
  // True if the given embedded lock is currently held.
  bool IsHeld(const ObjectRef& obj, MemberIndex lock_member) const;

  // --- Range locks (embedded members of LockType::kRangeLock) ---
  //
  // One lock instance admits several simultaneous holds from the same
  // control flow as long as their [start, end) spans do not overlap (or
  // all overlapping holds are shared). Releases name the exact span they
  // acquired; the innermost matching hold is released.

  void AcquireRange(const ObjectRef& obj, MemberIndex lock_member, uint64_t start,
                    uint64_t end, uint32_t line, AcquireMode mode = AcquireMode::kExclusive);
  void ReleaseRange(const ObjectRef& obj, MemberIndex lock_member, uint64_t start,
                    uint64_t end, uint32_t line);

  // --- Member accesses ---

  void Read(const ObjectRef& obj, MemberIndex member, uint32_t line);
  void Write(const ObjectRef& obj, MemberIndex member, uint32_t line);
  // Atomic accessors: traced like plain accesses but within an
  // "atomic_read"/"atomic_set" frame, which the importer's function black
  // list filters out (Sec. 5.3 item 3).
  void AtomicRead(const ObjectRef& obj, MemberIndex member, uint32_t line);
  void AtomicWrite(const ObjectRef& obj, MemberIndex member, uint32_t line);

  // --- Execution contexts and interrupts ---

  // The id of the task whose control flow is currently simulated.
  void SetCurrentTask(uint32_t task_id) { current_task_ = task_id; }
  uint32_t current_task() const { return current_task_; }
  ContextKind current_context() const;
  bool in_interrupt() const { return current_context() != ContextKind::kTask; }

  using IrqHandler = std::function<void(SimKernel&)>;
  // Registers interrupt work; MaybeFireInterrupts picks handlers at random.
  void RegisterSoftirq(IrqHandler handler);
  void RegisterHardirq(IrqHandler handler);
  // Probability of an interrupt firing after each traced event.
  void SetInterruptRate(double probability, uint64_t seed);

  // Runs a handler inside the given interrupt context right now. Used both
  // internally and by workloads that want deterministic interrupt timing.
  void RunInInterrupt(ContextKind kind, const IrqHandler& handler);

  // --- Self-checks / bookkeeping ---

  // Number of locks currently held by the simulated CPU.
  size_t held_lock_count() const { return held_locks_.size(); }
  // CHECKs that no locks are held; called by workloads between operations.
  void CheckQuiescent() const;

  Trace* trace() { return trace_; }
  const TypeRegistry& registry() const { return *registry_; }

 private:
  friend class FunctionScope;

  struct HeldLock {
    Address addr = 0;
    LockType type = LockType::kSpinlock;
    // Nesting count; only pseudo locks may exceed 1.
    uint32_t depth = 1;
    // Context-stack depth at acquisition, to detect locks leaking out of
    // interrupt handlers.
    uint32_t context_depth = 0;
    // Range-lock holds: the locked span and its acquisition mode. Non-range
    // holds keep has_range false and lock the whole instance.
    bool has_range = false;
    uint64_t range_start = 0;
    uint64_t range_end = 0;
    AcquireMode mode = AcquireMode::kExclusive;
  };

  void PushFrame(std::string_view file, std::string_view function);
  void PopFrame();

  SourceLoc Here(uint32_t line) const;
  StackId CurrentStack();
  TraceEvent BaseEvent(EventKind kind, uint32_t line);
  void Emit(TraceEvent event);

  void AcquireInternal(Address lock_addr, LockType type, AcquireMode mode, uint32_t line);
  void ReleaseInternal(Address lock_addr, LockType type, uint32_t line);
  void AcquireRangeInternal(Address lock_addr, uint64_t start, uint64_t end, AcquireMode mode,
                            uint32_t line);
  void ReleaseRangeInternal(Address lock_addr, uint64_t start, uint64_t end, uint32_t line);
  bool IsHeldAddr(Address lock_addr) const;
  void AccessInternal(const ObjectRef& obj, MemberIndex member, bool is_write, uint32_t line);

  void MaybeFireInterrupts();

  Trace* trace_;
  const TypeRegistry* registry_;
  CoverageSink* coverage_;

  // Address space management.
  Address next_static_addr_;
  Address next_heap_addr_;
  std::map<uint32_t, std::vector<Address>> free_lists_;  // size -> reusable addrs
  std::map<Address, uint32_t> live_allocations_;         // addr -> size

  // Execution state.
  uint32_t current_task_ = 0;
  std::vector<ContextKind> context_stack_;  // Empty == plain task context.
  std::vector<HeldLock> held_locks_;

  // Call stack: outermost frame first; interned lazily, cache invalidated on
  // push/pop.
  struct Frame {
    StringId file;
    StringId function;
  };
  std::vector<Frame> frames_;
  StackId cached_stack_ = kInvalidStack;
  bool stack_dirty_ = true;

  // Pseudo locks.
  GlobalLock rcu_lock_;
  GlobalLock softirq_lock_;
  GlobalLock hardirq_lock_;

  // Interrupt machinery.
  std::vector<IrqHandler> softirq_handlers_;
  std::vector<IrqHandler> hardirq_handlers_;
  double interrupt_rate_ = 0.0;
  Rng irq_rng_;
  bool firing_interrupt_ = false;
};

class FunctionScope {
 public:
  // `first_line`/`last_line` delimit the function body for coverage
  // accounting.
  FunctionScope(SimKernel& kernel, std::string_view file, std::string_view function,
                uint32_t first_line, uint32_t last_line);
  ~FunctionScope();

  FunctionScope(const FunctionScope&) = delete;
  FunctionScope& operator=(const FunctionScope&) = delete;

 private:
  SimKernel& kernel_;
};

}  // namespace lockdoc

#endif  // SRC_SIM_KERNEL_H_
