#include "src/sim/kernel.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lockdoc {
namespace {

// Address-space layout of the simulated kernel: static locks live low,
// the heap high. Addresses never collide; zero is reserved as "invalid".
constexpr Address kStaticBase = 0x1000;
constexpr Address kStaticStride = 16;
constexpr Address kHeapBase = 0x100000000ULL;
constexpr Address kHeapAlign = 64;

Address AlignUp(Address addr, Address alignment) {
  return (addr + alignment - 1) & ~(alignment - 1);
}

}  // namespace

SimKernel::SimKernel(Trace* trace, const TypeRegistry* registry, CoverageSink* coverage)
    : trace_(trace),
      registry_(registry),
      coverage_(coverage),
      next_static_addr_(kStaticBase),
      next_heap_addr_(kHeapBase),
      irq_rng_(0) {
  LOCKDOC_CHECK(trace_ != nullptr);
  LOCKDOC_CHECK(registry_ != nullptr);
  rcu_lock_ = DefineStaticLock("rcu", LockType::kRcu);
  softirq_lock_ = DefineStaticLock("softirq", LockType::kSoftirq);
  hardirq_lock_ = DefineStaticLock("hardirq", LockType::kHardirq);
}

SimKernel::~SimKernel() = default;

GlobalLock SimKernel::DefineStaticLock(const std::string& name, LockType type) {
  GlobalLock lock;
  lock.addr = next_static_addr_;
  lock.type = type;
  next_static_addr_ += kStaticStride;

  TraceEvent event = BaseEvent(EventKind::kStaticLockDef, 0);
  event.addr = lock.addr;
  event.lock_type = type;
  event.name = trace_->InternString(name);
  Emit(event);
  return lock;
}

void SimKernel::LockGlobal(const GlobalLock& lock, uint32_t line, AcquireMode mode) {
  AcquireInternal(lock.addr, lock.type, mode, line);
}

void SimKernel::UnlockGlobal(const GlobalLock& lock, uint32_t line) {
  ReleaseInternal(lock.addr, lock.type, line);
}

bool SimKernel::TryLockGlobal(const GlobalLock& lock, uint32_t line, AcquireMode mode) {
  if (IsHeldAddr(lock.addr)) {
    return false;
  }
  AcquireInternal(lock.addr, lock.type, mode, line);
  return true;
}

void SimKernel::RcuReadLock(uint32_t line) {
  AcquireInternal(rcu_lock_.addr, rcu_lock_.type, AcquireMode::kShared, line);
}

void SimKernel::RcuReadUnlock(uint32_t line) {
  ReleaseInternal(rcu_lock_.addr, rcu_lock_.type, line);
}

void SimKernel::LocalBhDisable(uint32_t line) {
  AcquireInternal(softirq_lock_.addr, softirq_lock_.type, AcquireMode::kExclusive, line);
}

void SimKernel::LocalBhEnable(uint32_t line) {
  ReleaseInternal(softirq_lock_.addr, softirq_lock_.type, line);
}

void SimKernel::LocalIrqDisable(uint32_t line) {
  AcquireInternal(hardirq_lock_.addr, hardirq_lock_.type, AcquireMode::kExclusive, line);
}

void SimKernel::LocalIrqEnable(uint32_t line) {
  ReleaseInternal(hardirq_lock_.addr, hardirq_lock_.type, line);
}

ObjectRef SimKernel::Create(TypeId type, SubclassId subclass, uint32_t line) {
  const TypeLayout& layout = registry_->layout(type);
  uint32_t size = layout.size();
  LOCKDOC_CHECK(size > 0);

  Address addr = 0;
  auto it = free_lists_.find(size);
  if (it != free_lists_.end() && !it->second.empty()) {
    addr = it->second.back();
    it->second.pop_back();
  } else {
    addr = next_heap_addr_;
    next_heap_addr_ = AlignUp(next_heap_addr_ + size, kHeapAlign);
  }
  live_allocations_[addr] = size;

  TraceEvent event = BaseEvent(EventKind::kAlloc, line);
  event.addr = addr;
  event.size = size;
  event.type = type;
  event.subclass = subclass;
  Emit(event);

  ObjectRef ref;
  ref.addr = addr;
  ref.type = type;
  ref.subclass = subclass;
  return ref;
}

ObjectRef SimKernel::CreateWithSpan(TypeId type, SubclassId subclass, uint64_t span_start,
                                    uint64_t span_end, uint32_t line) {
  LOCKDOC_CHECK(span_start < span_end);
  const TypeLayout& layout = registry_->layout(type);
  uint32_t size = layout.size();
  LOCKDOC_CHECK(size > 0);

  Address addr = 0;
  auto it = free_lists_.find(size);
  if (it != free_lists_.end() && !it->second.empty()) {
    addr = it->second.back();
    it->second.pop_back();
  } else {
    addr = next_heap_addr_;
    next_heap_addr_ = AlignUp(next_heap_addr_ + size, kHeapAlign);
  }
  live_allocations_[addr] = size;

  TraceEvent event = BaseEvent(EventKind::kAlloc, line);
  event.addr = addr;
  event.size = size;
  event.type = type;
  event.subclass = subclass;
  event.has_range = true;
  event.range_start = span_start;
  event.range_end = span_end;
  Emit(event);

  ObjectRef ref;
  ref.addr = addr;
  ref.type = type;
  ref.subclass = subclass;
  return ref;
}

void SimKernel::Destroy(const ObjectRef& obj, uint32_t line) {
  auto it = live_allocations_.find(obj.addr);
  LOCKDOC_CHECK(it != live_allocations_.end());
  uint32_t size = it->second;
  // An object must not be destroyed while one of its embedded locks is held.
  for (const HeldLock& held : held_locks_) {
    LOCKDOC_CHECK(held.addr < obj.addr || held.addr >= obj.addr + size);
  }
  live_allocations_.erase(it);
  free_lists_[size].push_back(obj.addr);

  TraceEvent event = BaseEvent(EventKind::kFree, line);
  event.addr = obj.addr;
  event.size = size;
  event.type = obj.type;
  event.subclass = obj.subclass;
  Emit(event);
}

void SimKernel::Lock(const ObjectRef& obj, MemberIndex lock_member, uint32_t line,
                     AcquireMode mode) {
  const MemberDef& def = registry_->layout(obj.type).member(lock_member);
  LOCKDOC_CHECK(def.is_lock);
  AcquireInternal(obj.addr + def.offset, def.lock_type, mode, line);
}

void SimKernel::Unlock(const ObjectRef& obj, MemberIndex lock_member, uint32_t line) {
  const MemberDef& def = registry_->layout(obj.type).member(lock_member);
  LOCKDOC_CHECK(def.is_lock);
  ReleaseInternal(obj.addr + def.offset, def.lock_type, line);
}

bool SimKernel::TryLock(const ObjectRef& obj, MemberIndex lock_member, uint32_t line,
                        AcquireMode mode) {
  const MemberDef& def = registry_->layout(obj.type).member(lock_member);
  LOCKDOC_CHECK(def.is_lock);
  if (IsHeldAddr(obj.addr + def.offset)) {
    return false;
  }
  AcquireInternal(obj.addr + def.offset, def.lock_type, mode, line);
  return true;
}

void SimKernel::AcquireRange(const ObjectRef& obj, MemberIndex lock_member, uint64_t start,
                             uint64_t end, uint32_t line, AcquireMode mode) {
  const MemberDef& def = registry_->layout(obj.type).member(lock_member);
  LOCKDOC_CHECK(def.is_lock);
  LOCKDOC_CHECK(def.lock_type == LockType::kRangeLock);
  AcquireRangeInternal(obj.addr + def.offset, start, end, mode, line);
}

void SimKernel::ReleaseRange(const ObjectRef& obj, MemberIndex lock_member, uint64_t start,
                             uint64_t end, uint32_t line) {
  const MemberDef& def = registry_->layout(obj.type).member(lock_member);
  LOCKDOC_CHECK(def.is_lock);
  LOCKDOC_CHECK(def.lock_type == LockType::kRangeLock);
  ReleaseRangeInternal(obj.addr + def.offset, start, end, line);
}

bool SimKernel::IsHeld(const ObjectRef& obj, MemberIndex lock_member) const {
  const MemberDef& def = registry_->layout(obj.type).member(lock_member);
  LOCKDOC_CHECK(def.is_lock);
  return IsHeldAddr(obj.addr + def.offset);
}

void SimKernel::Read(const ObjectRef& obj, MemberIndex member, uint32_t line) {
  AccessInternal(obj, member, /*is_write=*/false, line);
}

void SimKernel::Write(const ObjectRef& obj, MemberIndex member, uint32_t line) {
  AccessInternal(obj, member, /*is_write=*/true, line);
}

void SimKernel::AtomicRead(const ObjectRef& obj, MemberIndex member, uint32_t line) {
  FunctionScope atomic(*this, "include/asm/atomic.h", "atomic_read", 1, 4);
  AccessInternal(obj, member, /*is_write=*/false, line);
}

void SimKernel::AtomicWrite(const ObjectRef& obj, MemberIndex member, uint32_t line) {
  FunctionScope atomic(*this, "include/asm/atomic.h", "atomic_set", 6, 9);
  AccessInternal(obj, member, /*is_write=*/true, line);
}

ContextKind SimKernel::current_context() const {
  return context_stack_.empty() ? ContextKind::kTask : context_stack_.back();
}

void SimKernel::RegisterSoftirq(IrqHandler handler) {
  softirq_handlers_.push_back(std::move(handler));
}

void SimKernel::RegisterHardirq(IrqHandler handler) {
  hardirq_handlers_.push_back(std::move(handler));
}

void SimKernel::SetInterruptRate(double probability, uint64_t seed) {
  interrupt_rate_ = probability;
  irq_rng_ = Rng(seed);
}

void SimKernel::RunInInterrupt(ContextKind kind, const IrqHandler& handler) {
  LOCKDOC_CHECK(kind != ContextKind::kTask);
  // softirq may only interrupt task context; hardirq may interrupt anything.
  if (kind == ContextKind::kSoftirq) {
    LOCKDOC_CHECK(current_context() == ContextKind::kTask);
  }
  size_t locks_before = held_locks_.size();
  context_stack_.push_back(kind);
  const GlobalLock& pseudo = (kind == ContextKind::kSoftirq) ? softirq_lock_ : hardirq_lock_;
  AcquireInternal(pseudo.addr, pseudo.type, AcquireMode::kExclusive, 0);
  handler(*this);
  ReleaseInternal(pseudo.addr, pseudo.type, 0);
  context_stack_.pop_back();
  // The handler must release everything it acquired.
  LOCKDOC_CHECK(held_locks_.size() == locks_before);
}

void SimKernel::CheckQuiescent() const {
  LOCKDOC_CHECK(held_locks_.empty());
  LOCKDOC_CHECK(context_stack_.empty());
}

void SimKernel::PushFrame(std::string_view file, std::string_view function) {
  Frame frame;
  frame.file = trace_->InternString(file);
  frame.function = trace_->InternString(function);
  frames_.push_back(frame);
  stack_dirty_ = true;
}

void SimKernel::PopFrame() {
  LOCKDOC_CHECK(!frames_.empty());
  frames_.pop_back();
  stack_dirty_ = true;
}

SourceLoc SimKernel::Here(uint32_t line) const {
  SourceLoc loc;
  loc.file = frames_.empty() ? 0 : frames_.back().file;
  loc.line = line;
  return loc;
}

StackId SimKernel::CurrentStack() {
  if (frames_.empty()) {
    return kInvalidStack;
  }
  if (!stack_dirty_) {
    return cached_stack_;
  }
  CallStack stack;
  stack.frames.reserve(frames_.size());
  // Innermost frame first.
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    stack.frames.push_back(it->function);
  }
  cached_stack_ = trace_->InternStack(stack);
  stack_dirty_ = false;
  return cached_stack_;
}

TraceEvent SimKernel::BaseEvent(EventKind kind, uint32_t line) {
  TraceEvent event;
  event.kind = kind;
  event.context = current_context();
  event.task_id = current_task_;
  event.loc = Here(line);
  event.stack = CurrentStack();
  return event;
}

void SimKernel::Emit(TraceEvent event) {
  if (coverage_ != nullptr && event.loc.line != 0 && event.loc.file != 0) {
    coverage_->OnLineExecuted(trace_->String(event.loc.file), event.loc.line);
  }
  trace_->Append(event);
  MaybeFireInterrupts();
}

void SimKernel::AcquireInternal(Address lock_addr, LockType type, AcquireMode mode,
                                uint32_t line) {
  if (IsBlockingLockType(type)) {
    // Blocking primitives are forbidden in interrupt context.
    LOCKDOC_CHECK(current_context() == ContextKind::kTask);
  }
  for (HeldLock& held : held_locks_) {
    if (held.addr == lock_addr) {
      // Re-acquisition. Pseudo locks nest (e.g. nested rcu_read_lock);
      // the effective lock state does not change, so no event is emitted.
      LOCKDOC_CHECK(IsPseudoLockType(type));
      ++held.depth;
      return;
    }
  }
  HeldLock held;
  held.addr = lock_addr;
  held.type = type;
  held.context_depth = static_cast<uint32_t>(context_stack_.size());
  held_locks_.push_back(held);

  TraceEvent event = BaseEvent(EventKind::kLockAcquire, line);
  event.addr = lock_addr;
  event.lock_type = type;
  event.mode = mode;
  Emit(event);
}

void SimKernel::ReleaseInternal(Address lock_addr, LockType type, uint32_t line) {
  auto it = std::find_if(held_locks_.begin(), held_locks_.end(),
                         [lock_addr](const HeldLock& held) { return held.addr == lock_addr; });
  LOCKDOC_CHECK(it != held_locks_.end());
  LOCKDOC_CHECK(it->type == type);
  if (it->depth > 1) {
    --it->depth;
    return;
  }
  held_locks_.erase(it);

  TraceEvent event = BaseEvent(EventKind::kLockRelease, line);
  event.addr = lock_addr;
  event.lock_type = type;
  Emit(event);
}

void SimKernel::AcquireRangeInternal(Address lock_addr, uint64_t start, uint64_t end,
                                     AcquireMode mode, uint32_t line) {
  // Range locks block, so never from interrupt context.
  LOCKDOC_CHECK(current_context() == ContextKind::kTask);
  LOCKDOC_CHECK(start < end);
  for (const HeldLock& held : held_locks_) {
    if (held.addr != lock_addr) {
      continue;
    }
    // Mixing whole-instance and ranged holds of one instance is a bug in
    // the simulated kernel code.
    LOCKDOC_CHECK(held.has_range);
    // An overlapping hold from the same (single-CPU) control flow would
    // self-deadlock unless both sides are readers.
    if (RangesOverlap(held.range_start, held.range_end, start, end)) {
      LOCKDOC_CHECK(held.mode == AcquireMode::kShared && mode == AcquireMode::kShared);
    }
  }
  HeldLock held;
  held.addr = lock_addr;
  held.type = LockType::kRangeLock;
  held.context_depth = static_cast<uint32_t>(context_stack_.size());
  held.has_range = true;
  held.range_start = start;
  held.range_end = end;
  held.mode = mode;
  held_locks_.push_back(held);

  TraceEvent event = BaseEvent(EventKind::kLockAcquire, line);
  event.addr = lock_addr;
  event.lock_type = LockType::kRangeLock;
  event.mode = mode;
  event.has_range = true;
  event.range_start = start;
  event.range_end = end;
  Emit(event);
}

void SimKernel::ReleaseRangeInternal(Address lock_addr, uint64_t start, uint64_t end,
                                     uint32_t line) {
  // Innermost matching hold first, mirroring the importer's release rule.
  auto it = std::find_if(held_locks_.rbegin(), held_locks_.rend(), [&](const HeldLock& held) {
    return held.addr == lock_addr && held.has_range && held.range_start == start &&
           held.range_end == end;
  });
  LOCKDOC_CHECK(it != held_locks_.rend());
  held_locks_.erase(std::next(it).base());

  TraceEvent event = BaseEvent(EventKind::kLockRelease, line);
  event.addr = lock_addr;
  event.lock_type = LockType::kRangeLock;
  event.has_range = true;
  event.range_start = start;
  event.range_end = end;
  Emit(event);
}

bool SimKernel::IsHeldAddr(Address lock_addr) const {
  return std::any_of(held_locks_.begin(), held_locks_.end(),
                     [lock_addr](const HeldLock& held) { return held.addr == lock_addr; });
}

void SimKernel::AccessInternal(const ObjectRef& obj, MemberIndex member, bool is_write,
                               uint32_t line) {
  auto it = live_allocations_.find(obj.addr);
  LOCKDOC_CHECK(it != live_allocations_.end());
  const MemberDef& def = registry_->layout(obj.type).member(member);
  LOCKDOC_CHECK(!def.is_lock);

  TraceEvent event = BaseEvent(is_write ? EventKind::kMemWrite : EventKind::kMemRead, line);
  event.addr = obj.addr + def.offset;
  event.size = def.size;
  Emit(event);
}

void SimKernel::MaybeFireInterrupts() {
  if (interrupt_rate_ <= 0.0 || firing_interrupt_ || in_interrupt()) {
    return;
  }
  if (!irq_rng_.Chance(interrupt_rate_)) {
    return;
  }
  // Choose among all registered handlers, hardirq and softirq alike.
  size_t total = softirq_handlers_.size() + hardirq_handlers_.size();
  if (total == 0) {
    return;
  }
  size_t pick = irq_rng_.Below(total);
  firing_interrupt_ = true;
  if (pick < softirq_handlers_.size()) {
    RunInInterrupt(ContextKind::kSoftirq, softirq_handlers_[pick]);
  } else {
    RunInInterrupt(ContextKind::kHardirq, hardirq_handlers_[pick - softirq_handlers_.size()]);
  }
  firing_interrupt_ = false;
}

FunctionScope::FunctionScope(SimKernel& kernel, std::string_view file, std::string_view function,
                             uint32_t first_line, uint32_t last_line)
    : kernel_(kernel) {
  kernel_.PushFrame(file, function);
  if (kernel_.coverage_ != nullptr) {
    kernel_.coverage_->OnFunctionEnter(file, function, first_line, last_line);
  }
}

FunctionScope::~FunctionScope() { kernel_.PopFrame(); }

}  // namespace lockdoc
