#include "src/coverage/coverage.h"

#include <algorithm>

namespace lockdoc {

void CoverageTracker::RegisterFunction(std::string_view file, std::string_view function,
                                       uint32_t first_line, uint32_t last_line) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    it = files_.emplace(std::string(file), FileData{}).first;
  }
  FileData& data = it->second;
  for (uint32_t line = first_line; line <= last_line; ++line) {
    data.executable_lines.insert(line);
  }
  data.functions.emplace(function);
}

void CoverageTracker::OnFunctionEnter(std::string_view file, std::string_view function,
                                      uint32_t first_line, uint32_t last_line) {
  RegisterFunction(file, function, first_line, last_line);
  FileData& data = files_.find(file)->second;
  data.hit_functions.emplace(function);
  // Entering a function executes its straight-line prefix; the trailing
  // part of the body models error/cleanup branches the call did not take.
  uint32_t span = last_line - first_line + 1;
  uint32_t executed = std::max<uint32_t>(1, static_cast<uint32_t>(span * 0.9));
  for (uint32_t line = first_line; line < first_line + executed; ++line) {
    data.hit_lines.insert(line);
  }
}

void CoverageTracker::OnLineExecuted(std::string_view file, uint32_t line) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    it = files_.emplace(std::string(file), FileData{}).first;
  }
  it->second.executable_lines.insert(line);
  it->second.hit_lines.insert(line);
}

std::string CoverageTracker::DirectoryOf(std::string_view file) {
  size_t slash = file.rfind('/');
  if (slash == std::string_view::npos) {
    return ".";
  }
  return std::string(file.substr(0, slash));
}

std::vector<DirectoryCoverage> CoverageTracker::ReportByDirectory() const {
  std::map<std::string, DirectoryCoverage> by_dir;
  for (const auto& [file, data] : files_) {
    std::string dir = DirectoryOf(file);
    DirectoryCoverage& cov = by_dir[dir];
    cov.directory = dir;
    cov.lines_total += data.executable_lines.size();
    cov.lines_hit += data.hit_lines.size();
    cov.functions_total += data.functions.size();
    cov.functions_hit += data.hit_functions.size();
  }
  std::vector<DirectoryCoverage> result;
  result.reserve(by_dir.size());
  for (auto& [dir, cov] : by_dir) {
    result.push_back(std::move(cov));
  }
  return result;
}

DirectoryCoverage CoverageTracker::ReportDirectory(const std::string& directory) const {
  DirectoryCoverage cov;
  cov.directory = directory;
  for (const auto& [file, data] : files_) {
    if (DirectoryOf(file) != directory) {
      continue;
    }
    cov.lines_total += data.executable_lines.size();
    cov.lines_hit += data.hit_lines.size();
    cov.functions_total += data.functions.size();
    cov.functions_hit += data.hit_functions.size();
  }
  return cov;
}

}  // namespace lockdoc
