// Line and function coverage of the simulated kernel, reproducing the
// paper's GCOV measurement (Tab. 3): per source directory, the fraction of
// executable lines and of functions reached by the benchmark mix.
//
// The simulated kernel registers every function (with its body line range)
// up front; at runtime the SimKernel reports function entries and executed
// lines through the CoverageSink interface.
#ifndef SRC_COVERAGE_COVERAGE_H_
#define SRC_COVERAGE_COVERAGE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/sim/hooks.h"

namespace lockdoc {

struct DirectoryCoverage {
  std::string directory;
  uint64_t lines_total = 0;
  uint64_t lines_hit = 0;
  uint64_t functions_total = 0;
  uint64_t functions_hit = 0;

  double line_pct() const {
    return lines_total == 0 ? 0.0
                            : 100.0 * static_cast<double>(lines_hit) /
                                  static_cast<double>(lines_total);
  }
  double function_pct() const {
    return functions_total == 0 ? 0.0
                                : 100.0 * static_cast<double>(functions_hit) /
                                      static_cast<double>(functions_total);
  }
};

class CoverageTracker : public CoverageSink {
 public:
  // Declares a function ahead of execution so unexecuted functions count in
  // the denominators, exactly like compiling the kernel with GCOV.
  void RegisterFunction(std::string_view file, std::string_view function, uint32_t first_line,
                        uint32_t last_line);

  // CoverageSink:
  void OnFunctionEnter(std::string_view file, std::string_view function, uint32_t first_line,
                       uint32_t last_line) override;
  void OnLineExecuted(std::string_view file, uint32_t line) override;

  // Rolls up per-file data into the immediate directory of each file
  // ("fs/ext4/inode.c" -> "fs/ext4"), like the paper's Tab. 3 rows.
  std::vector<DirectoryCoverage> ReportByDirectory() const;

  // Coverage for files directly inside `directory` (non-recursive, matching
  // "all files that reside directly in the respective directory").
  DirectoryCoverage ReportDirectory(const std::string& directory) const;

 private:
  struct FileData {
    // Executable lines (union of registered function body ranges).
    std::set<uint32_t> executable_lines;
    std::set<uint32_t> hit_lines;
    std::set<std::string> functions;
    std::set<std::string> hit_functions;
  };

  static std::string DirectoryOf(std::string_view file);

  std::map<std::string, FileData, std::less<>> files_;
};

}  // namespace lockdoc

#endif  // SRC_COVERAGE_COVERAGE_H_
