#include "src/monitor/allocation_tracker.h"

#include "src/util/logging.h"

namespace lockdoc {

AllocationId AllocationTracker::OnAlloc(const TraceEvent& event,
                                        std::optional<AllocationId>* displaced) {
  LOCKDOC_CHECK(event.kind == EventKind::kAlloc);
  if (displaced != nullptr) {
    displaced->reset();
  }
  AllocationInfo info;
  info.id = allocations_.size();
  info.addr = event.addr;
  info.size = event.size;
  info.type = event.type;
  info.subclass = event.subclass;
  info.alloc_seq = event.seq;
  // An already-live address means the free event was lost (salvaged trace)
  // or the trace is corrupt: retire the stale allocation at this point so
  // later accesses attribute to the new lifetime.
  auto it = live_.find(event.addr);
  if (it != live_.end()) {
    allocations_[it->second].free_seq = event.seq;
    if (displaced != nullptr) {
      *displaced = it->second;
    }
    live_.erase(it);
  }
  live_.emplace(event.addr, info.id);
  allocations_.push_back(info);
  return info.id;
}

std::optional<AllocationId> AllocationTracker::OnFree(const TraceEvent& event) {
  LOCKDOC_CHECK(event.kind == EventKind::kFree);
  auto it = live_.find(event.addr);
  if (it == live_.end()) {
    return std::nullopt;
  }
  AllocationId id = it->second;
  allocations_[id].free_seq = event.seq;
  live_.erase(it);
  return id;
}

std::optional<AllocationId> AllocationTracker::Find(Address addr) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) {
    return std::nullopt;
  }
  --it;
  const AllocationInfo& info = allocations_[it->second];
  if (addr >= info.addr && addr < info.addr + info.size) {
    return info.id;
  }
  return std::nullopt;
}

const AllocationInfo& AllocationTracker::info(AllocationId id) const {
  LOCKDOC_CHECK(id < allocations_.size());
  return allocations_[id];
}

}  // namespace lockdoc
