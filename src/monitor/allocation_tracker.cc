#include "src/monitor/allocation_tracker.h"

#include "src/util/logging.h"

namespace lockdoc {

AllocationId AllocationTracker::OnAlloc(const TraceEvent& event) {
  LOCKDOC_CHECK(event.kind == EventKind::kAlloc);
  AllocationInfo info;
  info.id = allocations_.size();
  info.addr = event.addr;
  info.size = event.size;
  info.type = event.type;
  info.subclass = event.subclass;
  info.alloc_seq = event.seq;
  // The address must not already be live; a trace violating this is corrupt.
  LOCKDOC_CHECK(live_.find(event.addr) == live_.end());
  live_.emplace(event.addr, info.id);
  allocations_.push_back(info);
  return info.id;
}

std::optional<AllocationId> AllocationTracker::OnFree(const TraceEvent& event) {
  LOCKDOC_CHECK(event.kind == EventKind::kFree);
  auto it = live_.find(event.addr);
  if (it == live_.end()) {
    return std::nullopt;
  }
  AllocationId id = it->second;
  allocations_[id].free_seq = event.seq;
  live_.erase(it);
  return id;
}

std::optional<AllocationId> AllocationTracker::Find(Address addr) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) {
    return std::nullopt;
  }
  --it;
  const AllocationInfo& info = allocations_[it->second];
  if (addr >= info.addr && addr < info.addr + info.size) {
    return info.id;
  }
  return std::nullopt;
}

const AllocationInfo& AllocationTracker::info(AllocationId id) const {
  LOCKDOC_CHECK(id < allocations_.size());
  return allocations_[id];
}

}  // namespace lockdoc
