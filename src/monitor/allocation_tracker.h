// Replays allocation/deallocation events and answers "which observed
// allocation does this address belong to right now?" — the role of FAIL*'s
// MemoryAccessListener bookkeeping in the paper (Sec. 6): accesses are only
// attributable while the containing allocation is live, and addresses may be
// reused by later allocations.
#ifndef SRC_MONITOR_ALLOCATION_TRACKER_H_
#define SRC_MONITOR_ALLOCATION_TRACKER_H_

#include <map>
#include <optional>
#include <vector>

#include "src/model/ids.h"
#include "src/trace/event.h"

namespace lockdoc {

struct AllocationInfo {
  AllocationId id = 0;
  Address addr = 0;
  uint32_t size = 0;
  TypeId type = kInvalidTypeId;
  SubclassId subclass = kNoSubclass;
  uint64_t alloc_seq = 0;
  // kDbNull-like sentinel: UINT64_MAX when still live at end of trace.
  uint64_t free_seq = UINT64_MAX;
};

class AllocationTracker {
 public:
  // Processes a kAlloc event; returns the new allocation's id. If the
  // address is already live — possible in salvaged traces where the free
  // event was lost — the stale allocation is implicitly retired first and
  // its id is stored in `*displaced` (when non-null).
  AllocationId OnAlloc(const TraceEvent& event,
                       std::optional<AllocationId>* displaced = nullptr);

  // Processes a kFree event; returns the freed allocation's id, or nullopt
  // if the address was not tracked (tolerated: the trace may observe frees
  // of unobserved structures).
  std::optional<AllocationId> OnFree(const TraceEvent& event);

  // The live allocation containing `addr`, if any.
  std::optional<AllocationId> Find(Address addr) const;

  // Lifetime record of any allocation ever seen (live or freed).
  const AllocationInfo& info(AllocationId id) const;
  size_t allocation_count() const { return allocations_.size(); }
  // Allocations still live (never freed so far).
  size_t live_count() const { return live_.size(); }
  const std::vector<AllocationInfo>& allocations() const { return allocations_; }

 private:
  std::vector<AllocationInfo> allocations_;
  // Live allocations keyed by start address.
  std::map<Address, AllocationId> live_;
};

}  // namespace lockdoc

#endif  // SRC_MONITOR_ALLOCATION_TRACKER_H_
