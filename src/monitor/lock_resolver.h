// Resolves lock addresses in lock events to lock *instances*: either a
// statically allocated lock (announced by a kStaticLockDef event) or a lock
// member embedded in a live tracked allocation. Address reuse across
// allocation lifetimes yields distinct instances, mirroring the paper's
// per-allocation lock identity (Fig. 6: each lock may be "embedded in" an
// allocation).
#ifndef SRC_MONITOR_LOCK_RESOLVER_H_
#define SRC_MONITOR_LOCK_RESOLVER_H_

#include <map>
#include <optional>
#include <vector>

#include "src/model/ids.h"
#include "src/model/type_registry.h"
#include "src/monitor/allocation_tracker.h"
#include "src/trace/event.h"

namespace lockdoc {

struct LockInstance {
  LockInstanceId id = 0;
  Address addr = 0;
  LockType type = LockType::kSpinlock;
  bool is_static = false;
  // Static locks: interned name (from the kStaticLockDef event).
  StringId name = 0;
  // Embedded locks: owning allocation and the lock member within it.
  AllocationId owner = UINT64_MAX;
  TypeId owner_type = kInvalidTypeId;
  MemberIndex owner_member = kInvalidMember;
};

class LockResolver {
 public:
  LockResolver(const TypeRegistry* registry, const AllocationTracker* tracker);

  // Processes a kStaticLockDef event.
  void OnStaticLockDef(const TraceEvent& event);

  // Resolves the lock address of an acquire/release event to an instance,
  // creating it on first sight. Locks that are neither declared static nor
  // inside a live tracked allocation are registered as anonymous static
  // locks (the trace may legitimately contain locks of unobserved types).
  LockInstanceId Resolve(const TraceEvent& event);

  const LockInstance& instance(LockInstanceId id) const;
  size_t instance_count() const { return instances_.size(); }
  const std::vector<LockInstance>& instances() const { return instances_; }
  // Lock operations whose address fell inside a tracked allocation but not
  // on a lock member (only possible with damaged/salvaged traces); such
  // operations were attributed to an anonymous static instance instead.
  uint64_t unresolved_count() const { return unresolved_; }

 private:
  const TypeRegistry* registry_;
  const AllocationTracker* tracker_;
  std::vector<LockInstance> instances_;
  uint64_t unresolved_ = 0;
  // Declared static locks: addr -> name.
  std::map<Address, std::pair<StringId, LockType>> static_defs_;
  // addr -> instance for static locks (stable across the whole trace).
  std::map<Address, LockInstanceId> static_instances_;
  // (owner allocation, offset) -> instance for embedded locks; owner ids are
  // unique per lifetime, so address reuse cannot alias.
  std::map<std::pair<AllocationId, uint32_t>, LockInstanceId> embedded_instances_;
};

}  // namespace lockdoc

#endif  // SRC_MONITOR_LOCK_RESOLVER_H_
