#include "src/monitor/lock_resolver.h"

#include "src/util/logging.h"

namespace lockdoc {

LockResolver::LockResolver(const TypeRegistry* registry, const AllocationTracker* tracker)
    : registry_(registry), tracker_(tracker) {
  LOCKDOC_CHECK(registry_ != nullptr);
  LOCKDOC_CHECK(tracker_ != nullptr);
}

void LockResolver::OnStaticLockDef(const TraceEvent& event) {
  LOCKDOC_CHECK(event.kind == EventKind::kStaticLockDef);
  static_defs_[event.addr] = {event.name, event.lock_type};
}

LockInstanceId LockResolver::Resolve(const TraceEvent& event) {
  LOCKDOC_CHECK(IsLockOp(event));

  // Embedded in a live tracked allocation?
  std::optional<AllocationId> owner = tracker_->Find(event.addr);
  if (owner.has_value()) {
    const AllocationInfo& alloc = tracker_->info(*owner);
    uint32_t offset = static_cast<uint32_t>(event.addr - alloc.addr);
    auto key = std::make_pair(*owner, offset);
    auto it = embedded_instances_.find(key);
    if (it != embedded_instances_.end()) {
      return it->second;
    }
    const TypeLayout& layout = registry_->layout(alloc.type);
    std::optional<MemberIndex> member = layout.ResolveOffset(offset);
    if (member.has_value() && layout.member(*member).is_lock) {
      LockInstance instance;
      instance.id = instances_.size();
      instance.addr = event.addr;
      instance.type = event.lock_type;
      instance.is_static = false;
      instance.owner = *owner;
      instance.owner_type = alloc.type;
      instance.owner_member = *member;
      instances_.push_back(instance);
      embedded_instances_.emplace(key, instance.id);
      return instance.id;
    }
    // The address falls inside a tracked allocation but not on a lock
    // member. In a clean trace this cannot happen; in a salvaged one the
    // allocation boundary may be wrong (lost free + address reuse). Fall
    // through and treat the address as an anonymous static lock rather
    // than rejecting the acquire/release pairing outright.
    ++unresolved_;
  }

  // Static (declared or anonymous).
  auto it = static_instances_.find(event.addr);
  if (it != static_instances_.end()) {
    return it->second;
  }
  LockInstance instance;
  instance.id = instances_.size();
  instance.addr = event.addr;
  instance.type = event.lock_type;
  instance.is_static = true;
  auto def = static_defs_.find(event.addr);
  instance.name = (def != static_defs_.end()) ? def->second.first : 0;
  instances_.push_back(instance);
  static_instances_.emplace(event.addr, instance.id);
  return instance.id;
}

const LockInstance& LockResolver::instance(LockInstanceId id) const {
  LOCKDOC_CHECK(id < instances_.size());
  return instances_[id];
}

}  // namespace lockdoc
