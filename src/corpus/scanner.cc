#include "src/corpus/scanner.h"

#include <string_view>

namespace lockdoc {
namespace {

uint64_t CountOccurrences(std::string_view haystack, std::string_view needle) {
  uint64_t count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

uint64_t CountNonEmptyLines(std::string_view content) {
  uint64_t count = 0;
  bool line_has_content = false;
  for (char c : content) {
    if (c == '\n') {
      if (line_has_content) {
        ++count;
      }
      line_has_content = false;
    } else if (c != ' ' && c != '\t') {
      line_has_content = true;
    }
  }
  if (line_has_content) {
    ++count;
  }
  return count;
}

}  // namespace

LockUsageCounts LockUsageScanner::Scan(const CorpusRelease& release) const {
  LockUsageCounts counts;
  counts.version = release.version;
  for (const CorpusFile& file : release.files) {
    std::string_view content = file.content;
    counts.loc += CountNonEmptyLines(content) * kLocScale;
    counts.spinlock += CountOccurrences(content, "spin_lock_init(");
    counts.spinlock += CountOccurrences(content, "DEFINE_SPINLOCK(");
    counts.spinlock += CountOccurrences(content, "__SPIN_LOCK_UNLOCKED(");
    counts.mutex += CountOccurrences(content, "mutex_init(");
    counts.mutex += CountOccurrences(content, "DEFINE_MUTEX(");
    counts.rcu += CountOccurrences(content, "call_rcu(");
    counts.rcu += CountOccurrences(content, "rcu_assign_pointer(");
    counts.rcu += CountOccurrences(content, "RCU_INIT_POINTER(");
  }
  return counts;
}

}  // namespace lockdoc
