// Counts lock-initialization sites and lines of code in a (synthetic)
// kernel source tree — the measurement behind the paper's Fig. 1.
#ifndef SRC_CORPUS_SCANNER_H_
#define SRC_CORPUS_SCANNER_H_

#include <cstdint>
#include <string>

#include "src/corpus/corpus_model.h"

namespace lockdoc {

struct LockUsageCounts {
  std::string version;
  uint64_t loc = 0;  // Upscaled by kLocScale to the modelled magnitude.
  uint64_t spinlock = 0;
  uint64_t mutex = 0;
  uint64_t rcu = 0;
};

class LockUsageScanner {
 public:
  // Scans one release tree. LoC counts non-empty lines; lock usages count
  // textual occurrences of the kernel's initialization idioms
  // (spin_lock_init / DEFINE_SPINLOCK / __SPIN_LOCK_UNLOCKED, mutex_init /
  // DEFINE_MUTEX, call_rcu / rcu_assign_pointer / RCU_INIT_POINTER).
  LockUsageCounts Scan(const CorpusRelease& release) const;
};

}  // namespace lockdoc

#endif  // SRC_CORPUS_SCANNER_H_
