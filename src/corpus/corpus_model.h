// Synthetic kernel-source-evolution model for reproducing the paper's
// Fig. 1 ("Increase of lock usage and lines of code from Linux 3.0 to
// 4.18"). The paper counts calls to lock-initialization functions in the
// source of each major release; we cannot ship 39 kernel trees, so this
// module *generates* a miniature source tree per release — with realistic
// lock-init call sites embedded in C-like text — whose growth is calibrated
// to the paper's reported endpoints (mutex usage +81 %, spinlock usage
// +45 % with a late-series dip, LoC +73 %). The companion scanner then
// counts lock usages the way `grep` would on the real tree.
//
// Generated trees are scaled down by kLocScale to stay in-memory friendly;
// reports multiply the scale back in.
#ifndef SRC_CORPUS_CORPUS_MODEL_H_
#define SRC_CORPUS_CORPUS_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lockdoc {

// One synthetic source file.
struct CorpusFile {
  std::string path;
  std::string content;
};

// A release's generated tree.
struct CorpusRelease {
  std::string version;  // "v3.0" ... "v4.18"
  std::vector<CorpusFile> files;
};

// 1 generated line stands for this many real lines.
inline constexpr uint64_t kLocScale = 1000;

struct CorpusModelOptions {
  uint64_t seed = 7;
  // Calibrated to Linux 3.0 (paper Fig. 1 axes).
  uint64_t base_loc = 9500000;
  uint64_t base_spinlock = 4400;
  uint64_t base_mutex = 2200;
  uint64_t base_rcu = 1200;
  double loc_growth = 0.73;
  double spinlock_growth = 0.45;
  double mutex_growth = 0.81;
  double rcu_growth = 1.60;
};

class KernelCorpusModel {
 public:
  explicit KernelCorpusModel(CorpusModelOptions options = {});

  // All releases v3.0..v3.19, v4.0..v4.18 in order.
  std::vector<std::string> ReleaseNames() const;

  // Generates the synthetic tree for release index `i` (0-based).
  CorpusRelease Generate(size_t release_index) const;

  size_t release_count() const { return release_names_.size(); }

 private:
  // Deterministic per-release target counts (already downscaled).
  struct Targets {
    uint64_t loc_lines;
    uint64_t spinlock_inits;
    uint64_t mutex_inits;
    uint64_t rcu_usages;
  };
  Targets TargetsFor(size_t release_index) const;

  CorpusModelOptions options_;
  std::vector<std::string> release_names_;
};

}  // namespace lockdoc

#endif  // SRC_CORPUS_CORPUS_MODEL_H_
