#include "src/corpus/corpus_model.h"

#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

// Directories the synthetic tree is spread over, with rough weights
// mirroring where locking code lives in a real kernel.
struct DirWeight {
  const char* dir;
  double weight;
};
constexpr DirWeight kDirs[] = {
    {"drivers/net", 0.30}, {"drivers/gpu", 0.15}, {"fs", 0.15},    {"fs/ext4", 0.07},
    {"kernel", 0.10},      {"mm", 0.08},          {"net", 0.10},   {"sound", 0.05},
};

// Filler lines cycled through to reach the LoC target; plausible C so the
// scanner's LoC counting has something realistic to chew on.
constexpr const char* kFillerLines[] = {
    "static int do_update_state(struct kobj *k)",
    "{",
    "        int ret = 0;",
    "        if (unlikely(!k))",
    "                return -EINVAL;",
    "        ret = submit_request(k, GFP_KERNEL);",
    "        k->nr_pending += ret;",
    "        return ret;",
    "}",
    "EXPORT_SYMBOL(do_update_state);",
};

constexpr const char* kSpinlockInits[] = {
    "        spin_lock_init(&dev->queue_lock);",
    "static DEFINE_SPINLOCK(table_lock);",
    "        .lock = __SPIN_LOCK_UNLOCKED(stats.lock),",
};
constexpr const char* kMutexInits[] = {
    "        mutex_init(&dev->config_mutex);",
    "static DEFINE_MUTEX(probe_mutex);",
};
constexpr const char* kRcuUsages[] = {
    "        call_rcu(&entry->rcu, free_entry_rcu);",
    "        rcu_assign_pointer(table->slot, new_slot);",
    "        RCU_INIT_POINTER(dev->child, NULL);",
};

}  // namespace

KernelCorpusModel::KernelCorpusModel(CorpusModelOptions options) : options_(options) {
  for (int minor = 0; minor <= 19; ++minor) {
    release_names_.push_back(StrFormat("v3.%d", minor));
  }
  for (int minor = 0; minor <= 18; ++minor) {
    release_names_.push_back(StrFormat("v4.%d", minor));
  }
}

std::vector<std::string> KernelCorpusModel::ReleaseNames() const { return release_names_; }

KernelCorpusModel::Targets KernelCorpusModel::TargetsFor(size_t release_index) const {
  LOCKDOC_CHECK(release_index < release_names_.size());
  double t = static_cast<double>(release_index) /
             static_cast<double>(release_names_.size() - 1);

  // Spinlock growth rises past its final value and dips in the last
  // releases, as visible in the paper's Fig. 1.
  double spin_shape;
  if (t <= 0.85) {
    spin_shape = (t / 0.85) * 1.08;
  } else {
    spin_shape = 1.08 - (t - 0.85) / 0.15 * 0.08;
  }

  // Small deterministic per-release jitter so the series looks like data,
  // not a formula; the endpoints stay calibrated (jitter vanishes there).
  Rng rng(options_.seed * 1000003 + release_index);
  double edge_damp = 4.0 * t * (1.0 - t);  // 0 at both endpoints.
  auto jitter = [&]() { return 1.0 + edge_damp * (rng.NextDouble() - 0.5) * 0.04; };

  Targets targets;
  targets.loc_lines = static_cast<uint64_t>(
      static_cast<double>(options_.base_loc) * (1.0 + options_.loc_growth * t) * jitter() /
      static_cast<double>(kLocScale));
  targets.spinlock_inits = static_cast<uint64_t>(
      static_cast<double>(options_.base_spinlock) * (1.0 + options_.spinlock_growth * spin_shape) *
      jitter());
  targets.mutex_inits = static_cast<uint64_t>(
      static_cast<double>(options_.base_mutex) * (1.0 + options_.mutex_growth * t) * jitter());
  targets.rcu_usages = static_cast<uint64_t>(
      static_cast<double>(options_.base_rcu) * (1.0 + options_.rcu_growth * std::pow(t, 1.1)) *
      jitter());
  return targets;
}

CorpusRelease KernelCorpusModel::Generate(size_t release_index) const {
  Targets targets = TargetsFor(release_index);
  CorpusRelease release;
  release.version = release_names_[release_index];

  Rng rng(options_.seed * 7777771 + release_index * 31);
  constexpr size_t kLinesPerFile = 400;

  for (const DirWeight& dir : kDirs) {
    uint64_t dir_lines = static_cast<uint64_t>(static_cast<double>(targets.loc_lines) *
                                               dir.weight);
    uint64_t dir_spin = static_cast<uint64_t>(static_cast<double>(targets.spinlock_inits) *
                                              dir.weight);
    uint64_t dir_mutex = static_cast<uint64_t>(static_cast<double>(targets.mutex_inits) *
                                               dir.weight);
    uint64_t dir_rcu = static_cast<uint64_t>(static_cast<double>(targets.rcu_usages) *
                                             dir.weight);

    size_t file_count = std::max<size_t>(1, dir_lines / kLinesPerFile);
    for (size_t f = 0; f < file_count; ++f) {
      CorpusFile file;
      file.path = StrFormat("%s/mod%04zu.c", dir.dir, f);
      uint64_t lines = dir_lines / file_count;
      uint64_t spins = dir_spin / file_count + (f < dir_spin % file_count ? 1 : 0);
      uint64_t mutexes = dir_mutex / file_count + (f < dir_mutex % file_count ? 1 : 0);
      uint64_t rcus = dir_rcu / file_count + (f < dir_rcu % file_count ? 1 : 0);

      // Lock-init sites are placed uniformly *within* the line budget so the
      // scanned LoC matches the model target.
      uint64_t lines_budget = std::max(lines, spins + mutexes + rcus);
      std::string content;
      content.reserve(lines_budget * 40);
      size_t filler_cursor = rng.Below(std::size(kFillerLines));
      for (uint64_t emitted = 0; emitted < lines_budget; ++emitted) {
        uint64_t remaining_lines = lines_budget - emitted;
        uint64_t remaining_locks = spins + mutexes + rcus;
        if (remaining_locks > 0 && rng.Below(remaining_lines) < remaining_locks) {
          uint64_t pick = rng.Below(remaining_locks);
          if (pick < spins) {
            content += kSpinlockInits[rng.Below(std::size(kSpinlockInits))];
            --spins;
          } else if (pick < spins + mutexes) {
            content += kMutexInits[rng.Below(std::size(kMutexInits))];
            --mutexes;
          } else {
            content += kRcuUsages[rng.Below(std::size(kRcuUsages))];
            --rcus;
          }
        } else {
          content += kFillerLines[filler_cursor];
          filler_cursor = (filler_cursor + 1) % std::size(kFillerLines);
        }
        content += '\n';
      }
      file.content = std::move(content);
      release.files.push_back(std::move(file));
    }
  }
  return release;
}

}  // namespace lockdoc
