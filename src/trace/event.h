// The event vocabulary of a LockDoc trace (paper Sec. 5.2): dynamic memory
// allocations/deallocations, lock acquisitions/releases, and read/write
// accesses to memory of observed allocations. Static locks announce
// themselves once so later lock events can be resolved by address.
#ifndef SRC_TRACE_EVENT_H_
#define SRC_TRACE_EVENT_H_

#include <cstdint>
#include <string_view>

#include "src/model/ids.h"
#include "src/model/lock_type.h"

namespace lockdoc {

enum class EventKind : uint8_t {
  kAlloc = 0,
  kFree = 1,
  kLockAcquire = 2,
  kLockRelease = 3,
  kMemRead = 4,
  kMemWrite = 5,
  kStaticLockDef = 6,
};

std::string_view EventKindName(EventKind kind);

// The execution context a kernel event originated from (Sec. 2.2: task,
// bottom half, or IRQ handler).
enum class ContextKind : uint8_t {
  kTask = 0,
  kSoftirq = 1,
  kHardirq = 2,
};

std::string_view ContextKindName(ContextKind kind);

// One trace event. A tagged struct rather than a variant: the trace is the
// hot data structure of the whole pipeline and benefits from being trivially
// copyable and branch-friendly.
struct TraceEvent {
  EventKind kind = EventKind::kAlloc;
  ContextKind context = ContextKind::kTask;
  // Monotonic event index within the trace; assigned by Trace::Append.
  uint64_t seq = 0;
  // Identifier of the simulated task (or of the interrupted task for
  // softirq/hardirq events).
  uint32_t task_id = 0;

  // kAlloc / kFree / kMemRead / kMemWrite: target address.
  // kLock* / kStaticLockDef: the lock's address.
  Address addr = 0;

  // kAlloc: allocation size. kMem*: access width in bytes.
  uint32_t size = 0;

  // kAlloc: the data type and subclass of the allocation.
  TypeId type = kInvalidTypeId;
  SubclassId subclass = kNoSubclass;

  // kLock* / kStaticLockDef.
  LockType lock_type = LockType::kSpinlock;
  AcquireMode mode = AcquireMode::kExclusive;

  // kStaticLockDef: interned name of the static lock.
  StringId name = 0;

  // Source position of the instruction (lock call site / access site).
  SourceLoc loc;
  // Interned call stack at the moment of the event (kInvalidStack if not
  // recorded).
  StackId stack = kInvalidStack;

  // Optional [start, end) span. On kLockAcquire/kLockRelease of a range
  // lock: the locked span. On kAlloc: the ground-truth resource span the
  // object represents (e.g. a vma's user-address range). Events without a
  // range (has_range false) mean a whole-instance lock / spanless object;
  // they serialize exactly as before the range extension.
  bool has_range = false;
  uint64_t range_start = 0;
  uint64_t range_end = 0;

  LockRange range() const { return has_range ? LockRange{range_start, range_end} : LockRange{}; }
};

inline bool IsMemAccess(const TraceEvent& e) {
  return e.kind == EventKind::kMemRead || e.kind == EventKind::kMemWrite;
}

inline bool IsLockOp(const TraceEvent& e) {
  return e.kind == EventKind::kLockAcquire || e.kind == EventKind::kLockRelease;
}

inline AccessType AccessTypeOf(const TraceEvent& e) {
  return e.kind == EventKind::kMemWrite ? AccessType::kWrite : AccessType::kRead;
}

}  // namespace lockdoc

#endif  // SRC_TRACE_EVENT_H_
