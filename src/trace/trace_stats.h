// Aggregate statistics over a trace — the numbers Sec. 7.2 of the paper
// reports for its run (events, locking operations, memory accesses,
// allocations, distinct locks).
#ifndef SRC_TRACE_TRACE_STATS_H_
#define SRC_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <string>

#include "src/trace/trace.h"

namespace lockdoc {

struct TraceStats {
  uint64_t total_events = 0;
  uint64_t lock_ops = 0;          // Acquire + release.
  uint64_t lock_acquires = 0;
  uint64_t lock_releases = 0;
  uint64_t memory_accesses = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t deallocations = 0;
  uint64_t static_lock_defs = 0;
  // Distinct lock addresses seen in lock operations, split by where the lock
  // lives: inside a live tracked allocation vs. statically allocated.
  uint64_t distinct_locks = 0;
  uint64_t distinct_static_locks = 0;
  uint64_t distinct_embedded_locks = 0;

  std::string ToString() const;
};

TraceStats ComputeTraceStats(const Trace& trace);

}  // namespace lockdoc

#endif  // SRC_TRACE_TRACE_STATS_H_
