// The in-memory representation of one recorded run: the ordered event list
// plus the side tables needed to interpret it (interned strings, interned
// call stacks). This is the hand-off artifact between phase 1 (monitoring/
// tracing) and phase 2 (post-processing + rule derivation) of the paper's
// workflow (Fig. 5).
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "src/model/ids.h"
#include "src/trace/event.h"
#include "src/trace/string_pool.h"

namespace lockdoc {

// An interned call stack: innermost frame first, frames are interned
// function-name strings.
struct CallStack {
  std::vector<StringId> frames;

  friend bool operator<(const CallStack& a, const CallStack& b) { return a.frames < b.frames; }
  friend bool operator==(const CallStack& a, const CallStack& b) = default;
};

class Trace {
 public:
  Trace() = default;
  Trace(Trace&&) = default;
  Trace& operator=(Trace&&) = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // --- Building (used by the monitoring layer) ---

  // Appends an event, assigning its sequence number. Returns the seq.
  uint64_t Append(TraceEvent event);

  StringId InternString(std::string_view text) { return strings_.Intern(text); }
  StackId InternStack(const CallStack& stack);

  // --- Reading ---

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  const TraceEvent& event(uint64_t seq) const;

  const std::string& String(StringId id) const { return strings_.Lookup(id); }
  const CallStack& Stack(StackId id) const;
  size_t stack_count() const { return stacks_.size(); }

  // Renders "file:line".
  std::string FormatLoc(const SourceLoc& loc) const;
  // Renders "f1 <- f2 <- f3" (innermost first).
  std::string FormatStack(StackId id) const;

  // --- Serialization plumbing (trace_io.cc) ---
  const StringPool& string_pool() const { return strings_; }
  StringPool& mutable_string_pool() { return strings_; }
  const std::vector<CallStack>& stacks() const { return stacks_; }
  void ResetStacks(std::vector<CallStack> stacks);
  std::vector<TraceEvent>& mutable_events() { return events_; }

 private:
  std::vector<TraceEvent> events_;
  StringPool strings_;
  std::vector<CallStack> stacks_;
  std::map<CallStack, StackId> stack_index_;
};

}  // namespace lockdoc

#endif  // SRC_TRACE_TRACE_H_
