// Deterministic fault injection for serialized traces. Each mutator takes
// the clean bytes of a written trace and returns a damaged copy; the damage
// site and extent are drawn from a seeded Rng, so every (kind, seed) pair
// reproduces the identical corruption. The corruption test suite uses this
// to prove that the reader never crashes, never aborts, and never silently
// mis-derives from damaged input.
#ifndef SRC_TRACE_CORRUPTOR_H_
#define SRC_TRACE_CORRUPTOR_H_

#include <cstdint>
#include <string>

namespace lockdoc {

enum class CorruptionKind {
  // Cut the file at a random point (always keeps the magic, may cut
  // mid-frame or mid-record).
  kTruncate,
  // Flip 1-8 random bits anywhere after the magic.
  kBitFlip,
  // Overwrite a random run (up to 256 bytes) with zeros.
  kZeroRun,
  // Remove one whole v2 frame (marker to trailer). On v1 input this
  // degenerates to deleting a random byte range.
  kFrameDrop,
  // Duplicate one whole v2 frame in place. On v1: duplicate a byte range.
  kFrameDuplicate,
  // Rewrite one v2 frame's length field to a different value without
  // fixing the CRC. On v1: overwrite one byte with a varint-plausible lie.
  kLengthLie,
};

constexpr CorruptionKind kAllCorruptionKinds[] = {
    CorruptionKind::kTruncate,      CorruptionKind::kBitFlip,
    CorruptionKind::kZeroRun,       CorruptionKind::kFrameDrop,
    CorruptionKind::kFrameDuplicate, CorruptionKind::kLengthLie,
};

const char* CorruptionKindName(CorruptionKind kind);

// Returns a corrupted copy of `bytes`. Deterministic in (kind, seed).
// Guarantees the result differs from the input whenever the input is large
// enough to damage (> magic size); tiny inputs are returned truncated.
std::string CorruptTraceBytes(const std::string& bytes, CorruptionKind kind, uint64_t seed);

}  // namespace lockdoc

#endif  // SRC_TRACE_CORRUPTOR_H_
