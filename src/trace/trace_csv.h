// CSV export of a trace's event stream. The paper's post-processing step
// generates CSV tables for database import (Sec. 6); we provide the same
// interchange so traces can be inspected or loaded into external tools.
#ifndef SRC_TRACE_TRACE_CSV_H_
#define SRC_TRACE_TRACE_CSV_H_

#include <iosfwd>
#include <string>

#include "src/trace/trace.h"
#include "src/util/status.h"

namespace lockdoc {

// Writes one row per event with a header row. Columns:
//   seq,kind,context,task,addr,size,type,subclass,lock_type,mode,name,
//   file,line,stack
// `type` and `name` are rendered as strings when resolvable.
void WriteTraceCsv(const Trace& trace, std::ostream& out);

// Lossless CSV interchange: a directory with events.csv, strings.csv, and
// stacks.csv. Unlike WriteTraceCsv (a human-readable single stream), the
// bundle round-trips exactly — including interned call stacks — so traces
// can pass through external tools (the paper's MariaDB-era workflow moved
// CSV tables around the same way).
Status WriteTraceCsvBundle(const Trace& trace, const std::string& dir);
Result<Trace> ReadTraceCsvBundle(const std::string& dir);

}  // namespace lockdoc

#endif  // SRC_TRACE_TRACE_CSV_H_
