#include "src/trace/trace_csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "src/util/csv.h"
#include "src/util/string_util.h"

namespace lockdoc {

void WriteTraceCsv(const Trace& trace, std::ostream& out) {
  CsvWriter writer(out);
  writer.WriteRow({"seq", "kind", "context", "task", "addr", "size", "type", "subclass",
                   "lock_type", "mode", "name", "file", "line", "stack"});
  for (const TraceEvent& e : trace.events()) {
    std::vector<std::string> row;
    row.reserve(14);
    row.push_back(std::to_string(e.seq));
    row.emplace_back(EventKindName(e.kind));
    row.emplace_back(ContextKindName(e.context));
    row.push_back(std::to_string(e.task_id));
    row.push_back(StrFormat("0x%llx", static_cast<unsigned long long>(e.addr)));
    row.push_back(std::to_string(e.size));
    row.push_back(e.type == kInvalidTypeId ? "" : std::to_string(e.type));
    row.push_back(e.subclass == kNoSubclass ? "" : std::to_string(e.subclass));
    if (IsLockOp(e) || e.kind == EventKind::kStaticLockDef) {
      row.emplace_back(LockTypeName(e.lock_type));
      row.emplace_back(e.mode == AcquireMode::kShared ? "shared" : "exclusive");
    } else {
      row.emplace_back("");
      row.emplace_back("");
    }
    row.push_back(e.name == 0 ? "" : trace.String(e.name));
    row.push_back(e.loc.file == 0 ? "" : trace.String(e.loc.file));
    row.push_back(e.loc.line == 0 ? "" : std::to_string(e.loc.line));
    row.push_back(e.stack == kInvalidStack ? "" : std::to_string(e.stack));
    writer.WriteRow(row);
  }
}

namespace {

Status WriteFileContent(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open " + path);
  }
  out << content;
  out.flush();
  if (!out) {
    return Status::Error("write failed for " + path);
  }
  return Status::Ok();
}

Result<std::string> ReadFileContent(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::Error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Status WriteTraceCsvBundle(const Trace& trace, const std::string& dir) {
  // strings.csv: id,text (ids are the row order, written explicitly for
  // robustness against external re-sorting).
  {
    std::ostringstream out;
    CsvWriter writer(out);
    writer.WriteRow({"id", "text"});
    const auto& strings = trace.string_pool().strings();
    for (size_t i = 0; i < strings.size(); ++i) {
      writer.WriteRow({std::to_string(i), strings[i]});
    }
    Status status = WriteFileContent(dir + "/strings.csv", out.str());
    if (!status.ok()) {
      return status;
    }
  }
  // stacks.csv: stack_id,position,frame_sid.
  {
    std::ostringstream out;
    CsvWriter writer(out);
    writer.WriteRow({"stack_id", "position", "frame_sid"});
    for (StackId id = 0; id < trace.stack_count(); ++id) {
      const CallStack& stack = trace.Stack(id);
      for (size_t pos = 0; pos < stack.frames.size(); ++pos) {
        writer.WriteRow({std::to_string(id), std::to_string(pos),
                         std::to_string(stack.frames[pos])});
      }
    }
    Status status = WriteFileContent(dir + "/stacks.csv", out.str());
    if (!status.ok()) {
      return status;
    }
  }
  // events.csv: numeric, lossless.
  {
    std::ostringstream out;
    CsvWriter writer(out);
    writer.WriteRow({"kind", "context", "task", "addr", "size", "type", "subclass", "lock_type",
                     "mode", "name_sid", "file_sid", "line", "stack", "range"});
    for (const TraceEvent& e : trace.events()) {
      writer.WriteRow(
          {std::to_string(static_cast<int>(e.kind)), std::to_string(static_cast<int>(e.context)),
           std::to_string(e.task_id), std::to_string(e.addr), std::to_string(e.size),
           e.type == kInvalidTypeId ? "" : std::to_string(e.type), std::to_string(e.subclass),
           std::to_string(static_cast<int>(e.lock_type)),
           std::to_string(static_cast<int>(e.mode)), std::to_string(e.name),
           std::to_string(e.loc.file), std::to_string(e.loc.line),
           e.stack == kInvalidStack ? "" : std::to_string(e.stack),
           e.has_range ? StrFormat("%llu:%llu", static_cast<unsigned long long>(e.range_start),
                                   static_cast<unsigned long long>(e.range_end))
                       : ""});
    }
    Status status = WriteFileContent(dir + "/events.csv", out.str());
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

Result<Trace> ReadTraceCsvBundle(const std::string& dir) {
  Trace trace;

  auto strings_text = ReadFileContent(dir + "/strings.csv");
  if (!strings_text.ok()) {
    return strings_text.status();
  }
  auto strings_rows = ParseCsv(strings_text.value());
  if (!strings_rows.ok()) {
    return strings_rows.status();
  }
  std::vector<std::string> strings;
  for (size_t i = 1; i < strings_rows.value().size(); ++i) {
    const auto& row = strings_rows.value()[i];
    if (row.size() != 2) {
      return Status::Error("strings.csv: bad arity");
    }
    uint64_t id = 0;
    if (!ParseUint64(row[0], &id) || id != strings.size()) {
      return Status::Error("strings.csv: ids must be dense and ordered");
    }
    strings.push_back(row[1]);
  }
  if (strings.empty() || !strings[0].empty()) {
    return Status::Error("strings.csv: id 0 must be the empty string");
  }
  trace.mutable_string_pool().Reset(std::move(strings));

  auto stacks_text = ReadFileContent(dir + "/stacks.csv");
  if (!stacks_text.ok()) {
    return stacks_text.status();
  }
  auto stacks_rows = ParseCsv(stacks_text.value());
  if (!stacks_rows.ok()) {
    return stacks_rows.status();
  }
  std::vector<CallStack> stacks;
  for (size_t i = 1; i < stacks_rows.value().size(); ++i) {
    const auto& row = stacks_rows.value()[i];
    if (row.size() != 3) {
      return Status::Error("stacks.csv: bad arity");
    }
    uint64_t id = 0;
    uint64_t pos = 0;
    uint64_t frame = 0;
    if (!ParseUint64(row[0], &id) || !ParseUint64(row[1], &pos) ||
        !ParseUint64(row[2], &frame) || frame >= trace.string_pool().size()) {
      return Status::Error("stacks.csv: bad row");
    }
    if (id >= stacks.size()) {
      if (id != stacks.size()) {
        return Status::Error("stacks.csv: stack ids must be dense");
      }
      stacks.emplace_back();
    }
    if (pos != stacks[id].frames.size()) {
      return Status::Error("stacks.csv: frame positions must be dense and ordered");
    }
    stacks[id].frames.push_back(static_cast<StringId>(frame));
  }
  trace.ResetStacks(std::move(stacks));

  auto events_text = ReadFileContent(dir + "/events.csv");
  if (!events_text.ok()) {
    return events_text.status();
  }
  auto events_rows = ParseCsv(events_text.value());
  if (!events_rows.ok()) {
    return events_rows.status();
  }
  for (size_t i = 1; i < events_rows.value().size(); ++i) {
    const auto& row = events_rows.value()[i];
    // 13 columns is the pre-range layout; 14 adds the optional range column.
    if (row.size() != 13 && row.size() != 14) {
      return Status::Error("events.csv: bad arity");
    }
    auto parse_field = [&](size_t index, uint64_t* value) {
      return ParseUint64(row[index], value);
    };
    uint64_t kind = 0;
    uint64_t context = 0;
    uint64_t task = 0;
    uint64_t addr = 0;
    uint64_t size = 0;
    uint64_t subclass = 0;
    uint64_t lock_type = 0;
    uint64_t mode = 0;
    uint64_t name = 0;
    uint64_t file = 0;
    uint64_t line = 0;
    if (!parse_field(0, &kind) || !parse_field(1, &context) || !parse_field(2, &task) ||
        !parse_field(3, &addr) || !parse_field(4, &size) || !parse_field(6, &subclass) ||
        !parse_field(7, &lock_type) || !parse_field(8, &mode) || !parse_field(9, &name) ||
        !parse_field(10, &file) || !parse_field(11, &line) ||
        kind > static_cast<uint64_t>(EventKind::kStaticLockDef) || context > 2 ||
        lock_type >= kNumLockTypes || mode > 1 || name >= trace.string_pool().size() ||
        file >= trace.string_pool().size()) {
      return Status::Error(StrFormat("events.csv: bad row %zu", i));
    }
    TraceEvent e;
    e.kind = static_cast<EventKind>(kind);
    e.context = static_cast<ContextKind>(context);
    e.task_id = static_cast<uint32_t>(task);
    e.addr = addr;
    e.size = static_cast<uint32_t>(size);
    if (row[5].empty()) {
      e.type = kInvalidTypeId;
    } else {
      uint64_t type = 0;
      if (!ParseUint64(row[5], &type)) {
        return Status::Error(StrFormat("events.csv: bad type in row %zu", i));
      }
      e.type = static_cast<TypeId>(type);
    }
    e.subclass = static_cast<SubclassId>(subclass);
    e.lock_type = static_cast<LockType>(lock_type);
    e.mode = static_cast<AcquireMode>(mode);
    e.name = static_cast<StringId>(name);
    e.loc.file = static_cast<StringId>(file);
    e.loc.line = static_cast<uint32_t>(line);
    if (row[12].empty()) {
      e.stack = kInvalidStack;
    } else {
      uint64_t stack = 0;
      if (!ParseUint64(row[12], &stack) || stack >= trace.stack_count()) {
        return Status::Error(StrFormat("events.csv: bad stack in row %zu", i));
      }
      e.stack = static_cast<StackId>(stack);
    }
    if (row.size() == 14 && !row[13].empty()) {
      size_t colon = row[13].find(':');
      uint64_t start = 0;
      uint64_t end = 0;
      if (colon == std::string::npos || !ParseUint64(row[13].substr(0, colon), &start) ||
          !ParseUint64(row[13].substr(colon + 1), &end)) {
        return Status::Error(StrFormat("events.csv: bad range in row %zu", i));
      }
      e.has_range = true;
      e.range_start = start;
      e.range_end = end;
    }
    trace.Append(e);
  }
  return trace;
}

}  // namespace lockdoc
