#include "src/trace/trace.h"

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

uint64_t Trace::Append(TraceEvent event) {
  event.seq = events_.size();
  events_.push_back(event);
  return event.seq;
}

StackId Trace::InternStack(const CallStack& stack) {
  auto it = stack_index_.find(stack);
  if (it != stack_index_.end()) {
    return it->second;
  }
  StackId id = static_cast<StackId>(stacks_.size());
  stacks_.push_back(stack);
  stack_index_.emplace(stack, id);
  return id;
}

const TraceEvent& Trace::event(uint64_t seq) const {
  LOCKDOC_CHECK(seq < events_.size());
  return events_[seq];
}

const CallStack& Trace::Stack(StackId id) const {
  LOCKDOC_CHECK(id < stacks_.size());
  return stacks_[id];
}

std::string Trace::FormatLoc(const SourceLoc& loc) const {
  return StrFormat("%s:%u", String(loc.file).c_str(), loc.line);
}

std::string Trace::FormatStack(StackId id) const {
  if (id == kInvalidStack) {
    return "<no stack>";
  }
  const CallStack& stack = Stack(id);
  std::string result;
  for (size_t i = 0; i < stack.frames.size(); ++i) {
    if (i != 0) {
      result += " <- ";
    }
    result += String(stack.frames[i]);
  }
  return result;
}

void Trace::ResetStacks(std::vector<CallStack> stacks) {
  stacks_ = std::move(stacks);
  stack_index_.clear();
  for (size_t i = 0; i < stacks_.size(); ++i) {
    stack_index_.emplace(stacks_[i], static_cast<StackId>(i));
  }
}

}  // namespace lockdoc
