// Binary (de)serialization of traces. The format is a simple
// varint-compressed record stream:
//
//   magic "LDTRACE1" | string table | stack table | event count | events
//
// Traces can be archived and re-analyzed later, which is the main practical
// advantage the paper claims for ex-post analysis (Sec. 3.3).
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/trace.h"
#include "src/util/status.h"

namespace lockdoc {

// Serializes `trace` to `out`.
void WriteTrace(const Trace& trace, std::ostream& out);

// Deserializes a trace from `in`. Fails on malformed input.
Result<Trace> ReadTrace(std::istream& in);

// Convenience file wrappers.
Status WriteTraceToFile(const Trace& trace, const std::string& path);
Result<Trace> ReadTraceFromFile(const std::string& path);

}  // namespace lockdoc

#endif  // SRC_TRACE_TRACE_IO_H_
