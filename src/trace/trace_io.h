// Binary (de)serialization of traces.
//
// Two on-disk formats are understood:
//
//   v1 ("LDTRACE1"): a bare varint record stream —
//       magic | string table | stack table | event count | events
//     No redundancy: one flipped bit or a truncated write makes everything
//     after it unreadable.
//
//   v2 ("LDTRACE2", written by default): a framed stream —
//       magic | frame*
//     where every frame is
//       marker(4) | type(1) | seq(4 LE) | length(4 LE) | payload | crc32(4 LE)
//     The CRC covers type+seq+length+payload. Section frames carry the
//     string table and the stack table; event frames carry bounded chunks
//     of events; a final end frame records the total event count so
//     truncation is always detectable.
//
// Traces can be archived and re-analyzed later, which is the main practical
// advantage the paper claims for ex-post analysis (Sec. 3.3) — and what
// makes the archived file a single point of failure. The reader therefore
// supports a salvage mode: instead of failing on the first bad byte it
// resynchronizes to the next intact frame, returns the partial trace that
// survived, and reports exactly what was lost in a TraceReadReport.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "src/trace/trace.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace lockdoc {

enum class TraceFormat {
  kV1,
  kV2,
};

// v2 framing constants, exposed for the fault-injection corruptor and the
// corruption test suite.
inline constexpr unsigned char kTraceFrameMarker[4] = {0xAB, 'L', 'D', 0xF2};
// marker + type + seq + length.
inline constexpr size_t kTraceFrameHeaderSize = 4 + 1 + 4 + 4;
// CRC trailer.
inline constexpr size_t kTraceFrameTrailerSize = 4;
// Events per event frame written by WriteTrace.
inline constexpr size_t kTraceEventsPerFrame = 4096;

struct TraceReadOptions {
  // When true, bad frames are skipped (resynchronizing to the next intact
  // frame marker) and a partial trace is returned instead of an error.
  // Reading fails only if nothing interpretable survives.
  bool salvage = false;
  // When set, the strict v2 read runs frame CRCs and event-frame decoding
  // on the pool. Results — the trace and every error message — are
  // identical to the serial read at any thread count; salvage mode ignores
  // the pool (resynchronization is inherently sequential).
  ThreadPool* pool = nullptr;
};

// What the reader saw. In strict mode a non-clean report never escapes (the
// read fails instead); in salvage mode it itemizes the damage.
struct TraceReadReport {
  // 1 or 2 once the magic was recognized, 0 otherwise.
  uint32_t format_version = 0;
  uint64_t file_size = 0;

  // Framing damage (v2).
  uint64_t frames_ok = 0;
  uint64_t frames_bad_crc = 0;
  uint64_t frames_bad_length = 0;
  uint64_t frames_duplicate = 0;
  // Bytes discarded while scanning for the next frame marker.
  uint64_t bytes_skipped = 0;

  // Record damage.
  uint64_t events_salvaged = 0;
  // Events known to be lost (declared by the writer but not recovered).
  uint64_t events_dropped = 0;
  // Events discarded because their content was malformed (bad enum value,
  // dangling string/stack reference).
  uint64_t bad_event_records = 0;
  // Stack references cleared because the stack table (or the entry) was lost.
  uint64_t stack_refs_cleared = 0;

  bool string_table_lost = false;
  bool stack_table_lost = false;

  // The stream ended mid-frame or the end frame never arrived.
  bool truncated = false;
  uint64_t truncation_offset = 0;

  // True iff the input parsed without any anomaly.
  bool clean() const;
  // Multi-line human-readable damage summary (used by `lockdoc doctor`).
  std::string ToString() const;
};

// Serializes `trace` to `out`. v2 unless asked otherwise.
void WriteTrace(const Trace& trace, std::ostream& out,
                TraceFormat format = TraceFormat::kV2);

// Deserializes a trace from `in`. Strict: fails on the first malformed
// byte, with the byte offset in the error message. Accepts v1 and v2.
Result<Trace> ReadTrace(std::istream& in);

// As above with explicit options; fills `*report` (may be null) in both
// strict and salvage mode.
Result<Trace> ReadTrace(std::istream& in, const TraceReadOptions& options,
                        TraceReadReport* report);

// Parses a trace already resident in memory (the serve spool reads files
// with the hardened loop in src/util/file_io.h and then parses the bytes).
Result<Trace> ReadTraceFromBytes(std::string_view bytes, const TraceReadOptions& options,
                                 TraceReadReport* report);

// Convenience file wrappers.
Status WriteTraceToFile(const Trace& trace, const std::string& path,
                        TraceFormat format = TraceFormat::kV2);
Result<Trace> ReadTraceFromFile(const std::string& path);
Result<Trace> ReadTraceFromFile(const std::string& path, const TraceReadOptions& options,
                                TraceReadReport* report);

}  // namespace lockdoc

#endif  // SRC_TRACE_TRACE_IO_H_
