#include "src/trace/corruptor.h"

#include <cstring>
#include <vector>

#include "src/trace/trace_io.h"
#include "src/util/rng.h"

namespace lockdoc {
namespace {

constexpr size_t kMagicSize = 8;

// Byte offsets of every v2 frame (marker position). Empty for v1 input or
// when the framing is unrecognizable.
std::vector<size_t> FindFrames(const std::string& bytes) {
  std::vector<size_t> frames;
  const char* marker = reinterpret_cast<const char*>(kTraceFrameMarker);
  size_t pos = kMagicSize;
  while (pos + kTraceFrameHeaderSize + kTraceFrameTrailerSize <= bytes.size()) {
    size_t found = bytes.find(marker, pos, sizeof(kTraceFrameMarker));
    if (found == std::string::npos) {
      break;
    }
    frames.push_back(found);
    pos = found + sizeof(kTraceFrameMarker);
  }
  return frames;
}

// [start, end) of the frame beginning at `marker_pos`, clamped to the file.
std::pair<size_t, size_t> FrameSpan(const std::string& bytes, size_t marker_pos) {
  uint64_t length = 0;
  if (marker_pos + kTraceFrameHeaderSize <= bytes.size()) {
    const auto* b = reinterpret_cast<const unsigned char*>(bytes.data() + marker_pos + 9);
    length = static_cast<uint64_t>(b[0]) | static_cast<uint64_t>(b[1]) << 8 |
             static_cast<uint64_t>(b[2]) << 16 | static_cast<uint64_t>(b[3]) << 24;
  }
  size_t end = marker_pos + kTraceFrameHeaderSize + length + kTraceFrameTrailerSize;
  return {marker_pos, std::min(end, bytes.size())};
}

std::string Truncate(const std::string& bytes, Rng& rng) {
  // Keep at least the magic so the format is still identified; cut anywhere
  // after it, including mid-frame and mid-record.
  size_t keep = rng.Range(kMagicSize, bytes.size() - 1);
  return bytes.substr(0, keep);
}

std::string BitFlip(const std::string& bytes, Rng& rng) {
  std::string out = bytes;
  uint64_t flips = rng.Range(1, 8);
  for (uint64_t i = 0; i < flips; ++i) {
    size_t pos = rng.Range(kMagicSize, out.size() - 1);
    out[pos] = static_cast<char>(out[pos] ^ (1u << rng.Below(8)));
  }
  return out;
}

std::string ZeroRun(const std::string& bytes, Rng& rng) {
  std::string out = bytes;
  size_t start = rng.Range(kMagicSize, out.size() - 1);
  size_t len = std::min<size_t>(rng.Range(1, 256), out.size() - start);
  // All-zero bytes may coincide with zero payload bytes; force a change by
  // also flipping the first byte of the run if zeroing it was a no-op.
  bool changed = false;
  for (size_t i = 0; i < len; ++i) {
    changed = changed || out[start + i] != 0;
    out[start + i] = 0;
  }
  if (!changed) {
    out[start] = 1;
  }
  return out;
}

std::string DropRange(const std::string& bytes, size_t start, size_t end) {
  return bytes.substr(0, start) + bytes.substr(end);
}

std::string DuplicateRange(const std::string& bytes, size_t start, size_t end) {
  return bytes.substr(0, end) + bytes.substr(start, end - start) + bytes.substr(end);
}

std::string FrameDrop(const std::string& bytes, Rng& rng) {
  std::vector<size_t> frames = FindFrames(bytes);
  if (frames.empty()) {
    // v1: no frames; delete a random span instead.
    size_t start = rng.Range(kMagicSize, bytes.size() - 1);
    size_t end = std::min(bytes.size(), start + rng.Range(1, 64));
    return DropRange(bytes, start, end);
  }
  auto [start, end] = FrameSpan(bytes, frames[rng.Below(frames.size())]);
  return DropRange(bytes, start, end);
}

std::string FrameDuplicate(const std::string& bytes, Rng& rng) {
  std::vector<size_t> frames = FindFrames(bytes);
  if (frames.empty()) {
    size_t start = rng.Range(kMagicSize, bytes.size() - 1);
    size_t end = std::min(bytes.size(), start + rng.Range(1, 64));
    return DuplicateRange(bytes, start, end);
  }
  auto [start, end] = FrameSpan(bytes, frames[rng.Below(frames.size())]);
  return DuplicateRange(bytes, start, end);
}

std::string LengthLie(const std::string& bytes, Rng& rng) {
  std::vector<size_t> frames = FindFrames(bytes);
  std::string out = bytes;
  if (frames.empty()) {
    // v1 has no length fields framing-wise; lie in a random varint byte.
    size_t pos = rng.Range(kMagicSize, out.size() - 1);
    char lie = static_cast<char>(rng.Range(0x01, 0x7f));
    if (out[pos] == lie) {
      lie = static_cast<char>(lie ^ 0x40);
    }
    out[pos] = lie;
    return out;
  }
  size_t marker_pos = frames[rng.Below(frames.size())];
  size_t len_off = marker_pos + 9;  // marker(4) + type(1) + seq(4)
  if (len_off + 4 > out.size()) {
    return Truncate(bytes, rng);
  }
  // Write a different length; sometimes enormous (points past EOF),
  // sometimes small (lands mid-payload). The CRC is left stale on purpose.
  uint32_t old_len = 0;
  std::memcpy(&old_len, out.data() + len_off, 4);
  uint32_t lie = rng.Chance(0.5) ? static_cast<uint32_t>(rng.Next())
                                 : static_cast<uint32_t>(rng.Below(4096));
  if (lie == old_len) {
    ++lie;
  }
  out[len_off] = static_cast<char>(lie & 0xff);
  out[len_off + 1] = static_cast<char>((lie >> 8) & 0xff);
  out[len_off + 2] = static_cast<char>((lie >> 16) & 0xff);
  out[len_off + 3] = static_cast<char>((lie >> 24) & 0xff);
  return out;
}

}  // namespace

const char* CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kTruncate:
      return "truncate";
    case CorruptionKind::kBitFlip:
      return "bit-flip";
    case CorruptionKind::kZeroRun:
      return "zero-run";
    case CorruptionKind::kFrameDrop:
      return "frame-drop";
    case CorruptionKind::kFrameDuplicate:
      return "frame-duplicate";
    case CorruptionKind::kLengthLie:
      return "length-lie";
  }
  return "unknown";
}

std::string CorruptTraceBytes(const std::string& bytes, CorruptionKind kind, uint64_t seed) {
  if (bytes.size() <= kMagicSize) {
    return bytes.substr(0, bytes.size() / 2);
  }
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(kind));
  switch (kind) {
    case CorruptionKind::kTruncate:
      return Truncate(bytes, rng);
    case CorruptionKind::kBitFlip:
      return BitFlip(bytes, rng);
    case CorruptionKind::kZeroRun:
      return ZeroRun(bytes, rng);
    case CorruptionKind::kFrameDrop:
      return FrameDrop(bytes, rng);
    case CorruptionKind::kFrameDuplicate:
      return FrameDuplicate(bytes, rng);
    case CorruptionKind::kLengthLie:
      return LengthLie(bytes, rng);
  }
  return bytes;
}

}  // namespace lockdoc
