#include "src/trace/string_pool.h"

#include "src/util/logging.h"

namespace lockdoc {

StringPool::StringPool() { Intern(""); }

StringId StringPool::Intern(std::string_view text) {
  auto it = index_.find(text);
  if (it != index_.end()) {
    return it->second;
  }
  StringId id = static_cast<StringId>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), id);
  return id;
}

std::optional<StringId> StringPool::Find(std::string_view text) const {
  auto it = index_.find(text);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& StringPool::Lookup(StringId id) const {
  LOCKDOC_CHECK(id < strings_.size());
  return strings_[id];
}

void StringPool::Reset(std::vector<std::string> strings) {
  LOCKDOC_CHECK(!strings.empty() && strings[0].empty());
  strings_ = std::move(strings);
  index_.clear();
  for (size_t i = 0; i < strings_.size(); ++i) {
    index_.emplace(strings_[i], static_cast<StringId>(i));
  }
}

}  // namespace lockdoc
