#include "src/trace/event.h"

namespace lockdoc {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kAlloc:
      return "alloc";
    case EventKind::kFree:
      return "free";
    case EventKind::kLockAcquire:
      return "lock";
    case EventKind::kLockRelease:
      return "unlock";
    case EventKind::kMemRead:
      return "read";
    case EventKind::kMemWrite:
      return "write";
    case EventKind::kStaticLockDef:
      return "static_lock";
  }
  return "?";
}

std::string_view ContextKindName(ContextKind kind) {
  switch (kind) {
    case ContextKind::kTask:
      return "task";
    case ContextKind::kSoftirq:
      return "softirq";
    case ContextKind::kHardirq:
      return "hardirq";
  }
  return "?";
}

}  // namespace lockdoc
