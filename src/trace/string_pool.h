// String interning for trace metadata (file names, function names, lock
// names). Ids are dense and stable; id 0 is always the empty string.
#ifndef SRC_TRACE_STRING_POOL_H_
#define SRC_TRACE_STRING_POOL_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/model/ids.h"

namespace lockdoc {

class StringPool {
 public:
  StringPool();

  // Returns the id for `text`, interning it on first use.
  StringId Intern(std::string_view text);

  // Id -> string. Ids must come from this pool.
  const std::string& Lookup(StringId id) const;

  // Reverse lookup without interning; nullopt if `text` was never interned.
  std::optional<StringId> Find(std::string_view text) const;

  size_t size() const { return strings_.size(); }

  // For serialization: the full table in id order.
  const std::vector<std::string>& strings() const { return strings_; }

  // Rebuilds the pool from a serialized table (index == id).
  void Reset(std::vector<std::string> strings);

 private:
  std::vector<std::string> strings_;
  // Owns its keys (short strings would otherwise dangle via SSO when the
  // vector reallocates). Heterogeneous lookup avoids per-query allocations.
  std::map<std::string, StringId, std::less<>> index_;
};

}  // namespace lockdoc

#endif  // SRC_TRACE_STRING_POOL_H_
