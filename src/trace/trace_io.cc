#include "src/trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace lockdoc {
namespace {

constexpr char kMagic[8] = {'L', 'D', 'T', 'R', 'A', 'C', 'E', '1'};

void PutVarint(std::ostream& out, uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

bool GetVarint(std::istream& in, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    int c = in.get();
    if (c == EOF || shift > 63) {
      return false;
    }
    result |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  *value = result;
  return true;
}

void PutString(std::ostream& out, const std::string& text) {
  PutVarint(out, text.size());
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

bool GetString(std::istream& in, std::string* text) {
  uint64_t size = 0;
  if (!GetVarint(in, &size)) {
    return false;
  }
  // Defensive cap: no interned string in a sane trace exceeds this.
  if (size > (1u << 20)) {
    return false;
  }
  text->resize(size);
  in.read(text->data(), static_cast<std::streamsize>(size));
  return in.good() || (size == 0 && !in.bad());
}

void PutEvent(std::ostream& out, const TraceEvent& e) {
  PutVarint(out, static_cast<uint64_t>(e.kind));
  PutVarint(out, static_cast<uint64_t>(e.context));
  PutVarint(out, e.task_id);
  PutVarint(out, e.addr);
  PutVarint(out, e.size);
  PutVarint(out, e.type == kInvalidTypeId ? 0 : static_cast<uint64_t>(e.type) + 1);
  PutVarint(out, e.subclass);
  PutVarint(out, static_cast<uint64_t>(e.lock_type));
  PutVarint(out, static_cast<uint64_t>(e.mode));
  PutVarint(out, e.name);
  PutVarint(out, e.loc.file);
  PutVarint(out, e.loc.line);
  PutVarint(out, e.stack == kInvalidStack ? 0 : static_cast<uint64_t>(e.stack) + 1);
}

bool GetEvent(std::istream& in, TraceEvent* e) {
  uint64_t kind = 0;
  uint64_t context = 0;
  uint64_t task_id = 0;
  uint64_t addr = 0;
  uint64_t size = 0;
  uint64_t type = 0;
  uint64_t subclass = 0;
  uint64_t lock_type = 0;
  uint64_t mode = 0;
  uint64_t name = 0;
  uint64_t file = 0;
  uint64_t line = 0;
  uint64_t stack = 0;
  if (!GetVarint(in, &kind) || !GetVarint(in, &context) || !GetVarint(in, &task_id) ||
      !GetVarint(in, &addr) || !GetVarint(in, &size) || !GetVarint(in, &type) ||
      !GetVarint(in, &subclass) || !GetVarint(in, &lock_type) || !GetVarint(in, &mode) ||
      !GetVarint(in, &name) || !GetVarint(in, &file) || !GetVarint(in, &line) ||
      !GetVarint(in, &stack)) {
    return false;
  }
  if (kind > static_cast<uint64_t>(EventKind::kStaticLockDef) || context > 2 ||
      lock_type >= kNumLockTypes || mode > 1) {
    return false;
  }
  e->kind = static_cast<EventKind>(kind);
  e->context = static_cast<ContextKind>(context);
  e->task_id = static_cast<uint32_t>(task_id);
  e->addr = addr;
  e->size = static_cast<uint32_t>(size);
  e->type = type == 0 ? kInvalidTypeId : static_cast<TypeId>(type - 1);
  e->subclass = static_cast<SubclassId>(subclass);
  e->lock_type = static_cast<LockType>(lock_type);
  e->mode = static_cast<AcquireMode>(mode);
  e->name = static_cast<StringId>(name);
  e->loc.file = static_cast<StringId>(file);
  e->loc.line = static_cast<uint32_t>(line);
  e->stack = stack == 0 ? kInvalidStack : static_cast<StackId>(stack - 1);
  return true;
}

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));

  const auto& strings = trace.string_pool().strings();
  PutVarint(out, strings.size());
  for (const std::string& s : strings) {
    PutString(out, s);
  }

  const auto& stacks = trace.stacks();
  PutVarint(out, stacks.size());
  for (const CallStack& stack : stacks) {
    PutVarint(out, stack.frames.size());
    for (StringId frame : stack.frames) {
      PutVarint(out, frame);
    }
  }

  PutVarint(out, trace.size());
  for (const TraceEvent& e : trace.events()) {
    PutEvent(out, e);
  }
}

Result<Trace> ReadTrace(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Error("ReadTrace: bad magic");
  }

  Trace trace;

  uint64_t string_count = 0;
  if (!GetVarint(in, &string_count)) {
    return Status::Error("ReadTrace: truncated string table");
  }
  std::vector<std::string> strings;
  strings.reserve(string_count);
  for (uint64_t i = 0; i < string_count; ++i) {
    std::string s;
    if (!GetString(in, &s)) {
      return Status::Error("ReadTrace: truncated string entry");
    }
    strings.push_back(std::move(s));
  }
  if (strings.empty() || !strings[0].empty()) {
    return Status::Error("ReadTrace: string table must start with the empty string");
  }
  trace.mutable_string_pool().Reset(std::move(strings));

  uint64_t stack_count = 0;
  if (!GetVarint(in, &stack_count)) {
    return Status::Error("ReadTrace: truncated stack table");
  }
  std::vector<CallStack> stacks;
  stacks.reserve(stack_count);
  for (uint64_t i = 0; i < stack_count; ++i) {
    uint64_t frame_count = 0;
    if (!GetVarint(in, &frame_count) || frame_count > 4096) {
      return Status::Error("ReadTrace: bad stack entry");
    }
    CallStack stack;
    stack.frames.reserve(frame_count);
    for (uint64_t f = 0; f < frame_count; ++f) {
      uint64_t frame = 0;
      if (!GetVarint(in, &frame) || frame >= trace.string_pool().size()) {
        return Status::Error("ReadTrace: bad stack frame");
      }
      stack.frames.push_back(static_cast<StringId>(frame));
    }
    stacks.push_back(std::move(stack));
  }
  trace.ResetStacks(std::move(stacks));

  uint64_t event_count = 0;
  if (!GetVarint(in, &event_count)) {
    return Status::Error("ReadTrace: truncated event count");
  }
  trace.mutable_events().reserve(event_count);
  for (uint64_t i = 0; i < event_count; ++i) {
    TraceEvent e;
    if (!GetEvent(in, &e)) {
      return Status::Error("ReadTrace: truncated or malformed event");
    }
    if (e.stack != kInvalidStack && e.stack >= trace.stack_count()) {
      return Status::Error("ReadTrace: event references unknown stack");
    }
    trace.Append(e);
  }
  return trace;
}

Status WriteTraceToFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Error("WriteTraceToFile: cannot open " + path);
  }
  WriteTrace(trace, out);
  out.flush();
  if (!out) {
    return Status::Error("WriteTraceToFile: write failed for " + path);
  }
  return Status::Ok();
}

Result<Trace> ReadTraceFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error("ReadTraceFromFile: cannot open " + path);
  }
  return ReadTrace(in);
}

}  // namespace lockdoc
