#include "src/trace/trace_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

#include "src/util/crc32.h"
#include "src/util/file_io.h"
#include "src/util/string_util.h"
#include "src/util/varint.h"

namespace lockdoc {
namespace {

constexpr char kMagicV1[8] = {'L', 'D', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kMagicV2[8] = {'L', 'D', 'T', 'R', 'A', 'C', 'E', '2'};

enum FrameType : uint8_t {
  kFrameStrings = 1,
  kFrameStacks = 2,
  kFrameEvents = 3,
  kFrameEnd = 4,
};

// Sanity bound on a single frame payload: an event frame is ~100 KiB, and
// even the string table of a huge trace stays far below this.
constexpr uint64_t kMaxFramePayload = 1ull << 30;
// Defensive cap: no interned string in a sane trace exceeds this.
constexpr uint64_t kMaxStringSize = 1u << 20;
constexpr uint64_t kMaxStackFrames = 4096;
// Cap on the placeholder pool built when the string table was lost; the
// references in CRC-intact event frames can never legitimately exceed it.
constexpr uint64_t kMaxPlaceholderStrings = 1u << 24;

// The whole stream is buffered before parsing (ByteCursor over the bytes):
// salvage needs random access for resynchronization, and absolute byte
// offsets make every error message actionable. The varint/string decoders
// live in src/util/varint.h, shared with the .lockdb snapshot reader.

void PutString(std::string& out, const std::string& text) {
  PutLengthPrefixed(out, text);
}

bool GetString(ByteCursor& in, std::string* text) {
  return GetLengthPrefixed(in, text, kMaxStringSize);
}

// Bit 8 of the kind varint flags an event that carries a [start, end) range
// (kinds occupy bits 0..2). Rangeless events — which includes every event of
// a pre-range trace — serialize bit-identically to the original layout, so
// old readers and writers interoperate on rangeless traces and old traces
// decode unchanged.
constexpr uint64_t kEventRangeFlag = 8;

void PutEvent(std::string& out, const TraceEvent& e) {
  PutVarint(out, static_cast<uint64_t>(e.kind) | (e.has_range ? kEventRangeFlag : 0));
  PutVarint(out, static_cast<uint64_t>(e.context));
  PutVarint(out, e.task_id);
  PutVarint(out, e.addr);
  PutVarint(out, e.size);
  PutVarint(out, e.type == kInvalidTypeId ? 0 : static_cast<uint64_t>(e.type) + 1);
  PutVarint(out, e.subclass);
  PutVarint(out, static_cast<uint64_t>(e.lock_type));
  PutVarint(out, static_cast<uint64_t>(e.mode));
  PutVarint(out, e.name);
  PutVarint(out, e.loc.file);
  PutVarint(out, e.loc.line);
  PutVarint(out, e.stack == kInvalidStack ? 0 : static_cast<uint64_t>(e.stack) + 1);
  if (e.has_range) {
    PutVarint(out, e.range_start);
    PutVarint(out, e.range_end);
  }
}

// Decodes one event and validates every field that can be checked without
// the side tables (enum ranges, id-width bounds). String/stack references
// are validated by the caller once the tables are known.
bool GetEvent(ByteCursor& in, TraceEvent* e) {
  uint64_t kind = 0;
  uint64_t context = 0;
  uint64_t task_id = 0;
  uint64_t addr = 0;
  uint64_t size = 0;
  uint64_t type = 0;
  uint64_t subclass = 0;
  uint64_t lock_type = 0;
  uint64_t mode = 0;
  uint64_t name = 0;
  uint64_t file = 0;
  uint64_t line = 0;
  uint64_t stack = 0;
  if (!GetVarint(in, &kind) || !GetVarint(in, &context) || !GetVarint(in, &task_id) ||
      !GetVarint(in, &addr) || !GetVarint(in, &size) || !GetVarint(in, &type) ||
      !GetVarint(in, &subclass) || !GetVarint(in, &lock_type) || !GetVarint(in, &mode) ||
      !GetVarint(in, &name) || !GetVarint(in, &file) || !GetVarint(in, &line) ||
      !GetVarint(in, &stack)) {
    return false;
  }
  const bool has_range = (kind & kEventRangeFlag) != 0;
  kind &= ~kEventRangeFlag;
  uint64_t range_start = 0;
  uint64_t range_end = 0;
  if (has_range && (!GetVarint(in, &range_start) || !GetVarint(in, &range_end))) {
    return false;
  }
  if (kind > static_cast<uint64_t>(EventKind::kStaticLockDef) || context > 2 ||
      lock_type >= kNumLockTypes || mode > 1) {
    return false;
  }
  if (task_id > UINT32_MAX || size > UINT32_MAX || type > UINT32_MAX ||
      subclass > UINT32_MAX || name >= UINT32_MAX || file >= UINT32_MAX ||
      line > UINT32_MAX || stack > UINT32_MAX) {
    return false;
  }
  e->kind = static_cast<EventKind>(kind);
  e->context = static_cast<ContextKind>(context);
  e->task_id = static_cast<uint32_t>(task_id);
  e->addr = addr;
  e->size = static_cast<uint32_t>(size);
  e->type = type == 0 ? kInvalidTypeId : static_cast<TypeId>(type - 1);
  e->subclass = static_cast<SubclassId>(subclass);
  e->lock_type = static_cast<LockType>(lock_type);
  e->mode = static_cast<AcquireMode>(mode);
  e->name = static_cast<StringId>(name);
  e->loc.file = static_cast<StringId>(file);
  e->loc.line = static_cast<uint32_t>(line);
  e->stack = stack == 0 ? kInvalidStack : static_cast<StackId>(stack - 1);
  e->has_range = has_range;
  e->range_start = range_start;
  e->range_end = range_end;
  return true;
}

// ---------------------------------------------------------------------------
// Writers.
// ---------------------------------------------------------------------------

std::string EncodeStringsPayload(const Trace& trace) {
  std::string payload;
  const auto& strings = trace.string_pool().strings();
  PutVarint(payload, strings.size());
  for (const std::string& s : strings) {
    PutString(payload, s);
  }
  return payload;
}

std::string EncodeStacksPayload(const Trace& trace) {
  std::string payload;
  const auto& stacks = trace.stacks();
  PutVarint(payload, stacks.size());
  for (const CallStack& stack : stacks) {
    PutVarint(payload, stack.frames.size());
    for (StringId frame : stack.frames) {
      PutVarint(payload, frame);
    }
  }
  return payload;
}

void WriteTraceV1(const Trace& trace, std::ostream& out) {
  out.write(kMagicV1, sizeof(kMagicV1));
  std::string body = EncodeStringsPayload(trace);
  body += EncodeStacksPayload(trace);
  PutVarint(body, trace.size());
  for (const TraceEvent& e : trace.events()) {
    PutEvent(body, e);
  }
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
}

void WriteFrame(std::ostream& out, uint8_t type, uint32_t seq, const std::string& payload) {
  std::string header;
  header.reserve(kTraceFrameHeaderSize);
  header.append(reinterpret_cast<const char*>(kTraceFrameMarker), sizeof(kTraceFrameMarker));
  header.push_back(static_cast<char>(type));
  AppendUint32LE(header, seq);
  AppendUint32LE(header, static_cast<uint32_t>(payload.size()));
  // The CRC covers everything after the marker: type, seq, length, payload.
  uint32_t crc = Crc32Update(0, header.data() + sizeof(kTraceFrameMarker),
                             header.size() - sizeof(kTraceFrameMarker));
  crc = Crc32Update(crc, payload.data(), payload.size());
  std::string trailer;
  AppendUint32LE(trailer, crc);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
}

void WriteTraceV2(const Trace& trace, std::ostream& out) {
  out.write(kMagicV2, sizeof(kMagicV2));
  uint32_t seq = 0;
  WriteFrame(out, kFrameStrings, seq++, EncodeStringsPayload(trace));
  WriteFrame(out, kFrameStacks, seq++, EncodeStacksPayload(trace));
  const auto& events = trace.events();
  for (size_t start = 0; start < events.size(); start += kTraceEventsPerFrame) {
    size_t count = std::min(kTraceEventsPerFrame, events.size() - start);
    std::string payload;
    PutVarint(payload, count);
    for (size_t i = 0; i < count; ++i) {
      PutEvent(payload, events[start + i]);
    }
    WriteFrame(out, kFrameEvents, seq++, payload);
  }
  std::string end_payload;
  PutVarint(end_payload, events.size());
  WriteFrame(out, kFrameEnd, seq++, end_payload);
}

// ---------------------------------------------------------------------------
// Readers.
// ---------------------------------------------------------------------------

Status OffsetError(size_t offset, const std::string& what) {
  return Status::Error(StrFormat("ReadTrace: offset 0x%llx: %s",
                                 static_cast<unsigned long long>(offset), what.c_str()));
}

// Validates the string/stack references of `e` against the final tables.
// Returns false if the event must be dropped. In salvage mode a dangling
// stack reference is cleared in place instead of dropping the event.
bool FixupEventRefs(TraceEvent* e, size_t pool_size, const std::vector<bool>& stack_valid,
                    bool salvage, TraceReadReport& report) {
  if (e->name >= pool_size || e->loc.file >= pool_size) {
    return false;
  }
  if (e->stack != kInvalidStack &&
      (e->stack >= stack_valid.size() || !stack_valid[e->stack])) {
    if (!salvage) {
      return false;
    }
    e->stack = kInvalidStack;
    ++report.stack_refs_cleared;
  }
  return true;
}

// --- v1: bare record stream. Strict mode fails at the first bad byte; in
// salvage mode everything before that byte survives (prefix truncation is
// the only recovery v1 admits — there is no framing to resynchronize on).
Result<Trace> ReadTraceV1(std::string_view bytes, const TraceReadOptions& options,
                          TraceReadReport& report) {
  report.format_version = 1;
  const bool salvage = options.salvage;
  ByteCursor in{bytes.data(), bytes.size(), sizeof(kMagicV1)};
  Trace trace;

  // String table: without it nothing downstream is interpretable, so a
  // damaged one is unrecoverable even in salvage mode.
  uint64_t string_count = 0;
  if (!GetVarint(in, &string_count) || string_count > in.remaining() + 1) {
    return OffsetError(in.pos, "truncated string table");
  }
  std::vector<std::string> strings;
  strings.reserve(string_count);
  for (uint64_t i = 0; i < string_count; ++i) {
    std::string s;
    if (!GetString(in, &s)) {
      return OffsetError(in.pos, "truncated string entry");
    }
    strings.push_back(std::move(s));
  }
  if (strings.empty() || !strings[0].empty()) {
    return OffsetError(in.pos, "string table must start with the empty string");
  }
  trace.mutable_string_pool().Reset(std::move(strings));
  const size_t pool_size = trace.string_pool().size();

  auto partial = [&](size_t offset) -> Result<Trace> {
    report.truncated = true;
    report.truncation_offset = offset;
    report.events_salvaged = trace.size();
    return std::move(trace);
  };

  // Stack table.
  uint64_t stack_count = 0;
  size_t section_start = in.pos;
  if (!GetVarint(in, &stack_count) || stack_count > in.remaining() + 1) {
    if (salvage) {
      report.stack_table_lost = true;
      return partial(section_start);
    }
    return OffsetError(in.pos, "truncated stack table");
  }
  std::vector<CallStack> stacks;
  stacks.reserve(stack_count);
  for (uint64_t i = 0; i < stack_count; ++i) {
    size_t entry_start = in.pos;
    uint64_t frame_count = 0;
    if (!GetVarint(in, &frame_count) || frame_count > kMaxStackFrames) {
      if (salvage) {
        report.stack_table_lost = true;
        return partial(entry_start);
      }
      return OffsetError(entry_start, "bad stack entry");
    }
    CallStack stack;
    stack.frames.reserve(frame_count);
    bool ok = true;
    for (uint64_t f = 0; f < frame_count; ++f) {
      uint64_t frame = 0;
      if (!GetVarint(in, &frame) || frame >= pool_size) {
        ok = false;
        break;
      }
      stack.frames.push_back(static_cast<StringId>(frame));
    }
    if (!ok) {
      if (salvage) {
        report.stack_table_lost = true;
        return partial(entry_start);
      }
      return OffsetError(entry_start, "bad stack frame");
    }
    stacks.push_back(std::move(stack));
  }
  trace.ResetStacks(std::move(stacks));

  // Events.
  uint64_t event_count = 0;
  section_start = in.pos;
  if (!GetVarint(in, &event_count)) {
    if (salvage) {
      return partial(section_start);
    }
    return OffsetError(in.pos, "truncated event count");
  }
  std::vector<bool> stack_valid(trace.stack_count(), true);
  trace.mutable_events().reserve(
      std::min<uint64_t>(event_count, in.remaining() / 13 + 1));
  for (uint64_t i = 0; i < event_count; ++i) {
    size_t record_start = in.pos;
    TraceEvent e;
    if (!GetEvent(in, &e) || !FixupEventRefs(&e, pool_size, stack_valid, salvage, report)) {
      if (salvage) {
        report.events_dropped = event_count - i;
        return partial(record_start);
      }
      return OffsetError(record_start, "truncated or malformed event");
    }
    trace.Append(e);
  }
  report.events_salvaged = trace.size();
  return std::move(trace);
}

// --- v2 strict: one serial header walk, then CRC verification and
// event-frame decoding fanned out over the thread pool (inline when no pool
// is given). Error behavior is bit-for-bit the serial reader's: every check
// the serial loop runs *before* a frame's CRC fires immediately during the
// walk, and every check it runs *after* the CRC is recorded as a pending
// error that only surfaces if no earlier frame's CRC failed — so the first
// error the serial reader would report is the one returned, at the same
// offset, regardless of thread count.
Result<Trace> ReadTraceV2Strict(std::string_view bytes, ThreadPool* pool,
                                TraceReadReport& report) {
  report.format_version = 2;
  const size_t kHeader = kTraceFrameHeaderSize;
  const size_t kTrailer = kTraceFrameTrailerSize;
  const char* marker = reinterpret_cast<const char*>(kTraceFrameMarker);

  struct FrameRef {
    size_t marker_pos = 0;
    uint8_t type = 0;
    uint32_t seq = 0;
    size_t payload_off = 0;
    size_t length = 0;
  };

  // --- Phase A: serial header walk (no CRCs). ---
  std::vector<FrameRef> frames;
  std::optional<Status> pending;  // First post-CRC structural error.
  std::optional<std::pair<size_t, size_t>> strings_frame;  // (payload offset, length)
  std::optional<std::pair<size_t, size_t>> stacks_frame;
  std::vector<std::pair<size_t, size_t>> event_frames;
  std::optional<uint64_t> declared_total;
  bool saw_end = false;
  uint32_t expected_seq = 0;
  size_t pos = sizeof(kMagicV2);
  size_t parse_end = pos;

  while (pos < bytes.size()) {
    if (bytes.compare(pos, sizeof(kTraceFrameMarker), marker, sizeof(kTraceFrameMarker)) !=
        0) {
      return OffsetError(pos, "bad frame marker");
    }
    if (pos + kHeader + kTrailer > bytes.size()) {
      return OffsetError(pos, "truncated frame");
    }
    uint8_t type = static_cast<uint8_t>(bytes[pos + 4]);
    uint32_t seq = LoadUint32LE(bytes.data() + pos + 5);
    uint64_t length = LoadUint32LE(bytes.data() + pos + 9);
    if (length > kMaxFramePayload || pos + kHeader + length + kTrailer > bytes.size()) {
      return OffsetError(pos, StrFormat("frame length %llu exceeds remaining bytes",
                                        static_cast<unsigned long long>(length)));
    }
    size_t payload_off = pos + kHeader;
    size_t frame_end = payload_off + length + kTrailer;
    frames.push_back({pos, type, seq, payload_off, length});

    if (seq != expected_seq) {
      pending = OffsetError(pos, "frame out of sequence");
      break;
    }
    ++expected_seq;
    if (saw_end) {
      pending = OffsetError(pos, "frame after end frame");
      break;
    }
    if ((seq == 0 && type != kFrameStrings) || (seq == 1 && type != kFrameStacks) ||
        (seq >= 2 && type != kFrameEvents && type != kFrameEnd)) {
      pending = OffsetError(pos, "unexpected frame type");
      break;
    }
    switch (type) {
      case kFrameStrings:
        strings_frame = {payload_off, length};
        break;
      case kFrameStacks:
        stacks_frame = {payload_off, length};
        break;
      case kFrameEvents:
        event_frames.emplace_back(payload_off, length);
        break;
      case kFrameEnd: {
        ByteCursor c{bytes.data(), payload_off + length, payload_off};
        uint64_t total = 0;
        if (!GetVarint(c, &total)) {
          pending = OffsetError(payload_off, "malformed end frame");
        } else {
          declared_total = total;
          saw_end = true;
        }
        break;
      }
    }
    if (pending.has_value()) {
      break;
    }
    pos = frame_end;
    parse_end = frame_end;
  }

  // --- Parallel CRC sweep over every frame the walk admitted (including a
  // frame whose structural error is pending: its CRC check came first in
  // the serial order). Earliest failure wins. ---
  std::vector<uint8_t> crc_good(frames.size(), 1);
  auto crc_body = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const FrameRef& f = frames[i];
      uint32_t crc = Crc32(bytes.data() + f.marker_pos + sizeof(kTraceFrameMarker),
                           kHeader - sizeof(kTraceFrameMarker) + f.length);
      crc_good[i] = crc == LoadUint32LE(bytes.data() + f.payload_off + f.length) ? 1 : 0;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(frames.size(), crc_body);
  } else {
    crc_body(0, frames.size());
  }
  for (size_t i = 0; i < frames.size(); ++i) {
    if (!crc_good[i]) {
      return OffsetError(frames[i].marker_pos, "frame CRC mismatch");
    }
  }
  if (pending.has_value()) {
    return *pending;
  }
  if (!saw_end) {
    return OffsetError(parse_end, "missing end frame (truncated trace)");
  }
  report.frames_ok = frames.size();

  // --- Phase B: payload decoding. Strings and stacks are small and stay
  // serial; event frames decode in parallel into per-frame slots merged in
  // writer order. ---
  if (!strings_frame.has_value()) {
    return OffsetError(parse_end, "missing string table");
  }
  std::vector<std::string> strings;
  {
    ByteCursor c{bytes.data(), strings_frame->first + strings_frame->second,
                 strings_frame->first};
    uint64_t count = 0;
    bool strings_ok = GetVarint(c, &count) && count <= strings_frame->second;
    if (strings_ok) {
      strings.reserve(count);
      for (uint64_t i = 0; i < count && strings_ok; ++i) {
        std::string s;
        strings_ok = GetString(c, &s);
        if (strings_ok) {
          strings.push_back(std::move(s));
        }
      }
      strings_ok = strings_ok && !strings.empty() && strings[0].empty();
    }
    if (!strings_ok) {
      return OffsetError(strings_frame->first, "malformed string table");
    }
  }

  if (!stacks_frame.has_value()) {
    return OffsetError(parse_end, "missing stack table");
  }
  std::vector<CallStack> stacks;
  {
    ByteCursor c{bytes.data(), stacks_frame->first + stacks_frame->second,
                 stacks_frame->first};
    uint64_t count = 0;
    bool stacks_ok = GetVarint(c, &count) && count <= stacks_frame->second;
    if (stacks_ok) {
      stacks.reserve(count);
      for (uint64_t i = 0; i < count && stacks_ok; ++i) {
        uint64_t frame_count = 0;
        stacks_ok = GetVarint(c, &frame_count) && frame_count <= kMaxStackFrames;
        if (!stacks_ok) {
          break;
        }
        CallStack stack;
        stack.frames.reserve(frame_count);
        for (uint64_t f = 0; f < frame_count && stacks_ok; ++f) {
          uint64_t frame = 0;
          stacks_ok = GetVarint(c, &frame) && frame < UINT32_MAX;
          if (stacks_ok) {
            stack.frames.push_back(static_cast<StringId>(frame));
          }
        }
        if (stacks_ok) {
          stacks.push_back(std::move(stack));
        }
      }
    }
    if (!stacks_ok) {
      return OffsetError(stacks_frame->first, "malformed stack table");
    }
  }
  const size_t pool_size = strings.size();
  for (const CallStack& stack : stacks) {
    for (StringId frame : stack.frames) {
      if (frame >= pool_size) {
        return OffsetError(stacks_frame->first, "stack frame references unknown string");
      }
    }
  }

  const size_t stack_count = stacks.size();
  struct FrameDecode {
    std::vector<TraceEvent> events;
    size_t error_offset = 0;
    const char* error = nullptr;
    // String/stack references are validated during the parallel decode
    // (pool_size and stack_count are fixed by then); decode errors keep
    // priority over reference errors below, matching the serial order.
    bool bad_reference = false;
  };
  std::vector<FrameDecode> slots(event_frames.size());
  auto decode_body = [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      const auto& [off, len] = event_frames[j];
      FrameDecode& slot = slots[j];
      ByteCursor c{bytes.data(), off + len, off};
      uint64_t count = 0;
      if (!GetVarint(c, &count) || count > len) {
        slot.error_offset = off;
        slot.error = "malformed event frame";
        continue;
      }
      slot.events.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        size_t record_start = c.pos;
        TraceEvent e;
        if (!GetEvent(c, &e)) {
          slot.error_offset = record_start;
          slot.error = "truncated or malformed event";
          break;
        }
        if (e.name >= pool_size || e.loc.file >= pool_size ||
            (e.stack != kInvalidStack && e.stack >= stack_count)) {
          slot.bad_reference = true;
        }
        slot.events.push_back(e);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(slots.size(), decode_body);
  } else {
    decode_body(0, slots.size());
  }
  for (const FrameDecode& slot : slots) {
    if (slot.error != nullptr) {
      return OffsetError(slot.error_offset, slot.error);
    }
  }
  for (const FrameDecode& slot : slots) {
    if (slot.bad_reference) {
      return OffsetError(parse_end, "event references unknown string");
    }
  }

  Trace trace;
  trace.mutable_string_pool().Reset(std::move(strings));
  trace.ResetStacks(std::move(stacks));
  size_t total_events = 0;
  for (const FrameDecode& slot : slots) {
    total_events += slot.events.size();
  }
  std::vector<TraceEvent>& merged = trace.mutable_events();
  merged.reserve(total_events);
  for (const FrameDecode& slot : slots) {
    merged.insert(merged.end(), slot.events.begin(), slot.events.end());
  }
  // Append() would have renumbered each event as it landed; do the same.
  for (size_t i = 0; i < merged.size(); ++i) {
    merged[i].seq = i;
  }

  report.events_salvaged = trace.size();
  if (*declared_total != report.events_salvaged) {
    return OffsetError(parse_end,
                       StrFormat("event count mismatch: declared %llu, read %llu",
                                 static_cast<unsigned long long>(*declared_total),
                                 static_cast<unsigned long long>(report.events_salvaged)));
  }
  return std::move(trace);
}

// --- v2 salvage: sequential scan with marker resynchronization.
Result<Trace> ReadTraceV2(std::string_view bytes, const TraceReadOptions& options,
                          TraceReadReport& report) {
  report.format_version = 2;
  const bool salvage = options.salvage;
  const size_t kHeader = kTraceFrameHeaderSize;
  const size_t kTrailer = kTraceFrameTrailerSize;
  const char* marker = reinterpret_cast<const char*>(kTraceFrameMarker);

  std::optional<std::pair<size_t, size_t>> strings_frame;  // (payload offset, length)
  std::optional<std::pair<size_t, size_t>> stacks_frame;
  std::vector<std::tuple<uint32_t, size_t, size_t>> event_frames;  // (seq, offset, length)
  std::optional<uint64_t> declared_total;
  bool saw_end = false;
  std::set<uint32_t> seen_seqs;
  uint32_t expected_seq = 0;
  size_t pos = sizeof(kMagicV2);
  size_t parse_end = pos;

  // --- Phase 1: frame scan. ---
  while (pos < bytes.size()) {
    size_t marker_pos = bytes.find(marker, pos, sizeof(kTraceFrameMarker));
    if (marker_pos != pos) {
      if (!salvage) {
        return OffsetError(pos, "bad frame marker");
      }
      if (marker_pos == std::string::npos) {
        report.bytes_skipped += bytes.size() - pos;
        break;
      }
      report.bytes_skipped += marker_pos - pos;
    }
    if (marker_pos + kHeader + kTrailer > bytes.size()) {
      // Not even a complete header + CRC left: cut mid-frame.
      if (!salvage) {
        return OffsetError(marker_pos, "truncated frame");
      }
      report.truncated = true;
      report.truncation_offset = marker_pos;
      report.bytes_skipped += bytes.size() - marker_pos;
      break;
    }
    uint8_t type = static_cast<uint8_t>(bytes[marker_pos + 4]);
    uint32_t seq = LoadUint32LE(bytes.data() + marker_pos + 5);
    uint64_t length = LoadUint32LE(bytes.data() + marker_pos + 9);
    if (length > kMaxFramePayload || marker_pos + kHeader + length + kTrailer > bytes.size()) {
      if (!salvage) {
        return OffsetError(marker_pos,
                           StrFormat("frame length %llu exceeds remaining bytes",
                                     static_cast<unsigned long long>(length)));
      }
      // A lying length field (or genuine truncation). Rescan just past this
      // marker: if the rest of the frame is intact, the next marker is real.
      ++report.frames_bad_length;
      pos = marker_pos + sizeof(kTraceFrameMarker);
      continue;
    }
    uint32_t crc = Crc32(bytes.data() + marker_pos + sizeof(kTraceFrameMarker),
                         kHeader - sizeof(kTraceFrameMarker) + length);
    uint32_t stored = LoadUint32LE(bytes.data() + marker_pos + kHeader + length);
    if (crc != stored) {
      if (!salvage) {
        return OffsetError(marker_pos, "frame CRC mismatch");
      }
      ++report.frames_bad_crc;
      pos = marker_pos + sizeof(kTraceFrameMarker);
      continue;
    }

    // Intact frame.
    size_t payload_off = marker_pos + kHeader;
    size_t frame_end = payload_off + length + kTrailer;
    if (salvage && !seen_seqs.insert(seq).second) {
      ++report.frames_duplicate;
      pos = frame_end;
      continue;
    }
    ++report.frames_ok;
    if (!salvage) {
      // The writer emits strings, stacks, events*, end — strictly in order.
      if (seq != expected_seq) {
        return OffsetError(marker_pos, "frame out of sequence");
      }
      ++expected_seq;
      if (saw_end) {
        return OffsetError(marker_pos, "frame after end frame");
      }
      if ((seq == 0 && type != kFrameStrings) || (seq == 1 && type != kFrameStacks) ||
          (seq >= 2 && type != kFrameEvents && type != kFrameEnd)) {
        return OffsetError(marker_pos, "unexpected frame type");
      }
    }
    switch (type) {
      case kFrameStrings:
        if (!strings_frame.has_value()) {
          strings_frame = {payload_off, length};
        }
        break;
      case kFrameStacks:
        if (!stacks_frame.has_value()) {
          stacks_frame = {payload_off, length};
        }
        break;
      case kFrameEvents:
        event_frames.emplace_back(seq, payload_off, length);
        break;
      case kFrameEnd: {
        ByteCursor c{bytes.data(), payload_off + length, payload_off};
        uint64_t total = 0;
        if (GetVarint(c, &total)) {
          declared_total = total;
          saw_end = true;
        } else if (!salvage) {
          return OffsetError(payload_off, "malformed end frame");
        }
        break;
      }
      default:
        if (!salvage) {
          return OffsetError(marker_pos, "unknown frame type");
        }
        break;  // Intact but unknown: skip (forward compatibility).
    }
    pos = frame_end;
    parse_end = frame_end;
  }

  if (!saw_end) {
    if (!salvage) {
      return OffsetError(parse_end, "missing end frame (truncated trace)");
    }
    report.truncated = true;
    if (report.truncation_offset == 0) {
      report.truncation_offset = parse_end;
    }
  }
  if (salvage && report.frames_ok == 0) {
    return OffsetError(sizeof(kMagicV2), "no intact frames");
  }

  // --- Phase 2: assemble the trace from the intact frames. ---

  // String table.
  std::vector<std::string> strings;
  bool strings_ok = false;
  if (strings_frame.has_value()) {
    ByteCursor c{bytes.data(), strings_frame->first + strings_frame->second,
                 strings_frame->first};
    uint64_t count = 0;
    strings_ok = GetVarint(c, &count) && count <= strings_frame->second;
    if (strings_ok) {
      strings.reserve(count);
      for (uint64_t i = 0; i < count && strings_ok; ++i) {
        std::string s;
        strings_ok = GetString(c, &s);
        if (strings_ok) {
          strings.push_back(std::move(s));
        }
      }
      strings_ok = strings_ok && !strings.empty() && strings[0].empty();
    }
    if (!strings_ok && !salvage) {
      return OffsetError(strings_frame->first, "malformed string table");
    }
  } else if (!salvage) {
    return OffsetError(parse_end, "missing string table");
  }
  if (!strings_ok) {
    strings.clear();
    report.string_table_lost = true;
  }

  // Stack table (string references validated after the pool is final).
  std::vector<CallStack> stacks;
  bool stacks_ok = false;
  if (stacks_frame.has_value()) {
    ByteCursor c{bytes.data(), stacks_frame->first + stacks_frame->second,
                 stacks_frame->first};
    uint64_t count = 0;
    stacks_ok = GetVarint(c, &count) && count <= stacks_frame->second;
    if (stacks_ok) {
      stacks.reserve(count);
      for (uint64_t i = 0; i < count && stacks_ok; ++i) {
        uint64_t frame_count = 0;
        stacks_ok = GetVarint(c, &frame_count) && frame_count <= kMaxStackFrames;
        if (!stacks_ok) {
          break;
        }
        CallStack stack;
        stack.frames.reserve(frame_count);
        for (uint64_t f = 0; f < frame_count && stacks_ok; ++f) {
          uint64_t frame = 0;
          stacks_ok = GetVarint(c, &frame) && frame < UINT32_MAX;
          if (stacks_ok) {
            stack.frames.push_back(static_cast<StringId>(frame));
          }
        }
        if (stacks_ok) {
          stacks.push_back(std::move(stack));
        }
      }
    }
    if (!stacks_ok && !salvage) {
      return OffsetError(stacks_frame->first, "malformed stack table");
    }
  } else if (!salvage) {
    return OffsetError(parse_end, "missing stack table");
  }
  if (!stacks_ok) {
    stacks.clear();
    report.stack_table_lost = true;
  }

  // Event records (in writer order; duplicates were already dropped).
  std::sort(event_frames.begin(), event_frames.end());
  std::vector<TraceEvent> events;
  for (const auto& [seq, off, len] : event_frames) {
    (void)seq;
    ByteCursor c{bytes.data(), off + len, off};
    uint64_t count = 0;
    if (!GetVarint(c, &count) || count > len) {
      if (!salvage) {
        return OffsetError(off, "malformed event frame");
      }
      ++report.bad_event_records;
      continue;
    }
    for (uint64_t i = 0; i < count; ++i) {
      size_t record_start = c.pos;
      TraceEvent e;
      if (!GetEvent(c, &e)) {
        if (!salvage) {
          return OffsetError(record_start, "truncated or malformed event");
        }
        report.bad_event_records += count - i;
        break;
      }
      events.push_back(e);
    }
  }

  // Decide the final string pool. When the table was lost, CRC-intact event
  // and stack frames still carry genuine writer-produced ids, so a
  // placeholder pool bounded by the maximum reference keeps every lookup
  // safe while preserving the trace's structure.
  uint64_t max_sid = 0;
  for (const CallStack& stack : stacks) {
    for (StringId frame : stack.frames) {
      max_sid = std::max<uint64_t>(max_sid, frame);
    }
  }
  for (const TraceEvent& e : events) {
    max_sid = std::max<uint64_t>(max_sid, e.name);
    max_sid = std::max<uint64_t>(max_sid, e.loc.file);
  }
  if (report.string_table_lost) {
    if (max_sid >= kMaxPlaceholderStrings) {
      return OffsetError(sizeof(kMagicV2), "string table lost and references unbounded");
    }
    strings.reserve(max_sid + 1);
    strings.emplace_back();
    for (uint64_t i = 1; i <= max_sid; ++i) {
      strings.push_back(StrFormat("lost#%llu", static_cast<unsigned long long>(i)));
    }
  }
  const size_t pool_size = strings.size();

  // Validate stack-table string references; a stack with a dangling
  // reference is dropped (events pointing at it get their reference
  // cleared below).
  std::vector<bool> stack_valid(stacks.size(), true);
  for (size_t i = 0; i < stacks.size(); ++i) {
    for (StringId frame : stacks[i].frames) {
      if (frame >= pool_size) {
        if (!salvage) {
          return OffsetError(stacks_frame->first, "stack frame references unknown string");
        }
        stack_valid[i] = false;
        stacks[i].frames.clear();
        break;
      }
    }
  }

  Trace trace;
  trace.mutable_string_pool().Reset(std::move(strings));
  trace.ResetStacks(std::move(stacks));
  for (TraceEvent& e : events) {
    if (!FixupEventRefs(&e, pool_size, stack_valid, salvage, report)) {
      if (!salvage) {
        return OffsetError(parse_end, "event references unknown string");
      }
      ++report.bad_event_records;
      continue;
    }
    trace.Append(e);
  }

  report.events_salvaged = trace.size();
  if (declared_total.has_value() && *declared_total > report.events_salvaged) {
    report.events_dropped = *declared_total - report.events_salvaged;
  } else {
    report.events_dropped = report.bad_event_records;
  }
  if (!salvage && declared_total.has_value() && *declared_total != report.events_salvaged) {
    return OffsetError(parse_end,
                       StrFormat("event count mismatch: declared %llu, read %llu",
                                 static_cast<unsigned long long>(*declared_total),
                                 static_cast<unsigned long long>(report.events_salvaged)));
  }
  return std::move(trace);
}

}  // namespace

bool TraceReadReport::clean() const {
  return frames_bad_crc == 0 && frames_bad_length == 0 && frames_duplicate == 0 &&
         bytes_skipped == 0 && events_dropped == 0 && bad_event_records == 0 &&
         stack_refs_cleared == 0 && !string_table_lost && !stack_table_lost && !truncated;
}

std::string TraceReadReport::ToString() const {
  std::string out;
  out += StrFormat("format:            v%u\n", format_version);
  out += StrFormat("file size:         %s bytes\n", FormatWithCommas(file_size).c_str());
  out += StrFormat("events salvaged:   %s\n", FormatWithCommas(events_salvaged).c_str());
  out += StrFormat("events dropped:    %s\n", FormatWithCommas(events_dropped).c_str());
  if (format_version >= 2) {
    out += StrFormat("frames ok:         %s\n", FormatWithCommas(frames_ok).c_str());
    out += StrFormat("frames bad CRC:    %s\n", FormatWithCommas(frames_bad_crc).c_str());
    out += StrFormat("frames bad length: %s\n", FormatWithCommas(frames_bad_length).c_str());
    out += StrFormat("frames duplicate:  %s\n", FormatWithCommas(frames_duplicate).c_str());
    out += StrFormat("bytes skipped:     %s\n", FormatWithCommas(bytes_skipped).c_str());
  }
  out += StrFormat("bad event records: %s\n", FormatWithCommas(bad_event_records).c_str());
  out += StrFormat("stack refs lost:   %s\n", FormatWithCommas(stack_refs_cleared).c_str());
  if (string_table_lost) {
    out += "string table:      LOST (placeholder names substituted)\n";
  }
  if (stack_table_lost) {
    out += "stack table:       LOST (stack references cleared)\n";
  }
  if (truncated) {
    out += StrFormat("truncated at:      offset 0x%llx\n",
                     static_cast<unsigned long long>(truncation_offset));
  }
  return out;
}

void WriteTrace(const Trace& trace, std::ostream& out, TraceFormat format) {
  if (format == TraceFormat::kV1) {
    WriteTraceV1(trace, out);
  } else {
    WriteTraceV2(trace, out);
  }
}

Result<Trace> ReadTrace(std::istream& in) { return ReadTrace(in, {}, nullptr); }

Result<Trace> ReadTrace(std::istream& in, const TraceReadOptions& options,
                        TraceReadReport* report) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = std::move(buffer).str();
  if (in.bad()) {
    return Status::Error("ReadTrace: I/O error while reading stream");
  }
  return ReadTraceFromBytes(bytes, options, report);
}

Result<Trace> ReadTraceFromBytes(std::string_view bytes, const TraceReadOptions& options,
                                 TraceReadReport* report) {
  TraceReadReport local;
  TraceReadReport& rep = report != nullptr ? *report : local;
  rep = TraceReadReport{};
  rep.file_size = bytes.size();

  if (bytes.size() < sizeof(kMagicV1)) {
    return Status::Error("ReadTrace: offset 0x0: input shorter than magic");
  }
  if (std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    if (!options.salvage) {
      return ReadTraceV2Strict(bytes, options.pool, rep);
    }
    return ReadTraceV2(bytes, options, rep);
  }
  if (std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    return ReadTraceV1(bytes, options, rep);
  }
  return Status::Error("ReadTrace: offset 0x0: bad magic");
}

Status WriteTraceToFile(const Trace& trace, const std::string& path, TraceFormat format) {
  // Serialize in memory, then land on disk atomically (temp + fsync +
  // rename): a crash mid-write leaves the old file or no file, never a torn
  // trace that would need salvaging.
  std::ostringstream out;
  WriteTrace(trace, out, format);
  if (!out) {
    return Status::Error("WriteTraceToFile: serialization failed for " + path);
  }
  Status written = WriteFileAtomic(path, out.str());
  if (!written.ok()) {
    return Status::Error("WriteTraceToFile: " + written.message());
  }
  return Status::Ok();
}

Result<Trace> ReadTraceFromFile(const std::string& path) {
  return ReadTraceFromFile(path, {}, nullptr);
}

Result<Trace> ReadTraceFromFile(const std::string& path, const TraceReadOptions& options,
                                TraceReadReport* report) {
  // Hardened slurp (EINTR + short-read loops) so pipes and pseudo-files
  // deliver the same bytes a regular file would.
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    return Status::Error("ReadTraceFromFile: " + bytes.status().message());
  }
  return ReadTraceFromBytes(bytes.value(), options, report);
}

}  // namespace lockdoc
