#include "src/trace/trace_stats.h"

#include <map>
#include <set>

#include "src/util/string_util.h"

namespace lockdoc {

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats stats;
  stats.total_events = trace.size();

  // Live allocation intervals, to classify lock addresses as embedded or
  // static. Maps allocation start -> end (exclusive).
  std::map<Address, Address> live;
  std::set<Address> static_lock_addrs;
  std::set<Address> embedded_lock_addrs;

  auto is_embedded = [&live](Address addr) {
    auto it = live.upper_bound(addr);
    if (it == live.begin()) {
      return false;
    }
    --it;
    return addr >= it->first && addr < it->second;
  };

  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kAlloc:
        ++stats.allocations;
        live[e.addr] = e.addr + e.size;
        break;
      case EventKind::kFree:
        ++stats.deallocations;
        live.erase(e.addr);
        break;
      case EventKind::kLockAcquire:
        ++stats.lock_ops;
        ++stats.lock_acquires;
        if (is_embedded(e.addr)) {
          embedded_lock_addrs.insert(e.addr);
        } else {
          static_lock_addrs.insert(e.addr);
        }
        break;
      case EventKind::kLockRelease:
        ++stats.lock_ops;
        ++stats.lock_releases;
        break;
      case EventKind::kMemRead:
        ++stats.memory_accesses;
        ++stats.reads;
        break;
      case EventKind::kMemWrite:
        ++stats.memory_accesses;
        ++stats.writes;
        break;
      case EventKind::kStaticLockDef:
        ++stats.static_lock_defs;
        break;
    }
  }
  stats.distinct_static_locks = static_lock_addrs.size();
  stats.distinct_embedded_locks = embedded_lock_addrs.size();
  stats.distinct_locks = stats.distinct_static_locks + stats.distinct_embedded_locks;
  return stats;
}

std::string TraceStats::ToString() const {
  std::string out;
  out += StrFormat("total events:        %s\n", FormatWithCommas(total_events).c_str());
  out += StrFormat("locking operations:  %s (%s acquire / %s release)\n",
                   FormatWithCommas(lock_ops).c_str(), FormatWithCommas(lock_acquires).c_str(),
                   FormatWithCommas(lock_releases).c_str());
  out += StrFormat("memory accesses:     %s (%s reads / %s writes)\n",
                   FormatWithCommas(memory_accesses).c_str(), FormatWithCommas(reads).c_str(),
                   FormatWithCommas(writes).c_str());
  out += StrFormat("allocations:         %s\n", FormatWithCommas(allocations).c_str());
  out += StrFormat("deallocations:       %s\n", FormatWithCommas(deallocations).c_str());
  out += StrFormat("distinct locks:      %s (%s static / %s embedded)\n",
                   FormatWithCommas(distinct_locks).c_str(),
                   FormatWithCommas(distinct_static_locks).c_str(),
                   FormatWithCommas(distinct_embedded_locks).c_str());
  return out;
}

}  // namespace lockdoc
