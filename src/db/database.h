// A named collection of tables with directory-based CSV persistence —
// the stand-in for the paper's MariaDB instance.
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/table.h"
#include "src/util/status.h"

namespace lockdoc {

class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates a table; the name must be unique.
  Table& CreateTable(const std::string& name, std::vector<ColumnDef> columns);

  // Lookups are heterogeneous (std::less<> on the name map), so the
  // hot-path `table("accesses")` literals never construct a temporary
  // std::string.
  bool HasTable(std::string_view name) const;
  // CHECK-fails on unknown table names.
  Table& table(std::string_view name);
  const Table& table(std::string_view name) const;

  std::vector<std::string> TableNames() const;

  // Writes each table as <dir>/<table>.csv. The directory must exist.
  Status ExportDirectory(const std::string& dir) const;
  // Loads each existing table's CSV from <dir>; tables must be created with
  // their schemas beforehand.
  Status ImportDirectory(const std::string& dir);

 private:
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace lockdoc

#endif  // SRC_DB_DATABASE_H_
