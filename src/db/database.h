// A named collection of tables with directory-based CSV persistence —
// the stand-in for the paper's MariaDB instance.
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/table.h"
#include "src/trace/string_pool.h"
#include "src/util/status.h"

namespace lockdoc {

class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates a table; the name must be unique.
  Table& CreateTable(const std::string& name, std::vector<ColumnDef> columns);

  // Lookups are heterogeneous (std::less<> on the name map), so the
  // hot-path `table("accesses")` literals never construct a temporary
  // std::string.
  bool HasTable(std::string_view name) const;
  // CHECK-fails on unknown table names.
  Table& table(std::string_view name);
  const Table& table(std::string_view name) const;

  std::vector<std::string> TableNames() const;

  // Writes each table as <dir>/<table>.csv plus <dir>/strings.csv (the
  // interned pool the *_sid columns reference). The directory must exist.
  Status ExportDirectory(const std::string& dir) const;
  // Loads each existing table's CSV from <dir>, plus strings.csv; tables
  // must be created with their schemas beforehand.
  Status ImportDirectory(const std::string& dir);

  // The database owns the strings its *_sid columns reference. The importer
  // copies the trace's pool wholesale (ids preserved), so analyses resolve
  // interned ids here without the trace staying alive.
  const StringPool& strings() const { return strings_; }
  StringPool& mutable_strings() { return strings_; }
  const std::string& String(StringId id) const { return strings_.Lookup(id); }

 private:
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  StringPool strings_;
};

}  // namespace lockdoc

#endif  // SRC_DB_DATABASE_H_
