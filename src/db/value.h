// Typed values for the mini relational engine. The paper loads traces into
// MariaDB (Sec. 5.3); this engine replaces it with a purpose-built,
// deterministic, offline store implementing the same schema (Fig. 6).
#ifndef SRC_DB_VALUE_H_
#define SRC_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace lockdoc {

enum class ColumnType : uint8_t {
  kUint64 = 0,
  kDouble = 1,
  kString = 2,
};

// Sentinel used as SQL NULL for kUint64 columns (e.g. "access belongs to no
// transaction").
inline constexpr uint64_t kDbNull = UINT64_MAX;

using DbValue = std::variant<uint64_t, double, std::string>;

// Row index within a table.
using RowId = uint64_t;

inline ColumnType DbValueType(const DbValue& value) {
  switch (value.index()) {
    case 0:
      return ColumnType::kUint64;
    case 1:
      return ColumnType::kDouble;
    default:
      return ColumnType::kString;
  }
}

}  // namespace lockdoc

#endif  // SRC_DB_VALUE_H_
