#include "src/db/database.h"

#include <fstream>
#include <sstream>

#include "src/util/logging.h"

namespace lockdoc {

Table& Database::CreateTable(const std::string& name, std::vector<ColumnDef> columns) {
  LOCKDOC_CHECK(tables_.find(name) == tables_.end());
  auto table = std::make_unique<Table>(name, std::move(columns));
  Table& ref = *table;
  tables_.emplace(name, std::move(table));
  return ref;
}

bool Database::HasTable(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

Table& Database::table(std::string_view name) {
  auto it = tables_.find(name);
  LOCKDOC_CHECK(it != tables_.end());
  return *it->second;
}

const Table& Database::table(std::string_view name) const {
  auto it = tables_.find(name);
  LOCKDOC_CHECK(it != tables_.end());
  return *it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
  }
  return names;
}

Status Database::ExportDirectory(const std::string& dir) const {
  for (const auto& [name, table] : tables_) {
    std::string path = dir + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
      return Status::Error("ExportDirectory: cannot open " + path);
    }
    table->ExportCsv(out);
    out.flush();
    if (!out) {
      return Status::Error("ExportDirectory: write failed for " + path);
    }
  }
  return Status::Ok();
}

Status Database::ImportDirectory(const std::string& dir) {
  for (auto& [name, table] : tables_) {
    std::string path = dir + "/" + name + ".csv";
    std::ifstream in(path);
    if (!in) {
      return Status::Error("ImportDirectory: cannot open " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Status status = table->ImportCsv(buffer.str());
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

}  // namespace lockdoc
