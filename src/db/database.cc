#include "src/db/database.h"

#include <fstream>
#include <sstream>

#include "src/util/csv.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

Table& Database::CreateTable(const std::string& name, std::vector<ColumnDef> columns) {
  LOCKDOC_CHECK(tables_.find(name) == tables_.end());
  auto table = std::make_unique<Table>(name, std::move(columns));
  Table& ref = *table;
  tables_.emplace(name, std::move(table));
  return ref;
}

bool Database::HasTable(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

Table& Database::table(std::string_view name) {
  auto it = tables_.find(name);
  LOCKDOC_CHECK(it != tables_.end());
  return *it->second;
}

const Table& Database::table(std::string_view name) const {
  auto it = tables_.find(name);
  LOCKDOC_CHECK(it != tables_.end());
  return *it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
  }
  return names;
}

Status Database::ExportDirectory(const std::string& dir) const {
  for (const auto& [name, table] : tables_) {
    std::string path = dir + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
      return Status::Error("ExportDirectory: cannot open " + path);
    }
    table->ExportCsv(out);
    out.flush();
    if (!out) {
      return Status::Error("ExportDirectory: write failed for " + path);
    }
  }
  std::string path = dir + "/strings.csv";
  std::ofstream out(path);
  if (!out) {
    return Status::Error("ExportDirectory: cannot open " + path);
  }
  CsvWriter writer(out);
  writer.WriteRow({"id", "string"});
  const std::vector<std::string>& pool = strings_.strings();
  for (size_t id = 0; id < pool.size(); ++id) {
    writer.WriteRow({std::to_string(id), pool[id]});
  }
  out.flush();
  if (!out) {
    return Status::Error("ExportDirectory: write failed for " + path);
  }
  return Status::Ok();
}

Status Database::ImportDirectory(const std::string& dir) {
  for (auto& [name, table] : tables_) {
    std::string path = dir + "/" + name + ".csv";
    std::ifstream in(path);
    if (!in) {
      return Status::Error("ImportDirectory: cannot open " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Status status = table->ImportCsv(buffer.str());
    if (!status.ok()) {
      return status;
    }
  }
  std::string path = dir + "/strings.csv";
  std::ifstream in(path);
  if (!in) {
    return Status::Error("ImportDirectory: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto rows = ParseCsv(buffer.str());
  if (!rows.ok()) {
    return rows.status();
  }
  const auto& parsed = rows.value();
  if (parsed.empty() || parsed[0] != std::vector<std::string>{"id", "string"}) {
    return Status::Error("ImportDirectory: strings.csv missing id,string header");
  }
  std::vector<std::string> pool;
  pool.reserve(parsed.size() - 1);
  for (size_t r = 1; r < parsed.size(); ++r) {
    uint64_t id = 0;
    if (parsed[r].size() != 2 || !ParseUint64(parsed[r][0], &id) || id != r - 1) {
      return Status::Error(StrFormat("ImportDirectory: strings.csv row %zu malformed", r));
    }
    pool.push_back(parsed[r][1]);
  }
  if (pool.empty() || !pool[0].empty()) {
    return Status::Error("ImportDirectory: strings.csv must start with the empty string (id 0)");
  }
  strings_.Reset(std::move(pool));
  return Status::Ok();
}

}  // namespace lockdoc
