#include "src/db/schema.h"

#include <algorithm>

#include "src/model/ids.h"
#include "src/util/string_util.h"

namespace lockdoc {

void CreateLockDocSchema(Database* db) {
  {
    Table& t = db->CreateTable(LockDocSchema::kDataTypes,
                               {{"id", ColumnType::kUint64}, {"name", ColumnType::kString}});
    t.CreateIndex(t.ColumnIndex("id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kSubclasses, {{"id", ColumnType::kUint64},
                                                            {"type_id", ColumnType::kUint64},
                                                            {"subclass", ColumnType::kUint64},
                                                            {"name", ColumnType::kString}});
    t.CreateIndex(t.ColumnIndex("type_id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kMembers, {{"id", ColumnType::kUint64},
                                                         {"type_id", ColumnType::kUint64},
                                                         {"member_idx", ColumnType::kUint64},
                                                         {"name", ColumnType::kString},
                                                         {"offset", ColumnType::kUint64},
                                                         {"size", ColumnType::kUint64},
                                                         {"is_lock", ColumnType::kUint64},
                                                         {"is_atomic", ColumnType::kUint64},
                                                         {"blacklisted", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("type_id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kAllocations, {{"id", ColumnType::kUint64},
                                                             {"type_id", ColumnType::kUint64},
                                                             {"subclass", ColumnType::kUint64},
                                                             {"addr", ColumnType::kUint64},
                                                             {"size", ColumnType::kUint64},
                                                             {"alloc_seq", ColumnType::kUint64},
                                                             {"free_seq", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("id"));
    t.CreateIndex(t.ColumnIndex("type_id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kLocks,
                               {{"id", ColumnType::kUint64},
                                {"addr", ColumnType::kUint64},
                                {"lock_type", ColumnType::kUint64},
                                {"is_static", ColumnType::kUint64},
                                {"name_sid", ColumnType::kUint64},
                                {"owner_alloc_id", ColumnType::kUint64},
                                {"owner_member_id", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kTxns, {{"id", ColumnType::kUint64},
                                                      {"start_seq", ColumnType::kUint64},
                                                      {"end_seq", ColumnType::kUint64},
                                                      {"n_locks", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kTxnLocks, {{"txn_id", ColumnType::kUint64},
                                                          {"position", ColumnType::kUint64},
                                                          {"lock_id", ColumnType::kUint64},
                                                          {"acquire_seq", ColumnType::kUint64},
                                                          {"mode", ColumnType::kUint64},
                                                          {"file_sid", ColumnType::kUint64},
                                                          {"line", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("txn_id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kStackFrames,
                               {{"stack_id", ColumnType::kUint64},
                                {"position", ColumnType::kUint64},
                                {"function_sid", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("stack_id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kAccesses,
                               {{"seq", ColumnType::kUint64},
                                {"alloc_id", ColumnType::kUint64},
                                {"member_id", ColumnType::kUint64},
                                {"access_type", ColumnType::kUint64},
                                {"size", ColumnType::kUint64},
                                {"txn_id", ColumnType::kUint64},
                                {"context", ColumnType::kUint64},
                                {"task", ColumnType::kUint64},
                                {"file_sid", ColumnType::kUint64},
                                {"line", ColumnType::kUint64},
                                {"stack_id", ColumnType::kUint64},
                                {"filter_reason", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("seq"));
    t.CreateIndex(t.ColumnIndex("txn_id"));
    t.CreateIndex(t.ColumnIndex("member_id"));
  }
}

void CreateRangeTables(Database* db) {
  {
    Table& t = db->CreateTable(LockDocSchema::kAllocRanges,
                               {{"alloc_id", ColumnType::kUint64},
                                {"range_start", ColumnType::kUint64},
                                {"range_end", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("alloc_id"));
  }
  {
    Table& t = db->CreateTable(LockDocSchema::kTxnLockRanges,
                               {{"txn_id", ColumnType::kUint64},
                                {"position", ColumnType::kUint64},
                                {"range_start", ColumnType::kUint64},
                                {"range_end", ColumnType::kUint64}});
    t.CreateIndex(t.ColumnIndex("txn_id"));
  }
}

std::string DbFormatLoc(const Database& db, uint64_t file_sid, uint64_t line) {
  return StrFormat("%s:%u", db.String(static_cast<StringId>(file_sid)).c_str(),
                   static_cast<uint32_t>(line));
}

std::string DbFormatStack(const Database& db, uint64_t stack_id) {
  if (stack_id == kDbNull) {
    return "<no stack>";
  }
  const Table& frames = db.table(LockDocSchema::kStackFrames);
  const size_t kStackId = frames.ColumnIndex("stack_id");
  const size_t kPosition = frames.ColumnIndex("position");
  const size_t kFunctionSid = frames.ColumnIndex("function_sid");
  std::vector<std::pair<uint64_t, uint64_t>> ordered;  // (position, function_sid)
  for (RowId row : frames.LookupEqual(kStackId, stack_id)) {
    ordered.emplace_back(frames.GetUint64(row, kPosition), frames.GetUint64(row, kFunctionSid));
  }
  std::sort(ordered.begin(), ordered.end());
  std::string result;
  for (size_t i = 0; i < ordered.size(); ++i) {
    if (i != 0) {
      result += " <- ";
    }
    result += db.String(static_cast<StringId>(ordered[i].second));
  }
  return result;
}

}  // namespace lockdoc
