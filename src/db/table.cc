#include "src/db/table.h"

#include <algorithm>
#include <ostream>

#include "src/util/csv.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)), storage_(columns_.size()) {
  LOCKDOC_CHECK(!columns_.empty());
}

Table::Table(Table&& other) noexcept
    : name_(std::move(other.name_)),
      columns_(std::move(other.columns_)),
      storage_(std::move(other.storage_)),
      row_count_(other.row_count_),
      indexes_(std::move(other.indexes_)) {
  other.row_count_ = 0;
}

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    columns_ = std::move(other.columns_);
    storage_ = std::move(other.storage_);
    row_count_ = other.row_count_;
    indexes_ = std::move(other.indexes_);
    other.row_count_ = 0;
  }
  return *this;
}

size_t Table::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) {
      return i;
    }
  }
  LOCKDOC_CHECK(false && "unknown column");
  return 0;
}

void Table::MaterializeColumn(size_t column) {
  ColumnData& data = storage_[column];
  if (!data.is_view()) {
    return;
  }
  if (data.u64_view != nullptr) {
    data.u64.assign(data.u64_view, data.u64_view + data.view_rows);
    data.u64_view = nullptr;
  }
  if (data.f64_view != nullptr) {
    data.f64.assign(data.f64_view, data.f64_view + data.view_rows);
    data.f64_view = nullptr;
  }
  data.view_rows = 0;
}

RowId Table::Insert(const std::vector<DbValue>& values) {
  LOCKDOC_CHECK(values.size() == columns_.size());
  RowId row = row_count_;
  for (size_t i = 0; i < values.size(); ++i) {
    LOCKDOC_CHECK(DbValueType(values[i]) == columns_[i].type);
    MaterializeColumn(i);
    switch (columns_[i].type) {
      case ColumnType::kUint64:
        storage_[i].u64.push_back(std::get<uint64_t>(values[i]));
        break;
      case ColumnType::kDouble:
        storage_[i].f64.push_back(std::get<double>(values[i]));
        break;
      case ColumnType::kString:
        storage_[i].str.push_back(std::get<std::string>(values[i]));
        break;
    }
  }
  ++row_count_;
  for (auto& [column, index] : indexes_) {
    if (index->built.load(std::memory_order_acquire)) {
      index->map[storage_[column].u64[row]].push_back(row);
    }
  }
  return row;
}

uint64_t Table::GetUint64(RowId row, size_t column) const {
  LOCKDOC_CHECK(row < row_count_ && column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  const ColumnData& data = storage_[column];
  return data.u64_view != nullptr ? data.u64_view[row] : data.u64[row];
}

double Table::GetDouble(RowId row, size_t column) const {
  LOCKDOC_CHECK(row < row_count_ && column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kDouble);
  const ColumnData& data = storage_[column];
  return data.f64_view != nullptr ? data.f64_view[row] : data.f64[row];
}

const std::string& Table::GetString(RowId row, size_t column) const {
  LOCKDOC_CHECK(row < row_count_ && column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kString);
  return storage_[column].str[row];
}

void Table::SetUint64(RowId row, size_t column, uint64_t value) {
  LOCKDOC_CHECK(row < row_count_ && column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  MaterializeColumn(column);
  uint64_t old_value = storage_[column].u64[row];
  if (old_value == value) {
    return;
  }
  storage_[column].u64[row] = value;
  auto it = indexes_.find(column);
  if (it != indexes_.end() && it->second->built.load(std::memory_order_acquire)) {
    auto& rows = it->second->map[old_value];
    std::erase(rows, row);
    it->second->map[value].push_back(row);
  }
}

const uint64_t* Table::ColumnU64Data(size_t column) const {
  LOCKDOC_CHECK(column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  const ColumnData& data = storage_[column];
  return data.u64_view != nullptr ? data.u64_view : data.u64.data();
}

const double* Table::ColumnF64Data(size_t column) const {
  LOCKDOC_CHECK(column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kDouble);
  const ColumnData& data = storage_[column];
  return data.f64_view != nullptr ? data.f64_view : data.f64.data();
}

void Table::CreateIndex(size_t column) {
  LOCKDOC_CHECK(column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  auto& index = indexes_[column];
  if (index == nullptr) {
    index = std::make_unique<LazyIndex>();
  }
  index->map.clear();
  index->built.store(false, std::memory_order_release);
}

bool Table::HasIndex(size_t column) const { return indexes_.count(column) != 0; }

void Table::EnsureIndexBuilt(size_t column, LazyIndex& index) const {
  if (index.built.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(index_build_mu_);
  if (index.built.load(std::memory_order_acquire)) {
    return;
  }
  const uint64_t* data = ColumnU64Data(column);
  for (RowId row = 0; row < row_count_; ++row) {
    index.map[data[row]].push_back(row);
  }
  index.built.store(true, std::memory_order_release);
}

std::vector<RowId> Table::LookupEqual(size_t column, uint64_t value) const {
  LOCKDOC_CHECK(column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  auto index_it = indexes_.find(column);
  if (index_it != indexes_.end()) {
    EnsureIndexBuilt(column, *index_it->second);
    auto it = index_it->second->map.find(value);
    return it == index_it->second->map.end() ? std::vector<RowId>{} : it->second;
  }
  std::vector<RowId> result;
  const uint64_t* data = ColumnU64Data(column);
  for (RowId row = 0; row < row_count_; ++row) {
    if (data[row] == value) {
      result.push_back(row);
    }
  }
  return result;
}

void Table::WarmIndex(size_t column) const {
  LOCKDOC_CHECK(column < columns_.size());
  auto index_it = indexes_.find(column);
  if (index_it != indexes_.end()) {
    EnsureIndexBuilt(column, *index_it->second);
  }
}

void Table::Scan(const std::function<bool(RowId)>& fn) const {
  for (RowId row = 0; row < row_count_; ++row) {
    if (!fn(row)) {
      return;
    }
  }
}

void Table::ExportCsv(std::ostream& out) const {
  CsvWriter writer(out);
  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const ColumnDef& def : columns_) {
    header.push_back(def.name);
  }
  writer.WriteRow(header);
  std::vector<std::string> row_text(columns_.size());
  for (RowId row = 0; row < row_count_; ++row) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      switch (columns_[i].type) {
        case ColumnType::kUint64:
          row_text[i] = std::to_string(GetUint64(row, i));
          break;
        case ColumnType::kDouble:
          row_text[i] = StrFormat("%.17g", GetDouble(row, i));
          break;
        case ColumnType::kString:
          row_text[i] = storage_[i].str[row];
          break;
      }
    }
    writer.WriteRow(row_text);
  }
}

Status Table::ImportCsv(std::string_view document) {
  auto parsed = ParseCsv(document);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const auto& rows = parsed.value();
  if (rows.empty()) {
    return Status::Error("ImportCsv: missing header row");
  }
  if (rows[0].size() != columns_.size()) {
    return Status::Error("ImportCsv: header arity mismatch in table " + name_);
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (rows[0][i] != columns_[i].name) {
      return Status::Error("ImportCsv: header column '" + rows[0][i] + "' does not match '" +
                           columns_[i].name + "'");
    }
  }

  // Clear current contents (views included).
  for (ColumnData& column : storage_) {
    column = ColumnData{};
  }
  row_count_ = 0;
  for (auto& [column, index] : indexes_) {
    index->map.clear();
    index->built.store(false, std::memory_order_release);
  }

  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != columns_.size()) {
      return Status::Error(StrFormat("ImportCsv: row %zu arity mismatch", r));
    }
    std::vector<DbValue> values;
    values.reserve(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      switch (columns_[i].type) {
        case ColumnType::kUint64: {
          uint64_t value = 0;
          if (!ParseUint64(row[i], &value)) {
            return Status::Error(StrFormat("ImportCsv: row %zu column %zu: bad uint64", r, i));
          }
          values.emplace_back(value);
          break;
        }
        case ColumnType::kDouble: {
          double value = 0;
          if (!ParseDouble(row[i], &value)) {
            return Status::Error(StrFormat("ImportCsv: row %zu column %zu: bad double", r, i));
          }
          values.emplace_back(value);
          break;
        }
        case ColumnType::kString:
          values.emplace_back(row[i]);
          break;
      }
    }
    Insert(values);
  }
  return Status::Ok();
}

const ColumnData& Table::column_data(size_t column) const {
  LOCKDOC_CHECK(column < columns_.size());
  return storage_[column];
}

void Table::ResetRows(size_t row_count, std::vector<ColumnData> storage) {
  LOCKDOC_CHECK(storage.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnData& column = storage[i];
    size_t rows = column.is_view() ? column.view_rows : 0;
    switch (columns_[i].type) {
      case ColumnType::kUint64:
        if (column.is_view()) {
          LOCKDOC_CHECK(column.u64_view != nullptr && rows == row_count &&
                        column.u64.empty() && column.f64.empty() && column.str.empty());
        } else {
          LOCKDOC_CHECK(column.u64.size() == row_count && column.f64.empty() &&
                        column.str.empty());
        }
        break;
      case ColumnType::kDouble:
        if (column.is_view()) {
          LOCKDOC_CHECK(column.f64_view != nullptr && rows == row_count &&
                        column.f64.empty() && column.u64.empty() && column.str.empty());
        } else {
          LOCKDOC_CHECK(column.f64.size() == row_count && column.u64.empty() &&
                        column.str.empty());
        }
        break;
      case ColumnType::kString:
        LOCKDOC_CHECK(!column.is_view() && column.str.size() == row_count &&
                      column.u64.empty() && column.f64.empty());
        break;
    }
  }
  storage_ = std::move(storage);
  row_count_ = row_count;
  for (auto& [column, index] : indexes_) {
    index->map.clear();
    index->built.store(false, std::memory_order_release);
  }
}

std::vector<size_t> Table::IndexedColumns() const {
  std::vector<size_t> columns;
  columns.reserve(indexes_.size());
  for (const auto& [column, index] : indexes_) {
    columns.push_back(column);
  }
  std::sort(columns.begin(), columns.end());
  return columns;
}

}  // namespace lockdoc
