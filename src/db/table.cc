#include "src/db/table.h"

#include <algorithm>
#include <ostream>

#include "src/util/csv.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace lockdoc {

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)), storage_(columns_.size()) {
  LOCKDOC_CHECK(!columns_.empty());
}

size_t Table::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) {
      return i;
    }
  }
  LOCKDOC_CHECK(false && "unknown column");
  return 0;
}

RowId Table::Insert(const std::vector<DbValue>& values) {
  LOCKDOC_CHECK(values.size() == columns_.size());
  RowId row = row_count_;
  for (size_t i = 0; i < values.size(); ++i) {
    LOCKDOC_CHECK(DbValueType(values[i]) == columns_[i].type);
    switch (columns_[i].type) {
      case ColumnType::kUint64:
        storage_[i].u64.push_back(std::get<uint64_t>(values[i]));
        break;
      case ColumnType::kDouble:
        storage_[i].f64.push_back(std::get<double>(values[i]));
        break;
      case ColumnType::kString:
        storage_[i].str.push_back(std::get<std::string>(values[i]));
        break;
    }
  }
  ++row_count_;
  for (auto& [column, index] : indexes_) {
    index[storage_[column].u64[row]].push_back(row);
  }
  return row;
}

uint64_t Table::GetUint64(RowId row, size_t column) const {
  LOCKDOC_CHECK(row < row_count_ && column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  return storage_[column].u64[row];
}

double Table::GetDouble(RowId row, size_t column) const {
  LOCKDOC_CHECK(row < row_count_ && column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kDouble);
  return storage_[column].f64[row];
}

const std::string& Table::GetString(RowId row, size_t column) const {
  LOCKDOC_CHECK(row < row_count_ && column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kString);
  return storage_[column].str[row];
}

void Table::SetUint64(RowId row, size_t column, uint64_t value) {
  LOCKDOC_CHECK(row < row_count_ && column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  uint64_t old_value = storage_[column].u64[row];
  if (old_value == value) {
    return;
  }
  storage_[column].u64[row] = value;
  auto it = indexes_.find(column);
  if (it != indexes_.end()) {
    auto& rows = it->second[old_value];
    std::erase(rows, row);
    it->second[value].push_back(row);
  }
}

void Table::CreateIndex(size_t column) {
  LOCKDOC_CHECK(column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  auto& index = indexes_[column];
  index.clear();
  const auto& data = storage_[column].u64;
  for (RowId row = 0; row < row_count_; ++row) {
    index[data[row]].push_back(row);
  }
}

bool Table::HasIndex(size_t column) const { return indexes_.count(column) != 0; }

std::vector<RowId> Table::LookupEqual(size_t column, uint64_t value) const {
  LOCKDOC_CHECK(column < columns_.size());
  LOCKDOC_CHECK(columns_[column].type == ColumnType::kUint64);
  auto index_it = indexes_.find(column);
  if (index_it != indexes_.end()) {
    auto it = index_it->second.find(value);
    return it == index_it->second.end() ? std::vector<RowId>{} : it->second;
  }
  std::vector<RowId> result;
  const auto& data = storage_[column].u64;
  for (RowId row = 0; row < row_count_; ++row) {
    if (data[row] == value) {
      result.push_back(row);
    }
  }
  return result;
}

void Table::Scan(const std::function<bool(RowId)>& fn) const {
  for (RowId row = 0; row < row_count_; ++row) {
    if (!fn(row)) {
      return;
    }
  }
}

void Table::ExportCsv(std::ostream& out) const {
  CsvWriter writer(out);
  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const ColumnDef& def : columns_) {
    header.push_back(def.name);
  }
  writer.WriteRow(header);
  std::vector<std::string> row_text(columns_.size());
  for (RowId row = 0; row < row_count_; ++row) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      switch (columns_[i].type) {
        case ColumnType::kUint64:
          row_text[i] = std::to_string(storage_[i].u64[row]);
          break;
        case ColumnType::kDouble:
          row_text[i] = StrFormat("%.17g", storage_[i].f64[row]);
          break;
        case ColumnType::kString:
          row_text[i] = storage_[i].str[row];
          break;
      }
    }
    writer.WriteRow(row_text);
  }
}

Status Table::ImportCsv(std::string_view document) {
  auto parsed = ParseCsv(document);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const auto& rows = parsed.value();
  if (rows.empty()) {
    return Status::Error("ImportCsv: missing header row");
  }
  if (rows[0].size() != columns_.size()) {
    return Status::Error("ImportCsv: header arity mismatch in table " + name_);
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (rows[0][i] != columns_[i].name) {
      return Status::Error("ImportCsv: header column '" + rows[0][i] + "' does not match '" +
                           columns_[i].name + "'");
    }
  }

  // Clear current contents.
  for (ColumnData& column : storage_) {
    column.u64.clear();
    column.f64.clear();
    column.str.clear();
  }
  row_count_ = 0;
  std::vector<size_t> indexed_columns;
  for (const auto& [column, index] : indexes_) {
    indexed_columns.push_back(column);
  }
  indexes_.clear();

  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != columns_.size()) {
      return Status::Error(StrFormat("ImportCsv: row %zu arity mismatch", r));
    }
    std::vector<DbValue> values;
    values.reserve(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      switch (columns_[i].type) {
        case ColumnType::kUint64: {
          uint64_t value = 0;
          if (!ParseUint64(row[i], &value)) {
            return Status::Error(StrFormat("ImportCsv: row %zu column %zu: bad uint64", r, i));
          }
          values.emplace_back(value);
          break;
        }
        case ColumnType::kDouble: {
          double value = 0;
          if (!ParseDouble(row[i], &value)) {
            return Status::Error(StrFormat("ImportCsv: row %zu column %zu: bad double", r, i));
          }
          values.emplace_back(value);
          break;
        }
        case ColumnType::kString:
          values.emplace_back(row[i]);
          break;
      }
    }
    Insert(values);
  }
  for (size_t column : indexed_columns) {
    CreateIndex(column);
  }
  return Status::Ok();
}

const ColumnData& Table::column_data(size_t column) const {
  LOCKDOC_CHECK(column < columns_.size());
  return storage_[column];
}

void Table::ResetRows(size_t row_count, std::vector<ColumnData> storage) {
  LOCKDOC_CHECK(storage.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnData& column = storage[i];
    switch (columns_[i].type) {
      case ColumnType::kUint64:
        LOCKDOC_CHECK(column.u64.size() == row_count && column.f64.empty() &&
                      column.str.empty());
        break;
      case ColumnType::kDouble:
        LOCKDOC_CHECK(column.f64.size() == row_count && column.u64.empty() &&
                      column.str.empty());
        break;
      case ColumnType::kString:
        LOCKDOC_CHECK(column.str.size() == row_count && column.u64.empty() &&
                      column.f64.empty());
        break;
    }
  }
  storage_ = std::move(storage);
  row_count_ = row_count;
  std::vector<size_t> indexed = IndexedColumns();
  indexes_.clear();
  for (size_t column : indexed) {
    CreateIndex(column);
  }
}

std::vector<size_t> Table::IndexedColumns() const {
  std::vector<size_t> columns;
  columns.reserve(indexes_.size());
  for (const auto& [column, index] : indexes_) {
    columns.push_back(column);
  }
  std::sort(columns.begin(), columns.end());
  return columns;
}

}  // namespace lockdoc
