// The .lockdb snapshot container: a versioned, sectioned, CRC-checksummed
// binary format persisting an imported analysis database so traces are
// imported ONCE and analyzed many times (the paper keeps its MariaDB
// instance around for the same reason, Sec. 5.3).
//
// Layout mirrors the framed v2 trace format (src/trace/trace_io.h) with its
// own magic and frame marker:
//
//   magic "LOCKDB01" (8 bytes)
//   section*:  marker {0xAB,'L','D',0xF3} | type (1) | seq (4 LE)
//              | length (4 LE) | payload | crc32 (4 LE)
//   end section (type kSnapshotSectionEnd, payload = varint section count)
//
// The CRC covers everything after the marker (type, seq, length, payload),
// so every section is independently verifiable and corruption is localized
// — `lockdoc doctor` reports per-section damage. Sections are written in a
// fixed deterministic order by src/core/snapshot.cc; a snapshot's bytes are
// identical no matter how many threads built the analysis.
//
// This layer knows containers and the db-level payloads (string pool,
// tables); the analysis-level payloads (lock-class pool, interned
// sequences, observation groups) live in src/core/snapshot.h, keeping the
// db -> core dependency direction intact.
#ifndef SRC_DB_SNAPSHOT_H_
#define SRC_DB_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/database.h"
#include "src/trace/string_pool.h"
#include "src/util/status.h"

namespace lockdoc {

constexpr char kSnapshotMagic[8] = {'L', 'O', 'C', 'K', 'D', 'B', '0', '1'};
constexpr uint8_t kSnapshotFrameMarker[4] = {0xAB, 'L', 'D', 0xF3};
// marker + type + seq + length.
constexpr size_t kSnapshotFrameHeaderSize = 4 + 1 + 4 + 4;
constexpr size_t kSnapshotFrameTrailerSize = 4;  // crc32
// Bumped on any incompatible payload change; checked by the meta section.
constexpr uint64_t kSnapshotFormatVersion = 1;

enum SnapshotSectionType : uint8_t {
  kSnapshotSectionMeta = 1,     // Version, import/trace stats, registry shape.
  kSnapshotSectionStrings = 2,  // The database's string pool.
  kSnapshotSectionTable = 3,    // One database table (repeats, name order).
  kSnapshotSectionPool = 4,     // Interned lock classes, id order.
  kSnapshotSectionSeqs = 5,     // Interned lock sequences, id order.
  kSnapshotSectionGroups = 6,   // Folded observation groups, key order.
  kSnapshotSectionEnd = 7,      // Terminator carrying the section count.
};

// Human name for diagnostics ("meta", "table", ...; "unknown" otherwise).
const char* SnapshotSectionName(uint8_t type);

// One parsed section; `payload` points into the scanned buffer.
struct SnapshotSection {
  uint8_t type = 0;
  uint32_t seq = 0;
  std::string_view payload;
};

// Serializes sections into the container format. Usage: AddSection for each
// payload in order, then Finish exactly once.
class SnapshotWriter {
 public:
  SnapshotWriter();

  void AddSection(SnapshotSectionType type, std::string_view payload);

  // Appends the end section and returns the complete file bytes.
  std::string Finish();

 private:
  std::string out_;
  uint32_t next_seq_ = 0;
};

// Strict parse of a whole snapshot: magic, every CRC, contiguous sequence
// numbers, and a correct end section are all required. Returns the sections
// in file order, end section excluded; payloads view into `bytes`.
Result<std::vector<SnapshotSection>> ScanSnapshotSections(std::string_view bytes);

// Lenient walk for diagnostics (lockdoc doctor): records every section's
// status instead of stopping at the first fault, resynchronizing on the
// frame marker after damage like the trace salvage reader.
struct SnapshotSectionReport {
  uint64_t offset = 0;  // Of the frame marker.
  uint8_t type = 0;
  uint32_t seq = 0;
  uint64_t payload_size = 0;
  std::string problem;  // Empty when the section verified.

  bool ok() const { return problem.empty(); }
};

struct SnapshotInspection {
  uint64_t file_size = 0;
  bool magic_ok = false;
  std::vector<SnapshotSectionReport> sections;
  bool end_ok = false;           // Intact end section with a correct count.
  uint64_t declared_sections = 0;  // From the end section when readable.
  // Bytes not covered by any verified frame: gaps between sections or
  // trailing garbage after the end section. The strict reader rejects both.
  uint64_t stray_bytes = 0;

  size_t sections_ok() const;
  size_t sections_bad() const;
  // True when the snapshot would load: magic, all sections, and the
  // terminator verified.
  bool clean() const;
  // Multi-line diagnostic block.
  std::string ToString() const;
};

SnapshotInspection InspectSnapshot(std::string_view bytes);

// Container-level repair (`lockdoc doctor FILE.lockdb --repair OUT`): walks
// the damaged container like InspectSnapshot, keeps every section whose CRC
// verifies, and re-emits them in file order with fresh contiguous sequence
// numbers, CRCs, and end section. The result is always a *structurally*
// clean container; whether it still loads depends on which sections
// survived (a dropped meta or strings section is fatal to payload decoding,
// a dropped table section is not). Mirrors the trace doctor's --repair,
// which re-writes the salvaged events as a fresh v2 file.
struct SnapshotRepairResult {
  std::string bytes;         // Empty when not even the magic survived.
  size_t sections_kept = 0;
  // One human-readable line per section that could not be carried over
  // ("[3] offset 0x... table: crc mismatch").
  std::vector<std::string> dropped;

  bool salvageable() const { return !bytes.empty() && sections_kept > 0; }
};

SnapshotRepairResult RepairSnapshotBytes(std::string_view bytes);

// Magic sniffers so CLI commands accept a trace or a snapshot and decide by
// content, not file extension.
bool LooksLikeSnapshot(std::string_view bytes);
// Reads just the first bytes of `path`; false on unreadable files.
bool IsSnapshotFile(const std::string& path);

// --- Section payload codecs for the db layer ---

// Strings section: varint count, then each string length-prefixed, id order.
std::string EncodeStringsSection(const StringPool& pool);
Status DecodeStringsSection(std::string_view payload, StringPool* pool);

// Table section: name, column definitions, indexed columns, then the rows
// column-major (u64 varints, f64 raw 8-byte LE bits, strings
// length-prefixed). Decoding creates the table in `db` (the name must not
// exist yet) and rebuilds its hash indexes.
std::string EncodeTableSection(const Table& table);
Status DecodeTableSection(std::string_view payload, Database* db);

}  // namespace lockdoc

#endif  // SRC_DB_SNAPSHOT_H_
