// The .lockdb snapshot container: a versioned, sectioned, CRC-checksummed
// binary format persisting an imported analysis database so traces are
// imported ONCE and analyzed many times (the paper keeps its MariaDB
// instance around for the same reason, Sec. 5.3).
//
// Two container versions exist (full spec: docs/lockdb-format.md):
//
// v1 ("LOCKDB01") mirrors the framed v2 trace format with its own magic and
// frame marker:
//
//   magic "LOCKDB01" (8 bytes)
//   section*:  marker {0xAB,'L','D',0xF3} | type (1) | seq (4 LE)
//              | length (4 LE) | payload | crc32 (4 LE)
//   end section (type kSnapshotSectionEnd, payload = varint section count)
//
// The CRC covers everything after the marker (type, seq, length, payload),
// so every section is independently verifiable and corruption is localized
// — `lockdoc doctor` reports per-section damage.
//
// v2 ("LOCKDB02") is the zero-copy layout: every frame starts at an
// 8-byte-aligned offset, headers are fixed 32-byte blocks with explicit
// 64-bit payload lengths, and the payload CRC is stored in the header so a
// loader can map the file and defer payload checksumming:
//
//   magic "LOCKDB02" (8 bytes)
//   frame*: marker {0xAB,'L','D',0xF3} | type (1) | pad (3 zero)
//           | seq (4 LE) | length (8 LE, unpadded payload bytes)
//           | payload crc32 (4 LE, over the padded payload)
//           | pad (4 zero) | header crc32 (4 LE, over bytes 4..28)
//           | payload, zero-padded to a multiple of 8
//   end frame (type kSnapshotSectionEnd, payload = u64 LE section count)
//
// Header CRCs are always verified; payload CRCs are verified eagerly by
// doctor/repair and lazily by the load path (sections that are decoded into
// memory verify before decoding, mmap-viewed sections are left to doctor).
// Sections are written in a fixed deterministic order by
// src/core/snapshot.cc; a snapshot's bytes are identical no matter how many
// threads built the analysis.
//
// This layer knows containers and the db-level payloads (string pool,
// tables); the analysis-level payloads (lock-class pool, interned
// sequences, observation groups) live in src/core/snapshot.h, keeping the
// db -> core dependency direction intact.
#ifndef SRC_DB_SNAPSHOT_H_
#define SRC_DB_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/database.h"
#include "src/trace/string_pool.h"
#include "src/util/status.h"

namespace lockdoc {
class ThreadPool;
}

namespace lockdoc {

constexpr char kSnapshotMagic[8] = {'L', 'O', 'C', 'K', 'D', 'B', '0', '1'};
constexpr char kSnapshotMagicV2[8] = {'L', 'O', 'C', 'K', 'D', 'B', '0', '2'};
constexpr uint8_t kSnapshotFrameMarker[4] = {0xAB, 'L', 'D', 0xF3};
// v1: marker + type + seq + length.
constexpr size_t kSnapshotFrameHeaderSize = 4 + 1 + 4 + 4;
constexpr size_t kSnapshotFrameTrailerSize = 4;  // crc32
// v2: marker + type + pad3 + seq + length64 + payload_crc + pad4 + header_crc.
constexpr size_t kSnapshotV2FrameHeaderSize = 32;
// Offsets into a v2 frame header (from the marker).
constexpr size_t kSnapshotV2TypeOffset = 4;
constexpr size_t kSnapshotV2SeqOffset = 8;
constexpr size_t kSnapshotV2LengthOffset = 12;
constexpr size_t kSnapshotV2PayloadCrcOffset = 20;
constexpr size_t kSnapshotV2HeaderCrcOffset = 28;
// v2 payloads are zero-padded to the next 8-byte boundary so every frame
// header (and the numeric column data inside table payloads) stays 8-aligned
// in the mapped file.
constexpr uint64_t PaddedPayloadSize(uint64_t length) { return (length + 7) & ~uint64_t{7}; }
// Payload format versions carried in the meta section; each container
// version pins the matching payload version.
constexpr uint64_t kSnapshotFormatVersion = 1;
constexpr uint64_t kSnapshotFormatVersionV2 = 2;
// v1 sections are capped (the length field is 32-bit and corrupt lengths
// must not drive allocations); v2 lengths are 64-bit and only bounded by
// the file size.
constexpr uint64_t kMaxSnapshotSectionPayloadV1 = 1ull << 30;

enum SnapshotSectionType : uint8_t {
  kSnapshotSectionMeta = 1,     // Version, import/trace stats, registry shape.
  kSnapshotSectionStrings = 2,  // The database's string pool.
  kSnapshotSectionTable = 3,    // One database table (repeats, name order).
  kSnapshotSectionPool = 4,     // Interned lock classes, id order.
  kSnapshotSectionSeqs = 5,     // Interned lock sequences, id order.
  kSnapshotSectionGroups = 6,   // Folded observation groups, key order.
  kSnapshotSectionEnd = 7,      // Terminator carrying the section count.
};

// Human name for diagnostics ("meta", "table", ...; "unknown" otherwise).
const char* SnapshotSectionName(uint8_t type);

// One parsed section; `payload` points into the scanned buffer.
struct SnapshotSection {
  uint8_t type = 0;
  uint32_t seq = 0;
  std::string_view payload;  // Unpadded payload bytes.
  uint64_t offset = 0;       // Of the frame marker in the file.
  // v2 bookkeeping for deferred payload verification: the CRC domain
  // (payload incl. zero padding), the stored CRC, and whether the scan
  // already checked it. v1 sections always scan with crc_checked == true.
  std::string_view padded_payload;
  uint32_t payload_crc = 0;
  bool crc_checked = true;
};

// Verifies a section whose payload CRC the scan deferred; Ok() when the
// scan already checked it.
Status VerifySectionPayloadCrc(const SnapshotSection& section);

// Serializes sections into the container format. Usage: AddSection for each
// payload in order, then Finish exactly once. An oversized payload poisons
// the writer with a typed error (sticky: later sections are ignored and
// Finish returns it) instead of silently truncating the 32-bit v1 length.
class SnapshotWriter {
 public:
  // `container_version` is 1 or 2. `max_section_payload` overrides the
  // version's payload cap — tests inject a tiny cap to exercise the
  // overflow guard without materializing gigabyte payloads; 0 keeps the
  // default (v1: kMaxSnapshotSectionPayloadV1, v2: unbounded 64-bit).
  explicit SnapshotWriter(uint64_t container_version = 1,
                          uint64_t max_section_payload = 0);

  void AddSection(SnapshotSectionType type, std::string_view payload);

  // Grows the output buffer once instead of doubling through AddSection
  // appends; `total_bytes` should be the sum of framed section sizes.
  void Reserve(size_t total_bytes);

  // When set, v2 payload CRCs are computed on the pool (chunked and
  // combined; bit-identical to the serial CRC). Section *content* never
  // depends on this — only how fast the checksum is computed.
  void set_crc_pool(ThreadPool* pool) { crc_pool_ = pool; }

  // Bytes framed so far; grows with every AddSection. Streaming writers
  // flush this incrementally to disk while later sections are still being
  // produced, then write whatever Finish() returns beyond the flushed
  // prefix (Finish only appends, it never rewrites earlier bytes).
  std::string_view pending() const { return out_; }

  // Appends the end section and returns the complete file bytes, or the
  // sticky error if any AddSection failed.
  Result<std::string> Finish();

  const Status& status() const { return status_; }

 private:
  uint64_t version_ = 1;
  uint64_t max_payload_ = 0;
  Status status_;
  std::string out_;
  uint32_t next_seq_ = 0;
  ThreadPool* crc_pool_ = nullptr;
};

// How much of a snapshot the strict scan checksums. kVerifyAll is the
// doctor/ingest-validation mode; kVerifyHeaders is the zero-copy load mode
// for v2 — frame structure and header CRCs verify, payload CRCs are
// deferred to VerifySectionPayloadCrc (v1 has no split: its one CRC covers
// the payload, so v1 always verifies fully).
enum class SnapshotScanMode {
  kVerifyAll,
  kVerifyHeaders,
};

// Strict parse of a whole snapshot (either container version): magic,
// structure, CRCs per `mode`, contiguous sequence numbers, and a correct
// end section are all required. Returns the sections in file order, end
// section excluded; payloads view into `bytes`.
Result<std::vector<SnapshotSection>> ScanSnapshotSections(
    std::string_view bytes, SnapshotScanMode mode = SnapshotScanMode::kVerifyAll);

// Lenient walk for diagnostics (lockdoc doctor): records every section's
// status instead of stopping at the first fault, resynchronizing on the
// frame marker after damage like the trace salvage reader.
struct SnapshotSectionReport {
  uint64_t offset = 0;  // Of the frame marker.
  uint8_t type = 0;
  uint32_t seq = 0;
  uint64_t payload_size = 0;
  std::string problem;  // Empty when the section verified.
  // CRC-intact section of a type this build does not know (a future
  // writer's extension). Skipped by the loader, reported as "unrecognized
  // (skipped)" by doctor — forward compatibility, not damage.
  bool unrecognized = false;

  bool ok() const { return problem.empty(); }
};

struct SnapshotInspection {
  uint64_t file_size = 0;
  uint64_t container_version = 0;  // 1, 2, or 0 when the magic is bad.
  bool magic_ok = false;
  std::vector<SnapshotSectionReport> sections;
  bool end_ok = false;           // Intact end section with a correct count.
  uint64_t declared_sections = 0;  // From the end section when readable.
  // Bytes not covered by any verified frame: gaps between sections or
  // trailing garbage after the end section. The strict reader rejects both.
  uint64_t stray_bytes = 0;

  size_t sections_ok() const;
  size_t sections_bad() const;
  // True when the snapshot would load: magic, all sections, and the
  // terminator verified.
  bool clean() const;
  // Multi-line diagnostic block.
  std::string ToString() const;
};

SnapshotInspection InspectSnapshot(std::string_view bytes);

// Container-level repair (`lockdoc doctor FILE.lockdb --repair OUT`): walks
// the damaged container like InspectSnapshot, keeps every section whose CRC
// verifies, and re-emits them in file order with fresh contiguous sequence
// numbers, CRCs, and end section — in the same container version the input
// declared. The result is always a *structurally* clean container; whether
// it still loads depends on which sections survived (a dropped meta or
// strings section is fatal to payload decoding, a dropped table section is
// not). Mirrors the trace doctor's --repair, which re-writes the salvaged
// events as a fresh v2 file.
struct SnapshotRepairResult {
  std::string bytes;         // Empty when not even the magic survived.
  size_t sections_kept = 0;
  // One human-readable line per section that could not be carried over
  // ("[3] offset 0x... table: crc mismatch").
  std::vector<std::string> dropped;

  bool salvageable() const { return !bytes.empty() && sections_kept > 0; }
};

SnapshotRepairResult RepairSnapshotBytes(std::string_view bytes);

// Magic sniffers so CLI commands accept a trace or a snapshot and decide by
// content, not file extension. Both container versions match.
bool LooksLikeSnapshot(std::string_view bytes);
// 1, 2, or 0 when `bytes` does not start with a .lockdb magic.
uint64_t SnapshotContainerVersion(std::string_view bytes);
// Reads just the first bytes of `path`; false on unreadable files.
bool IsSnapshotFile(const std::string& path);

// --- Section payload codecs for the db layer ---

// Strings section: varint count, then each string length-prefixed, id order.
// Shared between v1 and v2 (strings are always decoded into memory).
std::string EncodeStringsSection(const StringPool& pool);
Status DecodeStringsSection(std::string_view payload, StringPool* pool);

// v1 table section: name, column definitions, indexed columns, then the
// rows column-major (u64 varints, f64 raw 8-byte LE bits, strings
// length-prefixed). Decoding creates the table in `db` (the name must not
// exist yet) and declares its hash indexes (built lazily on first lookup).
std::string EncodeTableSection(const Table& table);
Status DecodeTableSection(std::string_view payload, Database* db);

// v2 table section: same varint-encoded header (name, columns, indexed,
// row count) zero-padded to an 8-byte boundary, then u64/f64 columns as raw
// 8-byte LE arrays in column order — viewable in place when the payload is
// 8-aligned and the host is little-endian — and string columns
// length-prefixed at the end. `DecodeTableSectionV2` attaches u64/f64
// columns as zero-copy views into `payload` when `zero_copy` is set (the
// caller guarantees the backing bytes outlive the database); otherwise it
// copies.
std::string EncodeTableSectionV2(const Table& table);
Status DecodeTableSectionV2(std::string_view payload, bool zero_copy, Database* db);

}  // namespace lockdoc

#endif  // SRC_DB_SNAPSHOT_H_
