#include "src/db/snapshot.h"

#include <cstring>
#include <fstream>
#include <set>
#include <utility>

#include "src/util/crc32.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"
#include "src/util/varint.h"

namespace lockdoc {
namespace {

// Caps mirror the trace reader's: large enough for any real snapshot, small
// enough that corrupt lengths cannot drive allocations.
constexpr uint64_t kMaxSectionPayload = 1ull << 30;
constexpr uint64_t kMaxStringSize = 1ull << 20;
constexpr uint64_t kMaxColumns = 4096;

void AppendUint64LE(std::string& out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

uint64_t LoadUint64LE(const char* data) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(data[i]);
  }
  return value;
}

Status SectionError(uint64_t offset, const std::string& what) {
  return Status::Error(StrFormat("snapshot: offset 0x%llx: %s",
                                 static_cast<unsigned long long>(offset), what.c_str()));
}

}  // namespace

const char* SnapshotSectionName(uint8_t type) {
  switch (type) {
    case kSnapshotSectionMeta:
      return "meta";
    case kSnapshotSectionStrings:
      return "strings";
    case kSnapshotSectionTable:
      return "table";
    case kSnapshotSectionPool:
      return "pool";
    case kSnapshotSectionSeqs:
      return "seqs";
    case kSnapshotSectionGroups:
      return "groups";
    case kSnapshotSectionEnd:
      return "end";
    default:
      return "unknown";
  }
}

SnapshotWriter::SnapshotWriter() { out_.append(kSnapshotMagic, sizeof(kSnapshotMagic)); }

void SnapshotWriter::AddSection(SnapshotSectionType type, std::string_view payload) {
  LOCKDOC_CHECK(payload.size() <= kMaxSectionPayload);
  size_t header_start = out_.size();
  out_.append(reinterpret_cast<const char*>(kSnapshotFrameMarker),
              sizeof(kSnapshotFrameMarker));
  out_.push_back(static_cast<char>(type));
  AppendUint32LE(out_, next_seq_++);
  AppendUint32LE(out_, static_cast<uint32_t>(payload.size()));
  out_.append(payload.data(), payload.size());
  // The CRC covers everything after the marker: type, seq, length, payload.
  uint32_t crc = Crc32(out_.data() + header_start + sizeof(kSnapshotFrameMarker),
                       out_.size() - header_start - sizeof(kSnapshotFrameMarker));
  AppendUint32LE(out_, crc);
}

std::string SnapshotWriter::Finish() {
  std::string payload;
  PutVarint(payload, next_seq_);
  AddSection(kSnapshotSectionEnd, payload);
  return std::move(out_);
}

Result<std::vector<SnapshotSection>> ScanSnapshotSections(std::string_view bytes) {
  if (bytes.size() < sizeof(kSnapshotMagic) ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Error("snapshot: bad magic (not a .lockdb file)");
  }
  std::vector<SnapshotSection> sections;
  size_t pos = sizeof(kSnapshotMagic);
  while (true) {
    if (bytes.size() - pos < kSnapshotFrameHeaderSize + kSnapshotFrameTrailerSize) {
      return SectionError(pos, "truncated: no end section");
    }
    if (std::memcmp(bytes.data() + pos, kSnapshotFrameMarker,
                    sizeof(kSnapshotFrameMarker)) != 0) {
      return SectionError(pos, "bad section marker");
    }
    uint8_t type = static_cast<uint8_t>(bytes[pos + 4]);
    uint32_t seq = LoadUint32LE(bytes.data() + pos + 5);
    uint32_t length = LoadUint32LE(bytes.data() + pos + 9);
    if (length > kMaxSectionPayload ||
        bytes.size() - pos - kSnapshotFrameHeaderSize - kSnapshotFrameTrailerSize < length) {
      return SectionError(pos, StrFormat("implausible section length %u", length));
    }
    uint32_t crc = Crc32(bytes.data() + pos + sizeof(kSnapshotFrameMarker),
                         kSnapshotFrameHeaderSize - sizeof(kSnapshotFrameMarker) + length);
    uint32_t stored = LoadUint32LE(bytes.data() + pos + kSnapshotFrameHeaderSize + length);
    if (crc != stored) {
      return SectionError(pos, StrFormat("section %s crc mismatch",
                                         SnapshotSectionName(type)));
    }
    if (seq != sections.size()) {
      return SectionError(pos, StrFormat("section out of order (seq %u, expected %zu)", seq,
                                         sections.size()));
    }
    std::string_view payload = bytes.substr(pos + kSnapshotFrameHeaderSize, length);
    pos += kSnapshotFrameHeaderSize + length + kSnapshotFrameTrailerSize;
    if (type == kSnapshotSectionEnd) {
      ByteCursor in{payload.data(), payload.size(), 0};
      uint64_t declared = 0;
      if (!GetVarint(in, &declared) || in.remaining() != 0) {
        return SectionError(pos, "malformed end section");
      }
      if (declared != sections.size()) {
        return SectionError(pos, StrFormat("end section declares %llu sections, found %zu",
                                           static_cast<unsigned long long>(declared),
                                           sections.size()));
      }
      if (pos != bytes.size()) {
        return SectionError(pos, "trailing bytes after end section");
      }
      return sections;
    }
    sections.push_back(SnapshotSection{type, seq, payload});
  }
}

size_t SnapshotInspection::sections_ok() const {
  size_t n = 0;
  for (const SnapshotSectionReport& s : sections) {
    n += s.ok() ? 1 : 0;
  }
  return n;
}

size_t SnapshotInspection::sections_bad() const { return sections.size() - sections_ok(); }

bool SnapshotInspection::clean() const {
  return magic_ok && end_ok && sections_bad() == 0 && declared_sections == sections.size() &&
         stray_bytes == 0;
}

std::string SnapshotInspection::ToString() const {
  std::string out = StrFormat("snapshot size:    %s bytes\n",
                              FormatWithCommas(file_size).c_str());
  out += StrFormat("magic:            %s\n", magic_ok ? "ok" : "BAD");
  out += StrFormat("sections:         %zu ok, %zu damaged\n", sections_ok(), sections_bad());
  for (const SnapshotSectionReport& s : sections) {
    out += StrFormat("  [%u] offset 0x%llx %-8s %10s bytes  %s\n", s.seq,
                     static_cast<unsigned long long>(s.offset), SnapshotSectionName(s.type),
                     FormatWithCommas(s.payload_size).c_str(),
                     s.ok() ? "ok" : s.problem.c_str());
  }
  if (end_ok) {
    out += StrFormat("end section:      ok (%llu sections declared, %zu found)\n",
                     static_cast<unsigned long long>(declared_sections), sections.size());
  } else {
    out += "end section:      MISSING or damaged\n";
  }
  if (stray_bytes > 0) {
    out += StrFormat("stray bytes:      %s outside any verified frame\n",
                     FormatWithCommas(stray_bytes).c_str());
  }
  return out;
}

SnapshotInspection InspectSnapshot(std::string_view bytes) {
  SnapshotInspection report;
  report.file_size = bytes.size();
  report.magic_ok = bytes.size() >= sizeof(kSnapshotMagic) &&
                    std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) == 0;
  if (!report.magic_ok) {
    return report;
  }
  const char* marker = reinterpret_cast<const char*>(kSnapshotFrameMarker);
  std::string_view haystack = bytes;
  size_t pos = sizeof(kSnapshotMagic);
  while (pos < bytes.size()) {
    size_t marker_pos = haystack.find(std::string_view(marker, sizeof(kSnapshotFrameMarker)),
                                      pos);
    if (marker_pos == std::string_view::npos) {
      report.stray_bytes += bytes.size() - pos;
      break;
    }
    report.stray_bytes += marker_pos - pos;
    SnapshotSectionReport section;
    section.offset = marker_pos;
    if (bytes.size() - marker_pos < kSnapshotFrameHeaderSize + kSnapshotFrameTrailerSize) {
      section.problem = "truncated header";
      report.sections.push_back(section);
      break;
    }
    section.type = static_cast<uint8_t>(bytes[marker_pos + 4]);
    section.seq = LoadUint32LE(bytes.data() + marker_pos + 5);
    uint32_t length = LoadUint32LE(bytes.data() + marker_pos + 9);
    section.payload_size = length;
    if (length > kMaxSectionPayload ||
        bytes.size() - marker_pos - kSnapshotFrameHeaderSize - kSnapshotFrameTrailerSize <
            length) {
      section.problem = StrFormat("implausible length %u (truncated?)", length);
      report.sections.push_back(section);
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    uint32_t crc = Crc32(bytes.data() + marker_pos + sizeof(kSnapshotFrameMarker),
                         kSnapshotFrameHeaderSize - sizeof(kSnapshotFrameMarker) + length);
    uint32_t stored =
        LoadUint32LE(bytes.data() + marker_pos + kSnapshotFrameHeaderSize + length);
    if (crc != stored) {
      section.problem = "crc mismatch";
      report.sections.push_back(section);
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    if (section.type == 0 || section.type > kSnapshotSectionEnd) {
      section.problem = StrFormat("unknown section type %u", section.type);
      report.sections.push_back(section);
      pos = marker_pos + kSnapshotFrameHeaderSize + length + kSnapshotFrameTrailerSize;
      continue;
    }
    pos = marker_pos + kSnapshotFrameHeaderSize + length + kSnapshotFrameTrailerSize;
    if (section.type == kSnapshotSectionEnd) {
      std::string_view payload = bytes.substr(marker_pos + kSnapshotFrameHeaderSize, length);
      ByteCursor in{payload.data(), payload.size(), 0};
      uint64_t declared = 0;
      if (GetVarint(in, &declared) && in.remaining() == 0) {
        report.end_ok = true;
        report.declared_sections = declared;
      } else {
        section.problem = "malformed end section";
        report.sections.push_back(section);
      }
      continue;  // Keep scanning: trailing sections after end are damage.
    }
    report.sections.push_back(section);
  }
  return report;
}

SnapshotRepairResult RepairSnapshotBytes(std::string_view bytes) {
  SnapshotRepairResult result;
  if (!LooksLikeSnapshot(bytes)) {
    result.dropped.push_back("bad magic (not a .lockdb file)");
    return result;
  }
  // Walk with the same lenient resynchronization as InspectSnapshot,
  // carrying over every verified payload. End sections are never carried
  // (the writer appends a fresh one); duplicated frames — the corruptor's
  // kFrameDuplicate — are dropped after their first occurrence.
  SnapshotWriter writer;
  std::set<std::pair<uint8_t, uint32_t>> seen;
  const char* marker = reinterpret_cast<const char*>(kSnapshotFrameMarker);
  size_t pos = sizeof(kSnapshotMagic);
  while (pos < bytes.size()) {
    size_t marker_pos =
        bytes.find(std::string_view(marker, sizeof(kSnapshotFrameMarker)), pos);
    if (marker_pos == std::string_view::npos) {
      break;
    }
    auto drop = [&](uint32_t seq, uint8_t type, const char* why) {
      result.dropped.push_back(StrFormat("[%u] offset 0x%llx %s: %s", seq,
                                         static_cast<unsigned long long>(marker_pos),
                                         SnapshotSectionName(type), why));
    };
    if (bytes.size() - marker_pos < kSnapshotFrameHeaderSize + kSnapshotFrameTrailerSize) {
      drop(0, 0, "truncated header");
      break;
    }
    uint8_t type = static_cast<uint8_t>(bytes[marker_pos + 4]);
    uint32_t seq = LoadUint32LE(bytes.data() + marker_pos + 5);
    uint32_t length = LoadUint32LE(bytes.data() + marker_pos + 9);
    if (length > kMaxSectionPayload ||
        bytes.size() - marker_pos - kSnapshotFrameHeaderSize - kSnapshotFrameTrailerSize <
            length) {
      drop(seq, type, "implausible length (truncated?)");
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    uint32_t crc = Crc32(bytes.data() + marker_pos + sizeof(kSnapshotFrameMarker),
                         kSnapshotFrameHeaderSize - sizeof(kSnapshotFrameMarker) + length);
    uint32_t stored =
        LoadUint32LE(bytes.data() + marker_pos + kSnapshotFrameHeaderSize + length);
    if (crc != stored) {
      drop(seq, type, "crc mismatch");
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    pos = marker_pos + kSnapshotFrameHeaderSize + length + kSnapshotFrameTrailerSize;
    if (type == kSnapshotSectionEnd) {
      continue;  // The writer appends its own terminator.
    }
    if (type == 0 || type > kSnapshotSectionEnd) {
      drop(seq, type, "unknown section type");
      continue;
    }
    if (!seen.insert({type, seq}).second) {
      drop(seq, type, "duplicate frame");
      continue;
    }
    writer.AddSection(static_cast<SnapshotSectionType>(type),
                      bytes.substr(marker_pos + kSnapshotFrameHeaderSize, length));
    ++result.sections_kept;
  }
  if (result.sections_kept > 0) {
    result.bytes = writer.Finish();
  }
  return result;
}

bool LooksLikeSnapshot(std::string_view bytes) {
  return bytes.size() >= sizeof(kSnapshotMagic) &&
         std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) == 0;
}

bool IsSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
         std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0;
}

std::string EncodeStringsSection(const StringPool& pool) {
  std::string payload;
  PutVarint(payload, pool.strings().size());
  for (const std::string& text : pool.strings()) {
    PutLengthPrefixed(payload, text);
  }
  return payload;
}

Status DecodeStringsSection(std::string_view payload, StringPool* pool) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t count = 0;
  if (!GetVarint(in, &count)) {
    return Status::Error("snapshot strings: bad count");
  }
  if (count == 0 || count > in.remaining() + 1) {
    // Every string costs at least its one length byte; id 0 must exist.
    return Status::Error("snapshot strings: implausible count");
  }
  std::vector<std::string> strings;
  strings.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string text;
    if (!GetLengthPrefixed(in, &text, kMaxStringSize)) {
      return Status::Error(StrFormat("snapshot strings: bad string %llu",
                                     static_cast<unsigned long long>(i)));
    }
    strings.push_back(std::move(text));
  }
  if (in.remaining() != 0) {
    return Status::Error("snapshot strings: trailing bytes");
  }
  if (!strings[0].empty()) {
    return Status::Error("snapshot strings: id 0 is not the empty string");
  }
  pool->Reset(std::move(strings));
  return Status::Ok();
}

std::string EncodeTableSection(const Table& table) {
  std::string payload;
  PutLengthPrefixed(payload, table.name());
  PutVarint(payload, table.column_count());
  for (const ColumnDef& column : table.columns()) {
    PutLengthPrefixed(payload, column.name);
    payload.push_back(static_cast<char>(column.type));
  }
  std::vector<size_t> indexed = table.IndexedColumns();
  PutVarint(payload, indexed.size());
  for (size_t column : indexed) {
    PutVarint(payload, column);
  }
  PutVarint(payload, table.row_count());
  for (size_t column = 0; column < table.column_count(); ++column) {
    const ColumnData& data = table.column_data(column);
    switch (table.columns()[column].type) {
      case ColumnType::kUint64:
        for (uint64_t value : data.u64) {
          PutVarint(payload, value);
        }
        break;
      case ColumnType::kDouble:
        for (double value : data.f64) {
          uint64_t bits = 0;
          std::memcpy(&bits, &value, sizeof(bits));
          AppendUint64LE(payload, bits);
        }
        break;
      case ColumnType::kString:
        for (const std::string& value : data.str) {
          PutLengthPrefixed(payload, value);
        }
        break;
    }
  }
  return payload;
}

Status DecodeTableSection(std::string_view payload, Database* db) {
  ByteCursor in{payload.data(), payload.size(), 0};
  std::string name;
  if (!GetLengthPrefixed(in, &name, kMaxStringSize) || name.empty()) {
    return Status::Error("snapshot table: bad name");
  }
  auto fail = [&name](const std::string& what) {
    return Status::Error(StrFormat("snapshot table %s: %s", name.c_str(), what.c_str()));
  };
  if (db->HasTable(name)) {
    return fail("duplicate table");
  }
  uint64_t column_count = 0;
  if (!GetVarint(in, &column_count) || column_count == 0 || column_count > kMaxColumns) {
    return fail("bad column count");
  }
  std::vector<ColumnDef> columns;
  columns.reserve(column_count);
  for (uint64_t i = 0; i < column_count; ++i) {
    ColumnDef def;
    if (!GetLengthPrefixed(in, &def.name, kMaxStringSize) || def.name.empty()) {
      return fail("bad column name");
    }
    uint8_t type = 0;
    if (!in.Get(&type) || type > static_cast<uint8_t>(ColumnType::kString)) {
      return fail("bad column type");
    }
    def.type = static_cast<ColumnType>(type);
    columns.push_back(std::move(def));
  }
  uint64_t indexed_count = 0;
  if (!GetVarint(in, &indexed_count) || indexed_count > column_count) {
    return fail("bad index count");
  }
  std::vector<size_t> indexed;
  indexed.reserve(indexed_count);
  for (uint64_t i = 0; i < indexed_count; ++i) {
    uint64_t column = 0;
    if (!GetVarint(in, &column) || column >= column_count ||
        columns[column].type != ColumnType::kUint64 ||
        (!indexed.empty() && column <= indexed.back())) {
      return fail("bad indexed column");
    }
    indexed.push_back(column);
  }
  uint64_t row_count = 0;
  if (!GetVarint(in, &row_count)) {
    return fail("bad row count");
  }
  std::vector<ColumnData> storage(columns.size());
  for (size_t column = 0; column < columns.size(); ++column) {
    ColumnData& data = storage[column];
    switch (columns[column].type) {
      case ColumnType::kUint64: {
        if (row_count > in.remaining()) {  // Each varint costs >= 1 byte.
          return fail("truncated u64 column");
        }
        data.u64.reserve(row_count);
        for (uint64_t row = 0; row < row_count; ++row) {
          uint64_t value = 0;
          if (!GetVarint(in, &value)) {
            return fail("truncated u64 column");
          }
          data.u64.push_back(value);
        }
        break;
      }
      case ColumnType::kDouble: {
        if (row_count > in.remaining() / sizeof(uint64_t)) {
          return fail("truncated f64 column");
        }
        data.f64.reserve(row_count);
        for (uint64_t row = 0; row < row_count; ++row) {
          char raw[sizeof(uint64_t)];
          if (!in.Read(raw, sizeof(raw))) {
            return fail("truncated f64 column");
          }
          uint64_t bits = LoadUint64LE(raw);
          double value = 0.0;
          std::memcpy(&value, &bits, sizeof(value));
          data.f64.push_back(value);
        }
        break;
      }
      case ColumnType::kString: {
        if (row_count > in.remaining()) {
          return fail("truncated string column");
        }
        data.str.reserve(row_count);
        for (uint64_t row = 0; row < row_count; ++row) {
          std::string value;
          if (!GetLengthPrefixed(in, &value, kMaxStringSize)) {
            return fail("truncated string column");
          }
          data.str.push_back(std::move(value));
        }
        break;
      }
    }
  }
  if (in.remaining() != 0) {
    return fail("trailing bytes");
  }
  Table& table = db->CreateTable(name, std::move(columns));
  table.ResetRows(row_count, std::move(storage));
  for (size_t column : indexed) {
    table.CreateIndex(column);
  }
  return Status::Ok();
}

}  // namespace lockdoc
