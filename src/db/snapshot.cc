#include "src/db/snapshot.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <set>
#include <utility>

#include "src/util/crc32.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"
#include "src/util/varint.h"

namespace lockdoc {
namespace {

// The v2 numeric columns are stored as raw little-endian words and viewed
// in place; a big-endian host would need a byte-swapping load path that
// nothing targets today.
static_assert(std::endian::native == std::endian::little,
              ".lockdb v2 zero-copy layout requires a little-endian host");

// Caps mirror the trace reader's: large enough for any real snapshot, small
// enough that corrupt lengths cannot drive allocations.
constexpr uint64_t kMaxStringSize = 1ull << 20;
constexpr uint64_t kMaxColumns = 4096;

std::string_view MarkerView() {
  return std::string_view(reinterpret_cast<const char*>(kSnapshotFrameMarker),
                          sizeof(kSnapshotFrameMarker));
}

Status SectionError(uint64_t offset, const std::string& what) {
  return Status::Error(StrFormat("snapshot: offset 0x%llx: %s",
                                 static_cast<unsigned long long>(offset), what.c_str()));
}


// How many bytes could plausibly belong to a payload starting at
// `payload_start`: the distance to the next frame marker (or EOF). Corrupt
// length fields are clamped to this before they are reported, so a length
// that points past a later valid frame cannot inflate the damage report.
uint64_t ClampLengthToNextMarker(std::string_view bytes, size_t payload_start,
                                 uint64_t length) {
  if (payload_start >= bytes.size()) {
    return 0;
  }
  size_t next = bytes.find(MarkerView(), payload_start);
  uint64_t available = (next == std::string_view::npos ? bytes.size() : next) - payload_start;
  return std::min(length, available);
}

}  // namespace

const char* SnapshotSectionName(uint8_t type) {
  switch (type) {
    case kSnapshotSectionMeta:
      return "meta";
    case kSnapshotSectionStrings:
      return "strings";
    case kSnapshotSectionTable:
      return "table";
    case kSnapshotSectionPool:
      return "pool";
    case kSnapshotSectionSeqs:
      return "seqs";
    case kSnapshotSectionGroups:
      return "groups";
    case kSnapshotSectionEnd:
      return "end";
    default:
      return "unknown";
  }
}

Status VerifySectionPayloadCrc(const SnapshotSection& section) {
  if (section.crc_checked) {
    return Status::Ok();
  }
  if (Crc32(section.padded_payload) != section.payload_crc) {
    return SectionError(section.offset, StrFormat("section %s crc mismatch",
                                                  SnapshotSectionName(section.type)));
  }
  return Status::Ok();
}

SnapshotWriter::SnapshotWriter(uint64_t container_version, uint64_t max_section_payload)
    : version_(container_version),
      max_payload_(max_section_payload != 0      ? max_section_payload
                   : container_version == 1 ? kMaxSnapshotSectionPayloadV1
                                            : UINT64_MAX) {
  LOCKDOC_CHECK(version_ == 1 || version_ == 2);
  out_.append(version_ == 1 ? kSnapshotMagic : kSnapshotMagicV2, sizeof(kSnapshotMagic));
}

void SnapshotWriter::AddSection(SnapshotSectionType type, std::string_view payload) {
  if (!status_.ok()) {
    return;  // Sticky: one oversized section poisons the whole file.
  }
  if (payload.size() > max_payload_) {
    status_ = Status::Error(StrFormat(
        "snapshot section %s: payload of %llu bytes exceeds the v%llu container cap of %llu "
        "bytes",
        SnapshotSectionName(type), static_cast<unsigned long long>(payload.size()),
        static_cast<unsigned long long>(version_),
        static_cast<unsigned long long>(max_payload_)));
    return;
  }
  size_t header_start = out_.size();
  out_.append(MarkerView());
  out_.push_back(static_cast<char>(type));
  if (version_ == 1) {
    AppendUint32LE(out_, next_seq_++);
    AppendUint32LE(out_, static_cast<uint32_t>(payload.size()));
    out_.append(payload.data(), payload.size());
    // The CRC covers everything after the marker: type, seq, length, payload.
    uint32_t crc = Crc32(out_.data() + header_start + sizeof(kSnapshotFrameMarker),
                         out_.size() - header_start - sizeof(kSnapshotFrameMarker));
    AppendUint32LE(out_, crc);
    return;
  }
  // v2: fixed 32-byte header (see snapshot.h), payload zero-padded to 8.
  uint64_t padded = PaddedPayloadSize(payload.size());
  const char zeros[8] = {0};
  uint32_t payload_crc = Crc32Parallel(payload.data(), payload.size(), crc_pool_);
  payload_crc = Crc32Update(payload_crc, zeros, padded - payload.size());
  out_.append(3, '\0');  // Pad after the type byte.
  AppendUint32LE(out_, next_seq_++);
  AppendUint64LE(out_, payload.size());
  AppendUint32LE(out_, payload_crc);
  out_.append(4, '\0');
  uint32_t header_crc =
      Crc32(out_.data() + header_start + kSnapshotV2TypeOffset,
            kSnapshotV2HeaderCrcOffset - kSnapshotV2TypeOffset);
  AppendUint32LE(out_, header_crc);
  out_.append(payload.data(), payload.size());
  out_.append(padded - payload.size(), '\0');
}

void SnapshotWriter::Reserve(size_t total_bytes) {
  out_.reserve(out_.size() + total_bytes);
}

Result<std::string> SnapshotWriter::Finish() {
  std::string payload;
  if (version_ == 1) {
    PutVarint(payload, next_seq_);
  } else {
    AppendUint64LE(payload, next_seq_);
  }
  AddSection(kSnapshotSectionEnd, payload);
  if (!status_.ok()) {
    return status_;
  }
  return std::move(out_);
}

namespace {

Result<std::vector<SnapshotSection>> ScanSnapshotSectionsV1(std::string_view bytes) {
  std::vector<SnapshotSection> sections;
  size_t pos = sizeof(kSnapshotMagic);
  while (true) {
    if (bytes.size() - pos < kSnapshotFrameHeaderSize + kSnapshotFrameTrailerSize) {
      return SectionError(pos, "truncated: no end section");
    }
    if (std::memcmp(bytes.data() + pos, kSnapshotFrameMarker,
                    sizeof(kSnapshotFrameMarker)) != 0) {
      return SectionError(pos, "bad section marker");
    }
    uint8_t type = static_cast<uint8_t>(bytes[pos + 4]);
    uint32_t seq = LoadUint32LE(bytes.data() + pos + 5);
    uint32_t length = LoadUint32LE(bytes.data() + pos + 9);
    if (length > kMaxSnapshotSectionPayloadV1 ||
        bytes.size() - pos - kSnapshotFrameHeaderSize - kSnapshotFrameTrailerSize < length) {
      return SectionError(pos, StrFormat("implausible section length %u", length));
    }
    uint32_t crc = Crc32(bytes.data() + pos + sizeof(kSnapshotFrameMarker),
                         kSnapshotFrameHeaderSize - sizeof(kSnapshotFrameMarker) + length);
    uint32_t stored = LoadUint32LE(bytes.data() + pos + kSnapshotFrameHeaderSize + length);
    if (crc != stored) {
      return SectionError(pos, StrFormat("section %s crc mismatch",
                                         SnapshotSectionName(type)));
    }
    if (seq != sections.size()) {
      return SectionError(pos, StrFormat("section out of order (seq %u, expected %zu)", seq,
                                         sections.size()));
    }
    SnapshotSection section;
    section.type = type;
    section.seq = seq;
    section.offset = pos;
    section.payload = bytes.substr(pos + kSnapshotFrameHeaderSize, length);
    section.padded_payload = section.payload;
    section.crc_checked = true;
    pos += kSnapshotFrameHeaderSize + length + kSnapshotFrameTrailerSize;
    if (type == kSnapshotSectionEnd) {
      ByteCursor in{section.payload.data(), section.payload.size(), 0};
      uint64_t declared = 0;
      if (!GetVarint(in, &declared) || in.remaining() != 0) {
        return SectionError(pos, "malformed end section");
      }
      if (declared != sections.size()) {
        return SectionError(pos, StrFormat("end section declares %llu sections, found %zu",
                                           static_cast<unsigned long long>(declared),
                                           sections.size()));
      }
      if (pos != bytes.size()) {
        return SectionError(pos, "trailing bytes after end section");
      }
      return sections;
    }
    sections.push_back(std::move(section));
  }
}

Result<std::vector<SnapshotSection>> ScanSnapshotSectionsV2(std::string_view bytes,
                                                            SnapshotScanMode mode) {
  std::vector<SnapshotSection> sections;
  size_t pos = sizeof(kSnapshotMagicV2);
  while (true) {
    if (bytes.size() - pos < kSnapshotV2FrameHeaderSize) {
      return SectionError(pos, "truncated: no end section");
    }
    if (std::memcmp(bytes.data() + pos, kSnapshotFrameMarker,
                    sizeof(kSnapshotFrameMarker)) != 0) {
      return SectionError(pos, "bad section marker");
    }
    uint8_t type = static_cast<uint8_t>(bytes[pos + kSnapshotV2TypeOffset]);
    uint32_t seq = LoadUint32LE(bytes.data() + pos + kSnapshotV2SeqOffset);
    uint64_t length = LoadUint64LE(bytes.data() + pos + kSnapshotV2LengthOffset);
    uint32_t payload_crc = LoadUint32LE(bytes.data() + pos + kSnapshotV2PayloadCrcOffset);
    uint32_t stored_header_crc =
        LoadUint32LE(bytes.data() + pos + kSnapshotV2HeaderCrcOffset);
    uint32_t header_crc = Crc32(bytes.data() + pos + kSnapshotV2TypeOffset,
                                kSnapshotV2HeaderCrcOffset - kSnapshotV2TypeOffset);
    if (header_crc != stored_header_crc) {
      return SectionError(pos, StrFormat("section %s header crc mismatch",
                                         SnapshotSectionName(type)));
    }
    if (length > bytes.size() ||
        PaddedPayloadSize(length) > bytes.size() - pos - kSnapshotV2FrameHeaderSize) {
      return SectionError(pos, StrFormat("implausible section length %llu",
                                         static_cast<unsigned long long>(length)));
    }
    SnapshotSection section;
    section.type = type;
    section.seq = seq;
    section.offset = pos;
    section.payload = bytes.substr(pos + kSnapshotV2FrameHeaderSize, length);
    section.padded_payload =
        bytes.substr(pos + kSnapshotV2FrameHeaderSize, PaddedPayloadSize(length));
    section.payload_crc = payload_crc;
    // The load path defers the (potentially huge) table payload CRCs to the
    // consumer; everything else is cheap enough to verify inline.
    section.crc_checked =
        mode == SnapshotScanMode::kVerifyAll || type != kSnapshotSectionTable;
    if (section.crc_checked && Crc32(section.padded_payload) != payload_crc) {
      return SectionError(pos, StrFormat("section %s crc mismatch",
                                         SnapshotSectionName(type)));
    }
    if (seq != sections.size()) {
      return SectionError(pos, StrFormat("section out of order (seq %u, expected %zu)", seq,
                                         sections.size()));
    }
    pos += kSnapshotV2FrameHeaderSize + PaddedPayloadSize(length);
    if (type == kSnapshotSectionEnd) {
      if (length != sizeof(uint64_t)) {
        return SectionError(pos, "malformed end section");
      }
      uint64_t declared = LoadUint64LE(section.payload.data());
      if (declared != sections.size()) {
        return SectionError(pos, StrFormat("end section declares %llu sections, found %zu",
                                           static_cast<unsigned long long>(declared),
                                           sections.size()));
      }
      if (pos != bytes.size()) {
        return SectionError(pos, "trailing bytes after end section");
      }
      return sections;
    }
    sections.push_back(std::move(section));
  }
}

}  // namespace

Result<std::vector<SnapshotSection>> ScanSnapshotSections(std::string_view bytes,
                                                          SnapshotScanMode mode) {
  uint64_t version = SnapshotContainerVersion(bytes);
  if (version == 0) {
    return Status::Error("snapshot: bad magic (not a .lockdb file)");
  }
  return version == 1 ? ScanSnapshotSectionsV1(bytes) : ScanSnapshotSectionsV2(bytes, mode);
}

size_t SnapshotInspection::sections_ok() const {
  size_t n = 0;
  for (const SnapshotSectionReport& s : sections) {
    n += s.ok() ? 1 : 0;
  }
  return n;
}

size_t SnapshotInspection::sections_bad() const { return sections.size() - sections_ok(); }

bool SnapshotInspection::clean() const {
  return magic_ok && end_ok && sections_bad() == 0 && declared_sections == sections.size() &&
         stray_bytes == 0;
}

std::string SnapshotInspection::ToString() const {
  std::string out = StrFormat("snapshot size:    %s bytes\n",
                              FormatWithCommas(file_size).c_str());
  out += StrFormat("magic:            %s\n",
                   magic_ok ? StrFormat("ok (container v%llu)",
                                        static_cast<unsigned long long>(container_version))
                                  .c_str()
                            : "BAD");
  out += StrFormat("sections:         %zu ok, %zu damaged\n", sections_ok(), sections_bad());
  for (const SnapshotSectionReport& s : sections) {
    const char* verdict = s.ok() ? (s.unrecognized ? "unrecognized (skipped)" : "ok")
                                 : s.problem.c_str();
    out += StrFormat("  [%u] offset 0x%llx %-8s %10s bytes  %s\n", s.seq,
                     static_cast<unsigned long long>(s.offset),
                     s.unrecognized ? StrFormat("type %u", s.type).c_str()
                                    : SnapshotSectionName(s.type),
                     FormatWithCommas(s.payload_size).c_str(), verdict);
  }
  if (end_ok) {
    out += StrFormat("end section:      ok (%llu sections declared, %zu found)\n",
                     static_cast<unsigned long long>(declared_sections), sections.size());
  } else {
    out += "end section:      MISSING or damaged\n";
  }
  if (stray_bytes > 0) {
    out += StrFormat("stray bytes:      %s outside any verified frame\n",
                     FormatWithCommas(stray_bytes).c_str());
  }
  return out;
}

namespace {

void InspectSnapshotV1(std::string_view bytes, SnapshotInspection* report) {
  size_t pos = sizeof(kSnapshotMagic);
  while (pos < bytes.size()) {
    size_t marker_pos = bytes.find(MarkerView(), pos);
    if (marker_pos == std::string_view::npos) {
      report->stray_bytes += bytes.size() - pos;
      break;
    }
    report->stray_bytes += marker_pos - pos;
    SnapshotSectionReport section;
    section.offset = marker_pos;
    if (bytes.size() - marker_pos < kSnapshotFrameHeaderSize + kSnapshotFrameTrailerSize) {
      section.problem = "truncated header";
      report->sections.push_back(section);
      break;
    }
    section.type = static_cast<uint8_t>(bytes[marker_pos + 4]);
    section.seq = LoadUint32LE(bytes.data() + marker_pos + 5);
    uint32_t length = LoadUint32LE(bytes.data() + marker_pos + 9);
    section.payload_size = length;
    if (length > kMaxSnapshotSectionPayloadV1 ||
        bytes.size() - marker_pos - kSnapshotFrameHeaderSize - kSnapshotFrameTrailerSize <
            length) {
      // The length field itself is suspect: clamp what we report to the
      // bytes that could actually belong to this frame, so a corrupt length
      // pointing past a later valid frame does not inflate the report.
      uint64_t clamped = ClampLengthToNextMarker(
          bytes, marker_pos + kSnapshotFrameHeaderSize, length);
      section.payload_size = clamped;
      section.problem = StrFormat("implausible length %u (clamped to %llu)", length,
                                  static_cast<unsigned long long>(clamped));
      report->sections.push_back(section);
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    uint32_t crc = Crc32(bytes.data() + marker_pos + sizeof(kSnapshotFrameMarker),
                         kSnapshotFrameHeaderSize - sizeof(kSnapshotFrameMarker) + length);
    uint32_t stored =
        LoadUint32LE(bytes.data() + marker_pos + kSnapshotFrameHeaderSize + length);
    if (crc != stored) {
      section.problem = "crc mismatch";
      report->sections.push_back(section);
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    if (section.type == 0 || section.type > kSnapshotSectionEnd) {
      // CRC verified but the type is from a newer writer: the loader skips
      // it wholesale, so it is forward compatibility, not damage.
      section.unrecognized = true;
      report->sections.push_back(section);
      pos = marker_pos + kSnapshotFrameHeaderSize + length + kSnapshotFrameTrailerSize;
      continue;
    }
    pos = marker_pos + kSnapshotFrameHeaderSize + length + kSnapshotFrameTrailerSize;
    if (section.type == kSnapshotSectionEnd) {
      std::string_view payload = bytes.substr(marker_pos + kSnapshotFrameHeaderSize, length);
      ByteCursor in{payload.data(), payload.size(), 0};
      uint64_t declared = 0;
      if (GetVarint(in, &declared) && in.remaining() == 0) {
        report->end_ok = true;
        report->declared_sections = declared;
      } else {
        section.problem = "malformed end section";
        report->sections.push_back(section);
      }
      continue;  // Keep scanning: trailing sections after end are damage.
    }
    report->sections.push_back(section);
  }
}

void InspectSnapshotV2(std::string_view bytes, SnapshotInspection* report) {
  size_t pos = sizeof(kSnapshotMagicV2);
  while (pos < bytes.size()) {
    size_t marker_pos = bytes.find(MarkerView(), pos);
    if (marker_pos == std::string_view::npos) {
      report->stray_bytes += bytes.size() - pos;
      break;
    }
    report->stray_bytes += marker_pos - pos;
    SnapshotSectionReport section;
    section.offset = marker_pos;
    if (bytes.size() - marker_pos < kSnapshotV2FrameHeaderSize) {
      section.problem = "truncated header";
      report->sections.push_back(section);
      break;
    }
    section.type = static_cast<uint8_t>(bytes[marker_pos + kSnapshotV2TypeOffset]);
    section.seq = LoadUint32LE(bytes.data() + marker_pos + kSnapshotV2SeqOffset);
    uint64_t length = LoadUint64LE(bytes.data() + marker_pos + kSnapshotV2LengthOffset);
    uint32_t payload_crc =
        LoadUint32LE(bytes.data() + marker_pos + kSnapshotV2PayloadCrcOffset);
    uint32_t stored_header_crc =
        LoadUint32LE(bytes.data() + marker_pos + kSnapshotV2HeaderCrcOffset);
    uint32_t header_crc = Crc32(bytes.data() + marker_pos + kSnapshotV2TypeOffset,
                                kSnapshotV2HeaderCrcOffset - kSnapshotV2TypeOffset);
    if (header_crc != stored_header_crc) {
      // Nothing in the header can be trusted, the declared length included.
      section.payload_size = 0;
      section.problem = "header crc mismatch";
      report->sections.push_back(section);
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    section.payload_size = length;
    if (length > bytes.size() ||
        PaddedPayloadSize(length) >
            bytes.size() - marker_pos - kSnapshotV2FrameHeaderSize) {
      uint64_t clamped = ClampLengthToNextMarker(
          bytes, marker_pos + kSnapshotV2FrameHeaderSize, length);
      section.payload_size = clamped;
      section.problem =
          StrFormat("implausible length %llu (clamped to %llu)",
                    static_cast<unsigned long long>(length),
                    static_cast<unsigned long long>(clamped));
      report->sections.push_back(section);
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    std::string_view padded = bytes.substr(marker_pos + kSnapshotV2FrameHeaderSize,
                                           PaddedPayloadSize(length));
    if (Crc32(padded) != payload_crc) {
      section.problem = "crc mismatch";
      report->sections.push_back(section);
      pos = marker_pos + sizeof(kSnapshotFrameMarker);
      continue;
    }
    if (section.type == 0 || section.type > kSnapshotSectionEnd) {
      // CRC verified but the type is from a newer writer: the loader skips
      // it wholesale, so it is forward compatibility, not damage.
      section.unrecognized = true;
      report->sections.push_back(section);
      pos = marker_pos + kSnapshotV2FrameHeaderSize + PaddedPayloadSize(length);
      continue;
    }
    pos = marker_pos + kSnapshotV2FrameHeaderSize + PaddedPayloadSize(length);
    if (section.type == kSnapshotSectionEnd) {
      if (length == sizeof(uint64_t)) {
        report->end_ok = true;
        report->declared_sections =
            LoadUint64LE(bytes.data() + marker_pos + kSnapshotV2FrameHeaderSize);
      } else {
        section.problem = "malformed end section";
        report->sections.push_back(section);
      }
      continue;  // Keep scanning: trailing sections after end are damage.
    }
    report->sections.push_back(section);
  }
}

}  // namespace

SnapshotInspection InspectSnapshot(std::string_view bytes) {
  SnapshotInspection report;
  report.file_size = bytes.size();
  report.container_version = SnapshotContainerVersion(bytes);
  report.magic_ok = report.container_version != 0;
  if (!report.magic_ok) {
    return report;
  }
  if (report.container_version == 1) {
    InspectSnapshotV1(bytes, &report);
  } else {
    InspectSnapshotV2(bytes, &report);
  }
  return report;
}

SnapshotRepairResult RepairSnapshotBytes(std::string_view bytes) {
  SnapshotRepairResult result;
  uint64_t version = SnapshotContainerVersion(bytes);
  if (version == 0) {
    result.dropped.push_back("bad magic (not a .lockdb file)");
    return result;
  }
  // Walk with the same lenient resynchronization as InspectSnapshot,
  // carrying over every verified payload into a fresh container of the same
  // version. End sections are never carried (the writer appends a fresh
  // one); duplicated frames — the corruptor's kFrameDuplicate — are dropped
  // after their first occurrence.
  SnapshotWriter writer(version);
  std::set<std::pair<uint8_t, uint32_t>> seen;
  size_t pos = sizeof(kSnapshotMagic);
  while (pos < bytes.size()) {
    size_t marker_pos = bytes.find(MarkerView(), pos);
    if (marker_pos == std::string_view::npos) {
      break;
    }
    auto drop = [&](uint32_t seq, uint8_t type, const char* why) {
      result.dropped.push_back(StrFormat("[%u] offset 0x%llx %s: %s", seq,
                                         static_cast<unsigned long long>(marker_pos),
                                         SnapshotSectionName(type), why));
    };
    uint8_t type = 0;
    uint32_t seq = 0;
    uint64_t length = 0;
    std::string_view payload;
    size_t frame_end = 0;
    if (version == 1) {
      if (bytes.size() - marker_pos < kSnapshotFrameHeaderSize + kSnapshotFrameTrailerSize) {
        drop(0, 0, "truncated header");
        break;
      }
      type = static_cast<uint8_t>(bytes[marker_pos + 4]);
      seq = LoadUint32LE(bytes.data() + marker_pos + 5);
      length = LoadUint32LE(bytes.data() + marker_pos + 9);
      if (length > kMaxSnapshotSectionPayloadV1 ||
          bytes.size() - marker_pos - kSnapshotFrameHeaderSize - kSnapshotFrameTrailerSize <
              length) {
        drop(seq, type, "implausible length (truncated?)");
        pos = marker_pos + sizeof(kSnapshotFrameMarker);
        continue;
      }
      uint32_t crc = Crc32(bytes.data() + marker_pos + sizeof(kSnapshotFrameMarker),
                           kSnapshotFrameHeaderSize - sizeof(kSnapshotFrameMarker) + length);
      uint32_t stored =
          LoadUint32LE(bytes.data() + marker_pos + kSnapshotFrameHeaderSize + length);
      if (crc != stored) {
        drop(seq, type, "crc mismatch");
        pos = marker_pos + sizeof(kSnapshotFrameMarker);
        continue;
      }
      payload = bytes.substr(marker_pos + kSnapshotFrameHeaderSize, length);
      frame_end = marker_pos + kSnapshotFrameHeaderSize + length + kSnapshotFrameTrailerSize;
    } else {
      if (bytes.size() - marker_pos < kSnapshotV2FrameHeaderSize) {
        drop(0, 0, "truncated header");
        break;
      }
      type = static_cast<uint8_t>(bytes[marker_pos + kSnapshotV2TypeOffset]);
      seq = LoadUint32LE(bytes.data() + marker_pos + kSnapshotV2SeqOffset);
      length = LoadUint64LE(bytes.data() + marker_pos + kSnapshotV2LengthOffset);
      uint32_t header_crc = Crc32(bytes.data() + marker_pos + kSnapshotV2TypeOffset,
                                  kSnapshotV2HeaderCrcOffset - kSnapshotV2TypeOffset);
      if (header_crc !=
          LoadUint32LE(bytes.data() + marker_pos + kSnapshotV2HeaderCrcOffset)) {
        drop(seq, type, "header crc mismatch");
        pos = marker_pos + sizeof(kSnapshotFrameMarker);
        continue;
      }
      if (length > bytes.size() ||
          PaddedPayloadSize(length) >
              bytes.size() - marker_pos - kSnapshotV2FrameHeaderSize) {
        drop(seq, type, "implausible length (truncated?)");
        pos = marker_pos + sizeof(kSnapshotFrameMarker);
        continue;
      }
      std::string_view padded = bytes.substr(marker_pos + kSnapshotV2FrameHeaderSize,
                                             PaddedPayloadSize(length));
      if (Crc32(padded) !=
          LoadUint32LE(bytes.data() + marker_pos + kSnapshotV2PayloadCrcOffset)) {
        drop(seq, type, "crc mismatch");
        pos = marker_pos + sizeof(kSnapshotFrameMarker);
        continue;
      }
      payload = bytes.substr(marker_pos + kSnapshotV2FrameHeaderSize, length);
      frame_end = marker_pos + kSnapshotV2FrameHeaderSize + PaddedPayloadSize(length);
    }
    pos = frame_end;
    if (type == kSnapshotSectionEnd) {
      continue;  // The writer appends its own terminator.
    }
    if (type == 0 || type > kSnapshotSectionEnd) {
      drop(seq, type, "unknown section type");
      continue;
    }
    if (!seen.insert({type, seq}).second) {
      drop(seq, type, "duplicate frame");
      continue;
    }
    writer.AddSection(static_cast<SnapshotSectionType>(type), payload);
    ++result.sections_kept;
  }
  if (result.sections_kept > 0) {
    auto finished = writer.Finish();
    // Every carried payload fit its original container, so re-emitting it
    // into the same version cannot overflow.
    LOCKDOC_CHECK(finished.ok());
    result.bytes = std::move(finished).value();
  }
  return result;
}

uint64_t SnapshotContainerVersion(std::string_view bytes) {
  if (bytes.size() < sizeof(kSnapshotMagic)) {
    return 0;
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) == 0) {
    return 1;
  }
  if (std::memcmp(bytes.data(), kSnapshotMagicV2, sizeof(kSnapshotMagicV2)) == 0) {
    return 2;
  }
  return 0;
}

bool LooksLikeSnapshot(std::string_view bytes) {
  return SnapshotContainerVersion(bytes) != 0;
}

bool IsSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
         LooksLikeSnapshot(std::string_view(magic, sizeof(magic)));
}

std::string EncodeStringsSection(const StringPool& pool) {
  std::string payload;
  PutVarint(payload, pool.strings().size());
  for (const std::string& text : pool.strings()) {
    PutLengthPrefixed(payload, text);
  }
  return payload;
}

Status DecodeStringsSection(std::string_view payload, StringPool* pool) {
  ByteCursor in{payload.data(), payload.size(), 0};
  uint64_t count = 0;
  if (!GetVarint(in, &count)) {
    return Status::Error("snapshot strings: bad count");
  }
  if (count == 0 || count > in.remaining() + 1) {
    // Every string costs at least its one length byte; id 0 must exist.
    return Status::Error("snapshot strings: implausible count");
  }
  std::vector<std::string> strings;
  strings.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string text;
    if (!GetLengthPrefixed(in, &text, kMaxStringSize)) {
      return Status::Error(StrFormat("snapshot strings: bad string %llu",
                                     static_cast<unsigned long long>(i)));
    }
    strings.push_back(std::move(text));
  }
  if (in.remaining() != 0) {
    return Status::Error("snapshot strings: trailing bytes");
  }
  if (!strings[0].empty()) {
    return Status::Error("snapshot strings: id 0 is not the empty string");
  }
  pool->Reset(std::move(strings));
  return Status::Ok();
}

namespace {

// Shared varint-encoded table header: name, column definitions, indexed
// columns, row count. Identical between v1 and v2 payloads.
void EncodeTableHeader(const Table& table, std::string* payload) {
  PutLengthPrefixed(*payload, table.name());
  PutVarint(*payload, table.column_count());
  for (const ColumnDef& column : table.columns()) {
    PutLengthPrefixed(*payload, column.name);
    payload->push_back(static_cast<char>(column.type));
  }
  std::vector<size_t> indexed = table.IndexedColumns();
  PutVarint(*payload, indexed.size());
  for (size_t column : indexed) {
    PutVarint(*payload, column);
  }
  PutVarint(*payload, table.row_count());
}

struct TableHeader {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<size_t> indexed;
  uint64_t row_count = 0;
};

Status DecodeTableHeader(ByteCursor& in, TableHeader* header) {
  if (!GetLengthPrefixed(in, &header->name, kMaxStringSize) || header->name.empty()) {
    return Status::Error("snapshot table: bad name");
  }
  auto fail = [header](const std::string& what) {
    return Status::Error(
        StrFormat("snapshot table %s: %s", header->name.c_str(), what.c_str()));
  };
  uint64_t column_count = 0;
  if (!GetVarint(in, &column_count) || column_count == 0 || column_count > kMaxColumns) {
    return fail("bad column count");
  }
  header->columns.reserve(column_count);
  for (uint64_t i = 0; i < column_count; ++i) {
    ColumnDef def;
    if (!GetLengthPrefixed(in, &def.name, kMaxStringSize) || def.name.empty()) {
      return fail("bad column name");
    }
    uint8_t type = 0;
    if (!in.Get(&type) || type > static_cast<uint8_t>(ColumnType::kString)) {
      return fail("bad column type");
    }
    def.type = static_cast<ColumnType>(type);
    header->columns.push_back(std::move(def));
  }
  uint64_t indexed_count = 0;
  if (!GetVarint(in, &indexed_count) || indexed_count > column_count) {
    return fail("bad index count");
  }
  header->indexed.reserve(indexed_count);
  for (uint64_t i = 0; i < indexed_count; ++i) {
    uint64_t column = 0;
    if (!GetVarint(in, &column) || column >= column_count ||
        header->columns[column].type != ColumnType::kUint64 ||
        (!header->indexed.empty() && column <= header->indexed.back())) {
      return fail("bad indexed column");
    }
    header->indexed.push_back(column);
  }
  if (!GetVarint(in, &header->row_count)) {
    return fail("bad row count");
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeTableSection(const Table& table) {
  std::string payload;
  EncodeTableHeader(table, &payload);
  for (size_t column = 0; column < table.column_count(); ++column) {
    switch (table.columns()[column].type) {
      case ColumnType::kUint64: {
        const uint64_t* data = table.ColumnU64Data(column);
        for (size_t row = 0; row < table.row_count(); ++row) {
          PutVarint(payload, data[row]);
        }
        break;
      }
      case ColumnType::kDouble: {
        const double* data = table.ColumnF64Data(column);
        for (size_t row = 0; row < table.row_count(); ++row) {
          uint64_t bits = 0;
          std::memcpy(&bits, &data[row], sizeof(bits));
          AppendUint64LE(payload, bits);
        }
        break;
      }
      case ColumnType::kString:
        for (const std::string& value : table.column_data(column).str) {
          PutLengthPrefixed(payload, value);
        }
        break;
    }
  }
  return payload;
}

Status DecodeTableSection(std::string_view payload, Database* db) {
  ByteCursor in{payload.data(), payload.size(), 0};
  TableHeader header;
  if (Status status = DecodeTableHeader(in, &header); !status.ok()) {
    return status;
  }
  auto fail = [&header](const std::string& what) {
    return Status::Error(
        StrFormat("snapshot table %s: %s", header.name.c_str(), what.c_str()));
  };
  if (db->HasTable(header.name)) {
    return fail("duplicate table");
  }
  uint64_t row_count = header.row_count;
  std::vector<ColumnData> storage(header.columns.size());
  for (size_t column = 0; column < header.columns.size(); ++column) {
    ColumnData& data = storage[column];
    switch (header.columns[column].type) {
      case ColumnType::kUint64: {
        if (row_count > in.remaining()) {  // Each varint costs >= 1 byte.
          return fail("truncated u64 column");
        }
        data.u64.reserve(row_count);
        for (uint64_t row = 0; row < row_count; ++row) {
          uint64_t value = 0;
          if (!GetVarint(in, &value)) {
            return fail("truncated u64 column");
          }
          data.u64.push_back(value);
        }
        break;
      }
      case ColumnType::kDouble: {
        if (row_count > in.remaining() / sizeof(uint64_t)) {
          return fail("truncated f64 column");
        }
        data.f64.reserve(row_count);
        for (uint64_t row = 0; row < row_count; ++row) {
          char raw[sizeof(uint64_t)];
          if (!in.Read(raw, sizeof(raw))) {
            return fail("truncated f64 column");
          }
          uint64_t bits = LoadUint64LE(raw);
          double value = 0.0;
          std::memcpy(&value, &bits, sizeof(value));
          data.f64.push_back(value);
        }
        break;
      }
      case ColumnType::kString: {
        if (row_count > in.remaining()) {
          return fail("truncated string column");
        }
        data.str.reserve(row_count);
        for (uint64_t row = 0; row < row_count; ++row) {
          std::string value;
          if (!GetLengthPrefixed(in, &value, kMaxStringSize)) {
            return fail("truncated string column");
          }
          data.str.push_back(std::move(value));
        }
        break;
      }
    }
  }
  if (in.remaining() != 0) {
    return fail("trailing bytes");
  }
  Table& table = db->CreateTable(header.name, std::move(header.columns));
  table.ResetRows(row_count, std::move(storage));
  for (size_t column : header.indexed) {
    table.CreateIndex(column);
  }
  return Status::Ok();
}

std::string EncodeTableSectionV2(const Table& table) {
  std::string payload;
  EncodeTableHeader(table, &payload);
  // Numeric columns start at the next 8-byte boundary so a loader mapping
  // the (8-aligned) payload can view them in place.
  payload.append(PaddedPayloadSize(payload.size()) - payload.size(), '\0');
  for (size_t column = 0; column < table.column_count(); ++column) {
    switch (table.columns()[column].type) {
      case ColumnType::kUint64:
        payload.append(reinterpret_cast<const char*>(table.ColumnU64Data(column)),
                       table.row_count() * sizeof(uint64_t));
        break;
      case ColumnType::kDouble:
        payload.append(reinterpret_cast<const char*>(table.ColumnF64Data(column)),
                       table.row_count() * sizeof(double));
        break;
      case ColumnType::kString:
        break;  // Variable-width columns follow the fixed-width block.
    }
  }
  for (size_t column = 0; column < table.column_count(); ++column) {
    if (table.columns()[column].type == ColumnType::kString) {
      for (const std::string& value : table.column_data(column).str) {
        PutLengthPrefixed(payload, value);
      }
    }
  }
  return payload;
}

Status DecodeTableSectionV2(std::string_view payload, bool zero_copy, Database* db) {
  ByteCursor in{payload.data(), payload.size(), 0};
  TableHeader header;
  if (Status status = DecodeTableHeader(in, &header); !status.ok()) {
    return status;
  }
  auto fail = [&header](const std::string& what) {
    return Status::Error(
        StrFormat("snapshot table %s: %s", header.name.c_str(), what.c_str()));
  };
  if (db->HasTable(header.name)) {
    return fail("duplicate table");
  }
  uint64_t pad = PaddedPayloadSize(in.pos) - in.pos;
  if (in.remaining() < pad) {
    return fail("truncated header padding");
  }
  in.pos += pad;
  // In-place views additionally require the mapped payload itself to be
  // 8-aligned; a misaligned buffer silently degrades to copying.
  bool views_ok =
      zero_copy && reinterpret_cast<uintptr_t>(payload.data()) % alignof(uint64_t) == 0;
  uint64_t row_count = header.row_count;
  std::vector<ColumnData> storage(header.columns.size());
  for (size_t column = 0; column < header.columns.size(); ++column) {
    ColumnData& data = storage[column];
    ColumnType type = header.columns[column].type;
    if (type == ColumnType::kString) {
      continue;
    }
    if (row_count > in.remaining() / sizeof(uint64_t)) {
      return fail(type == ColumnType::kUint64 ? "truncated u64 column"
                                              : "truncated f64 column");
    }
    const char* raw = in.data + in.pos;
    if (type == ColumnType::kUint64) {
      if (views_ok) {
        data.u64_view = reinterpret_cast<const uint64_t*>(raw);
        data.view_rows = row_count;
      } else {
        data.u64.resize(row_count);
        std::memcpy(data.u64.data(), raw, row_count * sizeof(uint64_t));
      }
    } else {
      if (views_ok) {
        data.f64_view = reinterpret_cast<const double*>(raw);
        data.view_rows = row_count;
      } else {
        data.f64.resize(row_count);
        std::memcpy(data.f64.data(), raw, row_count * sizeof(double));
      }
    }
    in.pos += row_count * sizeof(uint64_t);
  }
  for (size_t column = 0; column < header.columns.size(); ++column) {
    if (header.columns[column].type != ColumnType::kString) {
      continue;
    }
    ColumnData& data = storage[column];
    if (row_count > in.remaining()) {
      return fail("truncated string column");
    }
    data.str.reserve(row_count);
    for (uint64_t row = 0; row < row_count; ++row) {
      std::string value;
      if (!GetLengthPrefixed(in, &value, kMaxStringSize)) {
        return fail("truncated string column");
      }
      data.str.push_back(std::move(value));
    }
  }
  if (in.remaining() != 0) {
    return fail("trailing bytes");
  }
  Table& table = db->CreateTable(header.name, std::move(header.columns));
  table.ResetRows(row_count, std::move(storage));
  for (size_t column : header.indexed) {
    table.CreateIndex(column);
  }
  return Status::Ok();
}

}  // namespace lockdoc
