// A column-oriented table with equality hash indexes.
#ifndef SRC_DB_TABLE_H_
#define SRC_DB_TABLE_H_

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/value.h"
#include "src/util/status.h"

namespace lockdoc {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kUint64;
};

// Column-major storage for one column; only the vector matching the
// column's declared type is populated.
struct ColumnData {
  std::vector<uint64_t> u64;
  std::vector<double> f64;
  std::vector<std::string> str;
};

class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  size_t column_count() const { return columns_.size(); }
  size_t row_count() const { return row_count_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Returns the index of a column by name; CHECK-fails on unknown names
  // (schema errors are programming errors, not data errors).
  size_t ColumnIndex(std::string_view column_name) const;

  // Appends a row; values must match the schema's arity and types.
  RowId Insert(const std::vector<DbValue>& values);

  // Typed accessors; column type must match.
  uint64_t GetUint64(RowId row, size_t column) const;
  double GetDouble(RowId row, size_t column) const;
  const std::string& GetString(RowId row, size_t column) const;

  void SetUint64(RowId row, size_t column, uint64_t value);

  // Creates (or refreshes) a hash index over a kUint64 column. Indexes are
  // maintained incrementally by Insert afterwards.
  void CreateIndex(size_t column);
  bool HasIndex(size_t column) const;

  // All rows whose `column` equals `value`; uses the index when present,
  // otherwise scans.
  std::vector<RowId> LookupEqual(size_t column, uint64_t value) const;

  // Calls `fn` for each row id; returning false stops the scan.
  void Scan(const std::function<bool(RowId)>& fn) const;

  // CSV round-trip (header = column names). Import replaces table contents.
  void ExportCsv(std::ostream& out) const;
  Status ImportCsv(std::string_view document);

  // Raw column-major storage, for binary serialization (.lockdb snapshots).
  const ColumnData& column_data(size_t column) const;

  // Replaces all rows with column-major storage; `storage` must have one
  // entry per column whose populated vector matches the column type and has
  // `row_count` elements. Indexes registered via CreateIndex are rebuilt.
  void ResetRows(size_t row_count, std::vector<ColumnData> storage);

  // Columns with a hash index, ascending — part of a snapshot so a loaded
  // table answers LookupEqual exactly like the one that was saved.
  std::vector<size_t> IndexedColumns() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<ColumnData> storage_;
  size_t row_count_ = 0;
  // column index -> (value -> row ids)
  std::unordered_map<size_t, std::unordered_map<uint64_t, std::vector<RowId>>> indexes_;
};

}  // namespace lockdoc

#endif  // SRC_DB_TABLE_H_
